package experiments

import (
	"fmt"

	"repro/internal/bvt"
	"repro/internal/modulation"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Figure5Result is the constellation testbed view: QPSK / 8QAM / 16QAM
// received symbols and their quality metrics at the testbed SNR.
type Figure5Result struct {
	Panels []Figure5Panel
}

// Figure5Panel is one constellation diagram.
type Figure5Panel struct {
	Capacity modulation.Gbps
	Format   modulation.Format
	Symbols  []modulation.Symbol
	// EVM is the decision-directed error-vector magnitude; SNRdB the
	// SNR the DSP would report back from it; SER the theoretical
	// symbol error rate at the channel SNR.
	EVM, SNRdB, SER float64
}

// Figure5 synthesizes the three constellations of the paper's testbed
// (100, 150, 200 Gbps) at a representative channel SNR.
func Figure5(o Options) (*Figure5Result, error) {
	defer o.span("figure5")()
	const channelSNR = 17.0 // testbed-quality channel
	r := rng.New(o.Seed ^ 0x515)
	res := &Figure5Result{}
	for _, p := range []struct {
		cap    modulation.Gbps
		format modulation.Format
	}{
		{100, modulation.FormatQPSK},
		{150, modulation.Format8QAM},
		{200, modulation.Format16QAM},
	} {
		c, err := modulation.IdealConstellation(p.format)
		if err != nil {
			return nil, err
		}
		syms := c.Received(r.Split(), o.ConstellationSymbols, channelSNR)
		evm := c.EVM(syms)
		res.Panels = append(res.Panels, Figure5Panel{
			Capacity: p.cap,
			Format:   p.format,
			Symbols:  syms,
			EVM:      evm,
			SNRdB:    modulation.EstimatedSNRdB(evm),
			SER:      modulation.TheoreticalSER(p.format, channelSNR),
		})
	}
	return res, nil
}

// Table renders Figure 5 metrics (the scatter itself is in Symbols).
func (r *Figure5Result) Table() *Table {
	t := &Table{
		Title:   "Figure 5: constellation diagrams of dynamic capacity modes",
		Columns: []string{"capacity Gbps", "format", "symbols", "EVM", "est SNR dB", "theoretical SER"},
	}
	for _, p := range r.Panels {
		t.Rows = append(t.Rows, []string{
			f(float64(p.Capacity)), p.Format.String(),
			fmt.Sprintf("%d", len(p.Symbols)),
			fmt.Sprintf("%.4f", p.EVM), f2(p.SNRdB),
			fmt.Sprintf("%.2e", p.SER),
		})
	}
	t.Notes = append(t.Notes, "denser constellations at the same channel SNR show higher EVM/SER — why higher rates need more SNR")
	return t
}

// Figure6bResult is the modulation-change latency comparison.
type Figure6bResult struct {
	// PowerCycle and Hot are the downtime samples (seconds) of the two
	// procedures.
	PowerCycle, Hot []float64
	// Means and percentiles back the headline numbers.
	PowerCycleMean, HotMean float64
	PowerCycleCDF, HotCDF   stats.CDF
}

// Figure6b runs the reconfiguration testbed: o.BVTChanges modulation
// changes cycling 100→150→200 Gbps, once with the power-cycle firmware
// flow and once with the laser kept on.
func Figure6b(o Options) (*Figure6bResult, error) {
	defer o.span("figure6b")()
	caps := []modulation.Gbps{100, 150, 200}
	cold, err := bvt.Testbed(bvt.Config{
		InitialMode: 100, ChannelSNRdB: 20, Seed: o.Seed ^ 0x6b,
	}, caps, o.BVTChanges, bvt.MethodPowerCycle)
	if err != nil {
		return nil, err
	}
	hot, err := bvt.Testbed(bvt.Config{
		InitialMode: 100, ChannelSNRdB: 20, Seed: o.Seed ^ 0x6b,
	}, caps, o.BVTChanges, bvt.MethodHot)
	if err != nil {
		return nil, err
	}
	res := &Figure6bResult{
		PowerCycle: bvt.DowntimesSeconds(cold),
		Hot:        bvt.DowntimesSeconds(hot),
	}
	res.PowerCycleMean = stats.Mean(res.PowerCycle)
	res.HotMean = stats.Mean(res.Hot)
	var errCDF error
	res.PowerCycleCDF, errCDF = stats.NewCDF(res.PowerCycle)
	if errCDF != nil {
		return nil, errCDF
	}
	res.HotCDF, errCDF = stats.NewCDF(res.Hot)
	if errCDF != nil {
		return nil, errCDF
	}
	return res, nil
}

// Table renders Figure 6b percentiles.
func (r *Figure6bResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 6b: time to change modulation (%d changes each)", len(r.PowerCycle)),
		Columns: []string{"percentile", "mod change s", "efficient mod change s"},
	}
	for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
		t.Rows = append(t.Rows, []string{
			pct(p),
			f2(stats.Quantile(r.PowerCycle, p)),
			fmt.Sprintf("%.4f", stats.Quantile(r.Hot, p)),
		})
	}
	t.Rows = append(t.Rows, []string{"mean", f2(r.PowerCycleMean), fmt.Sprintf("%.4f", r.HotMean)})
	t.Notes = append(t.Notes,
		"paper: 68 s average downtime with today's firmware; 35 ms with the laser kept on")
	return t
}
