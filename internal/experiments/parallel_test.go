package experiments

// Parity test for the fan-out plumbing at the figure layer (ISSUE 3):
// Options.Workers must not change any figure output.

import (
	"reflect"
	"testing"
)

func TestFiguresWorkersParity(t *testing.T) {
	run := func(workers int) (*ThroughputGainsResult, *Figure2aResult) {
		o := QuickOptions()
		o.Workers = workers
		tg, err := ThroughputGains(o)
		if err != nil {
			t.Fatal(err)
		}
		f2a, err := Figure2a(o)
		if err != nil {
			t.Fatal(err)
		}
		return tg, f2a
	}
	wantTG, want2a := run(1)
	for _, w := range []int{3} {
		gotTG, got2a := run(w)
		if !reflect.DeepEqual(gotTG, wantTG) {
			t.Fatalf("workers=%d: ThroughputGains differs from workers=1:\n%+v\nvs\n%+v", w, gotTG, wantTG)
		}
		if !reflect.DeepEqual(got2a, want2a) {
			t.Fatalf("workers=%d: Figure2a differs from workers=1", w)
		}
	}
}
