package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/failures"
	"repro/internal/modulation"
	"repro/internal/rng"
	"repro/internal/snr"
	"repro/internal/stats"
)

// Figure1Result is the SNR evolution of one fiber's wavelengths with
// the capacity thresholds overlaid (Figure 1).
type Figure1Result struct {
	// PerWavelength summarizes each of the fiber's wavelengths.
	PerWavelength []Figure1Wavelength
	// Thresholds is the dashed-line ladder the figure overlays.
	Thresholds []modulation.Mode
}

// Figure1Wavelength is one line of the plot.
type Figure1Wavelength struct {
	Wavelength    int
	MeandB, MindB float64
	MaxdB         float64
	// TimeAtCapacity[c] is the fraction of samples whose SNR clears
	// capacity c's threshold — "the feasible link capacity at and above
	// a particular SNR".
	TimeAtCapacity map[modulation.Gbps]float64
}

// Figure1 regenerates the single-fiber view.
func Figure1(o Options) (*Figure1Result, error) {
	defer o.span("figure1")()
	fiber, err := dataset.GenerateFiberSeries(o.Dataset, 0)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{Thresholds: o.Dataset.Ladder.Modes()}
	for w, s := range fiber.Series {
		sum, err := stats.Summarize(s.Samples)
		if err != nil {
			return nil, err
		}
		wl := Figure1Wavelength{
			Wavelength: w, MeandB: sum.Mean, MindB: sum.Min, MaxdB: sum.Max,
			TimeAtCapacity: make(map[modulation.Gbps]float64),
		}
		for _, m := range o.Dataset.Ladder.Modes() {
			wl.TimeAtCapacity[m.Capacity] = stats.FractionAtLeast(s.Samples, m.MinSNRdB)
		}
		res.PerWavelength = append(res.PerWavelength, wl)
	}
	return res, nil
}

// Figure1SeriesResult carries the downsampled per-wavelength SNR time
// series behind Figure 1's plot, for CSV export into a plotting
// pipeline (`rwc-experiments -figure fig1series -format csv`).
type Figure1SeriesResult struct {
	// Hours between consecutive points.
	StepHours float64
	// Series[w] is wavelength w's downsampled SNR trace.
	Series [][]float64
}

// Figure1Series regenerates fiber 0's traces downsampled to ≈200
// points per wavelength.
func Figure1Series(o Options) (*Figure1SeriesResult, error) {
	defer o.span("figure1-series")()
	fiber, err := dataset.GenerateFiberSeries(o.Dataset, 0)
	if err != nil {
		return nil, err
	}
	const targetPoints = 200
	res := &Figure1SeriesResult{}
	for _, s := range fiber.Series {
		stride := len(s.Samples) / targetPoints
		if stride < 1 {
			stride = 1
		}
		res.StepHours = float64(stride) * snr.SampleInterval.Hours()
		var row []float64
		for i := 0; i < len(s.Samples); i += stride {
			// Keep the minimum within the stride window so dips survive
			// downsampling (they are the plot's whole point).
			lo := s.Samples[i]
			for j := i; j < i+stride && j < len(s.Samples); j++ {
				if s.Samples[j] < lo {
					lo = s.Samples[j]
				}
			}
			row = append(row, lo)
		}
		res.Series = append(res.Series, row)
	}
	return res, nil
}

// Table renders the series in long form: wavelength, time, SNR.
func (r *Figure1SeriesResult) Table() *Table {
	t := &Table{
		Title:   "Figure 1 series: downsampled SNR traces (window-min preserving dips)",
		Columns: []string{"wavelength", "t_hours", "snr_db"},
	}
	for w, row := range r.Series {
		for i, v := range row {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%.1f", float64(i)*r.StepHours),
				f2(v),
			})
		}
	}
	t.Notes = append(t.Notes, "long-form series for plotting; pair with -format csv")
	return t
}

// Table renders Figure 1.
func (r *Figure1Result) Table() *Table {
	t := &Table{
		Title:   "Figure 1: SNR of wavelengths on one WAN fiber (2.5y @ 15 min)",
		Columns: []string{"wl", "mean dB", "min dB", "max dB"},
	}
	for _, m := range r.Thresholds {
		t.Columns = append(t.Columns, fmt.Sprintf("t>=%vG", float64(m.Capacity)))
	}
	for _, w := range r.PerWavelength {
		row := []string{
			fmt.Sprintf("%02d", w.Wavelength), f2(w.MeandB), f2(w.MindB), f2(w.MaxdB),
		}
		for _, m := range r.Thresholds {
			row = append(row, pct(w.TimeAtCapacity[m.Capacity]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"thresholds (dB): "+thresholdNote(r.Thresholds),
		"SNR required for 100 Gbps is 6.5 dB; wavelengths sit far above it (the paper's margin observation)")
	return t
}

func thresholdNote(modes []modulation.Mode) string {
	s := ""
	for i, m := range modes {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%vG@%.1f", float64(m.Capacity), m.MinSNRdB)
	}
	return s
}

// Figure2aResult holds the two SNR-variation CDFs (Figure 2a).
type Figure2aResult struct {
	RangeCDF stats.CDF
	HDRCDF   stats.CDF
	// FracHDRUnder2 is the headline "HDR is less than 2 dB for 83%".
	FracHDRUnder2 float64
	MeanRange     float64
	Links         int
}

// Figure2a regenerates the SNR-variation CDFs.
func Figure2a(o Options) (*Figure2aResult, error) {
	defer o.span("figure2a")()
	fs, err := dataset.AnalyzeFleet(o.datasetConfig())
	if err != nil {
		return nil, err
	}
	ranges := fs.Ranges()
	widths := fs.HDRWidths()
	rc, err := stats.NewCDF(ranges)
	if err != nil {
		return nil, err
	}
	hc, err := stats.NewCDF(widths)
	if err != nil {
		return nil, err
	}
	return &Figure2aResult{
		RangeCDF:      rc,
		HDRCDF:        hc,
		FracHDRUnder2: stats.FractionBelow(widths, 2),
		MeanRange:     stats.Mean(ranges),
		Links:         len(fs.Links),
	}, nil
}

// Table renders Figure 2a as CDF samples.
func (r *Figure2aResult) Table() *Table {
	t := &Table{
		Title:   "Figure 2a: CDF of SNR variation (range vs 95% HDR width)",
		Columns: []string{"dB", "CDF range", "CDF HDR"},
	}
	for _, x := range []float64{0.5, 1, 2, 3, 5, 8, 10, 12, 15, 18} {
		t.Rows = append(t.Rows, []string{f2(x), f2(r.RangeCDF.At(x)), f2(r.HDRCDF.At(x))})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("HDR < 2 dB for %s of %d links (paper: 83%%)", pct(r.FracHDRUnder2), r.Links),
		fmt.Sprintf("mean SNR range %.1f dB (paper: nearly 12 dB)", r.MeanRange))
	return t
}

// Figure2bResult is the feasible-capacity CDF (Figure 2b).
type Figure2bResult struct {
	// ShareAt[c] is the fraction of links whose feasible capacity is
	// exactly c; CumulativeAt is P(feasible <= c).
	Capacities   []modulation.Gbps
	ShareAt      map[modulation.Gbps]float64
	CumulativeAt map[modulation.Gbps]float64
	// FracAtLeast175 is the headline 80%.
	FracAtLeast175 float64
	// GainTbps is the aggregate capacity gain (paper: 145 Tbps at 2000
	// links) at this fleet's scale, plus the 2000-link extrapolation.
	GainTbps            float64
	GainTbpsAt2000Links float64
	Links               int
}

// Figure2b regenerates the feasible-capacity distribution.
func Figure2b(o Options) (*Figure2bResult, error) {
	defer o.span("figure2b")()
	fs, err := dataset.AnalyzeFleet(o.datasetConfig())
	if err != nil {
		return nil, err
	}
	caps := fs.FeasibleCapacities()
	res := &Figure2bResult{
		Capacities:   o.Dataset.Ladder.Capacities(),
		ShareAt:      make(map[modulation.Gbps]float64),
		CumulativeAt: make(map[modulation.Gbps]float64),
		Links:        len(fs.Links),
	}
	cum := 0.0
	for _, c := range res.Capacities {
		share := 0.0
		for _, v := range caps {
			if stats.ApproxInDelta(v, float64(c), stats.DefaultTol) {
				share++
			}
		}
		share /= float64(len(caps))
		cum += share
		res.ShareAt[c] = share
		res.CumulativeAt[c] = cum
	}
	res.FracAtLeast175 = stats.FractionAtLeast(caps, 175)
	res.GainTbps = fs.CapacityGainGbps / 1000
	res.GainTbpsAt2000Links = fs.CapacityGainGbps / float64(len(fs.Links)) * 2000 / 1000
	return res, nil
}

// Table renders Figure 2b.
func (r *Figure2bResult) Table() *Table {
	t := &Table{
		Title:   "Figure 2b: feasible link capacity from HDR lower bound",
		Columns: []string{"capacity Gbps", "share", "CDF"},
	}
	for _, c := range r.Capacities {
		t.Rows = append(t.Rows, []string{
			f(float64(c)), pct(r.ShareAt[c]), f2(r.CumulativeAt[c]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("feasible >= 175 Gbps for %s of links (paper: 80%%)", pct(r.FracAtLeast175)),
		fmt.Sprintf("aggregate gain %.1f Tbps over %d links; extrapolated to 2000 links: %.0f Tbps (paper: 145 Tbps)",
			r.GainTbps, r.Links, r.GainTbpsAt2000Links))
	return t
}

// Figure3aResult is the failures-vs-capacity counterfactual on a
// high-quality fiber (Figure 3a).
type Figure3aResult struct {
	Capacities []modulation.Gbps
	// PerLink[w][c] is wavelength w's failure count at capacity c.
	PerLink []map[modulation.Gbps]int
	// Min/Median/Max summarize the per-capacity distribution.
	Min, Median, Max map[modulation.Gbps]int
	FiberIndex       int
}

// Figure3a finds the best fiber (every wavelength can run every rung)
// and counts counterfactual failures per capacity.
func Figure3a(o Options) (*Figure3aResult, error) {
	defer o.span("figure3a")()
	best, err := bestFiber(o.Dataset)
	if err != nil {
		return nil, err
	}
	fiber, err := dataset.GenerateFiberSeries(o.Dataset, best)
	if err != nil {
		return nil, err
	}
	res := &Figure3aResult{
		Capacities: o.Dataset.Ladder.Capacities(),
		FiberIndex: best,
		Min:        map[modulation.Gbps]int{},
		Median:     map[modulation.Gbps]int{},
		Max:        map[modulation.Gbps]int{},
	}
	counts := make(map[modulation.Gbps][]float64)
	for _, s := range fiber.Series {
		perCap := make(map[modulation.Gbps]int)
		for _, m := range o.Dataset.Ladder.Modes() {
			n := failures.CountAtThreshold(s.Samples, m.MinSNRdB)
			perCap[m.Capacity] = n
			counts[m.Capacity] = append(counts[m.Capacity], float64(n))
		}
		res.PerLink = append(res.PerLink, perCap)
	}
	for _, c := range res.Capacities {
		xs := counts[c]
		sum, err := stats.Summarize(xs)
		if err != nil {
			return nil, err
		}
		res.Min[c] = int(sum.Min)
		res.Median[c] = int(sum.Median)
		res.Max[c] = int(sum.Max)
	}
	return res, nil
}

// bestFiber picks the fiber with the highest worst-wavelength baseline
// (cheap proxy using the generative baselines, matching "a high quality
// WAN fiber where each link ... has a high enough SNR").
func bestFiber(cfg dataset.Config) (int, error) {
	best, bestScore := 0, -1.0
	for fIdx := 0; fIdx < cfg.Fibers; fIdx++ {
		fiber, err := dataset.GenerateFiberSeries(cfg, fIdx)
		if err != nil {
			return 0, err
		}
		worst := fiber.Series[0].BaselinedB
		for _, s := range fiber.Series {
			if s.BaselinedB < worst {
				worst = s.BaselinedB
			}
		}
		if worst > bestScore {
			bestScore = worst
			best = fIdx
		}
	}
	return best, nil
}

// Table renders Figure 3a.
func (r *Figure3aResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 3a: failures vs configured capacity (fiber %d, %d wavelengths)", r.FiberIndex, len(r.PerLink)),
		Columns: []string{"capacity Gbps", "min", "median", "max"},
	}
	for _, c := range r.Capacities {
		t.Rows = append(t.Rows, []string{
			f(float64(c)),
			fmt.Sprintf("%d", r.Min[c]),
			fmt.Sprintf("%d", r.Median[c]),
			fmt.Sprintf("%d", r.Max[c]),
		})
	}
	t.Notes = append(t.Notes, "paper: no significant increase up to 175 Gbps; large jump for some links at 200 Gbps")
	return t
}

// Figure3bResult is the failure-duration distribution per capacity
// (Figure 3b), over links where that capacity is feasible.
type Figure3bResult struct {
	Capacities []modulation.Gbps
	// MeanHours/MedianHours/P95Hours summarize failure durations.
	MeanHours, MedianHours, P95Hours map[modulation.Gbps]float64
	Events                           map[modulation.Gbps]int
}

// Figure3b regenerates the duration analysis.
func Figure3b(o Options) (*Figure3bResult, error) {
	defer o.span("figure3b")()
	durations := make(map[modulation.Gbps][]float64)
	ladder := o.Dataset.Ladder
	err := dataset.Stream(o.datasetConfig(), func(meta dataset.LinkMeta, s *snr.Series) error {
		hdr, err := stats.HDR(s.Samples, dataset.HDRMass)
		if err != nil {
			return err
		}
		for _, m := range ladder.Modes() {
			// "only if the capacity is feasible as per the link's SNR".
			if hdr.Lo < m.MinSNRdB {
				continue
			}
			for _, sp := range failures.Detect(s.Samples, m.MinSNRdB) {
				durations[m.Capacity] = append(durations[m.Capacity], sp.Hours())
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure3bResult{
		Capacities:  ladder.Capacities(),
		MeanHours:   map[modulation.Gbps]float64{},
		MedianHours: map[modulation.Gbps]float64{},
		P95Hours:    map[modulation.Gbps]float64{},
		Events:      map[modulation.Gbps]int{},
	}
	for _, c := range res.Capacities {
		xs := durations[c]
		res.Events[c] = len(xs)
		if len(xs) == 0 {
			continue
		}
		res.MeanHours[c] = stats.Mean(xs)
		res.MedianHours[c] = stats.Quantile(xs, 0.5)
		res.P95Hours[c] = stats.Quantile(xs, 0.95)
	}
	return res, nil
}

// Table renders Figure 3b.
func (r *Figure3bResult) Table() *Table {
	t := &Table{
		Title:   "Figure 3b: duration of link failures vs configured capacity (feasible links only)",
		Columns: []string{"capacity Gbps", "events", "mean h", "median h", "p95 h"},
	}
	for _, c := range r.Capacities {
		t.Rows = append(t.Rows, []string{
			f(float64(c)),
			fmt.Sprintf("%d", r.Events[c]),
			f2(r.MeanHours[c]), f2(r.MedianHours[c]), f2(r.P95Hours[c]),
		})
	}
	t.Notes = append(t.Notes, "paper: failures last several hours on average at every capacity")
	return t
}

// Figure4Result covers Figures 4a and 4b: root-cause shares by outage
// duration and by event frequency, from two independent sources: the
// calibrated operator-ticket model (the paper's manual analysis) and
// the synthetic tickets attached to SNR-detected failure events (a
// cross-validation only a simulation can do).
type Figure4Result struct {
	Shares  failures.CauseShares
	Tickets int
	// SNRDerived summarizes the tickets attached to the fleet's
	// detected failures; SNRDerivedEvents counts them.
	SNRDerived       failures.CauseShares
	SNRDerivedEvents int
}

// Figure4 generates the calibrated seven-month ticket set (250 events)
// and summarizes it, alongside the SNR-derived ticket population.
func Figure4(o Options) (*Figure4Result, error) {
	defer o.span("figure4")()
	model := failures.DefaultTicketModel()
	n := 250
	tickets, err := model.Generate(n, rng.New(o.Seed^0xf16))
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{Shares: failures.Summarize(tickets), Tickets: n}
	fs, err := dataset.AnalyzeFleet(o.datasetConfig())
	if err != nil {
		return nil, err
	}
	res.SNRDerived = failures.Summarize(fs.FailureTickets)
	res.SNRDerivedEvents = len(fs.FailureTickets)
	return res, nil
}

// Table renders Figures 4a/4b.
func (r *Figure4Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 4a/4b: failure root causes (%d tickets, 7 months)", r.Tickets),
		Columns: []string{"cause", "duration share (4a)", "event share (4b)", "SNR-derived events"},
	}
	for _, c := range failures.Causes() {
		t.Rows = append(t.Rows, []string{
			c.String(),
			pct(r.Shares.DurationShare[c]),
			pct(r.Shares.EventShare[c]),
			pct(r.SNRDerived.EventShare[c]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("opportunity area (non-fiber-cut events): %s (paper: over 90%%)", pct(r.Shares.OpportunityEventShare())),
		fmt.Sprintf("last column: causes assigned to the %d SNR-detected fleet failures (loss-of-light conditioned)", r.SNRDerivedEvents),
		"paper anchors: maintenance ~25% of events / ~20% of duration; fiber cuts ~5% of events / ~10% of duration")
	return t
}

// Figure4cResult is the CDF of the lowest SNR at failure events.
type Figure4cResult struct {
	CDF stats.CDF
	// FracAbove3 is the headline: ≥25% of failures keep ≥3 dB
	// (enough for 50 Gbps).
	FracAbove3 float64
	Events     int
}

// Figure4c regenerates the failure-SNR distribution.
func Figure4c(o Options) (*Figure4cResult, error) {
	defer o.span("figure4c")()
	fs, err := dataset.AnalyzeFleet(o.datasetConfig())
	if err != nil {
		return nil, err
	}
	if len(fs.FailureLowestSNR) == 0 {
		return nil, fmt.Errorf("experiments: no failures in fleet — scale too small")
	}
	c, err := stats.NewCDF(fs.FailureLowestSNR)
	if err != nil {
		return nil, err
	}
	return &Figure4cResult{
		CDF:        c,
		FracAbove3: stats.FractionAtLeast(fs.FailureLowestSNR, 3),
		Events:     len(fs.FailureLowestSNR),
	}, nil
}

// Table renders Figure 4c.
func (r *Figure4cResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 4c: lowest SNR at link failure events (%d events)", r.Events),
		Columns: []string{"SNR dB", "CDF"},
	}
	for _, x := range []float64{0, 0.5, 1, 2, 3, 4, 5, 6, 6.5} {
		t.Rows = append(t.Rows, []string{f2(x), f2(r.CDF.At(x))})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("failures with lowest SNR >= 3.0 dB: %s (paper: nearly 25%%) — avoidable at 50 Gbps", pct(r.FracAbove3)))
	return t
}
