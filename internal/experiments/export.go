package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Machine-readable exports of experiment tables, for plotting pipelines
// (the paper's figures are plots; CSV feeds gnuplot/matplotlib, and
// Markdown feeds docs).

// RenderCSV writes the table as CSV: a header row of column names, then
// the data rows. Notes become trailing comment-like rows prefixed with
// "#note" in the first cell so spreadsheet imports keep them visible
// without breaking the rectangle.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		rec := make([]string, len(t.Columns))
		if len(rec) == 0 {
			rec = []string{""}
		}
		rec[0] = "#note: " + n
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderMarkdown writes the table as a GitHub-flavored Markdown table
// with the title as a heading and notes as a list.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s\n\n", t.Title); err != nil {
		return err
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = esc(c)
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range cells {
			if i < len(row) {
				cells[i] = esc(row[i])
			}
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	if len(t.Notes) > 0 {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for _, n := range t.Notes {
			if _, err := fmt.Fprintf(w, "- %s\n", n); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
