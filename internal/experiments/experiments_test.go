package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/failures"
)

// Quick options shared by the tests; individual tests shrink further
// where the full small fleet is not needed.
func quick() Options { return QuickOptions() }

func renderOK(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, tab.Title) {
		t.Fatalf("render missing title: %s", out)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("table has no rows")
	}
	return out
}

func TestFigure1(t *testing.T) {
	o := quick()
	res, err := Figure1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWavelength) != o.Dataset.Fiber.Wavelengths {
		t.Fatalf("wavelengths = %d", len(res.PerWavelength))
	}
	for _, w := range res.PerWavelength {
		if w.MindB > w.MeandB || w.MaxdB < w.MeandB {
			t.Fatalf("wl %d: min/mean/max ordering broken", w.Wavelength)
		}
		// Time above thresholds is non-increasing in capacity.
		prev := 1.1
		for _, m := range res.Thresholds {
			frac := w.TimeAtCapacity[m.Capacity]
			if frac > prev+1e-12 {
				t.Fatalf("wl %d: time fraction not monotone", w.Wavelength)
			}
			prev = frac
		}
		// Most wavelengths should clear 100 Gbps almost always.
	}
	renderOK(t, res.Table())
}

func TestFigure1Series(t *testing.T) {
	o := quick()
	res, err := Figure1Series(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != o.Dataset.Fiber.Wavelengths {
		t.Fatalf("series = %d", len(res.Series))
	}
	if res.StepHours <= 0 {
		t.Fatalf("step = %v", res.StepHours)
	}
	for w, row := range res.Series {
		if len(row) < 100 || len(row) > 300 {
			t.Fatalf("wl %d has %d points, want ≈ 200", w, len(row))
		}
		for _, v := range row {
			if v < 0 || v > 30 {
				t.Fatalf("wl %d has implausible SNR %v", w, v)
			}
		}
	}
	renderOK(t, res.Table())
}

func TestFigure2a(t *testing.T) {
	res, err := Figure2a(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: most links have narrow HDR, wide ranges exist.
	if res.FracHDRUnder2 < 0.6 {
		t.Fatalf("HDR<2dB = %v, want most links", res.FracHDRUnder2)
	}
	if res.MeanRange < 3 {
		t.Fatalf("mean range = %v, want wide", res.MeanRange)
	}
	// HDR CDF dominates range CDF (HDR width <= range always).
	for _, x := range []float64{1, 2, 5, 10} {
		if res.HDRCDF.At(x) < res.RangeCDF.At(x)-1e-9 {
			t.Fatalf("HDR CDF below range CDF at %v", x)
		}
	}
	renderOK(t, res.Table())
}

func TestFigure2b(t *testing.T) {
	res, err := Figure2b(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Shares sum to <= 1 (links with no feasible rung excluded).
	var sum float64
	for _, c := range res.Capacities {
		sum += res.ShareAt[c]
	}
	if sum > 1+1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	// Cumulative is monotone and ends near 1.
	prev := 0.0
	for _, c := range res.Capacities {
		if res.CumulativeAt[c] < prev {
			t.Fatal("cumulative not monotone")
		}
		prev = res.CumulativeAt[c]
	}
	if res.FracAtLeast175 < 0.5 {
		t.Fatalf("feasible>=175 = %v, want the majority", res.FracAtLeast175)
	}
	if res.GainTbpsAt2000Links < 80 || res.GainTbpsAt2000Links > 250 {
		t.Fatalf("extrapolated gain = %v Tbps, want the 145 Tbps ballpark", res.GainTbpsAt2000Links)
	}
	renderOK(t, res.Table())
}

func TestFigure3a(t *testing.T) {
	res, err := Figure3a(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLink) != quick().Dataset.Fiber.Wavelengths {
		t.Fatalf("per-link rows = %d", len(res.PerLink))
	}
	// The paper's shape: failures at 200G (median) at least those at
	// 100G, typically far more.
	if res.Median[200] < res.Median[100] {
		t.Fatalf("median failures at 200G (%d) below 100G (%d)", res.Median[200], res.Median[100])
	}
	if res.Max[200] < res.Max[175] {
		t.Fatalf("max failures at 200G (%d) below 175G (%d)", res.Max[200], res.Max[175])
	}
	renderOK(t, res.Table())
}

func TestFigure3b(t *testing.T) {
	res, err := Figure3b(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 100G failures exist and last hours on average.
	if res.Events[100] == 0 {
		t.Fatal("no 100G failure events")
	}
	if res.MeanHours[100] < 0.25 {
		t.Fatalf("mean failure duration %v h, want hours", res.MeanHours[100])
	}
	for _, c := range res.Capacities {
		if res.Events[c] > 0 && res.P95Hours[c] < res.MedianHours[c] {
			t.Fatalf("p95 < median at %v Gbps", c)
		}
	}
	renderOK(t, res.Table())
}

func TestFigure4(t *testing.T) {
	res, err := Figure4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tickets != 250 {
		t.Fatalf("tickets = %d, want the paper's 250", res.Tickets)
	}
	// Fiber cuts must be a small share of events; opportunity > 0.85.
	if res.Shares.EventShare[failures.CauseFiberCut] > 0.15 {
		t.Fatalf("fiber cut share = %v", res.Shares.EventShare[failures.CauseFiberCut])
	}
	if res.Shares.OpportunityEventShare() < 0.85 {
		t.Fatalf("opportunity = %v", res.Shares.OpportunityEventShare())
	}
	// The SNR-derived cross-validation population exists and agrees on
	// the headline: fiber cuts are rare there too.
	if res.SNRDerivedEvents == 0 {
		t.Fatal("no SNR-derived tickets")
	}
	if res.SNRDerived.EventShare[failures.CauseFiberCut] > 0.2 {
		t.Fatalf("SNR-derived fiber-cut share = %v", res.SNRDerived.EventShare[failures.CauseFiberCut])
	}
	renderOK(t, res.Table())
}

func TestFigure4c(t *testing.T) {
	res, err := Figure4c(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("no failure events")
	}
	// All lowest SNRs are below the 6.5 threshold by construction.
	if res.CDF.At(6.5) < 1-1e-9 {
		t.Fatalf("CDF at threshold = %v, want 1", res.CDF.At(6.5))
	}
	if res.FracAbove3 <= 0.05 || res.FracAbove3 >= 0.6 {
		t.Fatalf("frac above 3 dB = %v, want ≈ 0.25", res.FracAbove3)
	}
	renderOK(t, res.Table())
}

func TestFigure5(t *testing.T) {
	o := quick()
	res, err := Figure5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 3 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	// EVM and SER increase with constellation density at fixed SNR.
	for i := 1; i < len(res.Panels); i++ {
		if res.Panels[i].SER < res.Panels[i-1].SER {
			t.Fatalf("SER not increasing: %v then %v", res.Panels[i-1].SER, res.Panels[i].SER)
		}
	}
	for _, p := range res.Panels {
		if len(p.Symbols) != o.ConstellationSymbols {
			t.Fatalf("%v symbols = %d", p.Capacity, len(p.Symbols))
		}
		if p.EVM <= 0 {
			t.Fatalf("%v EVM = %v", p.Capacity, p.EVM)
		}
		if p.SNRdB < 12 || p.SNRdB > 22 {
			t.Fatalf("%v estimated SNR = %v, channel is 17 dB", p.Capacity, p.SNRdB)
		}
	}
	renderOK(t, res.Table())
}

func TestFigure6b(t *testing.T) {
	o := quick()
	res, err := Figure6b(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PowerCycle) != o.BVTChanges || len(res.Hot) != o.BVTChanges {
		t.Fatalf("sample counts: %d, %d", len(res.PowerCycle), len(res.Hot))
	}
	if res.PowerCycleMean < 40 || res.PowerCycleMean > 110 {
		t.Fatalf("power-cycle mean = %v s (paper: 68 s)", res.PowerCycleMean)
	}
	if res.HotMean < 0.01 || res.HotMean > 0.09 {
		t.Fatalf("hot mean = %v s (paper: 35 ms)", res.HotMean)
	}
	renderOK(t, res.Table())
}

func TestFigure7(t *testing.T) {
	res, err := Figure7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modes) != 2 {
		t.Fatalf("modes = %d", len(res.Modes))
	}
	few, short := res.Modes[0], res.Modes[1]
	// Both satisfy the full 250 Gbps demand.
	if few.Shipped < 249.9 || short.Shipped < 249.9 {
		t.Fatalf("shipped: %v, %v", few.Shipped, short.Shipped)
	}
	// The paper's contrast: few-increases upgrades fewer links than
	// short-paths, which upgrades both and uses one-hop paths.
	if few.Upgrades >= short.Upgrades {
		t.Fatalf("few-increases upgraded %d, short-paths %d", few.Upgrades, short.Upgrades)
	}
	if short.Upgrades != 2 {
		t.Fatalf("short-paths upgraded %d links, want 2", short.Upgrades)
	}
	if short.MeanHops > few.MeanHops {
		t.Fatalf("short-paths hops %v > few-increases %v", short.MeanHops, few.MeanHops)
	}
	renderOK(t, res.Table())
}

func TestFigure8(t *testing.T) {
	res, err := Figure8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.WidestBefore != 100 {
		t.Fatalf("widest before = %v", res.WidestBefore)
	}
	if res.WidestAfter != 200 {
		t.Fatalf("widest after = %v", res.WidestAfter)
	}
	if res.TotalAfter != 200 {
		t.Fatalf("total after = %v (gadget must cap at 200)", res.TotalAfter)
	}
	if !res.UpgradeInstructed {
		t.Fatal("translation lost the upgrade")
	}
	renderOK(t, res.Table())
}

func TestTheorem1(t *testing.T) {
	o := quick()
	res, err := Theorem1(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != o.Trials*3 {
		t.Fatalf("trials = %d", res.Trials)
	}
	if res.Holds != res.Trials {
		t.Fatalf("theorem held in %d/%d instances", res.Holds, res.Trials)
	}
	if res.MeanFull < res.MeanBase {
		t.Fatal("upgrades reduced mean capacity")
	}
	renderOK(t, res.Table())
}

func TestThroughputGains(t *testing.T) {
	res, err := ThroughputGains(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 3 {
		t.Fatalf("policies = %d", len(res.Policies))
	}
	if res.GainOverStatic <= 1 {
		t.Fatalf("dynamic gain = %v, want > 1 under oversubscription", res.GainOverStatic)
	}
	// Dynamic must not satisfy less than static-100.
	var static, dynamic float64
	for _, p := range res.Policies {
		switch p.Policy.String() {
		case "static-100G":
			static = p.MeanSatisfied
		case "dynamic":
			dynamic = p.MeanSatisfied
		}
	}
	if dynamic < static {
		t.Fatalf("dynamic satisfied %v < static %v", dynamic, static)
	}
	renderOK(t, res.Table())
}

func TestAvailabilityGains(t *testing.T) {
	res, err := AvailabilityGains(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures detected")
	}
	if res.Avoidable == 0 {
		t.Fatal("no avoidable failures — calibration broken")
	}
	if res.AvoidableFrac <= 0.05 || res.AvoidableFrac >= 0.6 {
		t.Fatalf("avoidable fraction = %v, want ≈ 0.25", res.AvoidableFrac)
	}
	if res.MeanAvailabilityFlap < res.MeanAvailabilityStatic {
		t.Fatal("flap rule reduced availability")
	}
	renderOK(t, res.Table())
}

func TestThresholdSensitivity(t *testing.T) {
	res, err := ThresholdSensitivity(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Fractions decrease as thresholds rise.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].FracAtLeast175 > res.Points[i-1].FracAtLeast175+1e-9 {
			t.Fatal("feasible fraction not decreasing with threshold shift")
		}
		if res.Points[i].GainTbpsAt2000 > res.Points[i-1].GainTbpsAt2000+1e-9 {
			t.Fatal("gain not decreasing with threshold shift")
		}
	}
	// Qualitative conclusion survives: most links gain >= 75 G at +1 dB.
	if last := res.Points[len(res.Points)-1]; last.FracGainAtLeast75 < 0.5 {
		t.Fatalf("+1 dB shift kills the conclusion: %v", last.FracGainAtLeast75)
	}
	renderOK(t, res.Table())
}

func TestControllerAblation(t *testing.T) {
	res, err := ControllerAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("variants = %d", len(res.Variants))
	}
	var plain, damped *ControllerVariant
	for i := range res.Variants {
		switch res.Variants[i].Name {
		case "no safeguards":
			plain = &res.Variants[i]
		case "flap damping":
			damped = &res.Variants[i]
		}
	}
	if plain == nil || damped == nil {
		t.Fatal("variants missing")
	}
	if damped.Changes >= plain.Changes {
		t.Fatalf("damping did not cut churn: %d vs %d", damped.Changes, plain.Changes)
	}
	if damped.DarkRounds != 0 {
		t.Fatal("damping produced dark links")
	}
	renderOK(t, res.Table())
}

func TestQuickVsDefaultOptions(t *testing.T) {
	q, d := QuickOptions(), DefaultOptions()
	if q.Dataset.Links() >= d.Dataset.Links() {
		t.Fatal("quick options not smaller")
	}
	if d.BVTChanges != 200 {
		t.Fatalf("default BVT changes = %d, want the paper's 200", d.BVTChanges)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{
		Title:   "x",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"wide-cell-content", "1"}},
		Notes:   []string{"n"},
	}
	out := renderOK(t, tab)
	if !strings.Contains(out, "note: n") {
		t.Fatal("note missing")
	}
}
