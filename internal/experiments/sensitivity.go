package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/modulation"
	"repro/internal/stats"
)

// SensitivityPoint is the fleet outcome under one threshold-ladder
// shift.
type SensitivityPoint struct {
	// ShiftdB is added to every unpublished threshold (the rungs above
	// 100 Gbps); the published 3.0 and 6.5 dB anchors stay fixed.
	ShiftdB float64
	// FracAtLeast175 and GainTbpsAt2000 are the two headline numbers
	// of Figure 2b under the shifted ladder.
	FracAtLeast175 float64
	GainTbpsAt2000 float64
	// FracGainAtLeast75 is the share of links gaining ≥ 75 Gbps (the
	// paper's "80% of links can gain 75 Gbps or more").
	FracGainAtLeast75 float64
}

// ThresholdSensitivityResult quantifies how much the reproduction
// depends on the unpublished 125–200 Gbps SNR thresholds (DESIGN.md's
// calibration note).
type ThresholdSensitivityResult struct {
	Points []SensitivityPoint
}

// ThresholdSensitivity sweeps the unpublished rungs of the ladder by
// ±1 dB and recomputes the Figure 2b aggregates. The same fleet (same
// seed) is analyzed under each ladder, so differences are purely the
// ladder's.
func ThresholdSensitivity(o Options) (*ThresholdSensitivityResult, error) {
	defer o.span("threshold-sensitivity")()
	res := &ThresholdSensitivityResult{}
	for _, shift := range []float64{-1, -0.5, 0, 0.5, 1} {
		ladder, err := shiftedLadder(shift)
		if err != nil {
			return nil, err
		}
		cfg := o.datasetConfig()
		cfg.Ladder = ladder
		fs, err := dataset.AnalyzeFleet(cfg)
		if err != nil {
			return nil, err
		}
		caps := fs.FeasibleCapacities()
		gain75 := 0
		for _, c := range caps {
			if c >= float64(dataset.DeployedCapacity)+75 {
				gain75++
			}
		}
		res.Points = append(res.Points, SensitivityPoint{
			ShiftdB:           shift,
			FracAtLeast175:    stats.FractionAtLeast(caps, 175),
			GainTbpsAt2000:    fs.CapacityGainGbps / float64(len(fs.Links)) * 2000 / 1000,
			FracGainAtLeast75: float64(gain75) / float64(len(caps)),
		})
	}
	return res, nil
}

// shiftedLadder returns the default ladder with the unpublished rungs
// (above 100 Gbps) shifted by d dB.
func shiftedLadder(d float64) (*modulation.Ladder, error) {
	modes := modulation.Default().Modes()
	for i := range modes {
		if modes[i].Capacity > 100 {
			modes[i].MinSNRdB += d
		}
	}
	return modulation.NewLadder(modes)
}

// Table renders the sensitivity sweep.
func (r *ThresholdSensitivityResult) Table() *Table {
	t := &Table{
		Title:   "Sensitivity: unpublished threshold rungs shifted by ±1 dB",
		Columns: []string{"shift dB", "feasible>=175G", "gain Tbps@2000", "gain>=75G share"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%+.1f", p.ShiftdB),
			pct(p.FracAtLeast175),
			fmt.Sprintf("%.0f", p.GainTbpsAt2000),
			pct(p.FracGainAtLeast75),
		})
	}
	t.Notes = append(t.Notes,
		"published anchors (3.0 dB -> 50G, 6.5 dB -> 100G) are held fixed",
		"qualitative conclusions survive the sweep: most links gain >= 75 Gbps at every shift")
	return t
}
