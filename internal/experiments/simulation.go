package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/failures"
	"repro/internal/snr"
	"repro/internal/wan"
)

// ThroughputPolicy is one row of the throughput-gain simulation.
type ThroughputPolicy struct {
	Policy wan.Policy
	// MeanSatisfied is the average demand-satisfaction fraction.
	MeanSatisfied float64
	// TotalShippedGbps sums TE throughput over rounds.
	TotalShippedGbps float64
	// MeanCapacityGbps is the average available IP capacity.
	MeanCapacityGbps float64
	// Changes counts capacity changes; DisruptedGbpsSec is the
	// estimated reconfiguration hit; DarkLinkRounds sums dark links.
	Changes          int
	DisruptedGbpsSec float64
	DarkLinkRounds   int
}

// ThroughputGainsResult is the §1 headline simulation: "simulate the
// throughput gains from deploying our approach".
type ThroughputGainsResult struct {
	Topology string
	Rounds   int
	Policies []ThroughputPolicy
	// GainOverStatic is dynamic shipped / static-100 shipped.
	GainOverStatic float64
}

// ThroughputGains runs static-100G, static-max, and dynamic operation
// against identical SNR evolution and oversubscribed gravity traffic.
// The backbone defaults to Abilene (the topology the figure notes were
// calibrated on); Options.SimTopology swaps in any wan.ParseTopology
// spec, up to paper-scale continental backbones.
func ThroughputGains(o Options) (*ThroughputGainsResult, error) {
	defer o.span("throughput-gains")()
	net := wan.Abilene(2)
	topoLabel := "Abilene (11 nodes, 14 fibers, 2 wavelengths)"
	if o.SimTopology != "" {
		wl := o.SimWavelengths
		if wl <= 0 {
			wl = 2
		}
		var err error
		if net, err = wan.ParseTopology(o.SimTopology, wl, o.Seed^0x514); err != nil {
			return nil, err
		}
		topoLabel = fmt.Sprintf("%s (%d nodes, %d fibers, %d wavelengths)",
			o.SimTopology, net.G.NumNodes(), net.NumFibers, net.Wavelengths)
	}
	sim, err := wan.NewSimulation(wan.SimConfig{
		Net:            net,
		Rounds:         o.SimRounds,
		RoundInterval:  6 * time.Hour,
		Seed:           o.Seed ^ 0x514,
		DemandFraction: 1.2,
		DemandSigma:    0.1,
		MaxDemands:     o.SimMaxDemands,
		Obs:            o.Obs,
		Workers:        o.Workers,
		Flight:         o.Flight,
		FlightRun:      "throughput-gains",
	})
	if err != nil {
		return nil, err
	}
	res := &ThroughputGainsResult{Topology: topoLabel, Rounds: o.SimRounds}
	policies := []wan.Policy{wan.PolicyStatic100, wan.PolicyStaticMax, wan.PolicyDynamic}
	runs, err := sim.RunPolicies(policies)
	if err != nil {
		return nil, err
	}
	var static100 float64
	for i, p := range policies {
		r := runs[i]
		row := ThroughputPolicy{
			Policy:           p,
			MeanSatisfied:    r.MeanSatisfied(),
			TotalShippedGbps: r.TotalShipped(),
			Changes:          r.TotalChanges(),
		}
		var capSum float64
		for _, m := range r.Rounds {
			capSum += m.CapacityGbps
			row.DisruptedGbpsSec += m.DisruptedGbpsSec
			row.DarkLinkRounds += m.LinksDark
		}
		row.MeanCapacityGbps = capSum / float64(len(r.Rounds))
		res.Policies = append(res.Policies, row)
		if p == wan.PolicyStatic100 {
			static100 = row.TotalShippedGbps
		}
		if p == wan.PolicyDynamic && static100 > 0 {
			res.GainOverStatic = row.TotalShippedGbps / static100
		}
	}
	return res, nil
}

// Table renders the throughput simulation.
func (r *ThroughputGainsResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Throughput simulation: %s, %d rounds, 1.2x oversubscribed", r.Topology, r.Rounds),
		Columns: []string{"policy", "mean satisfied", "total shipped Gbps", "mean capacity Gbps", "changes", "disrupted Gbps·s", "dark link-rounds"},
	}
	for _, p := range r.Policies {
		t.Rows = append(t.Rows, []string{
			p.Policy.String(), pct(p.MeanSatisfied), f(p.TotalShippedGbps),
			f(p.MeanCapacityGbps), fmt.Sprintf("%d", p.Changes),
			f(p.DisruptedGbpsSec), fmt.Sprintf("%d", p.DarkLinkRounds),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("dynamic ships %.2fx the traffic of static-100G (paper: 75-100%% per-link capacity gain)", r.GainOverStatic),
		"static-max harvests capacity but leaves links dark when SNR dips; dynamic flaps down instead")
	return t
}

// AvailabilityResult quantifies §2.2: failures that dynamic capacity
// would turn into 50 Gbps flaps.
type AvailabilityResult struct {
	// Failures is the number of failure events at the 100G threshold.
	Failures int
	// Avoidable is how many kept SNR ≥ 3 dB (runnable at 50 Gbps).
	Avoidable int
	// AvoidableFrac is the headline ≈25%.
	AvoidableFrac float64
	// MeanAvailabilityStatic/Flap compare per-link availability under
	// the binary rule vs the flap-to-50G rule.
	MeanAvailabilityStatic float64
	MeanAvailabilityFlap   float64
	// DowntimeAvoidedHours is the fleet-wide downtime converted into
	// degraded-but-up time.
	DowntimeAvoidedHours float64
}

// AvailabilityGains streams the fleet and compares the binary up/down
// rule against flap-to-50 Gbps.
func AvailabilityGains(o Options) (*AvailabilityResult, error) {
	defer o.span("availability-gains")()
	ladder := o.Dataset.Ladder
	th100, err := ladder.ThresholdFor(100)
	if err != nil {
		return nil, err
	}
	th50, err := ladder.ThresholdFor(50)
	if err != nil {
		return nil, err
	}
	res := &AvailabilityResult{}
	links := 0
	var availStatic, availFlap float64
	err = dataset.Stream(o.datasetConfig(), func(meta dataset.LinkMeta, s *snr.Series) error {
		links++
		spans := failures.Detect(s.Samples, th100)
		for _, sp := range spans {
			res.Failures++
			if sp.AvoidableAt(th50) {
				res.Avoidable++
				res.DowntimeAvoidedHours += sp.Hours()
			}
		}
		availStatic += failures.Availability(s.Samples, th100)
		availFlap += failures.Availability(s.Samples, th50)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.Failures > 0 {
		res.AvoidableFrac = float64(res.Avoidable) / float64(res.Failures)
	}
	if links > 0 {
		res.MeanAvailabilityStatic = availStatic / float64(links)
		res.MeanAvailabilityFlap = availFlap / float64(links)
	}
	return res, nil
}

// Table renders the availability analysis.
func (r *AvailabilityResult) Table() *Table {
	t := &Table{
		Title:   "Availability: link failures replaced by capacity flaps (§2.2)",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"failure events at 100G threshold", fmt.Sprintf("%d", r.Failures)},
			{"avoidable at 50 Gbps (SNR >= 3 dB)", fmt.Sprintf("%d (%s)", r.Avoidable, pct(r.AvoidableFrac))},
			{"mean link availability, binary rule", fmt.Sprintf("%.5f", r.MeanAvailabilityStatic)},
			{"mean link availability, flap rule", fmt.Sprintf("%.5f", r.MeanAvailabilityFlap)},
			{"downtime converted to degraded uptime", fmt.Sprintf("%.0f h", r.DowntimeAvoidedHours)},
		},
	}
	t.Notes = append(t.Notes, "paper: 25% of failures could have been avoided by driving links at 50 Gbps")
	return t
}
