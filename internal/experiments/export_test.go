package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func exportTable() *Table {
	return &Table{
		Title:   "t",
		Columns: []string{"a", "b|c"},
		Rows:    [][]string{{"1", "2"}, {"with,comma", "x|y"}},
		Notes:   []string{"hello"},
	}
}

func TestRenderCSVParsesBack(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTable().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 2 rows + 1 note
		t.Fatalf("records = %d", len(records))
	}
	if records[0][0] != "a" || records[0][1] != "b|c" {
		t.Fatalf("header = %v", records[0])
	}
	if records[2][0] != "with,comma" {
		t.Fatalf("comma cell mangled: %v", records[2])
	}
	if !strings.HasPrefix(records[3][0], "#note: ") {
		t.Fatalf("note row = %v", records[3])
	}
}

func TestRenderMarkdownShape(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTable().RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "## t\n") {
		t.Fatalf("missing heading: %q", out)
	}
	if !strings.Contains(out, "| a | b\\|c |") {
		t.Fatalf("header not escaped: %q", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("separator missing: %q", out)
	}
	if !strings.Contains(out, "x\\|y") {
		t.Fatalf("cell pipe not escaped: %q", out)
	}
	if !strings.Contains(out, "- hello") {
		t.Fatalf("note missing: %q", out)
	}
}

func TestRenderMarkdownRaggedRow(t *testing.T) {
	tab := &Table{Title: "x", Columns: []string{"a", "b"}, Rows: [][]string{{"only-one"}}}
	var buf bytes.Buffer
	if err := tab.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| only-one |  |") {
		t.Fatalf("ragged row not padded: %q", buf.String())
	}
}

func TestMapBackedTablesRenderByteIdentical(t *testing.T) {
	// Regression pin for the rwc-lint mapiter sweep audit: Figure2b and
	// Figure3a hold their aggregates in map[Gbps] fields, and their
	// Table() methods must only ever read those maps through the ordered
	// Capacities slice. If anyone later ranges the map into rows, two
	// same-seed renders stop being byte-identical and this fails (with
	// high probability per run, certainty across CI runs).
	render := func() []byte {
		o := quick()
		r2b, err := Figure2b(o)
		if err != nil {
			t.Fatal(err)
		}
		r3a, err := Figure3a(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tab := range []*Table{r2b.Table(), r3a.Table()} {
			if err := tab.RenderCSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed table renders differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

func TestRenderCSVAllFigures(t *testing.T) {
	// Every experiment's table must survive both exports.
	o := quick()
	res7, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	res6, err := Figure6b(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*Table{res7.Table(), res6.Table()} {
		var buf bytes.Buffer
		if err := tab.RenderCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := csv.NewReader(&buf).ReadAll(); err != nil {
			t.Fatalf("%s: CSV does not parse back: %v", tab.Title, err)
		}
		buf.Reset()
		if err := tab.RenderMarkdown(&buf); err != nil {
			t.Fatal(err)
		}
	}
}
