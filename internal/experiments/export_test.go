package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func exportTable() *Table {
	return &Table{
		Title:   "t",
		Columns: []string{"a", "b|c"},
		Rows:    [][]string{{"1", "2"}, {"with,comma", "x|y"}},
		Notes:   []string{"hello"},
	}
}

func TestRenderCSVParsesBack(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTable().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 2 rows + 1 note
		t.Fatalf("records = %d", len(records))
	}
	if records[0][0] != "a" || records[0][1] != "b|c" {
		t.Fatalf("header = %v", records[0])
	}
	if records[2][0] != "with,comma" {
		t.Fatalf("comma cell mangled: %v", records[2])
	}
	if !strings.HasPrefix(records[3][0], "#note: ") {
		t.Fatalf("note row = %v", records[3])
	}
}

func TestRenderMarkdownShape(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTable().RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "## t\n") {
		t.Fatalf("missing heading: %q", out)
	}
	if !strings.Contains(out, "| a | b\\|c |") {
		t.Fatalf("header not escaped: %q", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("separator missing: %q", out)
	}
	if !strings.Contains(out, "x\\|y") {
		t.Fatalf("cell pipe not escaped: %q", out)
	}
	if !strings.Contains(out, "- hello") {
		t.Fatalf("note missing: %q", out)
	}
}

func TestRenderMarkdownRaggedRow(t *testing.T) {
	tab := &Table{Title: "x", Columns: []string{"a", "b"}, Rows: [][]string{{"only-one"}}}
	var buf bytes.Buffer
	if err := tab.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| only-one |  |") {
		t.Fatalf("ragged row not padded: %q", buf.String())
	}
}

func TestRenderCSVAllFigures(t *testing.T) {
	// Every experiment's table must survive both exports.
	o := quick()
	res7, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	res6, err := Figure6b(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*Table{res7.Table(), res6.Table()} {
		var buf bytes.Buffer
		if err := tab.RenderCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := csv.NewReader(&buf).ReadAll(); err != nil {
			t.Fatalf("%s: CSV does not parse back: %v", tab.Title, err)
		}
		buf.Reset()
		if err := tab.RenderMarkdown(&buf); err != nil {
			t.Fatal(err)
		}
	}
}
