package experiments

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/graph"
	"repro/internal/scenario"
	"repro/internal/te"
)

// ControllerVariant is one row of the safeguard ablation.
type ControllerVariant struct {
	Name string
	// Changes is total modulation churn over the scenario.
	Changes int
	// MeanSatisfied is the average demand-satisfaction fraction.
	MeanSatisfied float64
	// DegradedRounds and DarkRounds are the availability ledger.
	DegradedRounds, DarkRounds int
}

// ControllerAblationResult compares the control loop's operational
// safeguards (flap damping, change budget) on a flapping-link scenario:
// the churn-vs-throughput trade-off DESIGN.md calls out.
type ControllerAblationResult struct {
	Rounds   int
	Variants []ControllerVariant
}

// ControllerAblation runs a 4-node ring whose one link oscillates
// around the 100 G threshold every round, under four controller
// configurations.
func ControllerAblation(o Options) (*ControllerAblationResult, error) {
	defer o.span("controller-ablation")()
	g := graph.New()
	n := make([]graph.NodeID, 4)
	for i := range n {
		n[i] = g.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := range n {
		j := (i + 1) % 4
		g.AddEdge(graph.Edge{From: n[i], To: n[j], Weight: 1})
		g.AddEdge(graph.Edge{From: n[j], To: n[i], Weight: 1})
	}

	rounds := o.SimRounds
	if rounds < 8 {
		rounds = 8
	}
	script := scenario.Script{
		Rounds:     rounds,
		BaselinedB: 16,
		Demands: []te.Demand{
			{Src: n[0], Dst: n[2], Volume: 130},
			{Src: n[1], Dst: n[3], Volume: 60},
		},
	}
	// Link 0 flaps between healthy and 50 Gbps territory every round.
	for r := 0; r < rounds; r++ {
		snr := 16.0
		if r%2 == 0 {
			snr = 4.2
		}
		script.Events = append(script.Events, scenario.Event{Round: r, Link: 0, SNRdB: snr})
	}

	cfg := controller.Config{UpgradeHoldObservations: 1, Obs: o.Obs}
	// Aggressive damping: two changes in quick succession suppress the
	// link until a long quiet period (slow decay) — it parks at the
	// degraded-but-up rung instead of flapping.
	damping := controller.DampingConfig{
		PenaltyPerChange:  1000,
		SuppressThreshold: 1800,
		ReuseThreshold:    400,
		DecayFactor:       0.9,
	}
	variants := []struct {
		name string
		tune func(*controller.Controller)
	}{
		{"no safeguards", nil},
		{"flap damping", func(c *controller.Controller) {
			c.EnableDamping(damping)
		}},
		{"change budget 1/round", func(c *controller.Controller) {
			c.SetMaxChangesPerRound(1)
		}},
		{"damping + budget", func(c *controller.Controller) {
			c.EnableDamping(damping)
			c.SetMaxChangesPerRound(1)
		}},
	}

	res := &ControllerAblationResult{Rounds: rounds}
	for _, v := range variants {
		rep, err := scenario.RunWith(g, 100, cfg, v.tune, script)
		if err != nil {
			return nil, fmt.Errorf("experiments: variant %q: %w", v.name, err)
		}
		res.Variants = append(res.Variants, ControllerVariant{
			Name:           v.name,
			Changes:        rep.TotalChanges,
			MeanSatisfied:  rep.MeanSatisfied,
			DegradedRounds: rep.DegradedLinkRounds,
			DarkRounds:     rep.DarkLinkRounds,
		})
	}
	return res, nil
}

// Table renders the ablation.
func (r *ControllerAblationResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Controller safeguards on a flapping link (%d rounds)", r.Rounds),
		Columns: []string{"variant", "changes", "mean satisfied", "degraded link-rounds", "dark link-rounds"},
	}
	for _, v := range r.Variants {
		t.Rows = append(t.Rows, []string{
			v.Name, fmt.Sprintf("%d", v.Changes), pct(v.MeanSatisfied),
			fmt.Sprintf("%d", v.DegradedRounds), fmt.Sprintf("%d", v.DarkRounds),
		})
	}
	t.Notes = append(t.Notes,
		"damping trades a little throughput (link parks at 50G) for far fewer modulation changes",
		"each change costs ~68 s of downtime on power-cycling transceivers — churn is not free")
	return t
}
