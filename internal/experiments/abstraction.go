package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/te"
)

// figure7Topology builds the paper's 4-node example: bidirectional
// 100 Gbps links A-B, C-D, A-C, B-D; the (A,B) and (C,D) adjacencies
// can double their capacity at penalty 100 per unit.
func figure7Topology() (*core.Topology, map[string]graph.NodeID, error) {
	g := graph.New()
	nodes := map[string]graph.NodeID{
		"A": g.AddNode("A"), "B": g.AddNode("B"),
		"C": g.AddNode("C"), "D": g.AddNode("D"),
	}
	top := core.NewTopology(g)
	add := func(u, v graph.NodeID, upgradable bool) error {
		for _, pair := range [][2]graph.NodeID{{u, v}, {v, u}} {
			id := g.AddEdge(graph.Edge{From: pair[0], To: pair[1], Capacity: 100, Weight: 1})
			if upgradable {
				if err := top.SetUpgrade(id, 100, 100); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := add(nodes["A"], nodes["B"], true); err != nil {
		return nil, nil, err
	}
	if err := add(nodes["C"], nodes["D"], true); err != nil {
		return nil, nil, err
	}
	if err := add(nodes["A"], nodes["C"], false); err != nil {
		return nil, nil, err
	}
	if err := add(nodes["B"], nodes["D"], false); err != nil {
		return nil, nil, err
	}
	return top, nodes, nil
}

// Figure7Mode is one panel of Figure 7.
type Figure7Mode struct {
	Name string
	// Upgrades is the number of links whose capacity was raised.
	Upgrades int
	// Shipped is the total traffic delivered (demand is 2×125).
	Shipped float64
	// MeanHops is the amount-weighted average path length.
	MeanHops float64
	// PenaltyCost is the TE-charged cost.
	PenaltyCost float64
}

// Figure7Result compares the penalty modes of the abstraction.
type Figure7Result struct {
	Modes []Figure7Mode
}

// Figure7 reproduces the worked example: demands A→B = C→D = 125 Gbps
// against 100 Gbps links, under (b) the few-increases penalty (capacity
// changes cost, detours are free) and (c) the short-paths mode (unit
// weight on every edge).
func Figure7(o Options) (*Figure7Result, error) {
	defer o.span("figure7")()
	res := &Figure7Result{}
	for _, mode := range []struct {
		name    string
		penalty core.PenaltyFunc
	}{
		{"few increases (7b)", core.PenaltyFromMatrix},
		{"short paths (7c)", core.PenaltyUnitWeights},
	} {
		top, nodes, err := figure7Topology()
		if err != nil {
			return nil, err
		}
		aug, err := core.Augment(top, mode.penalty)
		if err != nil {
			return nil, err
		}
		demands := []te.Demand{
			{Src: nodes["A"], Dst: nodes["B"], Volume: 125},
			{Src: nodes["C"], Dst: nodes["D"], Volume: 125},
		}
		alloc, err := te.Greedy{}.Allocate(aug.Graph, demands)
		if err != nil {
			return nil, err
		}
		dec, err := aug.Translate(graph.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow})
		if err != nil {
			return nil, err
		}
		// Amount-weighted mean hop count over the TE's chosen paths.
		var hopWeighted, amount float64
		for _, r := range alloc.Results {
			for _, pf := range r.Paths {
				// Count hops on the physical topology: fake edges
				// parallel real ones, so path length carries over.
				hopWeighted += float64(pf.Path.Len()) * pf.Amount
				amount += pf.Amount
			}
		}
		m := Figure7Mode{
			Name:        mode.name,
			Upgrades:    len(dec.Changes),
			Shipped:     dec.Value,
			PenaltyCost: alloc.Cost,
		}
		if amount > 0 {
			m.MeanHops = hopWeighted / amount
		}
		res.Modes = append(res.Modes, m)
	}
	return res, nil
}

// Table renders Figure 7.
func (r *Figure7Result) Table() *Table {
	t := &Table{
		Title:   "Figure 7: augmentation penalty modes on the 4-node example (demands 2 × 125 Gbps)",
		Columns: []string{"mode", "capacity changes", "shipped Gbps", "mean hops", "TE cost"},
	}
	for _, m := range r.Modes {
		t.Rows = append(t.Rows, []string{
			m.Name, fmt.Sprintf("%d", m.Upgrades), f2(m.Shipped), f2(m.MeanHops), f2(m.PenaltyCost),
		})
	}
	t.Notes = append(t.Notes,
		"7b: penalties make the TE reroute spare capacity and raise as few links as possible",
		"7c: unit weights force one-hop paths, so both links pay for an upgrade")
	return t
}

// Figure8Result demonstrates the unsplittable-flow gadget.
type Figure8Result struct {
	// WidestBefore/WidestAfter is the largest single-path capacity
	// from A to B before and after gadgetizing the link.
	WidestBefore, WidestAfter float64
	// TotalAfter is the max total A→B flow after the gadget (must stay
	// capped at the upgraded capacity).
	TotalAfter float64
	// UpgradeInstructed reports the translation still yields the
	// capacity change.
	UpgradeInstructed bool
}

// Figure8 builds the single upgradable 100→200 Gbps link and shows the
// plain augmentation cannot host an unsplittable 200 Gbps flow while
// the intermediate-vertex gadget can.
func Figure8(o Options) (*Figure8Result, error) {
	defer o.span("figure8")()
	g := graph.New()
	a, b := g.AddNode("A"), g.AddNode("B")
	e := g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100, Weight: 1})
	top := core.NewTopology(g)
	if err := top.SetUpgrade(e, 100, 100); err != nil {
		return nil, err
	}
	aug, err := core.Augment(top, core.PenaltyFromMatrix)
	if err != nil {
		return nil, err
	}
	res := &Figure8Result{WidestBefore: widestSinglePath(aug.Graph, a, b)}
	if _, err := aug.UnsplittableGadget(e); err != nil {
		return nil, err
	}
	res.WidestAfter = widestSinglePath(aug.Graph, a, b)
	total, err := aug.Graph.MaxFlowValue(a, b)
	if err != nil {
		return nil, err
	}
	res.TotalAfter = total
	flow, err := aug.Graph.MinCostMaxFlow(a, b)
	if err != nil {
		return nil, err
	}
	dec, err := aug.Translate(flow)
	if err != nil {
		return nil, err
	}
	res.UpgradeInstructed = len(dec.Changes) == 1 &&
		stats.ApproxInDelta(dec.Changes[0].NewCapacity, 200, stats.DefaultTol)
	return res, nil
}

// widestSinglePath returns the max bottleneck capacity over the k
// shortest paths (k large enough for these tiny graphs).
func widestSinglePath(g *graph.Graph, src, dst graph.NodeID) float64 {
	widest := 0.0
	for _, p := range g.KShortestPaths(src, dst, 8) {
		bn := math.Inf(1)
		for _, id := range p.Edges {
			if c := g.Edge(id).Capacity; c < bn {
				bn = c
			}
		}
		if bn > widest {
			widest = bn
		}
	}
	return widest
}

// Table renders Figure 8.
func (r *Figure8Result) Table() *Table {
	t := &Table{
		Title:   "Figure 8: unsplittable 200 Gbps flow via intermediate vertices",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"widest single path, plain augmentation", f2(r.WidestBefore)},
			{"widest single path, gadget", f2(r.WidestAfter)},
			{"total A→B capacity after gadget", f2(r.TotalAfter)},
			{"upgrade still instructed by translation", fmt.Sprintf("%v", r.UpgradeInstructed)},
		},
	}
	t.Notes = append(t.Notes, "the gadget serializes base+extra so one path carries 200 Gbps while total stays capped at 200")
	return t
}

// Theorem1Result summarizes the randomized equivalence check.
type Theorem1Result struct {
	Trials, Holds int
	// MeanBase/MeanFull are average max-flow values before/after
	// upgrades across trials.
	MeanBase, MeanFull float64
	// Penalties lists the penalty functions exercised per trial.
	Penalties []string
}

// Theorem1 verifies min-cost max-flow on G′ ≡ max-flow on G with
// dynamic capacities over o.Trials random topologies × 3 penalty
// functions.
func Theorem1(o Options) (*Theorem1Result, error) {
	defer o.span("theorem1")()
	r := rng.New(o.Seed ^ 0x7e0)
	penalties := []struct {
		name string
		fn   core.PenaltyFunc
	}{
		{"matrix", core.PenaltyFromMatrix},
		{"traffic", core.PenaltyTrafficProportional},
		{"unit", core.PenaltyUnitWeights},
	}
	res := &Theorem1Result{}
	for _, p := range penalties {
		res.Penalties = append(res.Penalties, p.name)
	}
	for trial := 0; trial < o.Trials; trial++ {
		g := graph.New()
		n := 6 + r.Intn(10)
		g.AddNodes(n)
		top := core.NewTopology(g)
		for i := 0; i < n*3; i++ {
			u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
			if u == v {
				continue
			}
			id := g.AddEdge(graph.Edge{From: u, To: v, Capacity: r.Uniform(50, 150), Weight: 1})
			if r.Bernoulli(0.6) {
				if err := top.SetUpgrade(id, r.Uniform(25, 100), r.Uniform(1, 100)); err != nil {
					return nil, err
				}
			}
			if err := top.SetTraffic(id, r.Uniform(0, 100)); err != nil {
				return nil, err
			}
		}
		src, dst := graph.NodeID(0), graph.NodeID(n-1)
		for _, p := range penalties {
			rep, err := core.CheckTheorem1(top, src, dst, p.fn)
			if err != nil {
				return nil, err
			}
			res.Trials++
			if rep.Holds {
				res.Holds++
			}
			res.MeanBase += rep.BaseValue
			res.MeanFull += rep.FullValue
		}
	}
	if res.Trials > 0 {
		res.MeanBase /= float64(res.Trials)
		res.MeanFull /= float64(res.Trials)
	}
	return res, nil
}

// Table renders the Theorem 1 check.
func (r *Theorem1Result) Table() *Table {
	t := &Table{
		Title:   "Theorem 1: min-cost max-flow on G' == max-flow on G with dynamic capacities",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"instances checked", fmt.Sprintf("%d (penalties: %v)", r.Trials, r.Penalties)},
			{"equivalence holds", fmt.Sprintf("%d / %d", r.Holds, r.Trials)},
			{"mean max-flow, current capacities", f2(r.MeanBase)},
			{"mean max-flow, dynamic capacities", f2(r.MeanFull)},
		},
	}
	return t
}
