// Package experiments regenerates every table and figure of the
// paper's evaluation. Each FigureN function returns a typed result with
// the same series the paper plots, plus a Table rendering for the
// command-line harness. DESIGN.md maps figures to the modules used
// here; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Options scales the experiments.
type Options struct {
	// Dataset is the fleet configuration behind the §2 figures.
	Dataset dataset.Config
	// Seed drives everything not covered by Dataset.Seed.
	Seed uint64
	// BVTChanges is the number of modulation changes in the Figure 6b
	// testbed run (the paper uses 200).
	BVTChanges int
	// ConstellationSymbols is the per-format symbol count for Figure 5.
	ConstellationSymbols int
	// SimRounds is the number of TE rounds in the throughput
	// simulation.
	SimRounds int
	// SimTopology selects the throughput simulation's backbone as a
	// wan.ParseTopology spec (e.g. "us", "continental:200"). Empty
	// keeps the default Abilene backbone the figures were calibrated
	// on.
	SimTopology string
	// SimWavelengths is the wavelengths-per-fiber for SimTopology runs
	// (<= 0 means 2, Abilene's default).
	SimWavelengths int
	// SimMaxDemands caps the gravity matrix at the N largest demands
	// for SimTopology runs (0 = all pairs).
	SimMaxDemands int
	// Trials is the number of random instances for the Theorem 1
	// property check.
	Trials int
	// Obs receives per-figure spans, counters, and manifest phase
	// durations; nil (the default) disables observability at no cost.
	// Obs is threaded through to the simulations the figures run.
	Obs *obs.Obs
	// Flight receives per-round decision frames from the simulations
	// the figures run (currently the throughput-gains simulation,
	// labeled by run name); nil disables recording.
	Flight *flight.Recorder
	// Workers bounds the fan-out inside each figure (fleet generation
	// and analysis, per-policy simulation runs); <= 0 means
	// runtime.GOMAXPROCS(0). Every value produces identical figures,
	// metrics, and traces (see internal/par).
	Workers int
}

// datasetConfig is o.Dataset with the fan-out plumbing (workers and
// observability) threaded through.
func (o Options) datasetConfig() dataset.Config {
	c := o.Dataset
	c.Workers = o.Workers
	c.Obs = o.Obs
	return c
}

// span opens a per-figure trace span plus a manifest phase timer and
// counts the computation; the returned func closes both. Every FigureN
// function defers it, so a run's trace shows exactly which figures ran
// and the manifest how long each took.
func (o Options) span(figure string) func() {
	o.Obs.Counter("experiments_figures_total",
		"Figure computations executed, by figure.",
		obs.L("figure", figure)).Inc()
	endSpan := o.Obs.Span("experiments.figure", obs.A("figure", figure))
	endPhase := o.Obs.PhaseTimer("figure/" + figure)
	o.Obs.Logger().Info("figure start", "figure", figure)
	return func() {
		endSpan()
		endPhase()
		o.Obs.Logger().Info("figure done", "figure", figure)
	}
}

// DefaultOptions is the paper-scale configuration (minutes of compute:
// 2000 links × 2.5 years).
func DefaultOptions() Options {
	return Options{
		Dataset:              dataset.DefaultConfig(),
		Seed:                 2017,
		BVTChanges:           200,
		ConstellationSymbols: 4096,
		SimRounds:            120,
		Trials:               200,
	}
}

// QuickOptions is a scaled-down configuration for tests and benchmarks
// (seconds of compute) that preserves every experiment's shape.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Dataset = dataset.SmallConfig()
	o.BVTChanges = 60
	o.ConstellationSymbols = 1024
	o.SimRounds = 16
	o.Trials = 25
	return o
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && len(cell) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	var total int
	for _, w := range widths {
		total += w + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// f2 formats with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// dur formats a duration compactly.
func dur(d time.Duration) string { return d.Round(time.Millisecond).String() }
