package experiments

// History parity at the figure layer: with a metrics-history store
// attached to the experiment bundle, Options.Workers must not change
// the archived bytes — figure children record into per-child shards
// and the canonical merge erases the fan-out topology.

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/hist"
)

func TestFigureHistoryWorkersParity(t *testing.T) {
	archive := func(workers int) []byte {
		o := QuickOptions()
		o.Workers = workers
		bundle := obs.New("experiments-test")
		st := hist.New(hist.Options{Tool: "experiments-test", Seed: o.Seed})
		bundle.Metrics.SetHistory(st.Root().Bind(bundle.Clock))
		o.Obs = bundle
		if _, err := ThroughputGains(o); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := st.Archive().WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	w1, w3 := archive(1), archive(3)
	if len(w1) == 0 {
		t.Fatal("empty history archive")
	}
	if !bytes.Equal(w1, w3) {
		a, _ := hist.ReadArchive(bytes.NewReader(w1))
		b, _ := hist.ReadArchive(bytes.NewReader(w3))
		t.Fatalf("figure history differs between workers 1 and 3:\n%v", hist.Diff(a, b))
	}
}
