// Package igp implements a link-state interior gateway protocol
// substrate: every router computes shortest-path-first routes over a
// shared link-state database and forwards hop by hop with ECMP
// splitting — the distributed routing world the paper's inspiration,
// Fibbing (Vissicchio et al., SIGCOMM 2015), manipulates by injecting
// fake topology.
//
// Its role in the reproduction is §4's claim made concrete for
// networks WITHOUT a central TE: the augmented topology also works
// when handed to plain IGP routing. A fake link with an attractive
// metric pulls destination-based traffic onto itself; the flow it
// attracts is read back as a modulation-upgrade instruction exactly
// like a TE flow would be.
package igp

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// FIB is one router's forwarding table: for every destination, the set
// of next-hop edges (ECMP over equal-cost shortest paths by Weight).
type FIB struct {
	// NextHops[dst] lists the out-edges on shortest paths to dst.
	// Empty for unreachable destinations and for dst == self.
	NextHops [][]graph.EdgeID
}

// RoutingTable holds every router's FIB over one LSDB snapshot.
type RoutingTable struct {
	fibs []FIB
	g    *graph.Graph
}

// ComputeRoutes runs SPF at every node over the graph's Weight metric
// (positive weights required; zero-capacity edges are ignored, matching
// links withdrawn from the LSDB).
func ComputeRoutes(g *graph.Graph) (*RoutingTable, error) {
	if g == nil {
		return nil, fmt.Errorf("igp: nil graph")
	}
	for _, e := range g.Edges() {
		if e.Capacity > graph.Eps && e.Weight <= 0 {
			return nil, fmt.Errorf("igp: edge %d has non-positive metric %v", int(e.ID), e.Weight)
		}
	}
	n := g.NumNodes()
	rt := &RoutingTable{g: g, fibs: make([]FIB, n)}
	// For each destination, compute distance-to-dst from every node by
	// running Dijkstra on the reversed graph, then collect ECMP next
	// hops: edge (u,v) is a next hop of u toward dst iff
	// dist(v) + w(u,v) == dist(u).
	rev := reverse(g)
	for dst := 0; dst < n; dst++ {
		dist := dijkstraFrom(rev, graph.NodeID(dst))
		for u := 0; u < n; u++ {
			if rt.fibs[u].NextHops == nil {
				rt.fibs[u].NextHops = make([][]graph.EdgeID, n)
			}
			if u == dst || math.IsInf(dist[u], 1) {
				continue
			}
			for _, id := range g.Out(graph.NodeID(u)) {
				e := g.Edge(id)
				if e.Capacity <= graph.Eps {
					continue
				}
				if !math.IsInf(dist[e.To], 1) && math.Abs(dist[e.To]+e.Weight-dist[u]) < 1e-9 {
					rt.fibs[u].NextHops[dst] = append(rt.fibs[u].NextHops[dst], id)
				}
			}
		}
	}
	return rt, nil
}

// reverse builds the edge-reversed graph (same IDs preserved via
// parallel construction order).
func reverse(g *graph.Graph) *graph.Graph {
	r := graph.New()
	r.AddNodes(g.NumNodes())
	for _, e := range g.Edges() {
		r.AddEdge(graph.Edge{From: e.To, To: e.From, Capacity: e.Capacity, Weight: e.Weight, Cost: e.Cost})
	}
	return r
}

// dijkstraFrom returns distances from src over Weight on positive-
// capacity edges.
func dijkstraFrom(g *graph.Graph, src graph.NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	visited := make([]bool, n)
	for {
		u := graph.NoNode
		for v := 0; v < n; v++ {
			if !visited[v] && !math.IsInf(dist[v], 1) &&
				(u == graph.NoNode || dist[v] < dist[u]) {
				u = graph.NodeID(v)
			}
		}
		if u == graph.NoNode {
			return dist
		}
		visited[u] = true
		for _, id := range g.Out(u) {
			e := g.Edge(id)
			if e.Capacity <= graph.Eps {
				continue
			}
			if nd := dist[u] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
			}
		}
	}
}

// NextHops returns node u's ECMP next hops toward dst.
func (rt *RoutingTable) NextHops(u, dst graph.NodeID) []graph.EdgeID {
	if int(u) >= len(rt.fibs) || rt.fibs[u].NextHops == nil || int(dst) >= len(rt.fibs[u].NextHops) {
		return nil
	}
	return rt.fibs[u].NextHops[dst]
}

// Forward injects volume at src toward dst and splits it over ECMP
// next hops at every router, returning the per-edge load. It does NOT
// enforce capacities (IGP routing is load-oblivious — that is exactly
// the limitation TE exists to fix); callers compare loads against
// capacities themselves. Returns an error if any portion of the
// traffic reaches a router with no route (a blackhole).
func (rt *RoutingTable) Forward(src, dst graph.NodeID, volume float64) ([]float64, error) {
	if volume < 0 {
		return nil, fmt.Errorf("igp: negative volume")
	}
	g := rt.g
	load := make([]float64, g.NumEdges())
	if volume == 0 || src == dst {
		return load, nil
	}
	// Shortest-path DAG toward dst is acyclic, so process nodes in
	// descending distance-to-dst order via memoized recursion.
	arriving := make([]float64, g.NumNodes())
	arriving[src] = volume
	// Topological propagation: repeatedly push from nodes with
	// pending traffic. The DAG property bounds iterations.
	pending := []graph.NodeID{src}
	for len(pending) > 0 {
		u := pending[0]
		pending = pending[1:]
		amt := arriving[u]
		if amt <= graph.Eps || u == dst {
			continue
		}
		arriving[u] = 0
		hops := rt.NextHops(u, dst)
		if len(hops) == 0 {
			return nil, fmt.Errorf("igp: blackhole at node %d toward %d", int(u), int(dst))
		}
		share := amt / float64(len(hops))
		for _, id := range hops {
			e := g.Edge(id)
			load[id] += share
			if arriving[e.To] <= graph.Eps && e.To != dst {
				pending = append(pending, e.To)
			}
			arriving[e.To] += share
		}
	}
	return load, nil
}

// MaxUtilization returns the highest load/capacity ratio of the given
// load vector (+Inf if a loaded edge has zero capacity).
func (rt *RoutingTable) MaxUtilization(load []float64) float64 {
	worst := 0.0
	for id, l := range load {
		if l <= graph.Eps {
			continue
		}
		c := rt.g.Edge(graph.EdgeID(id)).Capacity
		if c <= graph.Eps {
			return math.Inf(1)
		}
		if u := l / c; u > worst {
			worst = u
		}
	}
	return worst
}
