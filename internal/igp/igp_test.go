package igp

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// square builds the 4-node test topology with unit metrics.
func square() (*graph.Graph, [4]graph.NodeID) {
	g := graph.New()
	a, b, c, d := g.AddNode("A"), g.AddNode("B"), g.AddNode("C"), g.AddNode("D")
	both := func(u, v graph.NodeID, w float64) {
		g.AddEdge(graph.Edge{From: u, To: v, Capacity: 100, Weight: w})
		g.AddEdge(graph.Edge{From: v, To: u, Capacity: 100, Weight: w})
	}
	both(a, b, 1)
	both(c, d, 1)
	both(a, c, 1)
	both(b, d, 1)
	return g, [4]graph.NodeID{a, b, c, d}
}

func TestComputeRoutesNextHops(t *testing.T) {
	g, n := square()
	rt, err := ComputeRoutes(g)
	if err != nil {
		t.Fatal(err)
	}
	// A -> B: direct edge is the single shortest next hop.
	hops := rt.NextHops(n[0], n[1])
	if len(hops) != 1 || g.Edge(hops[0]).To != n[1] {
		t.Fatalf("A->B next hops: %v", hops)
	}
	// A -> D: two equal-cost 2-hop paths (via B and via C) → ECMP.
	hops = rt.NextHops(n[0], n[3])
	if len(hops) != 2 {
		t.Fatalf("A->D ECMP next hops = %d, want 2", len(hops))
	}
	// Self: none.
	if len(rt.NextHops(n[0], n[0])) != 0 {
		t.Fatal("self next hops")
	}
}

func TestComputeRoutesRejectsBadMetric(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(graph.Edge{From: a, To: b, Capacity: 1, Weight: 0})
	if _, err := ComputeRoutes(g); err == nil {
		t.Fatal("zero metric accepted")
	}
	if _, err := ComputeRoutes(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestComputeRoutesIgnoresDownLinks(t *testing.T) {
	g, n := square()
	// Take down the direct A-B adjacency (both directions).
	g.SetCapacity(0, 0)
	g.SetCapacity(1, 0)
	rt, err := ComputeRoutes(g)
	if err != nil {
		t.Fatal(err)
	}
	hops := rt.NextHops(n[0], n[1])
	if len(hops) != 1 || g.Edge(hops[0]).To != n[2] {
		t.Fatalf("A->B should reroute via C: %v", hops)
	}
}

func TestForwardConservesVolume(t *testing.T) {
	g, n := square()
	rt, err := ComputeRoutes(g)
	if err != nil {
		t.Fatal(err)
	}
	load, err := rt.Forward(n[0], n[3], 120)
	if err != nil {
		t.Fatal(err)
	}
	// Net flow into D equals 120.
	var into float64
	for _, id := range g.In(n[3]) {
		into += load[id]
	}
	for _, id := range g.Out(n[3]) {
		into -= load[id]
	}
	if math.Abs(into-120) > 1e-9 {
		t.Fatalf("arrived %v", into)
	}
	// ECMP split: 60 via B, 60 via C.
	var viaB, viaC float64
	for id, l := range load {
		e := g.Edge(graph.EdgeID(id))
		if e.From == n[0] && e.To == n[1] {
			viaB = l
		}
		if e.From == n[0] && e.To == n[2] {
			viaC = l
		}
	}
	if math.Abs(viaB-60) > 1e-9 || math.Abs(viaC-60) > 1e-9 {
		t.Fatalf("split %v / %v, want 60/60", viaB, viaC)
	}
}

func TestForwardBlackhole(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	rt, err := ComputeRoutes(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Forward(a, b, 10); err == nil {
		t.Fatal("blackhole not reported")
	}
}

func TestForwardZeroAndSelf(t *testing.T) {
	g, n := square()
	rt, _ := ComputeRoutes(g)
	if load, err := rt.Forward(n[0], n[3], 0); err != nil || sum(load) != 0 {
		t.Fatal("zero volume misbehaved")
	}
	if load, err := rt.Forward(n[0], n[0], 50); err != nil || sum(load) != 0 {
		t.Fatal("self forward misbehaved")
	}
	if _, err := rt.Forward(n[0], n[1], -1); err == nil {
		t.Fatal("negative volume accepted")
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestFibbingPullsTrafficOntoFakeLink is the §4-meets-Fibbing
// demonstration: augment the topology, give the fake link an attractive
// IGP metric, and the *distributed* routing adopts it — its load reads
// back as an upgrade instruction.
func TestFibbingPullsTrafficOntoFakeLink(t *testing.T) {
	g, n := square()
	top := core.NewTopology(g)
	// The A-B adjacency can double; its fake link will be advertised
	// with a metric slightly better than the real one.
	if err := top.SetUpgrade(0, 100, 1); err != nil { // A->B direction
		t.Fatal(err)
	}
	aug, err := core.Augment(top, core.PenaltyFromMatrix)
	if err != nil {
		t.Fatal(err)
	}
	fakeID := aug.FakeFor[0]
	// Fibbing move: advertise the fake link at a lower metric so SPF
	// prefers it. Rebuild the LSDB graph with the adjusted metric.
	lsdb := graph.New()
	lsdb.AddNodes(aug.Graph.NumNodes())
	for _, ed := range aug.Graph.Edges() {
		if ed.ID == fakeID {
			ed.Weight = 0.5
		}
		lsdb.AddEdge(graph.Edge{From: ed.From, To: ed.To, Capacity: ed.Capacity, Weight: ed.Weight, Cost: ed.Cost})
	}
	rt, err := ComputeRoutes(lsdb)
	if err != nil {
		t.Fatal(err)
	}
	load, err := rt.Forward(n[0], n[1], 150)
	if err != nil {
		t.Fatal(err)
	}
	if load[fakeID] < 149 {
		t.Fatalf("fake link attracted only %v of 150", load[fakeID])
	}
	// Translate the IGP load exactly like a TE flow.
	dec, err := aug.Translate(graph.FlowResult{Value: 150, EdgeFlow: load})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Changes) != 1 || dec.Changes[0].Edge != 0 || dec.Changes[0].NewCapacity != 200 {
		t.Fatalf("IGP flow did not translate into the upgrade: %+v", dec.Changes)
	}
}

// Property: forwarding over SPF next hops is loop-free — total load is
// bounded by volume × (n-1) hops.
func TestForwardLoopFreeProperty(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 25; trial++ {
		g := graph.New()
		const n = 9
		g.AddNodes(n)
		for i := 0; i < 30; i++ {
			u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
			if u == v {
				continue
			}
			g.AddEdge(graph.Edge{From: u, To: v, Capacity: 10, Weight: r.Uniform(1, 5)})
		}
		rt, err := ComputeRoutes(g)
		if err != nil {
			t.Fatal(err)
		}
		src, dst := graph.NodeID(0), graph.NodeID(n-1)
		if len(rt.NextHops(src, dst)) == 0 {
			continue // unreachable
		}
		load, err := rt.Forward(src, dst, 100)
		if err != nil {
			t.Fatal(err)
		}
		if sum(load) > 100*float64(n-1)+1e-6 {
			t.Fatalf("trial %d: total load %v suggests a loop", trial, sum(load))
		}
		// Conservation at intermediate nodes.
		for v := 0; v < n; v++ {
			if graph.NodeID(v) == src || graph.NodeID(v) == dst {
				continue
			}
			var net float64
			for _, id := range g.In(graph.NodeID(v)) {
				net += load[id]
			}
			for _, id := range g.Out(graph.NodeID(v)) {
				net -= load[id]
			}
			if math.Abs(net) > 1e-6 {
				t.Fatalf("trial %d: conservation violated at %d: %v", trial, v, net)
			}
		}
	}
}

func TestMaxUtilization(t *testing.T) {
	g, n := square()
	rt, _ := ComputeRoutes(g)
	load, err := rt.Forward(n[0], n[3], 120)
	if err != nil {
		t.Fatal(err)
	}
	// 60 on 100-capacity edges → 0.6.
	if u := rt.MaxUtilization(load); math.Abs(u-0.6) > 1e-9 {
		t.Fatalf("max utilization = %v", u)
	}
	if u := rt.MaxUtilization(make([]float64, g.NumEdges())); u != 0 {
		t.Fatalf("empty load utilization = %v", u)
	}
}
