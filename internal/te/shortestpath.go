package te

import (
	"repro/internal/graph"
)

// ShortestPath routes each demand entirely along its minimum-weight
// path over *remaining* capacity, shipping as much of the volume as the
// path's bottleneck allows. It models plain IGP routing (OSPF with
// static metrics): one path per demand, no spreading, no cost
// awareness. It is the paper's "today" baseline.
type ShortestPath struct{}

// Name implements Algorithm.
func (ShortestPath) Name() string { return "shortest-path" }

// Allocate implements Algorithm.
func (ShortestPath) Allocate(g *graph.Graph, demands []Demand) (*Allocation, error) {
	if err := validateAll(g, demands); err != nil {
		return nil, err
	}
	work := g.Clone() // track remaining capacity without touching g
	alloc := &Allocation{
		Results:  make([]DemandResult, len(demands)),
		EdgeFlow: make([]float64, g.NumEdges()),
	}
	for _, i := range byPriority(demands) {
		d := demands[i]
		alloc.Results[i].Demand = d
		if d.Volume <= 0 {
			continue
		}
		var st graph.SolveStats
		p, _, ok := work.ShortestPathDijkstraStats(d.Src, d.Dst, &st)
		alloc.Solver.Solves++
		alloc.Solver.Phases++
		alloc.Solver.Pops += st.Pops
		alloc.Solver.Relaxations += st.Relaxations
		if !ok {
			continue
		}
		bottleneck := d.Volume
		for _, id := range p.Edges {
			if c := work.Edge(id).Capacity; c < bottleneck {
				bottleneck = c
			}
		}
		if bottleneck <= graph.Eps {
			continue
		}
		alloc.Solver.Augmentations++
		for _, id := range p.Edges {
			c := work.Edge(id).Capacity - bottleneck
			if c < 0 { // float round-off
				c = 0
			}
			work.SetCapacity(id, c)
			alloc.EdgeFlow[id] += bottleneck
		}
		alloc.Results[i].Shipped = bottleneck
		alloc.Results[i].Paths = []graph.PathFlow{{Path: p, Amount: bottleneck}}
	}
	finish(g, alloc)
	return alloc, nil
}

// Greedy allocates demands sequentially, giving each a min-cost flow
// over the capacity left by its predecessors. On an augmented topology
// its cost-awareness makes it activate fake links only when cheaper
// alternatives are exhausted — the single-commodity Theorem 1 behaviour
// extended to many demands.
type Greedy struct{}

// Name implements Algorithm.
func (Greedy) Name() string { return "greedy-mcf" }

// Allocate implements Algorithm.
func (Greedy) Allocate(g *graph.Graph, demands []Demand) (*Allocation, error) {
	if err := validateAll(g, demands); err != nil {
		return nil, err
	}
	work := g.Clone()
	alloc := &Allocation{
		Results:  make([]DemandResult, len(demands)),
		EdgeFlow: make([]float64, g.NumEdges()),
	}
	for _, i := range byPriority(demands) {
		d := demands[i]
		alloc.Results[i].Demand = d
		if d.Volume <= 0 {
			continue
		}
		res, err := work.MinCostFlow(d.Src, d.Dst, d.Volume)
		if err != nil {
			return nil, err
		}
		alloc.Solver.addGraph(res.Stats)
		if res.Value <= graph.Eps {
			continue
		}
		paths, err := work.DecomposeFlow(d.Src, d.Dst, res.EdgeFlow)
		if err != nil {
			return nil, err
		}
		for id, f := range res.EdgeFlow {
			if f <= graph.Eps {
				continue
			}
			eid := graph.EdgeID(id)
			c := work.Edge(eid).Capacity - f
			if c < 0 { // float round-off
				c = 0
			}
			work.SetCapacity(eid, c)
			alloc.EdgeFlow[id] += f
		}
		alloc.Results[i].Shipped = res.Value
		alloc.Results[i].Paths = paths
	}
	finish(g, alloc)
	return alloc, nil
}
