package te

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// bottleneckLine builds a->b->c where b->c is the 100-unit bottleneck.
func bottleneckLine() (*graph.Graph, [3]graph.NodeID) {
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100, Weight: 1})
	g.AddEdge(graph.Edge{From: b, To: c, Capacity: 100, Weight: 1})
	return g, [3]graph.NodeID{a, b, c}
}

func TestByPriorityStableOrdering(t *testing.T) {
	demands := []Demand{
		{Volume: 1, Priority: 2},
		{Volume: 2, Priority: 0},
		{Volume: 3, Priority: 1},
		{Volume: 4, Priority: 0},
	}
	order := byPriority(demands)
	want := []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Input untouched.
	if demands[0].Priority != 2 {
		t.Fatal("input mutated")
	}
}

func TestByPriorityEmpty(t *testing.T) {
	if len(byPriority(nil)) != 0 {
		t.Fatal("non-empty order for no demands")
	}
}

// The high-priority demand is listed LAST but must win the bottleneck
// under every priority-aware allocator.
func TestPriorityBeatsSubmissionOrder(t *testing.T) {
	algs := []Algorithm{ShortestPath{}, Greedy{}, KPath{K: 2}}
	for _, alg := range algs {
		g, n := bottleneckLine()
		demands := []Demand{
			{Src: n[1], Dst: n[2], Volume: 100, Priority: 5}, // bulk, listed first
			{Src: n[0], Dst: n[2], Volume: 80, Priority: 0},  // premium, listed last
		}
		alloc, err := alg.Allocate(g, demands)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		premium := alloc.Results[1].Shipped
		bulk := alloc.Results[0].Shipped
		if premium < 79.9 {
			t.Fatalf("%s: premium shipped %v, want 80", alg.Name(), premium)
		}
		if bulk > 20.1 {
			t.Fatalf("%s: bulk shipped %v over premium's capacity", alg.Name(), bulk)
		}
		if err := CheckFeasible(g, alloc); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
	}
}

// Equal priorities preserve submission order (first-come-first-served
// for Greedy/ShortestPath; fair split for KPath).
func TestEqualPriorityKeepsSemantics(t *testing.T) {
	g, n := bottleneckLine()
	demands := []Demand{
		{Src: n[0], Dst: n[2], Volume: 100},
		{Src: n[1], Dst: n[2], Volume: 100},
	}
	alloc, err := Greedy{}.Allocate(g, demands)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Results[0].Shipped != 100 || alloc.Results[1].Shipped != 0 {
		t.Fatalf("greedy FCFS broken: %v, %v",
			alloc.Results[0].Shipped, alloc.Results[1].Shipped)
	}
	// KPath splits the bottleneck within the tier.
	kalloc, err := KPath{K: 2}.Allocate(g, demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kalloc.Results[0].Shipped-kalloc.Results[1].Shipped) > 5 {
		t.Fatalf("k-path intra-tier fairness broken: %v vs %v",
			kalloc.Results[0].Shipped, kalloc.Results[1].Shipped)
	}
}

// KPath across tiers: the premium tier takes everything it wants
// before the bulk tier water-fills the leftovers.
func TestKPathTierPrecedence(t *testing.T) {
	g, n := bottleneckLine()
	demands := []Demand{
		{Src: n[1], Dst: n[2], Volume: 100, Priority: 1},
		{Src: n[0], Dst: n[2], Volume: 70, Priority: 0},
	}
	alloc, err := KPath{K: 2}.Allocate(g, demands)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Results[1].Shipped < 69.9 {
		t.Fatalf("premium tier shipped %v, want 70", alloc.Results[1].Shipped)
	}
	if alloc.Results[0].Shipped > 30.1 {
		t.Fatalf("bulk tier shipped %v of the remaining 30", alloc.Results[0].Shipped)
	}
}

// Results slice stays aligned with input order regardless of priority
// reordering.
func TestResultsAlignWithInputOrder(t *testing.T) {
	g, n := bottleneckLine()
	demands := []Demand{
		{Src: n[1], Dst: n[2], Volume: 10, Priority: 9},
		{Src: n[0], Dst: n[2], Volume: 20, Priority: 0},
	}
	for _, alg := range []Algorithm{ShortestPath{}, Greedy{}, KPath{}} {
		alloc, err := alg.Allocate(g, demands)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for i := range demands {
			if alloc.Results[i].Demand != demands[i] {
				t.Fatalf("%s: result %d holds %+v", alg.Name(), i, alloc.Results[i].Demand)
			}
		}
	}
}
