// Package te implements traffic-engineering algorithms behind a single
// interface. Crucially for the paper's argument (§3.2, §4), every
// algorithm here treats its input graph as opaque: it neither knows nor
// cares whether an edge is physical or one of the abstraction's fake
// links. Running any of these on an augmented topology and translating
// the result is exactly how the paper keeps "the IP layer algorithms
// unchanged".
//
// Algorithms provided:
//
//   - ShortestPath: OSPF-like single-shortest-path routing (baseline).
//   - Greedy: sequential min-cost flow per demand over residual
//     capacity — the workhorse the experiments pair with the
//     augmentation, since its cost-awareness activates fake links only
//     when the penalty is worth paying.
//   - KPath: SWAN-like k-shortest-path allocation with iterative
//     water-filling across demands.
//   - MaxConcurrent: Garg–Könemann (1+ε) approximation of the maximum
//     concurrent multicommodity flow, the combinatorial stand-in for
//     the LP solvers inside SWAN/B4-style controllers.
package te

import (
	"fmt"

	"repro/internal/graph"
)

// Demand is one commodity: Volume units wanted from Src to Dst.
type Demand struct {
	Src, Dst graph.NodeID
	Volume   float64
	// Priority orders demands for allocation: lower values are more
	// important (0 = highest, the default). The paper's §4.2 notes the
	// operator may adjust disruption penalties "according to the
	// traffic priority class"; the allocators here serve higher classes
	// first so they grab undisturbed capacity.
	Priority int
}

// byPriority returns demand indices ordered by ascending Priority,
// stable within a class (preserving the operator's submission order).
func byPriority(demands []Demand) []int {
	return byPriorityInto(nil, demands)
}

// byPriorityInto is byPriority appending into a reusable buffer (pass
// buf[:0] to reuse its backing array).
func byPriorityInto(idx []int, demands []Demand) []int {
	for i := range demands {
		idx = append(idx, i)
	}
	// Stable insertion sort: len(demands) is small in TE rounds.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && demands[idx[j]].Priority < demands[idx[j-1]].Priority; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// Validate checks a demand against a graph.
func (d Demand) Validate(g *graph.Graph) error {
	if !g.HasNode(d.Src) || !g.HasNode(d.Dst) {
		return fmt.Errorf("te: demand endpoints %d->%d invalid", int(d.Src), int(d.Dst))
	}
	if d.Src == d.Dst {
		return fmt.Errorf("te: demand with equal endpoints %d", int(d.Src))
	}
	if d.Volume < 0 {
		return fmt.Errorf("te: negative demand volume %v", d.Volume)
	}
	return nil
}

// DemandResult is the allocation for one demand.
type DemandResult struct {
	Demand Demand
	// Shipped is how much of the demand was satisfied.
	Shipped float64
	// Paths decomposes the shipped volume into paths (may be empty for
	// algorithms that only report aggregate edge flows).
	Paths []graph.PathFlow
}

// SolverStats aggregates flow-solver work across one allocation, for
// the observability layer (plain integers; no overhead when unread).
type SolverStats struct {
	// Solves counts individual solver invocations (typically one per
	// demand for the sequential allocators).
	Solves int
	// Phases aggregates graph.SolveStats.Phases (BFS level graphs,
	// Dijkstra runs, or water-filling/GK phases, per algorithm).
	Phases int
	// Augmentations aggregates augmenting paths / path pushes applied.
	Augmentations int
	// Pops aggregates priority-queue dequeues across every shortest-path
	// search the allocation ran (graph.SolveStats.Pops).
	Pops int
	// Relaxations aggregates inner-loop arc/edge examinations: residual
	// arcs scanned by Dijkstra/BFS, or path-edge scans for the
	// water-filling allocator (graph.SolveStats.Relaxations).
	Relaxations int
}

// addGraph folds one flow solve's counts into the aggregate.
func (s *SolverStats) addGraph(st graph.SolveStats) {
	s.Solves++
	s.Phases += st.Phases
	s.Augmentations += st.Augmentations
	s.Pops += st.Pops
	s.Relaxations += st.Relaxations
}

// Allocation is the output of a TE run.
type Allocation struct {
	// Results holds one entry per input demand, same order.
	Results []DemandResult
	// EdgeFlow is the aggregate flow per edge of the input graph.
	EdgeFlow []float64
	// Throughput is the total shipped volume across demands.
	Throughput float64
	// Cost is sum(flow_e * cost_e) over the input graph.
	Cost float64
	// Solver counts the flow-solver work behind this allocation.
	Solver SolverStats
}

// FlowOn returns the aggregate flow the allocation assigns to edge id,
// or 0 when the id is out of range or the allocation is nil. Flight
// attribution uses this to read fake-edge selections without assuming
// the allocation covers every edge of a later-modified graph.
func (a *Allocation) FlowOn(id graph.EdgeID) float64 {
	if a == nil || id < 0 || int(id) >= len(a.EdgeFlow) {
		return 0
	}
	return a.EdgeFlow[id]
}

// Algorithm is a TE scheme. Allocate must not modify g.
type Algorithm interface {
	Name() string
	Allocate(g *graph.Graph, demands []Demand) (*Allocation, error)
}

// validateAll checks every demand.
func validateAll(g *graph.Graph, demands []Demand) error {
	for i, d := range demands {
		if err := d.Validate(g); err != nil {
			return fmt.Errorf("demand %d: %w", i, err)
		}
	}
	return nil
}

// finish computes the aggregate fields of an allocation.
func finish(g *graph.Graph, a *Allocation) {
	a.Throughput = 0
	for _, r := range a.Results {
		a.Throughput += r.Shipped
	}
	a.Cost = 0
	for id, f := range a.EdgeFlow {
		a.Cost += f * g.Edge(graph.EdgeID(id)).Cost
	}
}

// CheckFeasible verifies an allocation against the graph's capacities
// (within tolerance) and that per-demand path totals match Shipped.
func CheckFeasible(g *graph.Graph, a *Allocation) error {
	if len(a.EdgeFlow) != g.NumEdges() {
		return fmt.Errorf("te: EdgeFlow length %d for %d edges", len(a.EdgeFlow), g.NumEdges())
	}
	for id, f := range a.EdgeFlow {
		if f < -1e-6 {
			return fmt.Errorf("te: negative flow %v on edge %d", f, id)
		}
		if c := g.Edge(graph.EdgeID(id)).Capacity; f > c+1e-6 {
			return fmt.Errorf("te: flow %v exceeds capacity %v on edge %d", f, c, id)
		}
	}
	for i, r := range a.Results {
		if len(r.Paths) == 0 {
			continue
		}
		var sum float64
		for _, pf := range r.Paths {
			if err := pf.Path.Validate(g); err != nil {
				return fmt.Errorf("te: demand %d path invalid: %w", i, err)
			}
			sum += pf.Amount
		}
		if diff := sum - r.Shipped; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("te: demand %d paths sum %v != shipped %v", i, sum, r.Shipped)
		}
	}
	return nil
}
