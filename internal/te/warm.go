package te

import (
	"repro/internal/graph"
)

// NewWarm returns an allocator equivalent to a but with reusable
// per-round state where the algorithm supports it. For Greedy it
// returns a fresh *WarmGreedy (bit-identical allocations, near-zero
// steady-state allocs); other algorithms pass through unchanged.
//
// Always call NewWarm per concurrent run: warm allocators carry mutable
// state and are not safe to share.
func NewWarm(a Algorithm) Algorithm {
	switch a.(type) {
	case Greedy, *WarmGreedy:
		return &WarmGreedy{}
	}
	return a
}

// WarmGreedy is Greedy with warm-start state: a reusable min-cost-flow
// solver bound to the input graph plus scratch buffers for residual
// capacities, flows, and results. Repeated Allocate calls over a
// structurally-stable graph (capacities and costs may change freely)
// do not allocate, and produce exactly the flows, throughput, cost,
// and solver stats Greedy.Allocate would — that identity is what makes
// warm-vs-cold differential testing meaningful.
//
// Two deliberate differences from Greedy.Allocate:
//
//   - DemandResult.Paths is left empty (the WAN round loop never reads
//     paths; decomposition was ~half the cold allocator's allocations).
//     Callers that need paths should use Greedy or DecomposeFlow.
//   - The returned *Allocation is owned by the allocator and reused by
//     the next Allocate call; callers must copy anything they keep.
//
// Not safe for concurrent use.
type WarmGreedy struct {
	g       *graph.Graph
	nNodes  int
	nEdges  int
	solver  *graph.MCFSolver
	capLeft []float64
	flow    []float64
	order   []int
	alloc   Allocation
}

// Name implements Algorithm, reporting the same name as Greedy so
// metrics and manifests are unchanged by warming.
func (w *WarmGreedy) Name() string { return Greedy{}.Name() }

// bind (re)attaches the warm state to g, rebuilding buffers only when
// the graph identity or structure changed.
func (w *WarmGreedy) bind(g *graph.Graph) {
	if w.g == g && w.nNodes == g.NumNodes() && w.nEdges == g.NumEdges() && w.solver != nil {
		return
	}
	w.g = g
	w.nNodes = g.NumNodes()
	w.nEdges = g.NumEdges()
	w.solver = graph.NewMCFSolver(g)
	w.capLeft = make([]float64, w.nEdges)
	w.flow = make([]float64, w.nEdges)
}

// Allocate implements Algorithm. See the type comment for the contract.
func (w *WarmGreedy) Allocate(g *graph.Graph, demands []Demand) (*Allocation, error) {
	if err := validateAll(g, demands); err != nil {
		return nil, err
	}
	w.bind(g)
	for i := 0; i < w.nEdges; i++ {
		w.capLeft[i] = g.Edge(graph.EdgeID(i)).Capacity
	}

	a := &w.alloc
	if cap(a.Results) < len(demands) {
		a.Results = make([]DemandResult, len(demands))
	}
	a.Results = a.Results[:len(demands)]
	for i := range a.Results {
		a.Results[i] = DemandResult{}
	}
	if cap(a.EdgeFlow) < w.nEdges {
		a.EdgeFlow = make([]float64, w.nEdges)
	}
	a.EdgeFlow = a.EdgeFlow[:w.nEdges]
	for i := range a.EdgeFlow {
		a.EdgeFlow[i] = 0
	}
	a.Solver = SolverStats{}

	w.order = byPriorityInto(w.order[:0], demands)
	for _, i := range w.order {
		d := demands[i]
		a.Results[i].Demand = d
		if d.Volume <= 0 {
			continue
		}
		res, err := w.solver.Solve(d.Src, d.Dst, d.Volume, w.capLeft, w.flow)
		if err != nil {
			return nil, err
		}
		a.Solver.addGraph(res.Stats)
		if res.Value <= graph.Eps {
			continue
		}
		for id, f := range w.flow {
			if f <= graph.Eps {
				continue
			}
			c := w.capLeft[id] - f
			if c < 0 { // float round-off
				c = 0
			}
			w.capLeft[id] = c
			a.EdgeFlow[id] += f
		}
		a.Results[i].Shipped = res.Value
	}
	finish(g, a)
	return a, nil
}
