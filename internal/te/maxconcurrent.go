package te

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// MaxConcurrent approximates the maximum concurrent multicommodity flow
// with the Garg–Könemann width-independent FPTAS: it finds the largest
// λ such that λ·Volume can be shipped simultaneously for every demand,
// within a (1−ε)³ factor. Demand priorities are intentionally ignored:
// concurrent max-flow's whole point is equal treatment — every demand
// receives the same fraction λ of its ask. This is the combinatorial replacement for the
// LP solvers production TE controllers (SWAN, B4) embed — the paper's
// repro gap in Go is precisely the missing LP ecosystem, so we build
// the approximation scheme instead.
type MaxConcurrent struct {
	// Epsilon is the approximation parameter in (0, 0.5]; default 0.1.
	Epsilon float64
}

// Name implements Algorithm.
func (m MaxConcurrent) Name() string { return fmt.Sprintf("max-concurrent(eps=%v)", m.eps()) }

func (m MaxConcurrent) eps() float64 {
	if m.Epsilon <= 0 || m.Epsilon > 0.5 {
		return 0.1
	}
	return m.Epsilon
}

// Allocate implements Algorithm. The returned allocation ships
// λ·Volume for each demand (same λ — concurrent), capped at Volume
// (λ is clamped to 1: shipping more than asked is pointless here).
func (m MaxConcurrent) Allocate(g *graph.Graph, demands []Demand) (*Allocation, error) {
	if err := validateAll(g, demands); err != nil {
		return nil, err
	}
	eps := m.eps()

	// Demands that are disconnected over positive-capacity edges (e.g.
	// after failures) ship zero and are excluded from the concurrent
	// set — otherwise λ would be forced to 0 for everyone.
	active := make([]int, 0, len(demands))
	for i, d := range demands {
		if d.Volume <= 0 {
			continue
		}
		if _, ok := g.ShortestPathBFS(d.Src, d.Dst); !ok {
			continue
		}
		active = append(active, i)
	}
	alloc := &Allocation{
		Results:  make([]DemandResult, len(demands)),
		EdgeFlow: make([]float64, g.NumEdges()),
	}
	for i, d := range demands {
		alloc.Results[i].Demand = d
	}
	if len(active) == 0 {
		finish(g, alloc)
		return alloc, nil
	}

	nE := g.NumEdges()
	capOf := make([]float64, nE)
	usable := 0
	for _, e := range g.Edges() {
		capOf[e.ID] = e.Capacity
		if e.Capacity > graph.Eps {
			usable++
		}
	}
	if usable == 0 {
		finish(g, alloc)
		return alloc, nil
	}

	// Garg–Könemann: lengths start at δ/cap; each phase routes every
	// commodity's full demand in bottleneck-limited chunks along the
	// current shortest path; lengths grow multiplicatively. Terminate
	// when the dual objective D = Σ cap·len reaches 1. Primal flows are
	// then scaled down by log_{1+ε}(1/δ), which makes them feasible.
	delta := math.Pow(float64(usable)/(1-eps), -1/eps)
	length := make([]float64, nE)
	for id, c := range capOf {
		if c > graph.Eps {
			length[id] = delta / c
		} else {
			length[id] = math.Inf(1)
		}
	}
	// Per-demand raw (unscaled) flows per edge.
	rawFlow := make([][]float64, len(demands))
	for _, i := range active {
		rawFlow[i] = make([]float64, nE)
	}
	dual := func() float64 {
		var s float64
		for id, c := range capOf {
			if c > graph.Eps {
				s += c * length[id]
			}
		}
		return s
	}
	phases := 0
	maxPhases := int(2*math.Log(float64(usable))/(eps*eps)) + 50 // safety bound
	// One scratch set for every push: the GK inner loop runs Dijkstra
	// once per path push, and allocating its buffers per call dominated
	// the allocator profile at backbone scale.
	scratch := newGKScratch(g.NumNodes())
	for dual() < 1 && phases < maxPhases {
		phases++
		for _, i := range active {
			remaining := demands[i].Volume
			for remaining > graph.Eps && dual() < 1 {
				p, _, ok := scratch.shortestByLength(g, demands[i].Src, demands[i].Dst, length, capOf)
				alloc.Solver.Augmentations++
				if !ok {
					return nil, fmt.Errorf("te: demand %d disconnected on positive-capacity subgraph", i)
				}
				bottleneck := remaining
				for _, id := range p.Edges {
					if capOf[id] < bottleneck {
						bottleneck = capOf[id]
					}
				}
				for _, id := range p.Edges {
					rawFlow[i][id] += bottleneck
					length[id] *= 1 + eps*bottleneck/capOf[id]
				}
				remaining -= bottleneck
			}
			if dual() >= 1 {
				break
			}
		}
	}

	alloc.Solver.Solves = len(active)
	alloc.Solver.Phases = phases
	alloc.Solver.Pops = scratch.pops
	alloc.Solver.Relaxations = scratch.relax

	// Scale raw flows to feasibility: by the GK analysis, dividing by
	// log_{1+ε}(1/δ) respects every capacity.
	scale := math.Log(1/delta) / math.Log(1+eps)
	if scale <= 0 {
		scale = 1
	}
	// λ is the concurrent fraction every demand can get: the minimum
	// over commodities of (feasible shipped volume / demand volume),
	// clamped to 1 because over-shipping a demand is pointless.
	lambda := math.Inf(1)
	for _, i := range active {
		l := outVolume(g, demands[i].Src, rawFlow[i]) / scale / demands[i].Volume
		if l < lambda {
			lambda = l
		}
	}
	if math.IsInf(lambda, 1) || lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	// Ship exactly lambda*Volume per demand by scaling each commodity's
	// raw flow to the target (a further scale-down of a feasible flow
	// stays feasible).
	for _, i := range active {
		target := lambda * demands[i].Volume
		vol := outVolume(g, demands[i].Src, rawFlow[i])
		if vol <= graph.Eps || target <= graph.Eps {
			continue
		}
		f := target / vol
		for id := range rawFlow[i] {
			rawFlow[i][id] *= f
			alloc.EdgeFlow[id] += rawFlow[i][id]
		}
		paths, err := g.DecomposeFlow(demands[i].Src, demands[i].Dst, rawFlow[i])
		if err != nil {
			return nil, err
		}
		var shipped float64
		for _, pf := range paths {
			shipped += pf.Amount
		}
		alloc.Results[i].Shipped = shipped
		alloc.Results[i].Paths = paths
	}
	// Numerical safety: if accumulated flow exceeds an edge capacity by
	// rounding, scale everything down uniformly.
	worst := 1.0
	for id, f := range alloc.EdgeFlow {
		if capOf[id] > graph.Eps && f > capOf[id] {
			if r := capOf[id] / f; r < worst {
				worst = r
			}
		} else if capOf[id] <= graph.Eps && f > graph.Eps {
			worst = 0
		}
	}
	if worst < 1 {
		for i := range alloc.EdgeFlow {
			alloc.EdgeFlow[i] *= worst
		}
		for i := range alloc.Results {
			alloc.Results[i].Shipped *= worst
			for j := range alloc.Results[i].Paths {
				alloc.Results[i].Paths[j].Amount *= worst
			}
		}
	}
	finish(g, alloc)
	return alloc, nil
}

// gkItem is one heap entry in the GK Dijkstra.
type gkItem struct {
	node graph.NodeID
	d    float64
}

// gkScratch holds the reusable Dijkstra buffers for Garg–Könemann path
// pushes. One instance serves a whole Allocate call; it is local to the
// call (MaxConcurrent values are shared across concurrent policies, so
// the scratch cannot live on the struct).
type gkScratch struct {
	dist []float64
	prev []graph.EdgeID
	done []bool
	heap []gkItem
	rev  []graph.EdgeID
	path graph.Path

	// Work accounting across the whole Allocate call: heap dequeues and
	// positive-capacity edges examined, pooled over every Dijkstra run.
	// This is what turns "MaxConcurrent is N× slower" into a number the
	// registry can carry: its per-push Dijkstra pops dominate.
	pops  int
	relax int
}

func newGKScratch(n int) *gkScratch {
	return &gkScratch{
		dist: make([]float64, n),
		prev: make([]graph.EdgeID, n),
		done: make([]bool, n),
	}
}

// shortestByLength is Dijkstra over the GK length function, restricted
// to positive-capacity edges. The returned Path aliases scratch buffers
// and is only valid until the next call.
func (s *gkScratch) shortestByLength(g *graph.Graph, src, dst graph.NodeID, length, capOf []float64) (graph.Path, float64, bool) {
	// The graph package's Dijkstra runs over edge Weight; GK needs the
	// evolving length function, so run a local Dijkstra here.
	dist, prev, done := s.dist, s.prev, s.done
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = graph.NoEdge
		done[i] = false
	}
	dist[src] = 0
	// Simple binary heap.
	heap := append(s.heap[:0], gkItem{src, 0})
	push := func(it gkItem) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].d <= heap[i].d {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() gkItem {
		top := heap[0]
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l].d < heap[small].d {
				small = l
			}
			if r < len(heap) && heap[r].d < heap[small].d {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for len(heap) > 0 {
		it := pop()
		u := it.node
		s.pops++
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, id := range g.Out(u) {
			e := g.Edge(id)
			if capOf[id] <= graph.Eps {
				continue
			}
			s.relax++
			if nd := dist[u] + length[id]; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = id
				push(gkItem{e.To, nd})
			}
		}
	}
	s.heap = heap[:0]
	if math.IsInf(dist[dst], 1) {
		return graph.Path{}, 0, false
	}
	// Reconstruct.
	rev := s.rev[:0]
	for at := dst; at != src; {
		id := prev[at]
		rev = append(rev, id)
		at = g.Edge(id).From
	}
	s.rev = rev
	p := graph.Path{
		Nodes: append(s.path.Nodes[:0], src),
		Edges: s.path.Edges[:0],
	}
	for i := len(rev) - 1; i >= 0; i-- {
		p.Edges = append(p.Edges, rev[i])
		p.Nodes = append(p.Nodes, g.Edge(rev[i]).To)
	}
	s.path = p
	return p, dist[dst], true
}

// outVolume is the net flow leaving src in a per-edge flow vector.
func outVolume(g *graph.Graph, src graph.NodeID, flow []float64) float64 {
	var v float64
	for _, id := range g.Out(src) {
		v += flow[id]
	}
	for _, id := range g.In(src) {
		v -= flow[id]
	}
	return v
}
