package te

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// KPath is a SWAN-style allocator: each demand is restricted to its k
// minimum-weight paths (computed up front, as SWAN pre-installs
// tunnels), and volume is spread across demands with iterative
// max-min water-filling so no demand starves.
type KPath struct {
	// K is the number of pre-computed paths per demand (default 4).
	K int
	// Increment is the water-filling step size as a fraction of the
	// largest demand (default 0.01).
	Increment float64
}

// Name implements Algorithm.
func (k KPath) Name() string { return fmt.Sprintf("k-path(k=%d)", k.kOrDefault()) }

func (k KPath) kOrDefault() int {
	if k.K <= 0 {
		return 4
	}
	return k.K
}

func (k KPath) incOrDefault(demands []Demand) float64 {
	frac := k.Increment
	if frac <= 0 {
		frac = 0.01
	}
	maxVol := 0.0
	for _, d := range demands {
		if d.Volume > maxVol {
			maxVol = d.Volume
		}
	}
	if maxVol == 0 {
		return 1
	}
	return maxVol * frac
}

// Allocate implements Algorithm. Round-robin water-filling: in each
// round every unsatisfied demand tries to push one increment along its
// cheapest (by remaining-capacity feasibility, then path weight)
// pre-computed path. Rounds repeat until no demand can make progress.
func (k KPath) Allocate(g *graph.Graph, demands []Demand) (*Allocation, error) {
	if err := validateAll(g, demands); err != nil {
		return nil, err
	}
	kk := k.kOrDefault()
	inc := k.incOrDefault(demands)

	remaining := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		remaining[e.ID] = e.Capacity
	}

	var solves int
	var pre graph.SolveStats // Yen precompute work (Dijkstra runs)
	states := make([]kpState, len(demands))
	for i, d := range demands {
		if d.Volume <= 0 {
			continue
		}
		paths := g.KShortestPathsStats(d.Src, d.Dst, kk, &pre)
		states[i] = kpState{paths: paths, perPath: make([]float64, len(paths))}
		solves++
	}

	// Water-fill tier by tier: higher-priority classes fill before
	// lower ones touch the spectrum (fairness applies within a class,
	// strict precedence across classes).
	order := byPriority(demands)
	var phases, pushes, scans int
	for start := 0; start < len(order); {
		end := start + 1
		for end < len(order) && demands[order[end]].Priority == demands[order[start]].Priority {
			end++
		}
		tier := order[start:end]
		start = end
		ph, pu, sc := waterFill(demands, states, tier, inc, remaining)
		phases += ph
		pushes += pu
		scans += sc
	}

	alloc := &Allocation{
		Results:  make([]DemandResult, len(demands)),
		EdgeFlow: make([]float64, g.NumEdges()),
		// Phases counts water-fill sweeps plus precompute Dijkstra runs;
		// Relaxations pools Yen's edge examinations with the water-fill
		// room scans — the allocator's two inner loops.
		Solver: SolverStats{
			Solves:        solves,
			Phases:        phases + pre.Phases,
			Augmentations: pushes,
			Pops:          pre.Pops,
			Relaxations:   pre.Relaxations + scans,
		},
	}
	for i, d := range demands {
		st := &states[i]
		alloc.Results[i].Demand = d
		alloc.Results[i].Shipped = st.shipped
		for pi, amt := range st.perPath {
			if amt <= graph.Eps {
				continue
			}
			alloc.Results[i].Paths = append(alloc.Results[i].Paths,
				graph.PathFlow{Path: st.paths[pi], Amount: amt})
			for _, id := range st.paths[pi].Edges {
				alloc.EdgeFlow[id] += amt
			}
		}
	}
	finish(g, alloc)
	return alloc, nil
}

// kpState is the per-demand water-filling state.
type kpState struct {
	paths   []graph.Path
	shipped float64
	perPath []float64
}

// waterFill round-robins increments across the given demand indices
// until none can make progress. It reports the number of round-robin
// sweeps (phases), increments applied (pushes), and path-edge room
// scans (scans — the water-filling analogue of arc relaxations) for
// solver stats.
func waterFill(demands []Demand, states []kpState, tier []int, inc float64, remaining []float64) (phases, pushes, scans int) {
	for progressed := true; progressed; {
		progressed = false
		phases++
		for _, i := range tier {
			d := demands[i]
			st := &states[i]
			want := d.Volume - st.shipped
			if want <= graph.Eps || len(st.paths) == 0 {
				continue
			}
			step := math.Min(inc, want)
			// Pick the first (lowest-weight) path with room.
			for pi, p := range st.paths {
				room := math.Inf(1)
				scans += len(p.Edges)
				for _, id := range p.Edges {
					if remaining[id] < room {
						room = remaining[id]
					}
				}
				if room <= graph.Eps {
					continue
				}
				amt := math.Min(step, room)
				for _, id := range p.Edges {
					remaining[id] -= amt
					if remaining[id] < 0 {
						remaining[id] = 0
					}
				}
				st.perPath[pi] += amt
				st.shipped += amt
				pushes++
				progressed = true
				break
			}
		}
	}
	return phases, pushes, scans
}
