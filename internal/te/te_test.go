package te

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// square builds the Figure 7 topology: A,B,C,D with bidirectional
// 100 Gbps unit-weight links A-B, C-D, A-C, B-D.
func square() (*graph.Graph, [4]graph.NodeID) {
	g := graph.New()
	a, b, c, d := g.AddNode("A"), g.AddNode("B"), g.AddNode("C"), g.AddNode("D")
	both := func(u, v graph.NodeID) {
		g.AddEdge(graph.Edge{From: u, To: v, Capacity: 100, Weight: 1})
		g.AddEdge(graph.Edge{From: v, To: u, Capacity: 100, Weight: 1})
	}
	both(a, b)
	both(c, d)
	both(a, c)
	both(b, d)
	return g, [4]graph.NodeID{a, b, c, d}
}

func allAlgorithms() []Algorithm {
	return []Algorithm{
		ShortestPath{},
		Greedy{},
		KPath{K: 4},
		MaxConcurrent{Epsilon: 0.1},
	}
}

func TestAlgorithmsSatisfyEasyDemands(t *testing.T) {
	g, n := square()
	demands := []Demand{
		{Src: n[0], Dst: n[1], Volume: 50},
		{Src: n[2], Dst: n[3], Volume: 50},
	}
	for _, alg := range allAlgorithms() {
		alloc, err := alg.Allocate(g, demands)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := CheckFeasible(g, alloc); err != nil {
			t.Fatalf("%s: infeasible: %v", alg.Name(), err)
		}
		if alloc.Throughput < 95 {
			t.Errorf("%s: throughput = %v, want ≈ 100", alg.Name(), alloc.Throughput)
		}
		for i, r := range alloc.Results {
			if r.Shipped < 45 {
				t.Errorf("%s: demand %d shipped only %v", alg.Name(), i, r.Shipped)
			}
		}
	}
}

func TestAlgorithmsRespectCapacity(t *testing.T) {
	g, n := square()
	// Oversubscribed: demand far exceeds the 200 cut.
	demands := []Demand{
		{Src: n[0], Dst: n[3], Volume: 1000},
	}
	for _, alg := range allAlgorithms() {
		alloc, err := alg.Allocate(g, demands)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := CheckFeasible(g, alloc); err != nil {
			t.Fatalf("%s: infeasible: %v", alg.Name(), err)
		}
		// Max possible A->D is 200 (two disjoint 100 paths).
		if alloc.Throughput > 200+1e-6 {
			t.Errorf("%s: shipped %v above the 200 cut", alg.Name(), alloc.Throughput)
		}
	}
}

func TestAlgorithmsDoNotMutateInput(t *testing.T) {
	g, n := square()
	before := g.Edges()
	demands := []Demand{{Src: n[0], Dst: n[3], Volume: 300}}
	for _, alg := range allAlgorithms() {
		if _, err := alg.Allocate(g, demands); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		after := g.Edges()
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("%s mutated edge %d: %+v -> %+v", alg.Name(), i, before[i], after[i])
			}
		}
	}
}

func TestValidateDemand(t *testing.T) {
	g, n := square()
	bad := []Demand{
		{Src: 99, Dst: n[1], Volume: 1},
		{Src: n[0], Dst: n[0], Volume: 1},
		{Src: n[0], Dst: n[1], Volume: -1},
	}
	for _, d := range bad {
		if err := d.Validate(g); err == nil {
			t.Errorf("demand %+v accepted", d)
		}
	}
	for _, alg := range allAlgorithms() {
		if _, err := alg.Allocate(g, bad[:1]); err == nil {
			t.Errorf("%s accepted invalid demand", alg.Name())
		}
	}
}

func TestZeroVolumeDemandsNoop(t *testing.T) {
	g, n := square()
	demands := []Demand{{Src: n[0], Dst: n[1], Volume: 0}}
	for _, alg := range allAlgorithms() {
		alloc, err := alg.Allocate(g, demands)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if alloc.Throughput != 0 {
			t.Errorf("%s shipped %v for zero demand", alg.Name(), alloc.Throughput)
		}
	}
}

func TestEmptyDemands(t *testing.T) {
	g, _ := square()
	for _, alg := range allAlgorithms() {
		alloc, err := alg.Allocate(g, nil)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if alloc.Throughput != 0 || len(alloc.Results) != 0 {
			t.Errorf("%s: non-trivial allocation for no demands", alg.Name())
		}
	}
}

func TestDisconnectedDemand(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(graph.Edge{From: a, To: b, Capacity: 10, Weight: 1})
	demands := []Demand{
		{Src: a, Dst: b, Volume: 5},
		{Src: a, Dst: c, Volume: 5}, // unreachable
	}
	for _, alg := range allAlgorithms() {
		alloc, err := alg.Allocate(g, demands)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if alloc.Results[1].Shipped != 0 {
			t.Errorf("%s shipped to unreachable node", alg.Name())
		}
		if alloc.Results[0].Shipped < 4.5 {
			t.Errorf("%s: reachable demand starved (%v) by unreachable one", alg.Name(), alloc.Results[0].Shipped)
		}
	}
}

func TestShortestPathUsesMinWeight(t *testing.T) {
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	direct := g.AddEdge(graph.Edge{From: a, To: c, Capacity: 100, Weight: 5})
	via1 := g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100, Weight: 1})
	via2 := g.AddEdge(graph.Edge{From: b, To: c, Capacity: 100, Weight: 1})
	alloc, err := ShortestPath{}.Allocate(g, []Demand{{Src: a, Dst: c, Volume: 60}})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.EdgeFlow[via1] != 60 || alloc.EdgeFlow[via2] != 60 || alloc.EdgeFlow[direct] != 0 {
		t.Fatalf("flow not on min-weight path: %v", alloc.EdgeFlow)
	}
}

func TestShortestPathSinglePathLimitation(t *testing.T) {
	// ShortestPath ships only the bottleneck of one path even when a
	// second path could carry the rest — that's the baseline's flaw.
	g, n := square()
	alloc, err := ShortestPath{}.Allocate(g, []Demand{{Src: n[0], Dst: n[3], Volume: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Throughput != 100 {
		t.Fatalf("single-path baseline shipped %v, want 100", alloc.Throughput)
	}
}

func TestGreedyUsesMultiplePaths(t *testing.T) {
	g, n := square()
	alloc, err := Greedy{}.Allocate(g, []Demand{{Src: n[0], Dst: n[3], Volume: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.Throughput-200) > 1e-6 {
		t.Fatalf("greedy shipped %v, want 200", alloc.Throughput)
	}
	if err := CheckFeasible(g, alloc); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPrefersCheapEdges(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	cheap := g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100, Cost: 0})
	dear := g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100, Cost: 10})
	alloc, err := Greedy{}.Allocate(g, []Demand{{Src: a, Dst: b, Volume: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.EdgeFlow[cheap] != 100 || alloc.EdgeFlow[dear] != 0 {
		t.Fatalf("greedy ignored costs: %v", alloc.EdgeFlow)
	}
	if alloc.Cost != 0 {
		t.Fatalf("cost = %v", alloc.Cost)
	}
}

func TestGreedyOrderMatters(t *testing.T) {
	// First demand can hog capacity; later demand starves. Documents
	// the sequential nature (and why KPath water-fills).
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100, Weight: 1})
	g.AddEdge(graph.Edge{From: b, To: c, Capacity: 100, Weight: 1})
	alloc, err := Greedy{}.Allocate(g, []Demand{
		{Src: a, Dst: c, Volume: 100},
		{Src: b, Dst: c, Volume: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Results[0].Shipped != 100 || alloc.Results[1].Shipped != 0 {
		t.Fatalf("expected first-come-first-served: %v, %v",
			alloc.Results[0].Shipped, alloc.Results[1].Shipped)
	}
}

func TestKPathSharesFairly(t *testing.T) {
	// Same contention as above: water-filling should split the b->c
	// bottleneck roughly evenly.
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100, Weight: 1})
	g.AddEdge(graph.Edge{From: b, To: c, Capacity: 100, Weight: 1})
	alloc, err := KPath{K: 2}.Allocate(g, []Demand{
		{Src: a, Dst: c, Volume: 100},
		{Src: b, Dst: c, Volume: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := alloc.Results[0].Shipped, alloc.Results[1].Shipped
	if math.Abs(s0-s1) > 5 {
		t.Fatalf("unfair split: %v vs %v", s0, s1)
	}
	if math.Abs(s0+s1-100) > 1e-6 {
		t.Fatalf("bottleneck not filled: %v", s0+s1)
	}
	if err := CheckFeasible(g, alloc); err != nil {
		t.Fatal(err)
	}
}

func TestKPathDefaults(t *testing.T) {
	if (KPath{}).Name() != "k-path(k=4)" {
		t.Fatalf("default name: %s", KPath{}.Name())
	}
	g, n := square()
	alloc, err := KPath{}.Allocate(g, []Demand{{Src: n[0], Dst: n[1], Volume: 150}})
	if err != nil {
		t.Fatal(err)
	}
	// k=4 gives A->B both the direct path and the A-C-D-B detour.
	if alloc.Throughput < 149 {
		t.Fatalf("k-path throughput %v, want ≈ 150", alloc.Throughput)
	}
}

func TestMaxConcurrentBalances(t *testing.T) {
	// Two demands sharing one 100-unit bottleneck: each should get
	// close to half its ask at the same fraction.
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100, Weight: 1})
	g.AddEdge(graph.Edge{From: b, To: c, Capacity: 100, Weight: 1})
	alloc, err := MaxConcurrent{Epsilon: 0.05}.Allocate(g, []Demand{
		{Src: a, Dst: c, Volume: 100},
		{Src: b, Dst: c, Volume: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFeasible(g, alloc); err != nil {
		t.Fatal(err)
	}
	f0 := alloc.Results[0].Shipped / 100
	f1 := alloc.Results[1].Shipped / 100
	if math.Abs(f0-f1) > 1e-6 {
		t.Fatalf("not concurrent: fractions %v vs %v", f0, f1)
	}
	// Optimal λ = 0.5; (1-ε)³ with ε=0.05 ≈ 0.857 → λ ≥ 0.42.
	if f0 < 0.40 {
		t.Fatalf("λ = %v, want ≥ 0.40", f0)
	}
}

func TestMaxConcurrentSatisfiableClampsAtOne(t *testing.T) {
	g, n := square()
	alloc, err := MaxConcurrent{Epsilon: 0.1}.Allocate(g, []Demand{
		{Src: n[0], Dst: n[1], Volume: 30},
		{Src: n[2], Dst: n[3], Volume: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range alloc.Results {
		if r.Shipped > 30+1e-6 {
			t.Fatalf("demand %d overshipped: %v", i, r.Shipped)
		}
	}
	if alloc.Throughput < 55 {
		t.Fatalf("throughput %v, want ≈ 60", alloc.Throughput)
	}
}

func TestMaxConcurrentApproximationQuality(t *testing.T) {
	// Random graphs: λ from GK must be within the guarantee of the
	// exact λ* (computed for the single-commodity case via max flow).
	r := rng.New(13)
	for trial := 0; trial < 5; trial++ {
		g := graph.New()
		const n = 10
		g.AddNodes(n)
		for i := 0; i < 40; i++ {
			u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
			if u == v {
				continue
			}
			g.AddEdge(graph.Edge{From: u, To: v, Capacity: r.Uniform(10, 50), Weight: 1})
		}
		src, dst := graph.NodeID(0), graph.NodeID(n-1)
		mf, err := g.MaxFlowValue(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if mf < 1 {
			continue
		}
		demand := mf * 2 // oversubscribe so λ* = 0.5
		alloc, err := MaxConcurrent{Epsilon: 0.05}.Allocate(g, []Demand{{Src: src, Dst: dst, Volume: demand}})
		if err != nil {
			t.Fatal(err)
		}
		lambda := alloc.Results[0].Shipped / demand
		if lambda < 0.5*0.8 {
			t.Fatalf("trial %d: λ = %v, want ≥ 0.4 (λ* = 0.5)", trial, lambda)
		}
		if lambda > 0.5+1e-6 {
			t.Fatalf("trial %d: λ = %v exceeds optimum 0.5", trial, lambda)
		}
		if err := CheckFeasible(g, alloc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaxConcurrentBadEpsilonDefaults(t *testing.T) {
	if (MaxConcurrent{Epsilon: -1}).Name() != "max-concurrent(eps=0.1)" {
		t.Fatal("bad epsilon not defaulted")
	}
	if (MaxConcurrent{Epsilon: 3}).Name() != "max-concurrent(eps=0.1)" {
		t.Fatal("big epsilon not defaulted")
	}
}

func TestCheckFeasibleCatchesViolations(t *testing.T) {
	g, n := square()
	alloc := &Allocation{EdgeFlow: make([]float64, g.NumEdges())}
	alloc.EdgeFlow[0] = 1000 // over capacity
	if err := CheckFeasible(g, alloc); err == nil {
		t.Fatal("over-capacity flow accepted")
	}
	alloc.EdgeFlow[0] = -5
	if err := CheckFeasible(g, alloc); err == nil {
		t.Fatal("negative flow accepted")
	}
	if err := CheckFeasible(g, &Allocation{EdgeFlow: []float64{1}}); err == nil {
		t.Fatal("wrong length accepted")
	}
	_ = n
}

func TestAllNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, alg := range allAlgorithms() {
		if seen[alg.Name()] {
			t.Fatalf("duplicate name %s", alg.Name())
		}
		seen[alg.Name()] = true
	}
}

func BenchmarkGreedyBackbone(b *testing.B) {
	r := rng.New(3)
	g := graph.New()
	const n = 30
	g.AddNodes(n)
	for i := 0; i < 120; i++ {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		g.AddEdge(graph.Edge{From: u, To: v, Capacity: 100, Weight: 1})
	}
	demands := make([]Demand, 0, 20)
	for len(demands) < 20 {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		demands = append(demands, Demand{Src: u, Dst: v, Volume: r.Uniform(10, 80)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Greedy{}).Allocate(g, demands); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxConcurrentBackbone(b *testing.B) {
	r := rng.New(3)
	g := graph.New()
	const n = 20
	g.AddNodes(n)
	for i := 0; i < 80; i++ {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		g.AddEdge(graph.Edge{From: u, To: v, Capacity: 100, Weight: 1})
	}
	demands := make([]Demand, 0, 10)
	for len(demands) < 10 {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		demands = append(demands, Demand{Src: u, Dst: v, Volume: r.Uniform(10, 80)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (MaxConcurrent{Epsilon: 0.2}).Allocate(g, demands); err != nil {
			b.Fatal(err)
		}
	}
}
