// Package par is the deterministic fan-out layer: a bounded worker
// pool whose results are collected in task-index order, so the output
// of a parallel run is a pure function of the inputs — never of the
// scheduler, the worker count, or completion order.
//
// The determinism contract has two halves, and this package only
// enforces the second:
//
//  1. Callers must make every task self-contained *before* dispatch.
//     In this repository that means splitting the task's rng.Source
//     from the parent in loop order up front (rng.Source.Split only
//     consumes parent state, so pre-splitting N children is
//     byte-identical to splitting lazily in a serial loop) and
//     recording observability into a per-task obs child merged back in
//     task order (obs.Obs.Child / Merge).
//  2. This package consumes results strictly in task order, propagates
//     the error of the lowest-indexed failing task, and runs the
//     Workers<=1 case as a plain inline loop with no goroutines — the
//     reference behavior every parallel run must reproduce exactly.
//
// Memory stays bounded: a worker that has produced item i parks until
// the collector has consumed item i before taking another task, so at
// most Workers produced-but-unconsumed items exist at any moment.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Opts configures one fan-out.
type Opts struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0). The
	// result is identical for every value — only wall-clock time and
	// peak memory change.
	Workers int
	// Name labels this pool in observability output (the
	// rwc_par_tasks_total counter and the par/<name>/... manifest
	// phases). Empty disables the pool's own instrumentation.
	Name string
	// Obs receives the pool instrumentation. The tasks-dispatched
	// counter is deterministic and lands in the metrics registry; wall
	// and busy times are wall-derived and land only in the manifest
	// (exempt from the byte-identity guarantee). Nil disables both.
	// The Wall clock, when set, is read from worker goroutines and must
	// be safe for concurrent use (the time.Since closures cmd/ injects
	// and *obs.SimClock both are).
	Obs *obs.Obs
}

// Workers resolves a -workers flag value: n when positive, otherwise
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// effective returns the worker count actually used for n tasks.
func (o Opts) effective(n int) int {
	w := Workers(o.Workers)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// wall returns the injected wall clock, if any.
func (o Opts) wall() obs.Clock {
	if o.Obs == nil {
		return nil
	}
	return o.Obs.Wall
}

// instrument registers the pool's task counter and returns a finish
// function recording the manifest phases. Both are no-ops without a
// pool name; the counter is recorded identically for every worker
// count so metrics stay byte-identical across -workers values.
func (o Opts) instrument(n int) func(busyNs *atomic.Int64) {
	if o.Name == "" || o.Obs == nil {
		return func(*atomic.Int64) {}
	}
	o.Obs.Counter("rwc_par_tasks_total",
		"Tasks dispatched through the deterministic fan-out layer, by pool.",
		obs.L("pool", o.Name)).Add(float64(n))
	w := o.wall()
	if w == nil {
		return func(*atomic.Int64) {}
	}
	start := w.Now()
	return func(busyNs *atomic.Int64) {
		if m := o.Obs.Manifest; m != nil {
			m.AddPhase("par/"+o.Name+"/wall", w.Now()-start)
			m.AddPhase("par/"+o.Name+"/busy", time.Duration(busyNs.Load()))
		}
	}
}

// Stream runs produce for task indices 0..n-1 on a bounded pool and
// feeds each result to consume in strict index order. produce runs
// concurrently (worker identifies the executing worker, 0-based, for
// per-worker scratch); consume always runs serially on the calling
// goroutine. The first error in index order — from produce or consume
// — aborts the stream and is returned; tasks past the failing index
// may or may not have run, but their results are never consumed.
func Stream[T any](o Opts, n int, produce func(worker, i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		o.instrument(0)(new(atomic.Int64))
		return nil
	}
	workers := o.effective(n)
	finish := o.instrument(n)
	var busyNs atomic.Int64
	wallClock := o.wall()
	timedProduce := produce
	if wallClock != nil {
		timedProduce = func(worker, i int) (T, error) {
			t0 := wallClock.Now()
			v, err := produce(worker, i)
			busyNs.Add(int64(wallClock.Now() - t0))
			return v, err
		}
	}

	if workers == 1 {
		// Reference serial path: inline, no goroutines.
		for i := 0; i < n; i++ {
			v, err := timedProduce(0, i)
			if err != nil {
				return err
			}
			if consume != nil {
				if err := consume(i, v); err != nil {
					return err
				}
			}
		}
		finish(&busyNs)
		return nil
	}

	type slot struct {
		v     T
		err   error
		ready chan struct{}
		done  chan struct{}
	}
	slots := make([]slot, n)
	for i := range slots {
		slots[i].ready = make(chan struct{})
		slots[i].done = make(chan struct{})
	}
	idxCh := make(chan int)
	cancel := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		worker := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				slots[i].v, slots[i].err = timedProduce(worker, i)
				close(slots[i].ready)
				select {
				case <-slots[i].done:
				case <-cancel:
					return
				}
			}
		}()
	}
	go func() {
		defer close(idxCh)
		for i := 0; i < n; i++ {
			select {
			case idxCh <- i:
			case <-cancel:
				return
			}
		}
	}()

	var firstErr error
	for i := 0; i < n; i++ {
		<-slots[i].ready
		if slots[i].err != nil {
			firstErr = slots[i].err
			break
		}
		if consume != nil {
			if err := consume(i, slots[i].v); err != nil {
				firstErr = err
				break
			}
		}
		close(slots[i].done)
	}
	close(cancel)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	finish(&busyNs)
	return nil
}

// Map runs task for indices 0..n-1 and returns the results in index
// order. Error semantics match Stream.
func Map[T any](o Opts, n int, task func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Stream(o, n, task, func(i int, v T) error {
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs task for indices 0..n-1 with no collected results.
// Error semantics match Stream.
func ForEach(o Opts, n int, task func(worker, i int) error) error {
	return Stream(o, n, func(worker, i int) (struct{}, error) {
		return struct{}{}, task(worker, i)
	}, nil)
}
