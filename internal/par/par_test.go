package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
}

// TestMapMatchesSerial: identical results for every worker count.
func TestMapMatchesSerial(t *testing.T) {
	n := 100
	task := func(worker, i int) (int, error) {
		runtime.Gosched() // shake up completion order
		return i * i, nil
	}
	want, err := Map(Opts{Workers: 1}, n, task)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 64} {
		got, err := Map(Opts{Workers: w}, n, task)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

// TestStreamConsumesInOrder: consume sees indices strictly ascending,
// regardless of production order.
func TestStreamConsumesInOrder(t *testing.T) {
	n := 200
	var seen []int
	err := Stream(Opts{Workers: 7}, n,
		func(worker, i int) (int, error) {
			runtime.Gosched()
			return i, nil
		},
		func(i int, v int) error {
			if v != i {
				return fmt.Errorf("index %d got value %d", i, v)
			}
			seen = append(seen, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("consumed %d of %d", len(seen), n)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("consume order broken at %d: %v", i, v)
		}
	}
}

// TestStreamBoundsInFlight: at most Workers tasks produce concurrently,
// and a worker's produced item is consumed before it takes another —
// the guarantee per-worker scratch reuse relies on.
func TestStreamBoundsInFlight(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	scratch := make([]int, workers) // per-worker scratch buffer
	err := Stream(Opts{Workers: workers}, 60,
		func(worker, i int) (*int, error) {
			if cur := inFlight.Add(1); cur > peak.Load() {
				peak.Store(cur)
			}
			defer inFlight.Add(-1)
			if worker < 0 || worker >= workers {
				return nil, fmt.Errorf("worker index %d out of range", worker)
			}
			scratch[worker] = i
			runtime.Gosched()
			return &scratch[worker], nil
		},
		func(i int, v *int) error {
			if *v != i {
				return fmt.Errorf("scratch for task %d overwritten to %d before consumption", i, *v)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("%d tasks in flight, worker bound is %d", p, workers)
	}
}

// TestStreamFirstErrorByIndex: the lowest-index failure wins no matter
// which task fails first on the wall clock.
func TestStreamFirstErrorByIndex(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := ForEach(Opts{Workers: w}, 50, func(worker, i int) error {
			runtime.Gosched()
			if i == 7 || i == 23 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("workers=%d: err = %v, want task 7's", w, err)
		}
	}
}

// TestStreamConsumeError: a consume error aborts and is returned.
func TestStreamConsumeError(t *testing.T) {
	sentinel := errors.New("stop at 5")
	for _, w := range []int{1, 4} {
		consumed := 0
		err := Stream(Opts{Workers: w}, 40,
			func(worker, i int) (int, error) { return i, nil },
			func(i int, v int) error {
				if i == 5 {
					return sentinel
				}
				consumed++
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		if consumed != 5 {
			t.Fatalf("workers=%d: consumed %d results before the error, want 5", w, consumed)
		}
	}
}

func TestStreamZeroTasks(t *testing.T) {
	called := false
	err := Stream(Opts{Workers: 4}, 0,
		func(worker, i int) (int, error) { called = true; return 0, nil },
		func(i int, v int) error { called = true; return nil })
	if err != nil || called {
		t.Fatalf("err=%v called=%v", err, called)
	}
}

// TestObsTasksCounterIdenticalAcrossWorkers: the pool's metrics are a
// function of the task count only — byte-identical for workers=1 and
// workers=N — while busy/wall times go to the manifest alone.
func TestObsTasksCounterIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) (string, *obs.Obs) {
		o := obs.New("par-test")
		// Fake wall clock; like the time.Since closures cmd/ injects, it
		// must be safe for concurrent use (workers time their tasks).
		var ticks atomic.Int64
		o.Wall = obs.ClockFunc(func() time.Duration {
			return time.Duration(ticks.Add(1)) * time.Millisecond
		})
		err := ForEach(Opts{Workers: workers, Name: "fibers", Obs: o}, 25, func(worker, i int) error {
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := o.Metrics.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String(), o
	}
	m1, o1 := render(1)
	m4, o4 := render(4)
	if m1 != m4 {
		t.Fatalf("metrics differ across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", m1, m4)
	}
	if !strings.Contains(m1, `rwc_par_tasks_total{pool="fibers"} 25`) {
		t.Fatalf("tasks counter missing:\n%s", m1)
	}
	for _, o := range []*obs.Obs{o1, o4} {
		var wall, busy bool
		for _, p := range o.Manifest.Phases() {
			switch p.Name {
			case "par/fibers/wall":
				wall = true
			case "par/fibers/busy":
				busy = true
			}
		}
		if !wall || !busy {
			t.Fatalf("manifest pool phases missing: wall=%v busy=%v", wall, busy)
		}
	}
}

// TestObsDisabledIsFree: nil Obs and empty pool name record nothing
// and do not crash.
func TestObsDisabledIsFree(t *testing.T) {
	if err := ForEach(Opts{Workers: 2}, 10, func(worker, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	o := obs.New("par-test")
	if err := ForEach(Opts{Workers: 2, Obs: o}, 10, func(worker, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics.Snapshot(); len(got) != 0 {
		t.Fatalf("unnamed pool recorded metrics: %+v", got)
	}
}
