// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component in this repository.
//
// Reproducibility is a hard requirement for the measurement-study
// substrate: the same seed must regenerate the exact same 2.5-year SNR
// fleet on every run so that figures and tests are stable. The stdlib
// math/rand global source is process-wide mutable state and math/rand/v2
// offers no stable cross-version stream guarantee for helper methods, so
// we implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64
// ourselves. Both algorithms are public domain and tiny.
//
// Source is NOT safe for concurrent use; use Split to derive independent
// child streams for concurrent producers.
package rng

import "math"

// Source is a xoshiro256** generator. The zero value is invalid; use New.
type Source struct {
	s [4]uint64
}

// splitMix64 advances x and returns the next SplitMix64 output. It is
// used to expand a 64-bit seed into the 256-bit xoshiro state and to
// derive child seeds in Split.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitMix64(&x)
	}
	// xoshiro must not start in the all-zero state. SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives an independent child stream. The child's seed is drawn
// from the parent, so splitting is itself deterministic: the n-th child
// of a given parent is always the same stream.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits → uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire-style bounded rejection would be faster, but modulo bias is
	// negligible for n << 2^64 and this path is not hot.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a log-normal variate with the given parameters of
// the underlying normal (mu, sigma).
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson returns a Poisson variate with mean lambda. For small lambda
// it uses Knuth's product method; for large lambda the PTRS rejection
// method would be better but our lambdas are small (events per window).
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation keeps the loop bounded for large means.
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Pareto returns a Pareto variate with scale xm>0 and shape alpha>0.
// Used for heavy-tailed outage durations.
func (r *Source) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Categorical samples an index from the (unnormalized, non-negative)
// weight vector w. It panics if all weights are zero or w is empty.
func (r *Source) Categorical(w []float64) int {
	var total float64
	for _, x := range w {
		if x < 0 {
			panic("rng: negative categorical weight")
		}
		total += x
	}
	if len(w) == 0 || total <= 0 {
		panic("rng: Categorical needs positive total weight")
	}
	u := r.Float64() * total
	for i, x := range w {
		u -= x
		if u < 0 {
			return i
		}
	}
	return len(w) - 1 // float round-off: last non-zero bucket
}
