package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical streams")
	}
	// Splitting is deterministic: rebuild and compare.
	parent2 := New(7)
	d1 := parent2.Split()
	d2 := parent2.Split()
	r1 := New(7).Split() // consume same parent draws
	_ = r1
	for i := 0; i < 100; i++ {
		a, b := d1.Uint64(), d2.Uint64()
		_ = a
		_ = b
	}
	// Direct check: first child of seed 7 is always the same.
	e1 := New(7).Split()
	f1 := New(7).Split()
	for i := 0; i < 100; i++ {
		if e1.Uint64() != f1.Uint64() {
			t.Fatalf("first child of same parent diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(17)
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	r := New(1)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
	if v := r.Poisson(-3); v != 0 {
		t.Fatalf("Poisson(-3) = %d", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(23)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(29)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(37)
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("bucket %d rate = %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalSkipsZeroWeight(t *testing.T) {
	r := New(41)
	w := []float64{0, 5, 0}
	for i := 0; i < 1000; i++ {
		if got := r.Categorical(w); got != 1 {
			t.Fatalf("Categorical([0 5 0]) = %d", got)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestParetoAboveScale(t *testing.T) {
	r := New(43)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2,1.5) = %v < xm", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(47)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal <= 0: %v", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		v := r.Uniform(-3, 8)
		return v >= -3 && v < 8
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64NotAllZero(t *testing.T) {
	// Property: any seed yields a non-degenerate stream.
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		var or uint64
		for i := 0; i < 16; i++ {
			or |= r.Uint64()
		}
		return or != 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
