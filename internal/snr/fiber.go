package snr

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// FiberParams configures the generation of all wavelengths riding one
// physical fiber. The paper's Figure 1 plots forty wavelengths of one
// cable: they share fiber-level impairments (a cut or an amplifier
// failure hits every wavelength) while keeping per-wavelength baselines
// spread by a few dB (channel position in the band changes amplifier
// gain and accumulated noise).
type FiberParams struct {
	// Wavelengths is the number of optical channels on the fiber.
	// The paper's backbone carries 40 per fiber.
	Wavelengths int
	// BaselineMeandB and BaselineStddB define the fiber-quality prior
	// from which each wavelength's baseline is drawn.
	BaselineMeandB, BaselineStddB float64
	// FiberDipsPerYear is the rate of fiber-level events shared by all
	// wavelengths.
	FiberDipsPerYear float64
	// FiberLossOfLightProb is the chance a fiber-level event is a cut
	// (complete loss of light on every wavelength).
	FiberLossOfLightProb float64
	// FiberDipDepthMu/Sigma and FiberDipDurationMuHours/Sigma shape the
	// log-normal depth and duration of fiber-level partial events.
	FiberDipDepthMu, FiberDipDepthSigma            float64
	FiberDipDurationMuHours, FiberDipDurationSigma float64
	// JitterLogSigma spreads the per-wavelength jitter: each
	// wavelength's JitterStd is the configured value times
	// exp(JitterLogSigma·N(0,1)). The paper's Figure 2a needs link
	// heterogeneity — 83% of links have a 95% HDR under 2 dB, the rest
	// are noisier.
	JitterLogSigma float64
	// Wavelength holds the per-wavelength local process parameters;
	// BaselinedB inside it is ignored (drawn from the fiber prior).
	Wavelength Params
}

// Validate reports whether the parameters are usable.
func (fp FiberParams) Validate() error {
	switch {
	case fp.Wavelengths <= 0:
		return fmt.Errorf("snr: fiber needs >= 1 wavelength, got %d", fp.Wavelengths)
	case fp.BaselineStddB < 0:
		return fmt.Errorf("snr: negative BaselineStddB")
	case fp.FiberDipsPerYear < 0:
		return fmt.Errorf("snr: negative FiberDipsPerYear")
	case fp.FiberLossOfLightProb < 0 || fp.FiberLossOfLightProb > 1:
		return fmt.Errorf("snr: FiberLossOfLightProb outside [0,1]")
	case fp.JitterLogSigma < 0:
		return fmt.Errorf("snr: negative JitterLogSigma")
	}
	return fp.Wavelength.Validate()
}

// DefaultFiberParams returns the calibrated configuration used by the
// dataset generator. The values are chosen so that the fleet-level
// statistics match the paper's published aggregates; see
// internal/dataset for the calibration tests.
func DefaultFiberParams() FiberParams {
	return FiberParams{
		Wavelengths:    40,
		BaselineMeandB: 15.45,
		BaselineStddB:  1.7,
		JitterLogSigma: 0.55,
		// Roughly one fiber-level event every ~10 months.
		FiberDipsPerYear:     1.2,
		FiberLossOfLightProb: 0.14,
		FiberDipDepthMu:      math.Log(6), // median 6 dB drop
		FiberDipDepthSigma:   0.8,
		// Median ≈ 4.5 h, heavy tail to ~20 h (Figure 3b).
		FiberDipDurationMuHours: math.Log(4.5),
		FiberDipDurationSigma:   0.75,
		Wavelength: Params{
			JitterStd:          0.28,
			JitterPhi:          0.97,
			SeasonalAmpdB:      0.25,
			DipsPerYear:        1.1,
			DipDepthMu:         math.Log(5),
			DipDepthSigma:      0.9,
			DipDurationMuHours: math.Log(4),
			DipDurationSigma:   0.8,
			LossOfLightProb:    0.17,
		},
	}
}

// Fiber holds the generated series of every wavelength on one fiber.
type Fiber struct {
	// Series has one entry per wavelength.
	Series []*Series
	// FiberDips are the shared events injected into every wavelength.
	FiberDips []Dip
}

// GenerateFiber produces n samples for every wavelength of a fiber.
// Fiber-level events are drawn once and injected into every wavelength,
// producing the correlated dips visible in Figure 1.
func GenerateFiber(fp FiberParams, n int, r *rng.Source) (*Fiber, error) {
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("snr: need n > 0 samples, got %d", n)
	}

	years := float64(n) / samplesPerYear
	nEvents := r.Poisson(fp.FiberDipsPerYear * years)
	shared := make([]Dip, 0, nEvents)
	for i := 0; i < nEvents; i++ {
		durH := r.LogNormal(fp.FiberDipDurationMuHours, fp.FiberDipDurationSigma)
		durSamples := int(math.Max(1, math.Round(durH*4)))
		start, end := placeDip(r.Intn(n), durSamples, n)
		d := Dip{Start: start, End: end, FiberLevel: true}
		if r.Bernoulli(fp.FiberLossOfLightProb) {
			d.Kind = DipLossOfLight
		} else {
			d.Kind = DipPartial
			d.DepthdB = r.LogNormal(fp.FiberDipDepthMu, fp.FiberDipDepthSigma)
		}
		shared = append(shared, d)
	}

	f := &Fiber{FiberDips: shared, Series: make([]*Series, fp.Wavelengths)}
	for w := 0; w < fp.Wavelengths; w++ {
		p := fp.Wavelength
		p.BaselinedB = fp.BaselineMeandB + fp.BaselineStddB*r.NormFloat64()
		if fp.JitterLogSigma > 0 {
			p.JitterStd *= math.Exp(fp.JitterLogSigma * r.NormFloat64())
		}
		// Partial fiber events hit each wavelength with slightly
		// different severity; perturb depth per wavelength.
		wshared := make([]Dip, len(shared))
		for i, d := range shared {
			if d.Kind == DipPartial {
				d.DepthdB *= r.Uniform(0.8, 1.2)
			}
			wshared[i] = d
		}
		s, err := Generate(p, n, r.Split(), wshared)
		if err != nil {
			return nil, err
		}
		f.Series[w] = s
	}
	return f, nil
}
