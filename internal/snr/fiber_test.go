package snr

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestGenerateFiberShape(t *testing.T) {
	fp := DefaultFiberParams()
	f, err := GenerateFiber(fp, samplesPerYear/4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 40 {
		t.Fatalf("wavelengths = %d", len(f.Series))
	}
	for i, s := range f.Series {
		if len(s.Samples) != samplesPerYear/4 {
			t.Fatalf("wavelength %d has %d samples", i, len(s.Samples))
		}
	}
}

func TestGenerateFiberValidation(t *testing.T) {
	fp := DefaultFiberParams()
	fp.Wavelengths = 0
	if _, err := GenerateFiber(fp, 100, rng.New(1)); err == nil {
		t.Fatal("0 wavelengths should error")
	}
	fp = DefaultFiberParams()
	if _, err := GenerateFiber(fp, 0, rng.New(1)); err == nil {
		t.Fatal("0 samples should error")
	}
	fp = DefaultFiberParams()
	fp.FiberLossOfLightProb = 2
	if _, err := GenerateFiber(fp, 100, rng.New(1)); err == nil {
		t.Fatal("bad probability should error")
	}
}

func TestGenerateFiberDeterministic(t *testing.T) {
	fp := DefaultFiberParams()
	fp.Wavelengths = 4
	a, _ := GenerateFiber(fp, 2000, rng.New(9))
	b, _ := GenerateFiber(fp, 2000, rng.New(9))
	for w := range a.Series {
		for i := range a.Series[w].Samples {
			if a.Series[w].Samples[i] != b.Series[w].Samples[i] {
				t.Fatalf("wavelength %d diverged at %d", w, i)
			}
		}
	}
}

func TestFiberBaselinesSpread(t *testing.T) {
	fp := DefaultFiberParams()
	f, _ := GenerateFiber(fp, 1000, rng.New(3))
	baselines := make([]float64, len(f.Series))
	for i, s := range f.Series {
		baselines[i] = s.BaselinedB
	}
	sum, _ := stats.Summarize(baselines)
	// Prior is N(15.9, 1.5); 40 draws should center nearby and spread.
	if sum.Mean < 14.5 || sum.Mean > 17.5 {
		t.Fatalf("baseline mean = %v", sum.Mean)
	}
	if sum.Std < 0.5 {
		t.Fatalf("baselines too concentrated: std = %v", sum.Std)
	}
}

func TestFiberLevelDipsShared(t *testing.T) {
	fp := DefaultFiberParams()
	fp.Wavelengths = 10
	fp.FiberDipsPerYear = 8 // force events
	fp.Wavelength.DipsPerYear = 0
	f, _ := GenerateFiber(fp, samplesPerYear, rng.New(5))
	if len(f.FiberDips) == 0 {
		t.Skip("no fiber events drawn at this seed") // statistically ~0 chance
	}
	// Every wavelength must contain each fiber-level event window.
	for _, fd := range f.FiberDips {
		for w, s := range f.Series {
			found := false
			for _, d := range s.Dips {
				if d.FiberLevel && d.Start <= fd.Start && d.End >= min(fd.End, len(s.Samples)) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("wavelength %d missing fiber event %+v", w, fd)
			}
		}
	}
}

func TestFiberLossOfLightHitsAllWavelengths(t *testing.T) {
	fp := DefaultFiberParams()
	fp.Wavelengths = 5
	fp.FiberDipsPerYear = 6
	fp.FiberLossOfLightProb = 1 // all fiber events are cuts
	fp.Wavelength.DipsPerYear = 0
	f, _ := GenerateFiber(fp, samplesPerYear, rng.New(7))
	if len(f.FiberDips) == 0 {
		t.Fatal("expected fiber events at 6/year")
	}
	cut := f.FiberDips[0]
	mid := (cut.Start + cut.End) / 2
	for w, s := range f.Series {
		if mid < len(s.Samples) && s.Samples[mid] != LossOfLightdB {
			t.Fatalf("wavelength %d not dark during fiber cut: %v", w, s.Samples[mid])
		}
	}
}

func TestDefaultFiberParamsValid(t *testing.T) {
	if err := DefaultFiberParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
