package snr

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/stats"
)

func quietParams() Params {
	return Params{
		BaselinedB: 15,
		JitterStd:  0.3,
		JitterPhi:  0.95,
	}
}

func TestGenerateLength(t *testing.T) {
	s, err := Generate(quietParams(), 1000, rng.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) != 1000 {
		t.Fatalf("len = %d", len(s.Samples))
	}
	if s.Duration() != 1000*SampleInterval {
		t.Fatalf("duration = %v", s.Duration())
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate(quietParams(), 0, rng.New(1), nil); err == nil {
		t.Fatal("n=0 should error")
	}
	bad := quietParams()
	bad.JitterPhi = 1.0
	if _, err := Generate(bad, 10, rng.New(1), nil); err == nil {
		t.Fatal("phi=1 should error")
	}
	bad = quietParams()
	bad.JitterStd = -1
	if _, err := Generate(bad, 10, rng.New(1), nil); err == nil {
		t.Fatal("negative jitter should error")
	}
	bad = quietParams()
	bad.LossOfLightProb = 1.5
	if _, err := Generate(bad, 10, rng.New(1), nil); err == nil {
		t.Fatal("bad probability should error")
	}
	bad = quietParams()
	bad.DipsPerYear = -2
	if _, err := Generate(bad, 10, rng.New(1), nil); err == nil {
		t.Fatal("negative dip rate should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(quietParams(), 5000, rng.New(42), nil)
	b, _ := Generate(quietParams(), 5000, rng.New(42), nil)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("series diverged at %d", i)
		}
	}
}

func TestQuietSeriesStaysNearBaseline(t *testing.T) {
	p := quietParams()
	s, _ := Generate(p, samplesPerYear, rng.New(7), nil)
	sum, err := stats.Summarize(s.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Mean-p.BaselinedB) > 0.3 {
		t.Fatalf("mean = %v, want ≈ %v", sum.Mean, p.BaselinedB)
	}
	// Stationary AR(1) std should be close to JitterStd.
	if sum.Std < 0.15 || sum.Std > 0.5 {
		t.Fatalf("std = %v, want ≈ %v", sum.Std, p.JitterStd)
	}
	if len(s.Dips) != 0 {
		t.Fatalf("quiet series has %d dips", len(s.Dips))
	}
}

func TestQuietSeriesNarrowHDR(t *testing.T) {
	// The paper's key stability observation: without impairments the
	// 95% HDR is well under 2 dB.
	s, _ := Generate(quietParams(), samplesPerYear, rng.New(11), nil)
	h, err := stats.HDR(s.Samples, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if h.Width() >= 2 {
		t.Fatalf("HDR width = %v, want < 2 dB", h.Width())
	}
}

func TestPartialDipDepressesSNR(t *testing.T) {
	p := quietParams()
	dip := Dip{Kind: DipPartial, Start: 100, End: 200, DepthdB: 6}
	s, _ := Generate(p, 1000, rng.New(3), []Dip{dip})
	inDip := stats.Mean(s.Samples[120:180])
	outDip := stats.Mean(s.Samples[300:900])
	if outDip-inDip < 5 || outDip-inDip > 7 {
		t.Fatalf("dip depth = %v, want ≈ 6", outDip-inDip)
	}
}

func TestLossOfLightFloorsSNR(t *testing.T) {
	dip := Dip{Kind: DipLossOfLight, Start: 50, End: 80}
	s, _ := Generate(quietParams(), 200, rng.New(5), []Dip{dip})
	for i := 50; i < 80; i++ {
		if s.Samples[i] != LossOfLightdB {
			t.Fatalf("sample %d = %v during loss of light", i, s.Samples[i])
		}
	}
	if s.Samples[49] == LossOfLightdB || s.Samples[80] == LossOfLightdB {
		t.Fatal("loss of light leaked outside the dip")
	}
}

func TestDeepPartialDipClampsAtFloor(t *testing.T) {
	dip := Dip{Kind: DipPartial, Start: 10, End: 20, DepthdB: 100}
	s, _ := Generate(quietParams(), 100, rng.New(5), []Dip{dip})
	for i := 10; i < 20; i++ {
		if s.Samples[i] != LossOfLightdB {
			t.Fatalf("sample %d = %v, want floored", i, s.Samples[i])
		}
	}
}

func TestNormalizeDipsClipsAndMerges(t *testing.T) {
	dips := []Dip{
		{Kind: DipPartial, Start: -5, End: 10, DepthdB: 3},
		{Kind: DipPartial, Start: 5, End: 20, DepthdB: 7},  // overlaps → merge
		{Kind: DipPartial, Start: 50, End: 45, DepthdB: 1}, // empty → drop
		{Kind: DipPartial, Start: 90, End: 200, DepthdB: 2},
	}
	out := normalizeDips(dips, 100)
	if len(out) != 2 {
		t.Fatalf("got %d dips: %+v", len(out), out)
	}
	if out[0].Start != 0 || out[0].End != 20 || out[0].DepthdB != 7 {
		t.Fatalf("merged dip wrong: %+v", out[0])
	}
	if out[1].Start != 90 || out[1].End != 100 {
		t.Fatalf("clip wrong: %+v", out[1])
	}
}

func TestNormalizeDipsLossOfLightDominates(t *testing.T) {
	dips := []Dip{
		{Kind: DipPartial, Start: 0, End: 10, DepthdB: 3},
		{Kind: DipLossOfLight, Start: 5, End: 8},
	}
	out := normalizeDips(dips, 100)
	if len(out) != 1 || out[0].Kind != DipLossOfLight {
		t.Fatalf("merge did not keep loss-of-light: %+v", out)
	}
}

func TestNormalizeDipsSortsUnordered(t *testing.T) {
	dips := []Dip{
		{Kind: DipPartial, Start: 50, End: 60, DepthdB: 1},
		{Kind: DipPartial, Start: 10, End: 20, DepthdB: 1},
	}
	out := normalizeDips(dips, 100)
	if len(out) != 2 || out[0].Start != 10 {
		t.Fatalf("not sorted: %+v", out)
	}
}

func TestDipsAreRecordedSorted(t *testing.T) {
	p := quietParams()
	p.DipsPerYear = 20
	p.DipDepthMu = math.Log(5)
	p.DipDurationMuHours = math.Log(3)
	s, _ := Generate(p, samplesPerYear, rng.New(13), nil)
	if len(s.Dips) == 0 {
		t.Fatal("expected dips at 20/year")
	}
	for i := 1; i < len(s.Dips); i++ {
		if s.Dips[i].Start < s.Dips[i-1].End {
			t.Fatalf("dips overlap or unsorted: %+v", s.Dips)
		}
	}
}

func TestSamplesNeverBelowFloor(t *testing.T) {
	p := quietParams()
	p.DipsPerYear = 30
	p.LossOfLightProb = 0.5
	p.DipDepthMu = math.Log(10)
	p.DipDepthSigma = 1
	p.DipDurationMuHours = math.Log(5)
	p.DipDurationSigma = 1
	s, _ := Generate(p, samplesPerYear, rng.New(17), nil)
	for i, v := range s.Samples {
		if v < LossOfLightdB {
			t.Fatalf("sample %d = %v below floor", i, v)
		}
	}
}

func TestSamplesFor(t *testing.T) {
	if n := SamplesFor(24 * time.Hour); n != 96 {
		t.Fatalf("SamplesFor(24h) = %d, want 96", n)
	}
	if n := SamplesFor(time.Hour); n != 4 {
		t.Fatalf("SamplesFor(1h) = %d", n)
	}
}

func TestDipDuration(t *testing.T) {
	d := Dip{Start: 0, End: 8}
	if d.Duration() != 2*time.Hour {
		t.Fatalf("duration = %v", d.Duration())
	}
}

func TestDipKindString(t *testing.T) {
	if DipPartial.String() != "partial" || DipLossOfLight.String() != "loss-of-light" {
		t.Fatal("kind strings wrong")
	}
	if DipKind(9).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}

func TestMinMax(t *testing.T) {
	s := &Series{Samples: []float64{3, 1, 4}}
	lo, hi := s.MinMax()
	if lo != 1 || hi != 4 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestMinMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Series{}).MinMax()
}

func TestSeasonalDriftBounded(t *testing.T) {
	p := quietParams()
	p.JitterStd = 0.01
	p.SeasonalAmpdB = 1.5
	s, _ := Generate(p, samplesPerYear, rng.New(19), nil)
	lo, hi := s.MinMax()
	if hi-lo < 2.5 || hi-lo > 3.3 {
		t.Fatalf("seasonal swing = %v, want ≈ 3 dB", hi-lo)
	}
}
