package snr

// Regression tests for dip placement near the horizon end (ISSUE 3).
// The old code truncated a dip overrunning the final sample to end at
// the horizon, biasing the empirical duration distribution short; the
// fix (placeDip) shifts the dip left instead, preserving the drawn
// duration. With DipDurationSigma = 0 every drawn duration is a known
// constant, so any shorter dip in the output is a truncation — the
// generative tests below fail against the pre-fix code.

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPlaceDip(t *testing.T) {
	cases := []struct {
		start, dur, n      int
		wantStart, wantEnd int
	}{
		{start: 10, dur: 5, n: 100, wantStart: 10, wantEnd: 15},   // interior: untouched
		{start: 98, dur: 5, n: 100, wantStart: 95, wantEnd: 100},  // overruns: shifted left
		{start: 95, dur: 5, n: 100, wantStart: 95, wantEnd: 100},  // exactly fits
		{start: 0, dur: 200, n: 100, wantStart: 0, wantEnd: 100},  // longer than horizon: clamped
		{start: 60, dur: 200, n: 100, wantStart: 0, wantEnd: 100}, // ditto, from the middle
	}
	for _, c := range cases {
		s, e := placeDip(c.start, c.dur, c.n)
		if s != c.wantStart || e != c.wantEnd {
			t.Errorf("placeDip(%d, %d, %d) = [%d, %d), want [%d, %d)",
				c.start, c.dur, c.n, s, e, c.wantStart, c.wantEnd)
		}
		if e-s != min(c.dur, c.n) {
			t.Errorf("placeDip(%d, %d, %d): duration %d, want %d",
				c.start, c.dur, c.n, e-s, min(c.dur, c.n))
		}
	}
}

// TestGenerateDipsKeepDrawnDuration: with a degenerate duration law
// (sigma 0) every wavelength-local dip is drawn at exactly 18 samples,
// and normalizeDips only merges (extends) — so every dip in the output
// must span >= 18 samples. The pre-fix truncation produced shorter
// dips whenever the uniform start landed within 17 samples of the
// horizon end, which the seed sweep is sized to hit many times.
func TestGenerateDipsKeepDrawnDuration(t *testing.T) {
	const n = 384 // 4 days at 15 min
	p := Params{
		BaselinedB:         15,
		JitterStd:          0.2,
		JitterPhi:          0.9,
		DipsPerYear:        180, // ~2 dips expected per series
		DipDepthMu:         math.Log(5),
		DipDepthSigma:      0.5,
		DipDurationMuHours: math.Log(4.5), // 4.5 h * 4 samples/h = 18 samples
		DipDurationSigma:   0,
		LossOfLightProb:    0.2,
	}
	const wantDur = 18
	dips, atHorizonEnd := 0, 0
	for seed := uint64(1); seed <= 80; seed++ {
		s, err := Generate(p, n, rng.New(seed), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range s.Dips {
			dips++
			if got := d.End - d.Start; got < wantDur {
				t.Fatalf("seed %d: dip [%d, %d) spans %d samples, want >= %d (truncated at the horizon?)",
					seed, d.Start, d.End, got, wantDur)
			}
			if d.End == n {
				atHorizonEnd++
			}
		}
	}
	// The sweep must actually exercise the horizon-end path, or the
	// duration assertion above proves nothing.
	if dips == 0 || atHorizonEnd == 0 {
		t.Fatalf("sweep went dead: %d dips, %d touching the horizon end; retune rate/seeds", dips, atHorizonEnd)
	}
}

// TestGenerateFiberDipsKeepDrawnDuration: the same truncation existed
// independently for fiber-level events. FiberDips is the raw
// (unmerged) event list, so with sigma 0 every event must span exactly
// the drawn 18 samples.
func TestGenerateFiberDipsKeepDrawnDuration(t *testing.T) {
	const n = 384
	fp := FiberParams{
		Wavelengths:             2,
		BaselineMeandB:          15,
		BaselineStddB:           1,
		FiberDipsPerYear:        180,
		FiberLossOfLightProb:    0.2,
		FiberDipDepthMu:         math.Log(6),
		FiberDipDepthSigma:      0.5,
		FiberDipDurationMuHours: math.Log(4.5),
		FiberDipDurationSigma:   0,
		Wavelength: Params{
			JitterStd: 0.2,
			JitterPhi: 0.9,
			// No wavelength-local dips: isolate the fiber-level path.
		},
	}
	const wantDur = 18
	dips, atHorizonEnd := 0, 0
	for seed := uint64(1); seed <= 80; seed++ {
		f, err := GenerateFiber(fp, n, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range f.FiberDips {
			dips++
			if got := d.End - d.Start; got != wantDur {
				t.Fatalf("seed %d: fiber dip [%d, %d) spans %d samples, want exactly %d",
					seed, d.Start, d.End, got, wantDur)
			}
			if d.End == n {
				atHorizonEnd++
			}
		}
	}
	if dips == 0 || atHorizonEnd == 0 {
		t.Fatalf("sweep went dead: %d dips, %d touching the horizon end; retune rate/seeds", dips, atHorizonEnd)
	}
}
