// Package snr models the signal-to-noise ratio of optical wavelengths
// over time. It is the synthetic stand-in for the paper's proprietary
// telemetry: 15-minute SNR samples for every wavelength ("IP link") of a
// large optical backbone over 2.5 years (§2.1).
//
// The generative model is calibrated so the paper's published aggregate
// statistics emerge from the process (see internal/dataset):
//
//   - each wavelength has a stable baseline SNR with small AR(1) jitter
//     and a slow seasonal drift, so its 95% highest-density region is
//     narrow (83% of links < 2 dB in the paper);
//   - rare impairment events ("dips") — maintenance accidents, amplifier
//     or transponder failures, fiber cuts — depress the SNR sharply for
//     hours, producing the wide max−min ranges (average ≈ 12 dB) and the
//     link failures of §2.2. A fraction of dips are complete
//     loss-of-light (fiber cut-like), flooring the SNR;
//   - wavelengths riding the same fiber share fiber-level events, which
//     is why Figure 1's forty series dip together.
package snr

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// SampleInterval is the telemetry cadence used throughout the paper.
const SampleInterval = 15 * time.Minute

// LossOfLightdB is the floor value recorded when the receiver loses the
// signal entirely. SNR is undefined without light; operators' telemetry
// reports a floor value, and the paper's Figure 4c shows failure-event
// SNRs extending down to 0 dB.
const LossOfLightdB = 0.0

// DipKind distinguishes partial impairments from complete loss of light.
type DipKind int

const (
	// DipPartial lowers the SNR by a finite depth (amplifier failures,
	// maintenance accidents, connector degradation).
	DipPartial DipKind = iota
	// DipLossOfLight floors the SNR (fiber cuts, laser shutdowns).
	DipLossOfLight
)

// String names the dip kind.
func (k DipKind) String() string {
	switch k {
	case DipPartial:
		return "partial"
	case DipLossOfLight:
		return "loss-of-light"
	default:
		return fmt.Sprintf("DipKind(%d)", int(k))
	}
}

// Dip is one impairment event within a series.
type Dip struct {
	Kind DipKind
	// Start and End are inclusive/exclusive sample indices.
	Start, End int
	// DepthdB is how far a partial dip depresses the SNR below the
	// baseline. Unused for loss-of-light.
	DepthdB float64
	// FiberLevel marks events shared by all wavelengths on the fiber.
	FiberLevel bool
}

// Duration returns the dip's wall-clock duration.
func (d Dip) Duration() time.Duration {
	return time.Duration(d.End-d.Start) * SampleInterval
}

// Series is the SNR time series of one wavelength.
type Series struct {
	// Samples holds SNR in dB at SampleInterval cadence, floored at
	// LossOfLightdB.
	Samples []float64
	// Dips lists the impairment events embedded in Samples, ascending
	// by Start and non-overlapping.
	Dips []Dip
	// BaselinedB is the long-run mean the series jitters around.
	BaselinedB float64
}

// Duration returns the series' covered wall-clock time.
func (s *Series) Duration() time.Duration {
	return time.Duration(len(s.Samples)) * SampleInterval
}

// MinMax returns the extreme samples. It panics on an empty series.
func (s *Series) MinMax() (lo, hi float64) {
	if len(s.Samples) == 0 {
		panic("snr: MinMax of empty series")
	}
	lo, hi = s.Samples[0], s.Samples[0]
	for _, v := range s.Samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Params configures the generative model for one wavelength.
type Params struct {
	// BaselinedB is the wavelength's long-run mean SNR.
	BaselinedB float64
	// JitterStd is the stationary standard deviation of the AR(1)
	// jitter around the baseline (dB).
	JitterStd float64
	// JitterPhi is the AR(1) coefficient in [0, 1); higher = smoother.
	JitterPhi float64
	// SeasonalAmpdB is the amplitude of a slow annual sinusoidal drift.
	SeasonalAmpdB float64
	// DipsPerYear is the Poisson rate of wavelength-local impairment
	// events.
	DipsPerYear float64
	// DipDepthMu, DipDepthSigma parameterize the log-normal depth (dB)
	// of partial dips.
	DipDepthMu, DipDepthSigma float64
	// DipDurationMuHours, DipDurationSigma parameterize the log-normal
	// dip duration. The paper observes failures lasting several hours
	// (Figure 3b).
	DipDurationMuHours, DipDurationSigma float64
	// LossOfLightProb is the probability that a dip is a complete
	// loss-of-light event rather than a partial impairment.
	LossOfLightProb float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.JitterStd < 0:
		return fmt.Errorf("snr: negative JitterStd %v", p.JitterStd)
	case p.JitterPhi < 0 || p.JitterPhi >= 1:
		return fmt.Errorf("snr: JitterPhi %v outside [0,1)", p.JitterPhi)
	case p.DipsPerYear < 0:
		return fmt.Errorf("snr: negative DipsPerYear %v", p.DipsPerYear)
	case p.LossOfLightProb < 0 || p.LossOfLightProb > 1:
		return fmt.Errorf("snr: LossOfLightProb %v outside [0,1]", p.LossOfLightProb)
	case p.DipDurationSigma < 0 || p.DipDepthSigma < 0:
		return fmt.Errorf("snr: negative sigma")
	}
	return nil
}

// samplesPerYear at the 15-minute cadence.
const samplesPerYear = 365 * 24 * 4

// SamplesFor returns the number of samples covering d.
func SamplesFor(d time.Duration) int {
	return int(d / SampleInterval)
}

// Generate produces a Series of n samples using r as the randomness
// source. extraDips are events injected from outside (fiber-level
// events shared across wavelengths); they are merged with the
// wavelength-local dips drawn from the Params.
func Generate(p Params, n int, r *rng.Source, extraDips []Dip) (*Series, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("snr: need n > 0 samples, got %d", n)
	}

	s := &Series{
		Samples:    make([]float64, n),
		BaselinedB: p.BaselinedB,
	}

	// AR(1) jitter with stationary std JitterStd: innovation std is
	// JitterStd * sqrt(1 - phi^2); start from the stationary law.
	innovStd := p.JitterStd * math.Sqrt(1-p.JitterPhi*p.JitterPhi)
	jitter := p.JitterStd * r.NormFloat64()

	// Seasonal phase differs per wavelength.
	phase := r.Uniform(0, 2*math.Pi)

	for i := 0; i < n; i++ {
		seasonal := p.SeasonalAmpdB * math.Sin(2*math.Pi*float64(i)/samplesPerYear+phase)
		s.Samples[i] = p.BaselinedB + seasonal + jitter
		jitter = p.JitterPhi*jitter + innovStd*r.NormFloat64()
	}

	// Wavelength-local dips: Poisson count over the horizon, placed
	// uniformly.
	years := float64(n) / samplesPerYear
	local := r.Poisson(p.DipsPerYear * years)
	dips := append([]Dip(nil), extraDips...)
	for i := 0; i < local; i++ {
		durH := r.LogNormal(p.DipDurationMuHours, p.DipDurationSigma)
		durSamples := int(math.Max(1, math.Round(durH*4))) // 4 samples/hour
		start, end := placeDip(r.Intn(n), durSamples, n)
		d := Dip{Start: start, End: end}
		if r.Bernoulli(p.LossOfLightProb) {
			d.Kind = DipLossOfLight
		} else {
			d.Kind = DipPartial
			d.DepthdB = r.LogNormal(p.DipDepthMu, p.DipDepthSigma)
		}
		dips = append(dips, d)
	}

	s.Dips = normalizeDips(dips, n)
	applyDips(s)
	return s, nil
}

// placeDip fits a drawn dip of durSamples samples starting at start
// into the [0, n) horizon while preserving the drawn duration: a dip
// that would overrun the end is shifted left instead of truncated.
// Truncating biased the empirical dip-duration distribution short near
// the horizon end (skewing the Figure 3b failure durations); shifting
// keeps the log-normal duration law exact while changing same-seed
// output only for dips that would have crossed the final samples.
func placeDip(start, durSamples, n int) (s, e int) {
	if durSamples > n {
		durSamples = n
	}
	if start+durSamples > n {
		start = n - durSamples
	}
	return start, start + durSamples
}

// normalizeDips clips dips to [0, n), drops empty ones, sorts by start,
// and merges overlaps (the deeper impairment wins inside an overlap, so
// merging keeps both as separate entries only when disjoint; overlapping
// dips are coalesced into one with the worse kind/depth).
func normalizeDips(dips []Dip, n int) []Dip {
	out := make([]Dip, 0, len(dips))
	for _, d := range dips {
		if d.Start < 0 {
			d.Start = 0
		}
		if d.End > n {
			d.End = n
		}
		if d.End <= d.Start {
			continue
		}
		out = append(out, d)
	}
	// Insertion sort by Start (dip counts are small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start < out[j-1].Start; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	merged := out[:0]
	for _, d := range out {
		if len(merged) == 0 || d.Start >= merged[len(merged)-1].End {
			merged = append(merged, d)
			continue
		}
		last := &merged[len(merged)-1]
		if d.End > last.End {
			last.End = d.End
		}
		if d.Kind == DipLossOfLight {
			last.Kind = DipLossOfLight
			last.DepthdB = 0
		} else if last.Kind == DipPartial && d.DepthdB > last.DepthdB {
			last.DepthdB = d.DepthdB
		}
		last.FiberLevel = last.FiberLevel || d.FiberLevel
	}
	return merged
}

// applyDips depresses the samples covered by each dip.
func applyDips(s *Series) {
	for _, d := range s.Dips {
		for i := d.Start; i < d.End; i++ {
			switch d.Kind {
			case DipLossOfLight:
				s.Samples[i] = LossOfLightdB
			case DipPartial:
				if v := s.Samples[i] - d.DepthdB; v > LossOfLightdB {
					s.Samples[i] = v
				} else {
					s.Samples[i] = LossOfLightdB
				}
			}
		}
	}
	// Floor everything: jitter alone cannot push below loss of light.
	for i, v := range s.Samples {
		if v < LossOfLightdB {
			s.Samples[i] = LossOfLightdB
		}
	}
}
