// Package spectrum implements the optical provisioning layer under the
// paper's IP links: a WDM network where each fiber carries a fixed
// channel grid (the paper's cables carry 40 wavelengths), and an IP
// link is created by provisioning a *lightpath* — a route through the
// fiber graph plus one wavelength channel, identical on every hop
// (the wavelength-continuity constraint of systems without full
// conversion).
//
// The package closes the loop with the rest of the reproduction: a
// provisioned lightpath's length determines its SNR through the QoT
// model, its SNR determines the feasible modulation ladder rungs, and
// ToTopology exports the resulting IP topology *with its upgrade
// matrices U and P already filled in* — exactly the input Algorithm 1
// wants.
package spectrum

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/modulation"
	"repro/internal/qot"
)

// LightpathID identifies a provisioned lightpath.
type LightpathID int

// NoLightpath marks a free channel.
const NoLightpath LightpathID = 0

// Lightpath is one provisioned wavelength service.
type Lightpath struct {
	ID LightpathID
	// Src and Dst are the IP-layer endpoints.
	Src, Dst graph.NodeID
	// Route is the fiber-level path.
	Route graph.Path
	// Channel is the wavelength index used on every fiber of the
	// route (wavelength continuity).
	Channel int
	// LengthKm is the route's physical length.
	LengthKm float64
	// SNRdB is the QoT-estimated receiver SNR.
	SNRdB float64
	// Capacity is the configured capacity (initially the deployment
	// default, upgradable to Feasible).
	Capacity modulation.Gbps
	// Feasible is the highest ladder rung the SNR supports.
	Feasible modulation.Gbps
}

// Headroom returns the upgradable capacity.
func (lp *Lightpath) Headroom() modulation.Gbps {
	if lp.Feasible > lp.Capacity {
		return lp.Feasible - lp.Capacity
	}
	return 0
}

// Config sets up the provisioning layer.
type Config struct {
	// Channels per fiber (default 40, the paper's count).
	Channels int
	// KPaths is how many candidate routes to try per request
	// (default 3).
	KPaths int
	// DefaultCapacity is the rung new lightpaths start at (default
	// 100 Gbps, the paper's static deployment).
	DefaultCapacity modulation.Gbps
	// Ladder is the modulation ladder (default modulation.Default()).
	Ladder *modulation.Ladder
	// QoT estimates SNR from length (default qot.Default()).
	QoT qot.Params
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Channels == 0 {
		c.Channels = 40
	}
	if c.KPaths == 0 {
		c.KPaths = 3
	}
	if c.DefaultCapacity == 0 {
		c.DefaultCapacity = 100
	}
	if c.Ladder == nil {
		c.Ladder = modulation.Default()
	}
	if c.QoT == (qot.Params{}) {
		c.QoT = qot.Default()
	}
	return c
}

// Network is the provisioning state over a fiber graph.
type Network struct {
	cfg Config
	// fibers is the physical topology: edges are fibers, Weight is
	// length in km. Edge capacities are set to 1 so path algorithms
	// treat all fibers as usable.
	fibers *graph.Graph
	// occupancy[edge][channel] is the lightpath using the channel.
	occupancy  [][]LightpathID
	lightpaths map[LightpathID]*Lightpath
	nextID     LightpathID
}

// NewNetwork wraps a fiber graph (edge Weight = length in km; build
// both directions for bidirectional fibers).
func NewNetwork(fibers *graph.Graph, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if fibers == nil {
		return nil, fmt.Errorf("spectrum: nil fiber graph")
	}
	if _, ok := cfg.Ladder.ModeFor(cfg.DefaultCapacity); !ok {
		return nil, fmt.Errorf("spectrum: default capacity %v not in ladder", cfg.DefaultCapacity)
	}
	if err := cfg.QoT.Validate(); err != nil {
		return nil, err
	}
	g := fibers.Clone()
	for _, e := range g.Edges() {
		if e.Weight <= 0 {
			return nil, fmt.Errorf("spectrum: fiber %d has non-positive length %v", e.ID, e.Weight)
		}
		g.SetCapacity(e.ID, 1)
	}
	n := &Network{
		cfg:        cfg,
		fibers:     g,
		occupancy:  make([][]LightpathID, g.NumEdges()),
		lightpaths: make(map[LightpathID]*Lightpath),
		nextID:     1,
	}
	for i := range n.occupancy {
		n.occupancy[i] = make([]LightpathID, cfg.Channels)
	}
	return n, nil
}

// Channels returns the per-fiber channel count.
func (n *Network) Channels() int { return n.cfg.Channels }

// Lightpaths returns the provisioned lightpaths, ascending by ID.
func (n *Network) Lightpaths() []*Lightpath {
	out := make([]*Lightpath, 0, len(n.lightpaths))
	for _, lp := range n.lightpaths {
		out = append(out, lp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// freeChannel returns the lowest channel free on every edge of the
// path (first-fit), or -1.
func (n *Network) freeChannel(p graph.Path) int {
	for ch := 0; ch < n.cfg.Channels; ch++ {
		free := true
		for _, id := range p.Edges {
			if n.occupancy[id][ch] != NoLightpath {
				free = false
				break
			}
		}
		if free {
			return ch
		}
	}
	return -1
}

// pathLengthKm sums fiber lengths along a path.
func (n *Network) pathLengthKm(p graph.Path) float64 {
	var l float64
	for _, id := range p.Edges {
		l += n.fibers.Edge(id).Weight
	}
	return l
}

// Provision routes a new lightpath from src to dst: the k shortest
// fiber routes are tried in order; the first with a common free
// channel (first-fit) and enough SNR for the default capacity wins.
func (n *Network) Provision(src, dst graph.NodeID) (*Lightpath, error) {
	if !n.fibers.HasNode(src) || !n.fibers.HasNode(dst) || src == dst {
		return nil, fmt.Errorf("spectrum: invalid endpoints %d -> %d", int(src), int(dst))
	}
	defaultTh, err := n.cfg.Ladder.ThresholdFor(n.cfg.DefaultCapacity)
	if err != nil {
		return nil, err
	}
	paths := n.fibers.KShortestPaths(src, dst, n.cfg.KPaths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("spectrum: no fiber route from %d to %d", int(src), int(dst))
	}
	var lastErr error
	for _, p := range paths {
		lengthKm := n.pathLengthKm(p)
		snr, err := n.cfg.QoT.SNRdB(lengthKm)
		if err != nil {
			return nil, err
		}
		if snr < defaultTh {
			lastErr = fmt.Errorf("spectrum: route of %.0f km delivers %.1f dB < %.1f dB needed for %v Gbps (needs regeneration)",
				lengthKm, snr, defaultTh, n.cfg.DefaultCapacity)
			continue
		}
		ch := n.freeChannel(p)
		if ch < 0 {
			lastErr = fmt.Errorf("spectrum: no common free channel on route (wavelength blocking)")
			continue
		}
		feasible, _ := n.cfg.Ladder.FeasibleCapacity(snr)
		lp := &Lightpath{
			ID: n.nextID, Src: src, Dst: dst, Route: p, Channel: ch,
			LengthKm: lengthKm, SNRdB: snr,
			Capacity: n.cfg.DefaultCapacity, Feasible: feasible.Capacity,
		}
		n.nextID++
		for _, id := range p.Edges {
			n.occupancy[id][ch] = lp.ID
		}
		n.lightpaths[lp.ID] = lp
		return lp, nil
	}
	return nil, lastErr
}

// Teardown releases a lightpath's spectrum.
func (n *Network) Teardown(id LightpathID) error {
	lp, ok := n.lightpaths[id]
	if !ok {
		return fmt.Errorf("spectrum: unknown lightpath %d", int(id))
	}
	for _, eid := range lp.Route.Edges {
		n.occupancy[eid][lp.Channel] = NoLightpath
	}
	delete(n.lightpaths, id)
	return nil
}

// Utilization returns the fraction of channel-hops in use.
func (n *Network) Utilization() float64 {
	total, used := 0, 0
	for _, row := range n.occupancy {
		for _, id := range row {
			total++
			if id != NoLightpath {
				used++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

// FragmentationIndex measures spectral fragmentation per fiber: 1 −
// (largest free block / total free channels), averaged over fibers
// with free spectrum. 0 = all free spectrum contiguous.
func (n *Network) FragmentationIndex() float64 {
	var sum float64
	count := 0
	for _, row := range n.occupancy {
		free, largest, run := 0, 0, 0
		for _, id := range row {
			if id == NoLightpath {
				free++
				run++
				if run > largest {
					largest = run
				}
			} else {
				run = 0
			}
		}
		if free == 0 {
			continue
		}
		sum += 1 - float64(largest)/float64(free)
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// ToTopology exports the IP layer induced by the provisioned
// lightpaths as the Algorithm-1 input: one IP edge per lightpath (its
// capacity = configured capacity, weight = route length), with the
// upgrade matrix filled from each lightpath's SNR headroom and the
// penalty set per unit by penaltyPerGbps. The returned mapping
// translates IP edges back to lightpath IDs.
func (n *Network) ToTopology(penaltyPerGbps float64) (*core.Topology, map[graph.EdgeID]LightpathID, error) {
	if penaltyPerGbps < 0 {
		return nil, nil, fmt.Errorf("spectrum: negative penalty")
	}
	ip := graph.New()
	for i := 0; i < n.fibers.NumNodes(); i++ {
		ip.AddNode(n.fibers.NodeName(graph.NodeID(i)))
	}
	top := core.NewTopology(ip)
	mapping := make(map[graph.EdgeID]LightpathID)
	for _, lp := range n.Lightpaths() {
		id := ip.AddEdge(graph.Edge{
			From: lp.Src, To: lp.Dst,
			Capacity: float64(lp.Capacity),
			Weight:   lp.LengthKm,
		})
		mapping[id] = lp.ID
		if h := lp.Headroom(); h > 0 {
			if err := top.SetUpgrade(id, float64(h), penaltyPerGbps); err != nil {
				return nil, nil, err
			}
		}
	}
	return top, mapping, nil
}

// ApplyDecision commits a TE decision's capacity changes back onto the
// lightpaths (the optical half of the paper's step 3a).
func (n *Network) ApplyDecision(dec *core.Decision, mapping map[graph.EdgeID]LightpathID) error {
	for _, ch := range dec.Changes {
		lpID, ok := mapping[ch.Edge]
		if !ok {
			return fmt.Errorf("spectrum: decision references unmapped IP edge %d", int(ch.Edge))
		}
		lp, ok := n.lightpaths[lpID]
		if !ok {
			return fmt.Errorf("spectrum: decision references torn-down lightpath %d", int(lpID))
		}
		target := modulation.Gbps(ch.NewCapacity)
		if target > lp.Feasible {
			return fmt.Errorf("spectrum: decision raises lightpath %d to %v above feasible %v",
				int(lpID), target, lp.Feasible)
		}
		lp.Capacity = target
	}
	return nil
}
