package spectrum

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/te"
)

// fiberTriangle builds a triangle of bidirectional fibers:
// A-B 400 km, B-C 400 km, A-C 1600 km.
func fiberTriangle() (*graph.Graph, [3]graph.NodeID) {
	g := graph.New()
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	both := func(u, v graph.NodeID, km float64) {
		g.AddEdge(graph.Edge{From: u, To: v, Weight: km})
		g.AddEdge(graph.Edge{From: v, To: u, Weight: km})
	}
	both(a, b, 400)
	both(b, c, 400)
	both(a, c, 1600)
	return g, [3]graph.NodeID{a, b, c}
}

func newNet(t *testing.T, cfg Config) (*Network, [3]graph.NodeID) {
	t.Helper()
	g, nodes := fiberTriangle()
	n, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, nodes
}

func TestProvisionBasic(t *testing.T) {
	n, nodes := newNet(t, Config{})
	lp, err := n.Provision(nodes[0], nodes[1])
	if err != nil {
		t.Fatal(err)
	}
	if lp.Channel != 0 {
		t.Fatalf("first-fit channel = %d", lp.Channel)
	}
	if lp.LengthKm != 400 {
		t.Fatalf("length = %v", lp.LengthKm)
	}
	if lp.Capacity != 100 {
		t.Fatalf("capacity = %v", lp.Capacity)
	}
	if lp.Feasible < lp.Capacity {
		t.Fatalf("feasible %v below default", lp.Feasible)
	}
	// 400 km is short: should support high rungs.
	if lp.Feasible < 175 {
		t.Fatalf("400 km feasible only %v Gbps", lp.Feasible)
	}
	if len(n.Lightpaths()) != 1 {
		t.Fatal("lightpath not recorded")
	}
}

func TestProvisionWavelengthContinuityFirstFit(t *testing.T) {
	n, nodes := newNet(t, Config{Channels: 4})
	// Fill channel 0 and 1 on A-B with A->B lightpaths.
	for i := 0; i < 2; i++ {
		lp, err := n.Provision(nodes[0], nodes[1])
		if err != nil {
			t.Fatal(err)
		}
		if lp.Channel != i {
			t.Fatalf("lightpath %d got channel %d", i, lp.Channel)
		}
	}
	// An A->C via B lightpath must avoid channels 0,1 on A-B... but the
	// 2-hop route shares only the A-B fiber direction; it needs a
	// channel free on both A-B and B-C: channel 2.
	lp, err := n.Provision(nodes[0], nodes[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.Route.Edges) == 2 && lp.Channel != 2 {
		t.Fatalf("2-hop lightpath channel = %d, want 2 (continuity)", lp.Channel)
	}
}

func TestProvisionBlocksWhenSpectrumFull(t *testing.T) {
	n, nodes := newNet(t, Config{Channels: 2, KPaths: 1})
	for i := 0; i < 2; i++ {
		if _, err := n.Provision(nodes[0], nodes[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Provision(nodes[0], nodes[1]); err == nil {
		t.Fatal("provisioned past full spectrum with k=1")
	}
}

func TestProvisionFallsBackToAlternateRoute(t *testing.T) {
	n, nodes := newNet(t, Config{Channels: 1, KPaths: 3})
	// Exhaust the direct A-B fiber.
	if _, err := n.Provision(nodes[0], nodes[1]); err != nil {
		t.Fatal(err)
	}
	// Second A->B lightpath must detour A-C-B (2000 km)... which is
	// still within QoT reach for 100G.
	lp, err := n.Provision(nodes[0], nodes[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.Route.Edges) < 2 {
		t.Fatalf("expected detour, got %d hops", len(lp.Route.Edges))
	}
}

func TestProvisionLongRouteLowerFeasible(t *testing.T) {
	n, nodes := newNet(t, Config{})
	short, err := n.Provision(nodes[0], nodes[1]) // 400 km
	if err != nil {
		t.Fatal(err)
	}
	long, err := n.Provision(nodes[0], nodes[2]) // 800 or 1600 km
	if err != nil {
		t.Fatal(err)
	}
	if long.Feasible > short.Feasible {
		t.Fatalf("longer lightpath has more headroom: %v > %v", long.Feasible, short.Feasible)
	}
}

func TestProvisionInvalid(t *testing.T) {
	n, nodes := newNet(t, Config{})
	if _, err := n.Provision(nodes[0], nodes[0]); err == nil {
		t.Fatal("self endpoints accepted")
	}
	if _, err := n.Provision(nodes[0], 99); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestTeardownFreesSpectrum(t *testing.T) {
	n, nodes := newNet(t, Config{Channels: 1, KPaths: 1})
	lp, err := n.Provision(nodes[0], nodes[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Provision(nodes[0], nodes[1]); err == nil {
		t.Fatal("expected blocking")
	}
	if err := n.Teardown(lp.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Provision(nodes[0], nodes[1]); err != nil {
		t.Fatalf("spectrum not freed: %v", err)
	}
	if err := n.Teardown(999); err == nil {
		t.Fatal("unknown teardown accepted")
	}
}

func TestUtilizationAndFragmentation(t *testing.T) {
	n, nodes := newNet(t, Config{Channels: 4})
	if n.Utilization() != 0 {
		t.Fatal("fresh network utilized")
	}
	if n.FragmentationIndex() != 0 {
		t.Fatal("fresh network fragmented")
	}
	lp1, _ := n.Provision(nodes[0], nodes[1])
	lp2, _ := n.Provision(nodes[0], nodes[1])
	lp3, _ := n.Provision(nodes[0], nodes[1])
	if n.Utilization() <= 0 {
		t.Fatal("utilization not counted")
	}
	// Tear down the middle one: channel 1 free between 0 and 2 →
	// fragmentation on that fiber.
	_ = lp1
	_ = lp3
	if err := n.Teardown(lp2.ID); err != nil {
		t.Fatal(err)
	}
	if n.FragmentationIndex() <= 0 {
		t.Fatal("fragmentation not detected")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(graph.Edge{From: a, To: b, Weight: 0})
	if _, err := NewNetwork(g, Config{}); err == nil {
		t.Fatal("zero-length fiber accepted")
	}
	g2 := graph.New()
	g2.AddNode("a")
	if _, err := NewNetwork(g2, Config{DefaultCapacity: 99}); err == nil {
		t.Fatal("off-ladder default accepted")
	}
}

func TestProvisionRejectsUnreachableQoT(t *testing.T) {
	// A single absurdly long fiber: no modulation can cross it.
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(graph.Edge{From: a, To: b, Weight: 100000})
	n, err := NewNetwork(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Provision(a, b); err == nil {
		t.Fatal("QoT-infeasible lightpath accepted")
	}
}

func TestToTopologyAndApplyDecision(t *testing.T) {
	// The full loop: provision wavelengths → export Algorithm-1 input →
	// run TE on the augmentation → apply decision back to the optical
	// layer.
	n, nodes := newNet(t, Config{})
	if _, err := n.Provision(nodes[0], nodes[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Provision(nodes[1], nodes[2]); err != nil {
		t.Fatal(err)
	}
	top, mapping, err := n.ToTopology(10)
	if err != nil {
		t.Fatal(err)
	}
	if top.G.NumEdges() != 2 {
		t.Fatalf("IP edges = %d", top.G.NumEdges())
	}
	if len(top.Upgrades) == 0 {
		t.Fatal("no upgrades exported despite headroom")
	}
	aug, err := core.Augment(top, core.PenaltyFromMatrix)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := te.Greedy{}.Allocate(aug.Graph, []te.Demand{
		{Src: nodes[0], Dst: nodes[2], Volume: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := aug.Translate(graph.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Value-150) > 1e-9 {
		t.Fatalf("shipped %v", dec.Value)
	}
	if len(dec.Changes) == 0 {
		t.Fatal("no upgrades decided for 150G over 100G links")
	}
	if err := n.ApplyDecision(dec, mapping); err != nil {
		t.Fatal(err)
	}
	// The lightpaths now run at their upgraded capacities.
	upgraded := 0
	for _, lp := range n.Lightpaths() {
		if lp.Capacity > 100 {
			upgraded++
		}
	}
	if upgraded != len(dec.Changes) {
		t.Fatalf("%d lightpaths upgraded for %d changes", upgraded, len(dec.Changes))
	}
}

func TestApplyDecisionRejectsBad(t *testing.T) {
	n, nodes := newNet(t, Config{})
	lp, err := n.Provision(nodes[0], nodes[1])
	if err != nil {
		t.Fatal(err)
	}
	top, mapping, err := n.ToTopology(1)
	if err != nil {
		t.Fatal(err)
	}
	_ = top
	var ipEdge graph.EdgeID
	for e := range mapping {
		ipEdge = e
	}
	mkDec := func(edge graph.EdgeID, newCap float64) *core.Decision {
		return &core.Decision{Changes: []core.CapacityChange{{Edge: edge, NewCapacity: newCap}}}
	}
	// Unmapped edge.
	if err := n.ApplyDecision(mkDec(99, 200), map[graph.EdgeID]LightpathID{}); err == nil {
		t.Fatal("unmapped edge accepted")
	}
	// Above-feasible capacity.
	if err := n.ApplyDecision(mkDec(ipEdge, 10000), mapping); err == nil {
		t.Fatal("above-feasible upgrade accepted")
	}
	// Torn-down lightpath.
	if err := n.Teardown(lp.ID); err != nil {
		t.Fatal(err)
	}
	if err := n.ApplyDecision(mkDec(ipEdge, 150), mapping); err == nil {
		t.Fatal("stale lightpath accepted")
	}
}

func TestToTopologyNegativePenalty(t *testing.T) {
	n, _ := newNet(t, Config{})
	if _, _, err := n.ToTopology(-1); err == nil {
		t.Fatal("negative penalty accepted")
	}
}

// Property: under random provision/teardown churn, the spectral
// accounting stays consistent — every live lightpath owns its channel
// on every hop, no two lightpaths share a channel-hop, and utilization
// matches the live set exactly.
func TestProvisioningChurnInvariant(t *testing.T) {
	r := rng.New(91)
	g, nodes := fiberTriangle()
	n, err := NewNetwork(g, Config{Channels: 6})
	if err != nil {
		t.Fatal(err)
	}
	live := map[LightpathID]*Lightpath{}
	for step := 0; step < 400; step++ {
		if r.Bernoulli(0.6) || len(live) == 0 {
			src := nodes[r.Intn(3)]
			dst := nodes[r.Intn(3)]
			if src == dst {
				continue
			}
			lp, err := n.Provision(src, dst)
			if err != nil {
				continue // blocking is legal under churn
			}
			live[lp.ID] = lp
		} else {
			// Tear down a random live lightpath.
			for id := range live {
				if err := n.Teardown(id); err != nil {
					t.Fatalf("step %d: teardown: %v", step, err)
				}
				delete(live, id)
				break
			}
		}
		// Invariant: network's view matches ours.
		got := n.Lightpaths()
		if len(got) != len(live) {
			t.Fatalf("step %d: %d live vs %d tracked", step, len(got), len(live))
		}
		// Invariant: no channel-hop is double-booked.
		type slot struct {
			edge graph.EdgeID
			ch   int
		}
		owned := map[slot]LightpathID{}
		hops := 0
		for _, lp := range got {
			for _, eid := range lp.Route.Edges {
				s := slot{eid, lp.Channel}
				if prev, clash := owned[s]; clash {
					t.Fatalf("step %d: channel %d on edge %d owned by %d and %d",
						step, lp.Channel, int(eid), int(prev), int(lp.ID))
				}
				owned[s] = lp.ID
				hops++
			}
		}
		// Invariant: utilization equals owned hops / total slots.
		want := float64(hops) / float64(g.NumEdges()*6)
		if diff := n.Utilization() - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("step %d: utilization %v, want %v", step, n.Utilization(), want)
		}
	}
}
