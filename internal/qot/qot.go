// Package qot estimates the quality of transmission — the SNR a
// coherent receiver sees — from a link's physical build: fiber length,
// span layout, amplifier noise, launch power, and a lumped nonlinear
// penalty. It is the GN-model-lite justification for the SNR baselines
// the synthetic fleet draws: long-haul links earn lower SNR (fewer
// upgradable rungs), short metro hops earn more — the physical reason
// the paper's Figure 2b is a distribution rather than a constant.
//
// The model is the standard engineering OSNR budget:
//
//	OSNR_dB = 58 + P_launch − SpanLoss − NF − 10·log10(N_spans)
//	SNR_dB  = OSNR_dB − 10·log10(Rs / 12.5 GHz) − NLI − Margin
//
// (58 dBm is the −58 dBm ASE floor constant for 0.1 nm reference
// bandwidth; the 12.5 GHz term converts the 0.1 nm OSNR reference to
// the signal bandwidth.)
package qot

import (
	"fmt"
	"math"
)

// Params describes the optical line system.
type Params struct {
	// SpanKm is the amplifier spacing (default 80 km).
	SpanKm float64
	// AttenuationdBPerKm is the fiber loss (default 0.2 dB/km).
	AttenuationdBPerKm float64
	// LaunchPowerdBm is the per-channel launch power (default 0 dBm).
	LaunchPowerdBm float64
	// NoiseFiguredB is the EDFA noise figure (default 5 dB).
	NoiseFiguredB float64
	// NLIPenaltydB lumps the nonlinear interference at the chosen
	// launch power (default 2 dB).
	NLIPenaltydB float64
	// MargindB is the operator's engineering margin — aging,
	// connectors, repairs (default 2 dB).
	MargindB float64
	// SymbolRateGBd is the signal bandwidth for the OSNR→SNR
	// conversion (default 32 GBd).
	SymbolRateGBd float64
}

// Default returns parameters matching a 2017-era long-haul line system.
func Default() Params {
	return Params{
		SpanKm:             80,
		AttenuationdBPerKm: 0.2,
		LaunchPowerdBm:     0,
		NoiseFiguredB:      5,
		NLIPenaltydB:       2,
		MargindB:           2,
		SymbolRateGBd:      32,
	}
}

// Validate reports whether the parameters are physical.
func (p Params) Validate() error {
	switch {
	case p.SpanKm <= 0:
		return fmt.Errorf("qot: non-positive span length")
	case p.AttenuationdBPerKm <= 0:
		return fmt.Errorf("qot: non-positive attenuation")
	case p.NoiseFiguredB < 0:
		return fmt.Errorf("qot: negative noise figure")
	case p.NLIPenaltydB < 0 || p.MargindB < 0:
		return fmt.Errorf("qot: negative penalty or margin")
	case p.SymbolRateGBd <= 0:
		return fmt.Errorf("qot: non-positive symbol rate")
	}
	return nil
}

// aseFloor is the −58 dBm ASE constant for 0.1 nm at 1550 nm.
const aseFloor = 58.0

// refBandwidthGHz is the 0.1 nm OSNR reference bandwidth.
const refBandwidthGHz = 12.5

// Spans returns the number of amplified spans for a link length.
func (p Params) Spans(lengthKm float64) int {
	if lengthKm <= 0 {
		return 0
	}
	return int(math.Ceil(lengthKm / p.SpanKm))
}

// OSNRdB returns the 0.1 nm OSNR after the given length.
func (p Params) OSNRdB(lengthKm float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if lengthKm <= 0 {
		return 0, fmt.Errorf("qot: non-positive length %v km", lengthKm)
	}
	n := p.Spans(lengthKm)
	spanLoss := p.SpanKm * p.AttenuationdBPerKm
	return aseFloor + p.LaunchPowerdBm - spanLoss - p.NoiseFiguredB - 10*math.Log10(float64(n)), nil
}

// SNRdB returns the receiver SNR after the given length, including the
// bandwidth conversion, nonlinear penalty and margin.
func (p Params) SNRdB(lengthKm float64) (float64, error) {
	osnr, err := p.OSNRdB(lengthKm)
	if err != nil {
		return 0, err
	}
	conv := 10 * math.Log10(p.SymbolRateGBd/refBandwidthGHz)
	return osnr - conv - p.NLIPenaltydB - p.MargindB, nil
}

// MaxReachKm returns the longest link that still delivers targetSNRdB,
// rounded down to whole spans. Zero means the target is unreachable
// even at one span.
func (p Params) MaxReachKm(targetSNRdB float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	oneSpan, err := p.SNRdB(p.SpanKm)
	if err != nil {
		return 0, err
	}
	if oneSpan < targetSNRdB {
		return 0, nil
	}
	// SNR(N) = SNR(1) − 10·log10(N) → N = 10^((SNR(1)−target)/10).
	n := math.Floor(math.Pow(10, (oneSpan-targetSNRdB)/10))
	return n * p.SpanKm, nil
}
