package qot

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/modulation"
)

func TestSpans(t *testing.T) {
	p := Default()
	cases := []struct {
		km   float64
		want int
	}{
		{1, 1}, {80, 1}, {81, 2}, {800, 10}, {4000, 50}, {0, 0}, {-5, 0},
	}
	for _, tc := range cases {
		if got := p.Spans(tc.km); got != tc.want {
			t.Errorf("Spans(%v) = %d, want %d", tc.km, got, tc.want)
		}
	}
}

func TestSNRMonotoneDecreasingInLength(t *testing.T) {
	p := Default()
	prev := math.Inf(1)
	for km := 80.0; km <= 8000; km += 80 {
		snr, err := p.SNRdB(km)
		if err != nil {
			t.Fatal(err)
		}
		if snr > prev+1e-9 {
			t.Fatalf("SNR increased at %v km", km)
		}
		prev = snr
	}
}

func TestSNRBallparkMatchesPaperFleet(t *testing.T) {
	// The paper's links run 100 Gbps (6.5 dB threshold) with typical
	// SNR ~12-18 dB (Figure 1). Regional-to-long-haul spans should land
	// in that window.
	p := Default()
	short, err := p.SNRdB(400) // regional
	if err != nil {
		t.Fatal(err)
	}
	long, err := p.SNRdB(4000) // transcontinental
	if err != nil {
		t.Fatal(err)
	}
	if short < 15 || short > 30 {
		t.Fatalf("400 km SNR = %v dB, want high-teens-to-twenties", short)
	}
	if long < 8 || long > 16 {
		t.Fatalf("4000 km SNR = %v dB, want low-to-mid teens", long)
	}
	// Both must clear the 100 Gbps threshold: these are deployed links.
	if long < 6.5 {
		t.Fatalf("4000 km link below the 100G threshold: %v", long)
	}
}

func TestLongLinksLoseUpgradeHeadroom(t *testing.T) {
	// The physical story behind Figure 2b's distribution: short links
	// reach 200 Gbps, very long ones cannot.
	p := Default()
	ladder := modulation.Default()
	snrShort, _ := p.SNRdB(240)
	snrLong, _ := p.SNRdB(4800)
	mShort, ok := ladder.FeasibleCapacity(snrShort)
	if !ok {
		t.Fatal("short link infeasible")
	}
	mLong, ok := ladder.FeasibleCapacity(snrLong)
	if !ok {
		t.Fatal("long link infeasible")
	}
	if mShort.Capacity < 200 {
		t.Fatalf("240 km link feasible only at %v Gbps", mShort.Capacity)
	}
	if mLong.Capacity >= mShort.Capacity {
		t.Fatalf("long link (%v) not below short link (%v)", mLong.Capacity, mShort.Capacity)
	}
}

func TestOSNRPerSpanDoubling(t *testing.T) {
	// Doubling the span count costs exactly 3.01 dB.
	p := Default()
	a, _ := p.OSNRdB(800)  // 10 spans
	b, _ := p.OSNRdB(1600) // 20 spans
	if math.Abs((a-b)-10*math.Log10(2)) > 1e-9 {
		t.Fatalf("doubling spans cost %v dB", a-b)
	}
}

func TestMaxReachInvertsSnr(t *testing.T) {
	p := Default()
	for _, target := range []float64{8, 10.5, 13, 15.5} {
		reach, err := p.MaxReachKm(target)
		if err != nil {
			t.Fatal(err)
		}
		if reach <= 0 {
			t.Fatalf("target %v unreachable", target)
		}
		// At the returned reach the SNR clears the target...
		snr, err := p.SNRdB(reach)
		if err != nil {
			t.Fatal(err)
		}
		if snr < target-1e-9 {
			t.Fatalf("SNR at reach %v km = %v < target %v", reach, snr, target)
		}
		// ...and one more span misses it.
		snrBeyond, err := p.SNRdB(reach + p.SpanKm)
		if err != nil {
			t.Fatal(err)
		}
		if snrBeyond >= target {
			t.Fatalf("reach %v not maximal for target %v (one more span still gives %v)", reach, target, snrBeyond)
		}
	}
}

func TestMaxReachUnreachable(t *testing.T) {
	p := Default()
	reach, err := p.MaxReachKm(100) // absurd SNR
	if err != nil || reach != 0 {
		t.Fatalf("reach = %v, err = %v", reach, err)
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{},
		func() Params { p := Default(); p.SpanKm = 0; return p }(),
		func() Params { p := Default(); p.AttenuationdBPerKm = -1; return p }(),
		func() Params { p := Default(); p.NoiseFiguredB = -1; return p }(),
		func() Params { p := Default(); p.NLIPenaltydB = -1; return p }(),
		func() Params { p := Default(); p.SymbolRateGBd = 0; return p }(),
	}
	for i, p := range bad {
		if _, err := p.SNRdB(100); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := Default().SNRdB(0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestLaunchPowerShiftsSNR(t *testing.T) {
	// Property: +1 dBm launch power = +1 dB SNR (in this linear-ASE
	// model; real systems hit the nonlinear optimum, which the NLI
	// penalty lumps).
	if err := quick.Check(func(raw uint8) bool {
		dBm := float64(raw%10) - 5
		a := Default()
		b := Default()
		b.LaunchPowerdBm = a.LaunchPowerdBm + dBm
		sa, err1 := a.SNRdB(800)
		sb, err2 := b.SNRdB(800)
		return err1 == nil && err2 == nil && math.Abs((sb-sa)-dBm) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}
