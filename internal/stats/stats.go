// Package stats provides the statistical toolkit behind every figure in
// the reproduction: empirical CDFs, quantiles, histograms, summary
// statistics, and the 95% highest-density region (HDR) metric the paper
// uses to characterize SNR stability (Figure 2a).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the usual scalar summaries of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type 7, the R/NumPy default).
// It copies and sorts internally; callers with pre-sorted data should
// use QuantileSorted. Quantile panics on an empty sample or p outside
// [0, 1]: both indicate a programming error in an experiment.
func Quantile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, p)
}

// QuantileSorted is Quantile for already-ascending data.
func QuantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: quantile p=%v out of [0,1]", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Range returns max(xs) - min(xs), the paper's "Range (max−min)" metric
// from Figure 2a.
func Range(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo, nil
}

// HDR computes the highest-density region of a sample at the given mass
// (e.g. 0.95): the smallest interval [Lo, Hi] containing at least
// ceil(mass*N) of the samples. This is the paper's stability metric:
// "the smallest interval in which 95% or more of the SNR values are
// concentrated" (§2.1). For an empirical sample the minimizing interval
// always has order statistics as endpoints, so we slide a window of
// k = ceil(mass*N) points over the sorted sample and keep the narrowest.
type HDRInterval struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (h HDRInterval) Width() float64 { return h.Hi - h.Lo }

// HDR returns the highest-density region at the given mass in (0, 1].
func HDR(xs []float64, mass float64) (HDRInterval, error) {
	if len(xs) == 0 {
		return HDRInterval{}, ErrEmpty
	}
	if mass <= 0 || mass > 1 {
		return HDRInterval{}, fmt.Errorf("stats: HDR mass %v out of (0,1]", mass)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	k := int(math.Ceil(mass * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	best := HDRInterval{Lo: sorted[0], Hi: sorted[k-1]}
	for i := 1; i+k-1 < len(sorted); i++ {
		if w := sorted[i+k-1] - sorted[i]; w < best.Width() {
			best = HDRInterval{Lo: sorted[i], Hi: sorted[i+k-1]}
		}
	}
	return best, nil
}

// CDFPoint is one point of an empirical CDF: P(X <= X) = F.
type CDFPoint struct {
	X float64
	F float64
}

// CDF is an empirical cumulative distribution function over a sample.
// Points are ascending in X and F.
type CDF struct {
	Points []CDFPoint
}

// NewCDF builds the empirical CDF of xs. Duplicate values collapse into
// a single point carrying the cumulative mass. Returns ErrEmpty for an
// empty sample.
func NewCDF(xs []float64) (CDF, error) {
	if len(xs) == 0 {
		return CDF{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	pts := make([]CDFPoint, 0, len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values to the last index of the run.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] { //nolint:nofloateq // CDF mass collapses on bit-identical duplicates only
			continue
		}
		pts = append(pts, CDFPoint{X: sorted[i], F: float64(i+1) / n})
	}
	return CDF{Points: pts}, nil
}

// At returns F(x) = P(X <= x).
func (c CDF) At(x float64) float64 {
	// Binary search for the last point with X <= x.
	i := sort.Search(len(c.Points), func(i int) bool { return c.Points[i].X > x })
	if i == 0 {
		return 0
	}
	return c.Points[i-1].F
}

// InvAt returns the smallest x with F(x) >= p (the quantile function of
// the empirical distribution). It panics if the CDF is empty or p is
// outside (0, 1].
func (c CDF) InvAt(p float64) float64 {
	if len(c.Points) == 0 {
		panic("stats: InvAt on empty CDF")
	}
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("stats: InvAt p=%v out of (0,1]", p))
	}
	i := sort.Search(len(c.Points), func(i int) bool { return c.Points[i].F >= p })
	if i == len(c.Points) {
		i = len(c.Points) - 1
	}
	return c.Points[i].X
}

// Sampled returns n evenly spaced (in X) points of the CDF suitable for
// plotting or printing; endpoints are always included. n must be >= 2.
func (c CDF) Sampled(n int) []CDFPoint {
	if n < 2 {
		panic("stats: Sampled needs n >= 2")
	}
	if len(c.Points) == 0 {
		return nil
	}
	lo := c.Points[0].X
	hi := c.Points[len(c.Points)-1].X
	out := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = CDFPoint{X: x, F: c.At(x)}
	}
	return out
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram builds a histogram with bins equal-width bins. It panics
// if bins < 1 or hi <= lo, which indicate a programming error.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs bins >= 1")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) { // float round-off at the upper edge
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// DefaultTol is the default tolerance for approximate float
// comparison: loose enough to absorb accumulated rounding in flow
// arithmetic, tight enough to separate any two distinct modulation
// ladder denominations (which are ≥ 25 Gbps apart).
const DefaultTol = 1e-9

// ApproxEqual reports whether a and b are equal within relative
// tolerance rel, with an absolute floor of rel near zero. This is the
// comparison the nofloateq lint rule points at: SNR and capacity
// values accumulate rounding, so direct == on them silently asks for
// bit-identity. NaN compares unequal to everything, matching ==.
func ApproxEqual(a, b, rel float64) bool {
	if a == b { //nolint:nofloateq // fast path; also makes ±Inf == ±Inf hold
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// Distinct infinities (or finite vs infinite) are never close:
		// without this, |a−b| ≤ rel·∞ would hold vacuously.
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale > 1 {
		return math.Abs(a-b) <= rel*scale
	}
	return math.Abs(a-b) <= rel
}

// ApproxInDelta reports whether a and b differ by at most delta — the
// absolute-tolerance companion to ApproxEqual, for quantities with a
// natural scale (e.g. capacities on a 25 Gbps-step ladder). NaN
// compares unequal to everything.
func ApproxInDelta(a, b, delta float64) bool {
	if a == b { //nolint:nofloateq // fast path; also makes ±Inf == ±Inf hold
		return true
	}
	return math.Abs(a-b) <= delta
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// FractionAtLeast returns the fraction of samples >= threshold.
func FractionAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionBelow returns the fraction of samples < threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return 1 - FractionAtLeast(xs, threshold)
}
