package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("unexpected summary: %+v", s)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("p=0: %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("p=1: %v", q)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if q := Quantile(xs, 0.25); !almostEqual(q, 2.5, 1e-12) {
		t.Fatalf("q(0.25) = %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRange(t *testing.T) {
	r, err := Range([]float64{2, 9, -1, 4})
	if err != nil || r != 10 {
		t.Fatalf("range = %v, err = %v", r, err)
	}
	if _, err := Range(nil); err != ErrEmpty {
		t.Fatal("want ErrEmpty")
	}
}

func TestHDRFindsNarrowCluster(t *testing.T) {
	// 95 samples tightly clustered at ~10, 5 outliers spread far away.
	xs := make([]float64, 0, 100)
	for i := 0; i < 95; i++ {
		xs = append(xs, 10+float64(i)*0.01) // width 0.94
	}
	for _, o := range []float64{-50, -20, 40, 60, 80} {
		xs = append(xs, o)
	}
	h, err := HDR(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if h.Width() > 1.0 {
		t.Fatalf("HDR width = %v, want < 1 (cluster)", h.Width())
	}
	if h.Lo < 9 || h.Hi > 11 {
		t.Fatalf("HDR = %+v, want inside cluster", h)
	}
}

func TestHDRFullMass(t *testing.T) {
	xs := []float64{1, 5, 9}
	h, err := HDR(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Lo != 1 || h.Hi != 9 {
		t.Fatalf("HDR(1.0) = %+v", h)
	}
}

func TestHDRErrors(t *testing.T) {
	if _, err := HDR(nil, 0.95); err != ErrEmpty {
		t.Fatal("want ErrEmpty")
	}
	if _, err := HDR([]float64{1}, 0); err == nil {
		t.Fatal("want mass error")
	}
	if _, err := HDR([]float64{1}, 1.5); err == nil {
		t.Fatal("want mass error")
	}
}

func TestHDRSingleSample(t *testing.T) {
	h, err := HDR([]float64{4.2}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if h.Lo != 4.2 || h.Hi != 4.2 || h.Width() != 0 {
		t.Fatalf("HDR of single sample: %+v", h)
	}
}

// Property: the HDR at mass m always contains at least ceil(m*N) samples,
// and no window of the same count is narrower.
func TestHDRProperty(t *testing.T) {
	r := rng.New(99)
	check := func(n int) bool {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		h, err := HDR(xs, 0.95)
		if err != nil {
			return false
		}
		k := int(math.Ceil(0.95 * float64(n)))
		inside := 0
		for _, x := range xs {
			if x >= h.Lo && x <= h.Hi {
				inside++
			}
		}
		if inside < k {
			return false
		}
		// Verify minimality against brute force over sorted windows.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for i := 0; i+k-1 < len(sorted); i++ {
			if sorted[i+k-1]-sorted[i] < h.Width()-1e-12 {
				return false
			}
		}
		return true
	}
	for _, n := range []int{1, 2, 3, 10, 57, 200} {
		if !check(n) {
			t.Fatalf("HDR property violated for n=%d", n)
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	c, err := NewCDF([]float64{5, 1, 3, 3, 8})
	if err != nil {
		t.Fatal(err)
	}
	prevX := math.Inf(-1)
	prevF := 0.0
	for _, p := range c.Points {
		if p.X <= prevX || p.F <= prevF {
			t.Fatalf("non-monotone CDF: %+v", c.Points)
		}
		prevX, prevF = p.X, p.F
	}
	if last := c.Points[len(c.Points)-1]; last.F != 1 {
		t.Fatalf("CDF does not end at 1: %v", last.F)
	}
}

func TestCDFAt(t *testing.T) {
	c, _ := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFDuplicatesCollapse(t *testing.T) {
	c, _ := NewCDF([]float64{2, 2, 2, 2})
	if len(c.Points) != 1 || c.Points[0].X != 2 || c.Points[0].F != 1 {
		t.Fatalf("duplicates not collapsed: %+v", c.Points)
	}
}

func TestCDFInvAt(t *testing.T) {
	c, _ := NewCDF([]float64{10, 20, 30, 40})
	if x := c.InvAt(0.25); x != 10 {
		t.Fatalf("InvAt(0.25) = %v", x)
	}
	if x := c.InvAt(0.26); x != 20 {
		t.Fatalf("InvAt(0.26) = %v", x)
	}
	if x := c.InvAt(1); x != 40 {
		t.Fatalf("InvAt(1) = %v", x)
	}
}

func TestCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err != ErrEmpty {
		t.Fatal("want ErrEmpty")
	}
}

func TestCDFSampled(t *testing.T) {
	c, _ := NewCDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	pts := c.Sampled(5)
	if len(pts) != 5 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[4].X != 9 {
		t.Fatalf("endpoints wrong: %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].F < pts[i-1].F {
			t.Fatalf("sampled CDF non-monotone: %+v", pts)
		}
	}
}

// Property: At and InvAt are consistent: At(InvAt(p)) >= p.
func TestCDFInverseProperty(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	c, _ := NewCDF(xs)
	if err := quick.Check(func(u uint16) bool {
		p := (float64(u) + 1) / (math.MaxUint16 + 1)
		return c.At(c.InvAt(p)) >= p-1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if bc := h.BinCenter(0); bc != 1 {
		t.Fatalf("BinCenter(0) = %v", bc)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if f := FractionAtLeast(xs, 3); f != 0.5 {
		t.Fatalf("FractionAtLeast = %v", f)
	}
	if f := FractionBelow(xs, 3); f != 0.5 {
		t.Fatalf("FractionBelow = %v", f)
	}
	if f := FractionAtLeast(nil, 3); f != 0 {
		t.Fatalf("empty FractionAtLeast = %v", f)
	}
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("Sum wrong")
	}
}

func BenchmarkHDR10k(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HDR(xs, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCDF10k(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCDF(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, rel float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{0, 0, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{1e12, 1e12 + 1, 1e-9, true}, // relative scaling above 1
		{1e12, 1e12 + 1e4, 1e-9, false},
		{1e-12, 2e-12, 1e-9, true}, // absolute floor near zero
		{100, 125, 1e-9, false},    // adjacent ladder denominations separate
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 1, 1e-9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.rel); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.rel, got, c.want)
		}
	}
}

func TestApproxInDelta(t *testing.T) {
	cases := []struct {
		a, b, delta float64
		want        bool
	}{
		{100, 100, 0, true},
		{100, 100.5, 1, true},
		{100, 101.5, 1, false},
		{-3, 3, 6, true},
		{math.Inf(1), math.Inf(1), 0, true},
		{math.NaN(), math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := ApproxInDelta(c.a, c.b, c.delta); got != c.want {
			t.Errorf("ApproxInDelta(%v, %v, %v) = %v, want %v", c.a, c.b, c.delta, got, c.want)
		}
	}
}
