package wan

import (
	"math"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/te"
)

func rngNew(seed uint64) *rng.Source { return rng.New(seed) }

func TestAbileneShape(t *testing.T) {
	n := Abilene(4)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.G.NumNodes() != 11 {
		t.Fatalf("nodes = %d", n.G.NumNodes())
	}
	if n.G.NumEdges() != 28 { // 14 adjacencies × 2 directions
		t.Fatalf("edges = %d", n.G.NumEdges())
	}
	if n.NumFibers != 14 {
		t.Fatalf("fibers = %d", n.NumFibers)
	}
	// Both directions of an adjacency share a fiber.
	for _, e := range n.G.Edges() {
		found := false
		for _, e2 := range n.G.Edges() {
			if e2.From == e.To && e2.To == e.From && n.FiberOf[e.ID] == n.FiberOf[e2.ID] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %d has no reverse on the same fiber", e.ID)
		}
	}
	// Connected.
	if len(n.G.Reachable(0)) != 11 {
		// Capacities are zero pre-simulation; Reachable skips
		// zero-capacity edges, so set them first.
		g := n.G.Clone()
		for _, e := range g.Edges() {
			g.SetCapacity(e.ID, 1)
		}
		if len(g.Reachable(0)) != 11 {
			t.Fatal("Abilene not connected")
		}
	}
}

func TestUSBackboneShape(t *testing.T) {
	n := USBackbone(4)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.G.NumNodes() != 25 {
		t.Fatalf("nodes = %d", n.G.NumNodes())
	}
	g := n.G.Clone()
	for _, e := range g.Edges() {
		g.SetCapacity(e.ID, 1)
	}
	if len(g.Reachable(0)) != 25 {
		t.Fatal("USBackbone not connected")
	}
}

func TestRandomBackbone(t *testing.T) {
	n, err := RandomBackbone(15, 10, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	g := n.G.Clone()
	for _, e := range g.Edges() {
		g.SetCapacity(e.ID, 1)
	}
	if len(g.Reachable(0)) != 15 {
		t.Fatal("random backbone not connected")
	}
	// Ring + chords: 15 + 10 adjacencies.
	if n.NumFibers != 25 {
		t.Fatalf("fibers = %d", n.NumFibers)
	}
	if _, err := RandomBackbone(2, 0, 4, 1); err == nil {
		t.Fatal("2-node backbone accepted")
	}
	if _, err := RandomBackbone(5, -1, 4, 1); err == nil {
		t.Fatal("negative chords accepted")
	}
}

func TestRandomBackboneDeterministic(t *testing.T) {
	a, _ := RandomBackbone(12, 8, 4, 42)
	b, _ := RandomBackbone(12, 8, 4, 42)
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("random backbone not deterministic")
	}
	for i, e := range a.G.Edges() {
		if b.G.Edge(graph.EdgeID(i)) != e {
			t.Fatal("edges differ across same-seed builds")
		}
	}
}

func TestGravityTraffic(t *testing.T) {
	n := Abilene(4)
	demands, err := GravityTraffic(n, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, d := range demands {
		if d.Volume <= 0 {
			t.Fatal("non-positive demand")
		}
		if d.Src == d.Dst {
			t.Fatal("self demand")
		}
		total += d.Volume
	}
	if math.Abs(total-1000) > 1e-6 {
		t.Fatalf("total = %v, want 1000", total)
	}
	// Gravity: NYC (weight 20) ↔ LA (weight 13) should be the largest.
	top := TopKDemands(demands, 1)[0]
	nyName := n.G.NodeName(top.Src) + n.G.NodeName(top.Dst)
	if nyName != "NewYorkLosAngeles" && nyName != "LosAngelesNewYork" {
		t.Fatalf("largest demand is %s", nyName)
	}
}

func TestGravityTrafficErrors(t *testing.T) {
	n := Abilene(4)
	if _, err := GravityTraffic(n, -1); err == nil {
		t.Fatal("negative volume accepted")
	}
	zero := Abilene(4)
	for i := range zero.NodeWeights {
		zero.NodeWeights[i] = 0
	}
	if _, err := GravityTraffic(zero, 100); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}

func TestTopKDemands(t *testing.T) {
	d := []te.Demand{{Volume: 1}, {Volume: 5}, {Volume: 3}}
	top := TopKDemands(d, 2)
	if len(top) != 2 || top[0].Volume != 5 || top[1].Volume != 3 {
		t.Fatalf("top-k wrong: %+v", top)
	}
	if TopKDemands(d, 0) != nil {
		t.Fatal("k=0 should be nil")
	}
	if len(TopKDemands(d, 10)) != 3 {
		t.Fatal("k>len should clamp")
	}
}

func testSimConfig(t *testing.T) SimConfig {
	t.Helper()
	return SimConfig{
		Net:            Abilene(2),
		Rounds:         12,
		RoundInterval:  6 * time.Hour,
		Seed:           99,
		DemandFraction: 0.5,
	}
}

func TestSimulationRunsAllPolicies(t *testing.T) {
	sim, err := NewSimulation(testSimConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic} {
		res, err := sim.Run(p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(res.Rounds) != 12 {
			t.Fatalf("%v: %d rounds", p, len(res.Rounds))
		}
		for _, m := range res.Rounds {
			if m.ShippedGbps < 0 || m.ShippedGbps > m.OfferedGbps+1e-6 {
				t.Fatalf("%v round %d: shipped %v of %v", p, m.Round, m.ShippedGbps, m.OfferedGbps)
			}
			if m.SatisfiedFraction() < 0 || m.SatisfiedFraction() > 1+1e-9 {
				t.Fatalf("%v: satisfied fraction %v", p, m.SatisfiedFraction())
			}
			if m.CapacityGbps < 0 {
				t.Fatalf("%v: negative capacity", p)
			}
		}
	}
}

func TestSimulationDeterministic(t *testing.T) {
	cfg := testSimConfig(t)
	a, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Run(PolicyDynamic)
	rb, _ := b.Run(PolicyDynamic)
	for i := range ra.Rounds {
		if ra.Rounds[i] != rb.Rounds[i] {
			t.Fatalf("round %d differs: %+v vs %+v", i, ra.Rounds[i], rb.Rounds[i])
		}
	}
}

func TestDynamicBeatsStaticUnderLoad(t *testing.T) {
	// The headline throughput simulation: with demand exceeding static
	// capacity, dynamic capacities ship more.
	cfg := testSimConfig(t)
	cfg.DemandFraction = 1.2 // oversubscribed vs static 100G
	cfg.Rounds = 8
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	static, err := sim.Run(PolicyStatic100)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := sim.Run(PolicyDynamic)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.TotalShipped() <= static.TotalShipped() {
		t.Fatalf("dynamic %v <= static %v", dynamic.TotalShipped(), static.TotalShipped())
	}
	// The gain should be substantial (the fleet can roughly double
	// capacity on most links).
	gain := dynamic.TotalShipped() / static.TotalShipped()
	if gain < 1.1 {
		t.Fatalf("dynamic/static = %v, want > 1.1", gain)
	}
}

func TestDynamicChangesOnlyWhenNeeded(t *testing.T) {
	// With tiny demand the TE should not pay for upgrades.
	cfg := testSimConfig(t)
	cfg.DemandFraction = 0.05
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(PolicyDynamic)
	if err != nil {
		t.Fatal(err)
	}
	upgrades := 0
	for _, m := range res.Rounds {
		upgrades += m.Changes
	}
	// Forced downgrades from SNR dips can still occur; upgrades should
	// be rare. Allow a small number of changes overall.
	if upgrades > cfg.Rounds*4 {
		t.Fatalf("%d changes at 5%% load", upgrades)
	}
}

func TestStaticMaxDarkerThanStatic100(t *testing.T) {
	// Aggressive static configuration must suffer at least as many
	// dark-link rounds (Figure 3a's lesson). Use a long horizon to see
	// dips.
	cfg := testSimConfig(t)
	cfg.Rounds = 60
	cfg.RoundInterval = 12 * time.Hour
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s100, err := sim.Run(PolicyStatic100)
	if err != nil {
		t.Fatal(err)
	}
	sMax, err := sim.Run(PolicyStaticMax)
	if err != nil {
		t.Fatal(err)
	}
	dark100, darkMax := 0, 0
	for i := range s100.Rounds {
		dark100 += s100.Rounds[i].LinksDark
		darkMax += sMax.Rounds[i].LinksDark
	}
	if darkMax < dark100 {
		t.Fatalf("static-max darker count %d < static-100 %d", darkMax, dark100)
	}
	// And it should carry more traffic in good rounds.
	if sMax.TotalShipped() < s100.TotalShipped() {
		t.Fatalf("static-max shipped less than static-100 under 0.5 load")
	}
}

func TestSimulationValidation(t *testing.T) {
	cfg := testSimConfig(t)
	cfg.Rounds = 0
	if _, err := NewSimulation(cfg); err == nil {
		t.Fatal("0 rounds accepted")
	}
	cfg = testSimConfig(t)
	cfg.Net = nil
	if _, err := NewSimulation(cfg); err == nil {
		t.Fatal("nil network accepted")
	}
	cfg = testSimConfig(t)
	cfg.DemandFraction = -1
	if _, err := NewSimulation(cfg); err == nil {
		t.Fatal("negative demand accepted")
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	sim, err := NewSimulation(testSimConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(Policy(9)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic} {
		if p.String() == "" {
			t.Fatal("empty policy string")
		}
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

func TestPerturbTraffic(t *testing.T) {
	d := []te.Demand{{Volume: 10}, {Volume: 20}}
	r := rngNew(5)
	out := PerturbTraffic(d, 0.2, r)
	if len(out) != 2 {
		t.Fatal("length changed")
	}
	for i := range out {
		if out[i].Volume <= 0 {
			t.Fatal("non-positive perturbed volume")
		}
		if out[i].Volume == d[i].Volume {
			t.Fatal("no perturbation applied")
		}
	}
	// Sigma 0: volumes unchanged? LogNormal(0,0)=1.
	same := PerturbTraffic(d, 0, rngNew(5))
	for i := range same {
		if same[i].Volume != d[i].Volume {
			t.Fatal("sigma=0 changed volumes")
		}
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := RoundMetrics{OfferedGbps: 100, ShippedGbps: 80}
	if m.SatisfiedFraction() != 0.8 {
		t.Fatalf("satisfied = %v", m.SatisfiedFraction())
	}
	if (RoundMetrics{}).SatisfiedFraction() != 1 {
		t.Fatal("zero-offered should satisfy 1")
	}
	r := Result{Rounds: []RoundMetrics{
		{OfferedGbps: 100, ShippedGbps: 50, Changes: 2},
		{OfferedGbps: 100, ShippedGbps: 100, Changes: 1},
	}}
	if r.MeanSatisfied() != 0.75 {
		t.Fatalf("mean satisfied = %v", r.MeanSatisfied())
	}
	if r.TotalShipped() != 150 {
		t.Fatalf("total shipped = %v", r.TotalShipped())
	}
	if r.TotalChanges() != 3 {
		t.Fatalf("total changes = %d", r.TotalChanges())
	}
	if (&Result{}).MeanSatisfied() != 0 {
		t.Fatal("empty result mean")
	}
}

func TestFeasibleAtConsistent(t *testing.T) {
	sim, err := NewSimulation(testSimConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < sim.cfg.Net.NumFibers; f++ {
		for w := 0; w < sim.cfg.Net.Wavelengths; w++ {
			for r := 0; r < sim.cfg.Rounds; r++ {
				c := sim.FeasibleAt(f, w, r)
				if c != 0 {
					th, err := sim.cfg.Ladder.ThresholdFor(c)
					if err != nil {
						t.Fatal(err)
					}
					if sim.snrAt[f][w][r] < th {
						t.Fatalf("feasible %v above SNR %v", c, sim.snrAt[f][w][r])
					}
				}
			}
		}
	}
}

func BenchmarkSimulationRound(b *testing.B) {
	cfg := SimConfig{
		Net:            Abilene(2),
		Rounds:         4,
		RoundInterval:  6 * time.Hour,
		Seed:           1,
		DemandFraction: 0.8,
	}
	sim, err := NewSimulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(PolicyDynamic); err != nil {
			b.Fatal(err)
		}
	}
}
