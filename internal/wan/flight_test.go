package wan

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// runRecorded runs one policy with a fresh Obs bundle and flight
// recorder, returning results, observability, and the decoded log.
// mutate (optional) edits the pre-generated simulation — fault
// injection via OverrideSNR — before the run.
func runRecorded(t *testing.T, cfg SimConfig, policy Policy, mutate func(*Simulation)) (*Result, *obs.Obs, *flight.Log) {
	t.Helper()
	o := obs.New("wan-flight-test")
	rec := flight.New(flight.Options{})
	cfg.Obs = o
	cfg.Flight = rec
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(sim)
	}
	res, err := sim.Run(policy)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteLog(&buf, flight.Meta{Tool: "wan-flight-test", Seed: int64(cfg.Seed)}, o); err != nil {
		t.Fatal(err)
	}
	log, err := flight.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return res, o, log
}

func TestFlightRecordingKeepsArtifactsByteIdentical(t *testing.T) {
	cfg := testSimConfig(t)
	_, plain := runObserved(t, cfg)
	_, recorded, _ := runRecorded(t, cfg, PolicyDynamic, nil)

	var pa, pb, ta, tb bytes.Buffer
	for _, p := range []struct {
		o *obs.Obs
		m *bytes.Buffer
		t *bytes.Buffer
	}{{plain, &pa, &ta}, {recorded, &pb, &tb}} {
		if err := p.o.Metrics.WritePrometheus(p.m); err != nil {
			t.Fatal(err)
		}
		if err := p.o.Trace.WriteJSONL(p.t); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
		t.Fatal("flight recording changed the Prometheus exposition")
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Fatal("flight recording changed the trace")
	}
}

func TestFlightFramesMirrorRoundMetrics(t *testing.T) {
	cfg := testSimConfig(t)
	res, _, log := runRecorded(t, cfg, PolicyDynamic, nil)

	if len(log.Frames) != cfg.Rounds {
		t.Fatalf("%d frames for %d rounds", len(log.Frames), cfg.Rounds)
	}
	if err := log.VerifyHashes(); err != nil {
		t.Fatal(err)
	}
	nLinks := cfg.Net.G.NumEdges()
	for i, fr := range log.Frames {
		m := res.Rounds[i]
		if fr.Round != m.Round || fr.Policy != "dynamic" {
			t.Fatalf("frame %d is (%s, round %d)", i, fr.Policy, fr.Round)
		}
		if fr.OfferedGbps != m.OfferedGbps || fr.ShippedGbps != m.ShippedGbps ||
			fr.CapacityGbps != m.CapacityGbps || fr.Changes != m.Changes {
			t.Fatalf("frame %d aggregates %+v disagree with round metrics %+v", i, fr, m)
		}
		if len(fr.Links) != nLinks {
			t.Fatalf("frame %d has %d link records, want %d", i, len(fr.Links), nLinks)
		}
		// Per-link capacities must sum to the round aggregate, and flows
		// must stay within capacity.
		var capSum float64
		dark := 0
		for _, lr := range fr.Links {
			capSum += lr.CapacityGbps
			if lr.CapacityGbps == 0 {
				dark++
			}
			if lr.FlowGbps > lr.CapacityGbps+1e-6 {
				t.Fatalf("frame %d link %d flow %v exceeds capacity %v", i, lr.LinkIndex, lr.FlowGbps, lr.CapacityGbps)
			}
			if lr.Fake && lr.FakeCapGbps <= 0 {
				t.Fatalf("frame %d link %d fake edge with no headroom", i, lr.LinkIndex)
			}
		}
		if capSum != m.CapacityGbps {
			t.Fatalf("frame %d per-link capacity sums to %v, round total %v", i, capSum, m.CapacityGbps)
		}
		if dark != m.LinksDark {
			t.Fatalf("frame %d has %d zero-capacity links, round reported %d dark", i, dark, m.LinksDark)
		}
	}
}

// TestFlightExplainMatchesTraceOrders is the acceptance check: for a
// seeded upgrade the `explain` chain must agree with the wan.order
// events the controller actually logged.
func TestFlightExplainMatchesTraceOrders(t *testing.T) {
	cfg := testSimConfig(t)
	_, o, log := runRecorded(t, cfg, PolicyDynamic, nil)

	// Index upgrade orders by (fiber, round) from the trace.
	upgrades := map[[2]int]bool{}
	for _, ev := range o.Trace.Events() {
		if ev.Name != "wan.order" {
			continue
		}
		var round, fiber = -1, -1
		var cause string
		for _, a := range ev.Attrs {
			switch a.Key {
			case "round":
				round = a.Value.(int)
			case "fiber":
				fiber = a.Value.(int)
			case "cause":
				cause = a.Value.(string)
			}
		}
		if cause == "upgrade" {
			upgrades[[2]int{fiber, round}] = true
		}
	}
	if len(upgrades) == 0 {
		t.Fatal("seeded run produced no upgrade orders")
	}

	links := log.Runs[0].Links
	verified := 0
	for _, fr := range log.Frames {
		for _, lr := range fr.Links {
			if lr.Verdict != flight.VerdictUpgrade {
				continue
			}
			link := links[lr.LinkIndex]
			if !upgrades[[2]int{link.Fiber, fr.Round}] {
				t.Fatalf("frame round %d marks %s upgraded but the trace has no upgrade order for fiber %d",
					fr.Round, link.Name, link.Fiber)
			}
			e, err := log.Explain("", "dynamic", fr.Round, link.Name)
			if err != nil {
				t.Fatal(err)
			}
			out := e.Format()
			for _, want := range []string{"verdict upgrade", "fake edge", "solver selection"} {
				if !bytes.Contains([]byte(out), []byte(want)) {
					t.Fatalf("explain for seeded upgrade missing %q:\n%s", want, out)
				}
			}
			if !e.Rec.Fake || e.Rec.FakeFlowGbps <= 0 {
				t.Fatalf("upgraded link %s round %d has no selected fake edge: %+v", link.Name, fr.Round, e.Rec)
			}
			verified++
		}
	}
	if verified == 0 {
		t.Fatal("no upgrade verdicts recorded despite upgrade orders in the trace")
	}
}

// TestFlightSingleRoundRun pins Rounds=1 behavior: a single-round run
// must emit its per-round series and exactly one frame per policy (the
// round loop has no off-by-one that would skip the only round).
func TestFlightSingleRoundRun(t *testing.T) {
	cfg := testSimConfig(t)
	cfg.Rounds = 1
	res, o, log := runRecorded(t, cfg, PolicyDynamic, nil)

	if len(res.Rounds) != 1 || res.Rounds[0].Round != 0 {
		t.Fatalf("single-round run produced rounds %+v", res.Rounds)
	}
	pl := obs.L("policy", "dynamic")
	if got := o.Counter("wan_rounds_total", "", pl).Value(); got != 1 {
		t.Fatalf("wan_rounds_total = %v after a 1-round run", got)
	}
	if o.Gauge("wan_shipped_gbps", "", pl).Value() != res.Rounds[0].ShippedGbps {
		t.Fatal("single-round run did not record its per-round gauges")
	}
	if len(log.Frames) != 1 || log.Frames[0].Round != 0 {
		t.Fatalf("single-round run recorded %d frames", len(log.Frames))
	}
	if len(log.Frames[0].Links) != cfg.Net.G.NumEdges() {
		t.Fatalf("single-round frame has %d links", len(log.Frames[0].Links))
	}
	// The recorder's labeled series cover the single round too.
	var buf bytes.Buffer
	if err := log.Trailer.Series.Restore().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("wan_link_snr_db{")) {
		t.Fatalf("single-round run emitted no labeled link series:\n%s", buf.String())
	}
}

func TestFlightBisectNamesInjectedOverride(t *testing.T) {
	cfg := testSimConfig(t)
	_, _, base := runRecorded(t, cfg, PolicyDynamic, nil)

	const fiber, wavelength, round = 0, 0, 5
	_, _, dipped := runRecorded(t, cfg, PolicyDynamic, func(s *Simulation) {
		if err := s.OverrideSNR(fiber, wavelength, round, -5); err != nil {
			t.Fatal(err)
		}
	})

	d := flight.Bisect(base, dipped)
	if !d.Found || d.Structural != "" {
		t.Fatalf("bisect missed the injected override: %+v", d)
	}
	if d.Round != round {
		t.Fatalf("bisect names round %d, override was round %d", d.Round, round)
	}
	// The diverging link must ride the overridden fiber, and since the
	// SNR sample is the first causal field, that is what must differ.
	var wantLinks []string
	for _, l := range base.Runs[0].Links {
		if l.Fiber == fiber {
			wantLinks = append(wantLinks, l.Name)
		}
	}
	found := false
	for _, n := range wantLinks {
		if n == d.Link {
			found = true
		}
	}
	if !found {
		t.Fatalf("bisect names link %q, want one of %v (fiber %d)", d.Link, wantLinks, fiber)
	}
	if d.Field != "snr_db" {
		t.Fatalf("bisect names field %q, want snr_db", d.Field)
	}
}

// TestFlightLogWorkerParity: RunPolicies fans policies out over
// workers; the flight log must be byte-identical for every worker
// count because WriteLog orders frames canonically, not by arrival.
func TestFlightLogWorkerParity(t *testing.T) {
	policies := []Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}
	logBytes := func(workers int) []byte {
		cfg := testSimConfig(t)
		cfg.Workers = workers
		cfg.Obs = obs.New("wan-flight-test")
		cfg.Flight = flight.New(flight.Options{})
		sim, err := NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunPolicies(policies); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Flight.WriteLog(&buf, flight.Meta{Tool: "wan-flight-test", Seed: int64(cfg.Seed)}, cfg.Obs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, fanned := logBytes(1), logBytes(4)
	if !bytes.Equal(serial, fanned) {
		t.Fatal("flight log bytes depend on the worker count")
	}
	log, err := flight.ReadLog(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testSimConfig(t)
	if want := len(policies) * cfg.Rounds; len(log.Frames) != want {
		t.Fatalf("%d frames, want %d", len(log.Frames), want)
	}
}
