package wan

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/obs/hist"
	"repro/internal/obs/serve"
)

// histSimConfig is testSimConfig with a history store attached to the
// registry, returning both.
func histSimConfig(t *testing.T, workers int) (SimConfig, *hist.Store) {
	t.Helper()
	cfg := testSimConfig(t)
	cfg.Workers = workers
	o := obs.New("wan-test")
	cfg.Obs = o
	st := hist.New(hist.Options{Tool: "wan-test", Seed: cfg.Seed})
	o.Metrics.SetHistory(st.Root().Bind(o.Clock))
	return cfg, st
}

// TestHistoryByteIdenticalAcrossWorkers is the tentpole determinism
// acceptance: a multi-policy run archives byte-identical history for
// any worker count (each policy child records into its own shard; the
// canonical merge erases the fan-out topology).
func TestHistoryByteIdenticalAcrossWorkers(t *testing.T) {
	archive := func(workers int) []byte {
		cfg, st := histSimConfig(t, workers)
		sim, err := NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunPolicies([]Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := st.Archive().WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	w1, w4 := archive(1), archive(4)
	if !bytes.Equal(w1, w4) {
		a, _ := hist.ReadArchive(bytes.NewReader(w1))
		b, _ := hist.ReadArchive(bytes.NewReader(w4))
		t.Fatalf("history archive differs between workers 1 and 4:\n%v", hist.Diff(a, b))
	}
}

// TestHistoryOnDoesNotPerturbArtifacts: attaching a history sink must
// leave the metrics and trace artifacts byte-identical to a plain run
// — capture is a pure tap on the registry write path.
func TestHistoryOnDoesNotPerturbArtifacts(t *testing.T) {
	artifacts := func(withHist bool) ([]byte, []byte) {
		cfg := testSimConfig(t)
		o := obs.New("wan-test")
		cfg.Obs = o
		if withHist {
			st := hist.New(hist.Options{Tool: "wan-test", Seed: cfg.Seed})
			o.Metrics.SetHistory(st.Root().Bind(o.Clock))
		}
		sim, err := NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunPolicies([]Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}); err != nil {
			t.Fatal(err)
		}
		var metrics, trace bytes.Buffer
		if err := o.Metrics.WritePrometheus(&metrics); err != nil {
			t.Fatal(err)
		}
		if err := o.Trace.WriteJSONL(&trace); err != nil {
			t.Fatal(err)
		}
		return metrics.Bytes(), trace.Bytes()
	}
	plainM, plainT := artifacts(false)
	histM, histT := artifacts(true)
	if !bytes.Equal(plainM, histM) {
		t.Fatal("metrics artifact differs when history is enabled")
	}
	if !bytes.Equal(plainT, histT) {
		t.Fatal("trace artifact differs when history is enabled")
	}
}

// TestCapacityBelowSLOAcceptance is the §2.3 end-to-end scenario: a
// seeded sustained SNR dip is visible in the history store (the same
// store /queryz serves), and the capacity_below_slo burn-rate rule
// fires one round after onset and resolves when the short window
// drains — all at deterministic simulation times.
func TestCapacityBelowSLOAcceptance(t *testing.T) {
	cfg, st := histSimConfig(t, 0)
	cfg.Alerts = alert.DefaultSLORules()
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Calm 18 dB everywhere, then sink one wavelength below the 10 dB
	// SLO floor for two consecutive rounds — a sustained §2.3 dip, not
	// a one-round transient.
	const dipStart = 8 // rounds 8 and 9 of 12, t = 48h and 54h
	for f := 0; f < cfg.Net.NumFibers; f++ {
		for w := 0; w < cfg.Net.Wavelengths; w++ {
			for r := 0; r < cfg.Rounds; r++ {
				if err := sim.OverrideSNR(f, w, r, 18); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for r := dipStart; r < dipStart+2; r++ {
		if err := sim.OverrideSNR(1, 0, r, 7); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := sim.Run(PolicyDynamic); err != nil {
		t.Fatal(err)
	}

	// The dip is queryable from the store (the /queryz backend): both
	// bad rounds, at their exact sim times.
	res, err := st.Query(hist.Query{
		Selector: `wan_snr_min_db{policy="dynamic"}`,
		FromNs:   (time.Duration(dipStart) * cfg.RoundInterval).Nanoseconds(),
		ToNs:     (time.Duration(dipStart+1) * cfg.RoundInterval).Nanoseconds(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 2 {
		t.Fatalf("dip query = %+v, want 2 samples", res)
	}
	for i, s := range res[0].Samples {
		want := time.Duration(dipStart+i) * cfg.RoundInterval
		if s.T != want || s.V != 7 {
			t.Fatalf("dip sample %d = %+v, want t=%v v=7", i, s, want)
		}
	}

	// Burn-rate timing: at onset (48h) the long 48h window holds one
	// bad round of eight (burn 1.25 < 2 — no page); one round later
	// (54h) both windows burn ≥ 2× budget and the alert fires; by 66h
	// the short window has drained and it resolves.
	o := cfg.Obs
	var fires, resolves []obs.Event
	for _, ev := range o.Trace.Events() {
		switch ev.Name {
		case "alert.fire":
			fires = append(fires, ev)
		case "alert.resolve":
			resolves = append(resolves, ev)
		}
	}
	if len(fires) != 1 || len(resolves) != 1 {
		t.Fatalf("got %d fires + %d resolves, want 1 + 1 (fires: %+v)", len(fires), len(resolves), fires)
	}
	attrs := map[string]any{}
	for _, a := range fires[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["rule"] != "capacity_below_slo" {
		t.Fatalf("fired rule %v, want capacity_below_slo", attrs["rule"])
	}
	if want := time.Duration(dipStart+1) * cfg.RoundInterval; fires[0].T != want {
		t.Fatalf("alert.fire stamped %v, want %v (one round after onset)", fires[0].T, want)
	}
	if want := time.Duration(dipStart+3) * cfg.RoundInterval; resolves[0].T != want {
		t.Fatalf("alert.resolve stamped %v, want %v (short window drained)", resolves[0].T, want)
	}
}

// TestSLORulesQuietOnHealthyRun guards the SLO calibration: the
// default seeded run never dips below the 10 dB floor, so appending
// the SLO rules to a healthy run must not fire anything (which is also
// what keeps -hist-out artifact-identical under -alerts).
func TestSLORulesQuietOnHealthyRun(t *testing.T) {
	cfg, _ := histSimConfig(t, 0)
	cfg.Alerts = append(alert.DefaultWANRules(), alert.DefaultSLORules()...)
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunPolicies([]Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range cfg.Obs.Trace.Events() {
		if ev.Name != "alert.fire" {
			continue
		}
		for _, a := range ev.Attrs {
			if a.Key == "rule" && a.Value == "capacity_below_slo" {
				t.Fatalf("capacity_below_slo fired on a healthy run: %+v", ev)
			}
		}
	}
}

// TestReplayHistMatchesLiveRun is the flight ⊇ history regression at
// the simulation level: rebuilding history from a real run's flight
// log reproduces the live run's recorder-owned series byte-for-byte.
func TestReplayHistMatchesLiveRun(t *testing.T) {
	cfg, st := histSimConfig(t, 0)
	rec := flight.New(flight.Options{})
	rec.SetHistory(st.Root().NewChild(), cfg.RoundInterval)
	cfg.Flight = rec
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunPolicies([]Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}); err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	meta := flight.Meta{Tool: "wan-test", Seed: int64(cfg.Seed), Interval: cfg.RoundInterval}
	if err := rec.WriteLog(&logBuf, meta, cfg.Obs); err != nil {
		t.Fatal(err)
	}
	l, err := flight.ReadLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// The live store holds registry series too; the flight log carries
	// only the recorder-owned per-link series, so compare that subset.
	recorderOwned := func(s hist.Series) bool {
		return s.Name == "wan_link_snr_db" || s.Name == "wan_link_capacity_gbps"
	}
	live := st.Archive().Filter(recorderOwned)
	rebuilt := l.History(0).Archive()
	if len(live.Series) == 0 {
		t.Fatal("live run recorded no per-link history series")
	}
	var a, b bytes.Buffer
	if err := live.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rebuilt history diverges from live run:\n%v", hist.Diff(live, rebuilt))
	}
}

// TestServeQueryzOverRealRun closes the loop with the HTTP layer: the
// store a real simulation populated answers /queryz with the same
// values the registry recorded.
func TestServeQueryzOverRealRun(t *testing.T) {
	cfg, st := histSimConfig(t, 0)
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(PolicyDynamic); err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Options{Obs: cfg.Obs, Tool: "wan-test", Seed: cfg.Seed, Hist: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/queryz?" + url.Values{
		"q":  {`wan_rounds_total{policy="dynamic"}`},
		"op": {"last"},
	}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/queryz = %d", resp.StatusCode)
	}
	var out struct {
		Results []hist.Result `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || len(out.Results[0].Samples) != 1 {
		t.Fatalf("rounds query = %+v", out.Results)
	}
	if got := out.Results[0].Samples[0].V; got != float64(cfg.Rounds) {
		t.Fatalf("wan_rounds_total last = %v, want %d", got, cfg.Rounds)
	}
}
