package wan

import (
	"math"
	"math/big"
	"testing"
	"time"
)

// TestRoundSampleIndexMatchesBigInt checks the 128-bit round→sample
// mapping against math/big on boundary cases where the naive int64
// product r*nSamples overflows (the ISSUE 8 satellite-2 bug: a
// paper-scale horizon of ~1e6 rounds over ~1e13 telemetry samples
// makes r*nSamples exceed 2^63, so the old expression produced a
// garbage — possibly negative — index).
func TestRoundSampleIndexMatchesBigInt(t *testing.T) {
	cases := []struct {
		r, rounds, nSamples int
	}{
		{0, 1, 1},
		{0, 1000, 999},
		{999, 1000, 999},
		{11, 12, 48},
		{999999, 1000000, 10_000_000_000_000}, // r*nSamples ≈ 1e19 > 2^63
		{1_000_000 - 1, 1_000_000, math.MaxInt64 / 2},
		{math.MaxInt64 - 1, math.MaxInt64, math.MaxInt64 - 1},
	}
	for _, c := range cases {
		got := roundSampleIndex(c.r, c.rounds, c.nSamples)
		want := new(big.Int).Mul(big.NewInt(int64(c.r)), big.NewInt(int64(c.nSamples)))
		want.Div(want, big.NewInt(int64(c.rounds)))
		if !want.IsInt64() || got != int(want.Int64()) {
			t.Fatalf("roundSampleIndex(%d, %d, %d) = %d, want %v", c.r, c.rounds, c.nSamples, got, want)
		}
		if got < 0 || got >= c.nSamples {
			t.Fatalf("roundSampleIndex(%d, %d, %d) = %d out of [0, %d)", c.r, c.rounds, c.nSamples, got, c.nSamples)
		}
	}
}

// TestSaturatingHorizon pins the horizon product: exact when it fits,
// saturating at MaxInt64 instead of wrapping negative when rounds ×
// interval overflows (the overflow then falls into the existing
// "nSamples < rounds" clamp instead of panicking inside snr).
func TestSaturatingHorizon(t *testing.T) {
	cases := []struct {
		rounds   int
		interval time.Duration
		want     time.Duration
	}{
		{0, time.Hour, 0},
		{-3, time.Hour, 0},
		{10, -time.Hour, 0},
		{12, 6 * time.Hour, 72 * time.Hour},
		{1, math.MaxInt64, math.MaxInt64},
		{2, math.MaxInt64, math.MaxInt64},                // wraps to -2 in int64
		{math.MaxInt64 / 2, 3, math.MaxInt64},            // just over the edge
		{1 << 40, time.Duration(1 << 40), math.MaxInt64}, // hi word nonzero
	}
	for _, c := range cases {
		if got := saturatingHorizon(c.rounds, c.interval); got != c.want {
			t.Fatalf("saturatingHorizon(%d, %d) = %d, want %d", c.rounds, c.interval, got, c.want)
		}
	}
}

// TestNewSimulationHugeHorizonRejected: a rounds × interval product
// that overflows int64 must be rejected with a clear validation error.
// (Pre-fix, the product wrapped negative, snr.SamplesFor returned a
// tiny count, and every policy silently sampled a 4-element series for
// a multi-billion-hour horizon.)
func TestNewSimulationHugeHorizonRejected(t *testing.T) {
	cfg := testSimConfig(t)
	cfg.Rounds = 4
	cfg.RoundInterval = time.Duration(math.MaxInt64 / 2)
	if _, err := NewSimulation(cfg); err == nil {
		t.Fatal("overflowing rounds x interval horizon accepted")
	}
}
