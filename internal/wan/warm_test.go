package wan

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// runWarmCold runs the same configuration twice — warm-start solver
// state (the default) and ColdSolves — applying the same randomized
// per-round SNR perturbations to both, and returns results plus
// serialized metrics/trace artifacts for each.
func runWarmCold(t *testing.T, cfg SimConfig, policies []Policy, perturb func(*Simulation)) (warm, cold []*Result, warmArt, coldArt [2][]byte) {
	t.Helper()
	run := func(coldSolves bool) ([]*Result, [2][]byte) {
		c := cfg
		c.ColdSolves = coldSolves
		o := obs.New("wan-warmcold")
		c.Obs = o
		sim, err := NewSimulation(c)
		if err != nil {
			t.Fatal(err)
		}
		if perturb != nil {
			perturb(sim)
		}
		res, err := sim.RunPolicies(policies)
		if err != nil {
			t.Fatal(err)
		}
		var prom, trace bytes.Buffer
		if err := o.Metrics.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := o.Trace.WriteJSONL(&trace); err != nil {
			t.Fatal(err)
		}
		return res, [2][]byte{prom.Bytes(), trace.Bytes()}
	}
	warm, warmArt = run(false)
	cold, coldArt = run(true)
	return warm, cold, warmArt, coldArt
}

// assertRunsIdentical compares warm and cold runs field by field
// (Float64bits on every metric — bit identity, not tolerance).
func assertRunsIdentical(t *testing.T, warm, cold []*Result, warmArt, coldArt [2][]byte) {
	t.Helper()
	if len(warm) != len(cold) {
		t.Fatalf("result counts differ: %d vs %d", len(warm), len(cold))
	}
	for i := range warm {
		w, c := warm[i], cold[i]
		if w.Policy != c.Policy || len(w.Rounds) != len(c.Rounds) {
			t.Fatalf("run %d shape differs: %v/%d vs %v/%d", i, w.Policy, len(w.Rounds), c.Policy, len(c.Rounds))
		}
		for r := range w.Rounds {
			wm, cm := w.Rounds[r], c.Rounds[r]
			if wm.Round != cm.Round || wm.Changes != cm.Changes || wm.LinksDark != cm.LinksDark ||
				math.Float64bits(wm.OfferedGbps) != math.Float64bits(cm.OfferedGbps) ||
				math.Float64bits(wm.ShippedGbps) != math.Float64bits(cm.ShippedGbps) ||
				math.Float64bits(wm.CapacityGbps) != math.Float64bits(cm.CapacityGbps) ||
				math.Float64bits(wm.DisruptedGbpsSec) != math.Float64bits(cm.DisruptedGbpsSec) ||
				math.Float64bits(wm.MinSNRdB) != math.Float64bits(cm.MinSNRdB) {
				t.Fatalf("policy %v round %d differs:\nwarm %+v\ncold %+v", w.Policy, r, wm, cm)
			}
		}
		if !reflect.DeepEqual(w.Rounds, c.Rounds) {
			t.Fatalf("policy %v rounds differ beyond compared fields", w.Policy)
		}
	}
	if !bytes.Equal(warmArt[0], coldArt[0]) {
		t.Fatal("warm and cold metrics artifacts differ")
	}
	if !bytes.Equal(warmArt[1], coldArt[1]) {
		t.Fatal("warm and cold trace artifacts differ")
	}
}

// TestWarmStartMatchesColdSolves is the tentpole determinism
// invariant: warm-start solver state reused across rounds produces
// byte-identical results and artifacts to rebuilding everything each
// round, across all three policies, under randomized per-round SNR
// perturbation sequences.
func TestWarmStartMatchesColdSolves(t *testing.T) {
	cfg := testSimConfig(t)
	cfg.DemandSigma = 0.1
	policies := []Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}
	// Randomized SNR perturbations, same seeded sequence for both runs:
	// dips and spikes at random (fiber, wavelength, round) cells force
	// forced-downgrade and upgrade churn so the warm topology/augmenter
	// state is genuinely exercised (entries appearing, mutating, and
	// disappearing between rounds).
	perturb := func(sim *Simulation) {
		r := rng.New(0xd1b)
		for i := 0; i < 40; i++ {
			f := r.Intn(cfg.Net.NumFibers)
			w := r.Intn(cfg.Net.Wavelengths)
			round := r.Intn(cfg.Rounds)
			if err := sim.OverrideSNR(f, w, round, r.Uniform(2, 22)); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm, cold, warmArt, coldArt := runWarmCold(t, cfg, policies, perturb)
	assertRunsIdentical(t, warm, cold, warmArt, coldArt)
}

// TestWarmStartMatchesColdSolvesContinental runs the same invariant on
// a (small) continental topology with a demand cap, so the paper-scale
// code path — ParseTopology, MaxDemands, LengthAware SNR — is the one
// being pinned.
func TestWarmStartMatchesColdSolvesContinental(t *testing.T) {
	net, err := ParseTopology("continental:24", 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimConfig{
		Net:            net,
		Rounds:         8,
		RoundInterval:  6 * time.Hour,
		Seed:           41,
		DemandFraction: 0.8,
		DemandSigma:    0.1,
		MaxDemands:     96,
		LengthAware:    true,
	}
	policies := []Policy{PolicyStatic100, PolicyDynamic}
	warm, cold, warmArt, coldArt := runWarmCold(t, cfg, policies, nil)
	assertRunsIdentical(t, warm, cold, warmArt, coldArt)
}
