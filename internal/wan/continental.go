package wan

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Continental generation bounds. The lower bound keeps the metro
// clustering meaningful; the upper bound keeps the O(n²) MST and
// gravity-traffic construction comfortably inside test budgets.
const (
	minContinentalNodes = 16
	maxContinentalNodes = 4096
)

// Continental generates a paper-scale synthetic continental backbone:
// PoPs scattered around metro clusters on a ~5000×3000 km plane, wired
// as a Euclidean minimum spanning tree plus nearest-neighbour chords
// (≈1.5 average adjacency degree growth over the tree, matching the
// sparse mesh of real carrier maps). Link weights are IGP metrics equal
// to the great-circle-ish distance in 100 km units — exactly the
// convention Abilene/USBackbone use — so LengthAware mode derives
// length-realistic SNR baselines: a 3000 km express span gets a lower
// QoT baseline, and hence less upgrade headroom, than a 200 km metro
// hop.
//
// The same (nodes, wavelengths, seed) triple always yields the same
// network, byte for byte: all randomness comes from one seeded source
// with a fixed draw order.
func Continental(nodes, wavelengths int, seed uint64) (*Network, error) {
	if nodes < minContinentalNodes || nodes > maxContinentalNodes {
		return nil, fmt.Errorf("wan: continental backbone needs %d..%d nodes, got %d",
			minContinentalNodes, maxContinentalNodes, nodes)
	}
	if wavelengths <= 0 {
		return nil, fmt.Errorf("wan: need >= 1 wavelength per fiber, got %d", wavelengths)
	}
	r := rng.New(seed)

	// Metro cluster centres, then PoPs scattered around them. Every PoP
	// draws its coordinates in node order (fixed draw order ⇒ stable
	// topology per seed).
	kMetros := nodes/16 + 4
	cx := make([]float64, kMetros)
	cy := make([]float64, kMetros)
	for m := 0; m < kMetros; m++ {
		cx[m] = r.Uniform(0, 5000)
		cy[m] = r.Uniform(0, 3000)
	}
	x := make([]float64, nodes)
	y := make([]float64, nodes)
	g := graph.New()
	for i := 0; i < nodes; i++ {
		m := i % kMetros
		x[i] = cx[m] + r.NormFloat64()*120
		y[i] = cy[m] + r.NormFloat64()*120
		g.AddNode(fmt.Sprintf("pop%03d", i))
	}
	dist := func(i, j int) float64 {
		return math.Hypot(x[i]-x[j], y[i]-y[j])
	}
	// IGP weight convention: distance in 100 km units, floored at 50 km
	// so co-located PoPs still cost something to traverse.
	igpWeight := func(i, j int) float64 {
		d := dist(i, j)
		if d < 50 {
			d = 50
		}
		return d / 100
	}

	b := &builder{g: g}
	seen := make(map[[2]int]bool)
	addAdj := func(u, v int) bool {
		if u == v {
			return false
		}
		a, z := u, v
		if a > z {
			a, z = z, a
		}
		if seen[[2]int{a, z}] {
			return false
		}
		seen[[2]int{a, z}] = true
		b.link(graph.NodeID(u), graph.NodeID(v), igpWeight(u, v))
		return true
	}

	// Euclidean MST (Prim, O(n²)) guarantees connectivity with
	// distance-realistic links.
	inTree := make([]bool, nodes)
	best := make([]float64, nodes)
	bestFrom := make([]int, nodes)
	for i := range best {
		best[i] = math.Inf(1)
	}
	inTree[0] = true
	for j := 1; j < nodes; j++ {
		best[j] = dist(0, j)
		bestFrom[j] = 0
	}
	for added := 1; added < nodes; added++ {
		pick := -1
		for j := 0; j < nodes; j++ {
			if !inTree[j] && (pick < 0 || best[j] < best[pick]) {
				pick = j
			}
		}
		inTree[pick] = true
		addAdj(bestFrom[pick], pick)
		for j := 0; j < nodes; j++ {
			if !inTree[j] {
				if d := dist(pick, j); d < best[j] {
					best[j] = d
					bestFrom[j] = pick
				}
			}
		}
	}

	// Chords: give each node (scanned in order) a link to its nearest
	// non-adjacent neighbour until nodes/2 chords exist. This breaks the
	// tree's single points of failure the way real backbones ring their
	// regions.
	chords := 0
	for i := 0; i < nodes && chords < nodes/2; i++ {
		pick, pd := -1, math.Inf(1)
		for j := 0; j < nodes; j++ {
			if j == i {
				continue
			}
			a, z := i, j
			if a > z {
				a, z = z, a
			}
			if seen[[2]int{a, z}] {
				continue
			}
			if d := dist(i, j); d < pd {
				pick, pd = j, d
			}
		}
		if pick >= 0 && addAdj(i, pick) {
			chords++
		}
	}

	weights := make([]float64, nodes)
	for i := range weights {
		weights[i] = r.LogNormal(1, 0.8)
	}
	return &Network{
		G: g, FiberOf: b.fiberOf, NumFibers: b.fibers,
		Wavelengths: wavelengths, NodeWeights: weights,
	}, nil
}

// ParseTopology resolves a CLI topology spec into a network:
//
//	abilene          11-node Abilene research backbone
//	us               25-node synthetic US carrier backbone
//	random           20-node random backbone (14 chords)
//	random:N         N-node random backbone (N/2 chords)
//	continental:N    N-node continental backbone (paper scale)
//
// The wavelength count is validated here — once, for every topology —
// so both CLIs reject degenerate configurations identically instead of
// failing deep inside a simulation round.
func ParseTopology(spec string, wavelengths int, seed uint64) (*Network, error) {
	if wavelengths <= 0 {
		return nil, fmt.Errorf("wan: need >= 1 wavelength per fiber, got %d", wavelengths)
	}
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	parseN := func(what string) (int, error) {
		n, err := strconv.Atoi(arg)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("wan: bad %s node count %q", what, arg)
		}
		return n, nil
	}
	switch name {
	case "abilene":
		if arg != "" {
			return nil, fmt.Errorf("wan: topology %q takes no argument", name)
		}
		return Abilene(wavelengths), nil
	case "us":
		if arg != "" {
			return nil, fmt.Errorf("wan: topology %q takes no argument", name)
		}
		return USBackbone(wavelengths), nil
	case "random":
		if arg == "" {
			return RandomBackbone(20, 14, wavelengths, seed)
		}
		n, err := parseN("random")
		if err != nil {
			return nil, err
		}
		return RandomBackbone(n, n/2, wavelengths, seed)
	case "continental":
		if arg == "" {
			return nil, fmt.Errorf("wan: topology continental needs a node count, e.g. continental:200")
		}
		n, err := parseN("continental")
		if err != nil {
			return nil, err
		}
		return Continental(n, wavelengths, seed)
	default:
		return nil, fmt.Errorf("wan: unknown topology %q (want abilene, us, random[:N], or continental:N)", spec)
	}
}
