package wan

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/modulation"
	"repro/internal/obs/flight"
)

// This file is the bridge between the simulator and the flight
// recorder (internal/obs/flight). Capture is pure reads of state the
// round already computed — no RNG draws, no ordering changes — so
// same-seed runs with and without a recorder produce byte-identical
// metrics, trace, and manifest artifacts.

// FlightLinks builds the recorder link table for a network: one entry
// per directed IP adjacency in edge-ID order, named "src->dst".
func FlightLinks(net *Network) []flight.Link {
	edges := net.G.Edges()
	links := make([]flight.Link, len(edges))
	for i, e := range edges {
		links[i] = flight.Link{
			Edge:  int(e.ID),
			Name:  net.G.NodeName(e.From) + "->" + net.G.NodeName(e.To),
			Fiber: net.FiberOf[e.ID],
		}
	}
	return links
}

// FlightLadder exports the modulation ladder as recorder rungs.
func FlightLadder(l *modulation.Ladder) []flight.LadderRung {
	modes := l.Modes()
	rungs := make([]flight.LadderRung, len(modes))
	for i, m := range modes {
		rungs[i] = flight.LadderRung{
			Gbps:     float64(m.Capacity),
			MinSNRdB: m.MinSNRdB,
			Format:   m.Format.String(),
		}
	}
	return rungs
}

// flightRound carries the per-branch state captureFlight needs: how to
// read each link's applied capacity and flow, and (dynamic policy only)
// the fake-edge attribution and decision outcomes.
type flightRound struct {
	capOn    func(graph.EdgeID) float64
	flowOn   func(graph.EdgeID) float64
	att      map[graph.EdgeID]core.FakeAttribution
	forced   []bool // per-fiber: a wavelength was force-downgraded this round
	upgraded map[graph.EdgeID]bool
}

// captureFlight records one frame for (policy, round). No-op without a
// recorder.
func (s *Simulation) captureFlight(policy Policy, r int, m RoundMetrics, fr flightRound) {
	if s.cfg.Flight == nil {
		return
	}
	net := s.cfg.Net
	edges := net.G.Edges()
	rec := flight.RoundRecord{
		Run:          s.cfg.FlightRun,
		Policy:       policy.String(),
		Round:        r,
		OfferedGbps:  m.OfferedGbps,
		ShippedGbps:  m.ShippedGbps,
		CapacityGbps: m.CapacityGbps,
		Changes:      m.Changes,
		Links:        make([]flight.LinkRecord, len(edges)),
	}
	for i, e := range edges {
		f := net.FiberOf[e.ID]
		minSNR := s.snrAt[f][0][r]
		var feasible float64
		for w := 0; w < net.Wavelengths; w++ {
			if v := s.snrAt[f][w][r]; v < minSNR {
				minSNR = v
			}
			feasible += float64(s.FeasibleAt(f, w, r))
		}
		var tier float64
		if mode, ok := s.cfg.Ladder.FeasibleCapacity(minSNR); ok {
			tier = float64(mode.Capacity)
		}
		lr := flight.LinkRecord{
			LinkIndex:    i,
			SNRdB:        minSNR,
			TierGbps:     tier,
			FeasibleGbps: feasible,
			CapacityGbps: fr.capOn(e.ID),
			FlowGbps:     fr.flowOn(e.ID),
		}
		att, hasFake := fr.att[e.ID]
		if hasFake {
			lr.Fake = true
			lr.FakeCapGbps = att.FakeCapacity
			lr.FakePenalty = att.FakePenalty
			lr.FakeFlowGbps = att.FlowOnFake
			lr.ResidualGbps = att.Residual
		}
		switch {
		case fr.upgraded[e.ID]:
			lr.Verdict = flight.VerdictUpgrade
		case len(fr.forced) > f && fr.forced[f]:
			lr.Verdict = flight.VerdictForcedDowngrade
		case hasFake && !att.Selected:
			lr.Verdict = flight.VerdictHeadroomIdle
		case lr.CapacityGbps == 0: //nolint:nofloateq // sum of integral Gbps rungs; 0 means truly dark
			lr.Verdict = flight.VerdictDark
		default:
			lr.Verdict = flight.VerdictSteady
		}
		rec.Links[i] = lr
	}
	s.cfg.Flight.Record(rec)
}
