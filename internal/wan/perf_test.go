package wan

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/hist"
	"repro/internal/obs/perf"
)

// runArtifacts captures every deterministic artifact of one full
// multi-policy run: metrics exposition, trace JSONL, history archive,
// and flight log.
type runArtifacts struct {
	metrics, trace, hist, flight []byte
}

// runWithPerf runs the standard test simulation with obs, history, and
// flight all attached, plus the given perf recorder (nil = perf off),
// and returns the deterministic artifacts.
func runWithPerf(t *testing.T, rec *perf.Recorder) runArtifacts {
	t.Helper()
	cfg := testSimConfig(t)
	o := obs.New("wan-test")
	cfg.Obs = o
	st := hist.New(hist.Options{Tool: "wan-test", Seed: cfg.Seed})
	o.Metrics.SetHistory(st.Root().Bind(o.Clock))
	fr := flight.New(flight.Options{})
	cfg.Flight = fr
	fr.SetHistory(st.Root().NewChild(), cfg.RoundInterval)
	cfg.Perf = rec
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunPolicies([]Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}); err != nil {
		t.Fatal(err)
	}
	var art runArtifacts
	art.metrics = metricsBytes(t, o)
	art.trace = traceBytes(t, o)
	var hb bytes.Buffer
	if err := st.Archive().WriteBinary(&hb); err != nil {
		t.Fatal(err)
	}
	art.hist = hb.Bytes()
	var fb bytes.Buffer
	meta := flight.Meta{Tool: "wan-test", Seed: int64(cfg.Seed), Interval: cfg.RoundInterval}
	if err := fr.WriteLog(&fb, meta, o); err != nil {
		t.Fatal(err)
	}
	art.flight = fb.Bytes()
	return art
}

// TestPerfOnOffArtifactsByteIdentical is the segregation acceptance:
// attaching a perf recorder must leave every deterministic artifact —
// metrics, trace, history, flight — byte-identical to a run without
// one, while the recorder itself captures real samples.
func TestPerfOnOffArtifactsByteIdentical(t *testing.T) {
	off := runWithPerf(t, nil)
	rec := perf.New("wan-test")
	on := runWithPerf(t, rec)
	for _, c := range []struct {
		name    string
		off, on []byte
	}{
		{"metrics", off.metrics, on.metrics},
		{"trace", off.trace, on.trace},
		{"hist", off.hist, on.hist},
		{"flight", off.flight, on.flight},
	} {
		if !bytes.Equal(c.off, c.on) {
			t.Errorf("%s artifact differs between perf-off and perf-on runs", c.name)
		}
	}
	// The side channel did record: one aggregated phase per policy,
	// one sample per round.
	rep := rec.Snapshot(nil)
	if len(rep.Phases) != 3 {
		t.Fatalf("perf phases = %+v, want one per policy", rep.Phases)
	}
	rounds := int64(testSimConfig(t).Rounds)
	for _, p := range rep.Phases {
		if !strings.HasPrefix(p.Name, "wan.round/") {
			t.Fatalf("unexpected phase name %q", p.Name)
		}
		if p.Count != rounds {
			t.Fatalf("phase %s count = %d, want %d (one sample per round)", p.Name, p.Count, rounds)
		}
	}
}

// workLines extracts the rwc_work_* exposition lines (values included)
// in their canonical order.
func workLines(metrics []byte) string {
	var out []string
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "rwc_work_") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// runWorkLines runs a multi-policy simulation at the given worker
// count and returns its rwc_work_* exposition slice.
func runWorkLines(t *testing.T, cfg SimConfig, workers int) string {
	t.Helper()
	cfg.Workers = workers
	o := obs.New("wan-test")
	cfg.Obs = o
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunPolicies([]Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}); err != nil {
		t.Fatal(err)
	}
	return workLines(metricsBytes(t, o))
}

// TestWorkCountersByteIdenticalAcrossWorkers: the work counters are
// exact integers derived from solve order alone, so the exposition
// slice must match byte for byte between a serial and a fanned-out
// run — on Abilene here and at paper scale below.
func TestWorkCountersByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := testSimConfig(t)
	w1 := runWorkLines(t, cfg, 1)
	w4 := runWorkLines(t, cfg, 4)
	if w1 != w4 {
		t.Fatalf("rwc_work_* differ between workers 1 and 4:\n--- w1\n%s\n--- w4\n%s", w1, w4)
	}
	// The instrumented stages all reported: solver, Dijkstra inner
	// loop, and the dynamic policy's augmenter.
	for _, want := range []string{
		"rwc_work_solves_total",
		"rwc_work_dijkstra_pops_total",
		"rwc_work_arc_relaxations_total",
		"rwc_work_augmenting_paths_total",
		"rwc_work_ssp_phases_total",
		"rwc_work_augmenter_refresh_edges_total",
		"rwc_work_augmenter_translate_scans_total",
	} {
		if !strings.Contains(w1, want) {
			t.Fatalf("work exposition missing %s:\n%s", want, w1)
		}
	}
}

// TestWorkCountersByteIdenticalAcrossWorkersContinental200 pins the
// same invariant at the paper's continental scale (200 nodes), scaled
// down in rounds and demand count to stay test-sized.
func TestWorkCountersByteIdenticalAcrossWorkersContinental200(t *testing.T) {
	if testing.Short() {
		t.Skip("continental:200 run in -short mode")
	}
	net, err := ParseTopology("continental:200", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimConfig{
		Net:            net,
		Rounds:         2,
		RoundInterval:  6 * time.Hour,
		Seed:           41,
		DemandFraction: 0.8,
		DemandSigma:    0.1,
		MaxDemands:     200,
		LengthAware:    true,
	}
	w1 := runWorkLines(t, cfg, 1)
	w4 := runWorkLines(t, cfg, 4)
	if w1 != w4 {
		t.Fatalf("continental rwc_work_* differ between workers 1 and 4:\n--- w1\n%s\n--- w4\n%s", w1, w4)
	}
	if !strings.Contains(w1, "rwc_work_dijkstra_pops_total") {
		t.Fatalf("continental work exposition missing pops:\n%s", w1)
	}
}
