// Package wan simulates a wide-area optical backbone: IP topology over
// fibers carrying multiple wavelengths, gravity-model traffic, SNR
// evolution, and the round-by-round comparison of today's static
// 100 Gbps operation against the paper's dynamic-capacity operation
// driven through the core package's graph abstraction.
package wan

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Network is an IP backbone over optical fibers. Every *adjacency*
// (pair of directed edges) rides one fiber; each fiber carries
// Wavelengths optical channels; each wavelength contributes its
// configured capacity to the IP link (the paper assumes a one-to-one
// wavelength ↔ IP link mapping — aggregating W wavelengths into one IP
// adjacency is the bundled equivalent and keeps the TE graph small).
type Network struct {
	// G is the IP topology. Edge capacities are set per simulation
	// round; weights are IGP metrics (≈ distance).
	G *graph.Graph
	// FiberOf maps each directed edge to its fiber index (both
	// directions of an adjacency share a fiber).
	FiberOf []int
	// NumFibers counts distinct fibers.
	NumFibers int
	// Wavelengths is the number of channels per fiber.
	Wavelengths int
	// NodeWeights drive the gravity traffic model (population-like).
	NodeWeights []float64
}

// Validate checks internal consistency.
func (n *Network) Validate() error {
	if n.G == nil {
		return fmt.Errorf("wan: nil graph")
	}
	if len(n.FiberOf) != n.G.NumEdges() {
		return fmt.Errorf("wan: FiberOf has %d entries for %d edges", len(n.FiberOf), n.G.NumEdges())
	}
	for _, f := range n.FiberOf {
		if f < 0 || f >= n.NumFibers {
			return fmt.Errorf("wan: fiber index %d out of range", f)
		}
	}
	if n.Wavelengths <= 0 {
		return fmt.Errorf("wan: need >= 1 wavelength per fiber")
	}
	if len(n.NodeWeights) != n.G.NumNodes() {
		return fmt.Errorf("wan: NodeWeights has %d entries for %d nodes", len(n.NodeWeights), n.G.NumNodes())
	}
	return nil
}

// builder accumulates bidirectional adjacencies.
type builder struct {
	g       *graph.Graph
	fiberOf []int
	fibers  int
}

// link adds a bidirectional adjacency on a fresh fiber with the given
// IGP weight. Capacity is set later by the simulation.
func (b *builder) link(u, v graph.NodeID, weight float64) {
	f := b.fibers
	b.fibers++
	b.g.AddEdge(graph.Edge{From: u, To: v, Weight: weight})
	b.fiberOf = append(b.fiberOf, f)
	b.g.AddEdge(graph.Edge{From: v, To: u, Weight: weight})
	b.fiberOf = append(b.fiberOf, f)
}

// Abilene returns the 11-node Abilene research backbone (the classic
// US WAN evaluation topology) with population-like node weights.
// Weights on links are rough great-circle distances in hundreds of km.
func Abilene(wavelengths int) *Network {
	g := graph.New()
	sea := g.AddNode("Seattle")
	sun := g.AddNode("Sunnyvale")
	lax := g.AddNode("LosAngeles")
	den := g.AddNode("Denver")
	kan := g.AddNode("KansasCity")
	hou := g.AddNode("Houston")
	chi := g.AddNode("Chicago")
	ind := g.AddNode("Indianapolis")
	atl := g.AddNode("Atlanta")
	was := g.AddNode("Washington")
	nyc := g.AddNode("NewYork")

	b := &builder{g: g}
	b.link(sea, sun, 11)
	b.link(sea, den, 16)
	b.link(sun, lax, 5)
	b.link(sun, den, 15)
	b.link(lax, hou, 22)
	b.link(den, kan, 9)
	b.link(kan, hou, 10)
	b.link(kan, ind, 7)
	b.link(hou, atl, 11)
	b.link(chi, ind, 3)
	b.link(chi, nyc, 11)
	b.link(ind, atl, 7)
	b.link(atl, was, 9)
	b.link(was, nyc, 3)

	return &Network{
		G: g, FiberOf: b.fiberOf, NumFibers: b.fibers,
		Wavelengths: wavelengths,
		NodeWeights: []float64{
			4, 8, 13, 3, 2, 7, 9, 2, 6, 6, 20, // rough metro populations
		},
	}
}

// USBackbone returns a larger 25-node synthetic US carrier topology
// with ~2.7 average degree, for backbone-scale experiments.
func USBackbone(wavelengths int) *Network {
	g := graph.New()
	names := []string{
		"Seattle", "Portland", "Sunnyvale", "LosAngeles", "SanDiego",
		"SaltLake", "Phoenix", "Denver", "Albuquerque", "ElPaso",
		"KansasCity", "Dallas", "Houston", "Minneapolis", "Chicago",
		"StLouis", "Nashville", "Atlanta", "Miami", "Indianapolis",
		"Cleveland", "Pittsburgh", "Washington", "Philadelphia", "NewYork",
	}
	ids := make([]graph.NodeID, len(names))
	for i, n := range names {
		ids[i] = g.AddNode(n)
	}
	b := &builder{g: g}
	type adj struct {
		u, v int
		w    float64
	}
	adjs := []adj{
		{0, 1, 3}, {0, 5, 11}, {1, 2, 9}, {2, 3, 5}, {3, 4, 2},
		{3, 6, 6}, {4, 6, 5}, {2, 5, 10}, {5, 7, 6}, {6, 8, 7},
		{7, 8, 6}, {8, 9, 4}, {9, 11, 9}, {7, 10, 9}, {10, 11, 7},
		{11, 12, 4}, {12, 17, 11}, {10, 15, 4}, {13, 14, 6}, {0, 13, 22},
		{14, 15, 4}, {14, 19, 3}, {15, 16, 4}, {16, 17, 3}, {17, 18, 10},
		{19, 20, 4}, {20, 21, 2}, {21, 22, 3}, {22, 23, 2}, {23, 24, 1},
		{14, 20, 5}, {17, 22, 9}, {24, 20, 7}, {12, 18, 16}, {13, 7, 11},
	}
	for _, a := range adjs {
		b.link(ids[a.u], ids[a.v], a.w)
	}
	weights := []float64{
		4, 2.5, 8, 13, 3.3, 1.2, 5, 3, 0.9, 0.8,
		2.1, 7.6, 7.1, 3.7, 9.5, 2.8, 2, 6, 6.1, 2,
		2.1, 2.3, 6.2, 6.1, 20,
	}
	return &Network{
		G: g, FiberOf: b.fiberOf, NumFibers: b.fibers,
		Wavelengths: wavelengths, NodeWeights: weights,
	}
}

// RandomBackbone generates a connected random backbone: a ring (for
// 2-connectivity) plus random chords, with log-normal node weights.
func RandomBackbone(nodes, chords, wavelengths int, seed uint64) (*Network, error) {
	if nodes < 3 {
		return nil, fmt.Errorf("wan: random backbone needs >= 3 nodes")
	}
	if chords < 0 {
		return nil, fmt.Errorf("wan: negative chord count")
	}
	r := rng.New(seed)
	g := graph.New()
	for i := 0; i < nodes; i++ {
		g.AddNode(fmt.Sprintf("pop%02d", i))
	}
	b := &builder{g: g}
	seen := make(map[[2]int]bool)
	addAdj := func(u, v int) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			return false
		}
		seen[[2]int{u, v}] = true
		b.link(graph.NodeID(u), graph.NodeID(v), r.Uniform(2, 20))
		return true
	}
	for i := 0; i < nodes; i++ {
		addAdj(i, (i+1)%nodes)
	}
	for added := 0; added < chords; {
		if addAdj(r.Intn(nodes), r.Intn(nodes)) {
			added++
		}
	}
	weights := make([]float64, nodes)
	for i := range weights {
		weights[i] = r.LogNormal(1, 0.8)
	}
	return &Network{
		G: g, FiberOf: b.fiberOf, NumFibers: b.fibers,
		Wavelengths: wavelengths, NodeWeights: weights,
	}, nil
}
