package wan

import (
	"testing"
	"time"

	"repro/internal/stats"
)

func TestLengthAwareBaselinesFollowDistance(t *testing.T) {
	cfg := SimConfig{
		Net:            Abilene(2),
		Rounds:         8,
		RoundInterval:  6 * time.Hour,
		Seed:           3,
		DemandFraction: 0.5,
		LengthAware:    true,
	}
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the shortest and longest fibers by edge weight.
	net := cfg.Net
	shortest, longest := -1, -1
	var wMin, wMax float64
	for _, e := range net.G.Edges() {
		f := net.FiberOf[e.ID]
		if shortest < 0 || e.Weight < wMin {
			shortest, wMin = f, e.Weight
		}
		if longest < 0 || e.Weight > wMax {
			longest, wMax = f, e.Weight
		}
	}
	meanSNR := func(f int) float64 {
		var xs []float64
		for w := 0; w < net.Wavelengths; w++ {
			xs = append(xs, stats.Mean(sim.snrAt[f][w]))
		}
		return stats.Mean(xs)
	}
	sShort, sLong := meanSNR(shortest), meanSNR(longest)
	if sShort <= sLong {
		t.Fatalf("short fiber SNR %v not above long fiber SNR %v", sShort, sLong)
	}
	// Both deployed links clear the 100 Gbps threshold most of the time.
	if sLong < 6.5 {
		t.Fatalf("longest fiber mean SNR %v below deployment threshold", sLong)
	}
}

func TestLengthAwareSimulationRuns(t *testing.T) {
	cfg := SimConfig{
		Net:            USBackbone(2),
		Rounds:         6,
		RoundInterval:  6 * time.Hour,
		Seed:           5,
		DemandFraction: 1.0,
		LengthAware:    true,
	}
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	static, err := sim.Run(PolicyStatic100)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := sim.Run(PolicyDynamic)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.TotalShipped() < static.TotalShipped() {
		t.Fatalf("length-aware dynamic (%v) below static (%v)",
			dynamic.TotalShipped(), static.TotalShipped())
	}
}

func TestLengthAwareVsUniformHeadroom(t *testing.T) {
	// Length-aware mode must produce heterogeneous upgrade headroom:
	// at round 0 some fibers support 200G wavelengths and some do not.
	cfg := SimConfig{
		Net:            USBackbone(2),
		Rounds:         4,
		RoundInterval:  6 * time.Hour,
		Seed:           7,
		DemandFraction: 0.5,
		LengthAware:    true,
	}
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at200, below200 := 0, 0
	for f := 0; f < cfg.Net.NumFibers; f++ {
		if sim.FeasibleAt(f, 0, 0) >= 200 {
			at200++
		} else {
			below200++
		}
	}
	if at200 == 0 || below200 == 0 {
		t.Fatalf("no heterogeneity: %d fibers at 200G, %d below", at200, below200)
	}
}
