package wan

// Parity tests for the deterministic fan-out (ISSUE 3): the simulation
// must produce byte-identical results, metrics, and traces for every
// worker count, and RunPolicies must reproduce exactly what a serial
// loop over Run leaves behind.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// allPolicies in the order the experiments run them.
var allPolicies = []Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}

// newObservedSim builds a simulation with a fresh Obs at one worker
// count.
func newObservedSim(t *testing.T, workers int) (*Simulation, *obs.Obs) {
	t.Helper()
	o := obs.New("wan-test")
	cfg := testSimConfig(t)
	cfg.Obs = o
	cfg.Workers = workers
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, o
}

func metricsBytes(t *testing.T, o *obs.Obs) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := o.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func traceBytes(t *testing.T, o *obs.Obs) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := o.Trace.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// stripParMetrics drops the fan-out layer's own pool counters, which
// RunPolicies records and a serial loop over Run does not.
func stripParMetrics(m []byte) []byte {
	var out []string
	for _, line := range strings.Split(string(m), "\n") {
		if strings.Contains(line, "rwc_par_tasks_total") {
			continue
		}
		out = append(out, line)
	}
	return []byte(strings.Join(out, "\n"))
}

// TestNewSimulationWorkersParity: the pre-generated SNR table is
// byte-identical for every worker count (rng sources are split before
// dispatch).
func TestNewSimulationWorkersParity(t *testing.T) {
	ref, _ := newObservedSim(t, 1)
	for _, w := range []int{2, 5} {
		sim, _ := newObservedSim(t, w)
		if !reflect.DeepEqual(sim.snrAt, ref.snrAt) {
			t.Fatalf("workers=%d: SNR table differs from workers=1", w)
		}
		if !reflect.DeepEqual(sim.demandsBase, ref.demandsBase) {
			t.Fatalf("workers=%d: base demands differ from workers=1", w)
		}
	}
}

// TestRunPoliciesMatchesSerialRun: results, traces, and (pool counters
// aside) metrics from the concurrent policy fan-out are byte-identical
// to a serial loop over Run — and identical across worker counts.
func TestRunPoliciesMatchesSerialRun(t *testing.T) {
	serialSim, serialObs := newObservedSim(t, 1)
	var serialRes []*Result
	for _, p := range allPolicies {
		r, err := serialSim.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		serialRes = append(serialRes, r)
	}
	serialTrace := traceBytes(t, serialObs)
	serialMetrics := stripParMetrics(metricsBytes(t, serialObs))

	var refMetrics []byte
	for _, w := range []int{1, 3} {
		sim, o := newObservedSim(t, w)
		res, err := sim.RunPolicies(allPolicies)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, serialRes) {
			t.Fatalf("workers=%d: RunPolicies results differ from serial Run loop", w)
		}
		if got := traceBytes(t, o); !bytes.Equal(got, serialTrace) {
			t.Fatalf("workers=%d: trace differs from serial Run loop:\n--- serial\n%s\n--- parallel\n%s", w, serialTrace, got)
		}
		m := metricsBytes(t, o)
		if got := stripParMetrics(m); !bytes.Equal(got, serialMetrics) {
			t.Fatalf("workers=%d: metrics differ from serial Run loop (beyond pool counters)", w)
		}
		// Full metrics — pool counters included — must not depend on the
		// worker count.
		if refMetrics == nil {
			refMetrics = m
		} else if !bytes.Equal(m, refMetrics) {
			t.Fatalf("metrics differ across worker counts:\n--- workers=1\n%s\n--- workers=%d\n%s", refMetrics, w, m)
		}
	}
}
