package wan

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/modulation"
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/obs/perf"
	"repro/internal/par"
	"repro/internal/qot"
	"repro/internal/rng"
	"repro/internal/snr"
	"repro/internal/te"
)

// Policy selects how wavelength capacities are operated.
type Policy int

const (
	// PolicyStatic100 is today's operation: every wavelength fixed at
	// 100 Gbps, declared down when SNR < 6.5 dB.
	PolicyStatic100 Policy = iota
	// PolicyStaticMax configures each wavelength statically at its
	// long-run feasible capacity — the "tempting" §2.1 alternative that
	// harvests throughput but multiplies failures (Figure 3).
	PolicyStaticMax
	// PolicyDynamic adapts each wavelength to its SNR through the
	// paper's graph abstraction: upgrades are TE decisions on the
	// augmented topology; SNR drops force capacity flaps instead of
	// failures.
	PolicyDynamic
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyStatic100:
		return "static-100G"
	case PolicyStaticMax:
		return "static-max"
	case PolicyDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// SimConfig configures a backbone simulation.
type SimConfig struct {
	Net *Network
	// Rounds is the number of TE recomputation rounds.
	Rounds int
	// RoundInterval is the wall-clock time between TE rounds.
	RoundInterval time.Duration
	// Seed drives SNR evolution and traffic churn.
	Seed uint64
	// DemandFraction scales total offered traffic as a fraction of the
	// backbone's aggregate static-100G IP capacity.
	DemandFraction float64
	// DemandSigma is the per-round log-normal demand churn.
	DemandSigma float64
	// MaxDemands, when > 0, keeps only the largest MaxDemands gravity
	// demands (heavy-hitter engineering). Continental topologies produce
	// O(nodes²) demand pairs; production TE engineers the elephants and
	// default-routes the tail, and so does the simulation at scale.
	MaxDemands int
	// ColdSolves disables warm-start state reuse: every round rebuilds
	// the TE input graph, augmentation, and solver from scratch, exactly
	// as if it were round zero. Results and artifacts are byte-identical
	// to the default warm path — that equivalence is the determinism
	// invariant the warm-vs-cold tests pin — so the switch exists for
	// those tests and for benchmarking the warm path's speedup.
	ColdSolves bool
	// TE is the traffic-engineering algorithm (default Greedy — the
	// cost-aware one the abstraction pairs best with).
	TE te.Algorithm
	// Ladder is the modulation ladder (default modulation.Default).
	Ladder *modulation.Ladder
	// Fiber is the per-fiber SNR process (default calibrated params).
	Fiber snr.FiberParams
	// Penalty maps link state to augmentation costs (default
	// PenaltyTrafficProportional).
	Penalty core.PenaltyFunc
	// ChangeDowntime is the per-capacity-change traffic interruption
	// (68 s for power-cycle BVTs, 35 ms for hitless ones).
	ChangeDowntime time.Duration
	// LengthAware derives each fiber's baseline SNR from its physical
	// length (edge Weight × 100 km) through the QoT model, so long
	// links have less upgrade headroom than metro hops. When false,
	// every fiber draws from the same calibrated prior.
	LengthAware bool
	// QoT holds the line-system parameters for LengthAware mode
	// (default qot.Default()).
	QoT qot.Params
	// Obs receives per-round metrics, order trace events, and manifest
	// phase durations. Nil (the default) disables observability at no
	// cost. Trace timestamps use the simulation clock (round ×
	// RoundInterval), never the wall clock, so same-seed runs emit
	// byte-identical metrics and traces.
	Obs *obs.Obs
	// Alerts is the rule set the per-policy alert engine evaluates once
	// per round against the metrics registry (see internal/obs/alert).
	// Nil disables alerting; cmd/ wires alert.DefaultWANRules() when
	// observability is on. Alert events ride the trace with simulation
	// timestamps, so they inherit the same-seed byte-identity guarantee.
	Alerts []alert.Rule
	// Flight receives one frame per (policy, round) with per-link SNR,
	// modulation tier, fake-edge offer, solver attribution, and verdict
	// (see internal/obs/flight). Nil disables recording. Capture is
	// pure reads of state each round already computed, so same-seed
	// runs with and without a recorder emit byte-identical metrics,
	// trace, and manifest artifacts.
	Flight *flight.Recorder
	// FlightRun labels this simulation's frames and link table inside a
	// shared recorder; "" is fine for single-simulation tools.
	FlightRun string
	// Workers bounds how many fibers NewSimulation pre-generates
	// concurrently and how many policies RunPolicies runs concurrently;
	// <= 0 means runtime.GOMAXPROCS(0). Results, metrics, and traces
	// are identical for every value (see internal/par).
	Workers int
	// Perf receives per-round wall-clock latencies (one perf phase per
	// policy, one sample per round) on the segregated side channel (see
	// internal/obs/perf). Nil disables capture. Perf never feeds back
	// into results or the deterministic artifacts: a run with Perf set
	// emits byte-identical stdout/metrics/trace/hist/flight to one
	// without.
	Perf *perf.Recorder
	// Pace gates round execution for service mode (internal/daemon).
	// It is consulted before each round with (policy, round); returning
	// false ends that policy's run at a round boundary, so a paced run
	// that executes rounds [0,K) emits exactly the per-round state a
	// free run would have emitted for those rounds. Nil (the default)
	// never gates — the one-shot path. Called from policy worker
	// goroutines; implementations must be safe for concurrent use and
	// must not touch the simulation's deterministic artifacts.
	Pace func(policy Policy, round int) bool
	// RoundHook observes each completed round (policy + its metrics).
	// It exists so a service layer can derive operational telemetry
	// (decisions/sec, round latency) outside the deterministic
	// artifact set; the simulation ignores anything the hook does.
	// Nil disables it. Called from policy worker goroutines;
	// implementations must be safe for concurrent use.
	RoundHook func(policy Policy, m RoundMetrics)
	// SimTimeOffset shifts the simulation-clock timebase: round r is
	// stamped SimTimeOffset + r×RoundInterval. Daemon generations ≥ 2
	// continue the clock past the prior generation's horizon so
	// history timestamps stay monotonic across config reloads. Zero
	// (the default) for one-shot runs.
	SimTimeOffset time.Duration
}

// applyDefaults fills zero values.
func (c *SimConfig) applyDefaults() {
	if c.RoundInterval == 0 {
		c.RoundInterval = 6 * time.Hour
	}
	if c.TE == nil {
		c.TE = te.Greedy{}
	}
	if c.Ladder == nil {
		c.Ladder = modulation.Default()
	}
	if c.Fiber.Wavelengths == 0 {
		c.Fiber = snr.DefaultFiberParams()
	}
	if c.Net != nil {
		c.Fiber.Wavelengths = c.Net.Wavelengths
	}
	if c.Penalty == nil {
		c.Penalty = core.PenaltyTrafficProportional
	}
	if c.ChangeDowntime == 0 {
		c.ChangeDowntime = 68 * time.Second
	}
	if c.DemandFraction == 0 {
		c.DemandFraction = 0.6
	}
	if c.LengthAware && c.QoT == (qot.Params{}) {
		c.QoT = qot.Default()
	}
}

// Validate checks the configuration.
func (c *SimConfig) Validate() error {
	if c.Net == nil {
		return fmt.Errorf("wan: nil network")
	}
	if err := c.Net.Validate(); err != nil {
		return err
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("wan: need >= 1 round")
	}
	if c.RoundInterval < 0 {
		return fmt.Errorf("wan: negative round interval %v", c.RoundInterval)
	}
	if c.DemandFraction < 0 {
		return fmt.Errorf("wan: negative demand fraction")
	}
	if c.DemandSigma < 0 {
		return fmt.Errorf("wan: negative demand sigma")
	}
	if c.MaxDemands < 0 {
		return fmt.Errorf("wan: negative max demands %d", c.MaxDemands)
	}
	if c.SimTimeOffset < 0 {
		return fmt.Errorf("wan: negative sim time offset %v", c.SimTimeOffset)
	}
	if saturatingHorizon(c.Rounds, c.RoundInterval) == math.MaxInt64 {
		return fmt.Errorf("wan: %d rounds x %v round interval overflows the simulation horizon", c.Rounds, c.RoundInterval)
	}
	return nil
}

// RoundMetrics records one TE round under one policy.
type RoundMetrics struct {
	Round int
	// OfferedGbps is the total demand volume this round.
	OfferedGbps float64
	// ShippedGbps is the TE throughput.
	ShippedGbps float64
	// CapacityGbps is the total IP capacity available this round.
	CapacityGbps float64
	// Changes counts wavelength capacity changes (up or down).
	Changes int
	// LinksDark counts IP adjacencies with zero capacity.
	LinksDark int
	// DisruptedGbpsSec estimates traffic hit by reconfigurations:
	// Σ over changed links of (traffic on link × downtime seconds).
	DisruptedGbpsSec float64
	// MinSNRdB is the lowest SNR across every wavelength this round —
	// the §2.3 dip signal the snr_dip alert rule watches. It depends
	// only on the pre-generated SNR evolution, not the policy.
	MinSNRdB float64
}

// SatisfiedFraction returns shipped/offered (1 when nothing offered).
func (m RoundMetrics) SatisfiedFraction() float64 {
	if m.OfferedGbps <= 0 {
		return 1
	}
	return m.ShippedGbps / m.OfferedGbps
}

// Result is a full simulation run for one policy.
type Result struct {
	Policy Policy
	Rounds []RoundMetrics
}

// MeanSatisfied averages the satisfied fraction over rounds.
func (r *Result) MeanSatisfied() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	var s float64
	for _, m := range r.Rounds {
		s += m.SatisfiedFraction()
	}
	return s / float64(len(r.Rounds))
}

// TotalShipped sums throughput over rounds.
func (r *Result) TotalShipped() float64 {
	var s float64
	for _, m := range r.Rounds {
		s += m.ShippedGbps
	}
	return s
}

// TotalChanges sums capacity changes over rounds.
func (r *Result) TotalChanges() int {
	n := 0
	for _, m := range r.Rounds {
		n += m.Changes
	}
	return n
}

// Simulation holds pre-generated SNR state so different policies run
// against identical conditions.
type Simulation struct {
	cfg SimConfig
	// snrAt[f][w][r] is the SNR of fiber f, wavelength w at round r.
	snrAt [][][]float64
	// feasible capacity cache per (fiber, wavelength, round).
	demandsBase []te.Demand
}

// NewSimulation generates the SNR evolution and base traffic matrix.
func NewSimulation(cfg SimConfig) (*Simulation, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)

	// Samples needed to cover the horizon at telemetry cadence.
	horizon := saturatingHorizon(cfg.Rounds, cfg.RoundInterval)
	nSamples := snr.SamplesFor(horizon)
	if nSamples < cfg.Rounds {
		nSamples = cfg.Rounds
	}

	// In length-aware mode, derive each fiber's baseline SNR from its
	// physical length (edge Weight is distance in 100 km units).
	fiberLenKm := make([]float64, cfg.Net.NumFibers)
	if cfg.LengthAware {
		for _, e := range cfg.Net.G.Edges() {
			fiberLenKm[cfg.Net.FiberOf[e.ID]] = e.Weight * 100
		}
	}

	sim := &Simulation{cfg: cfg}

	// Pre-split one source per fiber in fiber order, then fan the
	// generation out: splitting before dispatch keeps the fleet
	// byte-identical for every worker count (see internal/par).
	rngs := make([]*rng.Source, cfg.Net.NumFibers)
	for f := range rngs {
		rngs[f] = root.Split()
	}
	var err error
	sim.snrAt, err = par.Map(
		par.Opts{Workers: cfg.Workers, Name: "wan/snr", Obs: cfg.Obs},
		cfg.Net.NumFibers,
		func(worker, f int) ([][]float64, error) {
			fp := cfg.Fiber
			if cfg.LengthAware {
				lengthKm := fiberLenKm[f]
				if lengthKm < cfg.QoT.SpanKm {
					lengthKm = cfg.QoT.SpanKm
				}
				baseline, err := cfg.QoT.SNRdB(lengthKm)
				if err != nil {
					return nil, err
				}
				fp.BaselineMeandB = baseline
				// Per-wavelength spread shrinks: channels of one fiber
				// share the line system; only ripple differs.
				fp.BaselineStddB = 0.8
			}
			fiber, err := snr.GenerateFiber(fp, nSamples, rngs[f])
			if err != nil {
				return nil, err
			}
			rows := make([][]float64, cfg.Net.Wavelengths)
			for w, s := range fiber.Series {
				row := make([]float64, cfg.Rounds)
				for r := 0; r < cfg.Rounds; r++ {
					row[r] = s.Samples[roundSampleIndex(r, cfg.Rounds, nSamples)]
				}
				rows[w] = row
			}
			return rows, nil
		})
	if err != nil {
		return nil, err
	}

	// Base traffic: DemandFraction of aggregate static capacity.
	staticTotal := float64(cfg.Net.G.NumEdges()) * float64(cfg.Net.Wavelengths) * 100
	demands, err := GravityTraffic(cfg.Net, cfg.DemandFraction*staticTotal)
	if err != nil {
		return nil, err
	}
	if cfg.MaxDemands > 0 && len(demands) > cfg.MaxDemands {
		demands = LargestDemands(demands, cfg.MaxDemands)
	}
	sim.demandsBase = demands

	// Register the link table with the flight recorder once, up front:
	// admission under the cardinality budget is decided here, in edge-ID
	// order, never by recording order.
	if cfg.Flight != nil {
		if err := cfg.Flight.Bind(cfg.FlightRun, FlightLinks(cfg.Net), FlightLadder(cfg.Ladder)); err != nil {
			return nil, err
		}
	}
	return sim, nil
}

// saturatingHorizon returns rounds × interval, saturating at the
// maximum Duration instead of wrapping. The naive product overflows
// int64 nanoseconds at paper-scale horizons (e.g. one million rounds of
// six hours ≈ 2.2×10¹⁹ ns > 2⁶³−1), turning the horizon negative and
// snr.SamplesFor's cadence arithmetic with it. Saturation is the right
// semantics: past ~292 years every cadence question answers "the
// maximum", which the nSamples < rounds clamp below then corrects to
// one sample per round.
func saturatingHorizon(rounds int, interval time.Duration) time.Duration {
	if rounds <= 0 || interval <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(rounds), uint64(interval))
	if hi != 0 || lo > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(lo)
}

// roundSampleIndex maps TE round r to the telemetry sample it observes,
// spreading the rounds evenly over the whole generated horizon.
//
// The old integer stride (nSamples / rounds) never visited the final
// nSamples % rounds samples, so SNR dips in that tail were silently
// invisible to every policy. r*nSamples/rounds covers the full horizon
// and reduces to the same indices whenever rounds divides nSamples
// (the default cadence), keeping same-seed goldens unchanged there.
//
// The product r*nSamples is evaluated in 128 bits: at paper-scale
// horizons (hundreds of thousands of rounds × millions of samples) the
// intermediate overflows int64 and the naive expression returns a
// garbage — possibly negative — index. The 128÷64 divide cannot trap:
// r < rounds and nSamples < 2⁶³ give hi = ⌊r·nSamples/2⁶⁴⌋ < rounds,
// and the quotient r·nSamples/rounds < nSamples fits in 64 bits.
func roundSampleIndex(r, rounds, nSamples int) int {
	hi, lo := bits.Mul64(uint64(r), uint64(nSamples))
	q, _ := bits.Div64(hi, lo, uint64(rounds))
	return int(q)
}

// FeasibleAt returns the feasible capacity of fiber f wavelength w at
// round r (0 when no rung is feasible).
func (s *Simulation) FeasibleAt(f, w, r int) modulation.Gbps {
	m, ok := s.cfg.Ladder.FeasibleCapacity(s.snrAt[f][w][r])
	if !ok {
		return 0
	}
	return m.Capacity
}

// Run executes the simulation under one policy.
func (s *Simulation) Run(policy Policy) (*Result, error) {
	return s.runPolicy(policy, s.cfg.Obs)
}

// RunPolicies executes the simulation under each policy against the
// same pre-generated conditions, fanning out over cfg.Workers. Each
// policy records into a private obs child merged back in policy order,
// so results, metrics, and traces are byte-identical to running the
// policies serially through Run (every trace event is stamped after an
// explicit SetSimTime, making it independent of the clock state a
// preceding policy would have left behind). The returned slice is in
// policy order.
func (s *Simulation) RunPolicies(policies []Policy) ([]*Result, error) {
	children := make([]*obs.Obs, len(policies))
	for i := range children {
		children[i] = s.cfg.Obs.Child()
	}
	out := make([]*Result, len(policies))
	err := par.Stream(
		par.Opts{Workers: s.cfg.Workers, Name: "wan/policies", Obs: s.cfg.Obs},
		len(policies),
		func(worker, i int) (*Result, error) {
			return s.runPolicy(policies[i], children[i])
		},
		func(i int, r *Result) error {
			s.cfg.Obs.Merge(children[i])
			out[i] = r
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// policyState is the warm-start solver state one policy run keeps
// between rounds: a private working graph (so the shared net.G is never
// mutated), the persistent topology + augmenter whose structure is
// stable across rounds, the warmed TE algorithm, and reusable output
// buffers. None of it is *semantic* state — every field is rebuilt from
// scratch each round under ColdSolves and the results are byte-
// identical; what the policy genuinely carries across rounds
// (configured capacities, prevFlow, the traffic RNG, the alert engine)
// lives in runPolicy locals instead.
type policyState struct {
	work *graph.Graph
	// top and aug are only set for PolicyDynamic.
	top *core.Topology
	aug *core.Augmenter
	alg te.Algorithm
	dec core.Decision
	att []core.FakeAttribution
	// demandBuf backs the per-round perturbed demand set.
	demandBuf []te.Demand
}

// newPolicyState builds fresh solver state for one policy run.
func (s *Simulation) newPolicyState(policy Policy) (*policyState, error) {
	st := &policyState{
		work: s.cfg.Net.G.Clone(),
		alg:  te.NewWarm(s.cfg.TE),
	}
	if policy == PolicyDynamic {
		st.top = core.NewTopology(st.work)
		var err error
		st.aug, err = core.NewAugmenter(st.top, s.cfg.Penalty)
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// runPolicy is Run with an explicit observability sink, so concurrent
// policy runs can record into private children. It only reads the
// shared pre-generated state (snrAt, demandsBase, cfg).
func (s *Simulation) runPolicy(policy Policy, o *obs.Obs) (*Result, error) {
	cfg := s.cfg
	net := cfg.Net
	res := &Result{Policy: policy, Rounds: make([]RoundMetrics, 0, cfg.Rounds)}

	// Per-wavelength configured capacity. Static policies fix it;
	// dynamic evolves it.
	configured := make([][]modulation.Gbps, net.NumFibers)
	for f := range configured {
		configured[f] = make([]modulation.Gbps, net.Wavelengths)
		for w := range configured[f] {
			switch policy {
			case PolicyStaticMax:
				configured[f][w] = s.staticMaxCapacity(f, w)
			default:
				configured[f][w] = 100
			}
		}
	}

	trafficRng := rng.New(cfg.Seed ^ 0x5eed)
	prevFlow := make([]float64, net.G.NumEdges())
	nEdges := net.G.NumEdges()

	// Per-policy alert engine: rules see this policy's registry only
	// (children merge back in policy order, so the combined artifacts
	// stay deterministic). Nil rules → nil engine → free no-ops.
	eng := alert.NewEngine(o, cfg.Alerts...)
	plog := o.Logger().With("policy", policy.String())

	st, err := s.newPolicyState(policy)
	if err != nil {
		return nil, err
	}

	// Perf phase name, built once: one aggregated phase per policy, one
	// wall-latency sample per round.
	perfPhase := ""
	if cfg.Perf != nil {
		perfPhase = "wan.round/" + policy.String()
	}

	for r := 0; r < cfg.Rounds; r++ {
		if cfg.Pace != nil && !cfg.Pace(policy, r) {
			break
		}
		if cfg.ColdSolves {
			// Cold mode: round zero conditions every round — fresh
			// working graph, topology, augmenter, solver, buffers.
			if st, err = s.newPolicyState(policy); err != nil {
				return nil, err
			}
		}
		// The simulation clock is the trace timebase: round × interval
		// (shifted by SimTimeOffset across daemon generations).
		o.SetSimTime(cfg.SimTimeOffset + time.Duration(r)*cfg.RoundInterval)
		// Span/PhaseTimer calls allocate their labels at the call site,
		// so the disabled-observability round stays allocation-free.
		endRound, endPhase := noopEnd, noopEnd
		if o != nil {
			endRound = o.Span("wan.round",
				obs.A("policy", policy.String()), obs.A("round", r))
			endPhase = o.PhaseTimer(fmt.Sprintf("%s/round%03d", policy, r))
		}
		endPerf := noopEnd
		if cfg.Perf != nil {
			endPerf = cfg.Perf.Phase(perfPhase)
		}

		demands := s.demandsBase
		if cfg.DemandSigma > 0 {
			if len(st.demandBuf) != len(demands) {
				st.demandBuf = make([]te.Demand, len(demands))
			}
			demands = PerturbTrafficInto(st.demandBuf, demands, cfg.DemandSigma, trafficRng)
		}
		var offered float64
		for _, d := range demands {
			offered += d.Volume
		}

		metrics := RoundMetrics{Round: r, OfferedGbps: offered, MinSNRdB: s.minSNRAt(r)}
		var fr flightRound

		// Build this round's IP capacities; count forced changes. Every
		// edge's capacity on st.work is rewritten below before the TE
		// reads it, so carrying last round's values over is safe.
		work := st.work
		switch policy {
		case PolicyStatic100, PolicyStaticMax:
			for id := 0; id < nEdges; id++ {
				f := net.FiberOf[id]
				var capSum modulation.Gbps
				for w := 0; w < net.Wavelengths; w++ {
					th, err := cfg.Ladder.ThresholdFor(configured[f][w])
					if err != nil {
						return nil, err
					}
					if s.snrAt[f][w][r] >= th {
						capSum += configured[f][w]
					}
					// Below threshold: wavelength is DOWN (binary rule);
					// not a capacity change, an outage.
				}
				work.SetCapacity(graph.EdgeID(id), float64(capSum))
			}
			alloc, err := st.alg.Allocate(work, demands)
			if err != nil {
				return nil, err
			}
			s.recordSolver(o, policy, alloc.Solver)
			metrics.ShippedGbps = alloc.Throughput
			metrics.CapacityGbps = work.TotalCapacity()
			copy(prevFlow, alloc.EdgeFlow)
			if cfg.Flight != nil {
				fr = flightRound{
					capOn:  func(id graph.EdgeID) float64 { return work.Edge(id).Capacity },
					flowOn: alloc.FlowOn,
				}
			}

		case PolicyDynamic:
			// 1. Forced downgrades: SNR no longer supports the
			//    configured rate → flap down to the feasible rate
			//    (possibly 0 on loss of light).
			changes := 0
			var disrupted float64
			var forcedFiber []bool
			if cfg.Flight != nil {
				forcedFiber = make([]bool, net.NumFibers)
			}
			for f := 0; f < net.NumFibers; f++ {
				for w := 0; w < net.Wavelengths; w++ {
					feas := s.FeasibleAt(f, w, r)
					if feas < configured[f][w] {
						s.emitOrder(o, policy, r, f, w, configured[f][w], feas, "forced-downgrade")
						configured[f][w] = feas
						changes++
						if forcedFiber != nil {
							forcedFiber[f] = true
						}
					}
				}
			}
			// 2. Build the TE input: current capacities plus upgrade
			//    headroom, traffic annotations from last round. The
			//    unconditional SetUpgrade matters: zero headroom deletes
			//    the entry, clearing last round's upgrade from the
			//    persistent topology.
			for id := 0; id < nEdges; id++ {
				eid := graph.EdgeID(id)
				f := net.FiberOf[id]
				var cur, headroom modulation.Gbps
				for w := 0; w < net.Wavelengths; w++ {
					cur += configured[f][w]
					if feas := s.FeasibleAt(f, w, r); feas > configured[f][w] {
						headroom += feas - configured[f][w]
					}
				}
				work.SetCapacity(eid, float64(cur))
				if err := st.top.SetUpgrade(eid, float64(headroom), 1); err != nil {
					return nil, err
				}
				if err := st.top.SetTraffic(eid, prevFlow[id]); err != nil {
					return nil, err
				}
			}
			if err := st.aug.Refresh(); err != nil {
				return nil, err
			}
			alloc, err := st.alg.Allocate(st.aug.G, demands)
			if err != nil {
				return nil, err
			}
			s.recordSolver(o, policy, alloc.Solver)
			if err := st.aug.TranslateInto(&st.dec, graph.FlowResult{
				Value:    alloc.Throughput,
				EdgeFlow: alloc.EdgeFlow,
			}); err != nil {
				return nil, err
			}
			s.recordAugmenter(o, policy, st.aug.TakeWork())
			dec := &st.dec
			// 3. Apply upgrades: raise every wavelength of a changed
			//    link to its feasible capacity.
			var upgraded map[graph.EdgeID]bool
			if cfg.Flight != nil {
				upgraded = make(map[graph.EdgeID]bool, len(dec.Changes))
			}
			for _, ch := range dec.Changes {
				f := net.FiberOf[ch.Edge]
				for w := 0; w < net.Wavelengths; w++ {
					if feas := s.FeasibleAt(f, w, r); feas > configured[f][w] {
						s.emitOrder(o, policy, r, f, w, configured[f][w], feas, "upgrade")
						configured[f][w] = feas
						changes++
					}
				}
				disrupted += prevFlow[ch.Edge] * cfg.ChangeDowntime.Seconds()
				if upgraded != nil {
					upgraded[ch.Edge] = true
				}
			}
			metrics.Changes = changes
			metrics.DisruptedGbpsSec = disrupted
			metrics.ShippedGbps = dec.Value
			// Capacity after decisions.
			var capTotal float64
			for id := 0; id < nEdges; id++ {
				f := net.FiberOf[id]
				for w := 0; w < net.Wavelengths; w++ {
					capTotal += float64(configured[f][w])
				}
			}
			metrics.CapacityGbps = capTotal
			copy(prevFlow, dec.EdgeFlow)
			if cfg.Flight != nil {
				st.att = st.aug.AttributionInto(st.att, alloc.EdgeFlow)
				attMap := make(map[graph.EdgeID]core.FakeAttribution, len(st.att))
				for _, att := range st.att {
					attMap[att.Real] = att
				}
				edgeFlow := dec.EdgeFlow
				fr = flightRound{
					capOn: func(id graph.EdgeID) float64 {
						f := net.FiberOf[id]
						var c modulation.Gbps
						for w := 0; w < net.Wavelengths; w++ {
							c += configured[f][w]
						}
						return float64(c)
					},
					flowOn: func(id graph.EdgeID) float64 {
						if int(id) < len(edgeFlow) {
							return edgeFlow[id]
						}
						return 0
					},
					att:      attMap,
					forced:   forcedFiber,
					upgraded: upgraded,
				}
			}

		default:
			return nil, fmt.Errorf("wan: unknown policy %v", policy)
		}

		// Dark links: zero-capacity adjacencies this round.
		dark := 0
		for id := 0; id < nEdges; id++ {
			f := net.FiberOf[id]
			var c modulation.Gbps
			for w := 0; w < net.Wavelengths; w++ {
				switch policy {
				case PolicyDynamic:
					c += configured[f][w]
				default:
					th, _ := cfg.Ladder.ThresholdFor(configured[f][w])
					if s.snrAt[f][w][r] >= th {
						c += configured[f][w]
					}
				}
			}
			if c == 0 {
				dark++
			}
		}
		metrics.LinksDark = dark

		s.captureFlight(policy, r, metrics, fr)
		s.recordRound(o, policy, metrics)
		// Alerts evaluate after the round's gauges are current, on the
		// round's simulation timestamp.
		eng.EvalRound(r)
		if o != nil {
			plog.Debug("round complete",
				"round", r,
				"offered_gbps", metrics.OfferedGbps,
				"shipped_gbps", metrics.ShippedGbps,
				"satisfied", metrics.SatisfiedFraction(),
				"changes", metrics.Changes,
				"dark_links", metrics.LinksDark,
				"min_snr_db", metrics.MinSNRdB)
		}
		endRound()
		endPhase()
		endPerf()
		res.Rounds = append(res.Rounds, metrics)
		if cfg.RoundHook != nil {
			cfg.RoundHook(policy, metrics)
		}
	}
	eng.Finish()
	plog.Info("policy complete",
		"rounds", len(res.Rounds),
		"mean_satisfied", res.MeanSatisfied(),
		"total_shipped_gbps", res.TotalShipped(),
		"total_changes", res.TotalChanges(),
		"alerts_fired", len(eng.Summary()))
	return res, nil
}

// noopEnd is the disabled-observability span/phase closer; a shared
// package-level func keeps the round loop from allocating one.
var noopEnd = func() {}

// minSNRAt returns the lowest SNR across every fiber and wavelength at
// round r.
func (s *Simulation) minSNRAt(r int) float64 {
	min := s.snrAt[0][0][r]
	for f := range s.snrAt {
		for w := range s.snrAt[f] {
			if v := s.snrAt[f][w][r]; v < min {
				min = v
			}
		}
	}
	return min
}

// OverrideSNR pins the SNR of one (fiber, wavelength, round) cell —
// fault injection for scenario tests (e.g. forcing a §2.3-style dip to
// prove the snr_dip alert fires). Call before Run/RunPolicies; every
// policy then sees the injected conditions.
func (s *Simulation) OverrideSNR(fiber, wavelength, round int, snrdB float64) error {
	if fiber < 0 || fiber >= len(s.snrAt) {
		return fmt.Errorf("wan: OverrideSNR fiber %d out of range [0,%d)", fiber, len(s.snrAt))
	}
	if wavelength < 0 || wavelength >= len(s.snrAt[fiber]) {
		return fmt.Errorf("wan: OverrideSNR wavelength %d out of range [0,%d)", wavelength, len(s.snrAt[fiber]))
	}
	if round < 0 || round >= len(s.snrAt[fiber][wavelength]) {
		return fmt.Errorf("wan: OverrideSNR round %d out of range [0,%d)", round, len(s.snrAt[fiber][wavelength]))
	}
	s.snrAt[fiber][wavelength][round] = snrdB
	return nil
}

// emitOrder records one wavelength reconfiguration on the trace. The
// per-round count of wan.order events equals RoundMetrics.Changes, so
// a trace consumer can reconstruct exactly the orders a run printed.
func (s *Simulation) emitOrder(o *obs.Obs, policy Policy, round, fiber, wavelength int, from, to modulation.Gbps, cause string) {
	if o == nil {
		return
	}
	o.Event("wan.order",
		obs.A("policy", policy.String()),
		obs.A("round", round),
		obs.A("fiber", fiber),
		obs.A("wavelength", wavelength),
		obs.A("from_gbps", float64(from)),
		obs.A("to_gbps", float64(to)),
		obs.A("cause", cause))
}

// recordRound publishes one round's metrics as per-policy gauges (the
// latest round's values) and counters (run totals).
func (s *Simulation) recordRound(o *obs.Obs, policy Policy, m RoundMetrics) {
	if o == nil {
		return
	}
	pl := obs.L("policy", policy.String())
	o.Gauge("wan_offered_gbps", "Total demand volume in the current round.", pl).Set(m.OfferedGbps)
	o.Gauge("wan_shipped_gbps", "TE throughput in the current round.", pl).Set(m.ShippedGbps)
	o.Gauge("wan_capacity_gbps", "Total IP capacity in the current round.", pl).Set(m.CapacityGbps)
	o.Gauge("wan_links_dark", "IP adjacencies with zero capacity in the current round.", pl).Set(float64(m.LinksDark))
	o.Gauge("wan_round_changes", "Wavelength capacity changes in the current round.", pl).Set(float64(m.Changes))
	o.Gauge("wan_snr_min_db", "Minimum SNR across every wavelength in the current round (dB); the snr_dip alert watches its dip from the running maximum.", pl).Set(m.MinSNRdB)
	// Flap rate normalizes changes by IP adjacency count: 1.0 means on
	// average every link changed one wavelength this round.
	o.Gauge("wan_flap_rate", "Wavelength capacity changes per IP link in the current round.", pl).Set(float64(m.Changes) / float64(s.cfg.Net.G.NumEdges()))
	o.Counter("wan_rounds_total", "Simulation rounds executed.", pl).Inc()
	o.Counter("wan_changes_total", "Wavelength capacity changes across the run.", pl).Add(float64(m.Changes))
	o.Counter("wan_disrupted_gbps_seconds_total", "Estimated traffic × downtime disrupted by reconfigurations.", pl).Add(m.DisruptedGbpsSec)
}

// recordSolver publishes the flow-solver work behind one TE allocation.
func (s *Simulation) recordSolver(o *obs.Obs, policy Policy, st te.SolverStats) {
	if o == nil {
		return
	}
	pl := obs.L("policy", policy.String())
	o.Counter("wan_te_solves_total", "Flow-solver invocations across TE rounds.", pl).Add(float64(st.Solves))
	o.Counter("wan_te_solver_phases_total", "Flow-solver phases (level graphs / Dijkstra runs / water-fill sweeps) across TE rounds.", pl).Add(float64(st.Phases))
	o.Counter("wan_te_solver_augmentations_total", "Augmenting paths / path pushes applied across TE rounds.", pl).Add(float64(st.Augmentations))
	// Solver "latency" is deliberately measured in deterministic work
	// units (augmenting paths per solve), not wall seconds: wall time
	// would break the byte-identity guarantee and the nowalltime rule.
	// The te_solver_work_p99 alert thresholds this histogram.
	o.Histogram("wan_te_solve_work", "Flow-solver work units (augmenting paths) per TE solve.", solveWorkBuckets, pl).Observe(float64(st.Augmentations))

	// rwc_work_*: the exact work-accounting family. Where the wan_te_*
	// counters summarize, these localize — pops and relaxations are the
	// inner-loop unit counts that turn "this allocator is N× slower"
	// into "N× more heap pops per phase on this topology". They are
	// plain integers derived from solve order alone, so they are
	// byte-identical at any -workers and feed /queryz per round when a
	// history sink is attached.
	o.Counter("rwc_work_solves_total", "Flow-solver invocations (exact work accounting).", pl).Add(float64(st.Solves))
	o.Counter("rwc_work_ssp_phases_total", "Solver phases: Dijkstra runs / BFS level graphs / water-fill sweeps (exact work accounting).", pl).Add(float64(st.Phases))
	o.Counter("rwc_work_augmenting_paths_total", "Augmenting paths / path pushes applied (exact work accounting).", pl).Add(float64(st.Augmentations))
	o.Counter("rwc_work_dijkstra_pops_total", "Priority-queue dequeues across every shortest-path search (exact work accounting).", pl).Add(float64(st.Pops))
	o.Counter("rwc_work_arc_relaxations_total", "Residual arcs / path edges examined in solver inner loops (exact work accounting).", pl).Add(float64(st.Relaxations))
}

// recordAugmenter publishes the augmentation layer's per-round work
// (dynamic policy only). AttributionChecks is deliberately not
// published: attribution runs only when a flight recorder is attached,
// and publishing it would break the invariant that flight on/off runs
// emit byte-identical metrics.
func (s *Simulation) recordAugmenter(o *obs.Obs, policy Policy, w core.WorkStats) {
	if o == nil {
		return
	}
	pl := obs.L("policy", policy.String())
	o.Counter("rwc_work_augmenter_refresh_edges_total", "Edges refreshed into the augmented graph G' (exact work accounting).", pl).Add(float64(w.RefreshEdges))
	o.Counter("rwc_work_augmenter_translate_scans_total", "Fake-edge scans translating flows back to capacity orders (exact work accounting).", pl).Add(float64(w.TranslateScans))
}

// solveWorkBuckets spans trivial solves (a handful of paths) to
// pathological ones; the te_solver_work_p99 alert threshold (20000)
// sits inside the top finite bucket.
var solveWorkBuckets = []float64{16, 64, 256, 1024, 4096, 16384, 65536}

// staticMaxCapacity is the feasible capacity a static planner would
// pick for a wavelength from its whole-horizon SNR (the §2.1
// "configure capacities statically near the actual SNR" counterfactual,
// using the 5th-percentile-like lower HDR bound approximated by the
// minimum of per-round samples excluding total outages).
func (s *Simulation) staticMaxCapacity(f, w int) modulation.Gbps {
	row := s.snrAt[f][w]
	// Lower bound: 5th percentile of round samples.
	sorted := append([]float64(nil), row...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	lo := sorted[len(sorted)/20]
	m, ok := s.cfg.Ladder.FeasibleCapacity(lo)
	if !ok {
		return s.cfg.Ladder.Min().Capacity
	}
	return m.Capacity
}
