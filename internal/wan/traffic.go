package wan

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/te"
)

// GravityTraffic builds a demand set with the standard gravity model:
// demand(i→j) ∝ w_i·w_j, scaled so the total demand equals
// totalVolume. Pairs with either weight zero are skipped.
func GravityTraffic(n *Network, totalVolume float64) ([]te.Demand, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if totalVolume < 0 {
		return nil, fmt.Errorf("wan: negative traffic volume")
	}
	var mass float64
	nn := n.G.NumNodes()
	for i := 0; i < nn; i++ {
		for j := 0; j < nn; j++ {
			if i == j {
				continue
			}
			mass += n.NodeWeights[i] * n.NodeWeights[j]
		}
	}
	if mass == 0 {
		return nil, fmt.Errorf("wan: all node weights zero")
	}
	var out []te.Demand
	for i := 0; i < nn; i++ {
		for j := 0; j < nn; j++ {
			if i == j {
				continue
			}
			v := totalVolume * n.NodeWeights[i] * n.NodeWeights[j] / mass
			if v <= 0 {
				continue
			}
			out = append(out, te.Demand{
				Src: graph.NodeID(i), Dst: graph.NodeID(j), Volume: v,
			})
		}
	}
	return out, nil
}

// TopKDemands keeps only the k largest demands (production TE commonly
// engineers the heavy hitters and default-routes the tail). Demands are
// returned largest-first.
func TopKDemands(demands []te.Demand, k int) []te.Demand {
	if k <= 0 || len(demands) == 0 {
		return nil
	}
	sorted := append([]te.Demand(nil), demands...)
	// Insertion sort descending by volume (k and n are small here).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Volume > sorted[j-1].Volume; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// LargestDemands is TopKDemands at scale: it keeps the k largest
// demands using an O(n log n) sort instead of the O(n²) insertion sort,
// which matters for continental gravity matrices (hundreds of nodes →
// tens of thousands of demand pairs). Ties break by ascending (Src,
// Dst) so the result is a deterministic function of the input set, not
// of its ordering. Returns demands largest-first; the input slice is
// not modified.
func LargestDemands(demands []te.Demand, k int) []te.Demand {
	if k <= 0 || len(demands) == 0 {
		return nil
	}
	sorted := append([]te.Demand(nil), demands...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Volume != sorted[j].Volume { //nolint:nofloateq // comparator tie-break: tolerance would break strict weak ordering
			return sorted[i].Volume > sorted[j].Volume
		}
		if sorted[i].Src != sorted[j].Src {
			return sorted[i].Src < sorted[j].Src
		}
		return sorted[i].Dst < sorted[j].Dst
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// PerturbTraffic returns a copy of demands with each volume multiplied
// by a log-normal factor — the round-to-round traffic churn that makes
// TE re-run (the paper's "next round of TE computation" with increased
// demands).
func PerturbTraffic(demands []te.Demand, sigma float64, r *rng.Source) []te.Demand {
	return PerturbTrafficInto(make([]te.Demand, len(demands)), demands, sigma, r)
}

// PerturbTrafficInto is PerturbTraffic writing into dst (which must
// have len(demands) entries), so the round loop can reuse one buffer
// instead of allocating a demand set per round. dst and demands may not
// alias: demandsBase must stay pristine across rounds.
func PerturbTrafficInto(dst, demands []te.Demand, sigma float64, r *rng.Source) []te.Demand {
	for i, d := range demands {
		d.Volume *= r.LogNormal(0, sigma)
		dst[i] = d
	}
	return dst
}
