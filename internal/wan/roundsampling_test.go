package wan

// Regression tests for the TE-round telemetry sampling (ISSUE 3). The
// old integer stride (nSamples / rounds) never visited the final
// nSamples % rounds samples of the generated SNR horizon, so dips in
// that tail were invisible to every policy.

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/snr"
)

// TestRoundSampleIndex pins the index map: identical to the old stride
// whenever rounds divides nSamples (same-seed goldens unchanged), and
// full-horizon coverage when it does not. The coverage assertions FAIL
// against the pre-fix rule r*(nSamples/rounds).
func TestRoundSampleIndex(t *testing.T) {
	// Divisible: the default cadence (RoundInterval a multiple of the
	// 15-minute telemetry interval) must keep its historical indices.
	for r := 0; r < 12; r++ {
		if got, want := roundSampleIndex(r, 12, 288), r*24; got != want {
			t.Fatalf("divisible case: round %d -> %d, want %d", r, got, want)
		}
	}
	// Non-divisible: 26 samples over 4 rounds. The old stride visited
	// {0,6,12,18}, never the last 7 samples.
	want := []int{0, 6, 13, 19}
	for r, w := range want {
		if got := roundSampleIndex(r, 4, 26); got != w {
			t.Fatalf("round %d -> %d, want %d", r, got, w)
		}
	}
	// Property sweep: indices stay in range, never decrease, and the
	// uncovered tail is smaller than one round's worth of samples.
	for _, tc := range []struct{ rounds, n int }{
		{4, 26}, {7, 100}, {3, 8}, {12, 288}, {5, 5}, {9, 35040},
	} {
		prev := -1
		for r := 0; r < tc.rounds; r++ {
			i := roundSampleIndex(r, tc.rounds, tc.n)
			if i < 0 || i >= tc.n {
				t.Fatalf("rounds=%d n=%d: index %d out of range", tc.rounds, tc.n, i)
			}
			if i < prev {
				t.Fatalf("rounds=%d n=%d: index decreased %d -> %d", tc.rounds, tc.n, prev, i)
			}
			prev = i
		}
		if tail := tc.n - 1 - prev; tail >= (tc.n+tc.rounds-1)/tc.rounds {
			t.Fatalf("rounds=%d n=%d: final %d samples unreachable", tc.rounds, tc.n, tail)
		}
	}
}

// TestRoundSamplingTailDipAffectsMetrics rebuilds the simulation's SNR
// table with the old stride and shows that a dip in the previously
// unreachable tail window now changes round metrics. Seed 117 places a
// dip over sample 19 of a 26-sample horizon (4 rounds x 100 min): the
// old stride sampled {0,6,12,18} and never saw it. Against the pre-fix
// code both the snrAt assertions and the metrics comparison fail
// (NewSimulation would reproduce exactly the old-stride table).
func TestRoundSamplingTailDipAffectsMetrics(t *testing.T) {
	cfg := SimConfig{
		Net:            Abilene(2),
		Rounds:         4,
		RoundInterval:  100 * time.Minute, // 400 min => 26 samples, 26 % 4 = 2
		Seed:           117,
		DemandFraction: 0.5,
	}
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Regenerate the identical fiber series (same seed, same split
	// order as NewSimulation) and resample them with the old stride.
	c2 := cfg
	c2.applyDefaults()
	nSamples := snr.SamplesFor(time.Duration(c2.Rounds) * c2.RoundInterval)
	if nSamples%c2.Rounds == 0 {
		t.Fatalf("test config must leave a stride remainder, nSamples=%d", nSamples)
	}
	stride := nSamples / c2.Rounds
	oldMax := (c2.Rounds - 1) * stride
	root := rng.New(c2.Seed)
	simOld := &Simulation{cfg: sim.cfg, demandsBase: sim.demandsBase}
	simOld.snrAt = make([][][]float64, c2.Net.NumFibers)
	tailDip := false
	for f := 0; f < c2.Net.NumFibers; f++ {
		fiber, err := snr.GenerateFiber(c2.Fiber, nSamples, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		simOld.snrAt[f] = make([][]float64, c2.Net.Wavelengths)
		for w, s := range fiber.Series {
			row := make([]float64, c2.Rounds)
			for r := 0; r < c2.Rounds; r++ {
				row[r] = s.Samples[r*stride]
				// The real simulation must observe the new indices.
				if got, want := sim.snrAt[f][w][r], s.Samples[roundSampleIndex(r, c2.Rounds, nSamples)]; got != want {
					t.Fatalf("fiber %d wavelength %d round %d: snrAt %v, want sample %v", f, w, r, got, want)
				}
			}
			simOld.snrAt[f][w] = row
			for _, d := range s.Dips {
				if d.Start <= oldMax+1 && d.End > oldMax+1 {
					tailDip = true
				}
			}
		}
	}
	if !tailDip {
		t.Fatal("seed 117 no longer places a dip in the stride-remainder tail; re-hunt the seed")
	}

	resNew, err := sim.Run(PolicyDynamic)
	if err != nil {
		t.Fatal(err)
	}
	resOld, err := simOld.Run(PolicyDynamic)
	if err != nil {
		t.Fatal(err)
	}
	last := c2.Rounds - 1
	mn, mo := resNew.Rounds[last], resOld.Rounds[last]
	if mn.CapacityGbps == mo.CapacityGbps && mn.ShippedGbps == mo.ShippedGbps && mn.LinksDark == mo.LinksDark {
		t.Fatalf("tail dip did not affect final-round metrics: new %+v old %+v", mn, mo)
	}
}
