package wan

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
)

// runObserved runs one dynamic simulation with a fresh Obs bundle and
// returns both.
func runObserved(t *testing.T, cfg SimConfig) (*Result, *obs.Obs) {
	t.Helper()
	o := obs.New("wan-test")
	cfg.Obs = o
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(PolicyDynamic)
	if err != nil {
		t.Fatal(err)
	}
	return res, o
}

func TestRunOrderEventsMatchRoundChanges(t *testing.T) {
	res, o := runObserved(t, testSimConfig(t))

	// Count wan.order events per round; they must equal the Changes the
	// run reported — the trace is an exact replay of the orders.
	perRound := make(map[int]int)
	total := 0
	for _, ev := range o.Trace.Events() {
		if ev.Name != "wan.order" {
			continue
		}
		var round = -1
		for _, a := range ev.Attrs {
			if a.Key == "round" {
				round = a.Value.(int)
			}
		}
		if round < 0 {
			t.Fatalf("wan.order without round attr: %+v", ev)
		}
		perRound[round]++
		total++
	}
	if total == 0 {
		t.Fatal("dynamic run produced no wan.order events (expected capacity changes)")
	}
	for _, m := range res.Rounds {
		if perRound[m.Round] != m.Changes {
			t.Fatalf("round %d: %d wan.order events for %d changes", m.Round, perRound[m.Round], m.Changes)
		}
	}
	// Event timestamps follow the simulation clock: round × interval.
	for _, ev := range o.Trace.Events() {
		if ev.Name != "wan.order" {
			continue
		}
		for _, a := range ev.Attrs {
			if a.Key == "round" {
				want := time.Duration(a.Value.(int)) * 6 * time.Hour
				if ev.T != want {
					t.Fatalf("wan.order at t=%v, want %v", ev.T, want)
				}
			}
		}
	}
}

func TestRunSameSeedByteIdenticalObservability(t *testing.T) {
	cfg := testSimConfig(t)
	_, oa := runObserved(t, cfg)
	_, ob := runObserved(t, cfg)

	var pa, pb bytes.Buffer
	if err := oa.Metrics.WritePrometheus(&pa); err != nil {
		t.Fatal(err)
	}
	if err := ob.Metrics.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
		t.Fatal("same-seed runs produced different Prometheus exposition")
	}
	if pa.Len() == 0 {
		t.Fatal("empty Prometheus exposition")
	}

	var ta, tb bytes.Buffer
	if err := oa.Trace.WriteJSONL(&ta); err != nil {
		t.Fatal(err)
	}
	if err := ob.Trace.WriteJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Fatal("same-seed runs produced different traces")
	}
	if ta.Len() == 0 {
		t.Fatal("empty trace")
	}
}

func TestRunRecordsRoundMetrics(t *testing.T) {
	res, o := runObserved(t, testSimConfig(t))
	last := res.Rounds[len(res.Rounds)-1]
	pl := obs.L("policy", PolicyDynamic.String())
	if got := o.Gauge("wan_shipped_gbps", "", pl).Value(); got != last.ShippedGbps {
		t.Fatalf("wan_shipped_gbps = %v, want %v (last round)", got, last.ShippedGbps)
	}
	if got := o.Counter("wan_rounds_total", "", pl).Value(); got != float64(len(res.Rounds)) {
		t.Fatalf("wan_rounds_total = %v, want %d", got, len(res.Rounds))
	}
	if got := o.Counter("wan_changes_total", "", pl).Value(); got != float64(res.TotalChanges()) {
		t.Fatalf("wan_changes_total = %v, want %d", got, res.TotalChanges())
	}
	if o.Counter("wan_te_solves_total", "", pl).Value() <= 0 {
		t.Fatal("wan_te_solves_total not recorded")
	}
}
