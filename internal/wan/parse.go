package wan

import (
	"fmt"

	"repro/internal/te"
)

// ParsePolicies is the single validation path for policy selection
// flags and daemon config fields: "static100", "staticmax", "dynamic",
// or "all" (every policy, in canonical order). Sharing it between
// rwc-wansim, rwc-wansimd, and the daemon's reload validation keeps
// "what is a valid policy" answered in exactly one place.
func ParsePolicies(name string) ([]Policy, error) {
	switch name {
	case "all":
		return []Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}, nil
	case "static100":
		return []Policy{PolicyStatic100}, nil
	case "staticmax":
		return []Policy{PolicyStaticMax}, nil
	case "dynamic":
		return []Policy{PolicyDynamic}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (static100, staticmax, dynamic, all)", name)
	}
}

// ParseTE is the single validation path for TE algorithm selection.
// Empty and "greedy" select the simulation default (nil: the round
// loop warm-starts te.Greedy itself).
func ParseTE(name string) (te.Algorithm, error) {
	switch name {
	case "", "greedy":
		return nil, nil
	case "shortest-path", "shortest":
		return te.ShortestPath{}, nil
	case "kpath":
		return te.KPath{}, nil
	case "maxconcurrent":
		return te.MaxConcurrent{}, nil
	default:
		return nil, fmt.Errorf("unknown TE algorithm %q (greedy, shortest-path, kpath, maxconcurrent)", name)
	}
}
