package wan

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/te"
)

func TestContinentalValidation(t *testing.T) {
	if _, err := Continental(minContinentalNodes-1, 2, 1); err == nil {
		t.Fatal("accepted node count below the floor")
	}
	if _, err := Continental(maxContinentalNodes+1, 2, 1); err == nil {
		t.Fatal("accepted node count above the ceiling")
	}
	if _, err := Continental(64, 0, 1); err == nil {
		t.Fatal("accepted zero wavelengths")
	}
	if _, err := Continental(64, -3, 1); err == nil {
		t.Fatal("accepted negative wavelengths")
	}
}

func TestContinentalConnectedAndValid(t *testing.T) {
	net, err := Continental(96, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := net.G.NumNodes(); n != 96 {
		t.Fatalf("nodes = %d", n)
	}
	// Connectivity over the raw adjacency (capacities are zero until a
	// simulation round lights the wavelengths, so graph.Reachable —
	// which follows positive-capacity edges — does not apply here).
	seen := make([]bool, net.G.NumNodes())
	seen[0] = true
	stack := []graph.NodeID{0}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range net.G.Out(u) {
			if v := net.G.Edge(id).To; !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	for n, ok := range seen {
		if !ok {
			t.Fatalf("node %d unreachable from node 0", n)
		}
	}
	// MST gives n-1 fibers; chords add up to n/2 more.
	if net.NumFibers < 95 || net.NumFibers > 95+48 {
		t.Fatalf("fibers = %d, want [95, 143]", net.NumFibers)
	}
	// IGP weights follow the 100 km-unit distance convention: positive,
	// floored at 0.5 (50 km), and bounded by the plane diagonal.
	diag := math.Hypot(5000, 3000) / 100
	for _, e := range net.G.Edges() {
		if e.Weight < 0.5-1e-9 || e.Weight > diag*1.5 {
			t.Fatalf("edge %d weight %v outside plausible distance range", e.ID, e.Weight)
		}
	}
}

func TestContinentalDeterministic(t *testing.T) {
	a, err := Continental(64, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Continental(64, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFibers != b.NumFibers || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatalf("same seed, different structure: %d/%d fibers, %d/%d edges",
			a.NumFibers, b.NumFibers, a.G.NumEdges(), b.G.NumEdges())
	}
	for _, e := range a.G.Edges() {
		f := b.G.Edge(e.ID)
		if e.From != f.From || e.To != f.To || math.Float64bits(e.Weight) != math.Float64bits(f.Weight) {
			t.Fatalf("edge %d differs between same-seed builds", e.ID)
		}
	}
	for i := range a.NodeWeights {
		if math.Float64bits(a.NodeWeights[i]) != math.Float64bits(b.NodeWeights[i]) {
			t.Fatalf("node weight %d differs between same-seed builds", i)
		}
	}
	c, err := Continental(64, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := a.NumFibers == c.NumFibers
	if same {
		for _, e := range a.G.Edges() {
			f := c.G.Edge(e.ID)
			if e.From != f.From || e.To != f.To || math.Float64bits(e.Weight) != math.Float64bits(f.Weight) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical topologies")
	}
}

// TestContinentalPaperScale pins the ISSUE acceptance floor: a
// 200-node continental backbone at 8 wavelengths carries at least
// 2000 fiber×wavelength links and runs a multi-round simulation.
func TestContinentalPaperScale(t *testing.T) {
	net, err := ParseTopology("continental:200", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if links := net.NumFibers * net.Wavelengths; links < 2000 {
		t.Fatalf("only %d fiber x wavelength links, want >= 2000", links)
	}
	sim, err := NewSimulation(SimConfig{
		Net:            net,
		Rounds:         3,
		RoundInterval:  6 * time.Hour,
		Seed:           5,
		DemandFraction: 0.6,
		MaxDemands:     4 * net.G.NumNodes(),
		LengthAware:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(PolicyDynamic)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	for _, m := range res.Rounds {
		if m.ShippedGbps <= 0 || m.CapacityGbps <= 0 {
			t.Fatalf("degenerate round %+v at paper scale", m)
		}
	}
}

func TestParseTopology(t *testing.T) {
	ok := []struct {
		spec   string
		nodes  int
		fibers int
	}{
		{"abilene", 11, 14},
		{"us", 25, 35},
		{"random", 20, 0},
		{"random:16", 16, 0},
		{"continental:32", 32, 0},
	}
	for _, c := range ok {
		net, err := ParseTopology(c.spec, 2, 9)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if net.G.NumNodes() != c.nodes {
			t.Fatalf("%s: nodes = %d, want %d", c.spec, net.G.NumNodes(), c.nodes)
		}
		if c.fibers > 0 && net.NumFibers != c.fibers {
			t.Fatalf("%s: fibers = %d, want %d", c.spec, net.NumFibers, c.fibers)
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
	}
	bad := []struct {
		spec string
		frag string
	}{
		{"ring", "unknown topology"},
		{"abilene:4", "takes no argument"},
		{"us:4", "takes no argument"},
		{"random:zero", "bad random node count"},
		{"random:-2", "bad random node count"},
		{"continental", "needs a node count"},
		{"continental:abc", "bad continental node count"},
		{"continental:8", "16..4096 nodes"},
	}
	for _, c := range bad {
		_, err := ParseTopology(c.spec, 2, 9)
		if err == nil {
			t.Fatalf("%s: accepted", c.spec)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Fatalf("%s: error %q missing %q", c.spec, err, c.frag)
		}
	}
	// Wavelength validation fires first, for every topology name.
	for _, spec := range []string{"abilene", "continental:32", "nonsense"} {
		_, err := ParseTopology(spec, 0, 9)
		if err == nil || !strings.Contains(err.Error(), "wavelength") {
			t.Fatalf("%s with 0 wavelengths: err = %v, want wavelength validation", spec, err)
		}
	}
}

func TestLargestDemands(t *testing.T) {
	d := []te.Demand{
		{Src: 3, Dst: 1, Volume: 5},
		{Src: 0, Dst: 2, Volume: 9},
		{Src: 2, Dst: 0, Volume: 5},
		{Src: 1, Dst: 3, Volume: 1},
		{Src: 3, Dst: 0, Volume: 5},
	}
	got := LargestDemands(d, 4)
	want := []te.Demand{
		{Src: 0, Dst: 2, Volume: 9},
		// Volume ties break ascending by (Src, Dst) for determinism.
		{Src: 2, Dst: 0, Volume: 5},
		{Src: 3, Dst: 0, Volume: 5},
		{Src: 3, Dst: 1, Volume: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Src != want[i].Src || got[i].Dst != want[i].Dst ||
			math.Float64bits(got[i].Volume) != math.Float64bits(want[i].Volume) {
			t.Fatalf("rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if LargestDemands(d, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
	if n := len(LargestDemands(d, 50)); n != len(d) {
		t.Fatalf("k>len returned %d demands", n)
	}
	if d[0].Src != 3 || d[0].Dst != 1 {
		t.Fatal("input slice mutated")
	}
}

func TestSimConfigMaxDemandsCapsBase(t *testing.T) {
	cfg := testSimConfig(t)
	full, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxDemands = 10
	capped, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.demandsBase) <= 10 {
		t.Fatalf("test needs > 10 base demands, got %d", len(full.demandsBase))
	}
	if len(capped.demandsBase) != 10 {
		t.Fatalf("capped base has %d demands, want 10", len(capped.demandsBase))
	}
	// The cap keeps exactly the largest demands.
	want := LargestDemands(full.demandsBase, 10)
	var wantVol, gotVol float64
	for i := range want {
		wantVol += want[i].Volume
		gotVol += capped.demandsBase[i].Volume
	}
	if math.Float64bits(wantVol) != math.Float64bits(gotVol) {
		t.Fatalf("capped volume %v != top-10 volume %v", gotVol, wantVol)
	}
}
