package wan

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/alert"
)

// TestSNRDipScenarioFiresAlertOnce is the acceptance scenario for the
// live-ops alert plane: inject a ≥3 dB SNR dip into an otherwise calm
// network and prove the snr_dip rule fires exactly once, stamped with
// the dip round's simulation time.
func TestSNRDipScenarioFiresAlertOnce(t *testing.T) {
	cfg := testSimConfig(t)
	cfg.Alerts = alert.DefaultWANRules()
	o := obs.New("wan-test")
	cfg.Obs = o
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Flatten the generated evolution to a calm 18 dB everywhere so the
	// injected dip is the only alertable signal, then sink one
	// wavelength to 14 dB (a 4 dB dip ≥ the 3 dB threshold) for one
	// round.
	const dipRound = 7
	for f := 0; f < cfg.Net.NumFibers; f++ {
		for w := 0; w < cfg.Net.Wavelengths; w++ {
			for r := 0; r < cfg.Rounds; r++ {
				if err := sim.OverrideSNR(f, w, r, 18); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sim.OverrideSNR(2, 1, dipRound, 14); err != nil {
		t.Fatal(err)
	}

	if _, err := sim.Run(PolicyDynamic); err != nil {
		t.Fatal(err)
	}

	var fires, resolves []obs.Event
	for _, ev := range o.Trace.Events() {
		switch ev.Name {
		case "alert.fire":
			fires = append(fires, ev)
		case "alert.resolve":
			resolves = append(resolves, ev)
		}
	}
	if len(fires) != 1 {
		t.Fatalf("want exactly one alert.fire for the injected dip, got %d: %+v", len(fires), fires)
	}
	attrs := map[string]any{}
	for _, a := range fires[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["rule"] != "snr_dip" {
		t.Fatalf("fired rule %v, want snr_dip", attrs["rule"])
	}
	if attrs["value"] != 4.0 {
		t.Fatalf("dip depth %v, want 4 dB", attrs["value"])
	}
	// Deterministic simulation-time stamp: dip round × round interval.
	if want := time.Duration(dipRound) * cfg.RoundInterval; fires[0].T != want {
		t.Fatalf("alert.fire stamped %v, want %v", fires[0].T, want)
	}
	// The dip lasts one round, so the alert resolves the next round.
	if len(resolves) != 1 {
		t.Fatalf("want one alert.resolve after recovery, got %d", len(resolves))
	}
	if want := time.Duration(dipRound+1) * cfg.RoundInterval; resolves[0].T != want {
		t.Fatalf("alert.resolve stamped %v, want %v", resolves[0].T, want)
	}

	// End-of-run summary lands in the manifest.
	var rec *obs.AlertRecord
	for i, a := range o.Manifest.Alerts() {
		if a.Rule == "snr_dip" {
			rec = &o.Manifest.Alerts()[i]
		}
	}
	if rec == nil {
		t.Fatal("snr_dip missing from manifest alert summary")
	}
	if rec.Fires != 1 || rec.Resolves != 1 || rec.ActiveAtEnd {
		t.Fatalf("manifest record %+v, want 1 fire / 1 resolve / inactive", *rec)
	}
	if want := (time.Duration(dipRound) * cfg.RoundInterval).Nanoseconds(); rec.FirstFireNs != want {
		t.Fatalf("manifest first_fire_ns = %d, want %d", rec.FirstFireNs, want)
	}
}

// TestAlertsAreByteDeterministicAcrossWorkers proves alerting composes
// with the fan-out layer: a multi-policy run with alert rules produces
// byte-identical traces (including alert events) for any worker count.
func TestAlertsAreByteDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]obs.Event, []obs.AlertRecord) {
		cfg := testSimConfig(t)
		cfg.Alerts = alert.DefaultWANRules()
		cfg.Workers = workers
		o := obs.New("wan-test")
		cfg.Obs = o
		sim, err := NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunPolicies([]Policy{PolicyStatic100, PolicyStaticMax, PolicyDynamic}); err != nil {
			t.Fatal(err)
		}
		return o.Trace.Events(), o.Manifest.Alerts()
	}
	ev1, al1 := run(1)
	ev4, al4 := run(4)
	if len(ev1) != len(ev4) {
		t.Fatalf("worker count changed event count: %d vs %d", len(ev1), len(ev4))
	}
	for i := range ev1 {
		if ev1[i].Name != ev4[i].Name || ev1[i].T != ev4[i].T || ev1[i].Seq != ev4[i].Seq {
			t.Fatalf("event %d differs across worker counts: %+v vs %+v", i, ev1[i], ev4[i])
		}
	}
	if len(al1) != len(al4) {
		t.Fatalf("worker count changed alert summary: %d vs %d records", len(al1), len(al4))
	}
	for i := range al1 {
		if al1[i] != al4[i] {
			t.Fatalf("alert record %d differs: %+v vs %+v", i, al1[i], al4[i])
		}
	}
}
