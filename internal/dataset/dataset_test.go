package dataset

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/modulation"
	"repro/internal/snr"
	"repro/internal/stats"
)

// tinyConfig keeps unit tests fast: 3 fibers × 4 wavelengths × 60 days.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Fibers = 3
	c.Fiber.Wavelengths = 4
	c.Duration = 60 * 24 * time.Hour
	return c
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Fibers = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("0 fibers accepted")
	}
	bad = good
	bad.Duration = time.Minute
	if err := bad.Validate(); err == nil {
		t.Fatal("sub-interval duration accepted")
	}
	bad = good
	bad.Ladder = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil ladder accepted")
	}
}

func TestDefaultConfigScale(t *testing.T) {
	c := DefaultConfig()
	if c.Links() != 2000 {
		t.Fatalf("default fleet has %d links, want 2000 (paper: 'over 2000 links')", c.Links())
	}
	if c.Duration < 2*365*24*time.Hour {
		t.Fatalf("default horizon %v, want 2.5 years", c.Duration)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamVisitsEveryLink(t *testing.T) {
	cfg := tinyConfig()
	seen := map[string]bool{}
	n := snr.SamplesFor(cfg.Duration)
	err := Stream(cfg, func(meta LinkMeta, s *snr.Series) error {
		if seen[meta.Name] {
			t.Fatalf("duplicate link %s", meta.Name)
		}
		seen[meta.Name] = true
		if len(s.Samples) != n {
			t.Fatalf("link %s has %d samples, want %d", meta.Name, len(s.Samples), n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != cfg.Links() {
		t.Fatalf("visited %d links, want %d", len(seen), cfg.Links())
	}
}

func TestStreamDeterministic(t *testing.T) {
	cfg := tinyConfig()
	first := map[string]float64{}
	if err := Stream(cfg, func(meta LinkMeta, s *snr.Series) error {
		first[meta.Name] = s.Samples[0] + s.Samples[len(s.Samples)-1]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := Stream(cfg, func(meta LinkMeta, s *snr.Series) error {
		if got := s.Samples[0] + s.Samples[len(s.Samples)-1]; got != first[meta.Name] {
			t.Fatalf("link %s not reproducible", meta.Name)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamAbortsOnError(t *testing.T) {
	cfg := tinyConfig()
	sentinel := errors.New("stop")
	count := 0
	err := Stream(cfg, func(meta LinkMeta, s *snr.Series) error {
		count++
		if count == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if count != 3 {
		t.Fatalf("visited %d links after abort", count)
	}
}

func TestGenerateFiberSeriesMatchesStream(t *testing.T) {
	cfg := tinyConfig()
	want := map[int][]float64{}
	if err := Stream(cfg, func(meta LinkMeta, s *snr.Series) error {
		if meta.Fiber == 1 {
			want[meta.Wavelength] = append([]float64(nil), s.Samples[:10]...)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	fiber, err := GenerateFiberSeries(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for w, s := range fiber.Series {
		for i, v := range want[w] {
			if s.Samples[i] != v {
				t.Fatalf("fiber 1 wl %d sample %d: %v != %v", w, i, s.Samples[i], v)
			}
		}
	}
	if _, err := GenerateFiberSeries(cfg, 99); err == nil {
		t.Fatal("out-of-range fiber accepted")
	}
}

func TestGenerateFleetMatchesStream(t *testing.T) {
	cfg := tinyConfig()
	fleet, err := GenerateFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Links) != cfg.Links() {
		t.Fatalf("fleet has %d links", len(fleet.Links))
	}
	if fleet.Duration() != cfg.Duration/snr.SampleInterval*snr.SampleInterval {
		t.Fatalf("fleet duration %v", fleet.Duration())
	}
}

func TestAnalyzeProducesSaneStats(t *testing.T) {
	cfg := tinyConfig()
	err := Stream(cfg, func(meta LinkMeta, s *snr.Series) error {
		ls, err := Analyze(meta, s, cfg.Ladder)
		if err != nil {
			return err
		}
		if ls.RangedB < 0 {
			t.Fatalf("negative range for %s", meta.Name)
		}
		if ls.HDR.Width() < 0 || ls.HDR.Width() > ls.RangedB+1e-9 {
			t.Fatalf("HDR width %v vs range %v", ls.HDR.Width(), ls.RangedB)
		}
		if ls.FeasibleOk && ls.Feasible.MinSNRdB > ls.HDR.Lo {
			t.Fatalf("feasible mode above HDR lower bound")
		}
		// Failure counts are NOT monotone in capacity (chattering events
		// merge into one long outage at a higher threshold), but
		// downtime is.
		prevD := -1.0
		for _, m := range cfg.Ladder.Modes() {
			d := ls.DowntimeHours[m.Capacity]
			if d < prevD {
				t.Fatalf("downtime decreased at %v Gbps", m.Capacity)
			}
			prevD = d
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeFleetAggregates(t *testing.T) {
	cfg := tinyConfig()
	fs, err := AnalyzeFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Links) != cfg.Links() {
		t.Fatalf("aggregated %d links", len(fs.Links))
	}
	if len(fs.HDRWidths()) != cfg.Links() || len(fs.Ranges()) != cfg.Links() || len(fs.FeasibleCapacities()) != cfg.Links() {
		t.Fatal("extraction length mismatch")
	}
	// Gain must equal the sum over links of feasible-100 (when above).
	var want float64
	for _, c := range fs.FeasibleCapacities() {
		if c > float64(DeployedCapacity) {
			want += c - float64(DeployedCapacity)
		}
	}
	if fs.CapacityGainGbps != want {
		t.Fatalf("gain %v != recomputed %v", fs.CapacityGainGbps, want)
	}
	// Every failure's lowest SNR is below the 100G threshold.
	for _, v := range fs.FailureLowestSNR {
		if v >= 6.5 {
			t.Fatalf("failure lowest SNR %v above threshold", v)
		}
	}
	// One synthetic ticket per failure, with consistent causes: a
	// fiber-cut classification requires loss of light.
	if len(fs.FailureTickets) != len(fs.FailureLowestSNR) {
		t.Fatalf("%d tickets for %d failures", len(fs.FailureTickets), len(fs.FailureLowestSNR))
	}
	for i, tk := range fs.FailureTickets {
		if tk.Cause == failures.CauseFiberCut && fs.FailureLowestSNR[i] > 0 {
			t.Fatalf("failure %d classified as fiber cut with light present (%v dB)",
				i, fs.FailureLowestSNR[i])
		}
		if tk.Duration <= 0 {
			t.Fatalf("ticket %d has non-positive duration", i)
		}
	}
}

// TestCalibration verifies that the paper's published aggregate
// statistics emerge from the generative model at a moderate scale
// (10 fibers × 40 wavelengths × 1 year). Tolerances are wide enough to
// absorb horizon effects but tight enough to catch calibration drift.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a ~year-scale fleet")
	}
	cfg := DefaultConfig()
	cfg.Fibers = 10
	cfg.Duration = 365 * 24 * time.Hour
	fs, err := AnalyzeFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Figure 2a: "HDR is less than 2 dB for 83% of them".
	hdrUnder2 := stats.FractionBelow(fs.HDRWidths(), 2)
	if hdrUnder2 < 0.75 || hdrUnder2 > 0.93 {
		t.Errorf("HDR<2dB fraction = %v, want ≈ 0.83", hdrUnder2)
	}

	// Figure 2a: wide ranges, "the average ... nearly 12 dB".
	meanRange := stats.Mean(fs.Ranges())
	if meanRange < 9 || meanRange > 16 {
		t.Errorf("mean range = %v dB, want ≈ 12", meanRange)
	}

	// Figure 2b: "the feasible capacity of 80% of our links is
	// 175 Gbps or higher".
	at175 := stats.FractionAtLeast(fs.FeasibleCapacities(), 175)
	if at175 < 0.72 || at175 > 0.92 {
		t.Errorf("feasible>=175 fraction = %v, want ≈ 0.80", at175)
	}

	// "a potential increase of 145 Tbps" over 2000 links → per-link
	// mean gain ≈ 72.5 Gbps.
	meanGain := fs.CapacityGainGbps / float64(len(fs.Links))
	if meanGain < 55 || meanGain > 95 {
		t.Errorf("mean per-link gain = %v Gbps, want ≈ 72", meanGain)
	}

	// Figure 4c: "the lowest SNR in failure events is above 3.0 dB,
	// nearly 25% of the time".
	if len(fs.FailureLowestSNR) < 50 {
		t.Fatalf("only %d failures in a year-long 400-link fleet", len(fs.FailureLowestSNR))
	}
	above3 := stats.FractionAtLeast(fs.FailureLowestSNR, 3)
	if above3 < 0.15 || above3 > 0.38 {
		t.Errorf("failures with lowest SNR >= 3 dB = %v, want ≈ 0.25", above3)
	}

	// §2.1: failures at 100 Gbps are rare (links are stable) — order
	// of a few per link-year.
	var totalFailures int
	for _, l := range fs.Links {
		totalFailures += l.FailureCount[modulation.Gbps(100)]
	}
	perLinkYear := float64(totalFailures) / float64(len(fs.Links))
	if perLinkYear < 0.2 || perLinkYear > 6 {
		t.Errorf("failures per link-year at 100G = %v, want a few", perLinkYear)
	}
}

func BenchmarkAnalyzeLinkYear(b *testing.B) {
	cfg := tinyConfig()
	cfg.Duration = 365 * 24 * time.Hour
	var series *snr.Series
	var meta LinkMeta
	if err := Stream(Config{
		Fibers: 1, Duration: cfg.Duration, Seed: 1,
		Fiber:  func() snr.FiberParams { f := cfg.Fiber; f.Wavelengths = 1; return f }(),
		Ladder: cfg.Ladder,
	}, func(m LinkMeta, s *snr.Series) error {
		meta = m
		series = &snr.Series{Samples: append([]float64(nil), s.Samples...), BaselinedB: s.BaselinedB}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(meta, series, cfg.Ladder); err != nil {
			b.Fatal(err)
		}
	}
}

// TestConfigValidateLinkCountOverflow: Fibers × Wavelengths beyond
// int range must be rejected up front — a wrapped Links() count used
// to surface later as a negative loop bound or a silent empty stream.
func TestConfigValidateLinkCountOverflow(t *testing.T) {
	bad := tinyConfig()
	bad.Fibers = math.MaxInt / 2
	bad.Fiber.Wavelengths = 4
	if err := bad.Validate(); err == nil {
		t.Fatal("overflowing fibers x wavelengths accepted")
	}
	// The exact boundary still validates: MaxInt/w fibers at w
	// wavelengths is the largest representable link count.
	edge := tinyConfig()
	edge.Fiber.Wavelengths = 8
	edge.Fibers = math.MaxInt / 8
	if err := edge.Validate(); err != nil {
		t.Fatalf("boundary link count rejected: %v", err)
	}
	if edge.Links() < 0 {
		t.Fatalf("boundary Links() wrapped: %d", edge.Links())
	}
}
