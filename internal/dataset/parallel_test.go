package dataset

// Parity tests for the deterministic fan-out (ISSUE 3): fleet
// generation and analysis must produce identical output — including
// the fan-out layer's own metrics — for every worker count.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/snr"
)

// parityConfig is a small fleet that still spans several fibers per
// worker.
func parityConfig() Config {
	c := SmallConfig()
	c.Fibers = 6
	c.Fiber.Wavelengths = 4
	c.Duration = 30 * 24 * time.Hour
	return c
}

// streamDigest records the visit order and a content digest of every
// series Stream yields.
type streamDigest struct {
	Meta     LinkMeta
	Baseline float64
	Sum      float64
	First    float64
	Last     float64
	Dips     int
}

func digestStream(t *testing.T, cfg Config) []streamDigest {
	t.Helper()
	var out []streamDigest
	err := Stream(cfg, func(meta LinkMeta, s *snr.Series) error {
		d := streamDigest{
			Meta:     meta,
			Baseline: s.BaselinedB,
			First:    s.Samples[0],
			Last:     s.Samples[len(s.Samples)-1],
			Dips:     len(s.Dips),
		}
		for _, v := range s.Samples {
			d.Sum += v
		}
		out = append(out, d)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStreamWorkersParity: identical series in identical order for
// every worker count.
func TestStreamWorkersParity(t *testing.T) {
	cfg := parityConfig()
	cfg.Workers = 1
	want := digestStream(t, cfg)
	if len(want) != cfg.Links() {
		t.Fatalf("visited %d links, want %d", len(want), cfg.Links())
	}
	for _, w := range []int{2, 4} {
		cfg.Workers = w
		if got := digestStream(t, cfg); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: stream output differs from workers=1", w)
		}
	}
}

// TestAnalyzeFleetWorkersParity: the full aggregate — including the
// ticket causes drawn from a shared rng during ordered consumption —
// is identical for every worker count, and so are the obs metrics
// (the pool's task counter is a function of the task count only).
func TestAnalyzeFleetWorkersParity(t *testing.T) {
	run := func(workers int) (*FleetStats, []byte) {
		cfg := parityConfig()
		// Stormier fleet: enough loss-of-light events that the ticket
		// stream (drawn from a shared rng at consume time) is non-empty.
		cfg.Fiber.Wavelength.DipsPerYear = 40
		cfg.Fiber.Wavelength.LossOfLightProb = 0.5
		cfg.Fiber.FiberDipsPerYear = 12
		cfg.Workers = workers
		cfg.Obs = obs.New("dataset-test")
		fs, err := AnalyzeFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := cfg.Obs.Metrics.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return fs, b.Bytes()
	}
	want, wantMetrics := run(1)
	if len(want.FailureTickets) == 0 {
		t.Fatal("parity fleet produced no tickets; the ticket-rng ordering is untested")
	}
	for _, w := range []int{2, 4} {
		got, gotMetrics := run(w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: AnalyzeFleet differs from workers=1", w)
		}
		if !bytes.Equal(gotMetrics, wantMetrics) {
			t.Fatalf("workers=%d: metrics differ from workers=1:\n--- workers=1\n%s\n--- workers=%d\n%s", w, wantMetrics, w, gotMetrics)
		}
	}
}
