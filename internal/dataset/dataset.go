// Package dataset ties the SNR process, the modulation ladder, and the
// failure taxonomy into the synthetic equivalent of the paper's
// measurement substrate: ">2000 links in a large company's WAN every
// fifteen minutes for a period of 2.5 years" (§2.1).
//
// The full-scale fleet does not fit in memory as raw samples
// (2000 links × 87,600 samples), so the package exposes a streaming
// generator (Stream) that visits one wavelength at a time, plus the
// per-link analysis (Analyze) and the fleet-level aggregation
// (AnalyzeFleet) every §2 figure is derived from.
package dataset

import (
	"fmt"
	"math"
	"time"

	"repro/internal/failures"
	"repro/internal/modulation"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/snr"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// HDRMass is the highest-density-region mass the paper uses (95%).
const HDRMass = 0.95

// DeployedCapacity is today's static configuration: every link runs at
// 100 Gbps.
const DeployedCapacity modulation.Gbps = 100

// Config describes a synthetic backbone fleet.
type Config struct {
	// Fibers is the number of physical fiber cables; each carries
	// Fiber.Wavelengths optical channels (IP links).
	Fibers int
	// Duration is the telemetry horizon.
	Duration time.Duration
	// Seed makes the whole fleet reproducible.
	Seed uint64
	// Fiber holds the generative parameters for each cable.
	Fiber snr.FiberParams
	// Ladder is the modulation ladder in effect.
	Ladder *modulation.Ladder
	// Workers bounds how many fibers are generated and analyzed
	// concurrently; <= 0 means runtime.GOMAXPROCS(0). Every value
	// produces identical results — per-fiber rng.Sources are split in
	// fiber order before dispatch and results are consumed in fiber
	// order (see internal/par).
	Workers int
	// Obs receives fan-out instrumentation: the deterministic
	// rwc_par_tasks_total counter and wall/busy manifest phases for the
	// dataset/stream and dataset/analyze pools. Nil disables it.
	Obs *obs.Obs
}

// DefaultConfig is the paper-scale fleet: 50 fibers × 40 wavelengths =
// 2000 links over 2.5 years.
func DefaultConfig() Config {
	return Config{
		Fibers:   50,
		Duration: time.Duration(2.5 * 365 * 24 * float64(time.Hour)),
		Seed:     20170701, // the study window ends July 2017
		Fiber:    snr.DefaultFiberParams(),
		Ladder:   modulation.Default(),
	}
}

// SmallConfig is a reduced fleet for tests and quick runs: same
// generative parameters, fewer fibers and a shorter horizon.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Fibers = 12
	c.Fiber.Wavelengths = 10
	c.Duration = 180 * 24 * time.Hour
	return c
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	if c.Fibers <= 0 {
		return fmt.Errorf("dataset: need >= 1 fiber, got %d", c.Fibers)
	}
	if c.Duration < snr.SampleInterval {
		return fmt.Errorf("dataset: duration %v below one sample interval", c.Duration)
	}
	if c.Ladder == nil {
		return fmt.Errorf("dataset: nil modulation ladder")
	}
	if err := c.Fiber.Validate(); err != nil {
		return err
	}
	// Fibers × Wavelengths must fit an int: a wrapped Links() count
	// silently truncates fleet sizes, progress totals, and admission
	// budgets downstream. (Both factors are positive after the checks
	// above, so the division-based probe is exact.)
	if w := c.Fiber.Wavelengths; w > 0 && c.Fibers > math.MaxInt/w {
		return fmt.Errorf("dataset: %d fibers x %d wavelengths overflows the link count", c.Fibers, w)
	}
	return nil
}

// Links returns the total number of links in the fleet. Validate
// guarantees the product fits an int.
func (c Config) Links() int { return c.Fibers * c.Fiber.Wavelengths }

// LinkMeta identifies one wavelength in the fleet.
type LinkMeta struct {
	Name              string
	Fiber, Wavelength int
}

// linkMeta names fiber f's wavelength w the way the whole repo refers
// to it.
func linkMeta(f, w int) LinkMeta {
	return LinkMeta{
		Name:  fmt.Sprintf("fiber%03d-wl%02d", f, w),
		Fiber: f, Wavelength: w,
	}
}

// parOpts configures one fan-out pool over the fleet's fibers.
func (c Config) parOpts(pool string) par.Opts {
	return par.Opts{Workers: c.Workers, Name: pool, Obs: c.Obs}
}

// fiberRngs pre-splits one rng.Source per fiber, in fiber order — the
// first half of the determinism contract (internal/par): splitting
// up front consumes exactly the parent state a serial loop would, so
// the fleet is byte-identical for every worker count.
func (c Config) fiberRngs() []*rng.Source {
	root := rng.New(c.Seed)
	rngs := make([]*rng.Source, c.Fibers)
	for f := range rngs {
		rngs[f] = root.Split()
	}
	return rngs
}

// Stream generates the fleet and visits every wavelength's series in
// fiber, wavelength order. Fibers are generated concurrently (Config.
// Workers), but visit always runs on the calling goroutine, in order;
// at most Workers generated-but-unvisited fibers are held in memory, so
// visitors must not retain the *snr.Series beyond the call. Returning a
// non-nil error aborts the stream.
func Stream(cfg Config, visit func(meta LinkMeta, s *snr.Series) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	n := snr.SamplesFor(cfg.Duration)
	rngs := cfg.fiberRngs()
	return par.Stream(cfg.parOpts("dataset/stream"), cfg.Fibers,
		func(worker, f int) (*snr.Fiber, error) {
			return snr.GenerateFiber(cfg.Fiber, n, rngs[f])
		},
		func(f int, fiber *snr.Fiber) error {
			for w, s := range fiber.Series {
				if err := visit(linkMeta(f, w), s); err != nil {
					return err
				}
			}
			return nil
		})
}

// GenerateFiberSeries generates just one fiber of the fleet (used by
// Figure 1, which plots the 40 wavelengths of a single cable). The
// fiber index selects the same cable Stream would generate.
func GenerateFiberSeries(cfg Config, fiberIdx int) (*snr.Fiber, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fiberIdx < 0 || fiberIdx >= cfg.Fibers {
		return nil, fmt.Errorf("dataset: fiber index %d out of range [0,%d)", fiberIdx, cfg.Fibers)
	}
	n := snr.SamplesFor(cfg.Duration)
	root := rng.New(cfg.Seed)
	var fiberRng *rng.Source
	for f := 0; f <= fiberIdx; f++ {
		fiberRng = root.Split()
	}
	return snr.GenerateFiber(cfg.Fiber, n, fiberRng)
}

// GenerateFleet materializes the whole fleet in memory as telemetry.
// Intended for scaled-down configs (snrgen); the full DefaultConfig
// fleet is ≈1.4 GB of float64 samples.
func GenerateFleet(cfg Config) (*telemetry.Fleet, error) {
	fleet := telemetry.NewFleet()
	err := Stream(cfg, func(meta LinkMeta, s *snr.Series) error {
		fleet.Add(telemetry.LinkRecord{
			Name:       meta.Name,
			Fiber:      meta.Fiber,
			Wavelength: meta.Wavelength,
			BaselinedB: s.BaselinedB,
			Samples:    append([]float64(nil), s.Samples...),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fleet, nil
}

// LinkStats is the per-link derived record behind the §2 analyses.
type LinkStats struct {
	Meta LinkMeta
	// BaselinedB is the generative baseline.
	BaselinedB float64
	// RangedB is max−min over the horizon (Figure 2a, blue).
	RangedB float64
	// HDR is the 95% highest-density region (Figure 2a, red).
	HDR stats.HDRInterval
	// Feasible is the highest sustainable mode judged by the HDR lower
	// bound ("we calculate the feasible capacity for each link based on
	// the lower SNR limit of its highest density region"); Ok is false
	// if even the lowest rung is infeasible.
	Feasible   modulation.Mode
	FeasibleOk bool
	// Failures are the failure spans at the deployed 100 Gbps
	// threshold.
	Failures []failures.Span
	// FailureCount[c] counts the failures the link would suffer if
	// configured at each ladder capacity (Figure 3a's counterfactual).
	FailureCount map[modulation.Gbps]int
	// DowntimeHours[c] sums the failed hours at each ladder capacity
	// (Figure 3b).
	DowntimeHours map[modulation.Gbps]float64
}

// Analyze computes LinkStats for one series.
func Analyze(meta LinkMeta, s *snr.Series, ladder *modulation.Ladder) (LinkStats, error) {
	ls := LinkStats{Meta: meta, BaselinedB: s.BaselinedB}
	r, err := stats.Range(s.Samples)
	if err != nil {
		return ls, err
	}
	ls.RangedB = r
	hdr, err := stats.HDR(s.Samples, HDRMass)
	if err != nil {
		return ls, err
	}
	ls.HDR = hdr
	ls.Feasible, ls.FeasibleOk = ladder.FeasibleCapacity(hdr.Lo)

	deployedTh, err := ladder.ThresholdFor(DeployedCapacity)
	if err != nil {
		return ls, err
	}
	ls.Failures = failures.Detect(s.Samples, deployedTh)

	ls.FailureCount = make(map[modulation.Gbps]int, len(ladder.Modes()))
	ls.DowntimeHours = make(map[modulation.Gbps]float64, len(ladder.Modes()))
	for _, m := range ladder.Modes() {
		spans := failures.Detect(s.Samples, m.MinSNRdB)
		ls.FailureCount[m.Capacity] = len(spans)
		var h float64
		for _, sp := range spans {
			h += sp.Hours()
		}
		ls.DowntimeHours[m.Capacity] = h
	}
	return ls, nil
}

// FleetStats aggregates LinkStats across the fleet — the fleet-level
// series every §2 figure prints.
type FleetStats struct {
	Links []LinkStats
	// CapacityGainGbps is Σ over links of (feasible − deployed),
	// counting only links whose feasible capacity exceeds 100 Gbps —
	// the paper's "potential increase of 145 Tbps".
	CapacityGainGbps float64
	// FailureLowestSNR collects the lowest SNR of every failure event
	// at the deployed threshold (Figure 4c).
	FailureLowestSNR []float64
	// FailureTickets holds one synthetic operator ticket per detected
	// failure, with the root cause drawn conditionally on whether the
	// event was a complete loss of light — the SNR-derived counterpart
	// of the §2.2 ticket analysis.
	FailureTickets []failures.Ticket
}

// AnalyzeFleet generates and analyzes the fleet, aggregating per-link
// stats. Each fiber's generation + per-wavelength analysis (the
// dominant cost) fans out over Config.Workers; aggregation — including
// the ticket rng draws, whose order is observable — runs on the calling
// goroutine in fiber order, so the result is identical for every worker
// count.
func AnalyzeFleet(cfg Config) (*FleetStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := snr.SamplesFor(cfg.Duration)
	rngs := cfg.fiberRngs()
	fs := &FleetStats{}
	ticketModel := failures.DefaultTicketModel()
	ticketRng := rng.New(cfg.Seed ^ 0x71c7)
	err := par.Stream(cfg.parOpts("dataset/analyze"), cfg.Fibers,
		func(worker, f int) ([]LinkStats, error) {
			fiber, err := snr.GenerateFiber(cfg.Fiber, n, rngs[f])
			if err != nil {
				return nil, err
			}
			links := make([]LinkStats, len(fiber.Series))
			for w, s := range fiber.Series {
				links[w], err = Analyze(linkMeta(f, w), s, cfg.Ladder)
				if err != nil {
					return nil, err
				}
			}
			// The raw samples die with this task; LinkStats holds only
			// derived values.
			return links, nil
		},
		func(f int, links []LinkStats) error {
			for _, ls := range links {
				fs.Links = append(fs.Links, ls)
				if ls.FeasibleOk && ls.Feasible.Capacity > DeployedCapacity {
					fs.CapacityGainGbps += float64(ls.Feasible.Capacity - DeployedCapacity)
				}
				for _, sp := range ls.Failures {
					fs.FailureLowestSNR = append(fs.FailureLowestSNR, sp.LowestSNR)
					lossOfLight := sp.LowestSNR <= snr.LossOfLightdB
					fs.FailureTickets = append(fs.FailureTickets, failures.Ticket{
						Cause:    ticketModel.AssignCause(lossOfLight, ticketRng),
						Duration: sp.Duration(),
					})
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// HDRWidths extracts the HDR width of every link.
func (fs *FleetStats) HDRWidths() []float64 {
	out := make([]float64, len(fs.Links))
	for i, l := range fs.Links {
		out[i] = l.HDR.Width()
	}
	return out
}

// Ranges extracts the SNR range of every link.
func (fs *FleetStats) Ranges() []float64 {
	out := make([]float64, len(fs.Links))
	for i, l := range fs.Links {
		out[i] = l.RangedB
	}
	return out
}

// FeasibleCapacities extracts each link's feasible capacity (0 for
// links where no rung is feasible).
func (fs *FleetStats) FeasibleCapacities() []float64 {
	out := make([]float64, len(fs.Links))
	for i, l := range fs.Links {
		if l.FeasibleOk {
			out[i] = float64(l.Feasible.Capacity)
		}
	}
	return out
}
