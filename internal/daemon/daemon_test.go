package daemon

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/hist"
	"repro/internal/obs/serve"
	"repro/internal/obs/sli"
	"repro/internal/wan"
)

// testParams is a small, fast config shared by the lifecycle tests.
func testParams(t *testing.T) Params {
	t.Helper()
	p := Params{Topology: "random:8", Rounds: 5, Seed: 11}.Normalized()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// syncBuffer lets the test read stdout while the daemon is writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// bundle is the full artifact stack, wired exactly the way rwc-wansim
// wires it: obs bundle, flight recorder, history store bound to the
// sim clock, and the artifact paths in a temp dir.
type bundle struct {
	o        *obs.Obs
	recorder *flight.Recorder
	hist     *hist.Store
	arts     Artifacts
	dir      string
}

func newBundle(t *testing.T, p Params) *bundle {
	t.Helper()
	dir := t.TempDir()
	o := obs.New("rwc-wansim")
	o.Manifest.SetSeed(p.Seed)
	recorder := flight.New(flight.Options{MaxLinks: flight.DefaultMaxLinks})
	store := hist.New(hist.Options{Retain: hist.DefaultRetain, MaxSeries: hist.DefaultMaxSeries, Tool: "rwc-wansim", Seed: p.Seed})
	o.Metrics.SetHistory(store.Root().Bind(o.Clock))
	recorder.SetHistory(store.Root().NewChild(), time.Duration(p.Interval))
	return &bundle{
		o: o, recorder: recorder, hist: store, dir: dir,
		arts: Artifacts{
			MetricsOut: filepath.Join(dir, "m.prom"),
			TraceOut:   filepath.Join(dir, "t.jsonl"),
			HistOut:    filepath.Join(dir, "h.hist"),
			FlightOut:  filepath.Join(dir, "f.flight"),
			FlightMeta: flight.Meta{Tool: "rwc-wansim", Seed: int64(p.Seed), Interval: time.Duration(p.Interval)},
		},
	}
}

func (b *bundle) read(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(b.dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runOneShot executes the simulation the way rwc-wansim does — no
// gate, no hooks, no SLI layer — and flushes the same artifact set.
func runOneShot(t *testing.T, p Params, b *bundle) string {
	t.Helper()
	policies, err := p.Policies()
	if err != nil {
		t.Fatal(err)
	}
	net, err := p.Network()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := p.SimConfig(net)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = b.o
	cfg.Flight = b.recorder
	sim, err := wan.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	PrintRunHeader(&out, p, net)
	results, err := sim.RunPolicies(policies)
	if err != nil {
		t.Fatal(err)
	}
	PrintResults(&out, policies, results)
	if err := b.arts.Flush(b.o, b.hist, b.recorder, nil); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// TestDaemonPacedRunMatchesOneShot is the tentpole acceptance: a
// daemon run with a fixed round budget — even a *paced* one, rounds
// released on a ticker with the full SLI plane active — produces
// stdout, metrics, trace, hist, and flight artifacts byte-identical
// to the equivalent one-shot rwc-wansim run. Service accounting must
// exist only on the SLI layer's own registry.
func TestDaemonPacedRunMatchesOneShot(t *testing.T) {
	p := testParams(t)
	oneB := newBundle(t, p)
	oneOut := runOneShot(t, p, oneB)

	dB := newBundle(t, p)
	layer := sli.New(sli.Options{Tool: "rwc-wansimd", Seed: p.Seed})
	var out syncBuffer
	d := New(Options{
		Params: p, Tick: time.Millisecond,
		Obs: dB.o, SLI: layer, Flight: dB.recorder, Hist: dB.hist,
		Stdout: &out, Artifacts: dB.arts,
	})
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}

	if out.String() != oneOut {
		t.Errorf("daemon stdout differs from one-shot:\n--- one-shot ---\n%s\n--- daemon ---\n%s", oneOut, out.String())
	}
	for _, name := range []string{"m.prom", "t.jsonl", "h.hist", "f.flight"} {
		if !bytes.Equal(oneB.read(t, name), dB.read(t, name)) {
			t.Errorf("artifact %s differs between one-shot and paced daemon run", name)
		}
	}

	// The run registry must carry zero rwc_sli_* series, and the SLI
	// registry must have seen every round.
	for key := range dB.o.Metrics.Totals() {
		if strings.HasPrefix(key, sli.Prefix) {
			t.Errorf("service series %s leaked into the run registry (artifact surface)", key)
		}
	}
	var rounds float64
	for key, v := range layer.Registry().Totals() {
		if strings.HasPrefix(key, sli.MetricRoundsTotal) {
			rounds += v
		}
	}
	policies, _ := p.Policies()
	if want := float64(p.Rounds * len(policies)); rounds != want {
		t.Errorf("SLI rounds_total = %v, want %v", rounds, want)
	}
}

// TestSignalMidRunDrainsAndFlushes: a SIGTERM landing mid-run stops
// intake at the round boundary, drains what is in flight, and still
// flushes complete, parseable artifacts — never a truncated
// RWCFLT1/RWCHIST1.
func TestSignalMidRunDrainsAndFlushes(t *testing.T) {
	p := Params{Topology: "random:8", Rounds: 400, Seed: 3}.Normalized()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	b := newBundle(t, p)
	layer := sli.New(sli.Options{Tool: "rwc-wansimd", Seed: p.Seed})
	sigs := make(chan os.Signal, 1)
	var out syncBuffer
	d := New(Options{
		Params: p, Tick: 2 * time.Millisecond,
		Obs: b.o, SLI: layer, Flight: b.recorder, Hist: b.hist,
		Stdout: &out, Artifacts: b.arts, Signals: sigs, Tail: true,
	})
	done := make(chan error, 1)
	go func() { done <- d.Run() }()

	waitFor(t, func() bool { return d.latest.Load().round >= 0 }, "first completed round")
	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}

	if completed := d.latest.Load().round + 1; completed >= p.Rounds {
		t.Fatalf("signal did not stop the run early (completed %d of %d rounds)", completed, p.Rounds)
	}
	// The drained rounds were still printed, summary included.
	if !strings.Contains(out.String(), "summary:") {
		t.Fatalf("stdout missing the per-policy summary; drain did not complete:\n%s", out.String())
	}
	// Both binary artifacts parse end to end — the truncation check.
	ff, err := os.Open(filepath.Join(b.dir, "f.flight"))
	if err != nil {
		t.Fatal(err)
	}
	defer ff.Close()
	if _, err := flight.ReadLog(ff); err != nil {
		t.Fatalf("flight log truncated or corrupt after mid-run SIGTERM: %v", err)
	}
	hf, err := os.Open(filepath.Join(b.dir, "h.hist"))
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	if _, err := hist.ReadArchive(hf); err != nil {
		t.Fatalf("hist archive truncated or corrupt after mid-run SIGTERM: %v", err)
	}
}

// TestIdenticalReloadIsProvableNoop: reloading a byte-for-byte
// identical config mid-run bumps the generation gauge and counts a
// noop — and provably changes nothing else: the run's stdout and
// artifacts stay byte-identical to a never-reloaded run.
func TestIdenticalReloadIsProvableNoop(t *testing.T) {
	p := testParams(t)
	oneB := newBundle(t, p)
	oneOut := runOneShot(t, p, oneB)

	b := newBundle(t, p)
	layer := sli.New(sli.Options{Tool: "rwc-wansimd", Seed: p.Seed})
	var out syncBuffer
	d := New(Options{
		Params: p, Tick: time.Millisecond,
		Obs: b.o, SLI: layer, Flight: b.recorder, Hist: b.hist,
		Stdout: &out, Artifacts: b.arts,
	})
	reloaded := make(chan struct{})
	go func() {
		defer close(reloaded)
		waitFor(t, func() bool { return d.latest.Load().round >= 0 }, "first round before reload")
		d.Reload(p)
	}()
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	<-reloaded

	if gen := layer.Generation(); gen != 2 {
		t.Errorf("generation after identical reload = %d, want 2", gen)
	}
	noopKey := sli.MetricReloadsTotal + `{result="` + sli.ReloadNoop + `"}`
	if got := layer.Registry().Totals()[noopKey]; got != 1 {
		t.Errorf("%s = %v, want 1", noopKey, got)
	}
	if n := strings.Count(out.String(), "# topology="); n != 1 {
		t.Errorf("run headers = %d, want 1 (identical reload must not switch generations)", n)
	}
	if out.String() != oneOut {
		t.Errorf("stdout after identical reload differs from never-reloaded run")
	}
	for _, name := range []string{"m.prom", "t.jsonl", "h.hist", "f.flight"} {
		if !bytes.Equal(oneB.read(t, name), b.read(t, name)) {
			t.Errorf("artifact %s perturbed by an identical-config reload", name)
		}
	}
}

// TestChangedReloadSwitchesGeneration: a genuinely different config
// drains the running generation at a round boundary and starts a new
// one — second run header, success counter, generation 2.
func TestChangedReloadSwitchesGeneration(t *testing.T) {
	p := Params{Topology: "random:8", Rounds: 300, Seed: 3}.Normalized()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.Seed = 99
	b := newBundle(t, p)
	layer := sli.New(sli.Options{Tool: "rwc-wansimd", Seed: p.Seed})
	sigs := make(chan os.Signal, 1)
	var out syncBuffer
	d := New(Options{
		Params: p, Tick: 2 * time.Millisecond,
		Obs: b.o, SLI: layer, Flight: b.recorder, Hist: b.hist,
		Stdout: &out, Artifacts: b.arts, Signals: sigs,
	})
	done := make(chan error, 1)
	go func() { done <- d.Run() }()

	waitFor(t, func() bool { return d.latest.Load().round >= 0 }, "first round before reload")
	d.Reload(p2)
	waitFor(t, func() bool { return strings.Count(out.String(), "# topology=") == 2 }, "second generation header")
	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}

	if gen := layer.Generation(); gen != 2 {
		t.Errorf("generation after changed reload = %d, want 2", gen)
	}
	successKey := sli.MetricReloadsTotal + `{result="` + sli.ReloadSuccess + `"}`
	if got := layer.Registry().Totals()[successKey]; got != 1 {
		t.Errorf("%s = %v, want 1", successKey, got)
	}
	// The second generation's header reports the new seed.
	if !strings.Contains(out.String(), "seed=99") {
		t.Errorf("second generation header missing the reloaded seed:\n%s", out.String())
	}
}

// TestInvalidReloadKeepsLastKnownGood: an unreadable, unparsable, or
// invalid config file counts a failure and leaves the running params
// untouched.
func TestInvalidReloadKeepsLastKnownGood(t *testing.T) {
	p := testParams(t)
	layer := sli.New(sli.Options{Tool: "rwc-wansimd", Seed: p.Seed})
	path := filepath.Join(t.TempDir(), "wansimd.json")
	d := New(Options{Params: p, SLI: layer, ConfigPath: path})

	bad := []string{
		`{not json`,
		`{"topology":"abilene","typo_field":1}`, // unknown key: strict decode
		`{"topology":"no-such-backbone"}`,       // fails validation
		`{"topology":"abilene","rounds":-4}`,
	}
	for i, body := range bad {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		d.reloadFromFile()
		failKey := sli.MetricReloadsTotal + `{result="` + sli.ReloadFailure + `"}`
		if got := layer.Registry().Totals()[failKey]; got != float64(i+1) {
			t.Fatalf("after bad config %d: %s = %v, want %d", i, failKey, got, i+1)
		}
	}
	if gen := layer.Generation(); gen != 1 {
		t.Errorf("generation after failed reloads = %d, want 1", gen)
	}
	d.paramsMu.Lock()
	defer d.paramsMu.Unlock()
	if d.params != p {
		t.Errorf("failed reloads replaced the running params: %+v", d.params)
	}
	if d.pending != nil {
		t.Errorf("failed reloads left a pending config: %+v", *d.pending)
	}
}

// TestTailSharedShutdown: the -linger tail and the daemon tail are one
// implementation — wait for the signal, then drain every server.
func TestTailSharedShutdown(t *testing.T) {
	o := obs.New("tail-test")
	s := serve.New(serve.Options{Obs: o})
	ch := make(chan os.Signal, 1)
	ch <- syscall.SIGTERM
	Tail(ch, []*serve.Server{s}, 0, nil)
	if !s.Draining() {
		t.Fatal("Tail returned without draining the server")
	}

	// The ticking variant keeps invoking onTick until the signal.
	var mu sync.Mutex
	ticks := 0
	ch2 := make(chan os.Signal, 1)
	go func() {
		waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return ticks >= 2 }, "tail ticks")
		ch2 <- syscall.SIGTERM
	}()
	s2 := serve.New(serve.Options{Obs: o})
	Tail(ch2, []*serve.Server{s2}, time.Millisecond, func() {
		mu.Lock()
		ticks++
		mu.Unlock()
	})
	if !s2.Draining() {
		t.Fatal("ticking Tail returned without draining the server")
	}
}

// TestGateSemantics pins the pacing gate's contract: rounds block
// until released, stop wins over release, and the first stop reason
// is sticky.
func TestGateSemantics(t *testing.T) {
	g := newGate(false)
	allowed := make(chan bool, 1)
	go func() { allowed <- g.allow(0) }()
	select {
	case <-allowed:
		t.Fatal("allow(0) returned before the round was released")
	case <-time.After(10 * time.Millisecond):
	}
	g.release()
	if !<-allowed {
		t.Fatal("allow(0) = false after release")
	}
	if g.reason() != StopBudget {
		t.Fatalf("reason before stop = %v, want budget", g.reason())
	}
	g.stop(StopReload)
	g.stop(StopSignal)
	if g.reason() != StopReload {
		t.Fatalf("first stop reason must win; got %v", g.reason())
	}
	if g.allow(1) {
		t.Fatal("allow after stop = true")
	}
	if !newGate(true).allow(1 << 30) {
		t.Fatal("free-run gate must admit every round")
	}
}
