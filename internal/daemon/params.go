package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/te"
	"repro/internal/wan"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("6h", "250ms") in the daemon's JSON config, and also accepts a
// plain nanosecond number.
type Duration time.Duration

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "6h" strings and nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("duration must be a string like \"6h\" or a nanosecond number")
	}
	*d = Duration(ns)
	return nil
}

// Params is the daemon's reloadable simulation configuration — the
// subset of rwc-wansim's flags that define *what is simulated* (the
// artifact paths, serve addresses, and tick cadence stay process
// flags: changing those means restarting the service). The struct is
// comparable, so an identical-config reload is detected by plain
// equality and provably changes nothing.
type Params struct {
	// Topology is the backbone spec (abilene, us, random[:N],
	// continental:N).
	Topology string `json:"topology"`
	// Wavelengths per fiber (default 2).
	Wavelengths int `json:"wavelengths,omitempty"`
	// Rounds is the TE round budget per config generation (default 28).
	Rounds int `json:"rounds,omitempty"`
	// Interval is the simulated time between rounds (default 6h).
	Interval Duration `json:"interval,omitempty"`
	// Policy selects static100, staticmax, dynamic, or all (default all).
	Policy string `json:"policy,omitempty"`
	// TE selects the allocator (default greedy).
	TE string `json:"te,omitempty"`
	// Demand is offered load as a fraction of static capacity (default 1.2).
	Demand float64 `json:"demand,omitempty"`
	// DemandSigma is per-round demand churn (default 0.1).
	DemandSigma float64 `json:"demand_sigma,omitempty"`
	// MaxDemands caps gravity demands (0 = all; continental topologies
	// default to 4×nodes, matching rwc-wansim).
	MaxDemands int `json:"max_demands,omitempty"`
	// Seed drives SNR evolution and traffic churn (default 2017).
	Seed uint64 `json:"seed,omitempty"`
	// Hitless assumes 35 ms capacity changes instead of 68 s.
	Hitless bool `json:"hitless,omitempty"`
	// LengthAware derives SNR baselines from link length.
	LengthAware bool `json:"lengthaware,omitempty"`
}

// Normalized fills defaults, mirroring rwc-wansim's flag defaults so
// a daemon config and the equivalent one-shot flags mean the same run.
func (p Params) Normalized() Params {
	if p.Topology == "" {
		p.Topology = "abilene"
	}
	if p.Wavelengths == 0 {
		p.Wavelengths = 2
	}
	if p.Rounds == 0 {
		p.Rounds = 28
	}
	if p.Interval == 0 {
		p.Interval = Duration(6 * time.Hour)
	}
	if p.Policy == "" {
		p.Policy = "all"
	}
	if p.Demand == 0 {
		p.Demand = 1.2
	}
	if p.DemandSigma == 0 {
		p.DemandSigma = 0.1
	}
	if p.Seed == 0 {
		p.Seed = 2017
	}
	if p.MaxDemands == 0 && strings.HasPrefix(p.Topology, "continental") {
		if net, err := wan.ParseTopology(p.Topology, p.Wavelengths, p.Seed); err == nil {
			p.MaxDemands = 4 * net.G.NumNodes()
		}
	}
	return p
}

// Validate runs every enumerated field through the shared parse paths
// and builds nothing: a config file is accepted or rejected as a
// whole before it can touch a running simulation (reject-and-keep-
// last-known-good depends on this being side-effect free).
func (p Params) Validate() error {
	if _, err := wan.ParsePolicies(p.Policy); err != nil {
		return err
	}
	if _, err := wan.ParseTE(p.TE); err != nil {
		return err
	}
	if _, err := wan.ParseTopology(p.Topology, p.Wavelengths, p.Seed); err != nil {
		return err
	}
	if p.Rounds <= 0 {
		return fmt.Errorf("rounds must be >= 1, got %d", p.Rounds)
	}
	if p.Interval <= 0 {
		return fmt.Errorf("interval must be positive, got %v", time.Duration(p.Interval))
	}
	if p.Demand < 0 {
		return fmt.Errorf("negative demand %v", p.Demand)
	}
	if p.DemandSigma < 0 {
		return fmt.Errorf("negative demand_sigma %v", p.DemandSigma)
	}
	if p.MaxDemands < 0 {
		return fmt.Errorf("negative max_demands %d", p.MaxDemands)
	}
	return nil
}

// Policies resolves the policy selection (call after Validate).
func (p Params) Policies() ([]wan.Policy, error) {
	return wan.ParsePolicies(p.Policy)
}

// Network builds the backbone (call after Validate).
func (p Params) Network() (*wan.Network, error) {
	return wan.ParseTopology(p.Topology, p.Wavelengths, p.Seed)
}

// Algorithm resolves the TE selection (nil = simulation default).
func (p Params) Algorithm() (te.Algorithm, error) {
	return wan.ParseTE(p.TE)
}

// SimConfig assembles the wan.SimConfig core: everything Params
// defines, nothing the daemon wires (Obs, Flight, Pace, hooks).
func (p Params) SimConfig(net *wan.Network) (wan.SimConfig, error) {
	alg, err := p.Algorithm()
	if err != nil {
		return wan.SimConfig{}, err
	}
	cfg := wan.SimConfig{
		Net:            net,
		Rounds:         p.Rounds,
		RoundInterval:  time.Duration(p.Interval),
		Seed:           p.Seed,
		DemandFraction: p.Demand,
		DemandSigma:    p.DemandSigma,
		MaxDemands:     p.MaxDemands,
		LengthAware:    p.LengthAware,
	}
	if alg != nil {
		cfg.TE = alg
	}
	if p.Hitless {
		cfg.ChangeDowntime = 35 * time.Millisecond
	}
	return cfg, nil
}

// LoadParams reads, strictly decodes, normalizes, and validates a
// daemon config file. Unknown fields are errors — a typoed key must
// fail the reload, not silently run defaults.
func LoadParams(path string) (Params, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Params{}, err
	}
	var p Params
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Params{}, fmt.Errorf("%s: %v", path, err)
	}
	p = p.Normalized()
	if err := p.Validate(); err != nil {
		return Params{}, fmt.Errorf("%s: %v", path, err)
	}
	return p, nil
}
