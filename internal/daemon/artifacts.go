package daemon

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/hist"
	"repro/internal/obs/perf"
	"repro/internal/wan"
)

// Artifacts is the set of observability output paths plus the flight
// meta, flushed once at shutdown. This is the single flush
// implementation shared by rwc-wansim (one-shot and -linger) and
// rwc-wansimd: the write order is canonical — metrics, trace,
// manifest, hist, flight, perf — because the flight trailer embeds
// the final metrics/trace state and the perf artifact copies the
// final rwc_work_* totals, so those two must go last.
type Artifacts struct {
	MetricsOut  string
	TraceOut    string
	ManifestOut string
	HistOut     string
	FlightOut   string
	PerfOut     string
	// FlightMeta stamps the flight log header (tool, seed, interval).
	FlightMeta flight.Meta
}

// writeFile writes one artifact, propagating the first error.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Flush finishes the manifest and writes every configured artifact.
// Safe under a nil bundle (writes nothing) and with any subset of
// subsystems enabled. Called exactly once, after the last round has
// drained — which is why a mid-round SIGTERM can never leave a
// truncated RWCFLT1/RWCHIST1 on disk: the flush only starts after the
// in-flight round completes.
func (a Artifacts) Flush(o *obs.Obs, histStore *hist.Store, recorder *flight.Recorder, perfRec *perf.Recorder) error {
	if o == nil {
		return nil
	}
	o.FinishManifest()
	if a.MetricsOut != "" {
		if err := writeFile(a.MetricsOut, func(f *os.File) error { return o.Metrics.WritePrometheus(f) }); err != nil {
			return err
		}
	}
	if a.TraceOut != "" {
		if err := writeFile(a.TraceOut, func(f *os.File) error { return o.Trace.WriteJSONL(f) }); err != nil {
			return err
		}
	}
	if a.ManifestOut != "" {
		if err := writeFile(a.ManifestOut, func(f *os.File) error { return o.Manifest.WriteJSON(f) }); err != nil {
			return err
		}
	}
	if histStore != nil && a.HistOut != "" {
		archive := histStore.Archive()
		if err := writeFile(a.HistOut, func(f *os.File) error {
			if strings.HasSuffix(a.HistOut, ".jsonl") {
				return archive.WriteJSONL(f)
			}
			return archive.WriteBinary(f)
		}); err != nil {
			return err
		}
	}
	// Written after the artifacts above so the trailer embeds their
	// final state — that's what lets `rwc-replay replay` regenerate
	// them byte-identically from the log alone.
	if recorder != nil && a.FlightOut != "" {
		if err := writeFile(a.FlightOut, func(f *os.File) error {
			return recorder.WriteLog(f, a.FlightMeta, o)
		}); err != nil {
			return err
		}
	}
	// The perf artifact is written last: profiles stop first so the
	// heap snapshot covers the whole run, and the Work section copies
	// the final rwc_work_* totals out of the deterministic registry.
	if perfRec != nil && a.PerfOut != "" {
		if err := perfRec.StopProfiles(); err != nil {
			return err
		}
		if err := writeFile(a.PerfOut, func(f *os.File) error {
			return perfRec.WriteJSON(f, perf.FilterWork(o.Metrics.Totals()))
		}); err != nil {
			return err
		}
	}
	return nil
}

// PrintRunHeader writes the run's comment header and CSV column line,
// byte-identical to rwc-wansim's. One header per config generation.
func PrintRunHeader(w io.Writer, p Params, net *wan.Network) {
	fmt.Fprintf(w, "# topology=%s nodes=%d fibers=%d wavelengths=%d rounds=%d demand=%.2fx seed=%d\n",
		p.Topology, net.G.NumNodes(), net.NumFibers, p.Wavelengths, p.Rounds, p.Demand, p.Seed)
	fmt.Fprintln(w, "policy,round,offered_gbps,shipped_gbps,satisfied,capacity_gbps,changes,dark_links,disrupted_gbps_sec")
}

// PrintResults writes per-round CSV rows and the per-policy summary
// comment, byte-identical to rwc-wansim's output for the same run.
func PrintResults(w io.Writer, policies []wan.Policy, results []*wan.Result) {
	for i, p := range policies {
		res := results[i]
		for _, m := range res.Rounds {
			fmt.Fprintf(w, "%s,%d,%.1f,%.1f,%.4f,%.0f,%d,%d,%.1f\n",
				p, m.Round, m.OfferedGbps, m.ShippedGbps, m.SatisfiedFraction(),
				m.CapacityGbps, m.Changes, m.LinksDark, m.DisruptedGbpsSec)
		}
		dark := 0
		var disrupted float64
		for _, m := range res.Rounds {
			dark += m.LinksDark
			disrupted += m.DisruptedGbpsSec
		}
		fmt.Fprintf(w, "# %s summary: mean_satisfied=%.4f total_shipped=%.0f changes=%d dark_link_rounds=%d disrupted_gbps_sec=%.0f\n",
			p, res.MeanSatisfied(), res.TotalShipped(), res.TotalChanges(), dark, disrupted)
	}
}

// WallClock returns an obs wall clock anchored at start — the same
// injection rwc-wansim performs, shared so both commands stamp
// manifests identically. time.Duration granularity keeps the obs
// bundle free of absolute wall time.
func WallClock(start time.Time) obs.Clock {
	return obs.ClockFunc(func() time.Duration { return time.Since(start) })
}
