package daemon

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDurationJSONRoundTrip(t *testing.T) {
	d := Duration(6 * time.Hour)
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"6h0m0s"` {
		t.Fatalf("marshal = %s, want \"6h0m0s\"", b)
	}
	var back Duration
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip = %v, want %v", back, d)
	}
	// Plain nanosecond numbers are accepted too.
	if err := json.Unmarshal([]byte("250000000"), &back); err != nil {
		t.Fatal(err)
	}
	if time.Duration(back) != 250*time.Millisecond {
		t.Fatalf("numeric form = %v, want 250ms", time.Duration(back))
	}
	if err := json.Unmarshal([]byte(`"not-a-duration"`), &back); err == nil {
		t.Fatal("bad duration string accepted")
	}
}

func TestNormalizedMirrorsOneShotDefaults(t *testing.T) {
	p := Params{}.Normalized()
	want := Params{
		Topology: "abilene", Wavelengths: 2, Rounds: 28,
		Interval: Duration(6 * time.Hour), Policy: "all",
		Demand: 1.2, DemandSigma: 0.1, Seed: 2017,
	}
	if p != want {
		t.Fatalf("Normalized() = %+v, want the rwc-wansim flag defaults %+v", p, want)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("normalized defaults do not validate: %v", err)
	}
}

func TestNormalizedCapsContinentalDemands(t *testing.T) {
	p := Params{Topology: "continental:40"}.Normalized()
	if p.MaxDemands != 160 {
		t.Fatalf("continental:40 MaxDemands = %d, want 4×nodes = 160", p.MaxDemands)
	}
	// An explicit cap always wins.
	p = Params{Topology: "continental:40", MaxDemands: 7}.Normalized()
	if p.MaxDemands != 7 {
		t.Fatalf("explicit MaxDemands overridden: %d", p.MaxDemands)
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	base := Params{Topology: "abilene", Wavelengths: 2, Rounds: 5, Interval: Duration(time.Hour), Policy: "all", Demand: 1, DemandSigma: 0.1, Seed: 1}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"bad policy", func(p *Params) { p.Policy = "yolo" }},
		{"bad te", func(p *Params) { p.TE = "magic" }},
		{"bad topology", func(p *Params) { p.Topology = "moon-base" }},
		{"zero rounds", func(p *Params) { p.Rounds = 0 }},
		{"negative interval", func(p *Params) { p.Interval = Duration(-time.Second) }},
		{"negative demand", func(p *Params) { p.Demand = -1 }},
		{"negative sigma", func(p *Params) { p.DemandSigma = -0.5 }},
		{"negative max_demands", func(p *Params) { p.MaxDemands = -2 }},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base params invalid: %v", err)
	}
	for _, tc := range cases {
		p := base
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, p)
		}
	}
}

func TestLoadParamsStrictDecode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wansimd.json")

	ok := `{"topology":"random:8","rounds":4,"interval":"1h","seed":9}`
	if err := os.WriteFile(path, []byte(ok), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadParams(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Topology != "random:8" || p.Rounds != 4 || time.Duration(p.Interval) != time.Hour || p.Seed != 9 {
		t.Fatalf("LoadParams = %+v", p)
	}
	// Unset fields were normalized to the one-shot defaults.
	if p.Policy != "all" || p.Wavelengths != 2 || p.Demand != 1.2 {
		t.Fatalf("LoadParams did not normalize defaults: %+v", p)
	}

	for _, bad := range []string{
		`{"topology":"abilene","workers":4}`, // unknown key: not a sim param
		`{"topology":"abilene",`,             // syntax error
		`{"topology":"nowhere"}`,             // fails validation
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadParams(path); err == nil {
			t.Errorf("LoadParams accepted %s", bad)
		}
	}
	if _, err := LoadParams(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadParams accepted a missing file")
	}
}

func TestParamsComparableForNoopDetection(t *testing.T) {
	a := Params{Topology: "abilene"}.Normalized()
	b := Params{Topology: "abilene"}.Normalized()
	if a != b {
		t.Fatal("identical normalized params compare unequal; no-op reload detection depends on ==")
	}
	b.Seed++
	if a == b {
		t.Fatal("different params compare equal")
	}
}
