// Package daemon implements service mode for the WAN simulation: a
// long-running reconciler loop that advances wan.Simulation rounds on
// a configurable cadence, hot-reloads its config file across
// generations, reports live service SLIs, and shuts down gracefully
// in two passes (stop intake at a round boundary, drain the in-flight
// round, flush every artifact).
//
// The package is deliberately outside the nowalltime fence: pacing,
// uptime, and round latency are wall-clock concerns of the *service*,
// never of the simulation. Every wall reading either stays local
// (pacing) or is injected into the SLI layer as a plain duration, so
// the deterministic registries never observe wall time. A daemon run
// with a fixed round budget and no config change produces stdout,
// metrics, trace, hist, and flight artifacts byte-identical to the
// equivalent one-shot rwc-wansim run: the simulation is configured
// identically, the pacing gate only decides *when* a round starts,
// and all service-mode accounting lives in the SLI layer's own
// registry.
package daemon

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/obs/hist"
	"repro/internal/obs/perf"
	"repro/internal/obs/serve"
	"repro/internal/obs/sli"
	"repro/internal/wan"
)

// StopReason says why a generation's gate stopped releasing rounds.
type StopReason int

const (
	// StopBudget: the generation ran its full round budget.
	StopBudget StopReason = iota
	// StopReload: a changed config is waiting; drain and switch.
	StopReload
	// StopSignal: graceful shutdown was requested.
	StopSignal
)

// String names the reason for lifecycle events and logs.
func (r StopReason) String() string {
	switch r {
	case StopReload:
		return "reload"
	case StopSignal:
		return "signal"
	default:
		return "budget"
	}
}

// gate paces rounds. The simulation's Pace hook blocks in allow until
// the round index has been released (ticker cadence) or the gate is
// stopped. Stopping never interrupts a round in flight — Pace is
// consulted only at round boundaries — which is what makes shutdown
// and reload drains safe: whatever was started always completes and
// is recorded before the generation ends.
type gate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	limit   int // highest released round index; all rounds ≤ limit may run
	stopped bool
	why     StopReason
}

func newGate(freeRun bool) *gate {
	g := &gate{limit: -1}
	g.cond = sync.NewCond(&g.mu)
	if freeRun {
		g.limit = int(^uint(0) >> 1)
	}
	return g
}

// allow blocks until round r is released or the gate stops; the
// return value says whether the round may run. Concurrency-safe: all
// policies share one gate, so one tick advances the whole round front.
func (g *gate) allow(r int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.stopped && r > g.limit {
		g.cond.Wait()
	}
	return !g.stopped
}

// release grants the next round index to every policy.
func (g *gate) release() {
	g.mu.Lock()
	g.limit++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// stop ends the generation at the next round boundary. The first
// reason wins; later calls cannot downgrade a signal to a reload.
func (g *gate) stop(why StopReason) {
	g.mu.Lock()
	if !g.stopped {
		g.stopped = true
		g.why = why
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// reason reports why the gate stopped (StopBudget if it never did).
func (g *gate) reason() StopReason {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.stopped {
		return StopBudget
	}
	return g.why
}

// latencies tracks per-policy round wall durations: Pace stamps the
// start after the gate admits the round, RoundHook takes the elapsed.
type latencies struct {
	mu    sync.Mutex
	start map[wan.Policy]time.Time
}

func newLatencies() *latencies {
	return &latencies{start: make(map[wan.Policy]time.Time)}
}

func (l *latencies) begin(p wan.Policy) {
	l.mu.Lock()
	l.start[p] = time.Now()
	l.mu.Unlock()
}

func (l *latencies) end(p wan.Policy) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.start[p]
	if !ok {
		return 0
	}
	delete(l.start, p)
	return time.Since(t)
}

// roundSnap is the latest completed round, published for /demandz
// admission probes.
type roundSnap struct {
	round    int
	policy   string
	capacity float64
	shipped  float64
}

// Options configures a Daemon. Every subsystem field is optional:
// nil means that subsystem is disabled, exactly like the rwc-wansim
// flags it mirrors.
type Options struct {
	// Tool names the service in lifecycle events ("rwc-wansimd").
	Tool string
	// Params is the initial simulation config (normalized+validated).
	Params Params
	// ConfigPath, when set with Poll, is watched for hot reloads.
	ConfigPath string
	// Poll is the config watch cadence (0 disables the watcher).
	Poll time.Duration
	// Tick is the round cadence: one simulation round (across every
	// policy) is released per tick. 0 = free-run, rounds advance as
	// fast as they compute — the one-shot execution profile.
	Tick time.Duration
	// Workers is the simulation fan-out width (0 = GOMAXPROCS).
	Workers int
	// Obs is the deterministic observability bundle (may be nil).
	Obs *obs.Obs
	// SLI is the service-level indicator layer (nil = disabled).
	SLI *sli.Layer
	// Flight, Hist, Perf are the optional artifact subsystems.
	Flight *flight.Recorder
	Hist   *hist.Store
	Perf   *perf.Recorder
	// Alerts are the per-round rules handed to each generation.
	Alerts []alert.Rule
	// Servers is the live operations plane to ready/drain.
	Servers []*serve.Server
	// Signals triggers graceful shutdown (and ends the tail). Nil
	// means the daemon exits as soon as the budget completes.
	Signals <-chan os.Signal
	// Stdout receives the CSV stream (defaults to os.Stdout).
	Stdout io.Writer
	// Stderr receives service progress notes (defaults to discard).
	Stderr io.Writer
	// Artifacts is flushed once, at shutdown, after the final drain.
	Artifacts Artifacts
	// Tail keeps serving after the budget completes, until a signal.
	Tail bool
}

// Daemon is the service-mode reconciler. Create with New, run with
// Run; Reload may be called concurrently (the config watcher does).
type Daemon struct {
	opts  Options
	start time.Time

	gateMu sync.Mutex
	g      *gate

	paramsMu sync.Mutex
	params   Params
	pending  *Params

	interrupted atomic.Bool
	latest      atomic.Pointer[roundSnap]
	done        chan struct{}
}

// New validates nothing beyond what Options carry — Params must
// already be Normalized and Validated (LoadParams does both).
func New(opts Options) *Daemon {
	if opts.Stdout == nil {
		opts.Stdout = os.Stdout
	}
	if opts.Stderr == nil {
		opts.Stderr = io.Discard
	}
	if opts.Tool == "" {
		opts.Tool = "rwc-wansimd"
	}
	d := &Daemon{opts: opts, params: opts.Params, done: make(chan struct{})}
	d.latest.Store(&roundSnap{round: -1})
	return d
}

// AttachServers registers the operations-plane servers for readiness
// and drain management. Must be called before Run: servers need the
// daemon's Admit closure at construction, so they cannot exist yet
// when Options are assembled.
func (d *Daemon) AttachServers(servers ...*serve.Server) {
	d.opts.Servers = append(d.opts.Servers, servers...)
}

// Admit answers a /demandz probe against the latest completed round's
// capacity/throughput snapshot. Safe to call at any time; before the
// first round completes it reports round -1 with zero headroom.
func (d *Daemon) Admit(volumes []float64) serve.AdmitResponse {
	s := d.latest.Load()
	return serve.AdmitAgainst(s.round, s.policy, s.capacity, s.shipped, volumes)
}

// Reload requests a switch to p. Identical config is a provable
// no-op: the generation gauge bumps, nothing else changes, and
// subsequent rounds are byte-identical to an un-reloaded run. A
// changed config stops the current generation at the next round
// boundary; the drained generation's rounds stay in the artifacts and
// the new one continues the sim-time axis past them.
func (d *Daemon) Reload(p Params) {
	d.paramsMu.Lock()
	same := p == d.params || (d.pending != nil && p == *d.pending)
	if !same {
		cp := p
		d.pending = &cp
	}
	d.paramsMu.Unlock()
	if same {
		d.opts.SLI.Reload(sli.ReloadNoop, "identical config")
		fmt.Fprintf(d.opts.Stderr, "%s: config reload: identical, no-op\n", d.opts.Tool)
		return
	}
	fmt.Fprintf(d.opts.Stderr, "%s: config reload: changed, draining generation\n", d.opts.Tool)
	if g := d.currentGate(); g != nil {
		g.stop(StopReload)
	}
}

// reloadFromFile loads ConfigPath; an invalid file keeps the
// last-known-good config running and only counts the failure.
func (d *Daemon) reloadFromFile() {
	p, err := LoadParams(d.opts.ConfigPath)
	if err != nil {
		d.opts.SLI.Reload(sli.ReloadFailure, err.Error())
		fmt.Fprintf(d.opts.Stderr, "%s: config reload rejected (keeping last known good): %v\n", d.opts.Tool, err)
		return
	}
	d.Reload(p)
}

func (d *Daemon) currentGate() *gate {
	d.gateMu.Lock()
	defer d.gateMu.Unlock()
	return d.g
}

func (d *Daemon) setGate(g *gate) {
	d.gateMu.Lock()
	d.g = g
	d.gateMu.Unlock()
}

// interrupt begins graceful shutdown: mark, then stop whatever
// generation is running at its next round boundary.
func (d *Daemon) interrupt() {
	d.interrupted.Store(true)
	if g := d.currentGate(); g != nil {
		g.stop(StopSignal)
	}
}

// tickCadence is the SLI heartbeat: the round tick when pacing, a
// service default otherwise.
func (d *Daemon) tickCadence() time.Duration {
	if d.opts.Tick > 0 {
		return d.opts.Tick
	}
	return 250 * time.Millisecond
}

// Run executes the reconciler loop until the budget completes or a
// signal arrives, then flushes artifacts, optionally tails, and
// drains the operations plane. It blocks for the daemon's lifetime.
func (d *Daemon) Run() error {
	d.start = time.Now()
	d.opts.SLI.Lifecycle("daemon.start", "tool="+d.opts.Tool)

	var wg sync.WaitGroup
	if d.opts.Signals != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-d.opts.Signals:
				d.interrupt()
			case <-d.done:
			}
		}()
	}
	if d.opts.ConfigPath != "" && d.opts.Poll > 0 {
		wg.Add(1)
		go d.watchConfig(&wg)
	}

	runErr := d.reconcile(&wg)

	// Two-pass shutdown, pass 2: the in-flight round already drained
	// (reconcile only returns at a round boundary), so flush every
	// artifact in the canonical order. Flush happens on every exit
	// path, including signal-initiated ones — that is the no-truncated-
	// artifacts guarantee.
	close(d.done)
	if d.opts.Obs != nil {
		if err := d.opts.Artifacts.Flush(d.opts.Obs, d.opts.Hist, d.opts.Flight, d.opts.Perf); err != nil && runErr == nil {
			runErr = err
		}
	}
	d.opts.SLI.Lifecycle("daemon.flush", "artifacts written")

	if runErr == nil && d.opts.Tail && !d.interrupted.Load() && d.opts.Signals != nil {
		fmt.Fprintf(d.opts.Stderr, "%s: budget complete; tailing until SIGINT/SIGTERM\n", d.opts.Tool)
		Tail(d.opts.Signals, nil, d.tickCadence(), func() {
			d.opts.SLI.Tick(time.Since(d.start))
		})
	}
	DrainAll(d.opts.Servers)
	d.opts.SLI.Lifecycle("daemon.stop", "interrupted="+fmt.Sprint(d.interrupted.Load()))
	wg.Wait()
	return runErr
}

// reconcile runs config generations back to back until the budget
// completes, a signal arrives, or the simulation errors.
func (d *Daemon) reconcile(wg *sync.WaitGroup) error {
	var simOffset time.Duration
	generation := 1
	for {
		if d.interrupted.Load() {
			return nil
		}
		d.paramsMu.Lock()
		params := d.params
		d.paramsMu.Unlock()

		policies, err := params.Policies()
		if err != nil {
			return err
		}
		net, err := params.Network()
		if err != nil {
			return err
		}
		cfg, err := params.SimConfig(net)
		if err != nil {
			return err
		}
		cfg.Obs = d.opts.Obs
		cfg.Workers = d.opts.Workers
		cfg.Perf = d.opts.Perf
		cfg.Alerts = d.opts.Alerts
		cfg.Flight = d.opts.Flight
		cfg.SimTimeOffset = simOffset
		if generation > 1 {
			// Generation 1 keeps the empty run label so a reload-free
			// daemon's flight log is byte-identical to the one-shot's.
			cfg.FlightRun = fmt.Sprintf("gen%d", generation)
		}

		g := newGate(d.opts.Tick <= 0)
		lat := newLatencies()
		cfg.Pace = func(p wan.Policy, r int) bool {
			if !g.allow(r) {
				return false
			}
			lat.begin(p)
			return true
		}
		cfg.RoundHook = func(p wan.Policy, m wan.RoundMetrics) {
			d.latest.Store(&roundSnap{
				round:    m.Round,
				policy:   p.String(),
				capacity: m.CapacityGbps,
				shipped:  m.ShippedGbps,
			})
			// One TE recomputation plus each applied capacity change is
			// the round's decision count — the numerator of the
			// decisions/sec SLI.
			d.opts.SLI.RoundComplete(p.String(), lat.end(p), 1+m.Changes)
		}

		sim, err := wan.NewSimulation(cfg)
		if err != nil {
			return err
		}
		d.setGate(g)
		if d.interrupted.Load() {
			// The signal raced generation setup; stop before any round.
			g.stop(StopSignal)
		}
		for _, s := range d.opts.Servers {
			s.SetReady(true)
		}

		// The pacing/SLI heartbeat for this generation. goroutine joins
		// via wg; genDone ends it when RunPolicies returns.
		genDone := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(d.tickCadence())
			defer ticker.Stop()
			for {
				select {
				case <-genDone:
					return
				case <-ticker.C:
					if d.opts.Tick > 0 {
						g.release()
					}
					d.opts.SLI.Tick(time.Since(d.start))
				}
			}
		}()

		PrintRunHeader(d.opts.Stdout, params, net)
		results, err := sim.RunPolicies(policies)
		close(genDone)
		if err != nil {
			return err
		}
		PrintResults(d.opts.Stdout, policies, results)

		switch g.reason() {
		case StopSignal:
			d.opts.SLI.Lifecycle("daemon.drain", "generation drained on signal")
			return nil
		case StopReload:
			// Advance the sim-time axis past every round this generation
			// recorded so the next generation's history timestamps stay
			// monotonic.
			completed := 0
			for _, res := range results {
				if n := len(res.Rounds); n > completed {
					completed = n
				}
			}
			simOffset = cfg.SimTimeOffset + time.Duration(completed)*cfg.RoundInterval
			d.paramsMu.Lock()
			if d.pending != nil {
				d.params = *d.pending
				d.pending = nil
			}
			d.paramsMu.Unlock()
			d.opts.SLI.Reload(sli.ReloadSuccess,
				fmt.Sprintf("generation %d drained after %d rounds", generation, completed))
			// The flight-run label counts switchovers locally; the SLI
			// generation gauge also counts no-op reloads, so the two
			// numbers may differ by design.
			generation++
			fmt.Fprintf(d.opts.Stderr, "%s: switched to config generation %d\n", d.opts.Tool, generation)
		default:
			d.opts.SLI.Lifecycle("daemon.budget", fmt.Sprintf("round budget %d complete", params.Rounds))
			return nil
		}
	}
}

// watchConfig polls ConfigPath and funnels changes through
// reloadFromFile. Polling (not inotify) keeps it portable and
// dependency-free; the cadence is the service's Poll option.
func (d *Daemon) watchConfig(wg *sync.WaitGroup) {
	defer wg.Done()
	ticker := time.NewTicker(d.opts.Poll)
	defer ticker.Stop()
	var lastMod time.Time
	var lastSize int64
	if fi, err := os.Stat(d.opts.ConfigPath); err == nil {
		lastMod, lastSize = fi.ModTime(), fi.Size()
	}
	for {
		select {
		case <-d.done:
			return
		case <-ticker.C:
			fi, err := os.Stat(d.opts.ConfigPath)
			if err != nil {
				continue
			}
			if fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
				continue
			}
			lastMod, lastSize = fi.ModTime(), fi.Size()
			d.reloadFromFile()
		}
	}
}

// Tail keeps the process alive until a signal arrives, invoking
// onTick (if any) at the given cadence, then drains servers. This is
// the one shared tail: rwc-wansim -linger is a daemon-mode shutdown
// with a zero-round tail, so both tools end a process the same way —
// readiness flips false and SSE sessions close with their undelivered
// buffers counted under cause="shutdown".
func Tail(signals <-chan os.Signal, servers []*serve.Server, cadence time.Duration, onTick func()) {
	if signals != nil {
		if onTick == nil || cadence <= 0 {
			<-signals
		} else {
			ticker := time.NewTicker(cadence)
			defer ticker.Stop()
		wait:
			for {
				select {
				case <-signals:
					break wait
				case <-ticker.C:
					onTick()
				}
			}
		}
	}
	DrainAll(servers)
}

// DrainAll gracefully drains every server: readiness flips false and
// SSE sessions end with shutdown-cause drop accounting. Nil-safe.
func DrainAll(servers []*serve.Server) {
	for _, s := range servers {
		s.Drain()
	}
}
