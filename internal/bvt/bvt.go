// Package bvt models a bandwidth variable transceiver (BVT) — the
// optical device whose reconfiguration latency §3.1 measures on a
// testbed built around an Acacia flex-rate module driven over MDIO.
//
// The model reproduces the paper's two findings:
//
//   - state-of-the-art firmware only changes modulation from a lowered
//     power state: laser off → DSP reprogram → laser on → receiver
//     relock. "The majority of this latency is associated with turning
//     the laser back on" — ~68 s average downtime (Figure 6b);
//   - keeping the laser lit while reprogramming the DSP cuts the
//     downtime to ~35 ms on average, suggesting hitless capacity
//     changes are within reach.
//
// The device exposes an MDIO register file; the Driver programs
// modulation changes through it exactly the way the testbed harness
// would, against a simulated clock.
package bvt

import (
	"fmt"
	"math"
	"time"

	"repro/internal/modulation"
	"repro/internal/rng"
)

// MDIO register addresses of the simulated transceiver.
const (
	// RegControl: bit0 = laser enable, bit1 = DSP reset.
	RegControl uint16 = 0x0000
	// RegMode: modulation format code (see formatCode).
	RegMode uint16 = 0x0001
	// RegStatus: bit0 = laser lit, bit1 = DSP ready, bit2 = rx locked.
	RegStatus uint16 = 0x0002
	// RegSNR: receiver-estimated SNR in units of 0.1 dB.
	RegSNR uint16 = 0x0003
	// RegCapability: bit0 = supports hot (laser-on) reprogram.
	RegCapability uint16 = 0x0004
)

// Control register bits.
const (
	ctrlLaserEnable uint16 = 1 << 0
	ctrlDSPReset    uint16 = 1 << 1
)

// Status register bits.
const (
	StatusLaserLit uint16 = 1 << 0
	StatusDSPReady uint16 = 1 << 1
	StatusRxLocked uint16 = 1 << 2
)

// MDIO is the management interface the driver programs the device
// through, mirroring IEEE 802.3 clause 45 access.
type MDIO interface {
	ReadReg(reg uint16) (uint16, error)
	WriteReg(reg uint16, val uint16) error
}

// LatencyModel holds the log-normal stage latencies of the device. All
// parameters are (mu, sigma) of the underlying normal in log-seconds.
type LatencyModel struct {
	// LaserDisable is the time to take the laser down gracefully.
	LaserDisableMu, LaserDisableSigma float64
	// Reprogram is the DSP/firmware reconfiguration time.
	ReprogramMu, ReprogramSigma float64
	// LaserEnable is the laser turn-on plus receiver relock time — the
	// dominant term the paper identifies.
	LaserEnableMu, LaserEnableSigma float64
	// HotReprogram is the laser-on DSP swap time (efficient path).
	HotReprogramMu, HotReprogramSigma float64
}

// DefaultLatencyModel is calibrated to Figure 6b: power-cycle changes
// average ≈68 s (dominated by laser re-enable), efficient changes
// average ≈35 ms.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		// mean = exp(mu + sigma²/2); solve mu for the target mean.
		LaserDisableMu: muForMean(1.5, 0.4), LaserDisableSigma: 0.4,
		ReprogramMu: muForMean(4.5, 0.35), ReprogramSigma: 0.35,
		LaserEnableMu: muForMean(62, 0.45), LaserEnableSigma: 0.45,
		HotReprogramMu: muForMean(0.035, 0.3), HotReprogramSigma: 0.3,
	}
}

// muForMean returns the log-normal mu that yields the given mean for
// the given sigma.
func muForMean(mean, sigma float64) float64 {
	return math.Log(mean) - sigma*sigma/2
}

// Transceiver is the simulated flex-rate module.
type Transceiver struct {
	regs    map[uint16]uint16
	ladder  *modulation.Ladder
	latency LatencyModel
	rng     *rng.Source
	// clock accumulates simulated time consumed by device operations.
	clock time.Duration
	// downSince marks when the link last went down (laser off or DSP
	// not ready); -1 when up.
	downSince time.Duration
	// downtimeAccrued accumulates link-down time.
	downtimeAccrued time.Duration
	// snrdB is the channel SNR the receiver estimates.
	snrdB float64
	// hotCapable reports firmware support for laser-on reprogramming.
	hotCapable bool
}

// Config configures a Transceiver.
type Config struct {
	Ladder  *modulation.Ladder
	Latency LatencyModel
	// InitialMode is the starting modulation (must be in the ladder).
	InitialMode modulation.Gbps
	// ChannelSNRdB is the fiber's SNR at the receiver.
	ChannelSNRdB float64
	// HotCapable enables the efficient (laser-on) reprogram path.
	HotCapable bool
	// Seed drives the latency draws.
	Seed uint64
}

// New constructs a transceiver in the Active state at the initial mode.
func New(cfg Config) (*Transceiver, error) {
	if cfg.Ladder == nil {
		cfg.Ladder = modulation.Default()
	}
	mode, ok := cfg.Ladder.ModeFor(cfg.InitialMode)
	if !ok {
		return nil, fmt.Errorf("bvt: initial mode %v Gbps not in ladder", cfg.InitialMode)
	}
	t := &Transceiver{
		regs:       make(map[uint16]uint16),
		ladder:     cfg.Ladder,
		latency:    cfg.Latency,
		rng:        rng.New(cfg.Seed),
		snrdB:      cfg.ChannelSNRdB,
		hotCapable: cfg.HotCapable,
		downSince:  -1,
	}
	if t.latency == (LatencyModel{}) {
		t.latency = DefaultLatencyModel()
	}
	t.regs[RegMode] = formatCode(mode.Format)
	t.regs[RegControl] = ctrlLaserEnable
	if cfg.HotCapable {
		t.regs[RegCapability] = 1
	}
	t.refreshStatus()
	return t, nil
}

// formatCode maps formats to register codes.
func formatCode(f modulation.Format) uint16 { return uint16(f) }

// codeFormat is the inverse of formatCode.
func codeFormat(c uint16) modulation.Format { return modulation.Format(c) }

// Clock returns accumulated simulated time.
func (t *Transceiver) Clock() time.Duration { return t.clock }

// Downtime returns accumulated link-down time.
func (t *Transceiver) Downtime() time.Duration { return t.downtimeAccrued }

// Mode returns the currently programmed mode.
func (t *Transceiver) Mode() (modulation.Mode, bool) {
	for _, m := range t.ladder.Modes() {
		if formatCode(m.Format) == t.regs[RegMode] {
			return m, true
		}
	}
	return modulation.Mode{}, false
}

// LinkUp reports whether the link is carrying traffic: laser lit, DSP
// ready, receiver locked, and SNR above the mode's threshold.
func (t *Transceiver) LinkUp() bool {
	s := t.regs[RegStatus]
	return s&StatusLaserLit != 0 && s&StatusDSPReady != 0 && s&StatusRxLocked != 0
}

// SetChannelSNR changes the fiber's SNR (e.g. an amplifier failed) and
// re-evaluates lock.
func (t *Transceiver) SetChannelSNR(db float64) {
	t.snrdB = db
	t.refreshStatus()
}

// advance consumes simulated time and accounts downtime.
func (t *Transceiver) advance(d time.Duration) {
	t.clock += d
	if t.downSince >= 0 {
		t.downtimeAccrued += d
	}
}

// markDown/markUp track link transitions against the simulated clock.
func (t *Transceiver) refreshStatus() {
	st := uint16(0)
	if t.regs[RegControl]&ctrlLaserEnable != 0 {
		st |= StatusLaserLit
	}
	if t.regs[RegControl]&ctrlDSPReset == 0 {
		st |= StatusDSPReady
	}
	// Receiver locks only when lit, ready, and SNR clears the mode's
	// threshold.
	if st&StatusLaserLit != 0 && st&StatusDSPReady != 0 {
		if m, ok := t.Mode(); ok && t.snrdB >= m.MinSNRdB {
			st |= StatusRxLocked
		}
	}
	t.regs[RegStatus] = st
	t.regs[RegSNR] = uint16(math.Max(0, t.snrdB) * 10)
	up := st&StatusLaserLit != 0 && st&StatusDSPReady != 0 && st&StatusRxLocked != 0
	if up && t.downSince >= 0 {
		t.downSince = -1
	} else if !up && t.downSince < 0 {
		t.downSince = t.clock
	}
}

// ReadReg implements MDIO.
func (t *Transceiver) ReadReg(reg uint16) (uint16, error) {
	v, ok := t.regs[reg]
	if !ok && reg > RegCapability {
		return 0, fmt.Errorf("bvt: read of unknown register 0x%04x", reg)
	}
	return v, nil
}

// WriteReg implements MDIO. Writes consume simulated time according to
// the latency model and enforce the firmware's constraints: a mode
// write with the laser lit is rejected unless the device is
// hot-capable.
func (t *Transceiver) WriteReg(reg uint16, val uint16) error {
	switch reg {
	case RegControl:
		prev := t.regs[RegControl]
		t.regs[RegControl] = val
		switch {
		case prev&ctrlLaserEnable != 0 && val&ctrlLaserEnable == 0:
			// Laser going down.
			t.refreshStatus()
			t.advance(lognormalDur(t.rng, t.latency.LaserDisableMu, t.latency.LaserDisableSigma))
		case prev&ctrlLaserEnable == 0 && val&ctrlLaserEnable != 0:
			// Laser coming up: turn-on plus receiver relock dominates.
			t.advance(lognormalDur(t.rng, t.latency.LaserEnableMu, t.latency.LaserEnableSigma))
			t.refreshStatus()
		default:
			t.refreshStatus()
		}
		return nil
	case RegMode:
		f := codeFormat(val)
		if _, err := modeForFormat(t.ladder, f); err != nil {
			return err
		}
		if t.regs[RegControl]&ctrlLaserEnable != 0 {
			if !t.hotCapable {
				return fmt.Errorf("bvt: firmware rejects modulation change with laser enabled")
			}
			// Hot path: brief traffic hit while the DSP swaps.
			t.downSince = t.clock
			t.regs[RegStatus] &^= StatusRxLocked
			t.advance(lognormalDur(t.rng, t.latency.HotReprogramMu, t.latency.HotReprogramSigma))
			t.regs[RegMode] = val
			t.refreshStatus()
			return nil
		}
		// Cold path: DSP reprogram with laser off.
		t.advance(lognormalDur(t.rng, t.latency.ReprogramMu, t.latency.ReprogramSigma))
		t.regs[RegMode] = val
		t.refreshStatus()
		return nil
	case RegStatus, RegSNR, RegCapability:
		return fmt.Errorf("bvt: register 0x%04x is read-only", reg)
	default:
		return fmt.Errorf("bvt: write to unknown register 0x%04x", reg)
	}
}

// modeForFormat finds the ladder mode with the given format.
func modeForFormat(l *modulation.Ladder, f modulation.Format) (modulation.Mode, error) {
	for _, m := range l.Modes() {
		if m.Format == f {
			return m, nil
		}
	}
	return modulation.Mode{}, fmt.Errorf("bvt: format %v not in ladder", f)
}

// lognormalDur draws a log-normal duration in seconds.
func lognormalDur(r *rng.Source, mu, sigma float64) time.Duration {
	return time.Duration(r.LogNormal(mu, sigma) * float64(time.Second))
}
