package bvt

import (
	"math"
	"testing"
	"time"

	"repro/internal/modulation"
	"repro/internal/stats"
)

func newTestTransceiver(t *testing.T, hot bool) *Transceiver {
	t.Helper()
	tr, err := New(Config{
		InitialMode:  100,
		ChannelSNRdB: 18,
		HotCapable:   hot,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewStartsUp(t *testing.T) {
	tr := newTestTransceiver(t, false)
	if !tr.LinkUp() {
		t.Fatal("fresh transceiver is down")
	}
	m, ok := tr.Mode()
	if !ok || m.Capacity != 100 {
		t.Fatalf("mode = %+v, %v", m, ok)
	}
	if tr.Downtime() != 0 || tr.Clock() != 0 {
		t.Fatal("fresh transceiver has accrued time")
	}
}

func TestNewRejectsUnknownMode(t *testing.T) {
	if _, err := New(Config{InitialMode: 33, ChannelSNRdB: 18}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestReadStatusAndSNR(t *testing.T) {
	tr := newTestTransceiver(t, false)
	st, err := tr.ReadReg(RegStatus)
	if err != nil {
		t.Fatal(err)
	}
	if st&StatusLaserLit == 0 || st&StatusDSPReady == 0 || st&StatusRxLocked == 0 {
		t.Fatalf("status = %04x", st)
	}
	snr, err := tr.ReadReg(RegSNR)
	if err != nil {
		t.Fatal(err)
	}
	if snr != 180 {
		t.Fatalf("SNR reg = %d, want 180 (18.0 dB)", snr)
	}
}

func TestWriteReadOnlyRegisters(t *testing.T) {
	tr := newTestTransceiver(t, false)
	for _, reg := range []uint16{RegStatus, RegSNR, RegCapability} {
		if err := tr.WriteReg(reg, 1); err == nil {
			t.Fatalf("write to read-only reg 0x%04x accepted", reg)
		}
	}
	if err := tr.WriteReg(0x9999, 1); err == nil {
		t.Fatal("write to unknown register accepted")
	}
	if _, err := tr.ReadReg(0x9999); err == nil {
		t.Fatal("read of unknown register accepted")
	}
}

func TestFirmwareRejectsHotModeChangeWhenNotCapable(t *testing.T) {
	tr := newTestTransceiver(t, false)
	// Laser is on; a direct mode write must be rejected by the classic
	// firmware — the §3.1 constraint.
	if err := tr.WriteReg(RegMode, formatCode(modulation.Format8QAM)); err == nil {
		t.Fatal("hot mode write accepted by non-hot-capable firmware")
	}
}

func TestModeWriteRejectsUnknownFormat(t *testing.T) {
	tr := newTestTransceiver(t, false)
	if err := tr.WriteReg(RegMode, 200); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestPowerCycleChange(t *testing.T) {
	tr := newTestTransceiver(t, false)
	drv := NewDriver(tr, nil)
	rep, err := drv.ChangeModulation(150, MethodPowerCycle)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From.Capacity != 100 || rep.To.Capacity != 150 {
		t.Fatalf("report modes: %+v", rep)
	}
	if !tr.LinkUp() {
		t.Fatal("link down after change")
	}
	m, _ := tr.Mode()
	if m.Capacity != 150 {
		t.Fatalf("mode after change = %v", m.Capacity)
	}
	// Downtime should be tens of seconds.
	if rep.Downtime < 10*time.Second || rep.Downtime > 10*time.Minute {
		t.Fatalf("power-cycle downtime = %v", rep.Downtime)
	}
}

func TestHotChange(t *testing.T) {
	tr := newTestTransceiver(t, true)
	drv := NewDriver(tr, nil)
	rep, err := drv.ChangeModulation(150, MethodHot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Downtime > time.Second {
		t.Fatalf("hot downtime = %v, want ≈ 35 ms", rep.Downtime)
	}
	if rep.Downtime <= 0 {
		t.Fatal("hot change had zero downtime — it is brief, not free")
	}
	if !tr.LinkUp() {
		t.Fatal("link down after hot change")
	}
}

func TestChangeFailsWhenSNRTooLow(t *testing.T) {
	tr, err := New(Config{InitialMode: 100, ChannelSNRdB: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(tr, nil)
	// 200 Gbps needs 15.5 dB; channel has 9 — the link must not relock.
	if _, err := drv.ChangeModulation(200, MethodPowerCycle); err == nil {
		t.Fatal("change to infeasible mode reported success")
	}
	if tr.LinkUp() {
		t.Fatal("link up at infeasible modulation")
	}
}

func TestSetChannelSNRDropsLink(t *testing.T) {
	tr := newTestTransceiver(t, false)
	tr.SetChannelSNR(2.0) // below every threshold
	if tr.LinkUp() {
		t.Fatal("link survived SNR collapse")
	}
	tr.SetChannelSNR(18)
	if !tr.LinkUp() {
		t.Fatal("link did not recover with SNR")
	}
}

func TestDriverRejectsUnknownTargets(t *testing.T) {
	tr := newTestTransceiver(t, false)
	drv := NewDriver(tr, nil)
	if _, err := drv.ChangeModulation(33, MethodPowerCycle); err == nil {
		t.Fatal("unknown capacity accepted")
	}
	if _, err := drv.ChangeModulation(150, Method(9)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestTestbedFigure6bShape(t *testing.T) {
	// The paper's experiment: 200 modulation changes; power-cycle mean
	// ≈ 68 s, hot mean ≈ 35 ms — three orders of magnitude apart.
	caps := []modulation.Gbps{100, 150, 200}
	cold, err := Testbed(Config{InitialMode: 100, ChannelSNRdB: 20, Seed: 11}, caps, 200, MethodPowerCycle)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Testbed(Config{InitialMode: 100, ChannelSNRdB: 20, Seed: 11}, caps, 200, MethodHot)
	if err != nil {
		t.Fatal(err)
	}
	coldMean := stats.Mean(DowntimesSeconds(cold))
	hotMean := stats.Mean(DowntimesSeconds(hot))
	if coldMean < 40 || coldMean > 110 {
		t.Fatalf("power-cycle mean = %v s, want ≈ 68", coldMean)
	}
	if hotMean < 0.015 || hotMean > 0.08 {
		t.Fatalf("hot mean = %v s, want ≈ 0.035", hotMean)
	}
	if ratio := coldMean / hotMean; ratio < 500 {
		t.Fatalf("cold/hot ratio = %v, want orders of magnitude", ratio)
	}
	if len(cold) != 200 || len(hot) != 200 {
		t.Fatalf("report counts: %d, %d", len(cold), len(hot))
	}
}

func TestTestbedValidation(t *testing.T) {
	caps := []modulation.Gbps{100, 150}
	if _, err := Testbed(Config{InitialMode: 100, ChannelSNRdB: 20}, caps[:1], 5, MethodHot); err == nil {
		t.Fatal("single capacity accepted")
	}
	if _, err := Testbed(Config{InitialMode: 100, ChannelSNRdB: 20}, caps, 0, MethodHot); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestTestbedDeterministic(t *testing.T) {
	caps := []modulation.Gbps{100, 150, 200}
	a, _ := Testbed(Config{InitialMode: 100, ChannelSNRdB: 20, Seed: 5}, caps, 20, MethodPowerCycle)
	b, _ := Testbed(Config{InitialMode: 100, ChannelSNRdB: 20, Seed: 5}, caps, 20, MethodPowerCycle)
	for i := range a {
		if a[i].Downtime != b[i].Downtime {
			t.Fatalf("change %d differs across runs", i)
		}
	}
}

func TestDowntimeAccountingMatchesReports(t *testing.T) {
	tr := newTestTransceiver(t, false)
	drv := NewDriver(tr, nil)
	var total time.Duration
	for _, target := range []modulation.Gbps{150, 200, 100, 125} {
		rep, err := drv.ChangeModulation(target, MethodPowerCycle)
		if err != nil {
			t.Fatal(err)
		}
		total += rep.Downtime
	}
	if tr.Downtime() != total {
		t.Fatalf("device downtime %v != sum of reports %v", tr.Downtime(), total)
	}
	if tr.Clock() < tr.Downtime() {
		t.Fatal("clock below downtime")
	}
}

func TestMethodStrings(t *testing.T) {
	if MethodPowerCycle.String() != "power-cycle" || MethodHot.String() != "hot" {
		t.Fatal("method strings wrong")
	}
	if Method(5).String() == "" {
		t.Fatal("unknown method string empty")
	}
}

func TestDefaultLatencyMeans(t *testing.T) {
	// Verify muForMean: exp(mu + sigma²/2) == mean.
	m := DefaultLatencyModel()
	if got := math.Exp(m.LaserEnableMu + m.LaserEnableSigma*m.LaserEnableSigma/2); math.Abs(got-62) > 0.1 {
		t.Fatalf("laser enable mean = %v", got)
	}
	if got := math.Exp(m.HotReprogramMu + m.HotReprogramSigma*m.HotReprogramSigma/2); math.Abs(got-0.035) > 0.001 {
		t.Fatalf("hot mean = %v", got)
	}
}

func BenchmarkPowerCycleChange(b *testing.B) {
	tr, err := New(Config{InitialMode: 100, ChannelSNRdB: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	drv := NewDriver(tr, nil)
	targets := []modulation.Gbps{150, 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := drv.ChangeModulation(targets[i%2], MethodPowerCycle); err != nil {
			b.Fatal(err)
		}
	}
}
