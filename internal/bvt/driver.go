package bvt

import (
	"fmt"
	"time"

	"repro/internal/modulation"
)

// Method selects the reconfiguration procedure.
type Method int

const (
	// MethodPowerCycle is today's firmware flow: laser off, reprogram,
	// laser on. Downtime ≈ 68 s (Figure 6b "Mod Change").
	MethodPowerCycle Method = iota
	// MethodHot reprograms the DSP with the laser lit. Downtime ≈
	// 35 ms (Figure 6b "Efficient Mod Change").
	MethodHot
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodPowerCycle:
		return "power-cycle"
	case MethodHot:
		return "hot"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ChangeReport records one modulation change as the testbed harness
// measures it.
type ChangeReport struct {
	From, To modulation.Mode
	Method   Method
	// Downtime is the traffic-affecting time of the change.
	Downtime time.Duration
	// Elapsed is total wall-clock time including management traffic.
	Elapsed time.Duration
}

// Driver programs modulation changes through an MDIO interface —
// device-agnostic, just like the testbed harness.
type Driver struct {
	dev    MDIO
	ladder *modulation.Ladder
}

// NewDriver wraps an MDIO device.
func NewDriver(dev MDIO, ladder *modulation.Ladder) *Driver {
	if ladder == nil {
		ladder = modulation.Default()
	}
	return &Driver{dev: dev, ladder: ladder}
}

// ChangeModulation reconfigures the device to the target capacity using
// the given method and reports the measured downtime. The concrete
// Transceiver tracks simulated time; for a real device the driver would
// read hardware timestamps instead.
func (d *Driver) ChangeModulation(target modulation.Gbps, method Method) (ChangeReport, error) {
	tr, ok := d.dev.(*Transceiver)
	if !ok {
		return ChangeReport{}, fmt.Errorf("bvt: driver needs a simulated Transceiver to measure time")
	}
	mode, okMode := d.ladder.ModeFor(target)
	if !okMode {
		return ChangeReport{}, fmt.Errorf("bvt: capacity %v Gbps not in ladder", target)
	}
	from, _ := tr.Mode()

	startClock := tr.Clock()
	startDown := tr.Downtime()

	switch method {
	case MethodPowerCycle:
		ctrl, err := d.dev.ReadReg(RegControl)
		if err != nil {
			return ChangeReport{}, err
		}
		// 1. Laser off.
		if err := d.dev.WriteReg(RegControl, ctrl&^ctrlLaserEnable); err != nil {
			return ChangeReport{}, err
		}
		// 2. Reprogram the DSP.
		if err := d.dev.WriteReg(RegMode, formatCode(mode.Format)); err != nil {
			return ChangeReport{}, err
		}
		// 3. Laser back on (the dominant latency).
		if err := d.dev.WriteReg(RegControl, ctrl|ctrlLaserEnable); err != nil {
			return ChangeReport{}, err
		}
	case MethodHot:
		if err := d.dev.WriteReg(RegMode, formatCode(mode.Format)); err != nil {
			return ChangeReport{}, err
		}
	default:
		return ChangeReport{}, fmt.Errorf("bvt: unknown method %v", method)
	}

	rep := ChangeReport{
		From: from, To: mode, Method: method,
		Downtime: tr.Downtime() - startDown,
		Elapsed:  tr.Clock() - startClock,
	}
	if !tr.LinkUp() {
		return rep, fmt.Errorf("bvt: link did not come back after change to %v Gbps (SNR too low?)", target)
	}
	return rep, nil
}

// Testbed reproduces the §3.1 experiment: change the modulation n times
// (cycling through the given capacities) and collect the downtime of
// each change — the sample set behind Figure 6b's CDF.
func Testbed(cfg Config, capacities []modulation.Gbps, n int, method Method) ([]ChangeReport, error) {
	if len(capacities) < 2 {
		return nil, fmt.Errorf("bvt: testbed needs at least two capacities to cycle")
	}
	if n <= 0 {
		return nil, fmt.Errorf("bvt: testbed needs n > 0 changes")
	}
	if method == MethodHot {
		cfg.HotCapable = true
	}
	tr, err := New(cfg)
	if err != nil {
		return nil, err
	}
	drv := NewDriver(tr, cfg.Ladder)
	out := make([]ChangeReport, 0, n)
	for i := 0; i < n; i++ {
		target := capacities[(i+1)%len(capacities)]
		rep, err := drv.ChangeModulation(target, method)
		if err != nil {
			return nil, fmt.Errorf("bvt: change %d: %w", i, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// DowntimesSeconds extracts the downtime samples in seconds.
func DowntimesSeconds(reports []ChangeReport) []float64 {
	out := make([]float64, len(reports))
	for i, r := range reports {
		out[i] = r.Downtime.Seconds()
	}
	return out
}
