package obs

// This file implements deterministic fan-in for the fan-out layer
// (internal/par): each unit of concurrent work records into a private
// child Obs, and the coordinator folds the children back into the
// parent in a deterministic order (always the task order, never the
// completion order). Because the registry's expositions are fully
// sorted and the tracer renumbers sequence and span ids on merge, a
// run that fans out over N workers produces byte-identical metrics and
// traces to the same run with one worker.

import (
	"math"
	"sort"
	"time"
)

// Child returns a private Obs for one unit of fan-out work. Each
// enabled sink of the parent gets a fresh child sink; the child's sim
// clock starts at the parent's current offset so spans recorded by the
// unit carry sensible timestamps before the unit's own first
// SetSimTime. The wall clock is shared (reading it is safe
// concurrently and it only feeds the manifest, which is exempt from
// the byte-identity guarantee). A nil receiver returns nil, which
// disables the child exactly like any other nil *Obs.
func (o *Obs) Child() *Obs {
	if o == nil {
		return nil
	}
	clock := NewSimClock()
	clock.Set(o.Clock.Now())
	// The child logger shares the parent's stream and level but stamps
	// lines from the child's own clock; the stream itself is exempt
	// from byte-identity (lines interleave in completion order).
	child := &Obs{Clock: clock, Wall: o.Wall, Log: o.Log.WithClock(clock)}
	if o.Metrics != nil {
		child.Metrics = NewRegistry()
		// History shards follow the fan-out tree: each child gets its
		// own shard (allocated here, serially, in task order — that
		// order is what makes the store's canonical serialization
		// worker-count-independent) stamped by the child's clock.
		// Samples land in the shared store as they are recorded, so
		// live /queryz sees fan-out work in flight; nothing is merged
		// back at Merge time.
		if sink := o.Metrics.History(); sink != nil {
			child.Metrics.SetHistory(sink.Child(clock))
		}
	}
	if o.Trace != nil {
		child.Trace = NewTracer(clock)
	}
	if o.Manifest != nil {
		child.Manifest = &Manifest{}
	}
	return child
}

// Merge folds a child Obs back into o. Callers must merge children in
// a deterministic order (task order) — the merge itself preserves
// whatever order it is handed. Merging also advances the parent's sim
// clock to the child's final offset, mirroring what serial execution
// would have left behind. Safe when either side (or any sink) is nil.
func (o *Obs) Merge(child *Obs) {
	if o == nil || child == nil {
		return
	}
	o.Metrics.Merge(child.Metrics)
	o.Trace.Merge(child.Trace)
	o.Manifest.MergePhases(child.Manifest)
	o.Manifest.MergeAlerts(child.Manifest)
	if o.Clock != nil && child.Clock != nil {
		o.Clock.Set(child.Clock.Now())
	}
}

// Merge folds every series of src into r, reproducing what recording
// directly into r would have left behind: counter totals add, gauges
// take the incoming value (serial semantics: last write wins, and the
// caller merges in task order), histograms add buckets, sum, and
// count. Families are visited in sorted order so even first-touch
// registration order is deterministic; a type conflict panics exactly
// like conflicting registration does.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	names := make([]string, 0, len(src.families))
	for name := range src.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type seriesCopy struct {
		labels  []Label
		value   float64
		count   uint64
		buckets []uint64
	}
	type familyCopy struct {
		name, help, typ string
		upper           []float64
		series          []seriesCopy
	}
	fams := make([]familyCopy, 0, len(names))
	for _, name := range names {
		f := src.families[name]
		fc := familyCopy{name: f.name, help: f.help, typ: f.typ, upper: f.upper}
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			sc := seriesCopy{labels: s.labels, value: s.load(), count: s.count.Load()}
			if f.typ == typeHistogram {
				sc.buckets = make([]uint64, len(s.bucketCounts))
				for i := range s.bucketCounts {
					sc.buckets[i] = s.bucketCounts[i].Load()
				}
			}
			fc.series = append(fc.series, sc)
		}
		fams = append(fams, fc)
	}
	src.mu.Unlock()

	for _, fc := range fams {
		for _, sc := range fc.series {
			dst := r.getSeries(fc.name, fc.help, fc.typ, fc.upper, sc.labels)
			switch fc.typ {
			case typeCounter:
				dst.addFloat(sc.value)
			case typeGauge:
				dst.bits.Store(math.Float64bits(sc.value))
			case typeHistogram:
				dst.addFloat(sc.value)
				dst.count.Add(sc.count)
				for i, b := range sc.buckets {
					if i < len(dst.bucketCounts) {
						dst.bucketCounts[i].Add(b)
					}
				}
			}
		}
	}
}

// Merge appends src's events to t, renumbering sequence numbers to
// continue t's order and offsetting span ids past t's so begin/end
// pairs stay linked and ids stay unique. Timestamps are kept exactly
// as the child recorded them.
func (t *Tracer) Merge(src *Tracer) {
	if t == nil || src == nil {
		return
	}
	events := src.Events()
	src.mu.Lock()
	srcSpans := src.nextSpan
	src.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	base := t.nextSpan
	for _, e := range events {
		if e.Span != 0 {
			e.Span += base
		}
		e.Seq = len(t.events) + 1
		t.events = append(t.events, e)
		// Live subscribers of the parent see fan-out work when it merges
		// back (task order), matching what the JSONL artifact records.
		t.publishLocked(e)
	}
	t.nextSpan += srcSpans
}

// MergePhases appends src's timed phases to m in their recorded order.
// Only phases and alerts transfer (see MergeAlerts): tool identity,
// seed, and options belong to the parent run.
func (m *Manifest) MergePhases(src *Manifest) {
	if m == nil || src == nil {
		return
	}
	for _, p := range src.Phases() {
		m.AddPhase(p.Name, time.Duration(p.WallNs))
	}
}

// MergeAlerts appends src's alert summaries to m in their recorded
// order (the fan-out coordinator merges children in task order, so the
// combined summary is deterministic).
func (m *Manifest) MergeAlerts(src *Manifest) {
	if m == nil || src == nil {
		return
	}
	for _, a := range src.Alerts() {
		m.AddAlert(a)
	}
}
