package obs

// The disabled-observability benchmarks guard the tentpole's "no
// measurable overhead" promise: a nil *Obs must cost a nil check per
// call site, so wiring obs through the solver-adjacent layers cannot
// slow the BenchmarkFigure* paths when no sink is attached.

import (
	"testing"
	"time"
)

func BenchmarkDisabledCounter(b *testing.B) {
	var o *Obs
	c := o.Counter("x_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(2)
	}
}

func BenchmarkDisabledEvent(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Event("order")
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		end := o.Span("round")
		end()
	}
}

func BenchmarkDisabledPhaseTimer(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		done := o.PhaseTimer("p")
		done()
	}
}

func BenchmarkDisabledSimTime(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.SetSimTime(time.Duration(i))
	}
}

// The BenchmarkHistoryOff* pair guards the history hook's own
// disabled state: with no sink attached the wrappers carry a nil
// HistorySeries, so metrics-enabled runs without -hist-out pay exactly
// one nil check per observation over the plain enabled path.

func BenchmarkHistoryOffGaugeSet(b *testing.B) {
	o := New("bench")
	g := o.Gauge("x_db", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistoryOffCounterAdd(b *testing.B) {
	o := New("bench")
	c := o.Counter("x_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	o := New("bench")
	c := o.Counter("x_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	o := New("bench")
	h := o.Histogram("h_seconds", "", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 10)
	}
}
