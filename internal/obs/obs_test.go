package obs

import (
	"testing"
	"time"
)

// TestNilObsIsFullyDisabled exercises every helper through a nil *Obs:
// the contract that lets instrumented packages call unconditionally.
func TestNilObsIsFullyDisabled(t *testing.T) {
	var o *Obs
	o.SetSimTime(time.Hour)
	o.Counter("c", "").Inc()
	o.Gauge("g", "").Set(1)
	o.Histogram("h", "", []float64{1}).Observe(1)
	o.Event("e", A("k", 1))
	end := o.Span("s")
	if end == nil {
		t.Fatal("Span returned nil func")
	}
	end()
	done := o.PhaseTimer("p")
	if done == nil {
		t.Fatal("PhaseTimer returned nil func")
	}
	done()
	o.FinishManifest()
}

func TestObsBundleEndToEnd(t *testing.T) {
	o := New("test-tool")
	o.SetSimTime(30 * time.Minute)
	o.Counter("orders_total", "orders", L("kind", "upgrade")).Inc()
	end := o.Span("round", A("round", 0))
	o.Event("order", A("edge", 1))
	end()
	o.FinishManifest()
	if got := o.Trace.Len(); got != 3 {
		t.Fatalf("trace has %d events, want 3", got)
	}
	evs := o.Trace.Events()
	if evs[0].T != 30*time.Minute {
		t.Fatalf("sim time not applied: %v", evs[0].T)
	}
	totals := o.Metrics.Totals()
	if totals[`orders_total{kind="upgrade"}`] != 1 {
		t.Fatalf("totals = %v", totals)
	}
}

// TestPhaseTimerUsesInjectedWallClock proves manifest durations come
// from the injected clock, not any clock this package owns.
func TestPhaseTimerUsesInjectedWallClock(t *testing.T) {
	fake := NewSimClock()
	o := New("test-tool")
	o.Wall = fake
	done := o.PhaseTimer("phase-a")
	fake.Set(250 * time.Millisecond)
	done()
	phases := o.Manifest.Phases()
	if len(phases) != 1 || phases[0].Name != "phase-a" || phases[0].WallNs != 250*1e6 {
		t.Fatalf("phases = %+v", phases)
	}
}

func TestClockFunc(t *testing.T) {
	var c Clock = ClockFunc(func() time.Duration { return 42 })
	if c.Now() != 42 {
		t.Fatal("ClockFunc not forwarded")
	}
	var sc *SimClock
	sc.Set(time.Second) // nil-safe
	if sc.Now() != 0 {
		t.Fatal("nil SimClock not zero")
	}
}
