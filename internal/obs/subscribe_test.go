package obs

import (
	"fmt"
	"sync"
	"testing"
)

// drain empties everything currently buffered on the subscription.
func drain(sub *Subscription) []Event {
	var out []Event
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return out
			}
			out = append(out, e)
		default:
			return out
		}
	}
}

func TestSubscribeNilTracer(t *testing.T) {
	var tr *Tracer
	backlog, sub := tr.Subscribe(4)
	if backlog != nil || sub != nil {
		t.Fatal("nil tracer should return nil backlog and subscription")
	}
	sub.Close()
	if sub.Dropped() != 0 {
		t.Fatal("nil subscription Dropped should be 0")
	}
}

func TestSubscribeMidRunSeesEveryEventOnce(t *testing.T) {
	tr := NewTracer(nil)
	for i := 0; i < 5; i++ {
		tr.Event("early", A("i", i))
	}
	backlog, sub := tr.Subscribe(64)
	defer sub.Close()
	if len(backlog) != 5 {
		t.Fatalf("backlog = %d events, want 5", len(backlog))
	}
	for i := 5; i < 12; i++ {
		tr.Event("late", A("i", i))
	}
	live := drain(sub)
	seqs := make([]int, 0, len(backlog)+len(live))
	for _, e := range append(backlog, live...) {
		seqs = append(seqs, e.Seq)
	}
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("gap or duplicate: seqs=%v", seqs)
		}
	}
	if len(seqs) != 12 {
		t.Fatalf("saw %d events, want 12", len(seqs))
	}
	if sub.Dropped() != 0 {
		t.Fatalf("unexpected drops: %d", sub.Dropped())
	}
}

func TestSlowConsumerDropPolicyIsDeterministic(t *testing.T) {
	tr := NewTracer(nil)
	_, sub := tr.Subscribe(3)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		tr.Event("e", A("i", i))
	}
	// Drop-newest: exactly the first 3 events are buffered, the last 7
	// dropped — same outcome on every run.
	if got := sub.Dropped(); got != 7 {
		t.Fatalf("Dropped = %d, want 7", got)
	}
	buffered := drain(sub)
	if len(buffered) != 3 {
		t.Fatalf("buffered %d events, want 3", len(buffered))
	}
	for i, e := range buffered {
		if e.Seq != i+1 {
			t.Fatalf("delivered stream is not a prefix: event %d has seq %d", i, e.Seq)
		}
	}
}

func TestSubscribeUnderConcurrentWrites(t *testing.T) {
	tr := NewTracer(nil)
	const writers, perWriter = 8, 100
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				tr.Event(fmt.Sprintf("w%d", w), A("i", i))
			}
		}(w)
	}
	// Join mid-run: subscribe after the writers are poised, with a
	// buffer large enough that nothing drops.
	backlog, sub := tr.Subscribe(writers * perWriter)
	defer sub.Close()
	close(start)
	wg.Wait()
	total := len(backlog) + len(drain(sub)) + int(sub.Dropped())
	if total != writers*perWriter {
		t.Fatalf("backlog+live+dropped = %d, want %d", total, writers*perWriter)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("buffer was large enough; drops = %d", sub.Dropped())
	}
}

func TestCloseUnsubscribes(t *testing.T) {
	tr := NewTracer(nil)
	_, sub := tr.Subscribe(1)
	sub.Close()
	sub.Close() // idempotent
	tr.Event("after-close")
	if sub.Dropped() != 0 {
		t.Fatal("events after Close must not count as drops")
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel should be closed")
	}
	if tr.Len() != 1 {
		t.Fatal("tracer itself keeps recording")
	}
}

func TestMergePublishesToParentSubscribers(t *testing.T) {
	parent := NewTracer(nil)
	parent.Event("p1")
	_, sub := parent.Subscribe(16)
	defer sub.Close()
	child := NewTracer(nil)
	child.Event("c1")
	child.Begin("c-span").End()
	parent.Merge(child)
	live := drain(sub)
	if len(live) != 3 {
		t.Fatalf("subscriber saw %d merged events, want 3", len(live))
	}
	if live[0].Name != "c1" || live[0].Seq != 2 {
		t.Fatalf("merged event not renumbered for subscriber: %+v", live[0])
	}
}
