// Package olog is the structured, leveled logger for the live
// operations plane: logfmt-style key=value lines on an io.Writer,
// timestamped from an injected clock so simulation packages can log
// without touching the wall clock (the nowalltime lint rule covers
// this package too).
//
// Logs are a *live stream*, not a run artifact: they go to stderr (or
// wherever the cmd layer points them) and are exempt from the
// byte-identity guarantee that covers metrics and traces — under
// -workers fan-out, lines from concurrent units interleave in
// completion order. Each individual line is still deterministic: the
// sim-time stamp and every value are derived from simulation state.
//
// Like the rest of internal/obs, a nil *Logger is the disabled state:
// every method is nil-receiver-safe, so instrumented packages log
// unconditionally and pay a nil check when logging is off.
package olog

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	// LevelDebug is per-round / per-order detail.
	LevelDebug Level = iota - 1
	// LevelInfo is run milestones (policy start/finish, figure done).
	LevelInfo
	// LevelWarn is recoverable oddities worth an operator's glance.
	LevelWarn
	// LevelError is failures the run surfaces to the user anyway.
	LevelError
	// LevelOff disables every record.
	LevelOff
)

// String names the level the way the log lines spell it.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel maps a flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none", "":
		return LevelOff, nil
	default:
		return LevelOff, fmt.Errorf("olog: unknown level %q (debug, info, warn, error, off)", s)
	}
}

// Clock supplies timestamps as offsets from an implementation-defined
// epoch. It is structurally identical to obs.Clock, so an *obs.SimClock
// plugs in directly; cmd/ may inject a wall-backed clock instead.
type Clock interface {
	Now() time.Duration
}

// Logger writes logfmt lines. Derived loggers (With, WithClock) share
// the writer and mutex of their parent, so one stream stays
// line-atomic however many components log to it.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level Level
	clock Clock
	attrs string // pre-rendered bound context, "" or " k=v k=v"
}

// New returns a logger writing records at or above level to w.
func New(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level}
}

// WithClock returns a derived logger stamping each line with the
// clock's offset (rendered as a Go duration, e.g. sim=18h0m0s). The
// simulation layer binds the run's *obs.SimClock; a nil clock removes
// the stamp.
func (l *Logger) WithClock(c Clock) *Logger {
	if l == nil {
		return nil
	}
	cp := *l
	cp.clock = c
	return &cp
}

// With returns a derived logger with key/value pairs bound to every
// record (rendered after msg, before per-call pairs).
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil || len(kvs) == 0 {
		return l
	}
	cp := *l
	var b strings.Builder
	b.WriteString(l.attrs)
	appendKVs(&b, kvs)
	cp.attrs = b.String()
	return &cp
}

// Enabled reports whether records at the given level would be written.
// Hot call sites guard expensive attribute construction with it.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && l.w != nil && level >= l.level && l.level < LevelOff
}

// Debug logs per-round / per-decision detail.
func (l *Logger) Debug(msg string, kvs ...any) { l.log(LevelDebug, msg, kvs) }

// Info logs run milestones.
func (l *Logger) Info(msg string, kvs ...any) { l.log(LevelInfo, msg, kvs) }

// Warn logs recoverable oddities.
func (l *Logger) Warn(msg string, kvs ...any) { l.log(LevelWarn, msg, kvs) }

// Error logs failures.
func (l *Logger) Error(msg string, kvs ...any) { l.log(LevelError, msg, kvs) }

func (l *Logger) log(level Level, msg string, kvs []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("level=")
	b.WriteString(level.String())
	if l.clock != nil {
		b.WriteString(" sim=")
		b.WriteString(l.clock.Now().String())
	}
	b.WriteString(" msg=")
	b.WriteString(formatValue(msg))
	b.WriteString(l.attrs)
	appendKVs(&b, kvs)
	b.WriteByte('\n')
	l.mu.Lock()
	// Best-effort stream: a failed log write must not fail the run.
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// appendKVs renders pairs as " k=v"; a trailing key without a value
// renders as k=(missing) rather than being dropped silently.
func appendKVs(b *strings.Builder, kvs []any) {
	for i := 0; i < len(kvs); i += 2 {
		key, ok := kvs[i].(string)
		if !ok {
			key = fmt.Sprint(kvs[i])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		if i+1 < len(kvs) {
			b.WriteString(formatValue(kvs[i+1]))
		} else {
			b.WriteString("(missing)")
		}
	}
}

// formatValue renders one value deterministically: shortest-form
// floats (matching the metrics exposition), bare tokens unquoted,
// anything with spaces, quotes, or '=' quoted.
func formatValue(v any) string {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	case time.Duration:
		s = x.String()
	case fmt.Stringer:
		s = x.String()
	case error:
		s = x.Error()
	default:
		s = fmt.Sprint(v)
	}
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
