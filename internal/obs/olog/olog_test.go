package olog

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

type fixedClock time.Duration

func (c fixedClock) Now() time.Duration { return time.Duration(c) }

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Debug("a")
	l.Info("b", "k", 1)
	l.Warn("c")
	l.Error("d")
	if l.With("k", "v") != nil {
		t.Fatal("With on nil logger should stay nil")
	}
	if l.WithClock(fixedClock(0)) != nil {
		t.Fatal("WithClock on nil logger should stay nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must not report enabled")
	}
}

func TestLevelsFilter(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Debug("hidden")
	l.Info("shown")
	l.Warn("also")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug leaked through info level: %q", out)
	}
	if !strings.Contains(out, "level=info msg=shown") || !strings.Contains(out, "level=warn msg=also") {
		t.Fatalf("missing expected lines: %q", out)
	}
	if New(&buf, LevelOff).Enabled(LevelError) {
		t.Fatal("LevelOff must disable even error records")
	}
}

func TestLineFormat(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelDebug).WithClock(fixedClock(90 * time.Minute))
	l.Info("round complete", "policy", "dynamic", "round", 3, "shipped", 123.5, "quoted", `a "b" c`, "empty", "")
	got := buf.String()
	want := `level=info sim=1h30m0s msg="round complete" policy=dynamic round=3 shipped=123.5 quoted="a \"b\" c" empty=""` + "\n"
	if got != want {
		t.Fatalf("line mismatch:\n got %q\nwant %q", got, want)
	}
}

func TestWithBindsContext(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelDebug).With("tool", "wansim").With("policy", "dynamic")
	l.Debug("x", "round", 1)
	want := "level=debug msg=x tool=wansim policy=dynamic round=1\n"
	if got := buf.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestDanglingKeyIsVisible(t *testing.T) {
	var buf bytes.Buffer
	New(&buf, LevelDebug).Info("m", "orphan")
	if !strings.Contains(buf.String(), "orphan=(missing)") {
		t.Fatalf("dangling key should render explicitly: %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff, "": LevelOff,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel should reject unknown levels")
	}
}

// TestConcurrentLinesStayAtomic hammers one logger from many
// goroutines and asserts no line is torn (every line parses back to
// the fixed shape).
func TestConcurrentLinesStayAtomic(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelDebug)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := l.With("worker", g)
			for i := 0; i < 200; i++ {
				sub.Info("tick", "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "level=info msg=tick worker=") || !strings.Contains(ln, " i=") {
			t.Fatalf("torn or malformed line: %q", ln)
		}
	}
}
