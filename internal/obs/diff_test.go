package obs

import (
	"math"
	"strings"
	"testing"
)

func TestDiffTotalsEmptyOnEqual(t *testing.T) {
	a := map[string]float64{"x": 1, "y{l=\"v\"}": 2.5}
	if d := DiffTotals(a, map[string]float64{"y{l=\"v\"}": 2.5, "x": 1}, 0); len(d) != 0 {
		t.Fatalf("equal maps diffed: %v", d)
	}
}

func TestDiffTotalsReportsAllThreeKinds(t *testing.T) {
	a := map[string]float64{"only_a": 1, "both_same": 5, "both_diff": 10}
	b := map[string]float64{"only_b": 2, "both_same": 5, "both_diff": 11}
	d := DiffTotals(a, b, 0)
	if len(d) != 3 {
		t.Fatalf("want 3 entries, got %d: %v", len(d), d)
	}
	// Sorted key order: both_diff, only_a, only_b.
	if d[0].Key != "both_diff" || !d[0].InA || !d[0].InB || d[0].A != 10 || d[0].B != 11 {
		t.Fatalf("entry 0 = %+v", d[0])
	}
	if d[1].Key != "only_a" || !d[1].InA || d[1].InB {
		t.Fatalf("entry 1 = %+v", d[1])
	}
	if d[2].Key != "only_b" || d[2].InA || !d[2].InB {
		t.Fatalf("entry 2 = %+v", d[2])
	}
	if !strings.HasPrefix(d[1].String(), "- only in a: only_a") ||
		!strings.HasPrefix(d[2].String(), "+ only in b: only_b") ||
		!strings.HasPrefix(d[0].String(), "~ both_diff: a=10 b=11") {
		t.Fatalf("render wrong: %q / %q / %q", d[0], d[1], d[2])
	}
}

func TestDiffTotalsTolerance(t *testing.T) {
	a := map[string]float64{"v": 100}
	b := map[string]float64{"v": 100.4}
	if d := DiffTotals(a, b, 0.5); len(d) != 0 {
		t.Fatalf("within tolerance but diffed: %v", d)
	}
	if d := DiffTotals(a, b, 0.1); len(d) != 1 {
		t.Fatalf("beyond tolerance but clean: %v", d)
	}
}

func TestDiffTotalsSpecialValues(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	if d := DiffTotals(map[string]float64{"n": nan}, map[string]float64{"n": nan}, 0); len(d) != 0 {
		t.Fatalf("NaN==NaN should hold for diffing: %v", d)
	}
	if d := DiffTotals(map[string]float64{"n": nan}, map[string]float64{"n": 1}, 1e18); len(d) != 1 {
		t.Fatal("NaN vs number must diff regardless of tolerance")
	}
	if d := DiffTotals(map[string]float64{"i": inf}, map[string]float64{"i": inf}, 0); len(d) != 0 {
		t.Fatalf("+Inf==+Inf should hold: %v", d)
	}
	if d := DiffTotals(map[string]float64{"i": inf}, map[string]float64{"i": -inf}, 1e18); len(d) != 1 {
		t.Fatal("+Inf vs -Inf must diff")
	}
}

func TestManifestTotalsFlattens(t *testing.T) {
	doc := `{
	  "tool": "rwc-wansim",
	  "go_version": "go1.22.0",
	  "seed": 2017,
	  "phases": [{"name": "p", "wall_ns": 123}],
	  "alerts": [
	    {"rule": "snr_dip", "series": "policy=\"dynamic\"", "severity": "critical",
	     "fires": 1, "resolves": 1, "first_fire_ns": 151200000000000, "last_fire_ns": 151200000000000}
	  ],
	  "metric_totals": {"wan_rounds_total{policy=\"dynamic\"}": 12}
	}`
	got, err := ManifestTotals(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"seed": 2017,
		`metric:wan_rounds_total{policy="dynamic"}`:     12,
		`alert:snr_dip{policy="dynamic"}:fires`:         1,
		`alert:snr_dip{policy="dynamic"}:resolves`:      1,
		`alert:snr_dip{policy="dynamic"}:first_fire_ns`: 151200000000000,
		`alert:snr_dip{policy="dynamic"}:last_fire_ns`:  151200000000000,
		`alert:snr_dip{policy="dynamic"}:active_at_end`: 0,
	}
	if d := DiffTotals(got, want, 0); len(d) != 0 {
		t.Fatalf("manifest flattening wrong: %v", d)
	}
	// Wall-clock phases must not appear: two otherwise identical runs
	// always differ there.
	for k := range got {
		if strings.Contains(k, "phase") || strings.Contains(k, "wall") {
			t.Fatalf("wall-clock key %s leaked into manifest totals", k)
		}
	}
}

func TestManifestTotalsRejectsGarbage(t *testing.T) {
	if _, err := ManifestTotals(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error for non-JSON manifest")
	}
}
