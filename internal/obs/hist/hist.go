// Package hist is the deterministic in-process time-series store
// behind the metrics-history plane: per-series ring buffers keyed by
// (name, labels) holding sim-time-stamped samples, with configurable
// retention, a downsampling tier (raw samples that age out of the ring
// fold into per-N-sample min/max/mean/last blocks), a small query
// engine (range select, rate/delta, quantile-over-window, min/max/avg
// aggregations — see query.go), and canonical binary + JSONL
// serialization (see archive.go and codec.go).
//
// The paper's whole argument is about *time-series* behaviour — SNR is
// stable for months and then dips for minutes (§2.3), and failures
// become short capacity flaps — so the operations plane needs to answer
// "what was wan_snr_min_db over rounds 1200–1500?" rather than only
// exposing point-in-time snapshots.
//
// Determinism under fan-out is the design constraint that shapes the
// layout. The store is shared by every Obs in a run, but each fan-out
// child records into its own *shard*, identified by its path in the
// fan-out tree ([] for the root, [k] for the root's k-th child, and so
// on). Shards are allocated serially in task order (obs.Child is only
// called from deterministic pre-dispatch loops), and within one shard
// every series has a single writer, so the per-(series, shard) sample
// sequence is identical for every -workers count. Queries and archives
// merge one series' shard sequences by (timestamp, shard path) — a
// canonical order — which makes the serialized artifacts byte-identical
// across worker counts while live queries still see work in flight.
//
// Like every obs sink, the zero/nil state is disabled: the registry
// hook costs one nil check per observation when no store is attached.
package hist

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Defaults for Options fields left zero.
const (
	// DefaultRetain is the raw-ring depth per series: at the default
	// 6-hour round cadence this is nearly 3 years of rounds, so
	// downsampling only engages on very long or very chatty runs.
	DefaultRetain = 4096
	// DefaultDownsampleEvery folds this many evicted raw samples into
	// one min/max/mean/last block.
	DefaultDownsampleEvery = 8
	// DefaultRetainBlocks is the downsampled-block ring depth.
	DefaultRetainBlocks = 1024
	// DefaultMaxSeries is the per-shard series admission budget — the
	// history analogue of the flight recorder's -flight-links budget.
	DefaultMaxSeries = 512
)

// Options tunes a Store.
type Options struct {
	// Retain is the raw samples kept per series before the oldest fold
	// into the downsample tier (0 = DefaultRetain, negative = 1).
	Retain int
	// DownsampleEvery is how many evicted raw samples make one
	// downsampled block (0 = DefaultDownsampleEvery, negative
	// disables the tier: evicted samples are discarded).
	DownsampleEvery int
	// RetainBlocks is the downsampled-block ring depth per series
	// (0 = DefaultRetainBlocks).
	RetainBlocks int
	// MaxSeries is the per-shard series admission budget, decided in
	// each shard's first-touch order (deterministic: one writer per
	// shard). Denied series are counted, never stored. 0 =
	// DefaultMaxSeries; negative = unlimited.
	MaxSeries int
	// Tool and Seed identify the producing run in archive headers.
	Tool string
	Seed uint64
}

// normalized fills defaults.
func (o Options) normalized() Options {
	if o.Retain == 0 {
		o.Retain = DefaultRetain
	}
	if o.Retain < 0 {
		o.Retain = 1
	}
	if o.DownsampleEvery == 0 {
		o.DownsampleEvery = DefaultDownsampleEvery
	}
	if o.RetainBlocks <= 0 {
		o.RetainBlocks = DefaultRetainBlocks
	}
	if o.MaxSeries == 0 {
		o.MaxSeries = DefaultMaxSeries
	}
	return o
}

// Block is one downsampled tier entry: the min/max/mean/last digest of
// DownsampleEvery consecutive raw samples that aged out of the ring.
type Block struct {
	StartNs int64   `json:"start_ns"`
	EndNs   int64   `json:"end_ns"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	Last    float64 `json:"last"`
	Count   uint64  `json:"count"`
}

// Store is the shared time-series store for one run. All methods are
// safe for concurrent use; a nil *Store is the disabled state.
type Store struct {
	mu      sync.Mutex
	opt     Options
	root    *Shard
	shards  []*Shard
	dropped int // series denied by per-shard budgets, store-wide
}

// New builds a store with one root shard.
func New(opt Options) *Store {
	st := &Store{opt: opt.normalized()}
	st.root = &Shard{
		store:  st,
		budget: st.opt.MaxSeries,
		series: make(map[string]*bucket),
		denied: make(map[string]bool),
	}
	st.shards = []*Shard{st.root}
	return st
}

// Root returns the store's root shard (the one the run's top-level
// registry binds). Nil-safe.
func (st *Store) Root() *Shard {
	if st == nil {
		return nil
	}
	return st.root
}

// Options returns the store's normalized options (archive headers
// embed them).
func (st *Store) Options() Options {
	if st == nil {
		return Options{}
	}
	return st.opt
}

// Dropped reports how many series the per-shard budgets denied.
func (st *Store) Dropped() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dropped
}

// Shard is one fan-out node's private slice of the store. Every series
// written through a shard has a single writer (the fan-out unit the
// shard belongs to), which is what makes per-shard sample order
// deterministic.
type Shard struct {
	store     *Store
	path      []int
	nextChild int
	budget    int // per-shard admission budget; negative = unlimited
	series    map[string]*bucket
	denied    map[string]bool
}

// NewChild allocates the shard's next child, in call order. Callers
// must allocate children deterministically (obs.Child is invoked from
// serial pre-dispatch loops).
func (sh *Shard) NewChild() *Shard {
	if sh == nil {
		return nil
	}
	st := sh.store
	st.mu.Lock()
	defer st.mu.Unlock()
	child := &Shard{
		store:  st,
		path:   append(append([]int(nil), sh.path...), sh.nextChild),
		budget: st.opt.MaxSeries,
		series: make(map[string]*bucket),
		denied: make(map[string]bool),
	}
	sh.nextChild++
	st.shards = append(st.shards, child)
	return child
}

// SetBudget overrides the shard's series admission budget (negative =
// unlimited). The flight recorder's shard runs unlimited: its own
// MaxLinks budget already bounds cardinality deterministically.
func (sh *Shard) SetBudget(n int) {
	if sh == nil {
		return
	}
	sh.store.mu.Lock()
	sh.budget = n
	sh.store.mu.Unlock()
}

// Bind wraps the shard as an obs.HistorySink stamping appends with
// clock. A nil shard yields a nil sink (history disabled).
func (sh *Shard) Bind(clock obs.Clock) obs.HistorySink {
	if sh == nil {
		return nil
	}
	return sink{sh: sh, clock: clock}
}

// Handle is a direct append handle with caller-supplied timestamps —
// the flight recorder computes round × interval itself instead of
// reading a clock.
type Handle struct {
	sh *Shard
	b  *bucket
}

// Series resolves a direct handle for one series (a no-op handle when
// the budget denies it).
func (sh *Shard) Series(name string, labels []obs.Label, typ string) Handle {
	if sh == nil {
		return Handle{}
	}
	b := sh.handle(name, labels, typ)
	return Handle{sh: sh, b: b}
}

// AppendAt records one sample at an explicit simulation offset.
func (h Handle) AppendAt(t time.Duration, v float64) {
	if h.b == nil {
		return
	}
	st := h.sh.store
	st.mu.Lock()
	h.b.append(st.opt, obs.Sample{T: t, V: v})
	st.mu.Unlock()
}

// handle registers (or fetches) the shard's bucket for a series,
// enforcing the admission budget. Returns nil when denied.
func (sh *Shard) handle(name string, labels []obs.Label, typ string) *bucket {
	st := sh.store
	st.mu.Lock()
	defer st.mu.Unlock()
	key := Key(name, labels)
	b, ok := sh.series[key]
	if ok {
		return b
	}
	if sh.budget >= 0 && len(sh.series) >= sh.budget {
		if !sh.denied[key] {
			sh.denied[key] = true
			st.dropped++
		}
		return nil
	}
	b = &bucket{name: name, labels: canonLabels(labels), typ: typ, key: key, path: sh.path}
	sh.series[key] = b
	return b
}

// sink implements obs.HistorySink over one shard + clock.
type sink struct {
	sh    *Shard
	clock obs.Clock
}

func (s sink) Series(name string, labels []obs.Label, typ string) obs.HistorySeries {
	return clockSeries{sh: s.sh, b: s.sh.handle(name, labels, typ), clock: s.clock}
}

func (s sink) Child(clock obs.Clock) obs.HistorySink {
	return sink{sh: s.sh.NewChild(), clock: clock}
}

// clockSeries implements obs.HistorySeries: appends stamp the sink's
// clock; a nil bucket (budget-denied) no-ops.
type clockSeries struct {
	sh    *Shard
	b     *bucket
	clock obs.Clock
}

func (c clockSeries) Append(v float64) {
	if c.b == nil {
		return
	}
	var t time.Duration
	if c.clock != nil {
		t = c.clock.Now()
	}
	st := c.sh.store
	st.mu.Lock()
	c.b.append(st.opt, obs.Sample{T: t, V: v})
	st.mu.Unlock()
}

func (c clockSeries) Window(from, to time.Duration) []obs.Sample {
	if c.b == nil {
		return nil
	}
	st := c.sh.store
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []obs.Sample
	c.b.eachRaw(func(s obs.Sample) {
		if s.T > from && s.T <= to {
			out = append(out, s)
		}
	})
	return out
}

// bucket is one series' storage inside one shard: the raw ring plus
// the downsample tier. All access is under the store mutex.
type bucket struct {
	name   string
	labels []obs.Label // canonically sorted
	typ    string
	key    string
	path   []int // owning shard path (canonical merge order)

	total uint64 // lifetime appends

	raw     []obs.Sample // ring; raw[rawHead] is oldest once full
	rawHead int

	pend       Block // accumulating downsample block
	pendN      int
	pendSum    float64
	blocks     []Block // ring; blocks[blocksHead] is oldest once full
	blocksHead int
}

// append records one sample, evicting (and folding) the oldest raw
// sample when the ring is full.
func (b *bucket) append(opt Options, s obs.Sample) {
	b.total++
	if len(b.raw) < opt.Retain {
		b.raw = append(b.raw, s)
		return
	}
	old := b.raw[b.rawHead]
	b.raw[b.rawHead] = s
	b.rawHead = (b.rawHead + 1) % len(b.raw)
	b.fold(opt, old)
}

// fold accumulates one evicted raw sample into the pending downsample
// block, sealing the block every DownsampleEvery samples.
func (b *bucket) fold(opt Options, s obs.Sample) {
	if opt.DownsampleEvery < 0 {
		return
	}
	if b.pendN == 0 {
		b.pend = Block{StartNs: s.T.Nanoseconds(), Min: s.V, Max: s.V}
		b.pendSum = 0
	}
	b.pendN++
	b.pendSum += s.V
	if s.V < b.pend.Min {
		b.pend.Min = s.V
	}
	if s.V > b.pend.Max {
		b.pend.Max = s.V
	}
	b.pend.EndNs = s.T.Nanoseconds()
	b.pend.Last = s.V
	b.pend.Count = uint64(b.pendN)
	if b.pendN >= opt.DownsampleEvery {
		b.pend.Mean = b.pendSum / float64(b.pendN)
		b.pushBlock(opt, b.pend)
		b.pendN = 0
	}
}

func (b *bucket) pushBlock(opt Options, blk Block) {
	if len(b.blocks) < opt.RetainBlocks {
		b.blocks = append(b.blocks, blk)
		return
	}
	b.blocks[b.blocksHead] = blk
	b.blocksHead = (b.blocksHead + 1) % len(b.blocks)
}

// eachRaw visits the retained raw samples oldest-first.
func (b *bucket) eachRaw(f func(obs.Sample)) {
	n := len(b.raw)
	for i := 0; i < n; i++ {
		f(b.raw[(b.rawHead+i)%n])
	}
}

// eachBlock visits the retained downsampled blocks oldest-first.
func (b *bucket) eachBlock(f func(Block)) {
	n := len(b.blocks)
	for i := 0; i < n; i++ {
		f(b.blocks[(b.blocksHead+i)%n])
	}
}

// seriesView is one series' canonical cross-shard merge: per-shard
// sequences interleaved by (timestamp, shard path), the order every
// query and archive shares.
type seriesView struct {
	name    string
	labels  []obs.Label
	typ     string
	key     string
	total   uint64
	samples []obs.Sample
	blocks  []Block
}

// pathLess compares shard paths lexicographically.
func pathLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// collect merges every series across shards into canonical views,
// sorted by series key. The map iterations below feed sorted
// collections, so the output never depends on map order.
func (st *Store) collect() []seriesView {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	byKey := make(map[string][]*bucket)
	for _, sh := range st.shards {
		for key, b := range sh.series {
			byKey[key] = append(byKey[key], b)
		}
	}
	keys := make([]string, 0, len(byKey))
	for key := range byKey {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	out := make([]seriesView, 0, len(keys))
	for _, key := range keys {
		contribs := byKey[key]
		sort.SliceStable(contribs, func(i, j int) bool { return pathLess(contribs[i].path, contribs[j].path) })
		v := seriesView{
			name:   contribs[0].name,
			labels: contribs[0].labels,
			typ:    contribs[0].typ,
			key:    key,
		}
		for _, b := range contribs {
			v.total += b.total
			b.eachRaw(func(s obs.Sample) { v.samples = append(v.samples, s) })
			b.eachBlock(func(blk Block) { v.blocks = append(v.blocks, blk) })
		}
		// Stable sorts keep the shard-path order for equal timestamps,
		// completing the canonical (timestamp, shard path, per-shard
		// sequence) order.
		sort.SliceStable(v.samples, func(i, j int) bool { return v.samples[i].T < v.samples[j].T })
		sort.SliceStable(v.blocks, func(i, j int) bool {
			if v.blocks[i].StartNs != v.blocks[j].StartNs {
				return v.blocks[i].StartNs < v.blocks[j].StartNs
			}
			return v.blocks[i].EndNs < v.blocks[j].EndNs
		})
		out = append(out, v)
	}
	return out
}

// canonLabels returns a canonically sorted copy.
func canonLabels(labels []obs.Label) []obs.Label {
	ls := append([]obs.Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}
