package hist

import (
	"io"
	"testing"
	"time"

	"repro/internal/obs"
)

// The BenchmarkHistory* suite is the machine-readable perf record the
// Makefile's bench-json target appends to BENCH_history.jsonl: the
// cost of an enabled capture (append through the registry hook), a
// windowed query, and archive serialization.

func BenchmarkHistoryAppend(b *testing.B) {
	st := New(Options{})
	h := st.Root().Series("x_db", nil, "gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.AppendAt(time.Duration(i), float64(i))
	}
}

func BenchmarkHistoryOnGaugeSet(b *testing.B) {
	st := New(Options{})
	r := obs.NewRegistry()
	r.SetHistory(st.Root().Bind(obs.NewSimClock()))
	g := r.Gauge("x_db", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistoryQueryRange(b *testing.B) {
	st := New(Options{})
	h := st.Root().Series("x_db", nil, "gauge")
	for i := 0; i < 4096; i++ {
		h.AppendAt(time.Duration(i)*time.Hour, float64(i))
	}
	q := Query{Selector: "x_db", FromNs: 0, ToNs: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistoryArchiveWriteBinary(b *testing.B) {
	st := New(Options{})
	for s := 0; s < 16; s++ {
		h := st.Root().Series("x_db", []obs.Label{obs.L("i", string(rune('a'+s)))}, "gauge")
		for i := 0; i < 512; i++ {
			h.AppendAt(time.Duration(i)*time.Hour, float64(i))
		}
	}
	a := st.Archive()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := a.WriteBinary(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
