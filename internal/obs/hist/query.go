package hist

// The query engine: range select over the canonical cross-shard merge,
// with point-wise ops (raw, delta, rate) and window aggregations (min,
// max, avg, last, quantile, count). /queryz in obs/serve and the
// rwc-top dashboard sit directly on Query; the alert engine's windowed
// burn-rate sources use the registry-level Window handles instead (they
// are scoped to one fan-out child's samples).

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Ops accepted by Query.Op.
const (
	OpRaw      = "raw"   // samples as recorded (default)
	OpDelta    = "delta" // v[i] - v[i-1] within the selected range
	OpRate     = "rate"  // delta per second of sim time
	OpMin      = "min"   // single-point window aggregations ↓
	OpMax      = "max"
	OpAvg      = "avg"
	OpLast     = "last"
	OpCount    = "count"
	OpQuantile = "quantile" // Quantile field picks q
)

// Query selects a sample range from one or more series.
type Query struct {
	// Selector matches series: a bare metric name matches every label
	// set; `name{k="v",...}` requires the listed labels to be present
	// with those values (unlisted labels are unconstrained).
	Selector string
	// FromNs/ToNs bound sample timestamps to [FromNs, ToNs], both
	// inclusive; ToNs < 0 means unbounded.
	FromNs int64
	ToNs   int64
	// Op transforms the selected samples (see Op constants; "" = raw).
	Op string
	// Quantile is the q for OpQuantile (0 < q <= 1).
	Quantile float64
	// Limit caps returned samples per series, keeping the newest
	// (0 = no cap). Aggregation ops apply before the cap (they return
	// one point).
	Limit int
	// Blocks includes the downsampled tier in the result.
	Blocks bool
}

// Result is one matched series' answer.
type Result struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Type    string            `json:"type"`
	Samples []obs.Sample      `json:"samples"`
	Blocks  []Block           `json:"blocks,omitempty"`
	// Total is the series' lifetime append count (samples may have aged
	// out of retention).
	Total uint64 `json:"total"`
}

// SeriesInfo is one /seriesz listing entry.
type SeriesInfo struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Type   string            `json:"type"`
	Total  uint64            `json:"total"`
	// Retained is how many raw samples the ring currently holds.
	Retained int `json:"retained"`
}

// Series lists every stored series in canonical (key) order.
func (st *Store) Series() []SeriesInfo {
	views := st.collect()
	out := make([]SeriesInfo, 0, len(views))
	for _, v := range views {
		out = append(out, SeriesInfo{
			Name:     v.name,
			Labels:   labelMap(v.labels),
			Type:     v.typ,
			Total:    v.total,
			Retained: len(v.samples),
		})
	}
	return out
}

// Query runs q and returns the matching series in canonical order.
func (st *Store) Query(q Query) ([]Result, error) {
	name, want, err := ParseSelector(q.Selector)
	if err != nil {
		return nil, err
	}
	if err := validOp(q.Op, q.Quantile); err != nil {
		return nil, err
	}
	var out []Result
	for _, v := range st.collect() {
		if v.name != name || !labelsMatch(v.labels, want) {
			continue
		}
		samples := sliceRange(v.samples, q.FromNs, q.ToNs)
		samples, err := applyOp(q.Op, q.Quantile, samples)
		if err != nil {
			return nil, err
		}
		if q.Limit > 0 && len(samples) > q.Limit {
			samples = samples[len(samples)-q.Limit:]
		}
		res := Result{
			Name:    v.name,
			Labels:  labelMap(v.labels),
			Type:    v.typ,
			Samples: samples,
			Total:   v.total,
		}
		if q.Blocks {
			res.Blocks = blockRange(v.blocks, q.FromNs, q.ToNs)
		}
		out = append(out, res)
	}
	return out, nil
}

// ParseSelector splits `name` or `name{k="v",k2="v2"}` into the metric
// name and required label values.
func ParseSelector(sel string) (string, map[string]string, error) {
	sel = strings.TrimSpace(sel)
	if sel == "" {
		return "", nil, errors.New("hist: empty selector")
	}
	open := strings.IndexByte(sel, '{')
	if open < 0 {
		return sel, nil, nil
	}
	if !strings.HasSuffix(sel, "}") {
		return "", nil, fmt.Errorf("hist: selector %q: missing closing brace", sel)
	}
	name := strings.TrimSpace(sel[:open])
	if name == "" {
		return "", nil, fmt.Errorf("hist: selector %q: empty metric name", sel)
	}
	body := sel[open+1 : len(sel)-1]
	want := make(map[string]string)
	for _, part := range splitLabelList(body) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("hist: selector %q: matcher %q missing '='", sel, part)
		}
		key := strings.TrimSpace(part[:eq])
		val := strings.TrimSpace(part[eq+1:])
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return "", nil, fmt.Errorf("hist: selector %q: value for %q must be double-quoted", sel, key)
		}
		want[key] = val[1 : len(val)-1]
	}
	return name, want, nil
}

// splitLabelList splits on commas outside double quotes.
func splitLabelList(body string) []string {
	var parts []string
	start := 0
	inQuote := false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, body[start:])
}

func labelsMatch(have []obs.Label, want map[string]string) bool {
	for k, v := range want {
		found := false
		for _, l := range have {
			if l.Key == k {
				found = l.Value == v
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func labelMap(labels []obs.Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// sliceRange keeps samples with T in [fromNs, toNs]; toNs < 0 is
// unbounded. Samples are sorted by T, so binary search bounds the copy.
func sliceRange(samples []obs.Sample, fromNs, toNs int64) []obs.Sample {
	lo := sort.Search(len(samples), func(i int) bool { return samples[i].T.Nanoseconds() >= fromNs })
	hi := len(samples)
	if toNs >= 0 {
		hi = sort.Search(len(samples), func(i int) bool { return samples[i].T.Nanoseconds() > toNs })
	}
	if lo >= hi {
		return []obs.Sample{}
	}
	return append([]obs.Sample(nil), samples[lo:hi]...)
}

func blockRange(blocks []Block, fromNs, toNs int64) []Block {
	var out []Block
	for _, b := range blocks {
		if b.EndNs < fromNs {
			continue
		}
		if toNs >= 0 && b.StartNs > toNs {
			continue
		}
		out = append(out, b)
	}
	return out
}

func validOp(op string, q float64) error {
	switch op {
	case "", OpRaw, OpDelta, OpRate, OpMin, OpMax, OpAvg, OpLast, OpCount:
		return nil
	case OpQuantile:
		if q <= 0 || q > 1 {
			return fmt.Errorf("hist: quantile %v out of (0,1]", q)
		}
		return nil
	default:
		return fmt.Errorf("hist: unknown op %q", op)
	}
}

// applyOp transforms the selected samples. Aggregations return one
// point stamped with the window's last sample time.
func applyOp(op string, q float64, samples []obs.Sample) ([]obs.Sample, error) {
	switch op {
	case "", OpRaw:
		return samples, nil
	case OpDelta, OpRate:
		if len(samples) < 2 {
			return []obs.Sample{}, nil
		}
		out := make([]obs.Sample, 0, len(samples)-1)
		for i := 1; i < len(samples); i++ {
			d := samples[i].V - samples[i-1].V
			if op == OpRate {
				dt := (samples[i].T - samples[i-1].T).Seconds()
				if dt <= 0 {
					continue
				}
				d /= dt
			}
			out = append(out, obs.Sample{T: samples[i].T, V: d})
		}
		return out, nil
	case OpCount:
		if len(samples) == 0 {
			return []obs.Sample{}, nil
		}
		return []obs.Sample{{T: samples[len(samples)-1].T, V: float64(len(samples))}}, nil
	case OpMin, OpMax, OpAvg, OpLast, OpQuantile:
		if len(samples) == 0 {
			return []obs.Sample{}, nil
		}
		last := samples[len(samples)-1]
		var v float64
		switch op {
		case OpMin:
			v = math.Inf(1)
			for _, s := range samples {
				v = math.Min(v, s.V)
			}
		case OpMax:
			v = math.Inf(-1)
			for _, s := range samples {
				v = math.Max(v, s.V)
			}
		case OpAvg:
			for _, s := range samples {
				v += s.V
			}
			v /= float64(len(samples))
		case OpLast:
			v = last.V
		case OpQuantile:
			v = QuantileOf(samples, q)
		}
		return []obs.Sample{{T: last.T, V: v}}, nil
	}
	return nil, fmt.Errorf("hist: unknown op %q", op)
}

// QuantileOf returns the q-quantile of the sample values
// (nearest-rank on a sorted copy). Exported for the alert engine's
// windowed sources and rwc-top summaries.
func QuantileOf(samples []obs.Sample, q float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = s.V
	}
	sort.Float64s(vals)
	idx := int(math.Ceil(q*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}
