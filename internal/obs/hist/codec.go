package hist

// On-disk history artifacts, in the flight log's mold (see
// internal/obs/flight/log.go): a magic string, then tagged sections,
// each a one-byte type + uvarint length + payload.
//
//	magic   "RWCHIST1\n"
//	'H'     header JSON: version, tool, seed, dropped, series count
//	'S'     one per series, in canonical key order: a JSON descriptor
//	        (name, labels, type, total) followed by fixed-width
//	        little-endian samples and downsampled blocks
//	'T'     trailer JSON: series count again (truncation guard)
//
// Everything serialized is already canonical (Archive freezes the
// cross-shard merge, encoding/json emits struct fields in declaration
// order), so same-seed runs write byte-identical files at any -workers
// count — CI compares them with cmp(1).

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/obs"
)

// Magic identifies a binary history artifact.
const Magic = "RWCHIST1\n"

const (
	secHeader  = 'H'
	secSeries  = 'S'
	secTrailer = 'T'

	// maxSectionLen bounds one section (matches the flight log's
	// guard) so a corrupt length can't drive a huge allocation.
	maxSectionLen = 1 << 28

	codecVersion = 1
)

type header struct {
	Version int    `json:"version"`
	Tool    string `json:"tool,omitempty"`
	Seed    uint64 `json:"seed"`
	Dropped int    `json:"dropped,omitempty"`
	Series  int    `json:"series"`
}

type trailer struct {
	Series int `json:"series"`
}

// seriesDesc is the JSON prefix of one 'S' section; the binary sample
// and block arrays follow it inside the same section payload.
type seriesDesc struct {
	Name    string      `json:"name"`
	Labels  []obs.Label `json:"labels,omitempty"`
	Type    string      `json:"type"`
	Total   uint64      `json:"total"`
	Samples int         `json:"samples"`
	Blocks  int         `json:"blocks,omitempty"`
}

// WriteBinary serializes the archive canonically.
func (a *Archive) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	h := header{
		Version: codecVersion,
		Tool:    a.Meta.Tool,
		Seed:    a.Meta.Seed,
		Dropped: a.Meta.Dropped,
		Series:  len(a.Series),
	}
	if err := writeJSONSection(bw, secHeader, h); err != nil {
		return err
	}
	for _, s := range a.Series {
		if err := writeSection(bw, secSeries, encodeSeries(s)); err != nil {
			return err
		}
	}
	if err := writeJSONSection(bw, secTrailer, trailer{Series: len(a.Series)}); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSONL serializes the archive as one meta line followed by one
// line per series — greppable/jq-able, same canonical order.
func (a *Archive) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	metaLine := struct {
		Kind string `json:"kind"`
		Meta
		Series int `json:"series"`
	}{Kind: "hist_meta", Meta: a.Meta, Series: len(a.Series)}
	if err := enc.Encode(metaLine); err != nil {
		return err
	}
	for _, s := range a.Series {
		line := struct {
			Kind string `json:"kind"`
			Series
		}{Kind: "series", Series: s}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeJSONSection(w *bufio.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeSection(w, typ, payload)
}

func writeSection(w *bufio.Writer, typ byte, payload []byte) error {
	if err := w.WriteByte(typ); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// encodeSeries renders one 'S' payload: uvarint-prefixed JSON
// descriptor, then fixed-width samples (int64 t_ns, float64 bits) and
// blocks (7 × 8 bytes), all little-endian.
func encodeSeries(s Series) []byte {
	desc, err := json.Marshal(seriesDesc{
		Name:    s.Name,
		Labels:  s.Labels,
		Type:    s.Type,
		Total:   s.Total,
		Samples: len(s.Samples),
		Blocks:  len(s.Blocks),
	})
	if err != nil {
		// Marshalling plain strings and numbers cannot fail.
		panic(fmt.Sprintf("hist: encode series descriptor: %v", err))
	}
	buf := make([]byte, 0, len(desc)+10+16*len(s.Samples)+56*len(s.Blocks))
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(desc)))
	buf = append(buf, lenBuf[:n]...)
	buf = append(buf, desc...)
	for _, sm := range s.Samples {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sm.T.Nanoseconds()))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sm.V))
	}
	for _, b := range s.Blocks {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.StartNs))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.EndNs))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b.Min))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b.Max))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b.Mean))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b.Last))
		buf = binary.LittleEndian.AppendUint64(buf, b.Count)
	}
	return buf
}

func decodeSeries(payload []byte) (Series, error) {
	descLen, n := binary.Uvarint(payload)
	if n <= 0 || descLen > uint64(len(payload)-n) {
		return Series{}, errors.New("hist: corrupt series descriptor length")
	}
	var desc seriesDesc
	if err := json.Unmarshal(payload[n:n+int(descLen)], &desc); err != nil {
		return Series{}, fmt.Errorf("hist: series descriptor: %w", err)
	}
	rest := payload[n+int(descLen):]
	need := 16*desc.Samples + 56*desc.Blocks
	if desc.Samples < 0 || desc.Blocks < 0 || len(rest) != need {
		return Series{}, fmt.Errorf("hist: series %s: payload %d bytes, want %d", desc.Name, len(rest), need)
	}
	s := Series{
		Name:    desc.Name,
		Labels:  desc.Labels,
		Type:    desc.Type,
		Total:   desc.Total,
		Samples: make([]obs.Sample, desc.Samples),
	}
	for i := range s.Samples {
		s.Samples[i] = obs.Sample{
			T: time.Duration(int64(binary.LittleEndian.Uint64(rest[16*i:]))),
			V: math.Float64frombits(binary.LittleEndian.Uint64(rest[16*i+8:])),
		}
	}
	rest = rest[16*desc.Samples:]
	if desc.Blocks > 0 {
		s.Blocks = make([]Block, desc.Blocks)
		for i := range s.Blocks {
			off := 56 * i
			s.Blocks[i] = Block{
				StartNs: int64(binary.LittleEndian.Uint64(rest[off:])),
				EndNs:   int64(binary.LittleEndian.Uint64(rest[off+8:])),
				Min:     math.Float64frombits(binary.LittleEndian.Uint64(rest[off+16:])),
				Max:     math.Float64frombits(binary.LittleEndian.Uint64(rest[off+24:])),
				Mean:    math.Float64frombits(binary.LittleEndian.Uint64(rest[off+32:])),
				Last:    math.Float64frombits(binary.LittleEndian.Uint64(rest[off+40:])),
				Count:   binary.LittleEndian.Uint64(rest[off+48:]),
			}
		}
	}
	return s, nil
}

// ReadArchive parses a binary history artifact, requiring the header
// and trailer (a missing trailer means a truncated write).
func ReadArchive(r io.Reader) (*Archive, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("hist: read magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("hist: bad magic %q", magic)
	}
	a := &Archive{}
	var h header
	var t trailer
	sawHeader, sawTrailer := false, false
	for {
		typ, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("hist: section length: %w", err)
		}
		if length > maxSectionLen {
			return nil, fmt.Errorf("hist: section of %d bytes exceeds limit", length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("hist: section payload: %w", err)
		}
		switch typ {
		case secHeader:
			if err := json.Unmarshal(payload, &h); err != nil {
				return nil, fmt.Errorf("hist: header: %w", err)
			}
			if h.Version != codecVersion {
				return nil, fmt.Errorf("hist: unsupported version %d", h.Version)
			}
			a.Meta = Meta{Tool: h.Tool, Seed: h.Seed, Dropped: h.Dropped}
			sawHeader = true
		case secSeries:
			s, err := decodeSeries(payload)
			if err != nil {
				return nil, err
			}
			a.Series = append(a.Series, s)
		case secTrailer:
			if err := json.Unmarshal(payload, &t); err != nil {
				return nil, fmt.Errorf("hist: trailer: %w", err)
			}
			sawTrailer = true
		default:
			// Skip unknown sections for forward compatibility.
		}
	}
	if !sawHeader {
		return nil, errors.New("hist: missing header section")
	}
	if !sawTrailer {
		return nil, errors.New("hist: missing trailer (truncated artifact?)")
	}
	if len(a.Series) != t.Series {
		return nil, fmt.Errorf("hist: trailer says %d series, read %d", t.Series, len(a.Series))
	}
	return a, nil
}
