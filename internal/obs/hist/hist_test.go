package hist

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func simClockAt(t time.Duration) *obs.SimClock {
	c := obs.NewSimClock()
	c.Set(t)
	return c
}

func TestRegistryCaptureStampsSimTime(t *testing.T) {
	st := New(Options{})
	r := obs.NewRegistry()
	clock := obs.NewSimClock()
	r.SetHistory(st.Root().Bind(clock))

	g := r.Gauge("wan_test_gauge", "h", obs.L("policy", "run"))
	c := r.Counter("wan_test_total", "h")
	for round := 0; round < 3; round++ {
		clock.Set(time.Duration(round) * 6 * time.Hour)
		g.Set(float64(10 + round))
		c.Add(2)
	}

	res, err := st.Query(Query{Selector: `wan_test_gauge{policy="run"}`, ToNs: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d series, want 1", len(res))
	}
	want := []obs.Sample{
		{T: 0, V: 10},
		{T: 6 * time.Hour, V: 11},
		{T: 12 * time.Hour, V: 12},
	}
	if len(res[0].Samples) != len(want) {
		t.Fatalf("got %d samples, want %d", len(res[0].Samples), len(want))
	}
	for i, s := range res[0].Samples {
		if s != want[i] {
			t.Errorf("sample %d: got %+v want %+v", i, s, want[i])
		}
	}

	// Counters record the running total at each Add.
	res, err = st.Query(Query{Selector: "wan_test_total", ToNs: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Samples; len(got) != 3 || got[2].V != 6 {
		t.Fatalf("counter history = %+v, want running totals 2,4,6", got)
	}
}

func TestRetentionFoldsIntoBlocks(t *testing.T) {
	st := New(Options{Retain: 4, DownsampleEvery: 2})
	h := st.Root().Series("s", nil, "gauge")
	for i := 0; i < 10; i++ {
		h.AppendAt(time.Duration(i)*time.Second, float64(i))
	}
	res, err := st.Query(Query{Selector: "s", ToNs: -1, Blocks: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res[0]
	// Ring keeps the newest 4 raw samples: 6..9.
	if len(s.Samples) != 4 || s.Samples[0].V != 6 || s.Samples[3].V != 9 {
		t.Fatalf("raw ring = %+v, want values 6..9", s.Samples)
	}
	// Evicted samples 0..5 fold into blocks of 2.
	if len(s.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3: %+v", len(s.Blocks), s.Blocks)
	}
	b := s.Blocks[1]
	if b.Min != 2 || b.Max != 3 || b.Mean != 2.5 || b.Last != 3 || b.Count != 2 {
		t.Fatalf("block[1] = %+v, want min=2 max=3 mean=2.5 last=3 count=2", b)
	}
	if b.StartNs != (2*time.Second).Nanoseconds() || b.EndNs != (3*time.Second).Nanoseconds() {
		t.Fatalf("block[1] span = [%d,%d], want [2s,3s]", b.StartNs, b.EndNs)
	}
	if s.Total != 10 {
		t.Fatalf("total = %d, want 10", s.Total)
	}
}

func TestBlockRingEviction(t *testing.T) {
	st := New(Options{Retain: 1, DownsampleEvery: 1, RetainBlocks: 2})
	h := st.Root().Series("s", nil, "gauge")
	for i := 0; i < 6; i++ {
		h.AppendAt(time.Duration(i), float64(i))
	}
	res, _ := st.Query(Query{Selector: "s", ToNs: -1, Blocks: true})
	blocks := res[0].Blocks
	// Samples 0..4 evicted into 5 one-sample blocks; ring keeps newest 2.
	if len(blocks) != 2 || blocks[0].Last != 3 || blocks[1].Last != 4 {
		t.Fatalf("blocks = %+v, want lasts 3,4", blocks)
	}
}

func TestDownsampleDisabled(t *testing.T) {
	st := New(Options{Retain: 2, DownsampleEvery: -1})
	h := st.Root().Series("s", nil, "gauge")
	for i := 0; i < 5; i++ {
		h.AppendAt(time.Duration(i), float64(i))
	}
	res, _ := st.Query(Query{Selector: "s", ToNs: -1, Blocks: true})
	if len(res[0].Blocks) != 0 {
		t.Fatalf("blocks = %+v, want none with downsampling disabled", res[0].Blocks)
	}
}

func TestBudgetDeniesInFirstTouchOrder(t *testing.T) {
	st := New(Options{MaxSeries: 2})
	sh := st.Root()
	a := sh.Series("a", nil, "gauge")
	b := sh.Series("b", nil, "gauge")
	c := sh.Series("c", nil, "gauge") // denied
	a.AppendAt(0, 1)
	b.AppendAt(0, 2)
	c.AppendAt(0, 3) // no-op

	if got := len(st.Series()); got != 2 {
		t.Fatalf("stored %d series, want 2", got)
	}
	if st.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped())
	}
	// Re-touching the denied key must not inflate the counter.
	sh.Series("c", nil, "gauge")
	if st.Dropped() != 1 {
		t.Fatalf("dropped after re-touch = %d, want 1", st.Dropped())
	}
	// Budgets are per shard: a child can admit its own series.
	child := sh.NewChild()
	child.Series("d", nil, "gauge").AppendAt(0, 4)
	if got := len(st.Series()); got != 3 {
		t.Fatalf("stored %d series after child admit, want 3", got)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	st := New(Options{MaxSeries: 1})
	sh := st.Root().NewChild()
	sh.SetBudget(-1)
	for _, name := range []string{"a", "b", "c", "d"} {
		sh.Series(name, nil, "gauge").AppendAt(0, 1)
	}
	if got := len(st.Series()); got != 4 {
		t.Fatalf("stored %d series, want 4 (unlimited)", got)
	}
	if st.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", st.Dropped())
	}
}

// TestShardMergeCanonicalOrder verifies the worker-independence
// mechanism directly: the same samples written through shards created
// in different orders (and appended in different interleavings) merge
// to the same canonical sequence.
func TestShardMergeCanonicalOrder(t *testing.T) {
	build := func(interleave bool) *Archive {
		st := New(Options{})
		c1 := st.Root().NewChild() // path [0]
		c2 := st.Root().NewChild() // path [1]
		h1 := c1.Series("s", nil, "gauge")
		h2 := c2.Series("s", nil, "gauge")
		for r := 0; r < 4; r++ {
			at := time.Duration(r) * time.Hour
			w1 := func() { h1.AppendAt(at, float64(r*10)) }
			w2 := func() { h2.AppendAt(at, float64(r*10+1)) }
			if interleave && r%2 == 1 {
				// Scheduler-order swap: shard [1]'s sample lands first
				// in real time; canonical order must not care.
				w2()
				w1()
			} else {
				w1()
				w2()
			}
		}
		return st.Archive()
	}
	a := build(false)
	b := build(true)
	if d := Diff(a, b); d != nil {
		t.Fatalf("interleaved build diverged: %v", d)
	}
	// Within one timestamp, shard [0]'s sample precedes shard [1]'s —
	// but appendAt wrote r*10 via h1 (shard [0]) when !interleave, and
	// via h2 when interleaved-odd; the canonical order sorts by shard
	// path, so the per-timestamp pair order reflects shards, not
	// arrival. Verify against the explicit expectation.
	s := a.Series[0].Samples
	if len(s) != 8 {
		t.Fatalf("got %d samples, want 8", len(s))
	}
	for r := 0; r < 4; r++ {
		at := time.Duration(r) * time.Hour
		first, second := s[2*r], s[2*r+1]
		if first.T != at || second.T != at {
			t.Fatalf("round %d timestamps = %v,%v want %v", r, first.T, second.T, at)
		}
	}
}

func TestWindowReadsShardLocalSamples(t *testing.T) {
	st := New(Options{})
	r := obs.NewRegistry()
	clock := obs.NewSimClock()
	r.SetHistory(st.Root().Bind(clock))
	g := r.Gauge("g", "h")
	for i := 1; i <= 5; i++ {
		clock.Set(time.Duration(i) * time.Hour)
		g.Set(float64(i))
	}
	sink := r.History()
	series := sink.Series("g", nil, "gauge")
	got := series.Window(2*time.Hour, 4*time.Hour)
	// (2h, 4h] keeps samples at 3h and 4h.
	if len(got) != 2 || got[0].V != 3 || got[1].V != 4 {
		t.Fatalf("window = %+v, want values 3,4", got)
	}
}

func TestNilStoreIsDisabled(t *testing.T) {
	var st *Store
	if st.Root() != nil {
		t.Fatal("nil store root should be nil")
	}
	if sink := st.Root().Bind(simClockAt(0)); sink != nil {
		t.Fatal("nil shard bind should be nil sink")
	}
	st.Root().Series("s", nil, "gauge").AppendAt(0, 1) // must not panic
	if got := st.Archive(); len(got.Series) != 0 {
		t.Fatal("nil store archive should be empty")
	}
	r := obs.NewRegistry()
	r.SetHistory(nil)
	r.Gauge("g", "h").Set(1) // nil-handle hot path must not panic
}
