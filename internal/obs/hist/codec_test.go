package hist

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func archiveFixture() *Archive {
	st := New(Options{Tool: "test", Seed: 42, Retain: 4, DownsampleEvery: 2})
	h := st.Root().Series("wan_snr_min_db", []obs.Label{obs.L("policy", "run")}, "gauge")
	for r := 0; r < 10; r++ {
		h.AppendAt(time.Duration(r)*6*time.Hour, 15-float64(r%3))
	}
	st.Root().Series("wan_rounds_total", nil, "counter").AppendAt(0, 1)
	return st.Archive()
}

func TestBinaryRoundTrip(t *testing.T) {
	a := archiveFixture()
	var buf bytes.Buffer
	if err := a.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != a.Meta {
		t.Fatalf("meta round-trip: got %+v want %+v", got.Meta, a.Meta)
	}
	if d := Diff(a, got); d != nil {
		t.Fatalf("round-trip diverged: %v", d)
	}
	// Re-serializing the decoded archive must be byte-identical — this
	// is what lets rwc-replay compare rebuilt artifacts with cmp.
	var buf2 bytes.Buffer
	if err := got.WriteBinary(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization is not byte-identical")
	}
}

func TestWriteDeterministicAcrossShardTopology(t *testing.T) {
	// The same logical samples recorded through different fan-out
	// shapes (flat vs nested children) must serialize byte-identically:
	// the archive carries merged samples only, no shard structure.
	flat := New(Options{Tool: "t", Seed: 7})
	c0 := flat.Root().NewChild()
	c1 := flat.Root().NewChild()
	nested := New(Options{Tool: "t", Seed: 7})
	n0 := nested.Root().NewChild()
	n1 := n0.NewChild()

	for r := 0; r < 5; r++ {
		at := time.Duration(r) * time.Hour
		for i, sh := range []*Shard{c0, c1} {
			sh.Series("g", []obs.Label{obs.L("i", string(rune('a'+i)))}, "gauge").AppendAt(at, float64(r))
		}
		for i, sh := range []*Shard{n0, n1} {
			sh.Series("g", []obs.Label{obs.L("i", string(rune('a'+i)))}, "gauge").AppendAt(at, float64(r))
		}
	}
	var a, b bytes.Buffer
	if err := flat.Archive().WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := nested.Archive().WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("different shard topologies serialized differently")
	}
}

func TestJSONLOutput(t *testing.T) {
	a := archiveFixture()
	var buf bytes.Buffer
	if err := a.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+len(a.Series) {
		t.Fatalf("got %d lines, want %d", len(lines), 1+len(a.Series))
	}
	var meta struct {
		Kind   string `json:"kind"`
		Tool   string `json:"tool"`
		Seed   uint64 `json:"seed"`
		Series int    `json:"series"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Kind != "hist_meta" || meta.Tool != "test" || meta.Seed != 42 || meta.Series != 2 {
		t.Fatalf("meta line = %+v", meta)
	}
	var s struct {
		Kind string `json:"kind"`
		Name string `json:"name"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &s); err != nil {
		t.Fatal(err)
	}
	if s.Kind != "series" || s.Name != "wan_rounds_total" {
		t.Fatalf("first series line = %+v, want wan_rounds_total", s)
	}
}

func TestReadArchiveRejectsCorruption(t *testing.T) {
	a := archiveFixture()
	var buf bytes.Buffer
	if err := a.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := ReadArchive(bytes.NewReader([]byte("NOTHIST0\n"))); err == nil {
		t.Fatal("bad magic should error")
	}
	// Truncating the trailer must be detected.
	if _, err := ReadArchive(bytes.NewReader(full[:len(full)-4])); err == nil {
		t.Fatal("truncated artifact should error")
	}
	if _, err := ReadArchive(bytes.NewReader(full[:len(Magic)])); err == nil {
		t.Fatal("header-less artifact should error")
	}
}

func TestDiffReporting(t *testing.T) {
	a := archiveFixture()
	b := archiveFixture()
	if d := Diff(a, b); d != nil {
		t.Fatalf("identical archives diverged: %v", d)
	}

	// Value divergence: first differing (series, sim-time) is reported.
	b.Series[1].Samples[3].V += 0.5
	d := Diff(a, b)
	if len(d) != 1 {
		t.Fatalf("got %d entries, want 1: %v", len(d), d)
	}
	if d[0].Key != a.Series[1].Key() {
		t.Fatalf("diverging key = %s", d[0].Key)
	}
	if want := a.Series[1].Samples[3].T.Nanoseconds(); d[0].FirstDivergeNs != want {
		t.Fatalf("first diverge = %dns, want %dns", d[0].FirstDivergeNs, want)
	}
	if !strings.HasPrefix(d[0].String(), "~ ") {
		t.Fatalf("changed entry renders %q", d[0].String())
	}

	// Missing series.
	c := a.Filter(func(s Series) bool { return s.Name != "wan_rounds_total" })
	d = Diff(a, c)
	if len(d) != 1 || !d[0].InA || d[0].InB {
		t.Fatalf("missing-series diff = %+v", d)
	}
	if !strings.HasPrefix(d[0].String(), "- only in a:") {
		t.Fatalf("missing entry renders %q", d[0].String())
	}

	// Equal prefix, shorter tail.
	e := archiveFixture()
	e.Series[1].Samples = e.Series[1].Samples[:2]
	d = Diff(a, e)
	if len(d) != 1 || d[0].FirstDivergeNs != -1 || !strings.Contains(d[0].Detail, "sample count") {
		t.Fatalf("tail diff = %+v", d)
	}
}
