package hist

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
)

func queryFixture(t *testing.T) *Store {
	t.Helper()
	st := New(Options{})
	for _, pol := range []string{"run", "walk"} {
		h := st.Root().Series("wan_snr_min_db", []obs.Label{obs.L("policy", pol)}, "gauge")
		for r := 0; r < 8; r++ {
			v := 15.0
			if pol == "run" && (r == 4 || r == 5) {
				v = 11.0 // the §2.3 dip
			}
			h.AppendAt(time.Duration(r)*6*time.Hour, v)
		}
	}
	c := st.Root().Series("wan_rounds_total", nil, "counter")
	for r := 0; r < 8; r++ {
		c.AppendAt(time.Duration(r)*6*time.Hour, float64(r+1))
	}
	return st
}

func one(t *testing.T, st *Store, q Query) Result {
	t.Helper()
	res, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("query %+v matched %d series, want 1", q, len(res))
	}
	return res[0]
}

func TestQuerySelectorMatching(t *testing.T) {
	st := queryFixture(t)
	res, err := st.Query(Query{Selector: "wan_snr_min_db", ToNs: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("bare name matched %d series, want 2", len(res))
	}
	// Canonical order: label sets sort by key rendering.
	if res[0].Labels["policy"] != "run" || res[1].Labels["policy"] != "walk" {
		t.Fatalf("order = %v,%v want run,walk", res[0].Labels, res[1].Labels)
	}
	r := one(t, st, Query{Selector: `wan_snr_min_db{policy="walk"}`, ToNs: -1})
	if r.Labels["policy"] != "walk" {
		t.Fatalf("labeled selector matched %v", r.Labels)
	}
	if _, err := st.Query(Query{Selector: `bad{policy=run}`, ToNs: -1}); err == nil {
		t.Fatal("unquoted label value should error")
	}
	if _, err := st.Query(Query{Selector: "", ToNs: -1}); err == nil {
		t.Fatal("empty selector should error")
	}
}

func TestQueryRange(t *testing.T) {
	st := queryFixture(t)
	r := one(t, st, Query{
		Selector: `wan_snr_min_db{policy="run"}`,
		FromNs:   (24 * time.Hour).Nanoseconds(),
		ToNs:     (30 * time.Hour).Nanoseconds(),
	})
	// [24h, 30h] keeps rounds 4 and 5 — the dip.
	if len(r.Samples) != 2 || r.Samples[0].V != 11 || r.Samples[1].V != 11 {
		t.Fatalf("range = %+v, want the two dip samples", r.Samples)
	}
}

func TestQueryAggregations(t *testing.T) {
	st := queryFixture(t)
	sel := `wan_snr_min_db{policy="run"}`
	if r := one(t, st, Query{Selector: sel, ToNs: -1, Op: OpMin}); r.Samples[0].V != 11 {
		t.Fatalf("min = %v, want 11", r.Samples[0].V)
	}
	if r := one(t, st, Query{Selector: sel, ToNs: -1, Op: OpMax}); r.Samples[0].V != 15 {
		t.Fatalf("max = %v, want 15", r.Samples[0].V)
	}
	if r := one(t, st, Query{Selector: sel, ToNs: -1, Op: OpAvg}); r.Samples[0].V != 14 {
		t.Fatalf("avg = %v, want 14", r.Samples[0].V)
	}
	if r := one(t, st, Query{Selector: sel, ToNs: -1, Op: OpLast}); r.Samples[0].V != 15 {
		t.Fatalf("last = %v, want 15", r.Samples[0].V)
	}
	if r := one(t, st, Query{Selector: sel, ToNs: -1, Op: OpCount}); r.Samples[0].V != 8 {
		t.Fatalf("count = %v, want 8", r.Samples[0].V)
	}
	r := one(t, st, Query{Selector: sel, ToNs: -1, Op: OpQuantile, Quantile: 0.25})
	if r.Samples[0].V != 11 {
		t.Fatalf("p25 = %v, want 11 (2 of 8 samples are 11)", r.Samples[0].V)
	}
	// Aggregation points carry the window's last timestamp.
	if r.Samples[0].T != 42*time.Hour {
		t.Fatalf("aggregation timestamp = %v, want 42h", r.Samples[0].T)
	}
}

func TestQueryDeltaAndRate(t *testing.T) {
	st := queryFixture(t)
	r := one(t, st, Query{Selector: "wan_rounds_total", ToNs: -1, Op: OpDelta})
	if len(r.Samples) != 7 {
		t.Fatalf("delta produced %d points, want 7", len(r.Samples))
	}
	for _, s := range r.Samples {
		if s.V != 1 {
			t.Fatalf("delta = %+v, want all 1", r.Samples)
		}
	}
	r = one(t, st, Query{Selector: "wan_rounds_total", ToNs: -1, Op: OpRate})
	want := 1.0 / (6 * time.Hour).Seconds()
	for _, s := range r.Samples {
		if math.Abs(s.V-want) > 1e-12 {
			t.Fatalf("rate = %v, want %v", s.V, want)
		}
	}
}

func TestQueryLimitKeepsNewest(t *testing.T) {
	st := queryFixture(t)
	r := one(t, st, Query{Selector: "wan_rounds_total", ToNs: -1, Limit: 3})
	if len(r.Samples) != 3 || r.Samples[0].V != 6 {
		t.Fatalf("limited = %+v, want newest 3 (6,7,8)", r.Samples)
	}
}

func TestQueryBadOp(t *testing.T) {
	st := queryFixture(t)
	if _, err := st.Query(Query{Selector: "wan_rounds_total", ToNs: -1, Op: "p99"}); err == nil {
		t.Fatal("unknown op should error")
	}
	if _, err := st.Query(Query{Selector: "wan_rounds_total", ToNs: -1, Op: OpQuantile, Quantile: 0}); err == nil {
		t.Fatal("quantile 0 should error")
	}
}

func TestSeriesListing(t *testing.T) {
	st := queryFixture(t)
	infos := st.Series()
	if len(infos) != 3 {
		t.Fatalf("listed %d series, want 3", len(infos))
	}
	if infos[0].Name != "wan_rounds_total" || infos[0].Type != "counter" {
		t.Fatalf("first listing = %+v, want wan_rounds_total counter", infos[0])
	}
	if infos[1].Retained != 8 || infos[1].Total != 8 {
		t.Fatalf("listing counts = %+v, want retained=total=8", infos[1])
	}
}

func TestQuantileOf(t *testing.T) {
	samples := []obs.Sample{{V: 4}, {V: 1}, {V: 3}, {V: 2}}
	if q := QuantileOf(samples, 0.5); q != 2 {
		t.Fatalf("p50 = %v, want 2", q)
	}
	if q := QuantileOf(samples, 1); q != 4 {
		t.Fatalf("p100 = %v, want 4", q)
	}
	if q := QuantileOf(nil, 0.5); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %v, want NaN", q)
	}
}
