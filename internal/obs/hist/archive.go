package hist

// Archive is the serialization-facing view of a store: the canonical
// cross-shard merge frozen into plain values, with the run identity the
// artifact header carries. WriteBinary/WriteJSONL (codec.go) operate on
// archives, which lets rwc-replay rebuild one from flight frames and
// compare byte-for-byte against a live run's artifact — the archive
// carries no shard structure, so two stores with different fan-out
// topologies serialize identically when their merged samples agree.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Meta identifies the run that produced an archive.
type Meta struct {
	Tool string `json:"tool,omitempty"`
	Seed uint64 `json:"seed"`
	// Dropped is how many series the cardinality budget denied.
	Dropped int `json:"dropped,omitempty"`
}

// Series is one series' frozen history.
type Series struct {
	Name    string       `json:"name"`
	Labels  []obs.Label  `json:"labels,omitempty"`
	Type    string       `json:"type"`
	Total   uint64       `json:"total"`
	Samples []obs.Sample `json:"samples"`
	Blocks  []Block      `json:"blocks,omitempty"`
}

// Key renders the series' canonical identity.
func (s Series) Key() string { return Key(s.Name, s.Labels) }

// Archive is a frozen store: series in canonical key order.
type Archive struct {
	Meta   Meta
	Series []Series
}

// Archive freezes the store's current contents.
func (st *Store) Archive() *Archive {
	a := &Archive{}
	if st == nil {
		return a
	}
	a.Meta = Meta{Tool: st.opt.Tool, Seed: st.opt.Seed, Dropped: st.Dropped()}
	for _, v := range st.collect() {
		a.Series = append(a.Series, Series{
			Name:    v.name,
			Labels:  v.labels,
			Type:    v.typ,
			Total:   v.total,
			Samples: v.samples,
			Blocks:  v.blocks,
		})
	}
	return a
}

// Filter returns a copy keeping only series for which keep returns
// true (key order is preserved).
func (a *Archive) Filter(keep func(Series) bool) *Archive {
	out := &Archive{Meta: a.Meta}
	for _, s := range a.Series {
		if keep(s) {
			out.Series = append(out.Series, s)
		}
	}
	return out
}

// Key renders a series identity canonically: name alone when
// unlabeled, else name{k="v",...} with keys sorted.
func Key(name string, labels []obs.Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := canonLabels(labels)
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// DiffEntry is one series-level divergence between two archives.
type DiffEntry struct {
	Key string `json:"key"`
	// InA/InB report presence; both true means the samples differ.
	InA bool `json:"in_a"`
	InB bool `json:"in_b"`
	// FirstDivergeNs is the sim time of the first differing sample
	// (valid when both sides have the series; -1 when the divergence is
	// a missing tail with equal prefixes).
	FirstDivergeNs int64 `json:"first_diverge_ns,omitempty"`
	// Detail is a human-readable account of the first divergence.
	Detail string `json:"detail,omitempty"`
}

func (e DiffEntry) String() string {
	switch {
	case e.InA && !e.InB:
		return "- only in a: " + e.Key
	case !e.InA && e.InB:
		return "+ only in b: " + e.Key
	default:
		return "~ " + e.Key + ": " + e.Detail
	}
}

// Diff compares two archives series-by-series, reporting each missing
// series and, for shared series, the first diverging (sim-time, value)
// pair. Entries come back in canonical key order; nil means the
// archives agree.
func Diff(a, b *Archive) []DiffEntry {
	byKey := func(ar *Archive) map[string]Series {
		m := make(map[string]Series, len(ar.Series))
		for _, s := range ar.Series {
			m[s.Key()] = s
		}
		return m
	}
	am, bm := byKey(a), byKey(b)
	keys := make([]string, 0, len(am)+len(bm))
	for k := range am {
		keys = append(keys, k)
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var out []DiffEntry
	for _, k := range keys {
		sa, inA := am[k]
		sb, inB := bm[k]
		if !inA || !inB {
			out = append(out, DiffEntry{Key: k, InA: inA, InB: inB, FirstDivergeNs: -1})
			continue
		}
		if e, diverged := diffSeries(k, sa, sb); diverged {
			out = append(out, e)
		}
	}
	return out
}

func diffSeries(key string, a, b Series) (DiffEntry, bool) {
	e := DiffEntry{Key: key, InA: true, InB: true, FirstDivergeNs: -1}
	n := len(a.Samples)
	if len(b.Samples) < n {
		n = len(b.Samples)
	}
	for i := 0; i < n; i++ {
		sa, sb := a.Samples[i], b.Samples[i]
		// Byte-identity is the contract, so exact comparison is the
		// point here — approximate equality would hide real divergence.
		if sa.T != sb.T || sa.V != sb.V { //nolint:nofloateq // exact byte-identity check
			e.FirstDivergeNs = sa.T.Nanoseconds()
			if sb.T.Nanoseconds() < e.FirstDivergeNs {
				e.FirstDivergeNs = sb.T.Nanoseconds()
			}
			e.Detail = fmt.Sprintf("sample %d: a=(t=%dns v=%v) b=(t=%dns v=%v)", i, sa.T.Nanoseconds(), sa.V, sb.T.Nanoseconds(), sb.V)
			return e, true
		}
	}
	if len(a.Samples) != len(b.Samples) {
		e.Detail = fmt.Sprintf("sample count: a=%d b=%d (equal prefix)", len(a.Samples), len(b.Samples))
		return e, true
	}
	if a.Total != b.Total {
		e.Detail = fmt.Sprintf("lifetime total: a=%d b=%d", a.Total, b.Total)
		return e, true
	}
	if a.Type != b.Type {
		e.Detail = fmt.Sprintf("type: a=%s b=%s", a.Type, b.Type)
		return e, true
	}
	return e, false
}
