package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// This file implements artifact diffing for cmd/rwc-obsdiff: two runs'
// metric expositions (or manifests, flattened to comparable key→value
// maps) are compared series by series, reporting new series, missing
// series, and value deltas beyond a tolerance. The CI live-serve smoke
// diffs a with-serve run against a without-serve run and asserts the
// diff is empty — the executable form of the "serving is read-only"
// guarantee.

// DiffEntry is one difference between two key→value maps.
type DiffEntry struct {
	Key string
	// InA/InB report presence on each side.
	InA, InB bool
	// A/B are the values (meaningful when the side is present).
	A, B float64
}

// String renders the entry in the rwc-obsdiff output shape.
func (d DiffEntry) String() string {
	switch {
	case d.InA && !d.InB:
		return fmt.Sprintf("- only in a: %s = %s", d.Key, formatValue(d.A))
	case !d.InA && d.InB:
		return fmt.Sprintf("+ only in b: %s = %s", d.Key, formatValue(d.B))
	default:
		return fmt.Sprintf("~ %s: a=%s b=%s (delta %s)",
			d.Key, formatValue(d.A), formatValue(d.B), formatValue(d.B-d.A))
	}
}

// DiffTotals compares two key→value maps and returns every difference
// in sorted key order: keys present on one side only, and keys whose
// values differ by more than tol (absolute). NaN values compare equal
// to NaN and different from everything else.
func DiffTotals(a, b map[string]float64, tol float64) []DiffEntry {
	keys := make(map[string]bool, len(a)+len(b))
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var out []DiffEntry
	for _, k := range sorted {
		av, inA := a[k]
		bv, inB := b[k]
		if inA && inB && valuesMatch(av, bv, tol) {
			continue
		}
		out = append(out, DiffEntry{Key: k, InA: inA, InB: inB, A: av, B: bv})
	}
	return out
}

// valuesMatch reports whether two sample values agree within tol.
func valuesMatch(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b //nolint:nofloateq // infinities compare exactly by definition; tolerance is meaningless here
	}
	return math.Abs(a-b) <= tol
}

// ManifestTotals flattens a run-manifest JSON document into the same
// key→value shape PromTotals produces, so manifests diff through the
// same DiffTotals path: the seed, every metric total (prefixed
// "metric:"), and every alert summary record (prefixed
// "alert:<rule>{<series>}:"). Wall-clock phases are deliberately
// excluded — they differ between any two runs by nature.
func ManifestTotals(r io.Reader) (map[string]float64, error) {
	var m struct {
		Tool         string             `json:"tool"`
		Seed         uint64             `json:"seed"`
		Alerts       []AlertRecord      `json:"alerts"`
		MetricTotals map[string]float64 `json:"metric_totals"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	out := make(map[string]float64, len(m.MetricTotals)+5*len(m.Alerts)+1)
	out["seed"] = float64(m.Seed)
	for k, v := range m.MetricTotals {
		out["metric:"+k] = v
	}
	for _, a := range m.Alerts {
		p := fmt.Sprintf("alert:%s{%s}:", a.Rule, a.Series)
		out[p+"fires"] = float64(a.Fires)
		out[p+"resolves"] = float64(a.Resolves)
		out[p+"first_fire_ns"] = float64(a.FirstFireNs)
		out[p+"last_fire_ns"] = float64(a.LastFireNs)
		active := 0.0
		if a.ActiveAtEnd {
			active = 1
		}
		out[p+"active_at_end"] = active
	}
	return out, nil
}
