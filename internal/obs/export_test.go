package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// populatedRegistry builds a registry exercising every metric kind,
// awkward float values, and hostile label values.
func populatedRegistry() *Registry {
	r := NewRegistry()
	r.Counter("demo_total", "a counter").Add(3)
	r.Counter("demo_total", "a counter", L("kind", `quo"te`)).Add(0.1 + 0.2) // 0.30000000000000004
	r.Gauge("demo_gauge", "a gauge", L("link", `back\slash`)).Set(-12.75)
	r.Gauge("demo_gauge", "a gauge", L("link", "sëattle→dênver")).Set(1e-17)
	h := r.Histogram("demo_work", "a histogram", []float64{1, 10, 100}, L("policy", "dynamic"))
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	return r
}

func TestRegistryExportRestoreByteIdentical(t *testing.T) {
	orig := populatedRegistry()
	dump := orig.Export()

	// Through JSON, as the flight-log trailer stores it.
	raw, err := json.Marshal(dump)
	if err != nil {
		t.Fatalf("marshal dump: %v", err)
	}
	var decoded RegistryDump
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal dump: %v", err)
	}
	restored := decoded.Restore()

	var a, b bytes.Buffer
	if err := orig.WritePrometheus(&a); err != nil {
		t.Fatalf("write original: %v", err)
	}
	if err := restored.WritePrometheus(&b); err != nil {
		t.Fatalf("write restored: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("restored exposition differs:\n--- original ---\n%s\n--- restored ---\n%s", a.String(), b.String())
	}
	if len(a.Bytes()) == 0 {
		t.Fatal("exposition unexpectedly empty")
	}

	diff := DiffTotals(orig.Totals(), restored.Totals(), 0)
	if len(diff) != 0 {
		t.Fatalf("totals diverge after restore: %v", diff)
	}
}

func TestRegistryExportNil(t *testing.T) {
	var r *Registry
	dump := r.Export()
	if len(dump.Families) != 0 {
		t.Fatalf("nil registry exported %d families", len(dump.Families))
	}
	restored := dump.Restore()
	var buf bytes.Buffer
	if err := restored.WritePrometheus(&buf); err != nil {
		t.Fatalf("write restored-empty: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty restore rendered %q", buf.String())
	}
}

func TestHash64Canonicalization(t *testing.T) {
	digest := func(fill func(h *Hash64)) uint64 {
		h := NewHash64()
		fill(h)
		return h.Sum64()
	}

	if digest(func(h *Hash64) { h.WriteFloat64(0) }) != digest(func(h *Hash64) { h.WriteFloat64(math.Copysign(0, -1)) }) {
		t.Error("0 and -0 must hash identically")
	}
	nanA := math.NaN()
	nanB := math.Float64frombits(math.Float64bits(math.NaN()) | 0xbeef)
	if digest(func(h *Hash64) { h.WriteFloat64(nanA) }) != digest(func(h *Hash64) { h.WriteFloat64(nanB) }) {
		t.Error("NaN payloads must collapse to one hash")
	}
	if digest(func(h *Hash64) { h.WriteFloat64(1.5) }) == digest(func(h *Hash64) { h.WriteFloat64(2.5) }) {
		t.Error("distinct floats should hash differently")
	}
	if digest(func(h *Hash64) { h.WriteString("ab"); h.WriteString("c") }) ==
		digest(func(h *Hash64) { h.WriteString("a"); h.WriteString("bc") }) {
		t.Error("length prefixing must keep string boundaries")
	}
	if digest(func(h *Hash64) { h.WriteBool(true) }) == digest(func(h *Hash64) { h.WriteBool(false) }) {
		t.Error("bools must hash differently")
	}
	if digest(func(h *Hash64) { h.WriteInt(-1) }) == digest(func(h *Hash64) { h.WriteInt(1) }) {
		t.Error("sign must reach the digest")
	}

	// Pin the empty digest to the FNV-64a offset basis so the format
	// is stable across refactors (logs hash-checked by older replays).
	if got := NewHash64().Sum64(); got != 14695981039346656037 {
		t.Errorf("empty digest = %d, want FNV-64a offset basis", got)
	}
}
