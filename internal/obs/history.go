package obs

// This file defines the registry's optional history hook: a sink that
// receives every counter/gauge/histogram observation together with its
// simulation timestamp. The concrete store lives in internal/obs/hist
// (which imports this package); the interface lives here so the
// registry can capture observations without an import cycle.
//
// The hook follows the layer's two cardinal rules:
//
//   - Disabled must be free. Without a sink the metric wrappers carry
//     a nil HistorySeries and the hot path pays exactly one nil check
//     (guarded by BenchmarkHistoryOff* in this package).
//   - Determinism. Samples are stamped with *simulation* time by the
//     sink (each fan-out shard holds the clock of the Obs it captures
//     for), and the store serializes canonically, so same-seed runs
//     emit byte-identical history artifacts at any -workers count.

import "time"

// Sample is one timestamped observation in a series' history.
type Sample struct {
	// T is the simulation-time offset the observation was recorded at.
	T time.Duration `json:"t_ns"`
	// V is the observed value: the running total for counters, the set
	// value for gauges, the raw observation for histograms.
	V float64 `json:"v"`
}

// HistorySeries is the per-series append handle a sink hands the
// registry at registration time (the cold path); appends go straight
// through the handle (the hot path).
type HistorySeries interface {
	// Append records the current value, stamped with the sink's clock.
	Append(v float64)
	// Window returns the retained raw samples with T in (from, to],
	// oldest first. The alert engine's windowed burn-rate sources read
	// through this.
	Window(from, to time.Duration) []Sample
}

// HistorySink hands out per-series handles and per-child sinks.
type HistorySink interface {
	// Series resolves the append handle for one series. Implementations
	// return a no-op handle (never nil) when a cardinality budget
	// denies the series.
	Series(name string, labels []Label, typ string) HistorySeries
	// Child allocates a sink for one fan-out child Obs, stamping with
	// the child's clock. Obs.Child calls this; because children are
	// created serially in task order, allocation order is deterministic
	// and the store can serialize canonically at any worker count.
	Child(clock Clock) HistorySink
}

// SetHistory attaches a history sink to the registry. Attach before
// recording: wrappers resolved earlier keep their nil handle. Nil-safe
// like every registry method.
func (r *Registry) SetHistory(sink HistorySink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.hist = sink
	r.mu.Unlock()
}

// History returns the attached sink (nil when history is off). The
// alert engine resolves windowed burn-rate sources through this.
func (r *Registry) History() HistorySink {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hist
}

// histSeries resolves one series' history handle (nil when history is
// off) — called on the registration path only.
func (r *Registry) histSeries(name string, labels []Label, typ string) HistorySeries {
	r.mu.Lock()
	sink := r.hist
	r.mu.Unlock()
	if sink == nil {
		return nil
	}
	return sink.Series(name, labels, typ)
}
