package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("orders_total", "orders issued", L("kind", "upgrade"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	// Same name+labels returns the same series.
	again := r.Counter("orders_total", "orders issued", L("kind", "upgrade"))
	again.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("shared series = %v, want 4", got)
	}
	g := r.Gauge("capacity_gbps", "capacity")
	g.Set(100)
	g.Add(-25)
	if got := g.Value(); got != 75 {
		t.Fatalf("gauge = %v, want 75", got)
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("b", "2"), L("a", "1"))
	b := r.Counter("x_total", "", L("a", "1"), L("b", "2"))
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("label order created distinct series: %v", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("solve_seconds", "solve time", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("sum = %v, want 56.05", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`solve_seconds_bucket{le="0.1"} 1`,
		`solve_seconds_bucket{le="1"} 3`,
		`solve_seconds_bucket{le="10"} 4`,
		`solve_seconds_bucket{le="+Inf"} 5`,
		`solve_seconds_sum 56.05`,
		`solve_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExpositionShapeAndOrdering(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("zz_total", "last family").Add(1)
		r.Counter("aa_total", "first family", L("policy", "dynamic")).Add(2)
		r.Counter("aa_total", "first family", L("policy", "static")).Add(3)
		r.Gauge("mid_gauge", "a gauge").Set(4.5)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two identical registries rendered differently:\n%s\n---\n%s", a.String(), b.String())
	}
	out := a.String()
	// Families sorted by name; series sorted by label signature.
	iAA := strings.Index(out, "# TYPE aa_total")
	iMid := strings.Index(out, "# TYPE mid_gauge")
	iZZ := strings.Index(out, "# TYPE zz_total")
	if !(iAA >= 0 && iAA < iMid && iMid < iZZ) {
		t.Fatalf("families out of order:\n%s", out)
	}
	iDyn := strings.Index(out, `aa_total{policy="dynamic"} 2`)
	iSta := strings.Index(out, `aa_total{policy="static"} 3`)
	if !(iDyn >= 0 && iDyn < iSta) {
		t.Fatalf("series out of order:\n%s", out)
	}
	// Every non-comment line parses as `name{labels} value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}

func TestSnapshotAndTotals(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.Counter("a_total", "", L("k", "v")).Add(1)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)
	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(snaps))
	}
	if snaps[0].Name != "a_total" || snaps[1].Name != "b_total" || snaps[2].Name != "h_seconds" {
		t.Fatalf("snapshot order: %v %v %v", snaps[0].Name, snaps[1].Name, snaps[2].Name)
	}
	totals := r.Totals()
	if totals[`a_total{k="v"}`] != 1 || totals["b_total"] != 2 {
		t.Fatalf("totals = %v", totals)
	}
	if totals["h_seconds_sum"] != 0.5 || totals["h_seconds_count"] != 1 {
		t.Fatalf("histogram totals = %v", totals)
	}
}

func TestRegistryJSONViaSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", L("k", "v")).Add(1)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back []SeriesSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Name != "a_total" || back[0].Value != 1 {
		t.Fatalf("JSON round trip = %+v", back)
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y", "")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z", "", []float64{1})
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	if r.Snapshot() != nil || r.Totals() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}
