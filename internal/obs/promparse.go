package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a parser for the Prometheus text exposition
// format (version 0.0.4) — the inverse of WritePrometheus, covering
// the subset this repo emits (HELP/TYPE comments, counter/gauge/
// histogram sample lines, escaped label values). cmd/rwc-obsdiff uses
// it to diff run artifacts and the CI live-serve smoke uses it to
// assert a scrape parses.

// PromSample is one parsed sample line: a metric name (including any
// _bucket/_sum/_count suffix), its canonically ordered labels, and the
// value.
type PromSample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Key renders the sample identity as name{labels} with sorted label
// keys — the same shape Registry.Totals uses, so parsed artifacts and
// live registries diff against each other directly.
func (s PromSample) Key() string {
	return s.Name + promLabels(sortedLabels(s.Labels))
}

// ParsePrometheusText parses an exposition into samples in input
// order. It fails loudly on malformed lines: the CI smoke treats any
// parse error as a broken scrape.
func ParsePrometheusText(r io.Reader) ([]PromSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []PromSample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			// HELP/TYPE/comment lines carry no values; series identity
			// and values are what the diff cares about.
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("prometheus text line %d: %w", lineNo, err)
		}
		out = append(out, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// PromTotals parses an exposition and flattens it to Key() → value,
// mirroring Registry.Totals for artifact diffing. Duplicate sample
// keys are an error — a registry can never emit them.
func PromTotals(r io.Reader) (map[string]float64, error) {
	samples, err := ParsePrometheusText(r)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		key := s.Key()
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate series %s", key)
		}
		out[key] = s.Value
	}
	return out, nil
}

// parseSampleLine parses `name{k="v",...} value` (label set optional).
func parseSampleLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value on line %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	// A timestamp may follow the value; this repo never emits one but
	// accept it for robustness.
	fields := strings.Fields(rest)
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block, unescaping values, and
// returns the remainder of the line.
func parseLabels(in string) ([]Label, string, error) {
	if !strings.HasPrefix(in, "{") {
		return nil, "", fmt.Errorf("label block must start with '{'")
	}
	rest := in[1:]
	var labels []Label
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' near %q", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if key == "" {
			return nil, "", fmt.Errorf("empty label name near %q", rest)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label value for %s must be quoted", key)
		}
		value, tail, err := unquoteLabelValue(rest[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", key, err)
		}
		labels = append(labels, Label{Key: key, Value: value})
		rest = tail
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' after label %s near %q", key, rest)
	}
}

// unquoteLabelValue consumes an escaped value up to its closing quote
// (the inverse of escapeLabelValue) and returns it with the remainder.
func unquoteLabelValue(in string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			if i+1 >= len(in) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			i++
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}
