package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/hist"
)

// histServer builds a server over an Obs with an attached history
// store carrying a seeded SNR dip at rounds 4-5 of 8 (6h cadence).
func histServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	o := obs.New("serve-test")
	st := hist.New(hist.Options{Tool: "serve-test", Seed: 7})
	o.Metrics.SetHistory(st.Root().Bind(o.Clock))
	g := o.Gauge("wan_snr_min_db", "min SNR", obs.L("policy", "run"))
	for r := 0; r < 8; r++ {
		o.SetSimTime(time.Duration(r) * 6 * time.Hour)
		v := 15.0
		if r == 4 || r == 5 {
			v = 11.0
		}
		g.Set(v)
	}
	s := New(Options{Obs: o, Tool: "serve-test", Seed: 7, Hist: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestQueryzRangeReturnsDip(t *testing.T) {
	_, ts := histServer(t)
	q := url.Values{}
	q.Set("q", `wan_snr_min_db{policy="run"}`)
	q.Set("from_ns", "86400000000000") // 24h
	q.Set("to_ns", "108000000000000")  // 30h
	code, body := get(t, ts, "/queryz?"+q.Encode())
	if code != http.StatusOK {
		t.Fatalf("/queryz = %d: %s", code, body)
	}
	var resp struct {
		Query struct {
			Selector string `json:"q"`
			ToNs     int64  `json:"to_ns"`
		} `json:"query"`
		Results []hist.Result `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(resp.Results))
	}
	s := resp.Results[0].Samples
	if len(s) != 2 || s[0].V != 11 || s[1].V != 11 {
		t.Fatalf("samples = %+v, want the two dip values", s)
	}
	if resp.Query.Selector == "" || resp.Query.ToNs != 108000000000000 {
		t.Fatalf("query echo = %+v", resp.Query)
	}
}

func TestQueryzAggregationAndErrors(t *testing.T) {
	_, ts := histServer(t)
	code, body := get(t, ts, "/queryz?q=wan_snr_min_db&op=min")
	if code != http.StatusOK || !strings.Contains(body, `"v": 11`) {
		t.Fatalf("min query = %d %s", code, body)
	}
	if code, _ := get(t, ts, "/queryz"); code != http.StatusBadRequest {
		t.Fatalf("missing q = %d, want 400", code)
	}
	if code, _ := get(t, ts, "/queryz?q=x&op=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad op = %d, want 400", code)
	}
	if code, _ := get(t, ts, "/queryz?q=x&from_ns=abc"); code != http.StatusBadRequest {
		t.Fatalf("bad from_ns = %d, want 400", code)
	}
	if code, _ := get(t, ts, "/queryz?q=x&op=quantile&quantile=2"); code != http.StatusBadRequest {
		t.Fatalf("quantile 2 = %d, want 400", code)
	}
	// An unknown series is an empty result, not an error.
	code, body = get(t, ts, "/queryz?q=no_such_series")
	if code != http.StatusOK || !strings.Contains(body, `"results": []`) {
		t.Fatalf("unknown series = %d %s", code, body)
	}
}

func TestSerieszListing(t *testing.T) {
	s, ts := histServer(t)
	code, body := get(t, ts, "/seriesz")
	if code != http.StatusOK {
		t.Fatalf("/seriesz = %d", code)
	}
	var resp struct {
		Series []hist.SeriesInfo `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(resp.Series) != 1 || resp.Series[0].Name != "wan_snr_min_db" || resp.Series[0].Total != 8 {
		t.Fatalf("series = %+v", resp.Series)
	}
	// Query bookkeeping lands in the server-owned registry only.
	if got := s.Registry().Totals()["obs_queries_total"]; got < 1 {
		t.Fatalf("obs_queries_total = %v, want ≥1", got)
	}
	if _, ok := s.opts.Obs.Metrics.Totals()["obs_queries_total"]; ok {
		t.Fatal("query counter leaked into the app registry")
	}
}

func TestHistoryEndpointsWithoutStore(t *testing.T) {
	s := New(Options{Obs: obs.New("serve-test"), Tool: "serve-test"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := get(t, ts, "/queryz?q=x"); code != http.StatusNotFound {
		t.Fatalf("/queryz without store = %d, want 404", code)
	}
	if code, _ := get(t, ts, "/seriesz"); code != http.StatusNotFound {
		t.Fatalf("/seriesz without store = %d, want 404", code)
	}
}
