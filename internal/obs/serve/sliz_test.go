package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/sli"
)

func TestSlizAndDemandz404OutsideServiceMode(t *testing.T) {
	s := New(Options{Obs: newTestBundle(t)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := get(t, ts, "/sliz"); code != http.StatusNotFound {
		t.Fatalf("/sliz without an SLI layer = %d, want 404", code)
	}
	resp, err := ts.Client().Post(ts.URL+"/demandz", "application/json", strings.NewReader(`{"demands":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/demandz without an Admit hook = %d, want 404", resp.StatusCode)
	}
}

func TestSlizServesSnapshot(t *testing.T) {
	layer := sli.New(sli.Options{Tool: "rwc-wansimd", Seed: 7})
	layer.Tick(3 * time.Second)
	layer.RoundComplete("dynamic", time.Millisecond, 2)
	s := New(Options{Obs: newTestBundle(t), SLI: layer})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/sliz")
	if code != http.StatusOK {
		t.Fatalf("/sliz = %d", code)
	}
	var snap struct {
		Tool       string             `json:"tool"`
		Generation uint64             `json:"generation"`
		UptimeNs   int64              `json:"uptime_ns"`
		Totals     map[string]float64 `json:"totals"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/sliz does not parse: %v", err)
	}
	if snap.Tool != "rwc-wansimd" || snap.Generation != 1 || snap.UptimeNs != (3*time.Second).Nanoseconds() {
		t.Fatalf("/sliz header = %+v", snap)
	}
	if snap.Totals[sli.MetricRoundsTotal+`{policy="dynamic"}`] != 1 {
		t.Fatalf("/sliz totals missing the recorded round: %v", snap.Totals)
	}
}

func TestDemandzAdmitsAgainstSnapshot(t *testing.T) {
	layer := sli.New(sli.Options{Tool: "rwc-wansimd"})
	s := New(Options{Obs: newTestBundle(t), SLI: layer, Admit: func(volumes []float64) AdmitResponse {
		return AdmitAgainst(4, "dynamic", 1000, 700, volumes)
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Non-POST and bad bodies are client errors, not panics.
	if code, _ := get(t, ts, "/demandz"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /demandz = %d, want 405", code)
	}
	resp, err := ts.Client().Post(ts.URL+"/demandz", "application/json", strings.NewReader(`{broken`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body /demandz = %d, want 400", resp.StatusCode)
	}

	// Fill in order against 300 of headroom: 200 fits (100 left), 150
	// does not, 100 fits exactly.
	resp, err = ts.Client().Post(ts.URL+"/demandz", "application/json",
		strings.NewReader(`{"demands":[{"src":0,"dst":1,"gbps":200},{"src":1,"dst":2,"gbps":150},{"src":2,"dst":0,"gbps":100}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar AdmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.Round != 4 || ar.Policy != "dynamic" || ar.HeadroomGbps != 300 {
		t.Fatalf("admission snapshot = %+v", ar)
	}
	if ar.Admitted != 2 || ar.Rejected != 1 || ar.AdmittedGbps != 300 || ar.OfferedGbps != 450 {
		t.Fatalf("fill-in-order admission = %+v", ar)
	}

	// The probe landed on the SLI demand counters.
	totals := layer.Registry().Totals()
	if totals[sli.MetricDemandBatches] != 1 || totals[sli.MetricDemandsTotal] != 3 {
		t.Fatalf("SLI demand counters = %v", totals)
	}
	if totals[sli.MetricDemandGbpsTotal] != 450 || totals[sli.MetricDemandAdmitGbps] != 300 {
		t.Fatalf("SLI demand volume counters = %v", totals)
	}
}

func TestAdmitAgainstZeroHeadroom(t *testing.T) {
	ar := AdmitAgainst(-1, "", 0, 0, []float64{10})
	if ar.Round != -1 || ar.HeadroomGbps != 0 || ar.Admitted != 0 || ar.Rejected != 1 {
		t.Fatalf("pre-first-round admission = %+v", ar)
	}
	// Oversubscribed snapshots never report negative headroom.
	if ar := AdmitAgainst(0, "p", 100, 250, nil); ar.HeadroomGbps != 0 {
		t.Fatalf("oversubscribed headroom = %v, want 0", ar.HeadroomGbps)
	}
}

// TestScrapeSelfTimingFeedsSLI: each /metrics scrape lands one sample
// on the SLI scrape counters, and the scrape body carries the
// rwc_sli_* families without leaking the layer's internal series.
func TestScrapeSelfTimingFeedsSLI(t *testing.T) {
	layer := sli.New(sli.Options{Tool: "rwc-wansimd"})
	o := newTestBundle(t)
	s := New(Options{Obs: o, SLI: layer})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get(t, ts, "/metrics")
	_, body := get(t, ts, "/metrics")
	totals := layer.Registry().Totals()
	if totals[sli.MetricScrapesTotal] < 2 {
		t.Fatalf("%s = %v, want >= 2", sli.MetricScrapesTotal, totals[sli.MetricScrapesTotal])
	}
	if !strings.Contains(body, sli.MetricScrapesTotal) {
		t.Fatalf("/metrics body missing %s:\n%s", sli.MetricScrapesTotal, body)
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "alerts_") {
			t.Fatalf("SLI-internal alert series leaked into the shared scrape: %s", line)
		}
	}
	// The run registry (artifact surface) saw none of it.
	if len(o.Metrics.Totals()) != 0 {
		t.Fatalf("scrape accounting wrote into the app registry: %v", o.Metrics.Totals())
	}
}

// gatedWriter is an SSE ResponseWriter whose first body write parks
// until the test releases it — a deterministic way to hold the
// handler between its Subscribe and its Draining() check.
type gatedWriter struct {
	header  http.Header
	attempt chan struct{} // closed on first Write
	release chan struct{} // Writes park until closed
	once    sync.Once
	mu      sync.Mutex
	buf     bytes.Buffer
}

func (g *gatedWriter) Header() http.Header { return g.header }
func (g *gatedWriter) WriteHeader(int)     {}
func (g *gatedWriter) Flush()              {}
func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() { close(g.attempt) })
	<-g.release
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}

// TestSSEShutdownDropsCountedByCause is the drop-accounting regression
// test for graceful drain: events buffered for a subscriber but
// undelivered when Drain ends the session are counted under
// cause="shutdown" — on the server registry and the SLI layer — and
// never under cause="slow-consumer".
func TestSSEShutdownDropsCountedByCause(t *testing.T) {
	o := newTestBundle(t)
	layer := sli.New(sli.Options{Tool: "rwc-wansimd"})
	s := New(Options{Obs: o, SLI: layer, SSEBuffer: 16, Heartbeat: time.Hour})

	// One backlog event makes the first body write deterministic.
	o.Event("backlog", obs.A("i", 0))

	gw := &gatedWriter{header: make(http.Header), attempt: make(chan struct{}), release: make(chan struct{})}
	req := httptest.NewRequest(http.MethodGet, "/traces", nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(gw, req)
	}()

	// The handler has subscribed and is parked mid-backlog delivery;
	// everything emitted now is buffered for it but never delivered.
	<-gw.attempt
	for i := 0; i < 3; i++ {
		o.Event("late", obs.A("i", i))
	}
	s.Drain()
	close(gw.release)
	<-done

	shutKey := `obs_trace_dropped_total{cause="` + sli.DropShutdown + `"}`
	slowKey := `obs_trace_dropped_total{cause="` + sli.DropSlowConsumer + `"}`
	totals := s.Registry().Totals()
	if totals[shutKey] != 3 {
		t.Fatalf("%s = %v, want 3", shutKey, totals[shutKey])
	}
	if totals[slowKey] != 0 {
		t.Fatalf("%s = %v, want 0 (a drain is not the client's slowness)", slowKey, totals[slowKey])
	}
	sliTotals := layer.Registry().Totals()
	if got := sliTotals[sli.MetricSSEDroppedTotal+`{cause="`+sli.DropShutdown+`"}`]; got != 3 {
		t.Fatalf("SLI shutdown drops = %v, want 3", got)
	}
	// The delivered stream is the backlog prefix, then the session ended.
	if got := gw.buf.String(); !strings.Contains(got, `"backlog"`) || strings.Contains(got, `"late"`) {
		t.Fatalf("delivered stream = %q; want the backlog only", got)
	}
}
