package serve

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/sli"
)

// This file implements the /traces endpoint: a Server-Sent Events
// stream of the run's trace events, in the exact JSON shape of the
// -trace-out JSONL artifact (obs.MarshalEvent). A client joining
// mid-run first receives the backlog, then live events, observing
// every event exactly once in sequence order — Tracer.Subscribe
// captures backlog and registration atomically.
//
// A slow client never blocks or reorders the simulation's stream:
// when its buffer fills, the newest events are dropped for that client
// (the delivered stream stays an exact prefix of the record, plus a
// gap visible in the seq numbers) and counted in the server-owned
// obs_trace_dropped_total{cause="slow-consumer"}. A graceful Drain
// ends the session instead; events still buffered but undelivered at
// that point are counted under cause="shutdown", so the two ways a
// client can miss events stay distinguishable.

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	tracer := s.tracer()
	if tracer == nil {
		http.Error(w, "tracing disabled for this run", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}

	backlog, sub := tracer.Subscribe(s.opts.SSEBuffer)
	defer sub.Close()

	clients := s.reg.Gauge("obs_sse_clients", "Currently connected /traces SSE clients.")
	clients.Add(1)
	s.opts.SLI.SSESubscribers(int(s.sseClients.Add(1)))
	defer func() {
		clients.Add(-1)
		s.opts.SLI.SSESubscribers(int(s.sseClients.Add(-1)))
	}()
	droppedSlow := s.reg.Counter("obs_trace_dropped_total",
		"Trace events dropped on the /traces SSE fan-out, by cause (slow-consumer: drop-newest on a full client buffer; shutdown: buffered but undelivered at graceful drain).",
		obs.L("cause", sli.DropSlowConsumer))
	var droppedSeen uint64
	syncDropped := func() {
		if d := sub.Dropped(); d > droppedSeen {
			droppedSlow.Add(float64(d - droppedSeen))
			s.opts.SLI.SSEDropped(sli.DropSlowConsumer, d-droppedSeen)
			droppedSeen = d
		}
	}
	// dropShutdown counts the events a graceful drain leaves in the
	// subscription buffer: delivered-stream truncation the client can
	// attribute to the server stopping, not to its own slowness.
	dropShutdown := func() {
		n := uint64(len(sub.C()))
		if n == 0 {
			return
		}
		s.reg.Counter("obs_trace_dropped_total",
			"Trace events dropped on the /traces SSE fan-out, by cause (slow-consumer: drop-newest on a full client buffer; shutdown: buffered but undelivered at graceful drain).",
			obs.L("cause", sli.DropShutdown)).Add(float64(n))
		s.opts.SLI.SSEDropped(sli.DropShutdown, n)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	for _, e := range backlog {
		if err := writeSSEEvent(w, e); err != nil {
			return
		}
	}
	fl.Flush()
	// A session starting after Drain serves the backlog (final-state
	// reads stay possible until Close) and ends immediately.
	if s.Draining() {
		syncDropped()
		dropShutdown()
		return
	}

	// The heartbeat keeps proxies from reaping idle connections and
	// bounds how stale the dropped-event counter can go. It is wall
	// time by nature: this goroutine serves an external client and
	// never touches simulation state or artifacts.
	heartbeat := time.NewTicker(s.opts.Heartbeat) //nolint:nowalltime // SSE keep-alive for a live HTTP client; no simulation state involved
	defer heartbeat.Stop()

	for {
		select {
		case <-r.Context().Done():
			syncDropped()
			return
		case <-s.drainCh:
			// Graceful shutdown: end the session now, counting what the
			// buffer still holds as shutdown drops rather than racing to
			// deliver it.
			syncDropped()
			dropShutdown()
			return
		case <-heartbeat.C:
			syncDropped()
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil { //nolint:chanorder // keep-alive comment frame on a live HTTP stream; trace events carry seq numbers, so where heartbeats interleave cannot reorder the artifact
				return
			}
			fl.Flush()
		case e, open := <-sub.C():
			if !open {
				syncDropped()
				return
			}
			if err := writeSSEEvent(w, e); err != nil {
				syncDropped()
				return
			}
			// Drain whatever else is already buffered before flushing so
			// a burst costs one flush, then report drops.
			for drained := true; drained; {
				select {
				case e, open := <-sub.C():
					if !open {
						fl.Flush()
						syncDropped()
						return
					}
					if err := writeSSEEvent(w, e); err != nil {
						syncDropped()
						return
					}
				default:
					drained = false
				}
			}
			fl.Flush()
			syncDropped()
		}
	}
}

// writeSSEEvent renders one trace event as an SSE frame. The data
// payload is byte-identical to the corresponding -trace-out JSONL line.
func writeSSEEvent(w http.ResponseWriter, e obs.Event) error {
	line, err := obs.MarshalEvent(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: trace\nid: %d\ndata: %s\n\n", e.Seq, line)
	return err
}
