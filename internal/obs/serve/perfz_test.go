package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/perf"
)

func TestPerfzDisabledIs404(t *testing.T) {
	s := New(Options{Obs: newTestBundle(t), Tool: "serve-test", Seed: 7})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, body := get(t, ts, "/perfz")
	if code != http.StatusNotFound {
		t.Fatalf("/perfz without a recorder = %d, want 404", code)
	}
	if !strings.Contains(body, "-perf-out") {
		t.Fatalf("404 body should point at -perf-out: %q", body)
	}
}

func TestPerfzServesSnapshotWithWorkCounters(t *testing.T) {
	o := newTestBundle(t)
	o.Counter("rwc_work_dijkstra_pops_total", "pops", obs.L("policy", "dynamic")).Add(321)
	o.Counter("wan_changes_total", "changes", obs.L("policy", "dynamic")).Add(5)
	rec := perf.New("serve-test")
	rec.Observe("wan.round/dynamic", 2*time.Millisecond)

	s := New(Options{Obs: o, Tool: "serve-test", Seed: 7, Perf: rec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/perfz")
	if code != http.StatusOK {
		t.Fatalf("/perfz = %d: %s", code, body)
	}
	if !perf.IsReport([]byte(body)) {
		t.Fatalf("/perfz body does not sniff as a perf report: %s", body)
	}
	var rep perf.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "wan.round/dynamic" || rep.Phases[0].Count != 1 {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	// Work carries exactly the rwc_work_* series from the live registry.
	if v := rep.Work[`rwc_work_dijkstra_pops_total{policy="dynamic"}`]; v != 321 {
		t.Fatalf("work = %v, want the registry's pops counter", rep.Work)
	}
	for k := range rep.Work {
		if !strings.HasPrefix(k, perf.WorkPrefix) {
			t.Fatalf("non-work series %q leaked into /perfz", k)
		}
	}
}
