// Package serve is the live half of the operations plane: an HTTP
// server exposing a running simulation's observability bundle —
// Prometheus metrics, health/readiness, run info, a live SSE trace
// tail, and net/http/pprof — without perturbing the run.
//
// The cardinal rule is that serving is read-only over snapshots: every
// endpoint reads Registry.Snapshot(), Tracer.Subscribe() backlogs, or
// immutable run info, and server-side bookkeeping (scrape counts, SSE
// client counts, dropped-event totals) lives in a *server-owned*
// registry that is rendered on /metrics but never written into run
// artifacts. A run with -serve therefore produces byte-identical
// metrics/trace/manifest files to the same run without it — the CI
// live-serve smoke asserts exactly this with cmp(1).
//
// This package sits under internal/obs and is therefore subject to the
// nowalltime lint rule. The few wall-clock reads HTTP serving
// legitimately needs (the SSE heartbeat ticker) are individually
// suppressed with justifications; nothing here feeds wall time back
// into the simulation or its artifacts.
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/hist"
	"repro/internal/obs/perf"
	"repro/internal/obs/sli"
)

// Options configures a Server.
type Options struct {
	// Obs is the running simulation's observability bundle. Individual
	// nil sinks degrade per endpoint (/metrics without a registry and
	// /traces without a tracer answer 404).
	Obs *obs.Obs
	// Tool and Seed identify the run on /runz.
	Tool string
	Seed uint64
	// Flight is the run's flight recorder (nil when recording is off).
	// /flightz serves its run tables and most recent frames, and
	// /metrics appends its recorder-owned labeled link series
	// (wan_link_snr_db{link=...} and friends) after the app and server
	// registries. Like server bookkeeping, those series never enter run
	// artifacts — the flight log carries its own deterministic copy.
	Flight *flight.Recorder
	// Hist is the run's metrics-history store (nil when history is
	// off). /queryz answers range queries and /seriesz lists series;
	// both answer 404 when nil. Queries read merged snapshots under the
	// store lock, never blocking recording for longer than one copy.
	Hist *hist.Store
	// Perf is the run's wall-clock perf recorder (nil when -perf-out is
	// off). /perfz serves its live snapshot — phase latencies, memory
	// deltas, and the registry's rwc_work_* counters — and answers 404
	// when nil. Like every perf reading, the snapshot never enters the
	// deterministic run artifacts.
	Perf *perf.Recorder
	// SSEBuffer is the per-client event channel depth (default 256).
	// When a client cannot keep up, the newest events are dropped for
	// that client — never buffered unboundedly, never blocking the
	// simulation — and counted in obs_trace_dropped_total with
	// cause="slow-consumer" (cause="shutdown" counts events a graceful
	// Drain left undelivered).
	SSEBuffer int
	// Heartbeat is the SSE keep-alive comment interval (default 15s).
	Heartbeat time.Duration
	// SLI is the daemon's service-level-indicator layer (nil outside
	// service mode). /metrics appends its rwc_sli_* families and times
	// itself into it, /sliz serves its snapshot, /queryz and /seriesz
	// extend over its history store, and the SSE handler reports
	// subscriber counts and per-cause drops into it. Like the flight
	// and server registries, it never enters run artifacts.
	SLI *sli.Layer
	// Admit answers /demandz feasibility probes against the daemon's
	// latest-round snapshot (nil answers 404). The input is the probe's
	// per-demand volumes; the response must be read-only with respect
	// to simulation state.
	Admit func(volumes []float64) AdmitResponse
}

// Server is the operations-plane HTTP server. Construct with New (for
// tests, via Handler) or Start (to actually listen).
type Server struct {
	opts       Options
	mux        *http.ServeMux
	reg        *obs.Registry // server-owned: scrape/SSE bookkeeping, never in artifacts
	scrapes    *obs.Counter
	queries    *obs.Counter
	ready      atomic.Bool
	sseClients atomic.Int64
	ln         net.Listener
	srv        *http.Server
	// drainCh closes on Drain(): pass one of the graceful two-pass
	// shutdown. SSE sessions end, counting undelivered buffered events
	// as cause="shutdown" drops; the listener stays up for final
	// scrapes until Close().
	drainCh   chan struct{}
	drainOnce sync.Once
}

// New builds a server without binding a listener.
func New(opts Options) *Server {
	if opts.SSEBuffer <= 0 {
		opts.SSEBuffer = 256
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 15 * time.Second
	}
	s := &Server{opts: opts, mux: http.NewServeMux(), reg: obs.NewRegistry(), drainCh: make(chan struct{})}
	s.scrapes = s.reg.Counter("obs_scrapes_total", "Scrapes served on /metrics.")
	s.queries = s.reg.Counter("obs_queries_total", "History queries served on /queryz and /seriesz.")
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/sliz", s.handleSliz)
	s.mux.HandleFunc("/demandz", s.handleDemandz)
	s.mux.HandleFunc("/queryz", s.handleQueryz)
	s.mux.HandleFunc("/seriesz", s.handleSeriesz)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/runz", s.handleRunz)
	s.mux.HandleFunc("/traces", s.handleTraces)
	s.mux.HandleFunc("/flightz", s.handleFlightz)
	s.mux.HandleFunc("/perfz", s.handlePerfz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Start builds a server and binds it to addr, serving in a background
// goroutine. The returned server's Addr reports the bound address
// (useful with ":0").
func Start(addr string, opts Options) (*Server, error) {
	s := New(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// ErrServerClosed is the normal Close() path; anything else has
		// already been reported to the client side.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Handler exposes the route mux for httptest-based tests.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry is the server-owned bookkeeping registry (scrapes, SSE
// clients, drops). Exposed for tests; run artifacts never include it.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Addr reports the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// SetReady flips the /readyz state. cmd/ marks ready once flags are
// validated and the simulation is constructed.
func (s *Server) SetReady(ready bool) {
	if s == nil {
		return
	}
	s.ready.Store(ready)
}

// Drain begins the graceful half of the two-pass shutdown: /readyz
// flips unready (load balancers stop sending), SSE sessions end with
// their undelivered buffered events counted as cause="shutdown" drops,
// and the listener stays up so final scrapes and artifact checks can
// still read the terminal state. Idempotent; safe before Start and on
// nil.
func (s *Server) Drain() {
	if s == nil {
		return
	}
	s.ready.Store(false)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	if s == nil {
		return false
	}
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// Close stops the listener and any in-flight handlers (SSE streams see
// their connections reset). Safe before Start and on nil.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// handleMetrics renders the application registry followed by the
// server-owned registry in one exposition. Family names are disjoint
// by construction (server metrics use the obs_ prefix), so the
// concatenation is a valid scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	appReg := s.appRegistry()
	if appReg == nil {
		http.Error(w, "metrics registry disabled for this run", http.StatusNotFound)
		return
	}
	// Scrape self-timing is itself an SLI (scrape_latency_slo burns on
	// it). The wall read stays on the serve/sli side of the
	// determinism line: it is injected into the SLI layer, never into
	// the run bundle or its artifacts.
	scrapeStart := time.Now() //nolint:nowalltime // /metrics self-timing for the SLI layer; no simulation state involved
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := appReg.WritePrometheus(w); err != nil {
		return // client went away mid-write; nothing to clean up
	}
	_ = s.reg.WritePrometheus(w)
	// The flight recorder's labeled per-link series ride the same
	// scrape; its family names (wan_link_*, obs_flight_*) are disjoint
	// from both registries above.
	if s.opts.Flight != nil {
		_ = s.opts.Flight.Registry().WritePrometheus(w)
	}
	// The SLI layer's registry renders only its rwc_sli_* families:
	// its internal alert-engine bookkeeping (alerts_*) would collide
	// with the app registry's families on a shared scrape, and /sliz
	// carries that state instead.
	if s.opts.SLI != nil {
		_ = s.opts.SLI.Registry().WritePrometheusPrefix(w, sli.Prefix)
	}
	// Counted after rendering so a scrape reports the scrapes that
	// completed before it.
	s.scrapes.Inc()
	s.opts.SLI.ScrapeObserved(time.Since(scrapeStart)) //nolint:nowalltime // closes the /metrics self-timing window opened above
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// runzJSON is the /runz response shape: enough to identify a run and
// see where it is, in the spirit of /debug/vars.
type runzJSON struct {
	Tool         string `json:"tool"`
	Seed         uint64 `json:"seed"`
	GoVersion    string `json:"go_version"`
	Ready        bool   `json:"ready"`
	SimNowNs     int64  `json:"sim_now_ns"`
	TraceEvents  int    `json:"trace_events"`
	MetricSeries int    `json:"metric_series"`
	SSEClients   int    `json:"sse_clients"`
}

func (s *Server) handleRunz(w http.ResponseWriter, r *http.Request) {
	o := s.opts.Obs
	info := runzJSON{
		Tool:       s.opts.Tool,
		Seed:       s.opts.Seed,
		GoVersion:  runtime.Version(),
		Ready:      s.ready.Load(),
		SSEClients: int(s.sseClients.Load()),
	}
	if o != nil {
		info.SimNowNs = o.Clock.Now().Nanoseconds()
		info.TraceEvents = o.Trace.Len()
		if o.Metrics != nil {
			info.MetricSeries = len(o.Metrics.Snapshot())
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(info)
}

// flightzJSON is the /flightz response: the bound run tables plus the
// most recent frames from the recorder's ring, newest last.
type flightzJSON struct {
	Runs   []flight.Run         `json:"runs"`
	Recent []flight.RoundRecord `json:"recent"`
}

// handleFlightz serves the flight recorder's live state. Reads come
// from recorder snapshots, so the handler never blocks recording.
func (s *Server) handleFlightz(w http.ResponseWriter, r *http.Request) {
	rec := s.opts.Flight
	if rec == nil {
		http.Error(w, "flight recording disabled for this run", http.StatusNotFound)
		return
	}
	info := flightzJSON{Runs: rec.Runs(), Recent: rec.Recent(16)}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(info)
}

// handlePerfz serves the perf recorder's live snapshot: per-phase wall
// latencies, memory deltas, and the deterministic rwc_work_* counters
// read from the run's registry at request time. Wall readings stay on
// this side channel; the snapshot is never written into run artifacts.
func (s *Server) handlePerfz(w http.ResponseWriter, r *http.Request) {
	rec := s.opts.Perf
	if rec == nil {
		http.Error(w, "perf capture disabled for this run (enable with -perf-out)", http.StatusNotFound)
		return
	}
	var work map[string]float64
	if s.opts.Obs != nil && s.opts.Obs.Metrics != nil {
		work = perf.FilterWork(s.opts.Obs.Metrics.Totals())
	}
	w.Header().Set("Content-Type", "application/json")
	if err := rec.WriteJSON(w, work); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) appRegistry() *obs.Registry {
	if s.opts.Obs == nil {
		return nil
	}
	return s.opts.Obs.Metrics
}

func (s *Server) tracer() *obs.Tracer {
	if s.opts.Obs == nil {
		return nil
	}
	return s.opts.Obs.Trace
}
