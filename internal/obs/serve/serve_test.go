package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestBundle(t *testing.T) *obs.Obs {
	t.Helper()
	o := obs.New("serve-test")
	o.Manifest.SetSeed(7)
	return o
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthAndReadiness(t *testing.T) {
	s := New(Options{Obs: newTestBundle(t), Tool: "serve-test", Seed: 7})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := get(t, ts, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady = %d, want 503", code)
	}
	s.SetReady(true)
	if code, body := get(t, ts, "/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("/readyz after SetReady = %d %q", code, body)
	}
	s.SetReady(false)
	if code, _ := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after SetReady(false) = %d, want 503", code)
	}
}

func TestMetricsServesAppAndServerRegistries(t *testing.T) {
	o := newTestBundle(t)
	o.Counter("app_total", "app counter").Add(3)
	s := New(Options{Obs: o})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two scrapes: the second must see the first counted.
	get(t, ts, "/metrics")
	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	totals, err := obs.PromTotals(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if totals["app_total"] != 3 {
		t.Fatalf("app_total = %v, want 3", totals["app_total"])
	}
	if totals["obs_scrapes_total"] != 1 {
		t.Fatalf("obs_scrapes_total on second scrape = %v, want 1", totals["obs_scrapes_total"])
	}
	// Server bookkeeping must not leak into the app registry (artifacts).
	for key := range o.Metrics.Totals() {
		if strings.HasPrefix(key, "obs_") {
			t.Fatalf("server-owned series %s leaked into the app registry", key)
		}
	}
}

func TestMetricsWithoutRegistry404s(t *testing.T) {
	s := New(Options{Obs: nil})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := get(t, ts, "/metrics"); code != http.StatusNotFound {
		t.Fatalf("/metrics without registry = %d, want 404", code)
	}
	if code, _ := get(t, ts, "/traces"); code != http.StatusNotFound {
		t.Fatalf("/traces without tracer = %d, want 404", code)
	}
}

func TestRunzReportsRunInfo(t *testing.T) {
	o := newTestBundle(t)
	o.SetSimTime(90 * time.Minute)
	o.Event("round.complete")
	o.Gauge("g", "g").Set(1)
	s := New(Options{Obs: o, Tool: "rwc-wansim", Seed: 2017})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/runz")
	if code != http.StatusOK {
		t.Fatalf("/runz = %d", code)
	}
	var info struct {
		Tool         string `json:"tool"`
		Seed         uint64 `json:"seed"`
		Ready        bool   `json:"ready"`
		SimNowNs     int64  `json:"sim_now_ns"`
		TraceEvents  int    `json:"trace_events"`
		MetricSeries int    `json:"metric_series"`
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("/runz is not JSON: %v\n%s", err, body)
	}
	if info.Tool != "rwc-wansim" || info.Seed != 2017 || !info.Ready {
		t.Fatalf("runz identity wrong: %+v", info)
	}
	if info.SimNowNs != (90 * time.Minute).Nanoseconds() {
		t.Fatalf("sim_now_ns = %d", info.SimNowNs)
	}
	if info.TraceEvents != 1 || info.MetricSeries != 1 {
		t.Fatalf("runz counts wrong: %+v", info)
	}
}

func TestPprofIndexServes(t *testing.T) {
	s := New(Options{Obs: newTestBundle(t)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, body := get(t, ts, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (goroutine profile missing)", code)
	}
}

// sseFrame is one parsed `event:`/`id:`/`data:` frame.
type sseFrame struct {
	event string
	data  string
}

// readSSEFrames consumes frames from the stream until n trace frames
// have arrived (heartbeat comments are skipped).
func readSSEFrames(t *testing.T, r *bufio.Reader, n int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for len(frames) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended after %d/%d frames: %v", len(frames), n, err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.data != "":
			frames = append(frames, cur)
			cur = sseFrame{}
		}
	}
	return frames
}

func sseSeqs(t *testing.T, frames []sseFrame) []int {
	t.Helper()
	seqs := make([]int, len(frames))
	for i, f := range frames {
		if f.event != "trace" {
			t.Fatalf("frame %d has event %q, want trace", i, f.event)
		}
		var rec struct {
			Seq int `json:"seq"`
		}
		if err := json.Unmarshal([]byte(f.data), &rec); err != nil {
			t.Fatalf("frame %d data is not a trace JSON line: %v (%s)", i, err, f.data)
		}
		seqs[i] = rec.Seq
	}
	return seqs
}

func TestSSEMidRunJoinSeesEveryEventOnce(t *testing.T) {
	o := newTestBundle(t)
	// The buffer must exceed the 100 live events below: delivery may
	// then never depend on how promptly the handler goroutine drains
	// (under -race it can stall long enough to overflow a small buffer,
	// which correctly drops events — but this test asserts lossless
	// delivery, so it must make loss impossible, not just unlikely).
	s := New(Options{Obs: o, SSEBuffer: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 5 events exist before the client connects.
	for i := 0; i < 5; i++ {
		o.Event("pre", obs.A("i", i))
	}

	resp, err := ts.Client().Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	// Backlog arrives first.
	backlog := readSSEFrames(t, br, 5)
	// Then live events, written concurrently from several goroutines
	// (the simulation's fan-out workers publish through the same
	// tracer mutex).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				o.Event("live", obs.A("g", g))
			}
		}(g)
	}
	wg.Wait()
	live := readSSEFrames(t, br, 100)

	seqs := sseSeqs(t, append(backlog, live...))
	for i, seq := range seqs {
		if seq != i+1 {
			t.Fatalf("frame %d carries seq %d; stream must be every event exactly once in order (seqs: %v)", i, seq, seqs[:i+1])
		}
	}
}

func TestSSESlowConsumerDropsAreCounted(t *testing.T) {
	o := newTestBundle(t)
	// Tiny buffer and long heartbeat: the client reads nothing while
	// the run floods events, so drops are guaranteed.
	s := New(Options{Obs: o, SSEBuffer: 1, Heartbeat: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	// Wait until the subscription is registered (the gauge flips to 1).
	waitFor(t, func() bool {
		return s.Registry().Totals()["obs_sse_clients"] == 1
	}, "SSE client registration")

	const n = 500
	for i := 0; i < n; i++ {
		o.Event("flood", obs.A("i", i))
	}

	// Drain the stream; the handler syncs the drop counter as it
	// forwards what survived the buffer.
	got := readSSEFrames(t, br, 1)
	seqs := sseSeqs(t, got)
	if seqs[0] != 1 {
		t.Fatalf("first delivered event seq = %d; drop-newest must preserve the prefix", seqs[0])
	}
	resp.Body.Close()

	waitFor(t, func() bool {
		return s.Registry().Totals()[`obs_trace_dropped_total{cause="slow-consumer"}`] > 0
	}, "dropped events counted in obs_trace_dropped_total{cause=\"slow-consumer\"}")
	// The app registry (artifact surface) must stay untouched.
	if len(o.Metrics.Totals()) != 0 {
		t.Fatalf("SSE serving wrote into the app registry: %v", o.Metrics.Totals())
	}
}

func TestSSEDeliveredStreamIsExactPrefixUnderOverflow(t *testing.T) {
	// Pure-subscription variant of the drop test, no HTTP: with a
	// buffer of k and no reader, exactly events 1..k are delivered and
	// the rest counted — deterministically, because drop-newest never
	// depends on timing, only on buffer occupancy.
	o := newTestBundle(t)
	_, sub := o.Trace.Subscribe(4)
	defer sub.Close()
	for i := 0; i < 20; i++ {
		o.Event("e", obs.A("i", i))
	}
	var seqs []int
	for len(sub.C()) > 0 {
		e := <-sub.C()
		seqs = append(seqs, e.Seq)
	}
	if want := []int{1, 2, 3, 4}; fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want exact prefix %v", seqs, want)
	}
	if sub.Dropped() != 16 {
		t.Fatalf("Dropped() = %d, want 16", sub.Dropped())
	}
}

func TestStartBindsAndCloses(t *testing.T) {
	o := newTestBundle(t)
	s, err := Start("127.0.0.1:0", Options{Obs: o, Tool: "t", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" {
		t.Fatal("Addr() empty after Start")
	}
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over real listener = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}

func TestServingDoesNotPerturbArtifacts(t *testing.T) {
	// The byte-identity core of the live-ops design: running the same
	// event/metric sequence with a scraping+tailing server attached
	// produces the same artifact bytes as without one.
	record := func(o *obs.Obs) {
		for r := 1; r <= 10; r++ {
			o.SetSimTime(time.Duration(r) * time.Hour)
			o.Gauge("g", "g", obs.L("policy", "dynamic")).Set(float64(r))
			o.Counter("c_total", "c").Inc()
			o.Event("round", obs.A("round", r))
		}
	}
	artifacts := func(o *obs.Obs) string {
		var m, tr bytes.Buffer
		if err := o.Metrics.WritePrometheus(&m); err != nil {
			t.Fatal(err)
		}
		if err := o.Trace.WriteJSONL(&tr); err != nil {
			t.Fatal(err)
		}
		return m.String() + "\x00" + tr.String()
	}

	plain := obs.New("t")
	record(plain)

	served := obs.New("t")
	s := New(Options{Obs: served, SSEBuffer: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	record(served)
	get(t, ts, "/metrics")
	get(t, ts, "/metrics")

	if artifacts(plain) != artifacts(served) {
		t.Fatal("serving perturbed the run artifacts")
	}
}

// waitFor polls cond (serving is asynchronous wall-clock territory;
// this is a test-only synchronization helper).
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
