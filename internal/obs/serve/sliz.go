package serve

// The service-mode endpoints of the operations plane: /sliz serves the
// SLI layer's snapshot (config generation, uptime, active burn-rate
// alerts, rwc_sli_* totals, recent lifecycle events) and /demandz
// answers the load generator's demand-batch feasibility probes against
// the daemon's latest-round snapshot. Both are read-only with respect
// to simulation state and exist only when the daemon wires them, so a
// batch run's serve plane is unchanged.

import (
	"encoding/json"
	"net/http"
)

// handleSliz serves the SLI layer snapshot; 404 outside service mode.
func (s *Server) handleSliz(w http.ResponseWriter, r *http.Request) {
	if s.opts.SLI == nil {
		http.Error(w, "service-level indicators disabled (not running in daemon mode)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.opts.SLI.Snapshot())
}

// demandzRequest is the /demandz request body: one batch of demand
// volumes (the load generator streams gravity-model batches).
type demandzRequest struct {
	Demands []demandzDemand `json:"demands"`
}

// demandzDemand is one probe demand. Src/Dst are informational — the
// admission answer is aggregate headroom, not a routing decision.
type demandzDemand struct {
	Src  int     `json:"src"`
	Dst  int     `json:"dst"`
	Gbps float64 `json:"gbps"`
}

// AdmitResponse is the /demandz response: an advisory feasibility
// answer from the latest completed round's capacity/throughput
// snapshot.
type AdmitResponse struct {
	// Round and Policy identify the snapshot the answer was computed
	// against (-1 before the first round completes).
	Round  int    `json:"round"`
	Policy string `json:"policy"`
	// CapacityGbps and ShippedGbps echo the round snapshot; headroom
	// is their difference (floored at zero).
	CapacityGbps float64 `json:"capacity_gbps"`
	ShippedGbps  float64 `json:"shipped_gbps"`
	HeadroomGbps float64 `json:"headroom_gbps"`
	// OfferedGbps sums the probe's volumes; AdmittedGbps and Admitted
	// are what fits into headroom, filling demands in request order.
	OfferedGbps  float64 `json:"offered_gbps"`
	AdmittedGbps float64 `json:"admitted_gbps"`
	Admitted     int     `json:"admitted"`
	Rejected     int     `json:"rejected"`
}

// handleDemandz answers one demand-batch probe; 404 outside service
// mode, 405 on non-POST, 400 on a bad body.
func (s *Server) handleDemandz(w http.ResponseWriter, r *http.Request) {
	if s.opts.Admit == nil {
		http.Error(w, "demand admission disabled (not running in daemon mode)", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON demand batch", http.StatusMethodNotAllowed)
		return
	}
	var req demandzRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad demand batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	volumes := make([]float64, len(req.Demands))
	for i, d := range req.Demands {
		volumes[i] = d.Gbps
	}
	resp := s.opts.Admit(volumes)
	s.opts.SLI.DemandBatch(len(volumes), resp.OfferedGbps, resp.AdmittedGbps)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// AdmitAgainst computes the standard admission answer: fill the
// probe's volumes in order against the snapshot's headroom. Exported
// helper so the daemon's Admit closure and tests share one policy.
func AdmitAgainst(round int, policy string, capacity, shipped float64, volumes []float64) AdmitResponse {
	resp := AdmitResponse{
		Round:        round,
		Policy:       policy,
		CapacityGbps: capacity,
		ShippedGbps:  shipped,
	}
	if h := capacity - shipped; h > 0 {
		resp.HeadroomGbps = h
	}
	room := resp.HeadroomGbps
	for _, v := range volumes {
		resp.OfferedGbps += v
		if v <= room {
			room -= v
			resp.AdmittedGbps += v
			resp.Admitted++
		} else {
			resp.Rejected++
		}
	}
	return resp
}
