package serve

// The history endpoints of the operations plane: /seriesz lists every
// stored series, /queryz answers range queries with the hist package's
// ops (raw/delta/rate/min/max/avg/last/count/quantile). Like every
// other endpoint, reads are snapshot-based (Store.Query merges under
// the store lock and returns copies) and the query counter lives in
// the server-owned registry, so serving history never perturbs run
// artifacts.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs/hist"
)

// queryzJSON is the /queryz response shape.
type queryzJSON struct {
	Query   queryzEcho    `json:"query"`
	Results []hist.Result `json:"results"`
}

// queryzEcho replays the parsed query so clients can confirm how
// their parameters were interpreted.
type queryzEcho struct {
	Selector string  `json:"q"`
	FromNs   int64   `json:"from_ns"`
	ToNs     int64   `json:"to_ns"`
	Op       string  `json:"op,omitempty"`
	Quantile float64 `json:"quantile,omitempty"`
	Limit    int     `json:"limit,omitempty"`
	Blocks   bool    `json:"blocks,omitempty"`
}

// seriesJSON is the /seriesz response shape.
type seriesJSON struct {
	Dropped int               `json:"dropped,omitempty"`
	Series  []hist.SeriesInfo `json:"series"`
}

// histStores returns the queryable history stores in render order:
// the run's store (when -hist-out enabled one) followed by the SLI
// layer's store (when running in daemon mode). Series namespaces are
// disjoint (run metrics vs rwc_sli_*), so concatenation is safe.
func (s *Server) histStores() []*hist.Store {
	var stores []*hist.Store
	if s.opts.Hist != nil {
		stores = append(stores, s.opts.Hist)
	}
	if st := s.opts.SLI.Hist(); st != nil {
		stores = append(stores, st)
	}
	return stores
}

// handleSeriesz lists every history store's series in canonical order.
func (s *Server) handleSeriesz(w http.ResponseWriter, r *http.Request) {
	stores := s.histStores()
	if len(stores) == 0 {
		http.Error(w, "metrics history disabled for this run (enable with -hist-out)", http.StatusNotFound)
		return
	}
	info := seriesJSON{}
	for _, st := range stores {
		info.Dropped += st.Dropped()
		info.Series = append(info.Series, st.Series()...)
	}
	if info.Series == nil {
		info.Series = []hist.SeriesInfo{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(info)
	s.queries.Inc()
}

// handleQueryz answers one range query. Parameters:
//
//	q        selector, `name` or `name{k="v",...}` (required)
//	from_ns  inclusive lower sim-time bound (default 0)
//	to_ns    inclusive upper sim-time bound (default -1 = unbounded)
//	op       raw|delta|rate|min|max|avg|last|count|quantile
//	quantile q for op=quantile, in (0,1]
//	limit    keep only the newest N samples per series
//	blocks   1/true to include the downsampled tier
func (s *Server) handleQueryz(w http.ResponseWriter, r *http.Request) {
	stores := s.histStores()
	if len(stores) == 0 {
		http.Error(w, "metrics history disabled for this run (enable with -hist-out)", http.StatusNotFound)
		return
	}
	params := r.URL.Query()
	q := hist.Query{Selector: params.Get("q"), ToNs: -1}
	if q.Selector == "" {
		http.Error(w, "missing required parameter q (series selector)", http.StatusBadRequest)
		return
	}
	var err error
	if v := params.Get("from_ns"); v != "" {
		if q.FromNs, err = strconv.ParseInt(v, 10, 64); err != nil {
			http.Error(w, fmt.Sprintf("bad from_ns: %v", err), http.StatusBadRequest)
			return
		}
	}
	if v := params.Get("to_ns"); v != "" {
		if q.ToNs, err = strconv.ParseInt(v, 10, 64); err != nil {
			http.Error(w, fmt.Sprintf("bad to_ns: %v", err), http.StatusBadRequest)
			return
		}
	}
	q.Op = params.Get("op")
	if v := params.Get("quantile"); v != "" {
		if q.Quantile, err = strconv.ParseFloat(v, 64); err != nil {
			http.Error(w, fmt.Sprintf("bad quantile: %v", err), http.StatusBadRequest)
			return
		}
	}
	if v := params.Get("limit"); v != "" {
		if q.Limit, err = strconv.Atoi(v); err != nil {
			http.Error(w, fmt.Sprintf("bad limit: %v", err), http.StatusBadRequest)
			return
		}
	}
	if v := params.Get("blocks"); v == "1" || v == "true" {
		q.Blocks = true
	}

	var results []hist.Result
	for _, st := range stores {
		res, err := st.Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results = append(results, res...)
	}
	if results == nil {
		results = []hist.Result{}
	}
	resp := queryzJSON{
		Query: queryzEcho{
			Selector: q.Selector,
			FromNs:   q.FromNs,
			ToNs:     q.ToNs,
			Op:       q.Op,
			Quantile: q.Quantile,
			Limit:    q.Limit,
			Blocks:   q.Blocks,
		},
		Results: results,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
	s.queries.Inc()
}
