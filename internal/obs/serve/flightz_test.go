package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs/flight"
)

func testRecorder(t *testing.T) *flight.Recorder {
	t.Helper()
	rec := flight.New(flight.Options{})
	links := []flight.Link{{Edge: 0, Name: "sea->den", Fiber: 0}}
	if err := rec.Bind("", links, nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		rec.Record(flight.RoundRecord{
			Policy: "dynamic", Round: r, OfferedGbps: 100, ShippedGbps: 90, CapacityGbps: 200,
			Links: []flight.LinkRecord{{SNRdB: 8.5, TierGbps: 100, CapacityGbps: 100}},
		})
	}
	return rec
}

func TestFlightzServesRunsAndRecentFrames(t *testing.T) {
	s := New(Options{Obs: newTestBundle(t), Flight: testRecorder(t)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/flightz")
	if code != 200 {
		t.Fatalf("/flightz = %d: %s", code, body)
	}
	var info struct {
		Runs   []flight.Run         `json:"runs"`
		Recent []flight.RoundRecord `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Runs) != 1 || len(info.Runs[0].Links) != 1 || info.Runs[0].Links[0].Name != "sea->den" {
		t.Fatalf("runs = %+v", info.Runs)
	}
	if len(info.Recent) != 3 || info.Recent[2].Round != 2 {
		t.Fatalf("recent = %+v", info.Recent)
	}
}

func TestFlightzWithoutRecorder404s(t *testing.T) {
	s := New(Options{Obs: newTestBundle(t)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := get(t, ts, "/flightz"); code != 404 {
		t.Fatalf("/flightz without recorder = %d, want 404", code)
	}
}

func TestMetricsIncludesFlightSeries(t *testing.T) {
	s := New(Options{Obs: newTestBundle(t), Flight: testRecorder(t)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`wan_link_snr_db{link="sea->den",policy="dynamic"} 8.5`,
		"obs_flight_frames_total 3",
		"obs_scrapes_total", // server registry still present
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
