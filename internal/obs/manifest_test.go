package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestManifestJSONSchema(t *testing.T) {
	m := NewManifest("rwc-wansim")
	m.SetSeed(2017)
	m.SetOption("topology", "abilene")
	m.SetOption("rounds", "28")
	m.AddPhase("dynamic/round000", 1500*time.Microsecond)
	m.AddPhase("dynamic/round001", 2*time.Millisecond)
	m.SetMetricTotals(map[string]float64{"wan_changes_total": 4})

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Tool         string             `json:"tool"`
		GoVersion    string             `json:"go_version"`
		Seed         uint64             `json:"seed"`
		Options      map[string]string  `json:"options"`
		Phases       []PhaseRecord      `json:"phases"`
		MetricTotals map[string]float64 `json:"metric_totals"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Tool != "rwc-wansim" || back.Seed != 2017 {
		t.Fatalf("tool/seed = %q/%d", back.Tool, back.Seed)
	}
	if back.GoVersion == "" {
		t.Fatal("go_version empty")
	}
	if back.Options["topology"] != "abilene" || back.Options["rounds"] != "28" {
		t.Fatalf("options = %v", back.Options)
	}
	if len(back.Phases) != 2 || back.Phases[0].Name != "dynamic/round000" || back.Phases[0].WallNs != 1500000 {
		t.Fatalf("phases = %+v", back.Phases)
	}
	if back.MetricTotals["wan_changes_total"] != 4 {
		t.Fatalf("metric totals = %v", back.MetricTotals)
	}
}

func TestNilManifestIsNoOp(t *testing.T) {
	var m *Manifest
	m.SetSeed(1)
	m.SetOption("a", "b")
	m.AddPhase("x", time.Second)
	m.SetMetricTotals(map[string]float64{"a": 1})
	if m.Phases() != nil {
		t.Fatal("nil manifest recorded phases")
	}
	if err := m.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}
