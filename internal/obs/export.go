package obs

import "math"

// This file implements a complete, JSON-serializable dump of a metrics
// Registry and its inverse. The flight recorder embeds the dump in its
// log trailer so `rwc-replay replay` can re-render the exact Prometheus
// exposition of the original run from the log alone: Restore rebuilds
// the series storage bit-for-bit (encoding/json round-trips float64
// through the shortest decimal representation, which is exact), and
// WritePrometheus on the restored registry is then byte-identical to
// the original run's -metrics-out artifact.

// SeriesDump is one series in a RegistryDump.
type SeriesDump struct {
	Labels []Label `json:"labels,omitempty"`
	// Value is the counter total, gauge value, or histogram sum.
	Value float64 `json:"value"`
	// Histogram-only fields: observation count and per-bucket
	// (non-cumulative) counts aligned with the family's Upper bounds.
	Count   uint64   `json:"count,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// FamilyDump is one metric family in a RegistryDump, series sorted by
// label signature.
type FamilyDump struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Type   string       `json:"type"`
	Upper  []float64    `json:"upper,omitempty"`
	Series []SeriesDump `json:"series"`
}

// RegistryDump is a full copy of a registry's state, families sorted
// by name. Marshaling it to JSON and back loses nothing.
type RegistryDump struct {
	Families []FamilyDump `json:"families,omitempty"`
}

// Export copies the registry into a RegistryDump. Nil receivers export
// an empty dump.
func (r *Registry) Export() RegistryDump {
	if r == nil {
		return RegistryDump{}
	}
	snaps := r.Snapshot()
	r.mu.Lock()
	meta := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		meta[name] = f
	}
	r.mu.Unlock()
	var dump RegistryDump
	var cur *FamilyDump
	for _, s := range snaps {
		if cur == nil || cur.Name != s.Name {
			f := meta[s.Name]
			dump.Families = append(dump.Families, FamilyDump{
				Name:  s.Name,
				Help:  f.help,
				Type:  f.typ,
				Upper: append([]float64(nil), f.upper...),
			})
			cur = &dump.Families[len(dump.Families)-1]
		}
		sd := SeriesDump{Labels: s.Labels, Value: s.Value}
		if s.Type == typeHistogram {
			sd.Value = s.Sum
			sd.Count = s.Count
			sd.Buckets = append([]uint64(nil), s.Buckets...)
		}
		cur.Series = append(cur.Series, sd)
	}
	return dump
}

// Restore rebuilds a registry whose state matches the dump exactly, so
// WritePrometheus/Totals/Snapshot on the result reproduce the original
// registry's output byte-for-byte.
func (d RegistryDump) Restore() *Registry {
	r := NewRegistry()
	for _, fd := range d.Families {
		for _, sd := range fd.Series {
			s := r.getSeries(fd.Name, fd.Help, fd.Type, append([]float64(nil), fd.Upper...), sd.Labels)
			s.bits.Store(math.Float64bits(sd.Value))
			if fd.Type == typeHistogram {
				s.count.Store(sd.Count)
				for i := range sd.Buckets {
					if i < len(s.bucketCounts) {
						s.bucketCounts[i].Store(sd.Buckets[i])
					}
				}
			}
		}
	}
	return r
}
