package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the metrics registry: Prometheus-shaped
// counters, gauges, and fixed-bucket histograms with deterministic
// snapshot ordering (families sorted by name, series by label
// signature), exposable as Prometheus text format and as JSON.

// Label is one name="value" dimension on a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label at call sites.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric type names (also the Prometheus TYPE line values).
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is the shared storage behind every metric kind: a float64
// carried as atomic bits, plus histogram state when buckets are set.
type series struct {
	labels []Label
	bits   atomic.Uint64 // counter/gauge value, or histogram sum
	count  atomic.Uint64 // histogram observation count
	// bucketCounts[i] counts observations ≤ upper[i]; a final implicit
	// +Inf bucket is count.
	bucketCounts []atomic.Uint64
}

// addFloat atomically adds v to the float64 carried in bits and
// returns the new value (the history sink records running totals).
func (s *series) addFloat(v float64) float64 {
	for {
		old := s.bits.Load()
		next := math.Float64frombits(old) + v
		if s.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

func (s *series) load() float64 { return math.Float64frombits(s.bits.Load()) }

// family groups every series of one metric name.
type family struct {
	name, help, typ string
	upper           []float64 // histogram bucket upper bounds
	series          map[string]*series
}

// Registry holds metric families. All methods are safe for concurrent
// use and safe on a nil receiver (returning nil metrics whose methods
// are in turn nil-safe), so a disabled registry costs a nil check.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	// hist is the optional history sink (see history.go); nil keeps
	// every wrapper's handle nil, so history off is one nil check on
	// the hot path.
	hist HistorySink
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSignature serializes labels into the canonical ordering used
// for series identity and snapshot sorting.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString("=\"")
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// sortedLabels returns a canonically ordered copy.
func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// getSeries registers the family on first use and returns the series
// for the label set. Registering the same name with a different type
// panics: that is a programming error no run should paper over.
func (r *Registry) getSeries(name, help, typ string, upper []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, upper: upper, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	sig := labelSignature(labels)
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: sortedLabels(labels)}
		if typ == typeHistogram {
			s.bucketCounts = make([]atomic.Uint64, len(f.upper))
		}
		f.series[sig] = s
	}
	return s
}

// Counter is a monotonically increasing metric.
type Counter struct {
	s *series
	h HistorySeries
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, help, typeCounter, nil, labels)
	return &Counter{s: s, h: r.histSeries(name, s.labels, typeCounter)}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas are ignored: counters only go up).
func (c *Counter) Add(v float64) {
	if c == nil || c.s == nil || v < 0 {
		return
	}
	total := c.s.addFloat(v)
	if c.h != nil {
		c.h.Append(total)
	}
}

// Value reads the current total (0 when disabled).
func (c *Counter) Value() float64 {
	if c == nil || c.s == nil {
		return 0
	}
	return c.s.load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	s *series
	h HistorySeries
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, help, typeGauge, nil, labels)
	return &Gauge{s: s, h: r.histSeries(name, s.labels, typeGauge)}
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
	if g.h != nil {
		g.h.Append(v)
	}
}

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil || g.s == nil {
		return
	}
	total := g.s.addFloat(v)
	if g.h != nil {
		g.h.Append(total)
	}
}

// Value reads the current value (0 when disabled).
func (g *Gauge) Value() float64 {
	if g == nil || g.s == nil {
		return 0
	}
	return g.s.load()
}

// Histogram counts observations into fixed buckets.
type Histogram struct {
	s *series
	h HistorySeries
	// bounds mirrors the family's immutable upper bounds so Observe
	// never touches the registry lock.
	bounds []float64
}

// DurationBuckets is a general-purpose latency bucket ladder in
// seconds (1 ms … ~100 s, roughly ×3 steps).
var DurationBuckets = []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}

// Histogram registers (or fetches) a histogram series with the given
// upper bounds (which must be sorted ascending; a +Inf bucket is
// implicit). The first registration fixes the buckets for the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	upper := append([]float64(nil), buckets...)
	s := r.getSeries(name, help, typeHistogram, upper, labels)
	r.mu.Lock()
	bounds := r.families[name].upper
	r.mu.Unlock()
	return &Histogram{s: s, h: r.histSeries(name, s.labels, typeHistogram), bounds: bounds}
}

// Observe records one value. Buckets are stored per-bucket and made
// cumulative at exposition. The history sink receives the raw observed
// value, so quantile-over-window queries work from true samples rather
// than bucket bounds.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	h.s.count.Add(1)
	h.s.addFloat(v)
	for i, ub := range h.bounds {
		if v <= ub {
			h.s.bucketCounts[i].Add(1)
			break
		}
	}
	if h.h != nil {
		h.h.Append(v)
	}
}

// Sum returns the sum of observations (0 when disabled).
func (h *Histogram) Sum() float64 {
	if h == nil || h.s == nil {
		return 0
	}
	return h.s.load()
}

// Count returns the observation count (0 when disabled).
func (h *Histogram) Count() uint64 {
	if h == nil || h.s == nil {
		return 0
	}
	return h.s.count.Load()
}

// SeriesSnapshot is one series in a deterministic snapshot.
type SeriesSnapshot struct {
	Name   string  `json:"name"`
	Type   string  `json:"type"`
	Labels []Label `json:"labels,omitempty"`
	// Value is the counter total or gauge value (histograms use Sum).
	Value float64 `json:"value"`
	// Histogram-only fields.
	Sum     float64   `json:"sum,omitempty"`
	Count   uint64    `json:"count,omitempty"`
	Upper   []float64 `json:"upper,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

// Snapshot returns every series, sorted by metric name then label
// signature — the stable ordering every exposition shares.
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []SeriesSnapshot
	for _, name := range names {
		f := r.families[name]
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			snap := SeriesSnapshot{Name: name, Type: f.typ, Labels: s.labels}
			switch f.typ {
			case typeHistogram:
				snap.Sum = s.load()
				snap.Count = s.count.Load()
				snap.Upper = f.upper
				snap.Buckets = make([]uint64, len(s.bucketCounts))
				for i := range s.bucketCounts {
					snap.Buckets[i] = s.bucketCounts[i].Load()
				}
				snap.Value = snap.Sum
			default:
				snap.Value = s.load()
			}
			out = append(out, snap)
		}
	}
	return out
}

// Totals flattens the snapshot into "name{labels}" → value for the
// manifest. Histograms contribute _sum and _count entries.
func (r *Registry) Totals() map[string]float64 {
	snaps := r.Snapshot()
	if snaps == nil {
		return nil
	}
	out := make(map[string]float64, len(snaps))
	for _, s := range snaps {
		key := s.Name + promLabels(s.Labels)
		if s.Type == typeHistogram {
			out[key+"_sum"] = s.Sum
			out[key+"_count"] = float64(s.Count)
			continue
		}
		out[key] = s.Value
	}
	return out
}

// formatValue renders a float the same way on every run.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition spec: backslash, double quote, and line feed become \\,
// \", and \n. Every other byte passes through verbatim (the spec
// allows arbitrary UTF-8), so hostile values can never break out of
// the quoted position or smuggle extra series into a scrape.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabels renders {k="v",…} or "" for the empty set, with values
// escaped per the exposition spec (see escapeLabelValue).
func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString("=\"")
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withExtra appends one more label pair to a rendered set (for
// histogram le labels).
func withExtra(labels []Label, key, value string) string {
	ls := append(append([]Label(nil), labels...), Label{Key: key, Value: value})
	return promLabels(ls)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, families sorted by name,
// series sorted by label signature, histogram buckets cumulative with
// a +Inf bucket. Output is byte-identical across identical runs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writePrometheus(w, nil)
}

// WritePrometheusPrefix writes only the families whose name starts
// with prefix, in the same exposition format. The serve layer uses it
// to publish the SLI registry's rwc_sli_* families on a shared scrape
// without leaking that registry's internal families (the alert
// engine's alerts_* bookkeeping) into a namespace another registry
// already owns.
func (r *Registry) WritePrometheusPrefix(w io.Writer, prefix string) error {
	return r.writePrometheus(w, func(name string) bool { return strings.HasPrefix(name, prefix) })
}

func (r *Registry) writePrometheus(w io.Writer, keep func(name string) bool) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		if keep != nil && !keep(name) {
			continue
		}
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)

	snaps := r.Snapshot()
	byName := map[string][]SeriesSnapshot{}
	for _, s := range snaps {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		help, typ := f.help, f.typ
		r.mu.Unlock()
		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, sanitizeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		for _, s := range byName[name] {
			if typ == typeHistogram {
				var cum uint64
				for i, ub := range s.Upper {
					cum += s.Buckets[i]
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withExtra(s.Labels, "le", formatValue(ub)), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withExtra(s.Labels, "le", "+Inf"), s.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(s.Labels), formatValue(s.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.Labels), s.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(s.Labels), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// sanitizeHelp keeps HELP single-line.
func sanitizeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", "\\\\")
	return strings.ReplaceAll(h, "\n", "\\n")
}
