package flight

// The recorder ↔ metrics-history bridge. With a history shard attached
// (SetHistory, wired by -hist-out alongside a flight recorder), every
// captured frame also appends its per-link gauges to the history store
// stamped at round × interval — the same admission decision and the
// same series names as the recorder's live registry. The identical
// append path is reused by Log.History to rebuild a store from a
// flight log's frames, which is what makes `rwc-replay hist` artifacts
// byte-identical to a live run's: flight frames are a superset of the
// recorder-owned history.
//
// Determinism: the recorder's shard holds one series per (link,
// policy, run) label set and each is appended by exactly one policy's
// round loop, so per-series order is recording order = round order.
// Admission is the recorder's own MaxLinks decision (made in Bind, in
// link-table order), so the shard budget is lifted — two budgets would
// double-count drops.

import (
	"time"

	"repro/internal/obs"
	"repro/internal/obs/hist"
)

// SetHistory attaches a history shard; subsequent frames append their
// per-link series stamped at round × interval. Call before the first
// Record (earlier frames are not backfilled live — replay them with
// Log.History if needed). Nil-safe.
func (r *Recorder) SetHistory(sh *hist.Shard, interval time.Duration) {
	if r == nil || sh == nil {
		return
	}
	// The recorder's MaxLinks budget already bounds cardinality
	// deterministically; a second per-shard budget would double-count.
	sh.SetBudget(-1)
	r.mu.Lock()
	r.hist = sh
	r.histInterval = interval
	r.mu.Unlock()
}

// appendFrameHistory appends one frame's admitted per-link gauges to a
// history shard — the single code path shared by live recording and
// log rebuild, so both produce identical sample sequences.
func appendFrameHistory(sh *hist.Shard, interval time.Duration, st *runState, rec *RoundRecord) {
	t := time.Duration(rec.Round) * interval
	for i := range rec.Links {
		l := &rec.Links[i]
		if l.LinkIndex < 0 || l.LinkIndex >= len(st.links) || l.LinkIndex >= st.admitted {
			continue
		}
		labels := []obs.Label{
			obs.L("link", st.links[l.LinkIndex].Name),
			obs.L("policy", rec.Policy),
		}
		if rec.Run != "" {
			labels = append(labels, obs.L("run", rec.Run))
		}
		sh.Series("wan_link_snr_db", labels, "gauge").AppendAt(t, l.SNRdB)
		sh.Series("wan_link_capacity_gbps", labels, "gauge").AppendAt(t, l.CapacityGbps)
	}
}

// History rebuilds a metrics-history store from the log's frames: the
// recorder-owned series exactly as a live run with SetHistory would
// have recorded them (frames are already canonically sorted, and
// per-series append order only depends on round order, so live and
// rebuilt stores serialize byte-identically). The round interval comes
// from the log header; pass a non-zero override for logs written
// before the header carried one.
func (l *Log) History(interval time.Duration) *hist.Store {
	if interval == 0 {
		interval = l.Meta.Interval
	}
	st := hist.New(hist.Options{Tool: l.Meta.Tool, Seed: uint64(l.Meta.Seed)})
	sh := st.Root()
	sh.SetBudget(-1)
	states := make(map[string]*runState, len(l.Runs))
	for i := range l.Runs {
		run := &l.Runs[i]
		states[run.Name] = &runState{links: run.Links, ladder: run.Ladder, admitted: run.Admitted}
	}
	for i := range l.Frames {
		if rs := states[l.Frames[i].Run]; rs != nil {
			appendFrameHistory(sh, interval, rs, &l.Frames[i])
		}
	}
	return st
}
