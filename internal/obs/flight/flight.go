// Package flight implements a deterministic flight recorder for the
// capacity-decision pipeline: one compact record per simulation round
// capturing, for every link, the full causal chain of Theorem 1 (§4) —
// SNR sample → modulation tier → fake-edge offer ⟨capacity, penalty⟩
// (§3.2) → solver selection → decision gate → applied capacity — plus
// aggregate flow and a canonical FNV-64 state hash.
//
// The recorder streams to a length-prefixed binary log (see log.go)
// with a JSONL export mode; cmd/rwc-replay replays, explains, and
// bisects the logs. Per-link labeled metric series
// (wan_link_snr_db{link=...}, wan_link_capacity_gbps{link=...}) are
// emitted into a recorder-owned registry gated behind a cardinality
// budget, mirroring obs/serve's server-owned registry: nothing the
// recorder does ever touches the run's own metrics/trace/manifest, so
// runs with and without a recorder produce byte-identical artifacts.
//
// Everything is keyed on simulation state only — no wall clock, no
// map-iteration ordering — so same-seed runs produce byte-identical
// flight logs regardless of -workers.
package flight

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/hist"
)

// DefaultMaxLinks is the labeled-series cardinality budget when
// Options.MaxLinks is 0: enough for every backbone topology in this
// repo while keeping a hostile or degenerate topology from exploding
// the registry.
const DefaultMaxLinks = 256

// DefaultRing is the ring-buffer depth served on /flightz when
// Options.Ring is 0.
const DefaultRing = 64

// Verdict classifies the decision-gate outcome for one link in one
// round. The first five arise in the wan simulator's round loop; the
// remainder mirror internal/controller's richer gates so controller
// consumers can record through the same type.
type Verdict uint8

const (
	// VerdictSteady: no headroom offered and no change.
	VerdictSteady Verdict = iota
	// VerdictDark: the link carried zero capacity this round.
	VerdictDark
	// VerdictForcedDowngrade: SNR forced a flap down (§2.2).
	VerdictForcedDowngrade
	// VerdictUpgrade: the solver selected the fake edge and the upgrade
	// was applied (Theorem 1's implicit decision, made explicit).
	VerdictUpgrade
	// VerdictHeadroomIdle: a fake edge was offered but the solver
	// routed no flow over it — headroom not worth the penalty.
	VerdictHeadroomIdle
	// VerdictHysteresisHold: headroom exists but the hysteresis hold
	// count has not yet qualified it (controller gate).
	VerdictHysteresisHold
	// VerdictBudgetDropped: selected by the solver, dropped by the
	// per-round change budget (controller gate).
	VerdictBudgetDropped
	// VerdictPinned: §4.2(i) pinned traffic excludes the link.
	VerdictPinned

	verdictCount // number of defined verdicts (decode bound)
)

// String names the verdict for explain output and JSONL export.
func (v Verdict) String() string {
	switch v {
	case VerdictSteady:
		return "steady"
	case VerdictDark:
		return "dark"
	case VerdictForcedDowngrade:
		return "forced-downgrade"
	case VerdictUpgrade:
		return "upgrade"
	case VerdictHeadroomIdle:
		return "headroom-idle"
	case VerdictHysteresisHold:
		return "hysteresis-hold"
	case VerdictBudgetDropped:
		return "budget-dropped"
	case VerdictPinned:
		return "pinned"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Link is one entry of a run's link table: a directed physical edge.
type Link struct {
	// Edge is the edge ID in the run's topology.
	Edge int `json:"edge"`
	// Name is the human-readable link name ("SEA->DEN").
	Name string `json:"name"`
	// Fiber is the fiber index the edge rides (both directions of an
	// adjacency share a fiber and therefore an SNR process).
	Fiber int `json:"fiber"`
}

// LadderRung is one modulation rung, recorded per run so explain can
// show the table lookup (threshold → tier) without the ladder object.
type LadderRung struct {
	Gbps     float64 `json:"gbps"`
	MinSNRdB float64 `json:"min_snr_db"`
	Format   string  `json:"format,omitempty"`
}

// LinkRecord is the per-link slice of one round record — the six-step
// causal chain in data form.
type LinkRecord struct {
	// LinkIndex indexes the run's link table.
	LinkIndex int
	// SNRdB is the binding (minimum) SNR across the fiber's wavelengths
	// this round — the sample that constrains the link.
	SNRdB float64
	// TierGbps is the modulation-table lookup for SNRdB: the feasible
	// per-wavelength capacity of the binding wavelength (0 = below the
	// lowest rung).
	TierGbps float64
	// FeasibleGbps is the summed feasible capacity across the link's
	// wavelengths — the physical ceiling this round.
	FeasibleGbps float64
	// CapacityGbps is the configured capacity after this round's
	// decisions were applied.
	CapacityGbps float64
	// Fake reports whether a fake edge was offered to the solver.
	Fake bool
	// FakeCapGbps and FakePenalty are the offered ⟨capacity, penalty⟩
	// pair (§3.2): upgrade headroom and per-unit activation cost.
	FakeCapGbps, FakePenalty float64
	// FlowGbps is the total flow the solver put on the link (real +
	// fake components, translated to the physical edge).
	FlowGbps float64
	// FakeFlowGbps is the portion routed over the fake edge — positive
	// means the solver selected the upgrade.
	FakeFlowGbps float64
	// ResidualGbps is the fake capacity the solver left unused.
	ResidualGbps float64
	// Verdict is the decision-gate outcome.
	Verdict Verdict
}

// RoundRecord is one frame of the flight log: everything the decision
// pipeline saw and did in one round of one policy run.
type RoundRecord struct {
	// Run distinguishes concurrent simulations sharing a recorder
	// (rwc-experiments records one run per figure); "" for single-run
	// tools.
	Run string
	// Policy is the capacity policy the frame belongs to.
	Policy string
	// Round is the 0-based round index.
	Round int
	// OfferedGbps, ShippedGbps, CapacityGbps are the round aggregates
	// (demand offered, flow shipped, total configured capacity).
	OfferedGbps, ShippedGbps, CapacityGbps float64
	// Changes counts capacity changes applied this round.
	Changes int
	// Hash is the canonical FNV-64a digest of this frame (aggregates +
	// every link record); filled by Record, verified by replay.
	Hash uint64
	// Links holds one record per link-table entry, in table order.
	Links []LinkRecord
}

// hashRecord computes the canonical digest of a frame. Everything that
// describes simulation state is folded in; the stored Hash itself is
// not.
func hashRecord(rec *RoundRecord) uint64 {
	h := obs.NewHash64()
	h.WriteString(rec.Run)
	h.WriteString(rec.Policy)
	h.WriteInt(rec.Round)
	h.WriteFloat64(rec.OfferedGbps)
	h.WriteFloat64(rec.ShippedGbps)
	h.WriteFloat64(rec.CapacityGbps)
	h.WriteInt(rec.Changes)
	h.WriteInt(len(rec.Links))
	for i := range rec.Links {
		l := &rec.Links[i]
		h.WriteInt(l.LinkIndex)
		h.WriteFloat64(l.SNRdB)
		h.WriteFloat64(l.TierGbps)
		h.WriteFloat64(l.FeasibleGbps)
		h.WriteFloat64(l.CapacityGbps)
		h.WriteBool(l.Fake)
		h.WriteFloat64(l.FakeCapGbps)
		h.WriteFloat64(l.FakePenalty)
		h.WriteFloat64(l.FlowGbps)
		h.WriteFloat64(l.FakeFlowGbps)
		h.WriteFloat64(l.ResidualGbps)
		h.WriteUint64(uint64(l.Verdict))
	}
	return h.Sum64()
}

// Options tunes a Recorder.
type Options struct {
	// MaxLinks is the labeled-series cardinality budget per run: only
	// the first MaxLinks links (link-table order) get
	// wan_link_snr_db/wan_link_capacity_gbps series; the rest are
	// counted into obs_flight_links_dropped_total instead of exploding
	// the registry. 0 means DefaultMaxLinks; negative means 0.
	MaxLinks int
	// Ring is the recent-frame ring depth served on /flightz.
	// 0 means DefaultRing.
	Ring int
}

// runState is the per-run bookkeeping behind Bind.
type runState struct {
	links    []Link
	ladder   []LadderRung
	admitted int // links[:admitted] get labeled series
}

// Recorder captures round records. All methods are safe for concurrent
// use (policy runs record concurrently under -workers) and nil-safe,
// so a disabled recorder costs one nil check.
//
// The recorder owns its metrics registry: live scrapes see labeled
// per-link series as frames arrive, but the registry embedded in the
// log trailer is rebuilt deterministically from sorted frames, so the
// log is byte-identical however the scheduler interleaved Record calls.
type Recorder struct {
	mu     sync.Mutex
	opt    Options
	runs   map[string]*runState
	frames []RoundRecord
	ring   []RoundRecord
	ringAt int
	reg    *obs.Registry
	// hist, when attached (SetHistory, see hist.go), receives every
	// frame's per-link gauges stamped at Round × histInterval.
	hist         *hist.Shard
	histInterval time.Duration
}

// New builds a Recorder.
func New(opt Options) *Recorder {
	if opt.MaxLinks == 0 {
		opt.MaxLinks = DefaultMaxLinks
	}
	if opt.MaxLinks < 0 {
		opt.MaxLinks = 0
	}
	if opt.Ring <= 0 {
		opt.Ring = DefaultRing
	}
	return &Recorder{
		opt:  opt,
		runs: make(map[string]*runState),
		reg:  obs.NewRegistry(),
	}
}

// Bind registers a run's link table and modulation ladder before its
// first Record. The cardinality budget is decided here, in link-table
// order, so admission never depends on which policy records first.
// Re-binding the same run is a no-op if the table matches and an error
// if it does not.
func (r *Recorder) Bind(run string, links []Link, ladder []LadderRung) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.runs[run]; ok {
		if len(prev.links) != len(links) {
			return fmt.Errorf("flight: run %q re-bound with %d links (was %d)", run, len(links), len(prev.links))
		}
		for i := range links {
			if prev.links[i] != links[i] {
				return fmt.Errorf("flight: run %q re-bound with different link %d (%q vs %q)",
					run, i, links[i].Name, prev.links[i].Name)
			}
		}
		return nil
	}
	st := &runState{
		links:    append([]Link(nil), links...),
		ladder:   append([]LadderRung(nil), ladder...),
		admitted: len(links),
	}
	if st.admitted > r.opt.MaxLinks {
		st.admitted = r.opt.MaxLinks
	}
	r.runs[run] = st
	if dropped := len(links) - st.admitted; dropped > 0 {
		r.droppedCounter(r.reg).Add(float64(dropped))
	}
	return nil
}

func (r *Recorder) droppedCounter(reg *obs.Registry) *obs.Counter {
	return reg.Counter("obs_flight_links_dropped_total",
		"Links denied labeled flight series by the cardinality budget (-flight-links).")
}

func (r *Recorder) framesCounter(reg *obs.Registry) *obs.Counter {
	return reg.Counter("obs_flight_frames_total",
		"Round records captured by the flight recorder.")
}

// Record captures one frame. The frame's Hash is (re)computed here so
// every stored frame carries the canonical digest. The run must have
// been bound; frames for unbound runs are dropped (counted as dropped
// links would be — loudly, in the recorder's own registry).
func (r *Recorder) Record(rec RoundRecord) {
	if r == nil {
		return
	}
	rec.Hash = hashRecord(&rec)
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.runs[rec.Run]
	if st == nil {
		r.reg.Counter("obs_flight_unbound_frames_total",
			"Frames recorded for runs never bound to the recorder (dropped).").Inc()
		return
	}
	r.frames = append(r.frames, rec)
	r.framesCounter(r.reg).Inc()
	r.emitSeries(r.reg, st, &rec)
	if r.hist != nil {
		appendFrameHistory(r.hist, r.histInterval, st, &rec)
	}
	if len(r.ring) < r.opt.Ring {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.ringAt] = rec
	}
	r.ringAt = (r.ringAt + 1) % r.opt.Ring
}

// emitSeries writes the per-link labeled gauges for one frame into
// reg, honoring the run's admission decision.
func (r *Recorder) emitSeries(reg *obs.Registry, st *runState, rec *RoundRecord) {
	for i := range rec.Links {
		l := &rec.Links[i]
		if l.LinkIndex < 0 || l.LinkIndex >= len(st.links) || l.LinkIndex >= st.admitted {
			continue
		}
		labels := []obs.Label{
			obs.L("link", st.links[l.LinkIndex].Name),
			obs.L("policy", rec.Policy),
		}
		if rec.Run != "" {
			labels = append(labels, obs.L("run", rec.Run))
		}
		reg.Gauge("wan_link_snr_db",
			"Binding (minimum) SNR across the link's wavelengths this round.",
			labels...).Set(l.SNRdB)
		reg.Gauge("wan_link_capacity_gbps",
			"Configured link capacity after this round's decisions.",
			labels...).Set(l.CapacityGbps)
	}
}

// Registry exposes the recorder-owned labeled series for live serving
// (obs/serve appends it to /metrics). Never merge it into a run's own
// registry: run artifacts must not depend on whether a recorder was
// attached.
func (r *Recorder) Registry() *obs.Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// sortFrames orders frames canonically: run, then policy, then round.
func sortFrames(frames []RoundRecord) {
	sort.SliceStable(frames, func(i, j int) bool {
		a, b := &frames[i], &frames[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return a.Round < b.Round
	})
}

// Frames returns a canonically sorted copy of every captured frame.
func (r *Recorder) Frames() []RoundRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]RoundRecord(nil), r.frames...)
	r.mu.Unlock()
	sortFrames(out)
	return out
}

// Recent returns up to n of the most recently captured frames, oldest
// first — the /flightz ring view. Capture order, not canonical order:
// this is the live debugging window.
func (r *Recorder) Recent(n int) []RoundRecord {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > len(r.ring) {
		n = len(r.ring)
	}
	out := make([]RoundRecord, 0, n)
	// ringAt points at the oldest entry once the ring has wrapped.
	start := 0
	if len(r.ring) == r.opt.Ring {
		start = r.ringAt
	}
	for i := 0; i < len(r.ring); i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Runs returns the bound run names, sorted, with their link tables.
func (r *Recorder) Runs() []Run {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.runs))
	for name := range r.runs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Run, 0, len(names))
	for _, name := range names {
		st := r.runs[name]
		out = append(out, Run{
			Name:     name,
			Links:    append([]Link(nil), st.links...),
			Ladder:   append([]LadderRung(nil), st.ladder...),
			Admitted: st.admitted,
		})
	}
	return out
}

// rebuildSeries renders the deterministic registry embedded in the log
// trailer: identical to replaying emitSeries over canonically sorted
// frames, so the last write per gauge is the last round of the last
// policy — independent of runtime interleaving.
func (r *Recorder) rebuildSeries(frames []RoundRecord) *obs.Registry {
	reg := obs.NewRegistry()
	r.mu.Lock()
	var dropped int
	for _, st := range r.runs {
		dropped += len(st.links) - st.admitted
	}
	runs := make(map[string]*runState, len(r.runs))
	for name, st := range r.runs {
		runs[name] = st
	}
	r.mu.Unlock()
	if dropped > 0 {
		r.droppedCounter(reg).Add(float64(dropped))
	}
	if len(frames) > 0 {
		r.framesCounter(reg).Add(float64(len(frames)))
	}
	for i := range frames {
		if st := runs[frames[i].Run]; st != nil {
			r.emitSeries(reg, st, &frames[i])
		}
	}
	return reg
}
