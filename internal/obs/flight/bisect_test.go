package flight

import (
	"bytes"
	"strings"
	"testing"
)

// logFrom writes and re-reads a recorder, failing on error.
func logFrom(t *testing.T, rec *Recorder) *Log {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteLog(&buf, Meta{}, nil); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestBisectIdenticalLogs(t *testing.T) {
	a := logFrom(t, record(t, Options{}, 5, "dynamic", "static-100G"))
	b := logFrom(t, record(t, Options{}, 5, "dynamic", "static-100G"))
	d := Bisect(a, b)
	if d.Found {
		t.Fatalf("identical logs diverge: %s", d)
	}
	if !strings.Contains(d.String(), "identical") {
		t.Fatalf("identical rendering = %q", d.String())
	}
}

func TestBisectNamesFirstDivergingRoundAndLink(t *testing.T) {
	mk := func(dip bool) *Log {
		rec := New(Options{})
		if err := rec.Bind("", testLinks(), testLadder()); err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{"dynamic", "static-100G"} {
			for r := 0; r < 6; r++ {
				vary := 0.0
				if dip && r >= 3 {
					vary = -2.5 // SNR delta on link 1 from round 3 on
				}
				rec.Record(testFrame(p, r, vary))
			}
		}
		return logFrom(t, rec)
	}
	d := Bisect(mk(false), mk(true))
	if !d.Found || d.Structural != "" {
		t.Fatalf("divergence not found: %+v", d)
	}
	// Canonical order: policy "dynamic" sorts first; the first touched
	// round is 3; the varied link is index 1 ("b->a"); the first field
	// in causal order is the SNR sample.
	if d.Policy != "dynamic" || d.Round != 3 || d.Link != "b->a" || d.Field != "snr_db" {
		t.Fatalf("divergence = %+v, want dynamic/round 3/b->a/snr_db", d)
	}
	if d.A == d.B {
		t.Fatalf("values not reported: %+v", d)
	}
	if !strings.Contains(d.String(), "round 3") || !strings.Contains(d.String(), "b->a") {
		t.Fatalf("rendering lost the location: %q", d.String())
	}
}

func TestBisectStructuralDifferences(t *testing.T) {
	base := logFrom(t, record(t, Options{}, 3, "dynamic"))

	// Different round count.
	longer := logFrom(t, record(t, Options{}, 4, "dynamic"))
	if d := Bisect(base, longer); !d.Found || d.Structural == "" {
		t.Fatalf("frame-count mismatch not structural: %+v", d)
	}

	// Different link table.
	other := New(Options{})
	links := testLinks()
	links[2].Name = "b->z"
	if err := other.Bind("", links, testLadder()); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		other.Record(testFrame("dynamic", r, 0))
	}
	if d := Bisect(base, logFrom(t, other)); !d.Found || !strings.Contains(d.Structural, "b->z") {
		t.Fatalf("link-table mismatch not reported: %+v", d)
	}
}

func TestExplainChain(t *testing.T) {
	log := logFrom(t, record(t, Options{}, 3, "dynamic"))

	e, err := log.Explain("", "dynamic", 1, "a->b")
	if err != nil {
		t.Fatal(err)
	}
	if e.Link.Edge != 0 || e.Rec.Verdict != VerdictUpgrade {
		t.Fatalf("explanation = %+v", e)
	}
	out := e.Format()
	for _, want := range []string{
		"link a->b (edge 0, fiber 0)",
		"round 1",
		"1. SNR sample",
		"16.10 dB",
		"2. modulation lookup",
		"tier 200 Gbps",
		"threshold 15.5 dB",
		"3. fake edge",
		"⟨200 Gbps headroom, penalty 1⟩",
		"4. solver selection",
		"routed 50.000 Gbps",
		"5. decision gate",
		"verdict upgrade",
		"6. applied capacity",
		"200 Gbps",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}

	// A dark link: lookup below the lowest rung, no fake edge.
	e, err = log.Explain("", "dynamic", 0, "b->c")
	if err != nil {
		t.Fatal(err)
	}
	out = e.Format()
	for _, want := range []string{"below the lowest rung", "none offered", "verdict dark", "next rung 50 Gbps needs 3 dB"} {
		if !strings.Contains(out, want) {
			t.Errorf("dark-link explain missing %q:\n%s", want, out)
		}
	}

	// Lookup by edge ID string.
	if e, err = log.Explain("", "dynamic", 0, "1"); err != nil || e.Link.Name != "b->a" {
		t.Fatalf("edge-ID lookup = %+v, %v", e, err)
	}

	// Errors: unknown link, policy, round, run.
	if _, err := log.Explain("", "dynamic", 0, "nope"); err == nil {
		t.Error("unknown link accepted")
	}
	if _, err := log.Explain("", "walk", 0, "a->b"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := log.Explain("", "dynamic", 99, "a->b"); err == nil {
		t.Error("unknown round accepted")
	}
	if _, err := log.Explain("figure-7", "dynamic", 0, "a->b"); err == nil {
		t.Error("unknown run accepted")
	}
}

func TestLogSummary(t *testing.T) {
	log := logFrom(t, record(t, Options{}, 2, "dynamic", "static-max"))
	s := log.Summary()
	for _, want := range []string{"1 run(s)", "4 frame(s)", "policy dynamic: 2 round(s)", "policy static-max: 2 round(s)", "3 links"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
