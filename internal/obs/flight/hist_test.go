package flight

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs/hist"
)

const testInterval = 6 * time.Hour

func histTestLinks() []Link {
	return []Link{
		{Edge: 0, Name: "SEA->DEN", Fiber: 0},
		{Edge: 1, Name: "DEN->SEA", Fiber: 0},
		{Edge: 2, Name: "DEN->KCY", Fiber: 1},
	}
}

func recordHistFrames(t *testing.T, r *Recorder) {
	t.Helper()
	if err := r.Bind("", histTestLinks(), nil); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		rec := RoundRecord{Policy: "run", Round: round, OfferedGbps: 100, ShippedGbps: 90}
		for i := range histTestLinks() {
			snr := 15.0
			if round == 3 {
				snr = 11.0
			}
			rec.Links = append(rec.Links, LinkRecord{
				LinkIndex:    i,
				SNRdB:        snr + float64(i),
				CapacityGbps: 100 * float64(i+1),
			})
		}
		r.Record(rec)
	}
}

// TestLogHistoryMatchesLiveHistory is the flight ⊇ history regression:
// a store populated live through Recorder.SetHistory and one rebuilt
// from the written log's frames serialize byte-identically.
func TestLogHistoryMatchesLiveHistory(t *testing.T) {
	meta := Meta{Tool: "flight-test", Seed: 42, Interval: testInterval}
	live := hist.New(hist.Options{Tool: meta.Tool, Seed: uint64(meta.Seed)})
	r := New(Options{})
	r.SetHistory(live.Root(), testInterval)
	recordHistFrames(t, r)

	var logBuf bytes.Buffer
	if err := r.WriteLog(&logBuf, meta, nil); err != nil {
		t.Fatal(err)
	}
	l, err := ReadLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if l.Meta.Interval != testInterval {
		t.Fatalf("header interval = %v, want %v", l.Meta.Interval, testInterval)
	}

	rebuilt := l.History(0) // 0 = take the interval from the header
	var a, b bytes.Buffer
	if err := live.Archive().WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Archive().WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rebuilt history diverges from live:\n%v",
			hist.Diff(live.Archive(), rebuilt.Archive()))
	}
}

func TestRecorderHistoryContent(t *testing.T) {
	st := hist.New(hist.Options{})
	r := New(Options{})
	r.SetHistory(st.Root().NewChild(), testInterval)
	recordHistFrames(t, r)

	res, err := st.Query(hist.Query{Selector: `wan_link_snr_db{link="SEA->DEN"}`, ToNs: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d series, want 1", len(res))
	}
	s := res[0].Samples
	if len(s) != 5 {
		t.Fatalf("got %d samples, want 5", len(s))
	}
	if s[3].T != 3*testInterval || s[3].V != 11 {
		t.Fatalf("dip sample = %+v, want t=18h v=11", s[3])
	}
	if res[0].Labels["policy"] != "run" {
		t.Fatalf("labels = %v", res[0].Labels)
	}
}

// TestHistoryHonorsAdmission: links past the recorder's MaxLinks
// budget get no history series, exactly like their registry gauges.
func TestHistoryHonorsAdmission(t *testing.T) {
	st := hist.New(hist.Options{})
	r := New(Options{MaxLinks: 1})
	r.SetHistory(st.Root(), testInterval)
	recordHistFrames(t, r)

	infos := st.Series()
	// Only link index 0 is admitted → 2 series (snr + capacity).
	if len(infos) != 2 {
		t.Fatalf("got %d series, want 2: %+v", len(infos), infos)
	}
	for _, info := range infos {
		if info.Labels["link"] != "SEA->DEN" {
			t.Fatalf("unexpected series %s{%v}", info.Name, info.Labels)
		}
	}
}

func TestSetHistoryNilSafe(t *testing.T) {
	var r *Recorder
	r.SetHistory(nil, testInterval) // nil recorder
	r2 := New(Options{})
	r2.SetHistory(nil, testInterval) // nil shard
	if err := r2.Bind("", histTestLinks(), nil); err != nil {
		t.Fatal(err)
	}
	r2.Record(RoundRecord{Policy: "run", Round: 0}) // must not panic
}
