package flight

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

func testLinks() []Link {
	return []Link{
		{Edge: 0, Name: "a->b", Fiber: 0},
		{Edge: 1, Name: "b->a", Fiber: 0},
		{Edge: 2, Name: "b->c", Fiber: 1},
	}
}

func testLadder() []LadderRung {
	return []LadderRung{
		{Gbps: 50, MinSNRdB: 3, Format: "DP-QPSK"},
		{Gbps: 100, MinSNRdB: 6.5, Format: "DP-16QAM"},
		{Gbps: 200, MinSNRdB: 15.5, Format: "DP-64QAM"},
	}
}

// testFrame builds a plausible frame for round r; vary tweaks link 1.
func testFrame(policy string, r int, vary float64) RoundRecord {
	return RoundRecord{
		Policy:       policy,
		Round:        r,
		OfferedGbps:  300,
		ShippedGbps:  250 + float64(r),
		CapacityGbps: 400,
		Changes:      r % 2,
		Links: []LinkRecord{
			{LinkIndex: 0, SNRdB: 16.1, TierGbps: 200, FeasibleGbps: 400, CapacityGbps: 200,
				Fake: true, FakeCapGbps: 200, FakePenalty: 1, FlowGbps: 150, FakeFlowGbps: 50, ResidualGbps: 150,
				Verdict: VerdictUpgrade},
			{LinkIndex: 1, SNRdB: 7.2 + vary, TierGbps: 100, FeasibleGbps: 200, CapacityGbps: 200,
				FlowGbps: 80, Verdict: VerdictSteady},
			{LinkIndex: 2, SNRdB: 2.1, TierGbps: 0, FeasibleGbps: 0, CapacityGbps: 0,
				Verdict: VerdictDark},
		},
	}
}

// record binds and fills a recorder with rounds×policies frames.
func record(t *testing.T, opt Options, rounds int, policies ...string) *Recorder {
	t.Helper()
	rec := New(opt)
	if err := rec.Bind("", testLinks(), testLadder()); err != nil {
		t.Fatal(err)
	}
	for _, p := range policies {
		for r := 0; r < rounds; r++ {
			rec.Record(testFrame(p, r, 0))
		}
	}
	return rec
}

func TestLogRoundTrip(t *testing.T) {
	rec := record(t, Options{}, 4, "dynamic", "static-100G")
	o := obs.New("flight-test")
	o.Counter("demo_total", "demo").Add(7)
	o.Event("demo.event", obs.A("round", 3))

	var buf bytes.Buffer
	if err := rec.WriteLog(&buf, Meta{Tool: "flight-test", Seed: 42}, o); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if log.Meta.Tool != "flight-test" || log.Meta.Seed != 42 {
		t.Fatalf("meta = %+v", log.Meta)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Links) != 3 || log.Runs[0].Admitted != 3 {
		t.Fatalf("runs = %+v", log.Runs)
	}
	if len(log.Runs[0].Ladder) != 3 {
		t.Fatalf("ladder not preserved: %+v", log.Runs[0].Ladder)
	}
	want := rec.Frames()
	if !reflect.DeepEqual(log.Frames, want) {
		t.Fatalf("frames do not round-trip:\ngot  %+v\nwant %+v", log.Frames, want)
	}
	if err := log.VerifyHashes(); err != nil {
		t.Fatalf("hashes do not verify: %v", err)
	}
	if len(log.Trailer.Metrics.Families) == 0 {
		t.Fatal("trailer lost the metrics dump")
	}
	if len(log.Trailer.Trace) != 1 {
		t.Fatalf("trailer has %d trace lines, want 1", len(log.Trailer.Trace))
	}

	// Same recorder, second write: byte-identical (no hidden state).
	var buf2 bytes.Buffer
	if err := rec.WriteLog(&buf2, Meta{Tool: "flight-test", Seed: 42}, o); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two writes of the same recorder differ")
	}
}

func TestLogRecordOrderIndependence(t *testing.T) {
	// Frames recorded in opposite interleavings must produce identical
	// logs: canonical sort + deterministic series rebuild.
	mk := func(reverse bool) []byte {
		rec := New(Options{})
		if err := rec.Bind("", testLinks(), testLadder()); err != nil {
			t.Fatal(err)
		}
		var frames []RoundRecord
		for _, p := range []string{"dynamic", "static-100G"} {
			for r := 0; r < 3; r++ {
				frames = append(frames, testFrame(p, r, 0))
			}
		}
		if reverse {
			for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
				frames[i], frames[j] = frames[j], frames[i]
			}
		}
		for _, f := range frames {
			rec.Record(f)
		}
		var buf bytes.Buffer
		if err := rec.WriteLog(&buf, Meta{}, nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(mk(false), mk(true)) {
		t.Fatal("log bytes depend on Record interleaving")
	}
}

func TestJSONLExport(t *testing.T) {
	rec := record(t, Options{}, 2, "dynamic")
	var buf bytes.Buffer
	if err := rec.WriteLog(&buf, Meta{}, nil); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var jl bytes.Buffer
	if err := log.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(jl.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(lines))
	}
	// encoding/json escapes '>' as \u003e.
	if !strings.Contains(lines[0], `"link":"a-\u003eb"`) {
		t.Errorf("link names not resolved: %s", lines[0])
	}
	if !strings.Contains(lines[0], `"verdict":"upgrade"`) {
		t.Errorf("verdicts not rendered: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"round":1`) {
		t.Errorf("rounds not ordered: %s", lines[1])
	}
}

func TestCardinalityBudgetDropsDeterministically(t *testing.T) {
	rec := New(Options{MaxLinks: 2})
	if err := rec.Bind("", testLinks(), testLadder()); err != nil {
		t.Fatal(err)
	}
	rec.Record(testFrame("dynamic", 0, 0))

	totals := rec.Registry().Totals()
	if got := totals["obs_flight_links_dropped_total"]; got != 1 {
		t.Fatalf("dropped counter = %v, want 1 (3 links, budget 2)", got)
	}
	// Admission is table order: links 0 and 1 have series, link 2 none.
	for _, name := range []string{"a->b", "b->a"} {
		key := fmt.Sprintf("wan_link_snr_db{link=%q,policy=\"dynamic\"}", name)
		if _, ok := totals[key]; !ok {
			t.Errorf("missing admitted series %s (have %v)", key, keys(totals))
		}
	}
	for key := range totals {
		if strings.Contains(key, "b->c") {
			t.Errorf("dropped link leaked into registry: %s", key)
		}
	}

	// The trailer's deterministic rebuild agrees with the live registry.
	var buf bytes.Buffer
	if err := rec.WriteLog(&buf, Meta{}, nil); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if diff := obs.DiffTotals(totals, log.Trailer.Series.Restore().Totals(), 0); len(diff) != 0 {
		t.Fatalf("trailer series diverge from live registry: %v", diff)
	}
}

func keys(m map[string]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestHostileLinkNamesRoundTripPrometheus(t *testing.T) {
	hostile := []Link{
		{Edge: 0, Name: `quo"te->ba\ck`, Fiber: 0},
		{Edge: 1, Name: "new\nline->tab\t", Fiber: 0},
		{Edge: 2, Name: "sëa→dênvér", Fiber: 1},
	}
	rec := New(Options{})
	if err := rec.Bind("", hostile, nil); err != nil {
		t.Fatal(err)
	}
	fr := testFrame("dynamic", 0, 0)
	rec.Record(fr)

	var expo bytes.Buffer
	if err := rec.Registry().WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParsePrometheusText(strings.NewReader(expo.String()))
	if err != nil {
		t.Fatalf("hostile names broke the exposition: %v\n%s", err, expo.String())
	}
	parsed := make(map[string]float64, len(samples))
	for _, s := range samples {
		parsed[s.Key()] = s.Value
	}
	if diff := obs.DiffTotals(rec.Registry().Totals(), parsed, 0); len(diff) != 0 {
		t.Fatalf("parse round-trip diverges: %v", diff)
	}
	// Every hostile name must survive the round trip.
	for _, link := range hostile {
		found := false
		for _, s := range samples {
			for _, l := range s.Labels {
				if l.Key == "link" && l.Value == link.Name {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("link %q lost in exposition round-trip", link.Name)
		}
	}

	// And through the binary log + JSONL export.
	var buf bytes.Buffer
	if err := rec.WriteLog(&buf, Meta{}, nil); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log.Runs[0].Links, hostile) {
		t.Fatalf("hostile link table mangled: %+v", log.Runs[0].Links)
	}
	var jl bytes.Buffer
	if err := log.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	if err := rec.Bind("", testLinks(), nil); err != nil {
		t.Fatal(err)
	}
	rec.Record(testFrame("dynamic", 0, 0)) // must not panic
	if rec.Frames() != nil || rec.Recent(5) != nil || rec.Runs() != nil || rec.Registry() != nil {
		t.Fatal("nil recorder leaked state")
	}
}

func TestRecordUnboundRunDropsLoudly(t *testing.T) {
	rec := New(Options{})
	rec.Record(testFrame("dynamic", 0, 0)) // "" never bound
	if got := rec.Registry().Totals()["obs_flight_unbound_frames_total"]; got != 1 {
		t.Fatalf("unbound counter = %v, want 1", got)
	}
	if len(rec.Frames()) != 0 {
		t.Fatal("unbound frame was kept")
	}
}

func TestRebindChecksTable(t *testing.T) {
	rec := New(Options{})
	if err := rec.Bind("", testLinks(), nil); err != nil {
		t.Fatal(err)
	}
	if err := rec.Bind("", testLinks(), nil); err != nil {
		t.Fatalf("identical re-bind rejected: %v", err)
	}
	other := testLinks()
	other[1].Name = "renamed"
	if err := rec.Bind("", other, nil); err == nil {
		t.Fatal("conflicting re-bind accepted")
	}
	if err := rec.Bind("", other[:2], nil); err == nil {
		t.Fatal("shorter re-bind accepted")
	}
}

func TestRecentRingWindow(t *testing.T) {
	rec := New(Options{Ring: 4})
	if err := rec.Bind("", testLinks(), nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		rec.Record(testFrame("dynamic", r, 0))
	}
	recent := rec.Recent(4)
	if len(recent) != 4 {
		t.Fatalf("recent = %d frames, want 4", len(recent))
	}
	for i, fr := range recent {
		if fr.Round != 6+i {
			t.Fatalf("recent[%d].Round = %d, want %d", i, fr.Round, 6+i)
		}
	}
	if got := rec.Recent(2); len(got) != 2 || got[1].Round != 9 {
		t.Fatalf("recent(2) = %+v", got)
	}
}

func TestReadLogRejectsCorruption(t *testing.T) {
	rec := record(t, Options{}, 2, "dynamic")
	var buf bytes.Buffer
	if err := rec.WriteLog(&buf, Meta{}, nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := ReadLog(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated log accepted")
	}
	flipped := append([]byte(nil), raw...)
	flipped[3] ^= 0xff
	if _, err := ReadLog(bytes.NewReader(flipped)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadLog(bytes.NewReader([]byte(Magic))); err == nil {
		t.Error("header-less log accepted")
	}

	// A flipped payload byte must fail hash verification (if it even
	// decodes). Flip a byte well inside the first frame section.
	for off := len(Magic) + 40; off < len(raw)-40; off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x01
		log, err := ReadLog(bytes.NewReader(mut))
		if err != nil {
			continue // structural rejection is fine too
		}
		if err := log.VerifyHashes(); err == nil && bytes.Equal(mut, raw) == false {
			// Flips inside the trailer JSON don't touch frames; only
			// complain when a frame field changed silently.
			want := rec.Frames()
			if !reflect.DeepEqual(log.Frames, want) {
				t.Fatalf("flipped byte at %d changed frames but hashes verify", off)
			}
		}
		break
	}
}
