package flight

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/obs"
)

// This file implements the flight-log wire format: a magic string
// followed by length-prefixed sections, each a 1-byte type tag plus a
// uvarint payload length.
//
//	"RWCFLT1\n"
//	'H' header  JSON   (version, tool, seed, max_links)
//	'R' run     JSON   (one per bound run, sorted by name)
//	'F' frame   binary (one per round record, canonical order)
//	'T' trailer JSON   (registry dumps + canonical trace lines)
//
// Frames are fixed little-endian scalars with uvarint counts — compact
// enough to stream every round, self-describing enough that a reader
// never needs the producing binary. Unknown section types are an
// error: the version byte in the magic is the compatibility gate.

// Magic identifies a flight log (8 bytes, version baked in).
const Magic = "RWCFLT1\n"

// section type tags.
const (
	secHeader  = 'H'
	secRun     = 'R'
	secFrame   = 'F'
	secTrailer = 'T'
)

// maxSectionLen caps one section's payload so a corrupt length prefix
// cannot force a huge allocation.
const maxSectionLen = 1 << 28 // 256 MiB

// Meta identifies the producing run in the log header.
type Meta struct {
	Tool string `json:"tool,omitempty"`
	Seed int64  `json:"seed,omitempty"`
	// Interval is the producing run's round interval. Frames carry
	// round indices, not timestamps; the interval lets history rebuilds
	// (rwc-replay hist) stamp round × Interval exactly like the live
	// run did. Zero when the producer had no single cadence
	// (rwc-experiments figures differ per figure).
	Interval time.Duration `json:"-"`
}

// header is the 'H' section payload.
type header struct {
	Version    int    `json:"version"`
	Tool       string `json:"tool,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	IntervalNs int64  `json:"interval_ns,omitempty"`
	MaxLinks   int    `json:"max_links"`
}

// Run is the 'R' section payload: one bound run's link table.
type Run struct {
	Name     string       `json:"name"`
	Links    []Link       `json:"links"`
	Ladder   []LadderRung `json:"ladder,omitempty"`
	Admitted int          `json:"admitted"`
}

// Trailer is the 'T' section payload: everything replay needs to
// re-render the original run's artifacts byte-for-byte.
type Trailer struct {
	// Metrics is the run's own registry (the -metrics-out content).
	Metrics obs.RegistryDump `json:"metrics,omitempty"`
	// Series is the recorder's labeled-series registry, rebuilt
	// deterministically from sorted frames.
	Series obs.RegistryDump `json:"series,omitempty"`
	// Trace holds the run's trace events as canonical JSON lines (the
	// -trace-out content, one entry per line).
	Trace []json.RawMessage `json:"trace,omitempty"`
}

// Log is a fully decoded flight log.
type Log struct {
	Meta     Meta
	MaxLinks int
	Runs     []Run
	// Frames are canonically sorted (run, policy, round).
	Frames  []RoundRecord
	Trailer Trailer
}

// WriteLog streams the recorder's state as a flight log. o supplies
// the run's own metrics registry and trace for the trailer; nil (or an
// obs bundle without those sinks) embeds empty trailer sections, which
// replay reports as "not recorded" rather than rendering empty files.
func (r *Recorder) WriteLog(w io.Writer, meta Meta, o *obs.Obs) error {
	if r == nil {
		return fmt.Errorf("flight: nil recorder")
	}
	frames := r.Frames()
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	h := header{Version: 1, Tool: meta.Tool, Seed: meta.Seed, IntervalNs: meta.Interval.Nanoseconds(), MaxLinks: r.opt.MaxLinks}
	if err := writeJSONSection(w, secHeader, h); err != nil {
		return err
	}
	for _, run := range r.Runs() {
		if err := writeJSONSection(w, secRun, run); err != nil {
			return err
		}
	}
	runIndex := make(map[string]int)
	for i, run := range r.Runs() {
		runIndex[run.Name] = i
	}
	for i := range frames {
		idx, ok := runIndex[frames[i].Run]
		if !ok {
			return fmt.Errorf("flight: frame for unbound run %q", frames[i].Run)
		}
		if err := writeSection(w, secFrame, encodeFrame(nil, idx, &frames[i])); err != nil {
			return err
		}
	}
	tr := Trailer{Series: r.rebuildSeries(frames).Export()}
	if o != nil {
		tr.Metrics = o.Metrics.Export()
		if o.Trace != nil {
			for _, ev := range o.Trace.Events() {
				line, err := obs.MarshalEvent(ev)
				if err != nil {
					return fmt.Errorf("flight: marshal trace event: %w", err)
				}
				tr.Trace = append(tr.Trace, json.RawMessage(line))
			}
		}
	}
	return writeJSONSection(w, secTrailer, tr)
}

func writeJSONSection(w io.Writer, tag byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeSection(w, tag, payload)
}

func writeSection(w io.Writer, tag byte, payload []byte) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = tag
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// encodeFrame appends one frame's binary payload to b.
func encodeFrame(b []byte, runIdx int, rec *RoundRecord) []byte {
	b = binary.AppendUvarint(b, uint64(runIdx))
	b = binary.AppendUvarint(b, uint64(len(rec.Policy)))
	b = append(b, rec.Policy...)
	b = binary.AppendUvarint(b, uint64(rec.Round))
	b = appendF64(b, rec.OfferedGbps)
	b = appendF64(b, rec.ShippedGbps)
	b = appendF64(b, rec.CapacityGbps)
	b = binary.AppendUvarint(b, uint64(rec.Changes))
	b = binary.LittleEndian.AppendUint64(b, rec.Hash)
	b = binary.AppendUvarint(b, uint64(len(rec.Links)))
	for i := range rec.Links {
		l := &rec.Links[i]
		b = binary.AppendUvarint(b, uint64(l.LinkIndex))
		b = appendF64(b, l.SNRdB)
		b = appendF64(b, l.TierGbps)
		b = appendF64(b, l.FeasibleGbps)
		b = appendF64(b, l.CapacityGbps)
		if l.Fake {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendF64(b, l.FakeCapGbps)
		b = appendF64(b, l.FakePenalty)
		b = appendF64(b, l.FlowGbps)
		b = appendF64(b, l.FakeFlowGbps)
		b = appendF64(b, l.ResidualGbps)
		b = append(b, byte(l.Verdict))
	}
	return b
}

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// frameReader walks one frame payload.
type frameReader struct {
	b   []byte
	off int
}

func (fr *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(fr.b[fr.off:])
	if n <= 0 {
		return 0, fmt.Errorf("flight: truncated uvarint at offset %d", fr.off)
	}
	fr.off += n
	return v, nil
}

func (fr *frameReader) f64() (float64, error) {
	if fr.off+8 > len(fr.b) {
		return 0, fmt.Errorf("flight: truncated float at offset %d", fr.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(fr.b[fr.off:]))
	fr.off += 8
	return v, nil
}

func (fr *frameReader) u64() (uint64, error) {
	if fr.off+8 > len(fr.b) {
		return 0, fmt.Errorf("flight: truncated uint64 at offset %d", fr.off)
	}
	v := binary.LittleEndian.Uint64(fr.b[fr.off:])
	fr.off += 8
	return v, nil
}

func (fr *frameReader) byte() (byte, error) {
	if fr.off >= len(fr.b) {
		return 0, fmt.Errorf("flight: truncated byte at offset %d", fr.off)
	}
	v := fr.b[fr.off]
	fr.off++
	return v, nil
}

func (fr *frameReader) str(n uint64) (string, error) {
	if uint64(len(fr.b)-fr.off) < n {
		return "", fmt.Errorf("flight: truncated string at offset %d", fr.off)
	}
	s := string(fr.b[fr.off : fr.off+int(n)])
	fr.off += int(n)
	return s, nil
}

// decodeFrame parses one frame payload; runs resolves run indices.
func decodeFrame(payload []byte, runs []Run) (RoundRecord, error) {
	fr := &frameReader{b: payload}
	var rec RoundRecord
	runIdx, err := fr.uvarint()
	if err != nil {
		return rec, err
	}
	if runIdx >= uint64(len(runs)) {
		return rec, fmt.Errorf("flight: frame references run %d of %d", runIdx, len(runs))
	}
	rec.Run = runs[runIdx].Name
	plen, err := fr.uvarint()
	if err != nil {
		return rec, err
	}
	if rec.Policy, err = fr.str(plen); err != nil {
		return rec, err
	}
	round, err := fr.uvarint()
	if err != nil {
		return rec, err
	}
	rec.Round = int(round)
	if rec.OfferedGbps, err = fr.f64(); err != nil {
		return rec, err
	}
	if rec.ShippedGbps, err = fr.f64(); err != nil {
		return rec, err
	}
	if rec.CapacityGbps, err = fr.f64(); err != nil {
		return rec, err
	}
	changes, err := fr.uvarint()
	if err != nil {
		return rec, err
	}
	rec.Changes = int(changes)
	if rec.Hash, err = fr.u64(); err != nil {
		return rec, err
	}
	nLinks, err := fr.uvarint()
	if err != nil {
		return rec, err
	}
	if nLinks > uint64(len(runs[runIdx].Links)) {
		return rec, fmt.Errorf("flight: frame has %d links, run table has %d", nLinks, len(runs[runIdx].Links))
	}
	rec.Links = make([]LinkRecord, nLinks)
	for i := range rec.Links {
		l := &rec.Links[i]
		idx, err := fr.uvarint()
		if err != nil {
			return rec, err
		}
		l.LinkIndex = int(idx)
		if l.SNRdB, err = fr.f64(); err != nil {
			return rec, err
		}
		if l.TierGbps, err = fr.f64(); err != nil {
			return rec, err
		}
		if l.FeasibleGbps, err = fr.f64(); err != nil {
			return rec, err
		}
		if l.CapacityGbps, err = fr.f64(); err != nil {
			return rec, err
		}
		fake, err := fr.byte()
		if err != nil {
			return rec, err
		}
		l.Fake = fake != 0
		if l.FakeCapGbps, err = fr.f64(); err != nil {
			return rec, err
		}
		if l.FakePenalty, err = fr.f64(); err != nil {
			return rec, err
		}
		if l.FlowGbps, err = fr.f64(); err != nil {
			return rec, err
		}
		if l.FakeFlowGbps, err = fr.f64(); err != nil {
			return rec, err
		}
		if l.ResidualGbps, err = fr.f64(); err != nil {
			return rec, err
		}
		verdict, err := fr.byte()
		if err != nil {
			return rec, err
		}
		if verdict >= byte(verdictCount) {
			return rec, fmt.Errorf("flight: unknown verdict %d", verdict)
		}
		l.Verdict = Verdict(verdict)
	}
	if fr.off != len(payload) {
		return rec, fmt.Errorf("flight: %d trailing bytes in frame", len(payload)-fr.off)
	}
	return rec, nil
}

// ReadLog decodes a flight log. It fails loudly on truncation, unknown
// sections, or structural inconsistencies; use VerifyHashes to also
// check the per-frame digests.
func ReadLog(r io.Reader) (*Log, error) {
	br := newByteReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("flight: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("flight: bad magic %q (want %q)", magic, Magic)
	}
	log := &Log{}
	sawHeader, sawTrailer := false, false
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("flight: reading section length: %w", err)
		}
		if n > maxSectionLen {
			return nil, fmt.Errorf("flight: section of %d bytes exceeds limit", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("flight: truncated section %q: %w", tag, err)
		}
		switch tag {
		case secHeader:
			var h header
			if err := json.Unmarshal(payload, &h); err != nil {
				return nil, fmt.Errorf("flight: header: %w", err)
			}
			if h.Version != 1 {
				return nil, fmt.Errorf("flight: unsupported log version %d", h.Version)
			}
			log.Meta = Meta{Tool: h.Tool, Seed: h.Seed, Interval: time.Duration(h.IntervalNs)}
			log.MaxLinks = h.MaxLinks
			sawHeader = true
		case secRun:
			var run Run
			if err := json.Unmarshal(payload, &run); err != nil {
				return nil, fmt.Errorf("flight: run table: %w", err)
			}
			log.Runs = append(log.Runs, run)
		case secFrame:
			rec, err := decodeFrame(payload, log.Runs)
			if err != nil {
				return nil, err
			}
			log.Frames = append(log.Frames, rec)
		case secTrailer:
			if err := json.Unmarshal(payload, &log.Trailer); err != nil {
				return nil, fmt.Errorf("flight: trailer: %w", err)
			}
			sawTrailer = true
		default:
			return nil, fmt.Errorf("flight: unknown section type %q", tag)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("flight: log has no header section")
	}
	if !sawTrailer {
		return nil, fmt.Errorf("flight: log has no trailer section (truncated write?)")
	}
	sortFrames(log.Frames)
	return log, nil
}

// byteReader adapts any reader for binary.ReadUvarint without double
// buffering the common *os.File case.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

func (b *byteReader) Read(p []byte) (int, error) { return io.ReadFull(b.r, p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

// VerifyHashes recomputes every frame's canonical digest and reports
// the first mismatch — a corrupt or hand-edited log.
func (l *Log) VerifyHashes() error {
	for i := range l.Frames {
		rec := l.Frames[i]
		want := rec.Hash
		if got := hashRecord(&rec); got != want {
			return fmt.Errorf("flight: frame (run %q, policy %q, round %d) hash %016x, recomputed %016x",
				rec.Run, rec.Policy, rec.Round, want, got)
		}
	}
	return nil
}

// run returns the run table entry for a name.
func (l *Log) run(name string) (*Run, error) {
	for i := range l.Runs {
		if l.Runs[i].Name == name {
			return &l.Runs[i], nil
		}
	}
	return nil, fmt.Errorf("flight: log has no run %q", name)
}

// linkJSON is the JSONL rendering of one LinkRecord, names resolved.
type linkJSON struct {
	Link         string  `json:"link"`
	Edge         int     `json:"edge"`
	SNRdB        float64 `json:"snr_db"`
	TierGbps     float64 `json:"tier_gbps"`
	FeasibleGbps float64 `json:"feasible_gbps"`
	CapacityGbps float64 `json:"capacity_gbps"`
	Fake         bool    `json:"fake,omitempty"`
	FakeCapGbps  float64 `json:"fake_cap_gbps,omitempty"`
	FakePenalty  float64 `json:"fake_penalty,omitempty"`
	FlowGbps     float64 `json:"flow_gbps"`
	FakeFlowGbps float64 `json:"fake_flow_gbps,omitempty"`
	ResidualGbps float64 `json:"residual_gbps,omitempty"`
	Verdict      string  `json:"verdict"`
}

// frameJSON is the JSONL rendering of one RoundRecord.
type frameJSON struct {
	Run          string     `json:"run,omitempty"`
	Policy       string     `json:"policy"`
	Round        int        `json:"round"`
	OfferedGbps  float64    `json:"offered_gbps"`
	ShippedGbps  float64    `json:"shipped_gbps"`
	CapacityGbps float64    `json:"capacity_gbps"`
	Changes      int        `json:"changes"`
	Hash         string     `json:"hash"`
	Links        []linkJSON `json:"links"`
}

// WriteJSONL renders the log's frames as one JSON object per line —
// the export mode for jq/pandas consumers. Link names are resolved
// from the run tables and hashes rendered as fixed-width hex.
func (l *Log) WriteJSONL(w io.Writer) error {
	for i := range l.Frames {
		rec := &l.Frames[i]
		run, err := l.run(rec.Run)
		if err != nil {
			return err
		}
		fj := frameJSON{
			Run:          rec.Run,
			Policy:       rec.Policy,
			Round:        rec.Round,
			OfferedGbps:  rec.OfferedGbps,
			ShippedGbps:  rec.ShippedGbps,
			CapacityGbps: rec.CapacityGbps,
			Changes:      rec.Changes,
			Hash:         fmt.Sprintf("%016x", rec.Hash),
			Links:        make([]linkJSON, 0, len(rec.Links)),
		}
		for j := range rec.Links {
			lr := &rec.Links[j]
			name := fmt.Sprintf("link#%d", lr.LinkIndex)
			edge := -1
			if lr.LinkIndex >= 0 && lr.LinkIndex < len(run.Links) {
				name = run.Links[lr.LinkIndex].Name
				edge = run.Links[lr.LinkIndex].Edge
			}
			fj.Links = append(fj.Links, linkJSON{
				Link:         name,
				Edge:         edge,
				SNRdB:        lr.SNRdB,
				TierGbps:     lr.TierGbps,
				FeasibleGbps: lr.FeasibleGbps,
				CapacityGbps: lr.CapacityGbps,
				Fake:         lr.Fake,
				FakeCapGbps:  lr.FakeCapGbps,
				FakePenalty:  lr.FakePenalty,
				FlowGbps:     lr.FlowGbps,
				FakeFlowGbps: lr.FakeFlowGbps,
				ResidualGbps: lr.ResidualGbps,
				Verdict:      lr.Verdict.String(),
			})
		}
		line, err := json.Marshal(fj)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}
