package flight

import (
	"fmt"
	"strconv"
	"strings"
)

// This file renders the causal chain behind one link's capacity in one
// round: SNR sample → modulation table lookup → fake-edge ⟨capacity,
// penalty⟩ offer → solver selection → decision gate → applied
// capacity. Each step is a field of the recorded frame, so the output
// is the controller's actual decision, not a reconstruction.

// Explanation is one link's decision chain in one round.
type Explanation struct {
	Run    string
	Policy string
	Round  int
	Link   Link
	Rec    LinkRecord
	Ladder []LadderRung
}

// Explain locates the frame for (run, policy, round) and the link
// named by linkRef — a link name from the table, or a numeric edge ID —
// and returns its decision chain.
func (l *Log) Explain(run, policy string, round int, linkRef string) (*Explanation, error) {
	rt, err := l.run(run)
	if err != nil {
		return nil, err
	}
	linkIdx := -1
	for i, link := range rt.Links {
		if link.Name == linkRef {
			linkIdx = i
			break
		}
	}
	if linkIdx < 0 {
		if edge, err := strconv.Atoi(linkRef); err == nil {
			for i, link := range rt.Links {
				if link.Edge == edge {
					linkIdx = i
					break
				}
			}
		}
	}
	if linkIdx < 0 {
		return nil, fmt.Errorf("flight: run %q has no link %q (names like %q, or an edge ID)",
			run, linkRef, exampleLinkName(rt))
	}
	for i := range l.Frames {
		fr := &l.Frames[i]
		if fr.Run != run || fr.Policy != policy || fr.Round != round {
			continue
		}
		for j := range fr.Links {
			if fr.Links[j].LinkIndex == linkIdx {
				return &Explanation{
					Run:    run,
					Policy: policy,
					Round:  round,
					Link:   rt.Links[linkIdx],
					Rec:    fr.Links[j],
					Ladder: rt.Ladder,
				}, nil
			}
		}
		return nil, fmt.Errorf("flight: frame (policy %q, round %d) has no record for link %q", policy, round, linkRef)
	}
	return nil, fmt.Errorf("flight: no frame for run %q, policy %q, round %d", run, policy, round)
}

func exampleLinkName(rt *Run) string {
	if len(rt.Links) == 0 {
		return "?"
	}
	return rt.Links[0].Name
}

// tierRungs finds the ladder rung matching the recorded tier and the
// next rung above it (nil when absent / tier 0 / no ladder recorded).
func (e *Explanation) tierRungs() (cur, next *LadderRung) {
	for i := range e.Ladder {
		r := &e.Ladder[i]
		if r.Gbps == e.Rec.TierGbps { //nolint:nofloateq // ladder rungs are exact recorded constants
			cur = r
		} else if e.Rec.SNRdB < r.MinSNRdB && (next == nil || r.MinSNRdB < next.MinSNRdB) {
			next = r
		}
	}
	return cur, next
}

// Format renders the chain as aligned text for the terminal.
func (e *Explanation) Format() string {
	var b strings.Builder
	runLabel := e.Run
	if runLabel == "" {
		runLabel = "(default)"
	}
	fmt.Fprintf(&b, "link %s (edge %d, fiber %d) · run %s · policy %s · round %d\n",
		e.Link.Name, e.Link.Edge, e.Link.Fiber, runLabel, e.Policy, e.Round)

	r := e.Rec
	fmt.Fprintf(&b, "  1. SNR sample          %.*f dB (binding wavelength across the fiber)\n", 2, r.SNRdB)

	cur, next := e.tierRungs()
	tier := fmt.Sprintf("tier %g Gbps per wavelength", r.TierGbps)
	if r.TierGbps == 0 {
		tier = "below the lowest rung — wavelength dark"
	} else if cur != nil {
		tier += fmt.Sprintf(" (threshold %g dB", cur.MinSNRdB)
		if cur.Format != "" {
			tier += ", " + cur.Format
		}
		tier += ")"
	}
	if next != nil {
		tier += fmt.Sprintf("; next rung %g Gbps needs %g dB", next.Gbps, next.MinSNRdB)
	}
	fmt.Fprintf(&b, "  2. modulation lookup   %s; link feasible %g Gbps\n", tier, r.FeasibleGbps)

	if r.Fake {
		fmt.Fprintf(&b, "  3. fake edge [§3.2]    offered ⟨%g Gbps headroom, penalty %g⟩\n", r.FakeCapGbps, r.FakePenalty)
		if r.FakeFlowGbps > 0 {
			fmt.Fprintf(&b, "  4. solver selection    routed %.3f Gbps over the fake edge, residual %.3f Gbps [Thm 1]\n",
				r.FakeFlowGbps, r.ResidualGbps)
		} else {
			fmt.Fprintf(&b, "  4. solver selection    no flow on the fake edge — headroom not worth the penalty\n")
		}
	} else {
		fmt.Fprintf(&b, "  3. fake edge [§3.2]    none offered (no qualified headroom above configured)\n")
		fmt.Fprintf(&b, "  4. solver selection    n/a — nothing to select\n")
	}

	fmt.Fprintf(&b, "  5. decision gate       verdict %s\n", r.Verdict)
	fmt.Fprintf(&b, "  6. applied capacity    %g Gbps (link flow %.3f Gbps)\n", r.CapacityGbps, r.FlowGbps)
	return b.String()
}
