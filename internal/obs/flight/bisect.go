package flight

import (
	"fmt"
	"strings"
)

// This file implements flight-log bisection: given two logs, find the
// first frame (canonical order: run, policy, round) whose state hash
// diverges, then the first link and field inside it. Because every
// frame is hashed over the complete round state, the first hash
// mismatch IS the first behavioral divergence — everything before it
// is proven identical.

// Divergence reports where two logs first differ.
type Divergence struct {
	// Found is false when the logs are behaviorally identical.
	Found bool
	// Structural is non-empty when the logs differ in shape (runs,
	// link tables, frame sets) rather than in per-round values.
	Structural string
	// Run, Policy, Round locate the first diverging frame.
	Run    string
	Policy string
	Round  int
	// Link names the first diverging link ("" when a round aggregate
	// diverges first); Field names the first diverging field.
	Link  string
	Field string
	// A and B are the two values of Field (for numeric fields).
	A, B float64
}

// String renders the divergence for terminal output.
func (d Divergence) String() string {
	if !d.Found {
		return "flight logs identical"
	}
	if d.Structural != "" {
		return "structural divergence: " + d.Structural
	}
	loc := fmt.Sprintf("policy %q, round %d", d.Policy, d.Round)
	if d.Run != "" {
		loc = fmt.Sprintf("run %q, %s", d.Run, loc)
	}
	if d.Link == "" {
		return fmt.Sprintf("first divergence at %s: %s %g vs %g", loc, d.Field, d.A, d.B)
	}
	return fmt.Sprintf("first divergence at %s: link %s, %s %g vs %g", loc, d.Link, d.Field, d.A, d.B)
}

// frameKey orders/equates frames by identity, not content.
func frameKey(r *RoundRecord) string {
	return fmt.Sprintf("%s\x00%s\x00%09d", r.Run, r.Policy, r.Round)
}

// Bisect compares two decoded logs and reports the first divergence.
// Frames are walked in canonical order, so "first" means the earliest
// round of the lexically first diverging (run, policy) pair — for
// same-configuration runs this is exactly the first simulated round
// whose state differs.
func Bisect(a, b *Log) Divergence {
	if d, ok := bisectStructure(a, b); ok {
		return d
	}
	for i := range a.Frames {
		fa, fb := &a.Frames[i], &b.Frames[i]
		if frameKey(fa) != frameKey(fb) {
			return Divergence{Found: true, Structural: fmt.Sprintf(
				"frame %d is (run %q, policy %q, round %d) in one log and (run %q, policy %q, round %d) in the other",
				i, fa.Run, fa.Policy, fa.Round, fb.Run, fb.Policy, fb.Round)}
		}
		if fa.Hash == fb.Hash {
			continue
		}
		d := diffFrames(a, fa, fb)
		return d
	}
	return Divergence{}
}

// bisectStructure compares everything that must match before per-round
// comparison is meaningful.
func bisectStructure(a, b *Log) (Divergence, bool) {
	if len(a.Runs) != len(b.Runs) {
		return Divergence{Found: true, Structural: fmt.Sprintf("%d runs vs %d runs", len(a.Runs), len(b.Runs))}, true
	}
	for i := range a.Runs {
		ra, rb := &a.Runs[i], &b.Runs[i]
		if ra.Name != rb.Name {
			return Divergence{Found: true, Structural: fmt.Sprintf("run %d named %q vs %q", i, ra.Name, rb.Name)}, true
		}
		if len(ra.Links) != len(rb.Links) {
			return Divergence{Found: true, Structural: fmt.Sprintf(
				"run %q has %d links vs %d", ra.Name, len(ra.Links), len(rb.Links))}, true
		}
		for j := range ra.Links {
			if ra.Links[j] != rb.Links[j] {
				return Divergence{Found: true, Structural: fmt.Sprintf(
					"run %q link %d is %q (edge %d) vs %q (edge %d) — different topologies",
					ra.Name, j, ra.Links[j].Name, ra.Links[j].Edge, rb.Links[j].Name, rb.Links[j].Edge)}, true
			}
		}
	}
	if len(a.Frames) != len(b.Frames) {
		return Divergence{Found: true, Structural: fmt.Sprintf(
			"%d frames vs %d frames (different rounds or policies?)", len(a.Frames), len(b.Frames))}, true
	}
	return Divergence{}, false
}

// diffFrames digs into two same-key frames whose hashes differ and
// names the first diverging field.
func diffFrames(log *Log, fa, fb *RoundRecord) Divergence {
	d := Divergence{Found: true, Run: fa.Run, Policy: fa.Policy, Round: fa.Round}
	agg := []struct {
		name string
		a, b float64
	}{
		{"offered_gbps", fa.OfferedGbps, fb.OfferedGbps},
		{"shipped_gbps", fa.ShippedGbps, fb.ShippedGbps},
		{"capacity_gbps", fa.CapacityGbps, fb.CapacityGbps},
		{"changes", float64(fa.Changes), float64(fb.Changes)},
	}
	// Per-link state diverges causally before the aggregates computed
	// from it, so scan links first.
	n := len(fa.Links)
	if len(fb.Links) < n {
		n = len(fb.Links)
	}
	for i := 0; i < n; i++ {
		la, lb := &fa.Links[i], &fb.Links[i]
		if field, va, vb, ok := diffLink(la, lb); ok {
			d.Link = linkName(log, fa.Run, la.LinkIndex)
			d.Field = field
			d.A, d.B = va, vb
			return d
		}
	}
	if len(fa.Links) != len(fb.Links) {
		d.Field = "links"
		d.A, d.B = float64(len(fa.Links)), float64(len(fb.Links))
		return d
	}
	for _, f := range agg {
		if f.a != f.b { //nolint:nofloateq // bisect reports exact divergence; tolerance would hide it
			d.Field = f.name
			d.A, d.B = f.a, f.b
			return d
		}
	}
	// Hashes differed but every decoded field matches — only possible
	// if the stored hash itself was tampered with.
	d.Field = "hash"
	d.A, d.B = float64(fa.Hash), float64(fb.Hash)
	return d
}

// diffLink returns the first differing field of two link records.
func diffLink(a, b *LinkRecord) (field string, va, vb float64, ok bool) {
	checks := []struct {
		name string
		a, b float64
	}{
		{"snr_db", a.SNRdB, b.SNRdB},
		{"tier_gbps", a.TierGbps, b.TierGbps},
		{"feasible_gbps", a.FeasibleGbps, b.FeasibleGbps},
		{"capacity_gbps", a.CapacityGbps, b.CapacityGbps},
		{"fake", boolF(a.Fake), boolF(b.Fake)},
		{"fake_cap_gbps", a.FakeCapGbps, b.FakeCapGbps},
		{"fake_penalty", a.FakePenalty, b.FakePenalty},
		{"flow_gbps", a.FlowGbps, b.FlowGbps},
		{"fake_flow_gbps", a.FakeFlowGbps, b.FakeFlowGbps},
		{"residual_gbps", a.ResidualGbps, b.ResidualGbps},
		{"verdict", float64(a.Verdict), float64(b.Verdict)},
	}
	if a.LinkIndex != b.LinkIndex {
		return "link_index", float64(a.LinkIndex), float64(b.LinkIndex), true
	}
	for _, c := range checks {
		if c.a != c.b { //nolint:nofloateq // bisect reports exact divergence; tolerance would hide it
			return c.name, c.a, c.b, true
		}
	}
	return "", 0, 0, false
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func linkName(log *Log, run string, idx int) string {
	rt, err := log.run(run)
	if err != nil || idx < 0 || idx >= len(rt.Links) {
		return fmt.Sprintf("link#%d", idx)
	}
	return rt.Links[idx].Name
}

// Summary renders a short human description of a log for `replay`
// without output flags.
func (l *Log) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight log: tool %q seed %d, %d run(s), %d frame(s), link budget %d\n",
		l.Meta.Tool, l.Meta.Seed, len(l.Runs), len(l.Frames), l.MaxLinks)
	for _, run := range l.Runs {
		name := run.Name
		if name == "" {
			name = "(default)"
		}
		fmt.Fprintf(&b, "  run %s: %d links (%d with labeled series)\n", name, len(run.Links), run.Admitted)
	}
	policies := map[string]int{}
	var order []string
	for i := range l.Frames {
		p := l.Frames[i].Policy
		if policies[p] == 0 {
			order = append(order, p)
		}
		policies[p]++
	}
	for _, p := range order {
		fmt.Fprintf(&b, "  policy %s: %d round(s)\n", p, policies[p])
	}
	if len(l.Trailer.Metrics.Families) > 0 {
		fmt.Fprintf(&b, "  trailer: %d metric families, %d trace events\n",
			len(l.Trailer.Metrics.Families), len(l.Trailer.Trace))
	}
	return b.String()
}
