package obs

import (
	"strings"
	"testing"
	"time"
)

// TestRegistryMergeMatchesSerial: recording into two children and
// merging them in order produces byte-identical Prometheus output to
// recording everything into one registry.
func TestRegistryMergeMatchesSerial(t *testing.T) {
	record := func(r *Registry, phase int) {
		r.Counter("jobs_total", "jobs", L("phase", "a")).Add(float64(2 + phase))
		r.Gauge("queue_depth", "depth").Set(float64(10 * phase))
		r.Histogram("latency_seconds", "lat", []float64{0.1, 1, 10}).Observe(0.5 * float64(phase+1))
	}

	serial := NewRegistry()
	record(serial, 0)
	record(serial, 1)

	parent := NewRegistry()
	c0, c1 := NewRegistry(), NewRegistry()
	record(c0, 0)
	record(c1, 1)
	parent.Merge(c0)
	parent.Merge(c1)

	var a, b strings.Builder
	if err := serial.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := parent.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("merged registry differs from serial:\n--- serial\n%s\n--- merged\n%s", a.String(), b.String())
	}
	// Gauge takes the last merge's value (serial last-write semantics).
	if !strings.Contains(b.String(), "queue_depth 10") {
		t.Fatalf("gauge merge wrong:\n%s", b.String())
	}
}

func TestRegistryMergeNilSafe(t *testing.T) {
	var nilReg *Registry
	nilReg.Merge(NewRegistry()) // no panic
	r := NewRegistry()
	r.Merge(nil) // no panic
	if len(r.Snapshot()) != 0 {
		t.Fatal("merge of nil registered series")
	}
}

// TestTracerMergeMatchesSerial: a trace assembled from per-unit child
// tracers merged in unit order is byte-identical to one recorded
// serially, with sequence numbers and span ids renumbered to continue
// the parent's.
func TestTracerMergeMatchesSerial(t *testing.T) {
	runUnit := func(tr *Tracer, clock *SimClock, unit int) {
		clock.Set(time.Duration(unit) * time.Second)
		sp := tr.Begin("unit", A("i", unit))
		tr.Event("work", A("i", unit))
		sp.End(A("ok", true))
	}

	serialClock := NewSimClock()
	serial := NewTracer(serialClock)
	for u := 0; u < 3; u++ {
		runUnit(serial, serialClock, u)
	}

	parentClock := NewSimClock()
	parent := NewTracer(parentClock)
	for u := 0; u < 3; u++ {
		childClock := NewSimClock()
		child := NewTracer(childClock)
		runUnit(child, childClock, u)
		parent.Merge(child)
	}

	var a, b strings.Builder
	if err := serial.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := parent.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("merged trace differs from serial:\n--- serial\n%s\n--- merged\n%s", a.String(), b.String())
	}
	// Span ids must stay unique and linked after further activity.
	sp := parent.Begin("after")
	sp.End()
	events := parent.Events()
	last := events[len(events)-1]
	if last.Span != 4 {
		t.Fatalf("span ids not offset past merged children: %+v", last)
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Fatalf("seq not contiguous at %d: %+v", i, e)
		}
	}
}

// TestObsChildMerge: the Child/Merge round trip shares the wall clock,
// starts the child sim clock at the parent's offset, and adopts the
// child's final sim time on merge — what serial execution would leave.
func TestObsChildMerge(t *testing.T) {
	parent := New("tool")
	parent.SetSimTime(42 * time.Second)
	child := parent.Child()
	if child.Clock.Now() != 42*time.Second {
		t.Fatalf("child clock starts at %v", child.Clock.Now())
	}
	child.Counter("c_total", "c").Inc()
	child.SetSimTime(99 * time.Second)
	child.Event("ev")
	child.Manifest.AddPhase("phase-x", time.Second)
	parent.Merge(child)

	if parent.Clock.Now() != 99*time.Second {
		t.Fatalf("parent clock not adopted: %v", parent.Clock.Now())
	}
	if got := parent.Metrics.Totals()["c_total"]; got != 1 {
		t.Fatalf("counter not merged: %v", got)
	}
	evs := parent.Trace.Events()
	if len(evs) != 1 || evs[0].Name != "ev" || evs[0].T != 99*time.Second {
		t.Fatalf("trace not merged: %+v", evs)
	}
	phases := parent.Manifest.Phases()
	if len(phases) != 1 || phases[0].Name != "phase-x" || phases[0].WallNs != int64(time.Second) {
		t.Fatalf("manifest phases not merged: %+v", phases)
	}
}

func TestObsChildNil(t *testing.T) {
	var o *Obs
	if o.Child() != nil {
		t.Fatal("nil parent must produce nil child")
	}
	o.Merge(nil) // no panic
	parent := New("tool")
	parent.Merge(nil) // no panic
	var nilParent *Obs
	nilParent.Merge(parent) // no panic
}

// TestObsChildDisabledSinks: a parent with partially disabled sinks
// produces children with the same sinks disabled.
func TestObsChildDisabledSinks(t *testing.T) {
	parent := &Obs{Metrics: NewRegistry(), Clock: NewSimClock()}
	child := parent.Child()
	if child.Trace != nil || child.Manifest != nil {
		t.Fatal("disabled sinks re-enabled on child")
	}
	if child.Metrics == nil {
		t.Fatal("enabled sink missing on child")
	}
	child.Counter("x_total", "x").Inc()
	parent.Merge(child)
	if parent.Metrics.Totals()["x_total"] != 1 {
		t.Fatal("merge through partially disabled obs failed")
	}
}
