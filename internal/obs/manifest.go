package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// This file implements the run manifest: a JSON record of what a run
// was (tool, seed, options) and what it cost (per-phase wall
// durations, final metric totals), written at the end of every cmd/
// run that asks for one. Unlike the metrics and trace sinks, the
// manifest may carry wall-clock durations — they are measured through
// a Clock injected by cmd/, so the byte-identical guarantee applies
// only to the metrics and trace outputs.

// PhaseRecord is one timed phase (a figure, a policy run, a round).
type PhaseRecord struct {
	Name string `json:"name"`
	// WallNs is the real elapsed time of the phase in nanoseconds.
	WallNs int64 `json:"wall_ns"`
}

// AlertRecord summarizes one alert series at the end of a run (see
// internal/obs/alert). Times are *simulation* time, so records are
// deterministic for a given seed.
type AlertRecord struct {
	// Rule is the alert rule name (e.g. "snr_dip").
	Rule string `json:"rule"`
	// Series is the rendered label set of the metric series the rule
	// matched ("" for the unlabeled series).
	Series string `json:"series,omitempty"`
	// Severity is the rule's severity ("warning" or "critical").
	Severity string `json:"severity,omitempty"`
	// Fires and Resolves count state transitions over the run.
	Fires    int `json:"fires"`
	Resolves int `json:"resolves"`
	// FirstFireNs / LastFireNs are simulation-time stamps of the first
	// and last fire transitions.
	FirstFireNs int64 `json:"first_fire_ns"`
	LastFireNs  int64 `json:"last_fire_ns"`
	// ActiveAtEnd marks alerts still firing when the run finished.
	ActiveAtEnd bool `json:"active_at_end,omitempty"`
}

// Manifest accumulates the run record. All mutating methods are safe
// on a nil receiver and for concurrent use.
type Manifest struct {
	mu sync.Mutex
	m  manifestJSON
}

// manifestJSON is the serialized schema (documented in DESIGN.md).
type manifestJSON struct {
	// Tool is the command that produced the run (e.g. "rwc-wansim").
	Tool string `json:"tool"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Seed is the top-level simulation seed.
	Seed uint64 `json:"seed"`
	// Options records the effective flag values, name → rendered value.
	Options map[string]string `json:"options,omitempty"`
	// Phases lists timed phases in completion order.
	Phases []PhaseRecord `json:"phases,omitempty"`
	// Alerts is the end-of-run alert summary in completion order.
	Alerts []AlertRecord `json:"alerts,omitempty"`
	// MetricTotals is the final registry snapshot, "name{labels}" → value.
	MetricTotals map[string]float64 `json:"metric_totals,omitempty"`
}

// NewManifest returns a manifest for the named tool.
func NewManifest(tool string) *Manifest {
	return &Manifest{m: manifestJSON{Tool: tool, GoVersion: goVersion()}}
}

// SetSeed records the run seed.
func (m *Manifest) SetSeed(seed uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.m.Seed = seed
	m.mu.Unlock()
}

// SetOption records one effective option value.
func (m *Manifest) SetOption(name, value string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.m.Options == nil {
		m.m.Options = make(map[string]string)
	}
	m.m.Options[name] = value
	m.mu.Unlock()
}

// AddPhase appends a timed phase.
func (m *Manifest) AddPhase(name string, wall time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.m.Phases = append(m.m.Phases, PhaseRecord{Name: name, WallNs: wall.Nanoseconds()})
	m.mu.Unlock()
}

// Phases returns a copy of the recorded phases.
func (m *Manifest) Phases() []PhaseRecord {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]PhaseRecord(nil), m.m.Phases...)
}

// AddAlert appends one alert summary record.
func (m *Manifest) AddAlert(rec AlertRecord) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.m.Alerts = append(m.m.Alerts, rec)
	m.mu.Unlock()
}

// Alerts returns a copy of the recorded alert summaries.
func (m *Manifest) Alerts() []AlertRecord {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]AlertRecord(nil), m.m.Alerts...)
}

// SetMetricTotals stores the final metric snapshot.
func (m *Manifest) SetMetricTotals(totals map[string]float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.m.MetricTotals = totals
	m.mu.Unlock()
}

// WriteJSON serializes the manifest, indented, with sorted map keys
// (encoding/json sorts them), ending with a newline.
func (m *Manifest) WriteJSON(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.m)
}
