// Package sli turns the operations plane inward: service-level
// indicators for the long-running reconciler daemon (rwc-wansimd),
// published as rwc_sli_* series in a layer-owned registry that is
// never merged into run artifacts.
//
// The layer answers "is the service healthy" — decisions per second,
// round and scrape latency, SSE fan-out drops, config-reload outcomes,
// uptime — the way the simulation's own registry answers "is the
// network healthy". The two must never mix: a daemon run with a fixed
// round budget is required to emit byte-identical artifacts to the
// equivalent one-shot run, so everything here lives on the serve-owned
// side of that line, exactly like internal/obs/serve's scrape counters
// and internal/obs/perf's wall-clock side channel.
//
// Wall-clock discipline: this package sits under internal/obs and is
// subject to the nowalltime lint rule, so it never reads a clock. All
// durations arrive by injection — the daemon measures round latency
// against its own wall clock (cmd/ and internal/daemon are outside the
// rule) and calls RoundComplete; the serve layer times its own scrapes
// and calls ScrapeObserved; Tick carries the current uptime. The
// layer's SimClock is therefore "service uptime", and the burn-rate
// alert windows (round_latency_slo, scrape_latency_slo, reusing
// internal/obs/alert verbatim) are windows over uptime.
//
// Like every obs sink, a nil *Layer is the disabled state: all methods
// are nil-receiver-safe, so the daemon and serve layers call
// unconditionally.
package sli

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/hist"
)

// Canonical rwc_sli_* series names. Constants so call sites and the
// seriesname lint agree on the catalog, and so rwc-top / CI greps have
// one spelling to reference.
const (
	MetricRoundsTotal      = "rwc_sli_rounds_total"
	MetricDecisionsTotal   = "rwc_sli_decisions_total"
	MetricDecisionsPerSec  = "rwc_sli_decisions_per_second"
	MetricRoundLatency     = "rwc_sli_round_latency_seconds"
	MetricRoundLatencyLast = "rwc_sli_round_latency_last_seconds"
	MetricScrapesTotal     = "rwc_sli_scrapes_total"
	MetricScrapeLatency    = "rwc_sli_scrape_latency_seconds"
	MetricScrapeLatLast    = "rwc_sli_scrape_latency_last_seconds"
	MetricSSESubscribers   = "rwc_sli_sse_subscribers"
	MetricSSEDroppedTotal  = "rwc_sli_sse_dropped_total"
	MetricReloadsTotal     = "rwc_sli_config_reloads_total"
	MetricGeneration       = "rwc_sli_config_generation"
	MetricUptimeRounds     = "rwc_sli_uptime_rounds"
	MetricUptimeSeconds    = "rwc_sli_uptime_seconds"
	MetricAlertsFiring     = "rwc_sli_alerts_firing"
	MetricDemandBatches    = "rwc_sli_demand_batches_total"
	MetricDemandsTotal     = "rwc_sli_demands_total"
	MetricDemandGbpsTotal  = "rwc_sli_demand_gbps_total"
	MetricDemandAdmitGbps  = "rwc_sli_demand_admitted_gbps_total"
)

// Prefix is the family-name prefix the serve layer exposes on shared
// scrapes (Registry.WritePrometheusPrefix): everything above, and
// nothing the layer's internal alert engine books under alerts_*.
const Prefix = "rwc_sli_"

// Drop causes for MetricSSEDroppedTotal's cause label.
const (
	DropSlowConsumer = "slow-consumer"
	DropShutdown     = "shutdown"
)

// Reload results for MetricReloadsTotal's result label.
const (
	ReloadSuccess = "success"
	ReloadNoop    = "noop"
	ReloadFailure = "failure"
)

// latencyBuckets spans sub-millisecond scrapes to rounds that blow a
// multi-second budget (seconds, powers of ~5).
var latencyBuckets = []float64{0.0002, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// Options configures a Layer.
type Options struct {
	// Tool names the daemon in the layer's history archive.
	Tool string
	// Seed identifies the underlying run in the history archive.
	Seed uint64
	// Rules overrides the alert rule set (default DefaultServiceRules).
	Rules []alert.Rule
	// HistRetain caps raw samples per SLI history series (default 512 —
	// the SLI plane is low-cardinality and long-lived, so it retains
	// more than a sim round budget would).
	HistRetain int
	// RateWindow is the uptime span the decisions/sec gauge averages
	// over (default 30s).
	RateWindow time.Duration
	// EventKeep caps the recent-event ring /sliz serves (default 32).
	EventKeep int
}

// Event is one service-lifecycle event kept for /sliz: config reloads,
// generation changes, shutdown passes.
type Event struct {
	UptimeNs int64  `json:"uptime_ns"`
	Kind     string `json:"kind"`
	Detail   string `json:"detail,omitempty"`
	Result   string `json:"result,omitempty"`
	Gen      uint64 `json:"generation,omitempty"`
}

// tickPoint is one decisions/sec rate sample boundary.
type tickPoint struct {
	uptime    time.Duration
	decisions float64
}

// Layer owns the service-health telemetry plane.
type Layer struct {
	mu    sync.Mutex
	opts  Options
	clock *obs.SimClock
	o     *obs.Obs
	store *hist.Store
	eng   *alert.Engine

	ticks      int
	generation uint64
	decisions  float64
	rounds     uint64
	window     []tickPoint
	events     []Event
}

// New builds a Layer with its own registry, tracer, uptime clock,
// history store, and burn-rate alert engine.
func New(opts Options) *Layer {
	if opts.HistRetain <= 0 {
		opts.HistRetain = 512
	}
	if opts.RateWindow <= 0 {
		opts.RateWindow = 30 * time.Second
	}
	if opts.EventKeep <= 0 {
		opts.EventKeep = 32
	}
	if opts.Rules == nil {
		opts.Rules = DefaultServiceRules()
	}
	l := &Layer{opts: opts, clock: obs.NewSimClock()}
	l.o = &obs.Obs{
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTracer(l.clock),
		Clock:   l.clock,
	}
	l.store = hist.New(hist.Options{
		Retain: opts.HistRetain,
		Tool:   opts.Tool,
		Seed:   opts.Seed,
	})
	l.o.Metrics.SetHistory(l.store.Root().Bind(l.clock))
	l.eng = alert.NewEngine(l.o, opts.Rules...)
	// Pre-register the zero-valued core series so a scrape taken before
	// the first round still shows the catalog (CI greps for presence).
	l.o.Gauge(MetricDecisionsPerSec, "Capacity decisions per second over the rate window (service throughput SLI).")
	l.o.Gauge(MetricGeneration, "Monotonic config generation; bumps on every accepted reload.").Set(1)
	l.o.Gauge(MetricUptimeRounds, "Simulation rounds completed since the daemon started.")
	l.o.Gauge(MetricUptimeSeconds, "Daemon uptime (injected wall seconds).")
	l.o.Gauge(MetricAlertsFiring, "SLI burn-rate alerts currently firing.")
	l.generation = 1
	return l
}

// Obs exposes the layer bundle (registry + tracer + uptime clock) for
// tests. Never merge it into a run bundle.
func (l *Layer) Obs() *obs.Obs {
	if l == nil {
		return nil
	}
	return l.o
}

// Registry is the layer-owned metric registry (nil when disabled).
func (l *Layer) Registry() *obs.Registry {
	if l == nil {
		return nil
	}
	return l.o.Metrics
}

// Hist is the layer-owned history store backing burn-rate windows and
// /queryz over rwc_sli_* series (nil when disabled).
func (l *Layer) Hist() *hist.Store {
	if l == nil {
		return nil
	}
	return l.store
}

// Uptime reads the injected uptime clock.
func (l *Layer) Uptime() time.Duration {
	if l == nil {
		return 0
	}
	return l.clock.Now()
}

// Tick advances the service plane once per daemon tick: moves the
// uptime clock, refreshes the rate and uptime gauges, and evaluates
// the burn-rate rules on the new timestamp.
func (l *Layer) Tick(uptime time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.clock.Set(uptime)
	l.ticks++
	tick := l.ticks
	l.window = append(l.window, tickPoint{uptime: uptime, decisions: l.decisions})
	for len(l.window) > 1 && uptime-l.window[0].uptime > l.opts.RateWindow {
		l.window = l.window[1:]
	}
	rate := 0.0
	if n := len(l.window); n > 1 {
		span := l.window[n-1].uptime - l.window[0].uptime
		if span > 0 {
			rate = (l.window[n-1].decisions - l.window[0].decisions) / span.Seconds()
		}
	}
	l.mu.Unlock()

	l.o.Gauge(MetricDecisionsPerSec, "Capacity decisions per second over the rate window (service throughput SLI).").Set(rate)
	l.o.Gauge(MetricUptimeSeconds, "Daemon uptime (injected wall seconds).").Set(uptime.Seconds())
	l.eng.EvalRound(tick)
	l.o.Gauge(MetricAlertsFiring, "SLI burn-rate alerts currently firing.").Set(float64(len(l.eng.Active())))
}

// RoundComplete records one finished simulation round: its wall
// latency (measured by the daemon, outside the nowalltime boundary)
// and its decision count (wavelength capacity changes). Safe for
// concurrent calls from policy workers.
func (l *Layer) RoundComplete(policy string, latency time.Duration, decisions int) {
	if l == nil {
		return
	}
	pl := obs.L("policy", policy)
	l.o.Counter(MetricRoundsTotal, "Simulation rounds completed by the daemon, by policy.", pl).Inc()
	l.o.Counter(MetricDecisionsTotal, "Capacity decisions (wavelength changes) made by the daemon, by policy.", pl).Add(float64(decisions))
	l.o.Histogram(MetricRoundLatency, "Wall latency of one simulation round (seconds), by policy.", latencyBuckets, pl).Observe(latency.Seconds())
	l.o.Gauge(MetricRoundLatencyLast, "Wall latency of the most recent round (seconds), by policy; round_latency_slo burns on it.", pl).Set(latency.Seconds())

	l.mu.Lock()
	l.decisions += float64(decisions)
	l.rounds++
	total := l.rounds
	l.mu.Unlock()
	l.o.Gauge(MetricUptimeRounds, "Simulation rounds completed since the daemon started.").Set(float64(total))
}

// ScrapeObserved records one /metrics scrape's wall latency, measured
// by the serve layer.
func (l *Layer) ScrapeObserved(latency time.Duration) {
	if l == nil {
		return
	}
	l.o.Counter(MetricScrapesTotal, "Self-timed /metrics scrapes served.").Inc()
	l.o.Histogram(MetricScrapeLatency, "Wall latency of one /metrics scrape (seconds).", latencyBuckets).Observe(latency.Seconds())
	l.o.Gauge(MetricScrapeLatLast, "Wall latency of the most recent /metrics scrape (seconds); scrape_latency_slo burns on it.").Set(latency.Seconds())
}

// SSESubscribers publishes the current /traces subscriber count.
func (l *Layer) SSESubscribers(n int) {
	if l == nil {
		return
	}
	l.o.Gauge(MetricSSESubscribers, "Currently connected /traces SSE subscribers.").Set(float64(n))
}

// SSEDropped adds n dropped trace events under the given cause
// (DropSlowConsumer or DropShutdown).
func (l *Layer) SSEDropped(cause string, n uint64) {
	if l == nil || n == 0 {
		return
	}
	l.o.Counter(MetricSSEDroppedTotal, "Trace events dropped on the /traces SSE fan-out, by cause.", obs.L("cause", cause)).Add(float64(n))
}

// Reload records one config-reload outcome. Accepted reloads
// (ReloadSuccess and the provable-no-op ReloadNoop) bump the
// generation gauge; ReloadFailure keeps last-known-good and only
// counts. Every outcome emits a config.reload trace event on the
// layer's tracer and lands in the /sliz event ring.
func (l *Layer) Reload(result, detail string) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	if result != ReloadFailure {
		l.generation++
	}
	gen := l.generation
	uptime := l.clock.Now()
	l.pushEventLocked(Event{UptimeNs: uptime.Nanoseconds(), Kind: "config.reload", Detail: detail, Result: result, Gen: gen})
	l.mu.Unlock()

	l.o.Counter(MetricReloadsTotal, "Config reload attempts, by result (success, noop, failure).", obs.L("result", result)).Inc()
	l.o.Gauge(MetricGeneration, "Monotonic config generation; bumps on every accepted reload.").Set(float64(gen))
	l.o.Event("config.reload",
		obs.A("result", result),
		obs.A("generation", gen),
		obs.A("detail", detail))
	return gen
}

// Generation reads the current config generation.
func (l *Layer) Generation() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.generation
}

// Lifecycle records a non-reload service event (start, drain,
// shutdown passes) for /sliz and the layer trace.
func (l *Layer) Lifecycle(kind, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.pushEventLocked(Event{UptimeNs: l.clock.Now().Nanoseconds(), Kind: kind, Detail: detail})
	l.mu.Unlock()
	l.o.Event("daemon.lifecycle", obs.A("kind", kind), obs.A("detail", detail))
}

// DemandBatch records one /demandz admission answer from the load
// generator's streamed gravity batches.
func (l *Layer) DemandBatch(demands int, offeredGbps, admittedGbps float64) {
	if l == nil {
		return
	}
	l.o.Counter(MetricDemandBatches, "Demand batches admitted through /demandz.").Inc()
	l.o.Counter(MetricDemandsTotal, "Individual demands received through /demandz.").Add(float64(demands))
	l.o.Counter(MetricDemandGbpsTotal, "Total demand volume offered through /demandz (Gbps).").Add(offeredGbps)
	l.o.Counter(MetricDemandAdmitGbps, "Demand volume admitted against latest-round headroom (Gbps).").Add(admittedGbps)
}

func (l *Layer) pushEventLocked(e Event) {
	l.events = append(l.events, e)
	if len(l.events) > l.opts.EventKeep {
		l.events = l.events[len(l.events)-l.opts.EventKeep:]
	}
}

// Snapshot is the /sliz response shape.
type Snapshot struct {
	Tool         string             `json:"tool"`
	Generation   uint64             `json:"generation"`
	UptimeNs     int64              `json:"uptime_ns"`
	Ticks        int                `json:"ticks"`
	ActiveAlerts []obs.AlertRecord  `json:"active_alerts"`
	Totals       map[string]float64 `json:"totals"`
	Events       []Event            `json:"events"`
}

// Snapshot captures the service state for /sliz: generation, uptime,
// active burn-rate alerts, rwc_sli_* totals, and the recent event
// ring.
func (l *Layer) Snapshot() Snapshot {
	if l == nil {
		return Snapshot{}
	}
	l.mu.Lock()
	snap := Snapshot{
		Tool:       l.opts.Tool,
		Generation: l.generation,
		UptimeNs:   l.clock.Now().Nanoseconds(),
		Ticks:      l.ticks,
		Events:     append([]Event(nil), l.events...),
	}
	l.mu.Unlock()
	snap.ActiveAlerts = l.eng.Active()
	if snap.ActiveAlerts == nil {
		snap.ActiveAlerts = []obs.AlertRecord{}
	}
	if snap.Events == nil {
		snap.Events = []Event{}
	}
	snap.Totals = map[string]float64{}
	for k, v := range l.o.Metrics.Totals() {
		if len(k) >= len(Prefix) && k[:len(Prefix)] == Prefix {
			snap.Totals[k] = v
		}
	}
	return snap
}
