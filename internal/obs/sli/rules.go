package sli

import (
	"time"

	"repro/internal/obs/alert"
)

// DefaultServiceRules is the daemon's service-health rule set,
// reusing internal/obs/alert's multi-window burn-rate machinery over
// the SLI layer's uptime clock (the layer's history store retains
// every rwc_sli_* observation stamped with injected uptime, so the
// windows are real wall windows without the rules ever reading a
// clock):
//
//   - round_latency_slo: a simulation round should complete well
//     inside its tick budget. A sample is bad when the most recent
//     round took ≥ 5 s of wall time; the rule fires when both the 30 s
//     and 2 m windows burn more than 2× the 10% error budget. One slow
//     round (GC pause, cold cache) burns only the short window — no
//     page; a sustained regression burns both within one window of
//     onset.
//   - scrape_latency_slo: /metrics must stay cheap under client load.
//     A sample is bad when a scrape took ≥ 0.5 s; windows and budget
//     mirror round_latency_slo.
//
// Thresholds are deliberately generous: CI's daemon smoke asserts
// these alerts stay quiet on a healthy run, so they must only fire on
// genuine service distress, not machine noise.
func DefaultServiceRules() []alert.Rule {
	return []alert.Rule{
		{
			Name:        "round_latency_slo",
			Metric:      MetricRoundLatencyLast,
			Source:      alert.SourceBurnRate,
			SLO:         5.0,
			SLOOp:       alert.OpAbove,
			ShortWindow: 30 * time.Second,
			LongWindow:  2 * time.Minute,
			Budget:      0.1,
			Op:          alert.OpAbove,
			Threshold:   2,
			Sustain:     1,
			Severity:    alert.SeverityCritical,
			Help:        "Round-latency SLO burn: simulation rounds spent too much of both the 30s and 2m windows above the 5s wall budget; the daemon is falling behind its tick cadence.",
		},
		{
			Name:        "scrape_latency_slo",
			Metric:      MetricScrapeLatLast,
			Source:      alert.SourceBurnRate,
			SLO:         0.5,
			SLOOp:       alert.OpAbove,
			ShortWindow: 30 * time.Second,
			LongWindow:  2 * time.Minute,
			Budget:      0.1,
			Op:          alert.OpAbove,
			Threshold:   2,
			Sustain:     1,
			Severity:    alert.SeverityWarning,
			Help:        "Scrape-latency SLO burn: /metrics spent too much of both the 30s and 2m windows above the 0.5s wall budget; the ops plane is degrading under load.",
		},
	}
}
