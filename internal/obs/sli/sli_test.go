package sli

import (
	"strings"
	"testing"
	"time"
)

// TestNilLayerIsDisabled: every method must be a no-op on a nil
// receiver — the daemon and serve layers call unconditionally.
func TestNilLayerIsDisabled(t *testing.T) {
	var l *Layer
	l.Tick(time.Second)
	l.RoundComplete("dynamic", time.Millisecond, 3)
	l.ScrapeObserved(time.Millisecond)
	l.SSESubscribers(2)
	l.SSEDropped(DropShutdown, 5)
	l.Lifecycle("daemon.start", "x")
	l.DemandBatch(4, 100, 50)
	if gen := l.Reload(ReloadSuccess, "x"); gen != 0 {
		t.Fatalf("nil Reload = %d, want 0", gen)
	}
	if l.Generation() != 0 || l.Uptime() != 0 || l.Registry() != nil || l.Hist() != nil || l.Obs() != nil {
		t.Fatal("nil accessors must return zero values")
	}
	snap := l.Snapshot()
	if snap.Generation != 0 || snap.Totals != nil {
		t.Fatalf("nil Snapshot = %+v", snap)
	}
}

func TestCatalogPreRegistered(t *testing.T) {
	l := New(Options{Tool: "rwc-wansimd", Seed: 7})
	totals := l.Registry().Totals()
	for _, name := range []string{MetricDecisionsPerSec, MetricGeneration, MetricUptimeRounds, MetricUptimeSeconds, MetricAlertsFiring} {
		if _, ok := totals[name]; !ok {
			t.Errorf("core series %s not pre-registered; a pre-round scrape would miss the catalog", name)
		}
	}
	if totals[MetricGeneration] != 1 {
		t.Errorf("initial %s = %v, want 1", MetricGeneration, totals[MetricGeneration])
	}
}

// TestDecisionsPerSecondRate: the throughput gauge is the decision
// delta over the rate window, computed purely from injected uptime.
func TestDecisionsPerSecondRate(t *testing.T) {
	l := New(Options{Tool: "t", RateWindow: 10 * time.Second})
	l.Tick(0)
	l.RoundComplete("dynamic", 5*time.Millisecond, 10)
	l.RoundComplete("dynamic", 5*time.Millisecond, 10)
	l.Tick(2 * time.Second)
	totals := l.Registry().Totals()
	if got := totals[MetricDecisionsPerSec]; got != 10 {
		t.Fatalf("decisions/sec after 20 decisions in 2s = %v, want 10", got)
	}
	key := MetricDecisionsTotal + `{policy="dynamic"}`
	if got := totals[key]; got != 20 {
		t.Fatalf("%s = %v, want 20", key, got)
	}
	if got := totals[MetricUptimeRounds]; got != 2 {
		t.Fatalf("%s = %v, want 2", MetricUptimeRounds, got)
	}
	// The window slides: with no further decisions the rate decays to 0
	// once the active window holds no delta.
	l.Tick(20 * time.Second)
	l.Tick(40 * time.Second)
	if got := l.Registry().Totals()[MetricDecisionsPerSec]; got != 0 {
		t.Fatalf("decisions/sec after an idle window = %v, want 0", got)
	}
}

func TestReloadGenerationSemantics(t *testing.T) {
	l := New(Options{Tool: "t"})
	if gen := l.Reload(ReloadNoop, "identical"); gen != 2 {
		t.Fatalf("noop reload generation = %d, want 2", gen)
	}
	if gen := l.Reload(ReloadSuccess, "switched"); gen != 3 {
		t.Fatalf("success reload generation = %d, want 3", gen)
	}
	if gen := l.Reload(ReloadFailure, "bad config"); gen != 3 {
		t.Fatalf("failure reload generation = %d, want 3 (failures must not bump)", gen)
	}
	totals := l.Registry().Totals()
	for result, want := range map[string]float64{ReloadNoop: 1, ReloadSuccess: 1, ReloadFailure: 1} {
		key := MetricReloadsTotal + `{result="` + result + `"}`
		if totals[key] != want {
			t.Errorf("%s = %v, want %v", key, totals[key], want)
		}
	}
	if totals[MetricGeneration] != 3 {
		t.Errorf("%s = %v, want 3", MetricGeneration, totals[MetricGeneration])
	}
	// Every outcome is a config.reload trace event on the layer tracer.
	events := 0
	for _, e := range l.Obs().Trace.Events() {
		if e.Name == "config.reload" {
			events++
		}
	}
	if events != 3 {
		t.Errorf("config.reload trace events = %d, want 3", events)
	}
}

func TestSSEDropCauses(t *testing.T) {
	l := New(Options{Tool: "t"})
	l.SSEDropped(DropSlowConsumer, 4)
	l.SSEDropped(DropShutdown, 2)
	l.SSEDropped(DropSlowConsumer, 0) // zero adds must not register noise
	totals := l.Registry().Totals()
	if got := totals[MetricSSEDroppedTotal+`{cause="`+DropSlowConsumer+`"}`]; got != 4 {
		t.Errorf("slow-consumer drops = %v, want 4", got)
	}
	if got := totals[MetricSSEDroppedTotal+`{cause="`+DropShutdown+`"}`]; got != 2 {
		t.Errorf("shutdown drops = %v, want 2", got)
	}
}

// TestSnapshotFiltersToCatalog: /sliz totals carry rwc_sli_* series
// only — the alert engine's internal families stay private.
func TestSnapshotFiltersToCatalog(t *testing.T) {
	l := New(Options{Tool: "rwc-wansimd"})
	l.Tick(time.Second)
	l.RoundComplete("dynamic", time.Millisecond, 2)
	l.Lifecycle("daemon.start", "test")
	snap := l.Snapshot()
	if snap.Tool != "rwc-wansimd" || snap.Generation != 1 || snap.UptimeNs != time.Second.Nanoseconds() {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if len(snap.Totals) == 0 {
		t.Fatal("snapshot totals empty")
	}
	for key := range snap.Totals {
		if !strings.HasPrefix(key, Prefix) {
			t.Errorf("non-catalog series %s leaked into the /sliz snapshot", key)
		}
	}
	if len(snap.Events) == 0 || snap.Events[len(snap.Events)-1].Kind != "daemon.start" {
		t.Fatalf("snapshot events = %+v", snap.Events)
	}
	if snap.ActiveAlerts == nil {
		t.Fatal("ActiveAlerts must marshal as [], not null")
	}
}

func TestEventRingIsBounded(t *testing.T) {
	l := New(Options{Tool: "t", EventKeep: 4})
	for i := 0; i < 10; i++ {
		l.Lifecycle("tick", "")
	}
	if n := len(l.Snapshot().Events); n != 4 {
		t.Fatalf("event ring holds %d, want 4", n)
	}
}

// TestBurnRateRulesQuietOnHealthyRun: CI's daemon smoke asserts no
// alert fires on a healthy run; pin that here with fast rounds and
// cheap scrapes over several windows of uptime.
func TestBurnRateRulesQuietOnHealthyRun(t *testing.T) {
	l := New(Options{Tool: "t"})
	for i := 1; i <= 60; i++ {
		l.RoundComplete("dynamic", 3*time.Millisecond, 1)
		l.ScrapeObserved(500 * time.Microsecond)
		l.Tick(time.Duration(i) * 5 * time.Second)
	}
	snap := l.Snapshot()
	if len(snap.ActiveAlerts) != 0 {
		t.Fatalf("healthy run fired alerts: %+v", snap.ActiveAlerts)
	}
	if got := l.Registry().Totals()[MetricAlertsFiring]; got != 0 {
		t.Fatalf("%s = %v, want 0", MetricAlertsFiring, got)
	}
}

// TestBurnRateFiresOnSustainedSlowRounds: sustained wall latency over
// the SLO must burn both windows and fire round_latency_slo.
func TestBurnRateFiresOnSustainedSlowRounds(t *testing.T) {
	l := New(Options{Tool: "t"})
	for i := 1; i <= 60; i++ {
		l.RoundComplete("dynamic", 30*time.Second, 1) // far over the 5s budget
		l.Tick(time.Duration(i) * 5 * time.Second)
	}
	snap := l.Snapshot()
	found := false
	for _, a := range snap.ActiveAlerts {
		if a.Rule == "round_latency_slo" {
			found = true
		}
	}
	if !found {
		t.Fatalf("round_latency_slo did not fire on sustained 30s rounds; active = %+v", snap.ActiveAlerts)
	}
	if got := l.Registry().Totals()[MetricAlertsFiring]; got < 1 {
		t.Fatalf("%s = %v, want >= 1", MetricAlertsFiring, got)
	}
}
