package alert

import "time"

// DefaultWANRules is the built-in rule set for the WAN simulation,
// mapping the paper's operational signals to alert predicates:
//
//   - snr_dip: §2.3 observes that real fiber SNR dips 3+ dB below its
//     typical level during weather events, which is exactly when
//     dynamic capacity policies must step modulation down. The rule
//     watches the per-policy minimum-SNR gauge and fires whenever it
//     sits ≥ 3 dB below its running maximum.
//   - capacity_flap_rate: frequent capacity reconfiguration is the
//     operational cost of running links dynamically (§3 "capacity may
//     change too often"). The rule fires when more than a quarter of
//     links change capacity per round for two consecutive rounds — a
//     sustained churn signal, not a single reconvergence blip.
//   - te_solver_work_p99: the TE solver must keep up with the round
//     cadence. Wall latency is nondeterministic, so the simulation
//     records deterministic solver work units (augmenting-path count)
//     in the wan_te_solve_work histogram; the rule fires when the p99
//     exceeds a budget that, at measured per-unit cost, would blow the
//     round deadline.
func DefaultWANRules() []Rule {
	return []Rule{
		{
			Name:      "snr_dip",
			Metric:    "wan_snr_min_db",
			Source:    SourceDipFromMax,
			Op:        OpAbove,
			Threshold: 3,
			Sustain:   1,
			Severity:  SeverityCritical,
			Help:      "Minimum link SNR is ≥3 dB below its running maximum (§2.3 weather-event dip); expect modulation step-down.",
		},
		{
			Name:      "capacity_flap_rate",
			Metric:    "wan_flap_rate",
			Source:    SourceValue,
			Op:        OpAbove,
			Threshold: 0.25,
			Sustain:   2,
			Severity:  SeverityWarning,
			Help:      "More than 25% of links changed capacity per round for 2+ consecutive rounds; sustained churn destabilizes TE.",
		},
		{
			Name:      "te_solver_work_p99",
			Metric:    "wan_te_solve_work",
			Source:    SourceHistP99,
			Op:        OpAbove,
			Threshold: 20000,
			Sustain:   1,
			Severity:  SeverityWarning,
			Help:      "p99 TE solver work units per solve exceed the round budget; solver may not keep up with the reconfiguration cadence.",
		},
	}
}

// DefaultSLORules is the windowed SLO rule set, evaluated against the
// metrics-history store — callers append it only when a history sink
// is attached (rwc-wansim does so under -hist-out).
//
// capacity_below_slo recasts §2.3's dip observation as an availability
// objective: minimum link SNR must stay above the engineered baseline
// minus 3 dB (the depth at which modulation steps down and capacity is
// lost), with a 10% error budget of simulation rounds. The burn rate —
// the bad-round fraction over a window divided by that budget — is
// taken over a short 12 h window (2 rounds at the default 6 h cadence,
// fast detection) and a long 48 h window (8 rounds, confirmation), and
// the rule fires when *both* exceed 2× budget: a single bad round
// burns the short window but not the long one (no page), while a
// §2.3-length event (hours of depressed SNR, i.e. 2+ consecutive bad
// rounds) burns both within one round of onset and resolves as the
// short window drains.
func DefaultSLORules() []Rule {
	return []Rule{
		{
			Name:        "capacity_below_slo",
			Metric:      "wan_snr_min_db",
			Source:      SourceBurnRate,
			SLO:         10.0, // engineered floor: §2.3 baseline ≈15.45 dB − 3 dB dip, rounded below the ≈10.5 dB default-run noise floor
			SLOOp:       OpBelow,
			ShortWindow: 12 * time.Hour,
			LongWindow:  48 * time.Hour,
			Budget:      0.1,
			Op:          OpAbove,
			Threshold:   2,
			Sustain:     1,
			Severity:    SeverityCritical,
			Help:        "SNR-availability SLO burn: min link SNR spent too much of both the 12h and 48h windows below the modulation floor (§2.3 dip translated into an objective); capacity is being lost faster than the error budget allows.",
		},
	}
}
