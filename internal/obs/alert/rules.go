package alert

// DefaultWANRules is the built-in rule set for the WAN simulation,
// mapping the paper's operational signals to alert predicates:
//
//   - snr_dip: §2.3 observes that real fiber SNR dips 3+ dB below its
//     typical level during weather events, which is exactly when
//     dynamic capacity policies must step modulation down. The rule
//     watches the per-policy minimum-SNR gauge and fires whenever it
//     sits ≥ 3 dB below its running maximum.
//   - capacity_flap_rate: frequent capacity reconfiguration is the
//     operational cost of running links dynamically (§3 "capacity may
//     change too often"). The rule fires when more than a quarter of
//     links change capacity per round for two consecutive rounds — a
//     sustained churn signal, not a single reconvergence blip.
//   - te_solver_work_p99: the TE solver must keep up with the round
//     cadence. Wall latency is nondeterministic, so the simulation
//     records deterministic solver work units (augmenting-path count)
//     in the wan_te_solve_work histogram; the rule fires when the p99
//     exceeds a budget that, at measured per-unit cost, would blow the
//     round deadline.
func DefaultWANRules() []Rule {
	return []Rule{
		{
			Name:      "snr_dip",
			Metric:    "wan_snr_min_db",
			Source:    SourceDipFromMax,
			Op:        OpAbove,
			Threshold: 3,
			Sustain:   1,
			Severity:  SeverityCritical,
			Help:      "Minimum link SNR is ≥3 dB below its running maximum (§2.3 weather-event dip); expect modulation step-down.",
		},
		{
			Name:      "capacity_flap_rate",
			Metric:    "wan_flap_rate",
			Source:    SourceValue,
			Op:        OpAbove,
			Threshold: 0.25,
			Sustain:   2,
			Severity:  SeverityWarning,
			Help:      "More than 25% of links changed capacity per round for 2+ consecutive rounds; sustained churn destabilizes TE.",
		},
		{
			Name:      "te_solver_work_p99",
			Metric:    "wan_te_solve_work",
			Source:    SourceHistP99,
			Op:        OpAbove,
			Threshold: 20000,
			Sustain:   1,
			Severity:  SeverityWarning,
			Help:      "p99 TE solver work units per solve exceed the round budget; solver may not keep up with the reconfiguration cadence.",
		},
	}
}
