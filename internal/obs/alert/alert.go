// Package alert is the deterministic alerting half of the live
// operations plane: a rule engine evaluated once per simulation round
// against metric-registry snapshots, turning the paper's operational
// signals (§2.3 SNR dips, capacity-flap churn, TE solver load) into
// alert.fire / alert.resolve trace events, alert metrics, and an
// end-of-run summary in the run manifest.
//
// Determinism is the design constraint that shapes everything here:
//
//   - Rules evaluate registry snapshots, which are deterministic for a
//     given seed, in sorted series order.
//   - Alert timestamps are *simulation* time (the tracer's injected
//     clock), never wall time — this package is on the nowalltime
//     lint deny-list like the rest of internal/obs.
//   - Therefore two same-seed runs fire the exact same alerts with the
//     exact same stamps, and the byte-identity guarantee over metrics
//     and trace artifacts extends to alerting.
//
// Like every obs sink, a nil *Engine is the disabled state: all
// methods are nil-receiver-safe.
package alert

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Op compares an observed value against a rule threshold.
type Op int

const (
	// OpAbove breaches when value >= Threshold.
	OpAbove Op = iota
	// OpBelow breaches when value <= Threshold.
	OpBelow
)

// String names the operator for trace attributes.
func (o Op) String() string {
	switch o {
	case OpAbove:
		return ">="
	case OpBelow:
		return "<="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Source selects what number a rule extracts from a matched series
// each evaluation.
type Source int

const (
	// SourceValue is the series value itself (gauge or counter total).
	SourceValue Source = iota
	// SourceDelta is the change since the previous evaluation — the
	// rate-of-change predicate, in units per round. The first
	// evaluation of a series records a baseline and never breaches.
	SourceDelta
	// SourceDipFromMax is the dip depth: the running maximum of the
	// series minus the current value. A series at its all-time high
	// reads 0; the §2.3 "SNR dip ≥ 3 dB" rule is OpAbove/Threshold 3
	// on this source.
	SourceDipFromMax
	// SourceHistP99 is the 99th-percentile estimate from a histogram
	// series' cumulative buckets (the upper bound of the bucket
	// containing the p99 rank; +Inf when the rank falls past the last
	// finite bucket). Non-histogram series never match.
	SourceHistP99
	// SourceBurnRate is the multi-window SLO burn rate evaluated
	// against the metrics-history store: the fraction of retained
	// samples violating the rule's SLO within each window, divided by
	// the error Budget, taking the minimum of the short and long
	// windows (both must burn — the standard guard against paging on a
	// single bad round that the long window would forgive, and against
	// a long-decayed incident the short window shows has ended).
	// Requires a history sink (Registry.SetHistory); without one the
	// rule never evaluates.
	SourceBurnRate
)

// String names the source for trace attributes.
func (s Source) String() string {
	switch s {
	case SourceValue:
		return "value"
	case SourceDelta:
		return "delta"
	case SourceDipFromMax:
		return "dip_from_max"
	case SourceHistP99:
		return "hist_p99"
	case SourceBurnRate:
		return "burn_rate"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Severity grades a rule.
type Severity string

const (
	SeverityWarning  Severity = "warning"
	SeverityCritical Severity = "critical"
)

// Rule is one alerting predicate over one metric family. Every series
// of the family is tracked independently (a per-policy gauge yields
// per-policy alert instances carrying that series' labels).
type Rule struct {
	// Name identifies the rule in events, metrics, and the manifest.
	Name string
	// Metric is the metric family the rule watches.
	Metric string
	// Source extracts the evaluated number from each matched series.
	Source Source
	// Op and Threshold define the breach predicate.
	Op        Op
	Threshold float64
	// Sustain is how many consecutive evaluations must breach before
	// the alert fires (default 1). The sustained-for-N predicate: a
	// one-round blip on a Sustain-3 rule never pages.
	Sustain int
	// Severity defaults to warning.
	Severity Severity
	// Help documents what an operator should do with the alert.
	Help string

	// The remaining fields apply to SourceBurnRate rules only. SLO and
	// SLOOp define what makes one sample "bad" (e.g. OpBelow 12.45 dB:
	// the §2.3 availability objective of never dipping ≥3 dB under the
	// engineered baseline); ShortWindow/LongWindow are the two
	// simulation-time windows; Budget is the tolerated bad fraction
	// (the error budget — burn rate 1 means "exactly on budget").
	// Op/Threshold then compare the min of the two windows' burn
	// rates, conventionally OpAbove with a threshold of a few ×.
	SLO         float64
	SLOOp       Op
	ShortWindow time.Duration
	LongWindow  time.Duration
	Budget      float64
}

// normalized fills defaults.
func (r Rule) normalized() Rule {
	if r.Sustain <= 0 {
		r.Sustain = 1
	}
	if r.Severity == "" {
		r.Severity = SeverityWarning
	}
	if r.Budget <= 0 {
		r.Budget = 1
	}
	return r
}

// seriesState tracks one (rule, series) pair across evaluations.
type seriesState struct {
	labels    []obs.Label
	series    string // rendered label set, the stable identity
	prev      float64
	hasPrev   bool
	max       float64
	hasMax    bool
	hist      obs.HistorySeries // lazily resolved for burn-rate rules
	histOK    bool
	breach    int
	firing    bool
	fires     int
	resolves  int
	firstFire time.Duration
	lastFire  time.Duration
}

// Engine evaluates a rule set against an Obs bundle's registry. Create
// one per simulation run (state is cumulative across rounds).
type Engine struct {
	o     *obs.Obs
	rules []Rule
	state []map[string]*seriesState // parallel to rules, keyed by rendered series
}

// NewEngine builds an engine emitting into o's sinks. A nil bundle or
// disabled metrics registry yields a nil engine (every method no-ops),
// so callers wire alerting unconditionally.
func NewEngine(o *obs.Obs, rules ...Rule) *Engine {
	if o == nil || o.Metrics == nil || len(rules) == 0 {
		return nil
	}
	e := &Engine{o: o, rules: make([]Rule, len(rules)), state: make([]map[string]*seriesState, len(rules))}
	for i, r := range rules {
		e.rules[i] = r.normalized()
		e.state[i] = make(map[string]*seriesState)
	}
	return e
}

// EvalRound runs every rule against the current registry snapshot.
// Call it once per simulation round, after the round's metrics are
// recorded and after SetSimTime, so fire/resolve events carry the
// round's simulation timestamp.
func (e *Engine) EvalRound(round int) {
	if e == nil {
		return
	}
	snaps := e.o.Metrics.Snapshot()
	for i := range e.rules {
		e.evalRule(i, round, snaps)
	}
}

func (e *Engine) evalRule(idx, round int, snaps []obs.SeriesSnapshot) {
	rule := e.rules[idx]
	for _, snap := range snaps { // snapshot order is sorted → deterministic
		if snap.Name != rule.Metric {
			continue
		}
		isHist := snap.Type == "histogram"
		if (rule.Source == SourceHistP99) != isHist {
			continue
		}
		key := renderLabels(snap.Labels)
		st, ok := e.state[idx][key]
		if !ok {
			st = &seriesState{labels: snap.Labels, series: key}
			e.state[idx][key] = st
		}
		var value float64
		if rule.Source == SourceBurnRate {
			value, ok = e.burnRate(rule, snap, st)
		} else {
			value, ok = extract(rule.Source, snap, st)
		}
		if !ok {
			continue
		}
		breach := (rule.Op == OpAbove && value >= rule.Threshold) ||
			(rule.Op == OpBelow && value <= rule.Threshold)
		if breach {
			st.breach++
		} else {
			st.breach = 0
		}
		switch {
		case !st.firing && st.breach >= rule.Sustain:
			st.firing = true
			st.fires++
			now := e.now()
			if st.fires == 1 {
				st.firstFire = now
			}
			st.lastFire = now
			e.o.Counter("alerts_fired_total", "Alert fire transitions, by rule.",
				obs.L("rule", rule.Name)).Inc()
			e.o.Gauge("alerts_active", "Alerts currently firing, by rule.",
				obs.L("rule", rule.Name)).Add(1)
			e.o.Event("alert.fire", e.eventAttrs(rule, st, value, round)...)
		case st.firing && !breach:
			st.firing = false
			st.resolves++
			e.o.Counter("alerts_resolved_total", "Alert resolve transitions, by rule.",
				obs.L("rule", rule.Name)).Inc()
			e.o.Gauge("alerts_active", "Alerts currently firing, by rule.",
				obs.L("rule", rule.Name)).Add(-1)
			e.o.Event("alert.resolve", e.eventAttrs(rule, st, value, round)...)
		}
	}
}

// extract computes the rule source value for one series, updating the
// series state (prev, running max). The bool is false when there is
// nothing to evaluate yet (first delta sample, empty histogram).
func extract(src Source, snap obs.SeriesSnapshot, st *seriesState) (float64, bool) {
	switch src {
	case SourceValue:
		return snap.Value, true
	case SourceDelta:
		v := snap.Value
		defer func() { st.prev, st.hasPrev = v, true }()
		if !st.hasPrev {
			return 0, false
		}
		return v - st.prev, true
	case SourceDipFromMax:
		if !st.hasMax || snap.Value > st.max {
			st.max, st.hasMax = snap.Value, true
		}
		return st.max - snap.Value, true
	case SourceHistP99:
		return histQuantile(snap, 0.99)
	default:
		return 0, false
	}
}

// burnRate evaluates a SourceBurnRate rule for one series: the min of
// the short- and long-window burn rates against the rule's SLO,
// reading the series' retained history. False (skip) when no history
// sink is attached or either window holds no samples yet — a burn-rate
// rule never breaches before both windows have data.
func (e *Engine) burnRate(rule Rule, snap obs.SeriesSnapshot, st *seriesState) (float64, bool) {
	if !st.histOK {
		// Resolve the series' history handle once. The engine's
		// registry and its history shard belong to the same fan-out
		// child, so the handle sees exactly this run's samples.
		if sink := e.o.Metrics.History(); sink != nil {
			st.hist = sink.Series(snap.Name, snap.Labels, snap.Type)
		}
		st.histOK = true
	}
	if st.hist == nil {
		return 0, false
	}
	now := e.now()
	short, ok := windowBurn(st.hist, rule, now, rule.ShortWindow)
	if !ok {
		return 0, false
	}
	long, ok := windowBurn(st.hist, rule, now, rule.LongWindow)
	if !ok {
		return 0, false
	}
	return math.Min(short, long), true
}

// windowBurn is one window's burn rate: the fraction of samples in
// (now-w, now] violating the SLO, divided by the error budget.
func windowBurn(h obs.HistorySeries, rule Rule, now, w time.Duration) (float64, bool) {
	samples := h.Window(now-w, now)
	if len(samples) == 0 {
		return 0, false
	}
	bad := 0
	for _, s := range samples {
		if (rule.SLOOp == OpAbove && s.V >= rule.SLO) ||
			(rule.SLOOp == OpBelow && s.V <= rule.SLO) {
			bad++
		}
	}
	return float64(bad) / float64(len(samples)) / rule.Budget, true
}

// histQuantile estimates a quantile from a snapshot's per-bucket
// counts: the upper bound of the bucket holding the quantile rank,
// +Inf past the last finite bucket. Deterministic and monotone — good
// enough for thresholding, exactly like PromQL's histogram_quantile
// bucket-bound semantics.
func histQuantile(snap obs.SeriesSnapshot, q float64) (float64, bool) {
	if snap.Count == 0 {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(snap.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range snap.Buckets {
		cum += c
		if cum >= rank {
			return snap.Upper[i], true
		}
	}
	return math.Inf(1), true
}

// now reads the simulation clock (0 when absent).
func (e *Engine) now() time.Duration {
	if e.o == nil {
		return 0
	}
	return e.o.Clock.Now()
}

// eventAttrs builds the fire/resolve event annotation set.
func (e *Engine) eventAttrs(rule Rule, st *seriesState, value float64, round int) []obs.Attr {
	attrs := []obs.Attr{
		obs.A("rule", rule.Name),
		obs.A("severity", string(rule.Severity)),
		obs.A("metric", rule.Metric),
		obs.A("series", st.series),
		obs.A("source", rule.Source.String()),
		obs.A("value", value),
		obs.A("op", rule.Op.String()),
		obs.A("threshold", rule.Threshold),
		obs.A("round", round),
	}
	if rule.Source == SourceBurnRate {
		attrs = append(attrs,
			obs.A("slo", rule.SLO),
			obs.A("slo_op", rule.SLOOp.String()),
			obs.A("short_window_ns", rule.ShortWindow.Nanoseconds()),
			obs.A("long_window_ns", rule.LongWindow.Nanoseconds()),
			obs.A("budget", rule.Budget),
		)
	}
	return attrs
}

// Active returns the (rule, series) pairs currently firing, sorted by
// rule name then series.
func (e *Engine) Active() []obs.AlertRecord {
	if e == nil {
		return nil
	}
	var out []obs.AlertRecord
	e.eachState(func(rule Rule, st *seriesState) {
		if st.firing {
			out = append(out, e.record(rule, st))
		}
	})
	return out
}

// Summary returns every (rule, series) pair that fired at least once,
// sorted by rule name then series — the end-of-run alert summary.
func (e *Engine) Summary() []obs.AlertRecord {
	if e == nil {
		return nil
	}
	var out []obs.AlertRecord
	e.eachState(func(rule Rule, st *seriesState) {
		if st.fires > 0 {
			out = append(out, e.record(rule, st))
		}
	})
	return out
}

// Finish writes the summary into the manifest and logs still-active
// alerts. Call once at the end of the run (per policy child when
// fanning out; manifests merge in task order).
func (e *Engine) Finish() {
	if e == nil {
		return
	}
	for _, rec := range e.Summary() {
		e.o.Manifest.AddAlert(rec)
		if rec.ActiveAtEnd {
			e.o.Logger().Warn("alert still active at end of run",
				"rule", rec.Rule, "series", rec.Series, "severity", rec.Severity)
		}
	}
}

func (e *Engine) record(rule Rule, st *seriesState) obs.AlertRecord {
	return obs.AlertRecord{
		Rule:        rule.Name,
		Series:      st.series,
		Severity:    string(rule.Severity),
		Fires:       st.fires,
		Resolves:    st.resolves,
		FirstFireNs: st.firstFire.Nanoseconds(),
		LastFireNs:  st.lastFire.Nanoseconds(),
		ActiveAtEnd: st.firing,
	}
}

// eachState visits every tracked series in (rule order, sorted series)
// order.
func (e *Engine) eachState(f func(Rule, *seriesState)) {
	for i, rule := range e.rules {
		keys := make([]string, 0, len(e.state[i]))
		for k := range e.state[i] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f(rule, e.state[i][k])
		}
	}
}

// renderLabels renders a sorted k="v" list as the series identity in
// events and manifest records.
func renderLabels(labels []obs.Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]obs.Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}
