package alert

// Sustain-boundary edges and the windowed burn-rate source: the
// sustain counter reaching N exactly on the final round, oscillation
// around a threshold resolving without refiring, and the multi-window
// AND semantics (a short-window burn alone never pages).

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/hist"
)

// histObs builds an Obs with a history store attached to its registry,
// the -hist-out wiring in miniature.
func histObs(t *testing.T) (*obs.Obs, *hist.Store) {
	t.Helper()
	o := obs.New("test")
	st := hist.New(hist.Options{Tool: "test"})
	o.Metrics.SetHistory(st.Root().Bind(o.Clock))
	return o, st
}

// sloRule is the capacity_below_slo shape with test-friendly numbers:
// a sample is bad below 12.45 dB; burn = bad fraction / 0.1 budget;
// fire when min(12h, 48h) burn ≥ 2 at the 6h round cadence.
func sloRule() Rule {
	return Rule{
		Name:        "capacity_below_slo",
		Metric:      "snr_db",
		Source:      SourceBurnRate,
		SLO:         12.45,
		SLOOp:       OpBelow,
		ShortWindow: 12 * time.Hour,
		LongWindow:  48 * time.Hour,
		Budget:      0.1,
		Op:          OpAbove,
		Threshold:   2,
		Severity:    SeverityCritical,
	}
}

// runRounds drives one gauge through values[r] at round r (6h cadence)
// exactly like the simulation round loop: sim time first, then the
// observation, then evaluation.
func runRounds(o *obs.Obs, e *Engine, g *obs.Gauge, values []float64) {
	const interval = 6 * time.Hour
	for r, v := range values {
		o.SetSimTime(time.Duration(r) * interval)
		g.Set(v)
		e.EvalRound(r)
	}
}

func TestSustainReachedExactlyOnFinalRound(t *testing.T) {
	o := obs.New("test")
	g := o.Gauge("util", "")
	e := NewEngine(o, Rule{Name: "hot", Metric: "util", Source: SourceValue, Op: OpAbove, Threshold: 0.9, Sustain: 3})

	// Rounds 1-3 healthy, rounds 4-6 breach; round 6 is the final
	// evaluation, so the sustain counter hits 3 exactly as the run ends.
	runRounds(o, e, g, []float64{0, 0.5, 0.5, 0.5, 0.95, 0.96, 0.97})

	fires := eventsNamed(o, "alert.fire")
	if len(fires) != 1 {
		t.Fatalf("got %d fires, want 1", len(fires))
	}
	if fires[0].T != 6*6*time.Hour {
		t.Fatalf("fire stamped at %v, want final round 36h", fires[0].T)
	}
	if resolves := eventsNamed(o, "alert.resolve"); len(resolves) != 0 {
		t.Fatalf("got %d resolves, want 0", len(resolves))
	}
	sum := e.Summary()
	if len(sum) != 1 || !sum[0].ActiveAtEnd {
		t.Fatalf("summary = %+v, want one record active at end", sum)
	}
}

func TestOscillationResolvesWithoutRefire(t *testing.T) {
	o := obs.New("test")
	g := o.Gauge("util", "")
	e := NewEngine(o, Rule{Name: "hot", Metric: "util", Source: SourceValue, Op: OpAbove, Threshold: 0.9, Sustain: 2})

	// Two sustained breaches fire at round 2; from round 3 on the value
	// oscillates around the threshold, so the first dip below resolves
	// and no later single-round breach re-reaches Sustain 2.
	runRounds(o, e, g, []float64{0, 0.95, 0.96, 0.5, 0.95, 0.5, 0.95, 0.5})

	fires := eventsNamed(o, "alert.fire")
	resolves := eventsNamed(o, "alert.resolve")
	if len(fires) != 1 || len(resolves) != 1 {
		t.Fatalf("got %d fires + %d resolves, want 1 + 1", len(fires), len(resolves))
	}
	if fires[0].T != 2*6*time.Hour || resolves[0].T != 3*6*time.Hour {
		t.Fatalf("fire/resolve at %v/%v, want 12h/18h", fires[0].T, resolves[0].T)
	}
	sum := e.Summary()
	if len(sum) != 1 || sum[0].Fires != 1 || sum[0].Resolves != 1 || sum[0].ActiveAtEnd {
		t.Fatalf("summary = %+v, want exactly one fire/resolve, inactive", sum)
	}
}

func TestBurnRateShortWindowAloneDoesNotFire(t *testing.T) {
	o, _ := histObs(t)
	g := o.Gauge("snr_db", "")
	e := NewEngine(o, sloRule())

	// One bad round (round 8) with the long window fully populated:
	// short burn = (1/2)/0.1 = 5 ≥ 2, but long burn = (1/8)/0.1 =
	// 1.25 < 2 — both windows must burn, so the alert never fires.
	values := make([]float64, 12)
	for i := range values {
		values[i] = 15
	}
	values[8] = 11
	runRounds(o, e, g, values)

	if fires := eventsNamed(o, "alert.fire"); len(fires) != 0 {
		t.Fatalf("got %d fires, want 0 (single bad round must not page)", len(fires))
	}
	if sum := e.Summary(); len(sum) != 0 {
		t.Fatalf("summary = %+v, want empty", sum)
	}
}

func TestBurnRateFiresAndResolvesOnSustainedDip(t *testing.T) {
	o, _ := histObs(t)
	g := o.Gauge("snr_db", "")
	e := NewEngine(o, sloRule())

	// A §2.3-length event: rounds 8 and 9 bad. At round 8 the long
	// window reads 1.25× budget (no fire); at round 9 short = 10×,
	// long = 2.5× → fires; at round 11 the short window has drained
	// (rounds 10, 11 healthy) → resolves. All deterministic sim times.
	values := make([]float64, 14)
	for i := range values {
		values[i] = 15
	}
	values[8], values[9] = 11, 11
	runRounds(o, e, g, values)

	fires := eventsNamed(o, "alert.fire")
	resolves := eventsNamed(o, "alert.resolve")
	if len(fires) != 1 || len(resolves) != 1 {
		t.Fatalf("got %d fires + %d resolves, want 1 + 1", len(fires), len(resolves))
	}
	if fires[0].T != 9*6*time.Hour {
		t.Fatalf("fire stamped at %v, want 54h (one round after onset)", fires[0].T)
	}
	if resolves[0].T != 11*6*time.Hour {
		t.Fatalf("resolve stamped at %v, want 66h (short window drained)", resolves[0].T)
	}
	// Burn-specific attributes ride on the event.
	attrs := map[string]any{}
	for _, a := range fires[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["source"] != "burn_rate" || attrs["slo"] != 12.45 || attrs["budget"] != 0.1 {
		t.Fatalf("fire attrs = %v, want burn_rate/slo/budget", attrs)
	}
}

func TestBurnRateWithoutHistorySinkNeverEvaluates(t *testing.T) {
	o := obs.New("test") // no SetHistory
	g := o.Gauge("snr_db", "")
	e := NewEngine(o, sloRule())
	values := []float64{11, 11, 11, 11, 11, 11}
	runRounds(o, e, g, values)
	if fires := eventsNamed(o, "alert.fire"); len(fires) != 0 {
		t.Fatalf("got %d fires, want 0 without a history sink", len(fires))
	}
}
