package alert

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// evalAt advances sim time to round × interval and evaluates, the same
// call pattern the simulation round loop uses.
func evalAt(o *obs.Obs, e *Engine, round int, interval time.Duration) {
	o.SetSimTime(time.Duration(round) * interval)
	e.EvalRound(round)
}

func eventsNamed(o *obs.Obs, name string) []obs.Event {
	var out []obs.Event
	for _, ev := range o.Trace.Events() {
		if ev.Name == name {
			out = append(out, ev)
		}
	}
	return out
}

func TestNilEngineIsSafe(t *testing.T) {
	var e *Engine
	e.EvalRound(1)
	e.Finish()
	if e.Active() != nil || e.Summary() != nil {
		t.Fatal("nil engine must report nothing")
	}
	if NewEngine(nil, Rule{Name: "r", Metric: "m"}) != nil {
		t.Fatal("nil obs must yield nil engine")
	}
	if NewEngine(&obs.Obs{}, Rule{Name: "r", Metric: "m"}) != nil {
		t.Fatal("obs without metrics must yield nil engine")
	}
	if NewEngine(obs.New("t")) != nil {
		t.Fatal("empty rule set must yield nil engine")
	}
}

func TestValueRuleFiresAndResolves(t *testing.T) {
	o := obs.New("test")
	g := o.Gauge("util", "link utilization")
	e := NewEngine(o, Rule{Name: "hot", Metric: "util", Source: SourceValue, Op: OpAbove, Threshold: 0.9})

	const round = time.Hour
	g.Set(0.5)
	evalAt(o, e, 1, round)
	g.Set(0.95)
	evalAt(o, e, 2, round)
	g.Set(0.97)
	evalAt(o, e, 3, round) // still breaching: no second fire
	g.Set(0.4)
	evalAt(o, e, 4, round)

	fires := eventsNamed(o, "alert.fire")
	resolves := eventsNamed(o, "alert.resolve")
	if len(fires) != 1 || len(resolves) != 1 {
		t.Fatalf("want 1 fire + 1 resolve, got %d + %d", len(fires), len(resolves))
	}
	if got := fires[0].T; got != 2*round {
		t.Fatalf("fire stamped at %v, want %v", got, 2*round)
	}
	if got := resolves[0].T; got != 4*round {
		t.Fatalf("resolve stamped at %v, want %v", got, 4*round)
	}
	totals := o.Metrics.Totals()
	if totals[`alerts_fired_total{rule="hot"}`] != 1 {
		t.Fatalf("alerts_fired_total = %v", totals[`alerts_fired_total{rule="hot"}`])
	}
	if totals[`alerts_resolved_total{rule="hot"}`] != 1 {
		t.Fatalf("alerts_resolved_total = %v", totals[`alerts_resolved_total{rule="hot"}`])
	}
	if totals[`alerts_active{rule="hot"}`] != 0 {
		t.Fatalf("alerts_active = %v after resolve", totals[`alerts_active{rule="hot"}`])
	}
}

func TestSustainSuppressesBlips(t *testing.T) {
	o := obs.New("test")
	g := o.Gauge("v", "v")
	e := NewEngine(o, Rule{Name: "sustained", Metric: "v", Op: OpAbove, Threshold: 10, Sustain: 3})

	// One- and two-round blips never page.
	for round, v := range []float64{20, 1, 20, 20, 1} {
		g.Set(v)
		evalAt(o, e, round+1, time.Hour)
	}
	if n := len(eventsNamed(o, "alert.fire")); n != 0 {
		t.Fatalf("blips under sustain fired %d times", n)
	}
	// Third consecutive breach fires.
	for round := 6; round <= 8; round++ {
		g.Set(20)
		evalAt(o, e, round, time.Hour)
	}
	fires := eventsNamed(o, "alert.fire")
	if len(fires) != 1 {
		t.Fatalf("want exactly 1 fire, got %d", len(fires))
	}
	if fires[0].T != 8*time.Hour {
		t.Fatalf("fire at %v, want %v (third consecutive breach)", fires[0].T, 8*time.Hour)
	}
}

func TestDeltaRuleSkipsBaseline(t *testing.T) {
	o := obs.New("test")
	c := o.Counter("changes_total", "c")
	e := NewEngine(o, Rule{Name: "churn", Metric: "changes_total", Source: SourceDelta, Op: OpAbove, Threshold: 5})

	// First observation is the baseline: a huge initial total must not fire.
	c.Add(1000)
	evalAt(o, e, 1, time.Hour)
	if len(eventsNamed(o, "alert.fire")) != 0 {
		t.Fatal("baseline evaluation fired")
	}
	c.Add(3) // delta 3 < 5
	evalAt(o, e, 2, time.Hour)
	c.Add(7) // delta 7 >= 5
	evalAt(o, e, 3, time.Hour)
	fires := eventsNamed(o, "alert.fire")
	if len(fires) != 1 || fires[0].T != 3*time.Hour {
		t.Fatalf("delta rule: fires=%v", fires)
	}
}

func TestSNRDipRuleFiresOnceWithDeterministicStamp(t *testing.T) {
	// The §2.3 scenario: SNR sits at 18 dB, dips to 14 dB for one
	// round (a 4 dB dip ≥ the 3 dB threshold), recovers. Exactly one
	// fire, stamped with the dip round's simulation time.
	o := obs.New("test")
	g := o.Gauge("wan_snr_min_db", "min snr", obs.L("policy", "dynamic"))
	rules := DefaultWANRules()
	e := NewEngine(o, rules...)

	const interval = 15 * time.Minute
	profile := []float64{18, 18, 18, 14, 18, 18}
	for i, snr := range profile {
		g.Set(snr)
		evalAt(o, e, i+1, interval)
	}
	fires := eventsNamed(o, "alert.fire")
	if len(fires) != 1 {
		t.Fatalf("want exactly one snr_dip fire, got %d: %+v", len(fires), fires)
	}
	if want := 4 * interval; fires[0].T != want {
		t.Fatalf("dip fire stamped %v, want %v", fires[0].T, want)
	}
	attrs := map[string]any{}
	for _, a := range fires[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["rule"] != "snr_dip" || attrs["severity"] != string(SeverityCritical) {
		t.Fatalf("unexpected fire attrs: %v", attrs)
	}
	if attrs["value"] != 4.0 {
		t.Fatalf("dip depth attr = %v, want 4", attrs["value"])
	}
	resolves := eventsNamed(o, "alert.resolve")
	if len(resolves) != 1 || resolves[0].T != 5*interval {
		t.Fatalf("dip must resolve on recovery round: %+v", resolves)
	}
}

func TestDipBelowThresholdStaysQuiet(t *testing.T) {
	o := obs.New("test")
	g := o.Gauge("wan_snr_min_db", "min snr")
	e := NewEngine(o, DefaultWANRules()...)
	for i, snr := range []float64{18, 17, 16.5, 15.1, 18} { // max dip 2.9 dB < 3
		g.Set(snr)
		evalAt(o, e, i+1, time.Hour)
	}
	if n := len(eventsNamed(o, "alert.fire")); n != 0 {
		t.Fatalf("sub-threshold dip fired %d times", n)
	}
}

func TestHistP99Rule(t *testing.T) {
	o := obs.New("test")
	h := o.Histogram("work", "w", []float64{10, 100, 1000})
	e := NewEngine(o, Rule{Name: "slow", Metric: "work", Source: SourceHistP99, Op: OpAbove, Threshold: 500})

	// 100 observations in the ≤10 bucket: p99 = 10, quiet.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	evalAt(o, e, 1, time.Hour)
	if len(eventsNamed(o, "alert.fire")) != 0 {
		t.Fatal("p99=10 must not breach threshold 500")
	}
	// Push >1% of mass past the last finite bucket: p99 → +Inf, fires.
	for i := 0; i < 5; i++ {
		h.Observe(5000)
	}
	evalAt(o, e, 2, time.Hour)
	fires := eventsNamed(o, "alert.fire")
	if len(fires) != 1 {
		t.Fatalf("want 1 fire, got %d", len(fires))
	}
	for _, a := range fires[0].Attrs {
		if a.Key == "value" {
			if v, ok := a.Value.(float64); !ok || !math.IsInf(v, 1) {
				t.Fatalf("p99 past last bucket should be +Inf, got %v", a.Value)
			}
		}
	}
}

func TestHistQuantileBucketWalk(t *testing.T) {
	snap := obs.SeriesSnapshot{
		Type:    "histogram",
		Count:   100,
		Upper:   []float64{10, 100, 1000},
		Buckets: []uint64{50, 40, 9}, // 1 observation beyond 1000
	}
	// rank = ceil(0.99*100) = 99 → cumulative 50,90,99 → bucket 1000.
	if v, ok := histQuantile(snap, 0.99); !ok || v != 1000 {
		t.Fatalf("p99 = %v, %v; want 1000", v, ok)
	}
	// p50: rank 50 → first bucket.
	if v, ok := histQuantile(snap, 0.50); !ok || v != 10 {
		t.Fatalf("p50 = %v, %v; want 10", v, ok)
	}
	// Rank past every finite bucket → +Inf.
	snap.Buckets = []uint64{50, 40, 0}
	if v, ok := histQuantile(snap, 0.99); !ok || !math.IsInf(v, 1) {
		t.Fatalf("p99 with tail mass = %v, %v; want +Inf", v, ok)
	}
	if _, ok := histQuantile(obs.SeriesSnapshot{Type: "histogram"}, 0.99); ok {
		t.Fatal("empty histogram must not evaluate")
	}
}

func TestPerSeriesIndependence(t *testing.T) {
	o := obs.New("test")
	a := o.Gauge("v", "v", obs.L("link", "a"))
	b := o.Gauge("v", "v", obs.L("link", "b"))
	e := NewEngine(o, Rule{Name: "r", Metric: "v", Op: OpAbove, Threshold: 10})

	a.Set(20)
	b.Set(1)
	evalAt(o, e, 1, time.Hour)
	fires := eventsNamed(o, "alert.fire")
	if len(fires) != 1 {
		t.Fatalf("want 1 fire (link a only), got %d", len(fires))
	}
	var series string
	for _, at := range fires[0].Attrs {
		if at.Key == "series" {
			series = at.Value.(string)
		}
	}
	if series != `link="a"` {
		t.Fatalf("fire attributed to series %q, want link=\"a\"", series)
	}
	active := e.Active()
	if len(active) != 1 || active[0].Series != `link="a"` {
		t.Fatalf("active = %+v", active)
	}
}

func TestFinishWritesManifestSummary(t *testing.T) {
	o := obs.New("test")
	g := o.Gauge("v", "v")
	e := NewEngine(o, Rule{Name: "r", Metric: "v", Op: OpAbove, Threshold: 10, Severity: SeverityCritical})

	const round = 30 * time.Minute
	for i, v := range []float64{20, 1, 20, 20} { // fire, resolve, fire (still active)
		g.Set(v)
		evalAt(o, e, i+1, round)
	}
	e.Finish()

	alerts := o.Manifest.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("want 1 manifest alert record, got %d", len(alerts))
	}
	rec := alerts[0]
	want := obs.AlertRecord{
		Rule:        "r",
		Severity:    string(SeverityCritical),
		Fires:       2,
		Resolves:    1,
		FirstFireNs: (1 * round).Nanoseconds(),
		LastFireNs:  (3 * round).Nanoseconds(),
		ActiveAtEnd: true,
	}
	if !reflect.DeepEqual(rec, want) {
		t.Fatalf("manifest record = %+v, want %+v", rec, want)
	}
}

func TestEngineIsDeterministic(t *testing.T) {
	run := func() []byte {
		o := obs.New("test")
		ga := o.Gauge("wan_snr_min_db", "s", obs.L("link", "a"))
		gb := o.Gauge("wan_snr_min_db", "s", obs.L("link", "b"))
		flap := o.Gauge("wan_flap_rate", "f")
		e := NewEngine(o, DefaultWANRules()...)
		const interval = 15 * time.Minute
		for r := 1; r <= 12; r++ {
			ga.Set(18 - 5*float64(r%3))
			gb.Set(20 - float64(r%2))
			flap.Set(float64(r%4) / 4)
			evalAt(o, e, r, interval)
		}
		e.Finish()
		var buf bytes.Buffer
		if err := o.Trace.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		for _, rec := range o.Manifest.Alerts() {
			buf.WriteString(rec.Rule)
			buf.WriteString(rec.Series)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("two identical runs produced different alert streams")
	}
}

func TestDefaultWANRulesShape(t *testing.T) {
	rules := DefaultWANRules()
	byName := map[string]Rule{}
	for _, r := range rules {
		byName[r.Name] = r
	}
	dip, ok := byName["snr_dip"]
	if !ok || dip.Metric != "wan_snr_min_db" || dip.Source != SourceDipFromMax ||
		dip.Threshold != 3 || dip.Severity != SeverityCritical {
		t.Fatalf("snr_dip rule malformed: %+v", dip)
	}
	flap, ok := byName["capacity_flap_rate"]
	if !ok || flap.Metric != "wan_flap_rate" || flap.Source != SourceValue || flap.Sustain < 2 {
		t.Fatalf("capacity_flap_rate rule malformed: %+v", flap)
	}
	work, ok := byName["te_solver_work_p99"]
	if !ok || work.Metric != "wan_te_solve_work" || work.Source != SourceHistP99 {
		t.Fatalf("te_solver_work_p99 rule malformed: %+v", work)
	}
}
