// Package obs is the zero-dependency observability layer for the
// reproduction: a deterministic metrics registry (counters, gauges,
// fixed-bucket histograms with stable snapshot ordering, exposable as
// Prometheus text format and JSON), a span/event tracer keyed to
// *simulation* time, and a run manifest recording what a run was and
// what it cost.
//
// Design constraints, in order:
//
//   - Disabled must be free. Every sink is reached through nil-safe
//     methods; a nil *Obs (the default everywhere) turns the entire
//     layer into a handful of nil checks, so instrumented packages
//     never guard their own call sites and hot solver loops pay
//     nothing (guarded by BenchmarkDisabled* in this package).
//   - Determinism. Instrumented packages are simulation code subject
//     to rwc-lint's nowalltime rule, so this package never reads the
//     wall clock: trace timestamps come from an injected Clock
//     (typically a SimClock advanced by the simulation itself), and
//     wall durations for manifests come from a Clock the cmd/ layer
//     injects (cmd/ is exempt from nowalltime). Two runs with the same
//     seed produce byte-identical metrics and trace output.
//   - No dependencies beyond the stdlib.
package obs

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/obs/olog"
)

// Clock supplies timestamps as offsets from an implementation-defined
// epoch. Simulation packages must only ever see clocks derived from
// simulation state; cmd/ may inject wall-backed clocks for manifest
// durations.
type Clock interface {
	Now() time.Duration
}

// ClockFunc adapts a function to the Clock interface. The cmd/ layer
// uses it to inject a wall clock without this package importing one:
//
//	start := time.Now()
//	wall := obs.ClockFunc(func() time.Duration { return time.Since(start) })
type ClockFunc func() time.Duration

// Now implements Clock.
func (f ClockFunc) Now() time.Duration { return f() }

// SimClock is a manually advanced simulation clock: the simulation
// sets it to "round × interval" (or any other state-derived offset)
// and every trace event is stamped with that value. The zero value
// reads as t=0.
type SimClock struct {
	mu sync.Mutex
	t  time.Duration
}

// NewSimClock returns a clock at t=0.
func NewSimClock() *SimClock { return &SimClock{} }

// Set moves the clock to the given simulation offset.
func (c *SimClock) Set(t time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// Now implements Clock.
func (c *SimClock) Now() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Obs bundles the sinks threaded through the stack. A nil *Obs (or any
// nil field) disables the corresponding sink; every method below is
// safe on a nil receiver, so instrumented code calls unconditionally.
type Obs struct {
	// Metrics receives counters/gauges/histograms.
	Metrics *Registry
	// Trace receives spans and events, stamped with Clock time.
	Trace *Tracer
	// Manifest accumulates the run record (phases, options).
	Manifest *Manifest
	// Clock is the simulation clock the instrumented packages advance
	// (wan.Run sets it to round × interval each round).
	Clock *SimClock
	// Wall measures real elapsed time for manifest phase durations.
	// It is injected by cmd/ (never constructed in simulation code) and
	// nil in deterministic tests.
	Wall Clock
	// Log is the structured progress logger (stderr by default, wired
	// by cmd/). Unlike the other sinks it is a live stream, not a run
	// artifact: it is exempt from the byte-identity guarantee, though
	// each line is stamped with deterministic simulation time.
	Log *olog.Logger
}

// New returns an Obs with a fresh registry, tracer, manifest, and sim
// clock, and no wall clock. Mostly a convenience for tests; cmd/
// builds the bundle field by field from its flags.
func New(tool string) *Obs {
	clock := NewSimClock()
	return &Obs{
		Metrics:  NewRegistry(),
		Trace:    NewTracer(clock),
		Manifest: NewManifest(tool),
		Clock:    clock,
	}
}

// SetSimTime advances the simulation clock (no-op when disabled).
func (o *Obs) SetSimTime(t time.Duration) {
	if o == nil {
		return
	}
	o.Clock.Set(t)
}

// Logger returns the structured logger (nil when disabled; every
// olog.Logger method is in turn nil-safe, so call sites chain
// o.Logger().Debug(...) unconditionally).
func (o *Obs) Logger() *olog.Logger {
	if o == nil {
		return nil
	}
	return o.Log
}

// Counter registers (or fetches) a counter; nil when metrics are
// disabled — all Counter methods accept a nil receiver.
func (o *Obs) Counter(name, help string, labels ...Label) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, help, labels...)
}

// Gauge registers (or fetches) a gauge; nil-safe like Counter.
func (o *Obs) Gauge(name, help string, labels ...Label) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, help, labels...)
}

// Histogram registers (or fetches) a fixed-bucket histogram; nil-safe
// like Counter.
func (o *Obs) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, help, buckets, labels...)
}

// Event records a point event on the tracer (no-op when disabled).
func (o *Obs) Event(name string, attrs ...Attr) {
	if o == nil {
		return
	}
	o.Trace.Event(name, attrs...)
}

// Span opens a tracer span and returns its end function (never nil).
func (o *Obs) Span(name string, attrs ...Attr) func() {
	if o == nil {
		return func() {}
	}
	sp := o.Trace.Begin(name, attrs...)
	return func() { sp.End() }
}

// PhaseTimer starts timing a manifest phase against the injected wall
// clock and returns the function that records it. When the manifest or
// wall clock is absent the returned function does nothing, so callers
// always `done := o.PhaseTimer(...); ...; done()` unconditionally.
func (o *Obs) PhaseTimer(name string) func() {
	if o == nil || o.Manifest == nil || o.Wall == nil {
		return func() {}
	}
	start := o.Wall.Now()
	return func() {
		o.Manifest.AddPhase(name, o.Wall.Now()-start)
	}
}

// FinishManifest copies the registry's final metric totals into the
// manifest (no-op when either side is disabled).
func (o *Obs) FinishManifest() {
	if o == nil || o.Manifest == nil || o.Metrics == nil {
		return
	}
	o.Manifest.SetMetricTotals(o.Metrics.Totals())
}

// goVersion is indirected for the manifest so tests can pin it.
func goVersion() string { return runtime.Version() }
