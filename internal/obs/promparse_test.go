package obs

import (
	"bytes"
	"strings"
	"testing"
)

// hostileValues are label values designed to break out of the quoted
// position in the exposition format.
var hostileValues = []string{
	`plain`,
	`back\slash`,
	`quo"te`,
	"new\nline",
	`"} evil_metric 666`,
	`a\"b\\c` + "\n" + `d`,
	``,
}

func TestPrometheusHostileLabelValues(t *testing.T) {
	r := NewRegistry()
	for i, v := range hostileValues {
		r.Counter("hostile_total", "Counter with hostile label values.", L("v", v)).Add(float64(i + 1))
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every non-comment line must be exactly one sample: name{...} value.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "hostile_total{") {
			t.Fatalf("hostile value smuggled a foreign line into the exposition: %q", line)
		}
	}
	if strings.Count(out, "\n") != len(hostileValues)+2 {
		t.Fatalf("expected %d lines (HELP+TYPE+%d samples), got %d:\n%s",
			len(hostileValues)+2, len(hostileValues), strings.Count(out, "\n"), out)
	}
	// Round-trip: parsing the exposition recovers every original value.
	samples, err := ParsePrometheusText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition with hostile labels does not parse: %v", err)
	}
	got := map[string]float64{}
	for _, s := range samples {
		if s.Name != "hostile_total" || len(s.Labels) != 1 || s.Labels[0].Key != "v" {
			t.Fatalf("unexpected sample %+v", s)
		}
		got[s.Labels[0].Value] = s.Value
	}
	for i, v := range hostileValues {
		if got[v] != float64(i+1) {
			t.Fatalf("value %q did not round-trip: got %v want %d (all: %v)", v, got[v], i+1, got)
		}
	}
}

func TestPrometheusHostileHelpStaysSingleLine(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "help with\nnewline and \\ backslash").Set(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("HELP must stay on one line; got %d lines:\n%s", len(lines), buf.String())
	}
	if lines[0] != `# HELP g help with\nnewline and \\ backslash` {
		t.Fatalf("HELP escaping wrong: %q", lines[0])
	}
}

func TestParsePrometheusTextRoundTripsRealRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", L("policy", "dynamic")).Add(3)
	r.Counter("c_total", "c", L("policy", "static-100G")).Add(5)
	r.Gauge("g", "g").Set(-2.5)
	h := r.Histogram("h_seconds", "h", []float64{0.1, 1, 10}, L("k", "v"))
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	totals, err := PromTotals(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`c_total{policy="dynamic"}`:         3,
		`c_total{policy="static-100G"}`:     5,
		`g`:                                 -2.5,
		`h_seconds_bucket{k="v",le="0.1"}`:  1,
		`h_seconds_bucket{k="v",le="1"}`:    2,
		`h_seconds_bucket{k="v",le="10"}`:   3,
		`h_seconds_bucket{k="v",le="+Inf"}`: 4,
		`h_seconds_sum{k="v"}`:              55.55,
		`h_seconds_count{k="v"}`:            4,
	}
	if len(totals) != len(want) {
		t.Fatalf("parsed %d series, want %d: %v", len(totals), len(want), totals)
	}
	for k, v := range want {
		got, ok := totals[k]
		if !ok {
			t.Fatalf("missing series %s in %v", k, totals)
		}
		if got != v { //nolint:nofloateq // exact decimal round-trip through shortest-form formatting
			t.Fatalf("%s = %v, want %v", k, got, v)
		}
	}
}

func TestParsePrometheusTextRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		`name_only`,
		`m{k="v" 1`,
		`m{k=unquoted} 1`,
		`m{k="unterminated} 1`,
		`m{k="bad\q"} 1`,
		`m{="v"} 1`,
		`m{k="v"} notanumber`,
	} {
		if _, err := ParsePrometheusText(strings.NewReader(in)); err == nil {
			t.Fatalf("expected parse error for %q", in)
		}
	}
}
