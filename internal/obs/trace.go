package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the span/event tracer. Events are stamped with
// *simulation* time read from the injected Clock (never the wall
// clock — instrumented packages are subject to rwc-lint's nowalltime
// rule), plus a monotonically increasing sequence number that orders
// events sharing a timestamp. The JSONL export is byte-identical
// across identical runs.

// Attr is one key/value annotation on an event. Values must be
// JSON-marshalable; the instrumentation sticks to strings, ints,
// floats, and bools.
type Attr struct {
	Key   string
	Value any
}

// A is shorthand for constructing an Attr at call sites.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Event kinds.
const (
	KindEvent = "event"
	KindBegin = "begin"
	KindEnd   = "end"
)

// Event is one trace record.
type Event struct {
	// Seq is the global order of the event within the run (1-based).
	Seq int
	// T is the simulation time when the event was recorded.
	T time.Duration
	// Kind is KindEvent for point events, KindBegin/KindEnd for spans.
	Kind string
	// Name identifies the instrumentation site (e.g. "controller.order").
	Name string
	// Span links begin/end pairs (0 for point events).
	Span int
	// Attrs annotates the event.
	Attrs []Attr
}

// Tracer records events in memory for a JSONL dump at the end of the
// run. All methods are nil-safe: a nil *Tracer is the disabled state.
type Tracer struct {
	mu       sync.Mutex
	clock    Clock
	events   []Event
	nextSpan int
	subs     []*Subscription
}

// NewTracer returns a tracer stamping events from clock (a nil clock
// stamps every event t=0, leaving ordering to sequence numbers).
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

// now reads the clock under the tracer lock.
func (t *Tracer) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock.Now()
}

// Event records a point event.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e := Event{Seq: len(t.events) + 1, T: t.now(), Kind: KindEvent, Name: name, Attrs: attrs}
	t.events = append(t.events, e)
	t.publishLocked(e)
	t.mu.Unlock()
}

// Span is a handle to an open span. End on a nil handle is a no-op.
type Span struct {
	t    *Tracer
	id   int
	name string
}

// Begin opens a span and records its begin event.
func (t *Tracer) Begin(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextSpan++
	id := t.nextSpan
	e := Event{Seq: len(t.events) + 1, T: t.now(), Kind: KindBegin, Name: name, Span: id, Attrs: attrs}
	t.events = append(t.events, e)
	t.publishLocked(e)
	t.mu.Unlock()
	return &Span{t: t, id: id, name: name}
}

// End closes the span, recording its end event with any final attrs.
func (s *Span) End(attrs ...Attr) {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	e := Event{Seq: len(s.t.events) + 1, T: s.t.now(), Kind: KindEnd, Name: s.name, Span: s.id, Attrs: attrs}
	s.t.events = append(s.t.events, e)
	s.t.publishLocked(e)
	s.t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Subscription is one live tail of a tracer's event stream (the SSE
// /traces endpoint holds one per connected client). Delivery never
// blocks the simulation: when the subscriber's buffer is full the
// incoming event is dropped for that subscriber — deterministically
// the *newest* event, so the delivered prefix is always an exact
// prefix of the recorded stream — and counted in Dropped.
type Subscription struct {
	t       *Tracer
	ch      chan Event
	dropped atomic.Uint64
	closed  bool
}

// Subscribe registers a live tail with the given channel buffer
// (minimum 1) and returns the backlog of events already recorded —
// captured atomically with the registration, so backlog + channel
// reads observe every event exactly once, in sequence order, even
// when the subscriber joins mid-run. Close the subscription when done.
// A nil tracer returns a nil backlog and nil subscription (whose
// methods are all safe).
func (t *Tracer) Subscribe(buffer int) ([]Event, *Subscription) {
	if t == nil {
		return nil, nil
	}
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscription{t: t, ch: make(chan Event, buffer)}
	t.mu.Lock()
	backlog := append([]Event(nil), t.events...)
	t.subs = append(t.subs, sub)
	t.mu.Unlock()
	return backlog, sub
}

// publishLocked fans one freshly recorded event out to the live
// subscribers. Callers hold t.mu.
func (t *Tracer) publishLocked(e Event) {
	for _, sub := range t.subs {
		select {
		case sub.ch <- e:
		default:
			// Slow consumer: drop the newest event for this subscriber
			// (drop-newest keeps the delivered stream a strict prefix +
			// gap, never a reordering) and count it.
			sub.dropped.Add(1)
		}
	}
}

// C is the live event channel (nil on a nil subscription, which
// blocks forever in a select — the idiomatic disabled state).
func (s *Subscription) C() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped returns how many events were dropped for this subscriber.
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close unregisters the subscription and closes its channel (draining
// any buffered events is still allowed after Close returns).
func (s *Subscription) Close() {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for i, sub := range s.t.subs {
		if sub == s {
			s.t.subs = append(s.t.subs[:i], s.t.subs[i+1:]...)
			break
		}
	}
	close(s.ch)
}

// eventJSON is the wire shape of one JSONL line. Attrs marshal as a
// JSON object; encoding/json sorts map keys, so output is stable.
type eventJSON struct {
	Seq   int            `json:"seq"`
	TNs   int64          `json:"t_ns"`
	Kind  string         `json:"kind"`
	Name  string         `json:"name"`
	Span  int            `json:"span,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// MarshalEvent renders one event as the canonical JSON object used by
// both the -trace-out JSONL artifact and the live SSE /traces stream.
func MarshalEvent(e Event) ([]byte, error) {
	rec := eventJSON{Seq: e.Seq, TNs: e.T.Nanoseconds(), Kind: e.Kind, Name: e.Name, Span: e.Span}
	if len(e.Attrs) > 0 {
		rec.Attrs = make(map[string]any, len(e.Attrs))
		for _, a := range e.Attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("obs: marshal trace event %d: %w", e.Seq, err)
	}
	return line, nil
}

// WriteJSONL writes one JSON object per event, in sequence order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, e := range t.Events() {
		line, err := MarshalEvent(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}
