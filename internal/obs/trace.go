package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file implements the span/event tracer. Events are stamped with
// *simulation* time read from the injected Clock (never the wall
// clock — instrumented packages are subject to rwc-lint's nowalltime
// rule), plus a monotonically increasing sequence number that orders
// events sharing a timestamp. The JSONL export is byte-identical
// across identical runs.

// Attr is one key/value annotation on an event. Values must be
// JSON-marshalable; the instrumentation sticks to strings, ints,
// floats, and bools.
type Attr struct {
	Key   string
	Value any
}

// A is shorthand for constructing an Attr at call sites.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Event kinds.
const (
	KindEvent = "event"
	KindBegin = "begin"
	KindEnd   = "end"
)

// Event is one trace record.
type Event struct {
	// Seq is the global order of the event within the run (1-based).
	Seq int
	// T is the simulation time when the event was recorded.
	T time.Duration
	// Kind is KindEvent for point events, KindBegin/KindEnd for spans.
	Kind string
	// Name identifies the instrumentation site (e.g. "controller.order").
	Name string
	// Span links begin/end pairs (0 for point events).
	Span int
	// Attrs annotates the event.
	Attrs []Attr
}

// Tracer records events in memory for a JSONL dump at the end of the
// run. All methods are nil-safe: a nil *Tracer is the disabled state.
type Tracer struct {
	mu       sync.Mutex
	clock    Clock
	events   []Event
	nextSpan int
}

// NewTracer returns a tracer stamping events from clock (a nil clock
// stamps every event t=0, leaving ordering to sequence numbers).
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

// now reads the clock under the tracer lock.
func (t *Tracer) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock.Now()
}

// Event records a point event.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Seq: len(t.events) + 1, T: t.now(), Kind: KindEvent, Name: name, Attrs: attrs,
	})
	t.mu.Unlock()
}

// Span is a handle to an open span. End on a nil handle is a no-op.
type Span struct {
	t    *Tracer
	id   int
	name string
}

// Begin opens a span and records its begin event.
func (t *Tracer) Begin(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextSpan++
	id := t.nextSpan
	t.events = append(t.events, Event{
		Seq: len(t.events) + 1, T: t.now(), Kind: KindBegin, Name: name, Span: id, Attrs: attrs,
	})
	t.mu.Unlock()
	return &Span{t: t, id: id, name: name}
}

// End closes the span, recording its end event with any final attrs.
func (s *Span) End(attrs ...Attr) {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, Event{
		Seq: len(s.t.events) + 1, T: s.t.now(), Kind: KindEnd, Name: s.name, Span: s.id, Attrs: attrs,
	})
	s.t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// eventJSON is the wire shape of one JSONL line. Attrs marshal as a
// JSON object; encoding/json sorts map keys, so output is stable.
type eventJSON struct {
	Seq   int            `json:"seq"`
	TNs   int64          `json:"t_ns"`
	Kind  string         `json:"kind"`
	Name  string         `json:"name"`
	Span  int            `json:"span,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL writes one JSON object per event, in sequence order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, e := range t.Events() {
		rec := eventJSON{Seq: e.Seq, TNs: e.T.Nanoseconds(), Kind: e.Kind, Name: e.Name, Span: e.Span}
		if len(e.Attrs) > 0 {
			rec.Attrs = make(map[string]any, len(e.Attrs))
			for _, a := range e.Attrs {
				rec.Attrs[a.Key] = a.Value
			}
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("obs: marshal trace event %d: %w", e.Seq, err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}
