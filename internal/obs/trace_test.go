package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTracerEventsAndSpans(t *testing.T) {
	clock := NewSimClock()
	tr := NewTracer(clock)
	tr.Event("boot")
	clock.Set(6 * time.Hour)
	sp := tr.Begin("round", A("round", 0))
	tr.Event("order", A("edge", 3), A("kind", "upgrade"))
	sp.End(A("changes", 2))
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events, want 4", len(evs))
	}
	if evs[0].T != 0 || evs[1].T != 6*time.Hour {
		t.Fatalf("timestamps %v %v", evs[0].T, evs[1].T)
	}
	for i, e := range evs {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if evs[1].Kind != KindBegin || evs[3].Kind != KindEnd || evs[1].Span != evs[3].Span || evs[1].Span == 0 {
		t.Fatalf("span pairing broken: %+v %+v", evs[1], evs[3])
	}
}

func TestTracerJSONLIsValidAndDeterministic(t *testing.T) {
	run := func() string {
		clock := NewSimClock()
		tr := NewTracer(clock)
		for i := 0; i < 3; i++ {
			clock.Set(time.Duration(i) * time.Minute)
			sp := tr.Begin("round", A("round", i))
			tr.Event("order", A("edge", i), A("gbps", 150.5), A("forced", i%2 == 0))
			sp.End()
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical runs produced different JSONL:\n%s---\n%s", a, b)
	}
	sc := bufio.NewScanner(bytes.NewReader([]byte(a)))
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		for _, key := range []string{"seq", "t_ns", "kind", "name"} {
			if _, ok := rec[key]; !ok {
				t.Fatalf("line %d missing %q: %s", lines, key, sc.Text())
			}
		}
	}
	if lines != 9 {
		t.Fatalf("%d JSONL lines, want 9", lines)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Event("x")
	sp := tr.Begin("y")
	sp.End()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded events")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestNilClockStampsZero(t *testing.T) {
	tr := NewTracer(nil)
	tr.Event("x")
	if evs := tr.Events(); evs[0].T != 0 {
		t.Fatalf("t = %v, want 0", evs[0].T)
	}
}
