package obs

import "math"

// This file implements canonical FNV-64a hashing for simulation state.
// The flight recorder (obs/flight) hashes every per-round record so two
// runs can be bisected to the first diverging round and link; anything
// else that needs a deterministic digest of mixed scalar state should
// use the same writer so hashes stay comparable across tools.
//
// Canonical form: every value is folded in as little-endian fixed-width
// bytes; strings are length-prefixed so "ab","c" and "a","bc" never
// collide; floats are folded as IEEE-754 bits with the two zeros
// collapsed (0 == -0 numerically, and both print as "0" in every
// exposition) and all NaN payloads collapsed to one quiet pattern.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 accumulates an FNV-64a digest over canonically encoded values.
// The zero value is not ready to use; call NewHash64.
type Hash64 struct {
	sum uint64
}

// NewHash64 returns a Hash64 seeded with the FNV-64a offset basis.
func NewHash64() *Hash64 {
	return &Hash64{sum: fnvOffset64}
}

func (h *Hash64) writeByte(b byte) {
	h.sum ^= uint64(b)
	h.sum *= fnvPrime64
}

// WriteUint64 folds v in as 8 little-endian bytes.
func (h *Hash64) WriteUint64(v uint64) {
	for i := 0; i < 8; i++ {
		h.writeByte(byte(v >> (8 * i)))
	}
}

// WriteInt folds v in as its two's-complement uint64 image.
func (h *Hash64) WriteInt(v int) {
	h.WriteUint64(uint64(int64(v)))
}

// WriteFloat64 folds f in as canonical IEEE-754 bits: -0 hashes as 0
// and every NaN hashes as one quiet NaN pattern.
func (h *Hash64) WriteFloat64(f float64) {
	if f == 0 {
		h.WriteUint64(0)
		return
	}
	if math.IsNaN(f) {
		h.WriteUint64(0x7ff8000000000001)
		return
	}
	h.WriteUint64(math.Float64bits(f))
}

// WriteBool folds b in as one byte.
func (h *Hash64) WriteBool(b bool) {
	if b {
		h.writeByte(1)
	} else {
		h.writeByte(0)
	}
}

// WriteString folds s in length-prefixed, so adjacent strings keep
// their boundaries in the digest.
func (h *Hash64) WriteString(s string) {
	h.WriteUint64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.writeByte(s[i])
	}
}

// Sum64 returns the digest so far. The writer remains usable.
func (h *Hash64) Sum64() uint64 { return h.sum }
