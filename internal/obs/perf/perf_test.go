package perf

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func findPhase(t *testing.T, rep Report, name string) PhaseReport {
	t.Helper()
	for _, p := range rep.Phases {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("phase %q missing from report (have %v)", name, rep.Phases)
	return PhaseReport{}
}

func TestPhaseAggregation(t *testing.T) {
	r := New("test")
	for _, ms := range []int64{2, 8, 4} {
		r.Observe("solve", time.Duration(ms)*time.Millisecond)
	}
	rep := r.Snapshot(nil)
	p := findPhase(t, rep, "solve")
	if p.Count != 3 || p.TotalNs != 14e6 || p.MinNs != 2e6 || p.MaxNs != 8e6 {
		t.Fatalf("aggregate = %+v", p)
	}
	// 2ms and 4ms land in the ≤6.4ms bucket, 8ms in ≤25.6ms.
	var total int64
	for i, c := range p.BucketsNs {
		total += c
		switch rep.BucketBoundsNs[i] {
		case 6_400_000:
			if c != 2 {
				t.Fatalf("≤6.4ms bucket = %d, want 2", c)
			}
		case 25_600_000:
			if c != 1 {
				t.Fatalf("≤25.6ms bucket = %d, want 1", c)
			}
		}
	}
	if total != p.Count {
		t.Fatalf("bucket sum %d != count %d", total, p.Count)
	}
	// Recent samples are oldest-first.
	want := []int64{2e6, 8e6, 4e6}
	if len(p.RecentNs) != len(want) {
		t.Fatalf("recent = %v", p.RecentNs)
	}
	for i := range want {
		if p.RecentNs[i] != want[i] {
			t.Fatalf("recent = %v, want %v", p.RecentNs, want)
		}
	}
}

func TestRecentRingWrapsOldestFirst(t *testing.T) {
	r := New("test")
	n := recentSamples + 5
	for i := 1; i <= n; i++ {
		r.Observe("ring", time.Duration(i)*time.Microsecond)
	}
	p := findPhase(t, r.Snapshot(nil), "ring")
	if p.Count != int64(n) {
		t.Fatalf("count = %d", p.Count)
	}
	if len(p.RecentNs) != recentSamples {
		t.Fatalf("ring holds %d, want %d", len(p.RecentNs), recentSamples)
	}
	// After wrapping, the ring holds samples 6..n in order.
	for i, ns := range p.RecentNs {
		if want := int64(6+i) * 1000; ns != want {
			t.Fatalf("recent[%d] = %d, want %d", i, ns, want)
		}
	}
}

func TestPhaseCloserTimes(t *testing.T) {
	r := New("test")
	end := r.Phase("timed")
	time.Sleep(time.Millisecond)
	end()
	p := findPhase(t, r.Snapshot(nil), "timed")
	if p.Count != 1 || p.TotalNs < time.Millisecond.Nanoseconds() {
		t.Fatalf("timed phase = %+v, want ≥1ms", p)
	}
}

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	r.Phase("x")() // must not panic
	r.Observe("x", time.Second)
	if err := r.StartProfiles(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := r.StopProfiles(); err != nil {
		t.Fatal(err)
	}
	rep := r.Snapshot(map[string]float64{"rwc_work_x": 1})
	if rep.Kind != ReportKind || len(rep.Phases) != 0 || rep.Work != nil {
		t.Fatalf("nil snapshot = %+v", rep)
	}
	// The disabled closer is the shared no-op, not a fresh closure.
	end1 := r.Phase("a")
	end2 := r.Phase("b")
	end1()
	end2()
}

func TestConcurrentObserve(t *testing.T) {
	r := New("test")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Observe("par", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if p := findPhase(t, r.Snapshot(nil), "par"); p.Count != 800 {
		t.Fatalf("count = %d, want 800", p.Count)
	}
}

func TestSnapshotPhasesSortedByName(t *testing.T) {
	r := New("test")
	r.Observe("zeta", time.Microsecond)
	r.Observe("alpha", time.Microsecond)
	rep := r.Snapshot(nil)
	if len(rep.Phases) != 2 || rep.Phases[0].Name != "alpha" || rep.Phases[1].Name != "zeta" {
		t.Fatalf("phases = %+v, want name-sorted", rep.Phases)
	}
}

func TestWriteJSONAndSniff(t *testing.T) {
	r := New("tool-x")
	r.Observe("solve", time.Millisecond)
	var buf bytes.Buffer
	work := map[string]float64{"rwc_work_dijkstra_pops_total": 42}
	if err := r.WriteJSON(&buf, work); err != nil {
		t.Fatal(err)
	}
	if !IsReport(buf.Bytes()) {
		t.Fatal("artifact does not sniff as a perf report")
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != ReportKind || rep.Tool != "tool-x" || rep.Work["rwc_work_dijkstra_pops_total"] != 42 {
		t.Fatalf("round-trip = %+v", rep)
	}
	if IsReport([]byte(`{"kind":"other"}`)) || IsReport([]byte("not json")) {
		t.Fatal("non-perf JSON sniffed as perf")
	}
}

func TestFilterWork(t *testing.T) {
	totals := map[string]float64{
		`rwc_work_dijkstra_pops_total{policy="dynamic"}`: 100,
		`wan_capacity_gbps{policy="dynamic"}`:            800,
		"rwc_work_solves_total":                          7,
	}
	got := FilterWork(totals)
	if len(got) != 2 || got[`rwc_work_dijkstra_pops_total{policy="dynamic"}`] != 100 || got["rwc_work_solves_total"] != 7 {
		t.Fatalf("FilterWork = %v", got)
	}
}

func TestProfilesWriteFiles(t *testing.T) {
	dir := t.TempDir()
	r := New("test")
	if err := r.StartProfiles(dir); err != nil {
		t.Fatal(err)
	}
	if err := r.StartProfiles(dir); err == nil {
		t.Fatal("second StartProfiles must fail")
	}
	if err := r.StopProfiles(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	// StopProfiles without a start is a no-op, and profiles may be
	// restarted after a stop.
	if err := r.StopProfiles(); err != nil {
		t.Fatal(err)
	}
}
