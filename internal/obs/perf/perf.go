// Package perf is the wall-clock side channel of the observability
// stack: per-phase latency capture, runtime.MemStats/GC deltas, and
// optional pprof profiles, written to a separate artifact (-perf-out)
// and served at /perfz.
//
// Everything else in this repo measures cost in deterministic work
// units (rwc_work_* counters, solve-work histograms) precisely so that
// same-seed runs are byte-identical; perf is where the wall clock is
// allowed back in, under two hard rules:
//
//  1. Segregation: a Recorder never writes into the deterministic
//     registry, trace, history, or flight artifacts. Enabling -perf-out
//     must leave every other artifact byte-identical to a plain run —
//     the same invariant the -serve flag upholds.
//  2. Containment: this is the one simulation-adjacent package allowed
//     to call time.Now (the nowalltime lint analyzer exempts exactly
//     this import path). Wall readings stay inside Recorder state and
//     the perf artifact; nothing flows back into simulation results.
//
// The perf artifact pairs wall latencies with the registry's exact
// work counters (passed in at snapshot time), so a regression report
// can say both "round latency doubled" and "Dijkstra pops did not" —
// separating algorithmic regressions from machine noise.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ReportKind marks perf artifacts so tools (rwc-obsdiff, rwc-perfdiff)
// can sniff them among other JSON files.
const ReportKind = "rwc-perf"

// WorkPrefix is the metric-name prefix of the deterministic work
// counters the simulation publishes; FilterWork selects them from a
// registry totals map into the perf artifact.
const WorkPrefix = "rwc_work_"

// recentSamples is the per-phase ring size of most-recent durations
// (what rwc-top renders as a latency sparkline).
const recentSamples = 32

// latencyBuckets are the per-phase histogram upper bounds in
// nanoseconds: 100µs to ~16s in powers of four — wide enough for a
// sub-millisecond Abilene round and a multi-second continental solve.
var latencyBuckets = []int64{
	100_000,        // 100µs
	400_000,        // 400µs
	1_600_000,      // 1.6ms
	6_400_000,      // 6.4ms
	25_600_000,     // 25.6ms
	102_400_000,    // 102ms
	409_600_000,    // 410ms
	1_638_400_000,  // 1.6s
	6_553_600_000,  // 6.6s
	16_000_000_000, // 16s
}

// phase accumulates one named phase's wall latencies.
type phase struct {
	count   int64
	totalNs int64
	minNs   int64
	maxNs   int64
	buckets []int64 // cumulative-at-export; stored as per-bucket counts
	recent  []int64 // ring of the last recentSamples durations
	next    int     // ring write cursor
}

// Recorder captures wall-clock performance for one tool run. The zero
// value is not usable; call New. A nil *Recorder is a valid disabled
// recorder: every method no-ops, so call sites need no guards.
//
// Recorders are safe for concurrent use — policy runs (and experiment
// figures) time phases from parallel workers.
type Recorder struct {
	tool  string
	start time.Time

	mu       sync.Mutex
	phases   map[string]*phase
	order    []string // insertion order, for stable reports
	startMem runtime.MemStats

	profileDir string
	cpuProfile *os.File
}

// New returns a live recorder stamped with the tool name.
func New(tool string) *Recorder {
	r := &Recorder{
		tool:   tool,
		start:  time.Now(),
		phases: make(map[string]*phase),
	}
	runtime.ReadMemStats(&r.startMem)
	return r
}

// noop is the shared disabled phase closer (mirrors wan's noopEnd: one
// package-level func so disabled call sites never allocate a closure).
var noop = func() {}

// Phase starts timing one occurrence of the named phase and returns
// its closer. Phases aggregate: N calls with the same name produce one
// entry with count N, min/max/total, a latency histogram, and a ring
// of recent samples. Nil-safe.
func (r *Recorder) Phase(name string) func() {
	if r == nil {
		return noop
	}
	t0 := time.Now()
	return func() {
		r.observe(name, time.Since(t0).Nanoseconds())
	}
}

// Observe records one already-measured duration for a phase (for
// callers that time a region themselves). Nil-safe.
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.observe(name, d.Nanoseconds())
}

func (r *Recorder) observe(name string, ns int64) {
	if ns < 0 {
		ns = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.phases[name]
	if p == nil {
		p = &phase{
			minNs:   ns,
			maxNs:   ns,
			buckets: make([]int64, len(latencyBuckets)),
			recent:  make([]int64, 0, recentSamples),
		}
		r.phases[name] = p
		r.order = append(r.order, name)
	}
	p.count++
	p.totalNs += ns
	if ns < p.minNs {
		p.minNs = ns
	}
	if ns > p.maxNs {
		p.maxNs = ns
	}
	for i, ub := range latencyBuckets {
		if ns <= ub {
			p.buckets[i]++
			break
		}
	}
	if len(p.recent) < recentSamples {
		p.recent = append(p.recent, ns)
	} else {
		p.recent[p.next] = ns
	}
	p.next = (p.next + 1) % recentSamples
}

// StartProfiles begins a CPU profile and arranges for a heap profile,
// both written under dir (cpu.pprof, heap.pprof) when StopProfiles
// runs. Run-scoped rather than per-phase: Go allows one active CPU
// profile per process, and phases interleave across worker goroutines.
// Nil-safe; a second call before StopProfiles is an error.
func (r *Recorder) StartProfiles(dir string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cpuProfile != nil {
		return fmt.Errorf("perf: profiles already started")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	r.profileDir = dir
	r.cpuProfile = f
	return nil
}

// StopProfiles ends the CPU profile and writes the heap profile.
// Nil-safe; a no-op when StartProfiles was never called.
func (r *Recorder) StopProfiles() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cpuProfile == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := r.cpuProfile.Close()
	r.cpuProfile = nil
	hf, herr := os.Create(filepath.Join(r.profileDir, "heap.pprof"))
	if herr == nil {
		runtime.GC() // get an accurate post-run heap picture
		herr = pprof.Lookup("heap").WriteTo(hf, 0)
		if cerr := hf.Close(); herr == nil {
			herr = cerr
		}
	}
	if err == nil {
		err = herr
	}
	return err
}

// PhaseReport is one phase's aggregated wall latencies. All wall
// fields end in Ns so artifact differs can exclude them wholesale
// (rwc-obsdiff ignores keys matching *_ns by design).
type PhaseReport struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MinNs   int64  `json:"min_ns"`
	MaxNs   int64  `json:"max_ns"`
	// BucketsNs[i] counts samples ≤ BucketBoundsNs[i] (non-cumulative).
	BucketsNs []int64 `json:"buckets_ns"`
	// RecentNs holds up to recentSamples most-recent durations, oldest
	// first — the sparkline feed.
	RecentNs []int64 `json:"recent_ns"`
}

// MemReport is the runtime memory delta from recorder construction to
// snapshot (counters are deltas; gauges are point-in-time).
type MemReport struct {
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	Frees           uint64  `json:"frees"`
	NumGC           uint32  `json:"num_gc"`
	PauseTotalNs    uint64  `json:"pause_total_ns"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
}

// Report is the perf artifact: the segregated wall-clock record of one
// run, plus a copy of the deterministic work counters so one file
// carries both sides of a perf investigation.
type Report struct {
	Kind           string        `json:"kind"` // always ReportKind
	Tool           string        `json:"tool,omitempty"`
	ElapsedNs      int64         `json:"elapsed_ns"`
	BucketBoundsNs []int64       `json:"bucket_bounds_ns"`
	Phases         []PhaseReport `json:"phases"`
	Mem            MemReport     `json:"mem"`
	// Work maps "name{labels}" → value for every rwc_work_* series
	// (exact integers; the deterministic half of the artifact). JSON
	// marshaling sorts the keys, so the section is byte-stable.
	Work map[string]float64 `json:"work,omitempty"`
}

// Snapshot renders the recorder's current state. work, when non-nil,
// is embedded verbatim (pass FilterWork(registry.Totals())). Nil-safe:
// a nil recorder returns a zero Report.
func (r *Recorder) Snapshot(work map[string]float64) Report {
	if r == nil {
		return Report{Kind: ReportKind}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{
		Kind:           ReportKind,
		Tool:           r.tool,
		ElapsedNs:      time.Since(r.start).Nanoseconds(),
		BucketBoundsNs: append([]int64(nil), latencyBuckets...),
		Phases:         make([]PhaseReport, 0, len(r.order)),
		Work:           work,
	}
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		p := r.phases[name]
		pr := PhaseReport{
			Name:      name,
			Count:     p.count,
			TotalNs:   p.totalNs,
			MinNs:     p.minNs,
			MaxNs:     p.maxNs,
			BucketsNs: append([]int64(nil), p.buckets...),
		}
		// Unroll the ring oldest-first.
		if len(p.recent) == recentSamples {
			pr.RecentNs = append(pr.RecentNs, p.recent[p.next:]...)
			pr.RecentNs = append(pr.RecentNs, p.recent[:p.next]...)
		} else {
			pr.RecentNs = append(pr.RecentNs, p.recent...)
		}
		rep.Phases = append(rep.Phases, pr)
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	rep.Mem = MemReport{
		HeapAllocBytes:  m.HeapAlloc,
		TotalAllocBytes: m.TotalAlloc - r.startMem.TotalAlloc,
		Mallocs:         m.Mallocs - r.startMem.Mallocs,
		Frees:           m.Frees - r.startMem.Frees,
		NumGC:           m.NumGC - r.startMem.NumGC,
		PauseTotalNs:    m.PauseTotalNs - r.startMem.PauseTotalNs,
		GCCPUFraction:   m.GCCPUFraction,
	}
	return rep
}

// WriteJSON writes the artifact as indented JSON (one object; the
// -perf-out file format).
func (r *Recorder) WriteJSON(w io.Writer, work map[string]float64) error {
	rep := r.Snapshot(work)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FilterWork selects the deterministic work counters from a registry
// totals map (obs.Registry.Totals()): every series whose name starts
// with WorkPrefix.
func FilterWork(totals map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range totals {
		if strings.HasPrefix(k, WorkPrefix) {
			out[k] = v
		}
	}
	return out
}

// IsReport reports whether raw JSON bytes look like a perf artifact
// (kind == ReportKind) — the sniff rwc-obsdiff and rwc-perfdiff use to
// dispatch .json files.
func IsReport(data []byte) bool {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Kind == ReportKind
}
