package lint

import (
	"go/ast"
	"go/types"
)

// ChanOrder flags channel-ordered data feeding artifact sinks. Two
// shapes are nondeterministic by construction:
//
//   - a select with two or more communication cases: when several
//     channels are ready the runtime picks uniformly at random, so a
//     sink call in any case body emits in scheduler order;
//   - draining a channel (for v := range ch, the fan-in shape)
//     straight into a sink: arrival order across producer goroutines
//     is a race outcome.
//
// The sanctioned pattern is internal/par's index-ordered reassembly:
// tag each item with its task index, store into out[i], and render
// after the join — or use par.Stream, whose consume callback already
// runs in strict index order. Case bodies that only store into
// indexed slots are therefore clean. Test files are exempt.
var ChanOrder = &Analyzer{
	Name: "chanorder",
	Doc: "select over multiple channels or channel fan-in must not feed artifact " +
		"sinks directly; reassemble in task-index order (internal/par) before writing",
	Run: runChanOrder,
}

func runChanOrder(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				checkSelect(pass, n)
			case *ast.RangeStmt:
				if _, ok := typeUnder(pass.Info.TypeOf(n.X)).(*types.Chan); ok {
					reportSinks(pass, n.Body,
						"inside channel fan-in (range over channel): arrival order across producers is nondeterministic; reassemble in task-index order (internal/par) before writing")
				}
			}
			return true
		})
	}
	return nil
}

func checkSelect(pass *Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm < 2 {
		return
	}
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		for _, s := range cc.Body {
			reportSinksStmt(pass, s,
				"inside a select with multiple ready channels: case choice is randomized; buffer and emit in deterministic order instead")
		}
	}
}

func reportSinks(pass *Pass, body *ast.BlockStmt, context string) {
	for _, s := range body.List {
		reportSinksStmt(pass, s, context)
	}
}

// reportSinksStmt flags direct artifact-sink calls in a statement
// tree, without descending into nested function literals (those run
// on their own schedule) or nested selects (reported separately).
func reportSinksStmt(pass *Pass, stmt ast.Stmt, context string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.SelectStmt:
			return false
		case *ast.CallExpr:
			if sink, ok := artifactSink(pass, n); ok {
				pass.Reportf(n.Pos(), "%s %s", sink, context)
			}
		}
		return true
	})
}
