package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// NoFloatEq flags direct == / != between float operands in non-test
// code. SNR, capacity, and flow values accumulate rounding; exact
// comparison silently turns "equal capacity" into "bit-identical
// float", which is how a 50 Gbps upgrade decision flips between runs.
// Use the tolerance helpers in repro/internal/stats instead
// (stats.ApproxEqual for relative, stats.ApproxInDelta for absolute).
//
// Two escapes are deliberate: comparison against an exact constant
// zero (zero is the universal "unset/empty" sentinel and exact in
// IEEE 754), and _test.go files (the determinism the suite enforces
// is precisely what makes exact golden values meaningful in tests).
var NoFloatEq = &Analyzer{
	Name: "nofloateq",
	Doc: "flag == and != on float operands; use repro/internal/stats " +
		"tolerance helpers (ApproxEqual, ApproxInDelta)",
	Run: runNoFloatEq,
}

func runNoFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(pass, bin.X) || !isFloatOperand(pass, bin.Y) {
				return true
			}
			if isZeroConstant(pass, bin.X) || isZeroConstant(pass, bin.Y) {
				return true
			}
			if pass.InTestFile(bin.Pos()) {
				return true
			}
			helper := "stats.ApproxEqual"
			if bin.Op == token.NEQ {
				helper = "!stats.ApproxEqual"
			}
			pass.Reportf(bin.OpPos,
				"float %s comparison; use %s (or stats.ApproxInDelta) from repro/internal/stats",
				bin.Op, helper)
			return true
		})
	}
	return nil
}

func isFloatOperand(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func isZeroConstant(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0 //nolint:nofloateq // the one place exact zero is the question
}
