package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// unit is the coarse physical-unit family carried by a name or type.
type unit int

const (
	unitNone unit = iota
	unitDB        // decibel family: …dB, …dBm, SNRdB, NoiseFiguredB
	unitGbps      // capacity family: …Gbps, modulation.Gbps
)

func (u unit) String() string {
	switch u {
	case unitDB:
		return "dB"
	case unitGbps:
		return "Gbps"
	}
	return "unitless"
}

// UnitMix flags call sites (and conversions) that pass a value
// derived from a *dB-named identifier into a *Gbps-named or
// Gbps-typed parameter, or vice versa. Both families are plain
// float64 almost everywhere, so the compiler cannot catch the swap —
// and a dB fed into the SNR→modulation→capacity translation
// (internal/core, internal/qot, internal/modulation) silently yields
// a plausible-looking but wrong capacity.
var UnitMix = &Analyzer{
	Name: "unitmix",
	Doc: "flag dB-derived values passed into Gbps parameters and vice " +
		"versa in the SNR→modulation→capacity translation",
	Run: runUnitMix,
}

// nameUnit classifies an identifier by the repository's naming
// convention. Suffix matching keeps compounds like AttenuationdBPerKm
// (a dB/km figure, not a bare dB) out of the dB family.
func nameUnit(name string) unit {
	switch {
	case name == "db", name == "dB",
		strings.HasSuffix(name, "dB"),
		strings.HasSuffix(name, "dBm"),
		strings.HasSuffix(name, "DB"):
		return unitDB
	case name == "gbps",
		strings.HasSuffix(name, "Gbps"):
		return unitGbps
	}
	return unitNone
}

// typeUnit classifies a type: a defined type whose name carries a
// unit (modulation.Gbps) taints every value of that type.
func typeUnit(t types.Type) unit {
	if t == nil {
		return unitNone
	}
	if named, ok := t.(*types.Named); ok {
		return nameUnit(named.Obj().Name())
	}
	return unitNone
}

// exprUnit infers the unit family of an expression from the names it
// is built from. It is deliberately conservative: +/- keep a unit
// (dB values add), * and / change units, and any dB/Gbps conflict
// inside a sub-expression resolves to unitless rather than guessing.
func exprUnit(pass *Pass, e ast.Expr) unit {
	switch e := e.(type) {
	case *ast.Ident:
		if u := nameUnit(e.Name); u != unitNone {
			return u
		}
	case *ast.SelectorExpr:
		if u := nameUnit(e.Sel.Name); u != unitNone {
			return u
		}
	case *ast.ParenExpr:
		return exprUnit(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return exprUnit(pass, e.X)
		}
		return unitNone
	case *ast.BinaryExpr:
		if e.Op != token.ADD && e.Op != token.SUB {
			return unitNone
		}
		ux, uy := exprUnit(pass, e.X), exprUnit(pass, e.Y)
		switch {
		case ux == uy:
			return ux
		case ux == unitNone:
			return uy
		case uy == unitNone:
			return ux
		}
		return unitNone
	case *ast.CallExpr:
		// A call inherits the callee's name suffix: p.OSNRdB(l) is a
		// dB, SNRLinearToDB(x) is a dB, SNRdBToLinear(x) is not.
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if u := nameUnit(fun.Name); u != unitNone {
				return u
			}
		case *ast.SelectorExpr:
			if u := nameUnit(fun.Sel.Name); u != unitNone {
				return u
			}
		}
	}
	if tv, ok := pass.Info.Types[e]; ok {
		return typeUnit(tv.Type)
	}
	return unitNone
}

func runUnitMix(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[call.Fun]
			if !ok {
				return true
			}
			if tv.IsType() {
				checkConversion(pass, call, tv.Type)
				return true
			}
			sig, ok := tv.Type.Underlying().(*types.Signature)
			if !ok {
				return true // builtin or invalid
			}
			checkCall(pass, call, sig)
			return true
		})
	}
	return nil
}

// checkConversion flags Gbps(x) where x is dB-derived (and vice
// versa): the explicit cast is exactly how a unit swap slips past the
// type checker.
func checkConversion(pass *Pass, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	tu := typeUnit(target)
	if tu == unitNone {
		return
	}
	au := exprUnit(pass, call.Args[0])
	if au == unitNone || au == tu {
		return
	}
	pass.Reportf(call.Args[0].Pos(),
		"conversion of %s-derived value %s to %s type %s",
		au, types.ExprString(call.Args[0]), tu, target)
}

func checkCall(pass *Pass, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 || call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		idx := i
		if idx >= params.Len() {
			if !sig.Variadic() {
				return // conversion-like or arity mismatch; typechecker's problem
			}
			idx = params.Len() - 1
		}
		param := params.At(idx)
		ptype := param.Type()
		if sig.Variadic() && idx == params.Len()-1 {
			if slice, ok := ptype.(*types.Slice); ok {
				ptype = slice.Elem()
			}
		}
		pu := nameUnit(param.Name())
		if pu == unitNone {
			pu = typeUnit(ptype)
		}
		if pu == unitNone {
			continue
		}
		au := exprUnit(pass, arg)
		if au == unitNone || au == pu {
			continue
		}
		pass.Reportf(arg.Pos(),
			"passing %s-derived value %s into %s parameter %q of %s",
			au, types.ExprString(arg), pu, param.Name(), types.ExprString(call.Fun))
	}
}
