package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every `go` statement to have a visible join or
// shutdown path. A fire-and-forget goroutine outlives the run it was
// spawned for: it races artifact writers during shutdown, keeps
// sockets alive after -linger, and is exactly the class of bug the
// SSE subscriber path hardened against. Accepted evidence, checked in
// the spawned function's body (a literal, or a same-package
// function/method):
//
//   - it calls Done() on a sync.WaitGroup (typically deferred), or
//     the spawn site is preceded by Add() on a sync.WaitGroup in the
//     same enclosing function;
//   - it receives from a channel (<-ch, for range ch, a select with
//     a receive, <-ctx.Done()): a quit/cancellation signal can reach
//     it;
//   - it blocks in a long-lived call on a variable — a struct field
//     (s.srv.Serve) or a local (srv.Serve) — for which the same
//     package calls Close or Shutdown on that variable elsewhere (the
//     HTTP-server shape, whether the server lives in a struct or on
//     the stack of main).
//
// Anything else is flagged. Bounded fan-out belongs on internal/par,
// which joins workers deterministically. Test files are exempt: the
// test binary's lifetime bounds their goroutines, and helpers like
// httptest manage their own.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement needs a reachable join/shutdown path " +
		"(sync.WaitGroup, quit-channel receive, or a Close/Shutdown-managed variable); " +
		"use internal/par for bounded fan-out",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	// Package-wide context: function declarations (to resolve `go
	// s.handle(conn)` bodies) and the set of variables (struct fields
	// or locals) on which some function calls Close/Shutdown.
	decls := map[*types.Func]*ast.FuncDecl{}
	closedVars := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Shutdown") {
					return true
				}
				if obj := selectorBase(pass, sel.X); obj != nil {
					closedVars[obj] = true
				}
				return true
			})
		}
	}

	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if goStmtJoined(pass, fd, g, decls, closedVars) {
					return true
				}
				pass.Reportf(g.Pos(),
					"goroutine has no reachable join/shutdown path (no WaitGroup Add/Done, quit-channel receive, or Close/Shutdown-managed variable); fire-and-forget goroutines outlive the run — join it or use internal/par")
				return true
			})
		}
	}
	return nil
}

func goStmtJoined(pass *Pass, enclosing *ast.FuncDecl, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl, closedVars map[types.Object]bool) bool {
	// Evidence at the spawn site: a WaitGroup.Add before the go
	// statement anywhere in the enclosing function.
	addBefore := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		if isWaitGroupMethod(pass, call, "Add") {
			addBefore = true
		}
		return true
	})
	if addBefore {
		return true
	}
	body := goroutineBody(pass, g.Call, decls)
	if body == nil {
		// Callee body invisible (other package, indirect call): no
		// evidence — flag it.
		return false
	}
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupMethod(pass, n, "Done") {
				joined = true
			}
			// Blocking on a Close/Shutdown-managed variable: go func() {
			// s.srv.Serve(ln) }() with s.srv.Close() elsewhere, or the
			// local-variable shape with a deferred srv.Close().
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if obj := selectorBase(pass, sel.X); obj != nil && closedVars[obj] {
					joined = true
				}
			}
		case *ast.UnaryExpr:
			// Any channel receive doubles as a shutdown signal path
			// (<-quit, <-ctx.Done()).
			if n.Op == token.ARROW {
				joined = true
			}
		case *ast.RangeStmt:
			if _, ok := typeUnder(pass.Info.TypeOf(n.X)).(*types.Chan); ok {
				joined = true
			}
		}
		return true
	})
	return joined
}

// goroutineBody resolves the spawned function's body: a func literal
// inline, or a same-package function/method declaration.
func goroutineBody(pass *Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(pass, call); fn != nil {
		if fd, ok := decls[fn]; ok {
			return fd.Body
		}
	}
	return nil
}

// selectorBase resolves the variable a method is called on: the field
// object for s.srv.Serve, the local/package variable for srv.Serve.
// Package names and other non-variable bases return nil.
func selectorBase(pass *Pass, x ast.Expr) types.Object {
	var obj types.Object
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[x.Sel]
	case *ast.Ident:
		obj = pass.Info.Uses[x]
	default:
		return nil
	}
	if v, ok := obj.(*types.Var); ok {
		return v
	}
	return nil
}

// isWaitGroupMethod reports whether call is (*sync.WaitGroup).<name>.
func isWaitGroupMethod(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync" && fn.Name() == name
}
