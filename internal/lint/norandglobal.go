package lint

import (
	"go/ast"
	"go/types"
)

// randPackages are the stdlib sources of non-deterministic (or at
// least non-seed-threaded) randomness the repository bans.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// NoRandGlobal forbids math/rand and math/rand/v2 outside
// internal/rng. The global source is process-wide mutable state and
// rand.New scatters seeds ad hoc; both break the bit-for-bit replay
// the experiments (and Theorem 1's equivalence check) rely on. All
// stochastic code must thread a repro/internal/rng.Source instead.
var NoRandGlobal = &Analyzer{
	Name: "norandglobal",
	Doc: "forbid math/rand and math/rand/v2 outside internal/rng; " +
		"thread a repro/internal/rng.Source for deterministic replay",
	Run: runNoRandGlobal,
}

func runNoRandGlobal(pass *Pass) error {
	if pathHasSegments(pass.Pkg.Path(), "internal/rng") {
		// The blessed wrapper. It may (and its tests do) reference the
		// stdlib generators for cross-validation.
		return nil
	}
	for _, file := range pass.Files {
		// Dot- and blank-imports hide uses from the selector walk
		// below, so flag the import spec itself.
		for _, imp := range file.Imports {
			path := importPath(imp)
			if !randPackages[path] {
				continue
			}
			if imp.Name != nil && (imp.Name.Name == "." || imp.Name.Name == "_") {
				pass.Reportf(imp.Pos(),
					"%s-import of %q; use repro/internal/rng so the stream is seed-threaded",
					imp.Name.Name, path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok || !randPackages[pkgName.Imported().Path()] {
				return true
			}
			what := "top-level " + sel.Sel.Name
			if sel.Sel.Name == "New" || sel.Sel.Name == "NewSource" {
				what = "ad-hoc rand." + sel.Sel.Name
			}
			pass.Reportf(sel.Pos(),
				"use of %s.%s (%s); thread a repro/internal/rng.Source instead for deterministic replay",
				pkgName.Imported().Path(), sel.Sel.Name, what)
			return true
		})
	}
	return nil
}

func importPath(imp *ast.ImportSpec) string {
	// The value is a quoted string literal by construction.
	s := imp.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}
