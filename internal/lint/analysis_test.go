package lint

import "testing"

func TestPathHasSegments(t *testing.T) {
	cases := []struct {
		path, want string
		hit        bool
	}{
		{"repro/internal/te", "internal/te", true},
		{"repro/internal/te/kpath", "internal/te", true},
		{"repro/internal/telemetry", "internal/te", false},
		{"internal/te", "internal/te", true},
		{"repro/internal/rng", "internal/rng", true},
		{"repro/internal/rngx", "internal/rng", false},
	}
	for _, c := range cases {
		if got := pathHasSegments(c.path, c.want); got != c.hit {
			t.Errorf("pathHasSegments(%q, %q) = %v, want %v", c.path, c.want, got, c.hit)
		}
	}
}

func TestNameUnit(t *testing.T) {
	cases := []struct {
		name string
		want unit
	}{
		{"snrdB", unitDB},
		{"SNRdB", unitDB},
		{"LaunchPowerdBm", unitDB},
		{"marginDB", unitDB},
		{"db", unitDB},
		{"rateGbps", unitGbps},
		{"Gbps", unitGbps},
		{"AttenuationdBPerKm", unitNone}, // dB/km, not a bare dB
		{"lengthKm", unitNone},
		{"database", unitNone},
		{"dBase", unitNone},
	}
	for _, c := range cases {
		if got := nameUnit(c.name); got != c.want {
			t.Errorf("nameUnit(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestNolintParsing(t *testing.T) {
	loader := NewLoader()
	pkgs, err := loader.LoadDir("nofloateq", "testdata/src/nofloateq")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		nl := collectNolint(pkg.Fset, pkg.Files)
		found := false
		for _, byLine := range nl {
			for _, names := range byLine {
				if names["nofloateq"] {
					found = true
				}
			}
		}
		if len(pkg.Files) > 1 && !found {
			t.Fatalf("expected a //nolint:nofloateq directive in the nofloateq fixture")
		}
	}
}
