// Fixture: a minimal stand-in for the module's internal/obs package.
// Its import path ends in internal/obs, so seriesname treats methods
// on these types as registration sites at callers — while this
// package itself is exempt (the core wrappers legitimately forward
// caller-supplied names).
package obs

type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name, help string) *Histogram { return &Histogram{} }

type Counter struct{}

func (c *Counter) Add(v float64) {}

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

type Tracer struct{}

func (t *Tracer) Event(name string) {}

// Rule mirrors the alert engine's rule literal shape.
type Rule struct {
	Name string
	Expr string
}

// forward proves the exemption: the core package may pass dynamic
// names through without a diagnostic.
func forward(r *Registry, name string) *Counter {
	return r.Counter(name, "")
}
