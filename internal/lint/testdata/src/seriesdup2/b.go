// Fixture: seriesdup2 — conflicts with names seriesdup1 already owns.
// The Finish pass sees facts from both packages and reports at the
// later registration, naming the package that registered first.
package seriesdup2

import obs "seriesobs/internal/obs"

func Register(r *obs.Registry) {
	r.Gauge("shared_total", "shared things")              // want `re-registered as gauge; first registered as counter in seriesdup1`
	r.Counter("helpful_total", "a different help string") // want `conflicting help text \(first registration in seriesdup1`
	r.Counter("local_total", "fine: a fresh name")
}
