// Fixture: seriesname — registration sites outside the obs core must
// use literal snake_case names, and one name must mean one series:
// same-name re-registration with a different kind or help is flagged
// by the module-wide Finish pass at the later site.
package seriesuse

import obs "seriesobs/internal/obs"

const snrName = "wan_snr_min_db"

func register(r *obs.Registry, tr *obs.Tracer) {
	r.Counter("frames_total", "frames emitted this run")
	r.Counter(snrName, "minimum SNR observed, dB")
	r.Histogram("rtt_ms", "round trip time, ms")
	r.Gauge("queue_depth", "packets queued")
	r.Gauge("queue_depth", "packets queued") // get-or-create: identical re-registration is legal
	r.Gauge("QueueDepth", "camel case")      // want `metric name "QueueDepth" is not snake_case`
	r.Counter(dynamicName(), "x")            // want `must be a compile-time constant`
	r.Counter("mode_flips", "count of mode transitions")
	r.Gauge("mode_flips", "current mode") // want `re-registered as gauge; first registered as counter`
	r.Counter("drops_total", "packets dropped")
	r.Counter("drops_total", "frames dropped") // want `conflicting help text`
	tr.Event("wan.round")
	tr.Event("alert.fire")
	tr.Event("Wan.Round")     // want `not dot-separated snake_case`
	tr.Event(dynamicName()) // want `must be a compile-time constant`
}

func dynamicName() string { return "x" }

var rules = []obs.Rule{
	{Name: "snr_floor", Expr: "wan_snr_min_db < 10"},
	{Name: "SNR-Floor", Expr: "x"},  // want `alert rule name "SNR-Floor" is not snake_case`
	{Name: ruleName(), Expr: "x"}, // want `alert rule name must be a compile-time constant`
}

func ruleName() string { return "y" }
