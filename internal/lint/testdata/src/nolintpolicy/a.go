// Fixture: nolintpolicy — the only accepted suppression shape is
// `//nolint:analyzer // reason`. Bare, reasonless, badly spaced, and
// :all forms are all rejected, and these findings cannot themselves
// be suppressed (the malformed comments below sit on their own lines).
package nolintpolicy

var a = 1 //nolint // want `malformed suppression`
var b = 2 // nolint:nofloateq // legacy spacing // want `malformed suppression`
var c = 3 //nolint:nofloateq //want `malformed suppression`
var d = 4 //nolint:all // covers everything // want `name the specific analyzers instead`
var e = 5 //nolint:nofloateq // comparing exact sentinel values is intended here
var f = 6 //nolint:nofloateq,unitmix // two analyzers, one shared reason
