package norandglobal

import randv2 "math/rand/v2"

func v2Draw() int {
	return randv2.IntN(5) // want `use of math/rand/v2.IntN`
}
