package norandglobal

// Negative case: a seed-threaded local generator is the sanctioned
// shape (in real code, repro/internal/rng).

type source struct{ state uint64 }

func (s *source) next() uint64 {
	s.state ^= s.state << 13
	s.state ^= s.state >> 7
	s.state ^= s.state << 17
	return s.state
}

func deterministicDraw(seed uint64) uint64 {
	s := &source{state: seed | 1}
	return s.next()
}
