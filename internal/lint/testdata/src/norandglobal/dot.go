package norandglobal

import . "math/rand" // want `\.-import of "math/rand"`

func dotPerm() []int {
	return Perm(3)
}
