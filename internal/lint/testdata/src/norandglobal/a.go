// Positive cases: every touch of math/rand outside internal/rng is a
// determinism leak.
package norandglobal

import "math/rand"

func jitter() int {
	return rand.Intn(10) // want `use of math/rand.Intn .top-level Intn.`
}

func adHocSource() float64 {
	r := rand.New(rand.NewSource(42)) // want `ad-hoc rand.New` `ad-hoc rand.NewSource`
	return r.Float64()
}

func globalDraw() float64 {
	return rand.Float64() // want `use of math/rand.Float64`
}
