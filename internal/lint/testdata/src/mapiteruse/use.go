// Fixture: mapiteruse — the consumer half of the cross-package taint
// test. mapiterdep.Keys carries a return-taint fact exported when its
// package was analyzed; calls here are taint sources even though no
// map is in sight.
package mapiteruse

import (
	"fmt"
	"sort"

	"mapiterdep"
)

func renderUnsorted(m map[string]int) {
	for _, k := range mapiterdep.Keys(m) {
		fmt.Println(k, m[k]) // want `fmt.Println inside range over map-ordered value`
	}
}

func renderDirect(m map[string]int) {
	fmt.Println(mapiterdep.Keys(m)) // want `map-ordered value reaches fmt.Println`
}

func renderSorted(m map[string]int) {
	for _, k := range mapiterdep.SortedKeys(m) {
		fmt.Println(k, m[k])
	}
}

func renderLocallySorted(m map[string]int) {
	ks := mapiterdep.Keys(m)
	sort.Strings(ks)
	fmt.Println(ks)
}
