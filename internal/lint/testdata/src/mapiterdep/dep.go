// Fixture: mapiterdep — the exported-helper half of the
// cross-package taint test. Keys returns a map-ordered slice, so
// mapiter exports a return-taint fact for it; SortedKeys sorts first
// and stays clean. Neither function sinks anything itself, so this
// package produces no diagnostics.
package mapiterdep

import "sort"

// Keys returns m's keys in map-iteration order.
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// SortedKeys returns m's keys sorted.
func SortedKeys(m map[string]int) []string {
	ks := Keys(m)
	sort.Strings(ks)
	return ks
}
