package unitmix

// Gbps mirrors modulation.Gbps: a defined capacity type.
type Gbps float64

func Provision(capacityGbps float64) {}

func SetSNR(thresholddB float64) {}

func Translate(c Gbps) {}

func Sum(vals ...Gbps) Gbps {
	var t Gbps
	for _, v := range vals {
		t += v
	}
	return t
}

type ladder struct{}

func (ladder) AddCapacity(extraGbps float64) {}

func osnrdB(spans int) float64 { return 58 - float64(spans) }

func mix(snrdB, rateGbps, marginDB, lengthKm float64, r Gbps) {
	Provision(snrdB)                       // want `passing dB-derived value snrdB into Gbps parameter "capacityGbps"`
	SetSNR(rateGbps)                       // want `passing Gbps-derived value rateGbps into dB parameter "thresholddB"`
	Provision(snrdB - 3)                   // want `passing dB-derived value snrdB - 3 into Gbps parameter`
	Provision(snrdB + marginDB)            // want `passing dB-derived value`
	Provision(osnrdB(4))                   // want `passing dB-derived value osnrdB\(4\) into Gbps parameter`
	Translate(Gbps(snrdB))                 // want `conversion of dB-derived value snrdB to Gbps type`
	Sum(r, Gbps(rateGbps), Gbps(marginDB)) // want `conversion of dB-derived value marginDB to Gbps type`
	var l ladder
	l.AddCapacity(snrdB) // want `passing dB-derived value snrdB into Gbps parameter "extraGbps"`

	// Negatives: consistent units, unitless lengths, explicit
	// same-family conversions.
	Provision(rateGbps)
	SetSNR(snrdB - marginDB)
	SetSNR(lengthKm) // lengthKm carries no dB/Gbps unit
	Translate(r)
	Translate(Gbps(rateGbps))
	l.AddCapacity(rateGbps)
}
