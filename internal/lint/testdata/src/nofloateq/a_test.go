package nofloateq

import "testing"

// Negative case: tests may assert exact golden floats — the
// determinism the rest of the suite enforces is what makes these
// assertions meaningful.
func TestExactGoldenValue(t *testing.T) {
	got := 0.5 * 3
	if got != 1.5 {
		t.Fatalf("got %v", got)
	}
}
