package nofloateq

type capacity float64

func compare(a, b float64, xs []float64) bool {
	if a == b { // want `float == comparison; use stats.ApproxEqual`
		return true
	}
	if a != b { // want `float != comparison; use !stats.ApproxEqual`
		return false
	}
	var c, d capacity = 1, 2
	return c == d // want `float == comparison`
}

func compare32(a, b float32) bool {
	return a != b // want `float != comparison`
}

// Exact-zero sentinel checks stay legal: zero is exact in IEEE 754.
func isUnset(snrdB float64) bool {
	return snrdB == 0
}

func zeroLeft(x float64) bool {
	return 0.0 == x
}

// Non-float comparisons are out of scope.
func intsAndStrings(i, j int, s string) bool {
	return i == j && s != "snr"
}

// A justified suppression keeps the line clean.
func dedupExact(a, b float64) bool {
	return a == b //nolint:nofloateq // exact-duplicate collapse is intentional
}
