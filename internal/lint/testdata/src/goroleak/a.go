// Fixture: goroleak — every go statement needs a visible join or
// shutdown path.
package goroleak

import "sync"

// anon has no join evidence at all.
func anon() {
	go func() { // want `no reachable join/shutdown path`
		_ = 1 + 1
	}()
}

// fireNamed spawns a same-package function with no join path.
func fireNamed() {
	go spin() // want `no reachable join/shutdown path`
}

func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

// joinedWaitGroup: Done in the goroutine, Wait at the spawn site.
func joinedWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// joinedNamed: the spawned method's body calls Done on the owner's
// WaitGroup (resolved through the same-package declaration).
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) work() {
	defer p.wg.Done()
}

func (p *pool) spawnUnadded() {
	go p.work() // clean: work's body calls (*sync.WaitGroup).Done
}

// quitChannel: the goroutine listens on a shutdown channel.
func quitChannel(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
			}
		}
	}()
}

// serverField: the goroutine blocks in s.srv.Serve and the package
// closes s.srv elsewhere — the HTTP-server shape.
type fakeServer struct{}

func (*fakeServer) Serve() error { return nil }
func (*fakeServer) Close() error { return nil }

type server struct {
	srv *fakeServer
}

func (s *server) start() {
	go func() {
		_ = s.srv.Serve()
	}()
}

func (s *server) stop() {
	_ = s.srv.Close()
}

// localServer: the server lives on the stack (the examples/main
// shape) with a deferred Close in the same function.
func localServer() {
	srv := &fakeServer{}
	defer srv.Close()
	go func() {
		_ = srv.Serve()
	}()
}

// orphanField: same shape but nobody ever closes o.srv2.
type orphan struct {
	srv2 *fakeServer
}

func (o *orphan) start() {
	go func() { // want `no reachable join/shutdown path`
		_ = o.srv2.Serve()
	}()
}
