// Fixture: chanorder — channel-ordered data must not feed artifact
// sinks without index-ordered reassembly.
package chanorder

import "fmt"

// fanSelect emits whichever channel is ready first: scheduler order
// reaches the artifact.
func fanSelect(a, b chan int) {
	for i := 0; i < 2; i++ {
		select {
		case v := <-a:
			fmt.Println(v) // want `fmt.Println inside a select with multiple ready channels`
		case v := <-b:
			fmt.Println(v) // want `fmt.Println inside a select with multiple ready channels`
		}
	}
}

// drain renders fan-in arrival order directly.
func drain(ch chan int) {
	for v := range ch {
		fmt.Println(v) // want `fmt.Println inside channel fan-in`
	}
}

// reassemble is the sanctioned shape: store by task index, render
// after the join.
func reassemble(ch chan struct{ I, V int }, n int) {
	out := make([]int, n)
	for m := range ch {
		out[m.I] = m.V
	}
	for _, v := range out {
		fmt.Println(v)
	}
}

// nonblocking has a single communication case: no choice, no race.
func nonblocking(ch chan int) {
	select {
	case v := <-ch:
		fmt.Println(v)
	default:
	}
}

// compute is allowed to select over many channels as long as no sink
// sits in the case bodies.
func compute(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
