// Fixture: mapiter — values ordered by range-over-map must be sorted
// before reaching an artifact sink. Every flagged line has a want;
// every clean line proves the collect-and-sort idiom is accepted.
package mapiter

import (
	"fmt"
	"io"
	"sort"
)

// direct writes inside the map loop: flagged at the sink call.
func direct(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside range over map`
	}
}

// directNested: the sink sits under an if inside the loop.
func directNested(m map[string]int, w io.Writer) {
	for k := range m {
		if len(k) > 0 {
			fmt.Fprintln(w, k) // want `fmt.Fprintln inside range over map`
		}
	}
}

// collectSorted is the sanctioned idiom: collect, sort, then write.
func collectSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// collectUnsorted skips the sort: the slice is map-ordered when it
// reaches the sink.
func collectUnsorted(m map[string]int, w io.Writer) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		fmt.Fprintln(w, k) // want `fmt.Fprintln inside range over map-ordered value`
	}
}

// directArg passes the whole map-ordered slice to a sink.
func directArg(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Println(keys) // want `map-ordered value reaches fmt.Println`
}

// sortSlice proves sort.Slice sanitizes too.
func sortSlice(m map[string]float64) {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	fmt.Println(vals)
}

// indexedStore leaks order through an indexed write, not append.
func indexedStore(m map[string]int) {
	keys := make([]string, len(m))
	i := 0
	for k := range m {
		keys[i] = k
		i++
	}
	fmt.Println(keys) // want `map-ordered value reaches fmt.Println`
}

// helper returns map-ordered keys; callers inherit the taint via the
// in-package fixpoint.
func helper(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// sortedHelper sorts before returning: clean.
func sortedHelper(m map[string]int) []string {
	ks := helper(m)
	sort.Strings(ks)
	return ks
}

func useHelper(m map[string]int) {
	fmt.Println(helper(m)) // want `map-ordered value reaches fmt.Println`
	fmt.Println(sortedHelper(m))
	ks := helper(m)
	sort.Strings(ks)
	fmt.Println(ks)
}

// mapToMap is order-free: writing into another map does not record
// iteration order.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sliceRange is clean: ranging over a slice is ordered.
func sliceRange(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
