// Negative case: internal/telemetry is collector/driver code, where
// wall-clock time is the point — it is not on the forbidden list.
package telemetry

import "time"

func StampNow() time.Time {
	return time.Now()
}

func PollEvery(d time.Duration, f func()) {
	for range time.Tick(d) {
		f()
	}
}
