package snr

import (
	"testing"
	"time"
)

// Negative case: _test.go files may time themselves even inside
// simulation packages.
func TestWallClockAllowedInTests(t *testing.T) {
	start := time.Now()
	if time.Since(start) < 0 {
		t.Fatal("clock went backwards")
	}
}
