// Positive cases: wall-clock reads inside a simulation package.
package snr

import "time"

// SampleInterval mirrors the real package: simulated time is sample
// index times this constant — never the wall clock.
const SampleInterval = 15 * time.Minute

func stamp() time.Time {
	return time.Now() // want `time.Now in simulation package repro/internal/snr`
}

func throttle() {
	time.Sleep(10 * time.Millisecond) // want `time.Sleep in simulation package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in simulation package`
}

func pace() <-chan time.Time {
	return time.After(SampleInterval) // want `time.After in simulation package`
}

// simTime is the sanctioned shape: derive time from the sample index.
func simTime(epoch time.Time, sample int) time.Time {
	return epoch.Add(time.Duration(sample) * SampleInterval)
}
