// Fixture: internal/graph is the instrumented solver layer. Work
// accounting (pops, relaxations) must stay in deterministic integers —
// the perf-package exemption must NOT leak here: a wall-clock read in
// solver code would make work counters timing-dependent and break
// byte-identity across -workers counts.
package graph

import "time"

// SolveStats mirrors the real solver's work counters: plain integers,
// clean.
type SolveStats struct {
	Pops        int
	Relaxations int
}

// countedSolve does deterministic work accounting: clean.
func countedSolve(n int) SolveStats {
	var s SolveStats
	for i := 0; i < n; i++ {
		s.Pops++
		s.Relaxations += 2
	}
	return s
}

// badTimedSolve measures solver cost with the wall clock instead of
// work units.
func badTimedSolve() time.Duration {
	t0 := time.Now()      // want `time.Now in simulation package repro/internal/graph`
	return time.Since(t0) // want `time.Since in simulation package`
}
