// Negative case: internal/rng itself is the blessed wrapper and may
// reference the stdlib generators (e.g. for cross-validation).
package rng

import "math/rand"

func stdlibReference(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
