// Fixture: an obs-instrumented simulation package. The observability
// layer must not tempt simulation code into wall-clock reads — trace
// timestamps come from an injected clock the simulation advances
// itself, so the sanctioned shapes below are clean and every direct
// time.* read is flagged.
package wan

import "time"

// clock is the injected-clock shape the real internal/obs package
// exposes: Now returns simulation time, an offset the simulation set.
type clock interface {
	Now() time.Duration
}

// simClock is a manually advanced clock (the sanctioned pattern).
type simClock struct{ t time.Duration }

func (c *simClock) Set(t time.Duration) { c.t = t }
func (c *simClock) Now() time.Duration  { return c.t }

// run advances the injected clock from round state — no wall reads.
func run(c *simClock, rounds int, interval time.Duration) {
	for r := 0; r < rounds; r++ {
		c.Set(time.Duration(r) * interval)
	}
}

// stamp reads the injected clock: fine, it is simulation time.
func stamp(c clock) time.Duration {
	return c.Now()
}

// badStamp bypasses the injected clock for the wall clock.
func badStamp() time.Time {
	return time.Now() // want `time.Now in simulation package repro/internal/wan`
}

// badRoundDuration measures a round against the wall clock instead of
// the simulation clock.
func badRoundDuration(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in simulation package`
}

// badPace couples the round loop to the host scheduler.
func badPace(interval time.Duration) {
	time.Sleep(interval) // want `time.Sleep in simulation package`
}
