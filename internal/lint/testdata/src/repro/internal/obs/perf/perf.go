// Fixture: internal/obs/perf is the wall-clock side channel — the one
// package under the forbidden internal/obs tree that is *exempt* from
// the nowalltime rule (wallClockExempt), because measuring wall
// latency into a segregated artifact is its entire purpose. No // want
// comments here: every wall-clock read below must pass.
package perf

import "time"

// Phase times a region against the wall clock: the exemption's
// canonical use.
func Phase() func() time.Duration {
	t0 := time.Now()
	return func() time.Duration {
		return time.Since(t0)
	}
}

// Stamp reads the wall clock directly: also clean here, and only here.
func Stamp() time.Time {
	return time.Now()
}
