// Fixture: the HTTP serving layer also lives under internal/obs, so
// nowalltime covers it — but its goroutines talk to live HTTP
// clients, where wall time is legitimately the point (SSE heartbeats,
// shutdown deadlines). Those uses carry a same-line //nolint with a
// justification; anything without one is flagged.
package serve

import "time"

// heartbeat paces SSE keep-alives for a live client: wall time is
// correct here and the suppression says why.
func heartbeat(interval time.Duration) *time.Ticker {
	return time.NewTicker(interval) //nolint:nowalltime // SSE keep-alive for a live HTTP client; no simulation state involved
}

// badDeadline reads the wall clock without a justification.
func badDeadline() time.Time {
	return time.Now() // want `time.Now in simulation package repro/internal/obs/serve`
}

// badRetry schedules a reconnect timer without a justification.
func badRetry(backoff time.Duration) *time.Timer {
	return time.NewTimer(backoff) // want `time.NewTimer in simulation package`
}
