// Fixture: the alert engine lives under internal/obs, so the
// nowalltime rule covers it via segment matching ("internal/obs"
// matches repro/internal/obs/alert and every other subpackage).
// Alerts must stamp fires with simulation time — a wall-clock read
// here would make same-seed runs disagree on when an alert fired.
package alert

import "time"

// clock is the injected sim-clock shape alerts read from.
type clock interface {
	Now() time.Duration
}

// fire records an alert against the injected clock: clean.
func fire(c clock) time.Duration {
	return c.Now()
}

// badFire stamps the alert with the wall clock.
func badFire() time.Time {
	return time.Now() // want `time.Now in simulation package repro/internal/obs/alert`
}

// badSustain waits out a sustain window on the host scheduler instead
// of counting simulation rounds.
func badSustain(window time.Duration) {
	time.Sleep(window) // want `time.Sleep in simulation package`
}

// badDebounce schedules a resolve against the wall clock.
func badDebounce(quiet time.Duration) <-chan time.Time {
	return time.After(quiet) // want `time.After in simulation package`
}
