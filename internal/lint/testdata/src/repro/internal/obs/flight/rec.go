// Fixture: the flight recorder lives under internal/obs, so the
// nowalltime rule covers it via segment matching. Frames and the log
// trailer must be a pure function of simulation state — a wall-clock
// stamp in a frame would break replay byte-identity and make bisect
// report phantom divergences between identical runs.
package flight

import "time"

// frame is a cut-down round record for the fixture.
type frame struct {
	round int
	simNs int64
}

// record stamps a frame with the simulation round only: clean.
func record(round int, simClock func() time.Duration) frame {
	return frame{round: round, simNs: simClock().Nanoseconds()}
}

// badRecord stamps a frame with the wall clock.
func badRecord(round int) (frame, time.Time) {
	return frame{round: round}, time.Now() // want `time.Now in simulation package repro/internal/obs/flight`
}

// badFlush ticks the log writer on host time instead of round count.
func badFlush() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick in simulation package`
}
