// Negative case: internal/bvt drives real (simulated-hardware)
// reconfiguration delays; sleeping is legitimate driver behavior.
package bvt

import "time"

func SettleDelay() {
	time.Sleep(50 * time.Millisecond)
}
