// Fixture: seriesdup1 — the canonical (first-analyzed) half of the
// cross-package namespace test. These registrations define the
// module-wide meaning of each name; this package is clean.
package seriesdup1

import obs "seriesobs/internal/obs"

func Register(r *obs.Registry) {
	r.Counter("shared_total", "shared things, canonical registration")
	r.Counter("helpful_total", "original help text")
}
