package lint

import (
	"go/ast"
	"go/types"
)

// wallClockPackages are the package-path segment patterns in which
// wall-clock reads are forbidden: the simulation and experiment
// packages whose outputs must depend only on the seed and the inputs.
// internal/telemetry and internal/bvt are deliberately absent — they
// are driver/collector code for which wall-clock time is the point —
// as are cmd/ and examples/.
var wallClockForbidden = []string{
	"internal/snr",
	"internal/dataset",
	"internal/experiments",
	"internal/core",
	"internal/te",
	"internal/scenario",
	"internal/graph",
	"internal/controller",
	"internal/wan",
	// internal/obs matches the whole observability tree — obs itself
	// plus obs/olog, obs/alert, and obs/serve — via pathHasSegments.
	// Trace timestamps, log stamps, and alert fire times must all be
	// simulation time; the serving layer's live-client goroutines
	// (SSE heartbeats) opt out per line with a justified //nolint.
	"internal/obs",
}

// wallClockExempt carves packages back out of wallClockForbidden.
// internal/obs/perf is the wall-clock side channel by design — its
// entire purpose is measuring wall latency into a segregated artifact
// that never touches deterministic outputs — so a per-line //nolint on
// every time.Now would be noise, not signal. The exemption is the
// narrowest possible: exactly this package, checked by full segment
// match, so instrumented solver/simulation code (internal/graph,
// internal/wan, the rest of internal/obs) stays covered.
var wallClockExempt = []string{
	"internal/obs/perf",
}

// wallClockFuncs are the time-package functions that read or schedule
// against the wall clock. time.Duration arithmetic and constants
// (time.Hour, d.Seconds(), …) remain free: they are pure values.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// NoWallTime forbids wall-clock reads in simulation packages.
// Simulated time advances by sample index (snr.SampleInterval per
// step); a stray time.Now makes a run irreproducible and a
// time.Sleep couples experiment duration to the host scheduler.
var NoWallTime = &Analyzer{
	Name: "nowalltime",
	Doc: "forbid time.Now/time.Sleep (and derived wall-clock helpers) in " +
		"simulation and experiment packages; simulated time advances by sample index",
	Run: runNoWallTime,
}

func runNoWallTime(pass *Pass) error {
	for _, seg := range wallClockExempt {
		if pathHasSegments(pass.Pkg.Path(), seg) {
			return nil
		}
	}
	forbidden := false
	for _, seg := range wallClockForbidden {
		if pathHasSegments(pass.Pkg.Path(), seg) {
			forbidden = true
			break
		}
	}
	if !forbidden {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			if pass.InTestFile(sel.Pos()) {
				// Tests may time themselves; determinism of the
				// simulation outputs is asserted separately.
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s in simulation package %s; derive time from the sample index (snr.SampleInterval) so runs replay bit-for-bit",
				sel.Sel.Name, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
