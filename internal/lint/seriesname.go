package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// SeriesName governs the obs naming namespace module-wide. Every
// metric, trace-event, and alert-rule name must be a compile-time
// constant (greppable, and present in artifacts exactly as written)
// in the house style:
//
//   - metric names: snake_case ([a-z][a-z0-9_]*), the Prometheus
//     convention the exporter assumes;
//   - trace event/span names: dot-separated snake_case segments
//     ("wan.round", "alert.fire");
//   - alert rule names: snake_case.
//
// Each pass exports every registration site as a module fact; the
// Finish pass then checks the namespace globally: one name must mean
// one series — registering the same name with a different kind
// (Counter vs Gauge) or a different help string anywhere in the
// module is a collision or a typo'd near-duplicate, the class of bug
// that silently splits a series across packages and breaks
// rwc-obsdiff totals. Re-registering an identical (kind, help) pair
// is the normal get-or-create idiom and stays legal.
//
// The exporter package itself (the exact path internal/obs, whose
// wrappers forward caller-supplied names) and _test.go files (scratch
// registries) are exempt.
var SeriesName = &Analyzer{
	Name: "seriesname",
	Doc: "metric/trace/alert names must be literal snake_case constants and " +
		"mean one series module-wide (no cross-package kind/help conflicts)",
	Run:    runSeriesName,
	Finish: finishSeriesName,
}

var (
	metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	traceNameRE  = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)
)

// metricMethods maps obs registration method names to the series kind
// they create.
var metricMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Histogram": "histogram",
}

// traceMethods are obs methods whose first argument names a trace
// event or span.
var traceMethods = map[string]bool{
	"Event": true, "Begin": true, "Span": true,
}

func runSeriesName(pass *Pass) error {
	if isObsCorePackage(pass.Pkg.Path()) {
		// The registry/tracer implementation forwards caller-supplied
		// names; sites are checked at the callers.
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRegistrationCall(pass, n)
			case *ast.CompositeLit:
				checkAlertRuleLit(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkRegistrationCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !pathHasSegments(fn.Pkg().Path(), "internal/obs") {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || len(call.Args) == 0 {
		return
	}
	if kind, ok := metricMethods[fn.Name()]; ok {
		name, lit := constString(pass, call.Args[0])
		if !lit {
			pass.Reportf(call.Args[0].Pos(),
				"metric name passed to %s must be a compile-time constant so the obs namespace is greppable and checkable", fn.Name())
			return
		}
		if !metricNameRE.MatchString(name) {
			pass.Reportf(call.Args[0].Pos(),
				"metric name %q is not snake_case ([a-z][a-z0-9_]*)", name)
			return
		}
		help := ""
		if len(call.Args) > 1 {
			if h, ok := constString(pass, call.Args[1]); ok {
				help = h
			}
		}
		pass.ExportModuleFact("metric", name+"\x00"+kind+"\x00"+help, call.Args[0].Pos())
		return
	}
	if traceMethods[fn.Name()] {
		name, lit := constString(pass, call.Args[0])
		if !lit {
			pass.Reportf(call.Args[0].Pos(),
				"trace event name passed to %s must be a compile-time constant", fn.Name())
			return
		}
		if !traceNameRE.MatchString(name) {
			pass.Reportf(call.Args[0].Pos(),
				"trace event name %q is not dot-separated snake_case", name)
			return
		}
		pass.ExportModuleFact("trace", name+"\x00event\x00", call.Args[0].Pos())
	}
}

// checkAlertRuleLit validates Name fields of alert Rule composite
// literals (type Rule declared under internal/obs).
func checkAlertRuleLit(pass *Pass, lit *ast.CompositeLit) {
	t := pass.Info.TypeOf(lit)
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Rule" || obj.Pkg() == nil || !pathHasSegments(obj.Pkg().Path(), "internal/obs") {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Name" {
			continue
		}
		name, isConst := constString(pass, kv.Value)
		if !isConst {
			pass.Reportf(kv.Value.Pos(), "alert rule name must be a compile-time constant")
			continue
		}
		if !metricNameRE.MatchString(name) {
			pass.Reportf(kv.Value.Pos(), "alert rule name %q is not snake_case", name)
			continue
		}
		pass.ExportModuleFact("alert", name+"\x00rule\x00", kv.Value.Pos())
	}
}

// finishSeriesName checks the collected namespace globally: within
// each namespace (metric/trace/alert), every registration of a name
// must agree with the canonical (first-registered) kind and help.
func finishSeriesName(mp *ModulePass) error {
	type owner struct {
		kind, help, pkg string
	}
	canon := map[string]owner{} // "namespace\x00name" → first registration
	for _, f := range mp.Facts() {
		parts := strings.SplitN(f.Data, "\x00", 3)
		if len(parts) != 3 {
			return fmt.Errorf("seriesname: malformed fact %q", f.Data)
		}
		name, kind, help := parts[0], parts[1], parts[2]
		key := f.Kind + "\x00" + name
		first, seen := canon[key]
		if !seen {
			canon[key] = owner{kind: kind, help: help, pkg: f.Pkg}
			continue
		}
		if first.kind != kind {
			mp.Reportf(f.Pos,
				"%s name %q re-registered as %s; first registered as %s in %s — one name must mean one series module-wide",
				f.Kind, name, kind, first.kind, first.pkg)
			continue
		}
		if f.Kind == "metric" && help != "" && first.help != "" && help != first.help {
			mp.Reportf(f.Pos,
				"metric %q registered with conflicting help text (first registration in %s says %q); align the help strings or rename the series",
				name, first.pkg, truncate(first.help, 60))
		}
	}
	return nil
}

// constString resolves a compile-time constant string expression.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isObsCorePackage reports whether path is exactly the internal/obs
// package (not a subpackage).
func isObsCorePackage(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
