package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer gets at least one fixture package with positive
// (// want) and negative cases; the path-policy analyzers get extra
// fixture packages proving the allow/exempt lists.

func TestNoRandGlobal(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoRandGlobal, "norandglobal")
}

func TestNoRandGlobalExemptsRNGPackage(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoRandGlobal, "repro/internal/rng")
}

func TestNoWallTime(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallTime, "repro/internal/snr")
}

func TestNoWallTimeRejectsInstrumentedWan(t *testing.T) {
	// An obs-instrumented simulation package: the injected-clock shapes
	// (Set/Now on a sim clock) are clean; direct time.* reads are not.
	linttest.Run(t, "testdata", lint.NoWallTime, "repro/internal/wan")
}

func TestNoWallTimeRejectsObsAlert(t *testing.T) {
	// internal/obs coverage extends to subpackages: the alert engine
	// must stamp fires with simulation time, never the wall clock.
	linttest.Run(t, "testdata", lint.NoWallTime, "repro/internal/obs/alert")
}

func TestNoWallTimeRejectsObsFlight(t *testing.T) {
	// The flight recorder is covered too: frames and the log trailer
	// must be pure functions of simulation state, or replay
	// byte-identity and bisect both break.
	linttest.Run(t, "testdata", lint.NoWallTime, "repro/internal/obs/flight")
}

func TestNoWallTimeObsServeRequiresNolint(t *testing.T) {
	// The HTTP serving layer is also covered, but its live-client
	// goroutines may read wall time behind a same-line, justified
	// //nolint:nowalltime; unsuppressed reads are still flagged.
	linttest.Run(t, "testdata", lint.NoWallTime, "repro/internal/obs/serve")
}

func TestNoWallTimeExemptsObsPerf(t *testing.T) {
	// internal/obs/perf is the wall-clock side channel: the one package
	// carved out of the internal/obs coverage (wallClockExempt). Its
	// fixture reads the wall clock freely and expects zero findings.
	linttest.Run(t, "testdata", lint.NoWallTime, "repro/internal/obs/perf")
}

func TestNoWallTimeRejectsInstrumentedGraph(t *testing.T) {
	// The perf exemption must not leak into the instrumented solver:
	// work accounting in internal/graph stays deterministic integers,
	// and direct time.* reads are still flagged.
	linttest.Run(t, "testdata", lint.NoWallTime, "repro/internal/graph")
}

func TestNoWallTimeAllowsTelemetry(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallTime, "repro/internal/telemetry")
}

func TestNoWallTimeAllowsBVT(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallTime, "repro/internal/bvt")
}

func TestNoFloatEq(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoFloatEq, "nofloateq")
}

func TestUnitMix(t *testing.T) {
	linttest.Run(t, "testdata", lint.UnitMix, "unitmix")
}

func TestMapIter(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapIter, "mapiter")
}

func TestMapIterCrossPackageFacts(t *testing.T) {
	// mapiterdep.Keys exports a return-taint fact when its package is
	// analyzed; mapiteruse imports it and must inherit the taint even
	// though no map literal appears in the consumer.
	linttest.RunWithDeps(t, "testdata", lint.MapIter,
		[]string{"mapiterdep"}, "mapiteruse")
}

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, "testdata", lint.GoroLeak, "goroleak")
}

func TestChanOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.ChanOrder, "chanorder")
}

func TestSeriesName(t *testing.T) {
	// The fake obs core loads first so registration methods resolve;
	// the core itself is exempt, the consumer is fully checked, and the
	// intra-package kind/help conflicts exercise the Finish pass.
	linttest.RunWithDeps(t, "testdata", lint.SeriesName,
		[]string{"seriesobs/internal/obs"}, "seriesuse")
}

func TestSeriesNameCrossPackage(t *testing.T) {
	// seriesdup1 registers first and owns the names; seriesdup2's
	// conflicting registrations are reported with seriesdup1 named as
	// the canonical site — the module-wide facts path.
	linttest.RunWithDeps(t, "testdata", lint.SeriesName,
		[]string{"seriesobs/internal/obs", "seriesdup1"}, "seriesdup2")
}

func TestNolintPolicy(t *testing.T) {
	linttest.Run(t, "testdata", lint.NolintPolicy, "nolintpolicy")
}

func TestAllIsTheFullSuite(t *testing.T) {
	names := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely declared", a)
		}
		if names[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"norandglobal", "nowalltime", "nofloateq", "unitmix",
		"mapiter", "goroleak", "chanorder", "seriesname", "nolintpolicy",
	} {
		if !names[want] {
			t.Fatalf("suite is missing %q", want)
		}
	}
}
