package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path diagnostics and per-package policies
	// key on (e.g. "repro/internal/snr").
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source. All packages
// loaded through one Loader share a FileSet and an importer cache, so
// common dependencies are type-checked once per run.
//
// It uses the stdlib "source" importer, which compiles dependencies
// from source via go/build: no export data, vendored x/tools, or
// network access is needed, only the go toolchain itself. Packages
// already loaded through this Loader shadow the source importer:
// when the driver loads the module in import order, every module
// import resolves to the exact *types.Package that was analyzed, so
// a types.Object seen by a caller is identical to the one its
// defining package exported facts about. (This is what makes
// cross-package fact lookup — mapiter taint through an exported
// helper — work without an object-path encoding.)
type Loader struct {
	fset  *token.FileSet
	imp   types.Importer
	cache map[string]*types.Package
}

// NewLoader returns a ready Loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:  fset,
		imp:   importer.ForCompiler(fset, "source", nil),
		cache: map[string]*types.Package{},
	}
}

// Import implements types.Importer, preferring packages this Loader
// already type-checked over the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	return l.imp.Import(path)
}

// Fset returns the shared FileSet for position rendering.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadFiles parses the named files as one package with the given
// import path and type-checks them. Type errors are fatal: analyzers
// assume a well-typed tree.
func (l *Loader) LoadFiles(path string, filenames []string) (*Package, error) {
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lint: package %s has no files", path)
	}
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-check %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	if _, ok := l.cache[path]; !ok {
		// First group under this path wins (the package proper); an
		// external _test group re-checks the same path and must not
		// shadow it.
		l.cache[path] = tpkg
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadDir loads every .go file directly inside dir (including
// _test.go files of the same package) as the package with the given
// import path. Files with a package clause different from the
// majority package (external _test packages) are split out and
// type-checked as a separate Package with the same import path, so
// path-keyed policies apply to both halves.
func (l *Loader) LoadDir(path, dir string) ([]*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	byPkgName := map[string][]string{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		name, err := packageClause(full)
		if err != nil {
			return nil, err
		}
		byPkgName[name] = append(byPkgName[name], full)
	}
	if len(byPkgName) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// Load the non-test package first so the source importer can
	// resolve it before an external test package imports it.
	names := make([]string, 0, len(byPkgName))
	for name := range byPkgName {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ti, tj := strings.HasSuffix(names[i], "_test"), strings.HasSuffix(names[j], "_test")
		if ti != tj {
			return !ti
		}
		return names[i] < names[j]
	})
	var pkgs []*Package
	for _, name := range names {
		files := byPkgName[name]
		sort.Strings(files)
		pkg, err := l.LoadFiles(path, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// packageClause returns the package name declared in the file without
// parsing the whole body.
func packageClause(filename string) (string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, nil, parser.PackageClauseOnly)
	if err != nil {
		return "", fmt.Errorf("lint: parse %s: %w", filename, err)
	}
	return f.Name.Name, nil
}
