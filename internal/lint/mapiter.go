package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// MapIter is the determinism-taint analyzer. Go map iteration order
// is deliberately randomized, so any value whose *order* derives from
// `range` over a map must pass through an explicit sort before it
// reaches an artifact sink (prints, io writes, obs registry/tracer
// writes, flight frames) — otherwise two same-seed runs emit
// different bytes and the replay/bisect/audit chain (PRs 2–5)
// breaks at the source.
//
// The analysis is a forward taint pass over each function body in
// statement order:
//
//   - source: `for k, v := range m` where m is map-typed. Sink calls
//     lexically inside the body are flagged directly; slices built
//     inside the body (append, or indexed stores of the loop vars)
//     become map-ordered.
//   - sanitizer: sort.* / slices.Sort* applied to a map-ordered
//     value clears its taint.
//   - sink: an artifactSink call with a map-ordered argument, or any
//     sink inside a range over a map-ordered slice.
//
// It is interprocedural via facts: a function returning a map-ordered
// slice exports a "returns" fact (per result index), and calls to it
// — from this package or, through the committed fact store, from any
// importing package — are taint sources at the call site. In-package
// propagation iterates to a fixpoint first, so helper order within a
// file does not matter.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "values ordered by `range` over a map must be sorted before reaching " +
		"an artifact sink (obs registry/tracer, flight frames, prints, io writes); " +
		"taint propagates through function returns across packages",
	Run: runMapIter,
}

const mapIterReturnsFact = "returns"

func runMapIter(pass *Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Fixpoint over same-package return-taint: a helper may feed a
	// helper, so re-run until the local fact set stops growing.
	local := map[*types.Func]string{}
	for round := 0; round < len(decls)+1; round++ {
		grew := false
		for fn, fd := range decls {
			if _, done := local[fn]; done {
				continue
			}
			w := &mapIterWalker{pass: pass, local: local, report: false}
			w.walkBody(fd.Body)
			if len(w.taintedResults) > 0 {
				local[fn] = encodeResultSet(w.taintedResults)
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	for fn, data := range local {
		pass.ExportObjectFact(fn, mapIterReturnsFact, data)
	}

	// Reporting pass, now with complete local + imported facts.
	for _, fd := range decls {
		w := &mapIterWalker{pass: pass, local: local, report: true}
		w.walkBody(fd.Body)
	}
	return nil
}

// encodeResultSet renders a set of result indices as "0,2".
func encodeResultSet(set map[int]bool) string {
	idx := make([]int, 0, len(set))
	for i := range set {
		idx = append(idx, i)
	}
	for i := 0; i < len(idx); i++ { // insertion sort; sets are tiny
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func decodeResultSet(data string, i int) bool {
	for _, p := range strings.Split(data, ",") {
		if p == strconv.Itoa(i) {
			return true
		}
	}
	return false
}

// mapIterWalker carries the per-function taint state. Taint is a set
// of objects (variables) whose element order derives from map
// iteration; control flow is approximated by walking statements in
// source order and never clearing taint at branch merges (only sorts
// clear taint), which is conservative but precise enough in practice.
type mapIterWalker struct {
	pass   *Pass
	local  map[*types.Func]string
	report bool

	tainted        map[types.Object]bool
	taintedResults map[int]bool
}

func (w *mapIterWalker) taint(obj types.Object) {
	if obj == nil {
		return
	}
	if w.tainted == nil {
		w.tainted = map[types.Object]bool{}
	}
	w.tainted[obj] = true
}

func (w *mapIterWalker) untaint(obj types.Object) {
	if obj != nil && w.tainted != nil {
		delete(w.tainted, obj)
	}
}

func (w *mapIterWalker) walkBody(body *ast.BlockStmt) {
	for _, s := range body.List {
		w.stmt(s)
	}
}

func (w *mapIterWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkBody(s)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Body)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					w.stmt(cs)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					w.stmt(cs)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, cs := range cc.Body {
					w.stmt(cs)
				}
			}
		}
	case *ast.RangeStmt:
		w.rangeStmt(s)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.ExprStmt:
		w.exprStmt(s.X)
	case *ast.DeferStmt:
		w.sinkCheck(s.Call)
		w.sortCheck(s.Call)
	case *ast.GoStmt:
		w.sinkCheck(s.Call)
	case *ast.ReturnStmt:
		for i, res := range s.Results {
			if w.exprTainted(res) {
				if w.taintedResults == nil {
					w.taintedResults = map[int]bool{}
				}
				w.taintedResults[i] = true
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) && w.exprTainted(vs.Values[i]) {
						w.taint(w.pass.Info.Defs[name])
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// rangeStmt handles the two taint sources: range over a map, and
// range over an already-tainted (map-ordered) value.
func (w *mapIterWalker) rangeStmt(s *ast.RangeStmt) {
	t := w.pass.Info.TypeOf(s.X)
	_, overMap := typeUnder(t).(*types.Map)
	ordered := overMap || w.exprTainted(s.X)
	if !ordered {
		w.stmt(s.Body)
		return
	}
	src := "range over map"
	if !overMap {
		src = "range over map-ordered value"
	}
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := w.pass.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := w.pass.Info.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	w.rangeBody(s.Body, src, loopVars)
}

// rangeBody walks an order-tainted loop body: sinks are flagged,
// values accumulated from the body become tainted.
func (w *mapIterWalker) rangeBody(body *ast.BlockStmt, src string, loopVars map[types.Object]bool) {
	for _, s := range body.List {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if sink, ok := artifactSink(w.pass, call); ok {
					w.reportf(call.Pos(),
						"%s inside %s: iteration order is nondeterministic; collect into a slice and sort before writing the artifact",
						sink, src)
					continue
				}
			}
			w.exprStmt(s.X)
		case *ast.AssignStmt:
			w.loopAssign(s, loopVars)
		case *ast.BlockStmt:
			w.rangeBody(s, src, loopVars)
		case *ast.IfStmt:
			w.rangeBody(s.Body, src, loopVars)
			if els, ok := s.Else.(*ast.BlockStmt); ok {
				w.rangeBody(els, src, loopVars)
			}
		case *ast.RangeStmt:
			// A nested range inherits the ordered context: its body is
			// still executed in outer-map order.
			w.rangeBody(s.Body, src, loopVars)
		case *ast.ForStmt:
			w.rangeBody(s.Body, src, loopVars)
		default:
			w.stmt(s)
		}
	}
}

// loopAssign processes an assignment inside an order-tainted loop:
// appends and indexed stores leak the iteration order into the
// target; everything else falls through to the normal rules.
func (w *mapIterWalker) loopAssign(s *ast.AssignStmt, loopVars map[types.Object]bool) {
	for i, rhs := range s.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppend(w.pass, call) {
			if i < len(s.Lhs) {
				w.taint(w.rootObj(s.Lhs[i]))
			}
			continue
		}
	}
	// keys[i] = k inside the loop: the slice records iteration order.
	for _, lhs := range s.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		if _, isSlice := typeUnder(w.pass.Info.TypeOf(idx.X)).(*types.Slice); !isSlice {
			continue
		}
		if exprMentions(w.pass, s.Rhs, loopVars) || exprMentions(w.pass, []ast.Expr{idx.Index}, loopVars) {
			w.taint(w.rootObj(idx.X))
		}
	}
	w.assign(s)
}

func (w *mapIterWalker) assign(s *ast.AssignStmt) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			obj := w.rootObj(s.Lhs[i])
			if obj == nil {
				continue
			}
			if w.exprTainted(s.Rhs[i]) {
				w.taint(obj)
			} else if _, isIndex := ast.Unparen(s.Lhs[i]).(*ast.IndexExpr); !isIndex {
				// Whole-variable overwrite with clean data clears taint;
				// an element store does not.
				w.untaint(obj)
			}
		}
		return
	}
	// Multi-value RHS (call, map lookup): be conservative.
	anyTainted := false
	for _, rhs := range s.Rhs {
		if w.exprTainted(rhs) {
			anyTainted = true
		}
	}
	if anyTainted {
		for _, lhs := range s.Lhs {
			w.taint(w.rootObj(lhs))
		}
	}
}

func (w *mapIterWalker) exprStmt(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if w.sortCheck(call) {
		return
	}
	w.sinkCheck(call)
}

// sortCheck clears taint when call is a recognized sort applied to a
// tainted value. It reports true if call was a sort.
func (w *mapIterWalker) sortCheck(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := w.pass.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "sort":
		switch sel.Sel.Name {
		case "Sort", "Stable", "Strings", "Ints", "Float64s", "Slice", "SliceStable":
		default:
			return false
		}
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc":
		default:
			return false
		}
	default:
		return false
	}
	if len(call.Args) > 0 {
		w.untaint(w.rootObj(call.Args[0]))
	}
	return true
}

// sinkCheck reports a diagnostic when a tainted value is passed to an
// artifact sink.
func (w *mapIterWalker) sinkCheck(call *ast.CallExpr) {
	sink, ok := artifactSink(w.pass, call)
	if !ok {
		return
	}
	for _, arg := range call.Args {
		if w.exprTainted(arg) {
			w.reportf(arg.Pos(),
				"map-ordered value reaches %s without an intervening sort; same-seed runs will emit different bytes",
				sink)
			return
		}
	}
}

// exprTainted reports whether e evaluates to a map-ordered value.
func (w *mapIterWalker) exprTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.Info.Uses[e]
		if obj == nil {
			obj = w.pass.Info.Defs[e]
		}
		return w.tainted[obj]
	case *ast.IndexExpr:
		return w.exprTainted(e.X)
	case *ast.SliceExpr:
		return w.exprTainted(e.X)
	case *ast.CallExpr:
		if isAppend(w.pass, e) {
			for _, a := range e.Args {
				if w.exprTainted(a) {
					return true
				}
			}
			return false
		}
		if isConversion(w.pass, e) && len(e.Args) == 1 {
			return w.exprTainted(e.Args[0])
		}
		return w.callReturnsTainted(e)
	case *ast.UnaryExpr:
		return w.exprTainted(e.X)
	}
	return false
}

// callReturnsTainted consults the taint facts — local fixpoint
// results for this package, the committed store for imports — for
// the called function's first result.
func (w *mapIterWalker) callReturnsTainted(call *ast.CallExpr) bool {
	fn := calleeFunc(w.pass, call)
	if fn == nil {
		return false
	}
	if data, ok := w.local[fn]; ok {
		return decodeResultSet(data, 0)
	}
	if data, ok := w.pass.ObjectFact(fn, mapIterReturnsFact); ok {
		return decodeResultSet(data, 0)
	}
	return false
}

func (w *mapIterWalker) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := w.pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return w.pass.Info.Defs[x]
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			if isConversion(w.pass, x) && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil
		case *ast.SelectorExpr:
			// x.f: track the selected field/var object itself.
			if obj := w.pass.Info.Uses[x.Sel]; obj != nil {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}

func (w *mapIterWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.report {
		w.pass.Reportf(pos, format, args...)
	}
}

// typeUnder is types.Type.Underlying tolerant of nil.
func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// isAppend reports whether call is the append builtin.
func isAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isConversion reports whether call is a type conversion T(x).
func isConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// indirect calls, builtins, and conversions.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// exprMentions reports whether any expression references one of the
// given objects.
func exprMentions(pass *Pass, exprs []ast.Expr, objs map[types.Object]bool) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && objs[obj] {
					found = true
				}
			}
			return true
		})
	}
	return found
}
