package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/par"
)

// Analyzer is one named check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so analyzers written here
// can be ported to the x/tools multichecker mechanically if the
// dependency ever becomes available; the Facts mechanism mirrors
// analysis facts, restricted to string payloads.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nolint:<name> suppression comments. It must be a valid
	// identifier.
	Name string
	// Doc is a one-paragraph description shown by `rwc-lint -list`.
	Doc string
	// Run performs the check on one package and reports findings
	// through the pass. Packages are analyzed in import order, so
	// Run may consume object facts exported by the pass's
	// (transitive) dependencies.
	Run func(*Pass) error
	// Finish, if non-nil, runs once after every package has been
	// analyzed, with all of this analyzer's module facts. It is the
	// hook for module-wide invariants no single package can see
	// (e.g. cross-package series-name collisions).
	Finish func(*ModulePass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic

	// facts is the read-only store committed by earlier levels;
	// newObjFacts/newModFacts buffer this pass's exports until the
	// level barrier commits them.
	facts       *factStore
	newObjFacts []exportedObjFact
	newModFacts []ModuleFact
	pkgOrder    int
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer,
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// All returns the full rwc-lint suite in stable order. Every analyzer
// listed here runs under `make lint` and must hold repo-wide.
func All() []*Analyzer {
	return []*Analyzer{
		NoRandGlobal, NoWallTime, NoFloatEq, UnitMix,
		MapIter, GoroLeak, ChanOrder, SeriesName, NolintPolicy,
	}
}

// pathHasSegments reports whether the slash-separated package path
// contains want as a consecutive run of segments. It is the matcher
// behind every per-package allow/forbid list, so that e.g.
// "internal/te" matches "repro/internal/te" and any of its
// sub-packages but never "repro/internal/telemetry".
func pathHasSegments(path, want string) bool {
	return strings.Contains("/"+path+"/", "/"+want+"/")
}

// nolintRE matches suppression comments: //nolint:name1,name2 with an
// optional trailing justification.
var nolintRE = regexp.MustCompile(`^//\s*nolint:([a-zA-Z0-9_,]+)`)

// nolintLines maps file name → line → set of suppressed analyzer
// names ("all" suppresses everything).
type nolintLines map[string]map[int]map[string]bool

func collectNolint(fset *token.FileSet, files []*ast.File) nolintLines {
	out := nolintLines{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := nolintRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					out[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[pos.Line] = names
				}
				for _, n := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(n)] = true
				}
			}
		}
	}
	return out
}

func (n nolintLines) suppressed(fset *token.FileSet, d Diagnostic) bool {
	if d.Analyzer.Name == NolintPolicy.Name {
		// The suppression policy cannot be suppressed, or a reasonless
		// //nolint:all would wave itself through.
		return false
	}
	pos := fset.Position(d.Pos)
	names := n[pos.Filename][pos.Line]
	return names["all"] || names[d.Analyzer.Name]
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics sorted by position. //nolint-suppressed findings are
// dropped here so every analyzer gets suppression support for free.
// Packages are analyzed in import order so cross-package facts
// resolve; see RunParallel for the concurrent variant.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunParallel(pkgs, analyzers, 1)
}

// pkgResult is one package's buffered analysis output, merged at the
// level barrier in package-index order so results are deterministic
// for any worker count.
type pkgResult struct {
	diags    []Diagnostic
	objFacts []exportedObjFact
	modFacts []ModuleFact
}

// RunParallel is Run with per-package fan-out on an internal/par pool.
// The import graph is scheduled in topological levels: packages within
// a level share no import edges, so their passes read an identical
// committed fact store and can run concurrently; facts are committed
// between levels in package order. Diagnostics are byte-identical for
// every workers value — par.Map returns results in index order and
// the final sort is total.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	levels, err := topoLevels(pkgs)
	if err != nil {
		return nil, err
	}
	facts := newFactStore()
	var diags []Diagnostic
	for _, level := range levels {
		level := level
		results, err := par.Map(par.Opts{Workers: workers, Name: "lint"}, len(level),
			func(_, i int) (pkgResult, error) {
				return analyzePackage(pkgs[level[i]], level[i], analyzers, facts)
			})
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			diags = append(diags, res.diags...)
			for _, ef := range res.objFacts {
				facts.object[ef.obj] = append(facts.object[ef.obj], ef.fact)
			}
			facts.module = append(facts.module, res.modFacts...)
		}
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		var raw []Diagnostic
		mp := &ModulePass{Analyzer: a, Fset: fset, facts: facts.module, diags: &raw}
		if err := a.Finish(mp); err != nil {
			return nil, fmt.Errorf("lint: %s finish: %w", a.Name, err)
		}
		diags = append(diags, filterNolint(pkgs, fset, raw)...)
	}
	if fset != nil {
		sortDiagnostics(fset, diags)
	}
	return diags, nil
}

// analyzePackage runs every analyzer on one package against the
// committed fact store, buffering diagnostics and fact exports.
func analyzePackage(pkg *Package, order int, analyzers []*Analyzer, facts *factStore) (pkgResult, error) {
	var res pkgResult
	nolint := collectNolint(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
			facts:    facts,
			pkgOrder: order,
		}
		if err := a.Run(pass); err != nil {
			return res, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range raw {
			if !nolint.suppressed(pkg.Fset, d) {
				res.diags = append(res.diags, d)
			}
		}
		res.objFacts = append(res.objFacts, pass.newObjFacts...)
		res.modFacts = append(res.modFacts, pass.newModFacts...)
	}
	return res, nil
}

// filterNolint applies //nolint suppression to module-level (Finish)
// diagnostics, which are reported outside any single package's pass.
func filterNolint(pkgs []*Package, fset *token.FileSet, raw []Diagnostic) []Diagnostic {
	if len(raw) == 0 {
		return nil
	}
	merged := nolintLines{}
	for _, pkg := range pkgs {
		for file, byLine := range collectNolint(pkg.Fset, pkg.Files) {
			merged[file] = byLine
		}
	}
	var out []Diagnostic
	for _, d := range raw {
		if !merged.suppressed(fset, d) {
			out = append(out, d)
		}
	}
	return out
}

// topoLevels orders packages by their import edges (restricted to the
// given set, matched by path) and groups them into dependency levels.
// Ties keep input order, so the schedule — and with it fact commit
// order and ModuleFact.PkgOrder — is deterministic. A package whose
// path equals an earlier package's path (an external _test package)
// depends on that earlier package.
func topoLevels(pkgs []*Package) ([][]int, error) {
	first := map[string]int{}
	for i, p := range pkgs {
		if _, ok := first[p.Path]; !ok {
			first[p.Path] = i
		}
	}
	indeg := make([]int, len(pkgs))
	dependents := make([][]int, len(pkgs))
	for i, p := range pkgs {
		add := func(j int) {
			dependents[j] = append(dependents[j], i)
			indeg[i]++
		}
		if j, ok := first[p.Path]; ok && j != i {
			add(j)
		}
		for _, imp := range p.Types.Imports() {
			if j, ok := first[imp.Path()]; ok && j != i {
				add(j)
			}
		}
	}
	var levels [][]int
	done := 0
	ready := make([]bool, len(pkgs))
	for done < len(pkgs) {
		var level []int
		for i := range pkgs {
			if !ready[i] && indeg[i] == 0 {
				level = append(level, i)
			}
		}
		if len(level) == 0 {
			return nil, fmt.Errorf("lint: import cycle among %d unscheduled packages", len(pkgs)-done)
		}
		for _, i := range level {
			ready[i] = true
			done++
		}
		for _, i := range level {
			for _, j := range dependents[i] {
				indeg[j]--
			}
		}
		levels = append(levels, level)
	}
	return levels, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer.Name < diags[j].Analyzer.Name
	})
}
