package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so analyzers written here
// can be ported to the x/tools multichecker mechanically if the
// dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nolint:<name> suppression comments. It must be a valid
	// identifier.
	Name string
	// Doc is a one-paragraph description shown by `rwc-lint -list`.
	Doc string
	// Run performs the check on one package and reports findings
	// through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer,
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// All returns the full rwc-lint suite in stable order. Every analyzer
// listed here runs under `make lint` and must hold repo-wide.
func All() []*Analyzer {
	return []*Analyzer{NoRandGlobal, NoWallTime, NoFloatEq, UnitMix}
}

// pathHasSegments reports whether the slash-separated package path
// contains want as a consecutive run of segments. It is the matcher
// behind every per-package allow/forbid list, so that e.g.
// "internal/te" matches "repro/internal/te" and any of its
// sub-packages but never "repro/internal/telemetry".
func pathHasSegments(path, want string) bool {
	return strings.Contains("/"+path+"/", "/"+want+"/")
}

// nolintRE matches suppression comments: //nolint:name1,name2 with an
// optional trailing justification.
var nolintRE = regexp.MustCompile(`^//\s*nolint:([a-zA-Z0-9_,]+)`)

// nolintLines maps file name → line → set of suppressed analyzer
// names ("all" suppresses everything).
type nolintLines map[string]map[int]map[string]bool

func collectNolint(fset *token.FileSet, files []*ast.File) nolintLines {
	out := nolintLines{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := nolintRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					out[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[pos.Line] = names
				}
				for _, n := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(n)] = true
				}
			}
		}
	}
	return out
}

func (n nolintLines) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	names := n[pos.Filename][pos.Line]
	return names["all"] || names[d.Analyzer.Name]
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics sorted by position. //nolint-suppressed findings are
// dropped here so every analyzer gets suppression support for free.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		nolint := collectNolint(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range raw {
				if !nolint.suppressed(pkg.Fset, d) {
					diags = append(diags, d)
				}
			}
		}
	}
	if len(pkgs) > 0 {
		sortDiagnostics(pkgs[0].Fset, diags)
	}
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer.Name < diags[j].Analyzer.Name
	})
}
