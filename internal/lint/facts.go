package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// ObjectFact is one statement an analyzer exports about a typed
// object (usually a function): e.g. mapiter's "the slice returned by
// this function is in map-iteration order". Facts flow strictly along
// the import graph — packages are analyzed in dependency order, and a
// pass sees only facts committed by packages it (transitively)
// imports plus facts it exported itself — so fact lookup is
// deterministic regardless of how many analysis workers run.
type ObjectFact struct {
	// Analyzer is the exporting analyzer's name; lookups are scoped to
	// it so analyzers cannot read each other's facts by accident.
	Analyzer string
	// Kind discriminates fact types within one analyzer.
	Kind string
	// Data is the fact payload in an analyzer-chosen encoding.
	Data string
}

// ModuleFact is one statement an analyzer exports about the module as
// a whole, delivered to its Finish pass after every package has been
// analyzed: e.g. seriesname's "package P registers metric M with help
// H at position Pos". Module facts are accumulated in package load
// order, which the driver makes deterministic (topological, ties by
// input order), so Finish sees an identical slice every run.
type ModuleFact struct {
	Analyzer string
	Kind     string
	Data     string
	// PkgOrder is the load index of the exporting package; it gives
	// Finish passes a deterministic "who was first" order that does
	// not depend on file-system paths.
	PkgOrder int
	Pkg      string
	Pos      token.Pos
}

// factStore holds facts committed by completed analysis levels. It is
// written only at level barriers (single-threaded) and read
// concurrently by the passes of later levels, so it needs no lock.
type factStore struct {
	object map[types.Object][]ObjectFact
	module []ModuleFact
}

func newFactStore() *factStore {
	return &factStore{object: map[types.Object][]ObjectFact{}}
}

// ExportObjectFact records a fact about obj, visible to this pass's
// own lookups immediately and to later-level passes after the commit
// barrier.
func (p *Pass) ExportObjectFact(obj types.Object, kind, data string) {
	if obj == nil {
		return
	}
	p.newObjFacts = append(p.newObjFacts, exportedObjFact{
		obj:  obj,
		fact: ObjectFact{Analyzer: p.Analyzer.Name, Kind: kind, Data: data},
	})
}

// ObjectFact returns the first fact of the given kind exported about
// obj by this same analyzer — either committed by an
// already-analyzed package or exported earlier in this pass.
func (p *Pass) ObjectFact(obj types.Object, kind string) (string, bool) {
	if obj == nil {
		return "", false
	}
	for _, ef := range p.newObjFacts {
		if ef.obj == obj && ef.fact.Kind == kind && ef.fact.Analyzer == p.Analyzer.Name {
			return ef.fact.Data, true
		}
	}
	if p.facts == nil {
		return "", false
	}
	for _, f := range p.facts.object[obj] {
		if f.Analyzer == p.Analyzer.Name && f.Kind == kind {
			return f.Data, true
		}
	}
	return "", false
}

// ExportModuleFact records a module-wide fact for this analyzer's
// Finish pass.
func (p *Pass) ExportModuleFact(kind, data string, pos token.Pos) {
	p.newModFacts = append(p.newModFacts, ModuleFact{
		Analyzer: p.Analyzer.Name,
		Kind:     kind,
		Data:     data,
		PkgOrder: p.pkgOrder,
		Pkg:      p.Pkg.Path(),
		Pos:      pos,
	})
}

type exportedObjFact struct {
	obj  types.Object
	fact ObjectFact
}

// ModulePass is the view handed to an analyzer's Finish hook: every
// module fact the analyzer exported, in deterministic package-load
// order, plus a reporter. Finish diagnostics go through the same
// //nolint filtering and sorting as per-package ones.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet

	facts []ModuleFact
	diags *[]Diagnostic
}

// Facts returns this analyzer's module facts sorted by package load
// order, then position, then data — a total, deterministic order.
func (mp *ModulePass) Facts() []ModuleFact {
	out := make([]ModuleFact, 0, len(mp.facts))
	for _, f := range mp.facts {
		if f.Analyzer == mp.Analyzer.Name {
			out = append(out, f)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].PkgOrder != out[j].PkgOrder {
			return out[i].PkgOrder < out[j].PkgOrder
		}
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Data < out[j].Data
	})
	return out
}

// Reportf records a module-level diagnostic at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: mp.Analyzer,
	})
}
