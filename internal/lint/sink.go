package lint

import (
	"go/ast"
	"go/types"
)

// Artifact sinks are the calls through which a run's observable
// output leaves the program: stdout/file prints, io writes, obs
// registry/tracer/logger writes, and flight-recorder frames. The
// determinism invariant (same seed ⇒ byte-identical artifacts) is
// only violated when unordered data reaches one of these, so both
// mapiter and chanorder key their reports on this classifier.

// sinkPrintFuncs are package-level printing functions (package fmt).
var sinkPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// sinkWriteMethods are io-writing method names flagged on any
// receiver: an ordered byte stream (file, buffer, hash, JSON encoder)
// written in nondeterministic order yields nondeterministic bytes.
var sinkWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

// sinkObsMethods are method names that write observability state when
// the receiver type is declared under internal/obs: registry series
// creation and mutation (float accumulation does not commute
// bit-exactly, and gauge Set is last-write-wins), tracer events
// (sequence-numbered), logger lines (ordered stderr stream), and
// flight frames.
var sinkObsMethods = map[string]bool{
	// registry
	"Counter": true, "Gauge": true, "Histogram": true,
	"Add": true, "Inc": true, "Set": true, "Observe": true,
	// tracer
	"Event": true, "Begin": true, "Span": true, "End": true,
	// logger
	"Debug": true, "Info": true, "Warn": true, "Error": true,
	// flight recorder
	"Record": true, "Bind": true,
	// manifest
	"AddPhase": true, "AddAlert": true, "SetOption": true,
}

// artifactSink reports whether call writes to a run artifact, and a
// short human name for the sink ("fmt.Printf", "(*obs.Tracer).Event").
func artifactSink(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Package-level function: fmt.Fprintf and friends.
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.Info.Uses[ident].(*types.PkgName); ok {
			if pkgName.Imported().Path() == "fmt" && sinkPrintFuncs[sel.Sel.Name] {
				return "fmt." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	// Method call: classify by name and receiver package.
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Type() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	name := fn.Name()
	if sinkWriteMethods[name] {
		return recvName(sig) + "." + name, true
	}
	if sinkObsMethods[name] && fn.Pkg() != nil && pathHasSegments(fn.Pkg().Path(), "internal/obs") {
		return recvName(sig) + "." + name, true
	}
	return "", false
}

// recvName renders a method's receiver type compactly for messages.
func recvName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return "(" + obj.Pkg().Name() + "." + obj.Name() + ")"
		}
		return "(" + obj.Name() + ")"
	}
	return "(" + t.String() + ")"
}
