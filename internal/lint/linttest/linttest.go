// Package linttest is the analysistest-style harness for the
// rwc-lint analyzers. Fixture packages live under
// internal/lint/testdata/src/<importpath>/ and annotate expected
// findings with trailing comments of the form
//
//	x := a == b // want "float == comparison"
//
// where each quoted string is a regexp that must match the message of
// exactly one diagnostic reported on that line. Lines without a want
// comment must produce no diagnostics, so every fixture is
// simultaneously a positive and a negative test.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/lint"
)

// wantRE pulls the quoted expectation list out of a comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// stringLitRE matches one double- or back-quoted Go string literal.
var stringLitRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

type lineKey struct {
	file string
	line int
}

// Run loads the fixture package rooted at testdata/src/<pkgpath>,
// applies the analyzer, and reports any mismatch between diagnostics
// and // want expectations as test failures.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgpath string) {
	t.Helper()
	RunWithDeps(t, testdata, a, nil, pkgpath)
}

// RunWithDeps is Run with dependency fixture packages loaded (and
// analyzed) first, in the given order. Deps register in the loader's
// package cache, so the target fixture can import them by path and
// analyzer facts exported by a dep (mapiter return-taint, seriesname
// registrations) are visible when the target is analyzed — the same
// import-ordered schedule the driver uses on the real module. Want
// expectations are honored in deps and target alike.
func RunWithDeps(t *testing.T, testdata string, a *lint.Analyzer, deps []string, pkgpath string) {
	t.Helper()
	loader := lint.NewLoader()
	var pkgs []*lint.Package
	for _, dep := range append(append([]string{}, deps...), pkgpath) {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(dep))
		loaded, err := loader.LoadDir(dep, dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dep, err)
		}
		pkgs = append(pkgs, loaded...)
	}
	wants, err := collectWants(loader.Fset(), pkgs)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", pkgpath, err)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		key := lineKey{file: filepath.Base(pos.Filename), line: pos.Line}
		if !claimWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.raw)
			}
		}
	}
}

// claimWant marks the first unmatched want whose regexp matches msg.
func claimWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(fset *token.FileSet, pkgs []*lint.Package) (map[lineKey][]*want, error) {
	out := map[lineKey][]*want{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := lineKey{file: filepath.Base(pos.Filename), line: pos.Line}
					lits := stringLitRE.FindAllString(m[1], -1)
					if len(lits) == 0 {
						return nil, fmt.Errorf("%s: want comment without string literal", pos)
					}
					for _, lit := range lits {
						pattern, err := strconv.Unquote(lit)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want literal %s: %v", pos, lit, err)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
						}
						out[key] = append(out[key], &want{re: re, raw: pattern})
					}
				}
			}
		}
	}
	return out, nil
}
