// Package lint is the repository's custom static-analysis suite
// (rwc-lint): four repo-specific analyzers enforcing the determinism
// and unit-hygiene invariants the reproduction depends on.
//
// The paper's core claim (Theorem 1: min-cost max-flow on the
// augmented graph G′ ≡ max-flow under dynamic capacities) only
// reproduces if simulation runs are bit-for-bit deterministic and if
// dB and Gbps quantities never cross silently. internal/rng exists
// precisely because the math/rand global source is process-wide
// mutable state; this package is what *enforces* that discipline:
//
//   - norandglobal — forbids math/rand and math/rand/v2 outside
//     internal/rng, so every stochastic path (SNR process, failure
//     tickets, traffic matrices) is seed-threaded through
//     repro/internal/rng.
//   - nowalltime — forbids time.Now / time.Sleep (and the derived
//     wall-clock helpers time.Since, time.Until, time.After,
//     time.Tick, time.NewTimer, time.NewTicker) inside the simulation
//     and experiment packages (internal/snr, internal/dataset,
//     internal/experiments, internal/core, internal/te,
//     internal/scenario). Driver code (internal/telemetry,
//     internal/bvt, cmd/, examples/) and _test.go files may use the
//     wall clock.
//   - nofloateq — flags direct == / != between float operands in
//     non-test code, pointing at the tolerance helpers in
//     internal/stats (ApproxEqual, ApproxInDelta). Comparison against
//     an exact constant zero is allowed (zero is a sentinel, and
//     exact-zero tests are well-defined in IEEE 754).
//   - unitmix — flags call sites that pass a value derived from a
//     *dB-named identifier into a *Gbps-named (or Gbps-typed)
//     parameter, and vice versa: the class of bug that silently
//     corrupts the SNR→modulation→capacity translation in
//     internal/core and internal/qot.
//
// Any diagnostic can be suppressed on its line with a
// "//nolint:<name>" (or "//nolint:all") comment; use sparingly and
// leave a justification after the directive.
//
// The suite is deliberately built on the standard library only
// (go/ast, go/parser, go/types with the source importer) rather than
// golang.org/x/tools/go/analysis, so it builds offline with an empty
// module cache. The Analyzer / Pass / Diagnostic types mirror the
// x/tools API shape closely enough that porting an analyzer between
// the two is mechanical, and the linttest harness understands the
// same "// want" fixture convention as analysistest.
//
// Run it with `go run ./cmd/rwc-lint ./...` or `make lint`. To add an
// analyzer: implement a *lint.Analyzer, register it in All, and give
// it a fixture package under internal/lint/testdata/src with at least
// one positive ("// want") and one negative case.
package lint
