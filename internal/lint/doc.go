// Package lint is the repository's custom static-analysis suite
// (rwc-lint): nine repo-specific analyzers enforcing the determinism
// and unit-hygiene invariants the reproduction depends on.
//
// The paper's core claim (Theorem 1: min-cost max-flow on the
// augmented graph G′ ≡ max-flow under dynamic capacities) only
// reproduces if simulation runs are bit-for-bit deterministic and if
// dB and Gbps quantities never cross silently. internal/rng exists
// precisely because the math/rand global source is process-wide
// mutable state; this package is what *enforces* that discipline.
//
// AST-local analyzers:
//
//   - norandglobal — forbids math/rand and math/rand/v2 outside
//     internal/rng, so every stochastic path (SNR process, failure
//     tickets, traffic matrices) is seed-threaded through
//     repro/internal/rng.
//   - nowalltime — forbids time.Now / time.Sleep (and the derived
//     wall-clock helpers time.Since, time.Until, time.After,
//     time.Tick, time.NewTimer, time.NewTicker) inside the simulation
//     and experiment packages (internal/snr, internal/dataset,
//     internal/experiments, internal/core, internal/te,
//     internal/scenario). Driver code (internal/telemetry,
//     internal/bvt, cmd/, examples/) and _test.go files may use the
//     wall clock.
//   - nofloateq — flags direct == / != between float operands in
//     non-test code, pointing at the tolerance helpers in
//     internal/stats (ApproxEqual, ApproxInDelta). Comparison against
//     an exact constant zero is allowed (zero is a sentinel, and
//     exact-zero tests are well-defined in IEEE 754).
//   - unitmix — flags call sites that pass a value derived from a
//     *dB-named identifier into a *Gbps-named (or Gbps-typed)
//     parameter, and vice versa: the class of bug that silently
//     corrupts the SNR→modulation→capacity translation in
//     internal/core and internal/qot.
//
// Interprocedural determinism analyzers (go/types-aware, with
// cross-package facts; all treat the same artifact-sink set — fmt
// prints, io writes, obs registry/tracer/logger/flight calls — as the
// points where nondeterminism becomes observable):
//
//   - mapiter — forward taint analysis: a value whose order derives
//     from `range` over a map must pass through an explicit sort
//     (sort.*, slices.Sort*) before reaching an artifact sink. A
//     function returning a map-ordered slice exports a "returns"
//     object fact, so callers — in the same package (via an
//     in-package fixpoint) or any importing package — inherit the
//     taint through the call.
//   - goroleak — every `go` statement needs a reachable join or
//     shutdown path: a sync.WaitGroup Add/Done pair, a channel
//     receive in the goroutine body (quit channel, ctx.Done, range
//     over a channel), or a blocking call on a variable the package
//     also Closes/Shuts down (the HTTP-server shape). Bounded fan-out
//     belongs on internal/par, which joins deterministically.
//   - chanorder — an artifact sink inside a select with two or more
//     communication cases (case choice is randomized by the runtime),
//     or inside a range over a channel (fan-in arrival order), is
//     flagged; reassemble by task index à la internal/par first.
//   - seriesname — metric/trace/alert names must be compile-time
//     constant snake_case strings; every registration site exports a
//     module fact, and a Finish pass checks the namespace globally:
//     one name means one series (same kind, same help) module-wide,
//     catching cross-package duplicates and typo'd near-duplicates.
//
// Meta:
//
//   - nolintpolicy — suppressions must take the canonical form
//     `//nolint:analyzer // reason`; bare, reasonless, badly spaced,
//     and :all forms are rejected. These findings cannot themselves
//     be suppressed.
//
// # Facts and scheduling
//
// Cross-package analysis rides on two mechanisms in this package.
// Object facts (Pass.ExportObjectFact / Pass.ObjectFact) attach a
// string to a types.Object — e.g. mapiter's "returns" taint — and are
// looked up by callers in other packages; this works because the
// Loader caches type-checked packages and serves them back as the
// importer, so a caller's view of an imported function is the *same*
// object the defining package analyzed. Module facts
// (Pass.ExportModuleFact) accumulate globally and are read by an
// analyzer's Finish hook after every package has run — seriesname's
// namespace check. RunParallel analyzes packages level-by-level in
// topological import order, fanning each level out on internal/par;
// facts commit at level barriers and diagnostics are sorted at the
// end, so output is byte-identical for any -workers value — the suite
// dogfoods the invariant it enforces.
//
// Any diagnostic except nolintpolicy's can be suppressed on its line
// with `//nolint:<name> // reason`. The driver also subtracts a
// checked-in baseline file (lint.baseline.json, keyed by analyzer,
// file, and message — not line numbers); the repo's baseline is empty
// and CI asserts it stays that way.
//
// The suite is deliberately built on the standard library only
// (go/ast, go/parser, go/types with the source importer) rather than
// golang.org/x/tools/go/analysis, so it builds offline with an empty
// module cache. The Analyzer / Pass / Diagnostic types mirror the
// x/tools API shape closely enough that porting an analyzer between
// the two is mechanical, and the linttest harness understands the
// same "// want" fixture convention as analysistest.
//
// Run it with `go run ./cmd/rwc-lint ./...` or `make lint`. To add an
// analyzer: implement a *lint.Analyzer, register it in All, and give
// it a fixture package under internal/lint/testdata/src with at least
// one positive ("// want") and one negative case (linttest.RunWithDeps
// for cross-package fact fixtures).
package lint
