package lint

import (
	"regexp"
	"strings"
)

// NolintPolicy is the meta-check on suppressions. A //nolint that
// names no analyzer hides future findings of every kind, and one
// without a justification is unreviewable — six months later nobody
// knows whether the suppression is load-bearing or stale. The
// required canonical form is
//
//	//nolint:analyzer[,analyzer...] // reason
//
// with a specific analyzer list (never "all") and a non-empty reason
// after a ` // ` separator. Violations cannot themselves be
// suppressed: the framework refuses to apply //nolint to this
// analyzer's diagnostics.
var NolintPolicy = &Analyzer{
	Name: "nolintpolicy",
	Doc: "//nolint suppressions must take the form `//nolint:analyzer // reason` — " +
		"a named analyzer list and a justification; bare, reasonless, or :all forms are rejected",
	Run: runNolintPolicy,
}

// nolintAnyRE spots anything that intends to be a suppression
// directive (the lax form collectNolint also accepts, plus bare
// //nolint), so malformed variants are caught rather than silently
// ignored or silently applied.
var nolintAnyRE = regexp.MustCompile(`^//\s*nolint\b`)

// nolintCanonicalRE is the only accepted shape.
var nolintCanonicalRE = regexp.MustCompile(`^//nolint:([a-z0-9_]+(?:,[a-z0-9_]+)*) // \S`)

func runNolintPolicy(pass *Pass) error {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !nolintAnyRE.MatchString(c.Text) {
					continue
				}
				m := nolintCanonicalRE.FindStringSubmatch(c.Text)
				if m == nil {
					pass.Reportf(c.Pos(),
						"malformed suppression %q: required form is `//nolint:analyzer // reason` (named analyzers, a space-slash-slash separator, and a justification)",
						firstLine(c.Text))
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					if name == "all" {
						pass.Reportf(c.Pos(),
							"//nolint:all suppresses every analyzer including future ones; name the specific analyzers instead")
					}
				}
			}
		}
	}
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
