package controller

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/te"
)

// oscillate drives the SNR of edge 0 around a threshold for several
// rounds and returns the number of capacity-change orders issued.
func oscillate(t *testing.T, c *Controller, n [3]graph.NodeID, rounds int) int {
	t.Helper()
	demands := []te.Demand{{Src: n[0], Dst: n[2], Volume: 80}}
	changes := 0
	for round := 0; round < rounds; round++ {
		snr := 4.5 // degraded: forces 100→50
		if round%2 == 1 {
			snr = 16.0 // recovered: restore 50→100
		}
		if _, err := c.ObserveSNR(0, snr); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ObserveSNR(1, 16); err != nil {
			t.Fatal(err)
		}
		plan, err := c.Step(demands)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range plan.Orders {
			if o.Edge == 0 {
				changes++
			}
		}
	}
	return changes
}

func TestDampingSuppressesFlappingUpgrades(t *testing.T) {
	// Without damping: every oscillation produces a change (downgrade
	// then restore).
	g1, n1 := lineNet(t)
	plain := newController(t, g1, Config{})
	plainChanges := oscillate(t, plain, n1, 12)

	g2, n2 := lineNet(t)
	damped := newController(t, g2, Config{})
	damped.EnableDamping(DampingConfig{
		PenaltyPerChange:  1000,
		SuppressThreshold: 2000,
		ReuseThreshold:    500,
		DecayFactor:       0.9,
	})
	dampedChanges := oscillate(t, damped, n2, 12)

	if dampedChanges >= plainChanges {
		t.Fatalf("damping did not reduce churn: %d vs %d", dampedChanges, plainChanges)
	}
	// The damped link must park in the degraded-but-up state (50 Gbps),
	// not dark: availability is preserved while churn stops.
	cap0, err := damped.Configured(0)
	if err != nil {
		t.Fatal(err)
	}
	if cap0 != 50 {
		t.Fatalf("damped link parked at %v Gbps, want 50", cap0)
	}
	if dampedChanges < 2 {
		t.Fatalf("damping suppressed even the first downgrade: %d changes", dampedChanges)
	}
}

func TestDampingSuppressedReportsState(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{})
	c.EnableDamping(DampingConfig{PenaltyPerChange: 1000, SuppressThreshold: 1500, ReuseThreshold: 100, DecayFactor: 0.5})
	if c.Suppressed(0) {
		t.Fatal("fresh link suppressed")
	}
	oscillate(t, c, n, 4)
	if !c.Suppressed(0) {
		t.Fatal("flapping link not suppressed")
	}
	// Quiet rounds decay the penalty and un-suppress.
	demands := []te.Demand{{Src: n[0], Dst: n[2], Volume: 80}}
	for i := 0; i < 8; i++ {
		if _, err := c.ObserveSNR(0, 16); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ObserveSNR(1, 16); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Step(demands); err != nil {
			t.Fatal(err)
		}
	}
	if c.Suppressed(0) {
		t.Fatal("link still suppressed after decay")
	}
}

func TestSuppressedWithoutDamping(t *testing.T) {
	g, _ := lineNet(t)
	c := newController(t, g, Config{})
	if c.Suppressed(0) {
		t.Fatal("suppressed without damping enabled")
	}
}

func TestChangeBudgetLimitsUpgrades(t *testing.T) {
	// Two parallel 2-hop paths; demand wants upgrades on all four
	// edges, but the budget allows two per round.
	g := graph.New()
	s, a, b, d := g.AddNode("s"), g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddEdge(graph.Edge{From: s, To: a, Weight: 1})
	g.AddEdge(graph.Edge{From: a, To: d, Weight: 1})
	g.AddEdge(graph.Edge{From: s, To: b, Weight: 1})
	g.AddEdge(graph.Edge{From: b, To: d, Weight: 1})
	c := newController(t, g, Config{UpgradeHoldObservations: 1})
	c.SetMaxChangesPerRound(2)

	demands := []te.Demand{{Src: s, Dst: d, Volume: 400}}
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := c.Step(demands)
	if err != nil {
		t.Fatal(err)
	}
	upgrades := 0
	for _, o := range plan.Orders {
		if o.Kind == OrderUpgrade {
			upgrades++
		}
	}
	if upgrades > 2 {
		t.Fatalf("budget violated: %d upgrades", upgrades)
	}
	if upgrades == 0 {
		t.Fatal("budget suppressed all upgrades")
	}
	// The restricted re-run must still produce a feasible flow above
	// the no-upgrade baseline (200).
	if plan.Decision.Value <= 200 {
		t.Fatalf("budgeted plan shipped only %v", plan.Decision.Value)
	}
	// Next round the remaining upgrades can proceed.
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	plan2, err := c.Step(demands)
	if err != nil {
		t.Fatal(err)
	}
	upgrades2 := 0
	for _, o := range plan2.Orders {
		if o.Kind == OrderUpgrade {
			upgrades2++
		}
	}
	if upgrades2 == 0 {
		t.Fatal("second round did not continue the rollout")
	}
	if plan2.Decision.Value <= plan.Decision.Value {
		t.Fatalf("rollout did not increase throughput: %v then %v",
			plan.Decision.Value, plan2.Decision.Value)
	}
}

func TestChangeBudgetUnlimitedByDefault(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 1})
	for i := 0; i < 1; i++ {
		for _, e := range g.Edges() {
			if _, err := c.ObserveSNR(e.ID, 17); err != nil {
				t.Fatal(err)
			}
		}
	}
	plan, err := c.Step([]te.Demand{{Src: n[0], Dst: n[2], Volume: 200}})
	if err != nil {
		t.Fatal(err)
	}
	upgrades := 0
	for _, o := range plan.Orders {
		if o.Kind == OrderUpgrade {
			upgrades++
		}
	}
	if upgrades != 2 {
		t.Fatalf("default budget limited upgrades: %d", upgrades)
	}
}
