package controller

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/te"
)

// ConsistentPlan is the §4.2(ii) three-state update: flows that can be
// temporarily rerouted (but must not be disrupted) are moved off the
// links about to be re-modulated, the modulation changes run on idle
// links, and traffic converges to the final assignment.
type ConsistentPlan struct {
	// Final is the target state the TE chose (including upgrades).
	Final *Plan
	// Intermediate is the allocation with the to-be-updated links EU
	// removed from the topology: traffic rides it while transceivers
	// re-modulate, so no flow crosses a link mid-change.
	Intermediate *te.Allocation
	// UpdatedEdges is EU — the links whose capacity changes.
	UpdatedEdges []graph.EdgeID
	// IntermediateLoss is the throughput sacrificed during the window:
	// Final.Decision.Value − Intermediate.Throughput (≥ 0 when the
	// removed links were load-bearing).
	IntermediateLoss float64
}

// ConsistentStep runs one control-loop iteration with consistent
// updates: it computes the final plan exactly like Step, then — if any
// capacity changes — identifies EU, removes those links from the
// topology, and re-invokes the unmodified TE to obtain the
// intermediate state ("after identifying the links to be updated EU,
// we remove EU from the topology and invoke the TE controller again").
func (c *Controller) ConsistentStep(demands []te.Demand) (*ConsistentPlan, error) {
	final, err := c.Step(demands)
	if err != nil {
		return nil, err
	}
	cp := &ConsistentPlan{Final: final}
	for _, o := range final.Orders {
		cp.UpdatedEdges = append(cp.UpdatedEdges, o.Edge)
	}
	if len(cp.UpdatedEdges) == 0 {
		// Nothing re-modulates; the final state applies immediately.
		cp.Intermediate = final.Allocation
		return cp, nil
	}
	c.cfg.Obs.Counter("controller_consistent_updates_total",
		"Consistent three-state updates executed (steps with at least one re-modulated link).").Inc()

	// Build the intermediate topology: configured capacities as they
	// were BEFORE this step's orders, with EU links removed. Traffic
	// rides this while the transceivers change.
	c.cfg.Obs.Event("controller.consistent.reroute",
		obs.A("updated_edges", len(cp.UpdatedEdges)))
	inter := c.g.Clone()
	updated := make(map[graph.EdgeID]bool, len(cp.UpdatedEdges))
	for _, id := range cp.UpdatedEdges {
		updated[id] = true
	}
	for id := range updated {
		inter.SetCapacity(id, 0)
	}
	alloc, err := c.cfg.TE.Allocate(inter, demands)
	if err != nil {
		return nil, fmt.Errorf("controller: intermediate TE: %w", err)
	}
	cp.Intermediate = alloc
	cp.IntermediateLoss = final.Decision.Value - alloc.Throughput
	if cp.IntermediateLoss < 0 {
		cp.IntermediateLoss = 0
	}
	c.cfg.Obs.Event("controller.consistent.reconfigure",
		obs.A("updated_edges", len(cp.UpdatedEdges)),
		obs.A("intermediate_gbps", alloc.Throughput))
	c.cfg.Obs.Event("controller.consistent.converge",
		obs.A("final_gbps", final.Decision.Value),
		obs.A("intermediate_loss_gbps", cp.IntermediateLoss))
	return cp, nil
}
