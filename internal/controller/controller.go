// Package controller implements the operational control loop the paper
// sketches but leaves implicit: a centralized WAN controller that
// ingests per-link SNR telemetry, maintains the dynamic-capacity
// topology, periodically re-runs an unmodified TE algorithm through the
// §4 graph abstraction, and turns the TE output into transceiver
// reconfiguration orders.
//
// The controller adds the operational safeguards a deployment needs on
// top of the raw abstraction:
//
//   - hysteresis: a link must sustain the SNR for a higher rung for
//     several consecutive observations before its upgrade is offered to
//     TE (avoiding capacity oscillation on noisy links);
//   - a downgrade margin: a link flaps down as soon as SNR falls within
//     the margin of its current threshold (conservative availability);
//   - pinned flows (§4.2(i)): traffic that must not be disturbed hides
//     both its links' upgradability and its own capacity from TE;
//   - consistent updates (§4.2(ii)): a three-state plan — reroute away
//     from the links being re-modulated, reconfigure, converge — so no
//     packet crosses a link mid-change.
package controller

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/modulation"
	"repro/internal/obs"
	"repro/internal/te"
)

// OrderKind distinguishes reconfiguration causes.
type OrderKind int

const (
	// OrderForcedDowngrade is an SNR-driven flap to a lower rung (the
	// availability mechanism of §2.2).
	OrderForcedDowngrade OrderKind = iota
	// OrderUpgrade is a TE-decided capacity increase.
	OrderUpgrade
)

// String names the kind.
func (k OrderKind) String() string {
	switch k {
	case OrderForcedDowngrade:
		return "forced-downgrade"
	case OrderUpgrade:
		return "upgrade"
	default:
		return fmt.Sprintf("OrderKind(%d)", int(k))
	}
}

// Order is one modulation change the controller wants executed.
type Order struct {
	Edge     graph.EdgeID
	Kind     OrderKind
	From, To modulation.Gbps
}

// Verdict classifies what the decision pipeline concluded for one edge
// in one Step — the per-link audit trail the flight recorder surfaces.
// Exactly one verdict is recorded per edge per Step; when several
// stages touch an edge, the decisive (last-acting) stage wins.
type Verdict int

const (
	// VerdictSteady: nothing to decide — no headroom, no SNR pressure.
	VerdictSteady Verdict = iota
	// VerdictPinned: §4.2(i) pinned flow excludes the edge from changes.
	VerdictPinned
	// VerdictForcedDowngrade: SNR forced a flap to a lower rung.
	VerdictForcedDowngrade
	// VerdictRestored: SNR recovered and capacity returned toward
	// nominal (bypasses hysteresis; not a TE optimization).
	VerdictRestored
	// VerdictHysteresisHold: a higher rung is feasible but the hold
	// count has not yet qualified it, so no fake edge was offered.
	VerdictHysteresisHold
	// VerdictDamped: flap damping blocked the upgrade offer.
	VerdictDamped
	// VerdictOffered: a fake edge was offered and the solver routed no
	// flow over it — headroom available but not worth the penalty.
	VerdictOffered
	// VerdictUpgraded: the solver selected the fake edge and the
	// upgrade was committed.
	VerdictUpgraded
	// VerdictBudgetDropped: the solver selected the upgrade but the
	// per-round change budget dropped it.
	VerdictBudgetDropped
)

// String names the verdict for traces and explain output.
func (v Verdict) String() string {
	switch v {
	case VerdictSteady:
		return "steady"
	case VerdictPinned:
		return "pinned"
	case VerdictForcedDowngrade:
		return "forced-downgrade"
	case VerdictRestored:
		return "restored"
	case VerdictHysteresisHold:
		return "hysteresis-hold"
	case VerdictDamped:
		return "damped"
	case VerdictOffered:
		return "offered-idle"
	case VerdictUpgraded:
		return "upgraded"
	case VerdictBudgetDropped:
		return "budget-dropped"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Plan is the output of one control-loop iteration.
type Plan struct {
	// Orders lists modulation changes, forced downgrades first.
	Orders []Order
	// Allocation is the TE result on the augmented topology.
	Allocation *te.Allocation
	// Decision is the translated capacity/flow decision.
	Decision *core.Decision
	// Verdicts records, for every edge, what the decision pipeline
	// concluded this Step (see Verdict).
	Verdicts map[graph.EdgeID]Verdict
	// EstimatedDisruption is Σ over re-modulated links of (current
	// traffic × per-change downtime).
	EstimatedDisruption float64
}

// Config tunes the control loop.
type Config struct {
	// Ladder is the modulation ladder (default modulation.Default()).
	Ladder *modulation.Ladder
	// TE is the traffic-engineering algorithm (default te.Greedy).
	TE te.Algorithm
	// Penalty maps link state to augmentation costs (default
	// core.PenaltyTrafficProportional).
	Penalty core.PenaltyFunc
	// UpgradeHoldObservations is how many consecutive SNR observations
	// must support a higher rung before the upgrade is offered
	// (default 3).
	UpgradeHoldObservations int
	// DowngradeMargindB flaps a link down when SNR < threshold +
	// margin (default 0.5 dB).
	DowngradeMargindB float64
	// ChangeDowntime estimates per-change disruption (default 68 s;
	// set 35 ms for hitless transceivers).
	ChangeDowntime time.Duration
	// Obs receives decision traces and counters. Nil (the default)
	// disables observability at no cost: every sink method is nil-safe.
	Obs *obs.Obs
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Ladder == nil {
		c.Ladder = modulation.Default()
	}
	if c.TE == nil {
		c.TE = te.Greedy{}
	}
	if c.Penalty == nil {
		c.Penalty = core.PenaltyTrafficProportional
	}
	if c.UpgradeHoldObservations <= 0 {
		c.UpgradeHoldObservations = 3
	}
	if c.DowngradeMargindB == 0 {
		c.DowngradeMargindB = 0.5
	}
	if c.ChangeDowntime == 0 {
		c.ChangeDowntime = 68 * time.Second
	}
	return c
}

// emitOrder records one reconfiguration order on the observability
// sinks. The trace event carries everything the order itself does, so
// a trace consumer can replay exactly what the controller decided.
func (c *Controller) emitOrder(o Order) {
	c.cfg.Obs.Counter("controller_orders_total",
		"Reconfiguration orders issued by the controller, by kind.",
		obs.L("kind", o.Kind.String())).Inc()
	c.cfg.Obs.Event("controller.order",
		obs.A("edge", int(o.Edge)),
		obs.A("kind", o.Kind.String()),
		obs.A("from_gbps", float64(o.From)),
		obs.A("to_gbps", float64(o.To)))
	c.cfg.Obs.Logger().Debug("reconfiguration order",
		"edge", int(o.Edge),
		"kind", o.Kind.String(),
		"from_gbps", float64(o.From),
		"to_gbps", float64(o.To))
}

// linkState tracks one directed edge (= one wavelength, the paper's
// 1:1 mapping).
type linkState struct {
	configured modulation.Gbps
	// nominal is the baseline capacity the link is restored to (without
	// hysteresis) as soon as SNR recovers after a forced downgrade.
	// Raising capacity ABOVE nominal is an optimization and goes
	// through hysteresis + TE.
	nominal modulation.Gbps
	snrdB   float64
	// holdCount counts consecutive observations whose SNR supports a
	// rung above the configured one.
	holdCount int
	// lastFlow is the most recent TE traffic on the edge, feeding the
	// penalty function.
	lastFlow float64
	// pinned marks edges carrying undisturbable flows.
	pinned bool
	// pinnedCapacity is the capacity reserved by pinned flows.
	pinnedCapacity float64
}

// pinnedFlow is a §4.2(i) flow that must not be disturbed.
type pinnedFlow struct {
	path   graph.Path
	volume float64
}

// Controller is the control loop state.
type Controller struct {
	cfg   Config
	g     *graph.Graph // physical topology; capacities = configured
	links map[graph.EdgeID]*linkState
	pins  []pinnedFlow
	// damping and damp implement capacity-flap damping (see
	// damping.go); nil when disabled.
	damping *DampingConfig
	damp    map[graph.EdgeID]*dampState
	// maxChanges caps TE-decided upgrades per Step (0 = unlimited).
	maxChanges int
}

// New builds a controller over a physical topology whose edges start at
// the given capacity (typically 100 Gbps) with unknown (optimistic)
// SNR. Edge capacities in g are overwritten by the controller.
func New(g *graph.Graph, initial modulation.Gbps, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if g == nil {
		return nil, fmt.Errorf("controller: nil graph")
	}
	if _, ok := cfg.Ladder.ModeFor(initial); !ok {
		return nil, fmt.Errorf("controller: initial capacity %v not in ladder", initial)
	}
	c := &Controller{cfg: cfg, g: g, links: make(map[graph.EdgeID]*linkState)}
	initTh, err := cfg.Ladder.ThresholdFor(initial)
	if err != nil {
		return nil, err
	}
	for _, e := range g.Edges() {
		// Until telemetry arrives, assume the link is healthy at its
		// configured rung (threshold plus the safety margin); the first
		// real observation overwrites this.
		c.links[e.ID] = &linkState{
			configured: initial,
			nominal:    initial,
			snrdB:      initTh + cfg.DowngradeMargindB,
		}
		g.SetCapacity(e.ID, float64(initial))
	}
	return c, nil
}

// Configured returns the configured capacity of an edge.
func (c *Controller) Configured(id graph.EdgeID) (modulation.Gbps, error) {
	ls, ok := c.links[id]
	if !ok {
		return 0, fmt.Errorf("controller: unknown edge %d", int(id))
	}
	return ls.configured, nil
}

// ObserveSNR ingests one telemetry sample for an edge and updates the
// hysteresis state. It returns the forced-downgrade order the sample
// triggers, if any (the caller decides when to execute it; Step also
// collects pending downgrades).
func (c *Controller) ObserveSNR(id graph.EdgeID, snrdB float64) (*Order, error) {
	ls, ok := c.links[id]
	if !ok {
		return nil, fmt.Errorf("controller: unknown edge %d", int(id))
	}
	ls.snrdB = snrdB

	// Hysteresis accounting for upgrades: does this sample support a
	// rung above the configured one (with margin)?
	next, hasNext := c.cfg.Ladder.NextUp(ls.configured)
	if hasNext && snrdB >= next.MinSNRdB+c.cfg.DowngradeMargindB {
		ls.holdCount++
		if ls.holdCount == c.cfg.UpgradeHoldObservations {
			// Hysteresis transition: the link just qualified to offer
			// its upgrade headroom to TE.
			c.cfg.Obs.Counter("controller_hysteresis_qualified_total",
				"Links whose SNR sustained a higher rung long enough to offer the upgrade to TE.").Inc()
			c.cfg.Obs.Event("controller.hysteresis_qualified",
				obs.A("edge", int(id)),
				obs.A("snr_db", snrdB),
				obs.A("hold", ls.holdCount))
		}
	} else {
		if ls.holdCount >= c.cfg.UpgradeHoldObservations {
			c.cfg.Obs.Event("controller.hysteresis_reset",
				obs.A("edge", int(id)),
				obs.A("snr_db", snrdB))
		}
		ls.holdCount = 0
	}

	// Forced downgrade: SNR within the margin of the current rung.
	cur, ok := c.cfg.Ladder.ModeFor(ls.configured)
	if ok && ls.configured > 0 && snrdB < cur.MinSNRdB+c.cfg.DowngradeMargindB {
		target, feasible := c.cfg.Ladder.FeasibleCapacity(snrdB - c.cfg.DowngradeMargindB)
		to := modulation.Gbps(0)
		if feasible {
			to = target.Capacity
		}
		if to < ls.configured {
			return &Order{Edge: id, Kind: OrderForcedDowngrade, From: ls.configured, To: to}, nil
		}
	}
	return nil, nil
}

// PinFlow registers a flow that must not be disturbed (§4.2(i)): the
// links on its path are excluded from capacity changes and the flow's
// capacity is hidden from the TE optimization.
func (c *Controller) PinFlow(p graph.Path, volume float64) error {
	if err := p.Validate(c.g); err != nil {
		return err
	}
	if volume <= 0 {
		return fmt.Errorf("controller: pinned flow needs positive volume")
	}
	for _, id := range p.Edges {
		ls := c.links[id]
		if float64(ls.configured)-ls.pinnedCapacity < volume {
			return fmt.Errorf("controller: edge %d lacks %v Gbps for pinned flow", int(id), volume)
		}
	}
	for _, id := range p.Edges {
		c.links[id].pinned = true
		c.links[id].pinnedCapacity += volume
	}
	c.pins = append(c.pins, pinnedFlow{path: p, volume: volume})
	return nil
}

// UnpinAll releases every pinned flow.
func (c *Controller) UnpinAll() {
	for _, ls := range c.links {
		ls.pinned = false
		ls.pinnedCapacity = 0
	}
	c.pins = nil
}

// Step runs one control-loop iteration against the given demands:
// forced downgrades are applied, the augmented topology is built from
// hysteresis-qualified headroom, the TE runs, and the translation
// becomes upgrade orders. The returned plan has already been applied to
// the controller's configured state.
func (c *Controller) Step(demands []te.Demand) (*Plan, error) {
	endStep := c.cfg.Obs.Span("controller.step")
	defer endStep()
	plan := &Plan{Verdicts: make(map[graph.EdgeID]Verdict, len(c.links))}
	c.decayDamping()
	for _, e := range c.g.Edges() {
		if c.links[e.ID].pinned {
			plan.Verdicts[e.ID] = VerdictPinned
		} else {
			plan.Verdicts[e.ID] = VerdictSteady
		}
	}

	// 1. Apply pending forced downgrades based on the latest SNR.
	for _, e := range c.g.Edges() {
		ls := c.links[e.ID]
		if ls.pinned {
			continue // §4.2(i): links under pinned flows do not change
		}
		// Restore toward nominal as soon as SNR allows: recovering a
		// degraded or dark link is not an optimization, so it bypasses
		// hysteresis (capacity ABOVE nominal still requires it). Flap
		// damping still applies — a link oscillating around a threshold
		// must not restore on every swing.
		if ls.configured < ls.nominal && c.upgradeAllowed(e.ID) {
			if m, feasible := c.cfg.Ladder.FeasibleCapacity(ls.snrdB - c.cfg.DowngradeMargindB); feasible {
				target := m.Capacity
				if target > ls.nominal {
					target = ls.nominal
				}
				if target > ls.configured {
					o := Order{Edge: e.ID, Kind: OrderUpgrade, From: ls.configured, To: target}
					plan.Orders = append(plan.Orders, o)
					c.emitOrder(o)
					plan.EstimatedDisruption += ls.lastFlow * c.cfg.ChangeDowntime.Seconds()
					ls.configured = target
					c.chargeDamping(e.ID)
					plan.Verdicts[e.ID] = VerdictRestored
				}
			}
		}
		cur, ok := c.cfg.Ladder.ModeFor(ls.configured)
		if !ok || ls.configured == 0 {
			continue
		}
		if ls.snrdB < cur.MinSNRdB+c.cfg.DowngradeMargindB {
			target, feasible := c.cfg.Ladder.FeasibleCapacity(ls.snrdB - c.cfg.DowngradeMargindB)
			to := modulation.Gbps(0)
			if feasible {
				to = target.Capacity
			}
			if to < ls.configured {
				o := Order{Edge: e.ID, Kind: OrderForcedDowngrade, From: ls.configured, To: to}
				plan.Orders = append(plan.Orders, o)
				c.emitOrder(o)
				plan.EstimatedDisruption += ls.lastFlow * c.cfg.ChangeDowntime.Seconds()
				ls.configured = to
				ls.holdCount = 0
				c.chargeDamping(e.ID)
				plan.Verdicts[e.ID] = VerdictForcedDowngrade
			}
		}
	}

	// 2+3. Build the TE input (pinned capacity hidden; hysteresis and
	//      flap damping gate upgrade headroom), augment, run the
	//      unmodified TE, translate.
	alloc, dec, aug, err := c.runTE(demands, c.upgradeAllowed)
	if err != nil {
		return nil, err
	}

	// 4. Enforce the per-round change budget: if the TE wants more
	//    upgrades than allowed, keep the ones enabling the most new
	//    traffic and re-run the TE restricted to them (the original
	//    flow would be infeasible without the dropped upgrades).
	if c.maxChanges > 0 && len(dec.Changes) > c.maxChanges {
		var candidates []Order
		flowOnFake := make(map[graph.EdgeID]float64, len(dec.Changes))
		for _, ch := range dec.Changes {
			candidates = append(candidates, Order{
				Edge: ch.Edge, Kind: OrderUpgrade,
				From: c.links[ch.Edge].configured, To: modulation.Gbps(ch.NewCapacity),
			})
			flowOnFake[ch.Edge] = ch.FlowOnFake
		}
		kept := c.applyChangeBudget(candidates, flowOnFake)
		c.cfg.Obs.Counter("controller_budget_reruns_total",
			"TE re-runs forced by the per-round change budget.").Inc()
		c.cfg.Obs.Event("controller.change_budget",
			obs.A("candidates", len(candidates)),
			obs.A("kept", len(kept)),
			obs.A("budget", c.maxChanges))
		keptSet := make(map[graph.EdgeID]bool, len(kept))
		for _, o := range kept {
			keptSet[o.Edge] = true
		}
		alloc, dec, aug, err = c.runTE(demands, func(id graph.EdgeID) bool {
			return keptSet[id] && c.upgradeAllowed(id)
		})
		if err != nil {
			return nil, err
		}
		for _, o := range candidates {
			if !keptSet[o.Edge] {
				plan.Verdicts[o.Edge] = VerdictBudgetDropped
			}
		}
	}
	plan.Allocation = alloc
	plan.Decision = dec

	// Attribute the solver's fake-edge selections (Theorem 1's implicit
	// decisions made explicit): offered-but-idle vs selected; selected
	// edges flip to VerdictUpgraded in the commit loop below.
	for _, att := range aug.Attribution(alloc.EdgeFlow) {
		if plan.Verdicts[att.Real] == VerdictSteady {
			plan.Verdicts[att.Real] = VerdictOffered
		}
	}

	// Commit TE-decided upgrades as orders.
	for _, ch := range dec.Changes {
		ls := c.links[ch.Edge]
		// Upgrades on pinned links are filtered in runTE, so the
		// visible capacity in ch equals the configured capacity here.
		to := modulation.Gbps(ch.NewCapacity)
		o := Order{Edge: ch.Edge, Kind: OrderUpgrade, From: ls.configured, To: to}
		plan.Orders = append(plan.Orders, o)
		c.emitOrder(o)
		plan.EstimatedDisruption += ls.lastFlow * c.cfg.ChangeDowntime.Seconds()
		ls.configured = to
		ls.holdCount = 0
		c.chargeDamping(ch.Edge)
		plan.Verdicts[ch.Edge] = VerdictUpgraded
	}

	// Classify the edges no stage touched: distinguish "no headroom"
	// (steady) from "headroom gated before it reached TE" (hysteresis
	// hold or flap damping), so explain can show which gate held.
	for _, e := range c.g.Edges() {
		if plan.Verdicts[e.ID] != VerdictSteady {
			continue
		}
		ls := c.links[e.ID]
		m, feasible := c.cfg.Ladder.FeasibleCapacity(ls.snrdB - c.cfg.DowngradeMargindB)
		if !feasible || m.Capacity <= ls.configured {
			continue
		}
		if ls.holdCount < c.cfg.UpgradeHoldObservations {
			plan.Verdicts[e.ID] = VerdictHysteresisHold
		} else if !c.upgradeAllowed(e.ID) {
			plan.Verdicts[e.ID] = VerdictDamped
		}
	}

	// 5. Record flows for the next round's penalties and restore the
	//    graph to the committed configured capacities.
	for _, e := range c.g.Edges() {
		ls := c.links[e.ID]
		ls.lastFlow = dec.EdgeFlow[e.ID]
		c.g.SetCapacity(e.ID, float64(ls.configured))
	}
	c.cfg.Obs.Logger().Debug("control step complete",
		"orders", len(plan.Orders),
		"throughput_gbps", dec.Value,
		"est_disrupted_gbps_sec", plan.EstimatedDisruption)
	return plan, nil
}

// runTE builds the augmented topology (honoring pins, hysteresis, and
// the allowUpgrade filter), runs the TE, and translates the result. The
// augmentation is returned alongside so Step can attribute fake-edge
// selections per link.
func (c *Controller) runTE(demands []te.Demand, allowUpgrade func(graph.EdgeID) bool) (*te.Allocation, *core.Decision, *core.Augmentation, error) {
	top := core.NewTopology(c.g)
	for _, e := range c.g.Edges() {
		ls := c.links[e.ID]
		visible := float64(ls.configured) - ls.pinnedCapacity
		if visible < 0 {
			visible = 0
		}
		c.g.SetCapacity(e.ID, visible)
		if err := top.SetTraffic(e.ID, ls.lastFlow); err != nil {
			return nil, nil, nil, err
		}
		if ls.pinned || ls.holdCount < c.cfg.UpgradeHoldObservations {
			continue
		}
		if allowUpgrade != nil && !allowUpgrade(e.ID) {
			continue
		}
		// Headroom up to the highest hysteresis-supported rung.
		m, feasible := c.cfg.Ladder.FeasibleCapacity(ls.snrdB - c.cfg.DowngradeMargindB)
		if !feasible || m.Capacity <= ls.configured {
			continue
		}
		if err := top.SetUpgrade(e.ID, float64(m.Capacity-ls.configured), 1); err != nil {
			return nil, nil, nil, err
		}
	}
	aug, err := core.Augment(top, c.cfg.Penalty)
	if err != nil {
		return nil, nil, nil, err
	}
	endSolve := c.cfg.Obs.Span("controller.te_solve",
		obs.A("algorithm", c.cfg.TE.Name()),
		obs.A("demands", len(demands)))
	alloc, err := c.cfg.TE.Allocate(aug.Graph, demands)
	endSolve()
	if err != nil {
		return nil, nil, nil, err
	}
	c.cfg.Obs.Counter("controller_te_solves_total",
		"Flow-solver invocations inside TE allocations run by the controller.").Add(float64(alloc.Solver.Solves))
	c.cfg.Obs.Counter("controller_te_solver_phases_total",
		"Flow-solver phases (BFS level graphs / Dijkstra runs / water-fill sweeps) across controller TE runs.").Add(float64(alloc.Solver.Phases))
	c.cfg.Obs.Counter("controller_te_solver_augmentations_total",
		"Augmenting paths / path pushes applied across controller TE runs.").Add(float64(alloc.Solver.Augmentations))
	dec, err := aug.Translate(graph.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow})
	if err != nil {
		return nil, nil, nil, err
	}
	return alloc, dec, aug, nil
}
