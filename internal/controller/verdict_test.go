package controller

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/te"
)

// stepVerdicts runs one Step and returns the verdict map, failing the
// test on error or on a verdict map not covering every edge.
func stepVerdicts(t *testing.T, c *Controller, demands []te.Demand) map[graph.EdgeID]Verdict {
	t.Helper()
	plan, err := c.Step(demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Verdicts) != c.g.NumEdges() {
		t.Fatalf("verdicts cover %d of %d edges", len(plan.Verdicts), c.g.NumEdges())
	}
	return plan.Verdicts
}

func TestVerdictsSteadyWithoutHeadroom(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 1})
	// SNR supports exactly the configured 100G rung: no headroom.
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 7.5); err != nil {
			t.Fatal(err)
		}
	}
	v := stepVerdicts(t, c, []te.Demand{{Src: n[0], Dst: n[2], Volume: 40}})
	for id, got := range v {
		if got != VerdictSteady {
			t.Errorf("edge %d verdict = %v, want steady", int(id), got)
		}
	}
}

func TestVerdictsForcedDowngradeAndHysteresis(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 3})
	demands := []te.Demand{{Src: n[0], Dst: n[2], Volume: 180}}

	// Edge 0 collapses; edge 1 sees upgrade-grade SNR for the first time.
	if _, err := c.ObserveSNR(0, 4.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ObserveSNR(1, 17); err != nil {
		t.Fatal(err)
	}
	v := stepVerdicts(t, c, demands)
	if v[0] != VerdictForcedDowngrade {
		t.Errorf("edge 0 verdict = %v, want forced-downgrade", v[0])
	}
	if v[1] != VerdictHysteresisHold {
		t.Errorf("edge 1 verdict = %v, want hysteresis-hold", v[1])
	}
}

func TestVerdictsUpgradedAfterQualification(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 1})
	demands := []te.Demand{{Src: n[0], Dst: n[2], Volume: 180}}
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	v := stepVerdicts(t, c, demands)
	for id, got := range v {
		if got != VerdictUpgraded {
			t.Errorf("edge %d verdict = %v, want upgraded", int(id), got)
		}
	}
}

func TestVerdictsOfferedIdleWithoutDemandPressure(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 1})
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	// 40 Gbps fits the configured 100G: the fake edges are offered but
	// the solver has no reason to pay their penalty.
	v := stepVerdicts(t, c, []te.Demand{{Src: n[0], Dst: n[2], Volume: 40}})
	for id, got := range v {
		if got != VerdictOffered {
			t.Errorf("edge %d verdict = %v, want offered-idle", int(id), got)
		}
	}
}

func TestVerdictsPinned(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 1})
	p := graph.Path{Nodes: []graph.NodeID{n[0], n[1]}, Edges: []graph.EdgeID{0}}
	if err := c.PinFlow(p, 30); err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	v := stepVerdicts(t, c, []te.Demand{{Src: n[0], Dst: n[2], Volume: 40}})
	if v[0] != VerdictPinned {
		t.Errorf("pinned edge verdict = %v, want pinned", v[0])
	}
}

func TestVerdictsBudgetDropped(t *testing.T) {
	// Two parallel 2-hop paths; budget 2 of 4 wanted upgrades.
	g := graph.New()
	s, a, b, d := g.AddNode("s"), g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddEdge(graph.Edge{From: s, To: a, Weight: 1})
	g.AddEdge(graph.Edge{From: a, To: d, Weight: 1})
	g.AddEdge(graph.Edge{From: s, To: b, Weight: 1})
	g.AddEdge(graph.Edge{From: b, To: d, Weight: 1})
	c := newController(t, g, Config{UpgradeHoldObservations: 1})
	c.SetMaxChangesPerRound(2)
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	v := stepVerdicts(t, c, []te.Demand{{Src: s, Dst: d, Volume: 400}})
	upgraded, dropped := 0, 0
	for _, got := range v {
		switch got {
		case VerdictUpgraded:
			upgraded++
		case VerdictBudgetDropped:
			dropped++
		}
	}
	if upgraded == 0 || upgraded > 2 {
		t.Errorf("upgraded = %d, want 1..2", upgraded)
	}
	if dropped == 0 {
		t.Errorf("budget dropped no upgrades (verdicts %v)", v)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v := VerdictSteady; v <= VerdictBudgetDropped; v++ {
		if s := v.String(); s == "" || s[0] == 'V' {
			t.Errorf("verdict %d has no name: %q", int(v), s)
		}
	}
	if s := Verdict(99).String(); s != "Verdict(99)" {
		t.Errorf("unknown verdict = %q", s)
	}
}
