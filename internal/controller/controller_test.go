package controller

import (
	"math"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/modulation"
	"repro/internal/te"
)

// lineNet builds s -> m -> d with one wavelength per directed edge.
func lineNet(t *testing.T) (*graph.Graph, [3]graph.NodeID) {
	t.Helper()
	g := graph.New()
	s, m, d := g.AddNode("s"), g.AddNode("m"), g.AddNode("d")
	g.AddEdge(graph.Edge{From: s, To: m, Weight: 1})
	g.AddEdge(graph.Edge{From: m, To: d, Weight: 1})
	return g, [3]graph.NodeID{s, m, d}
}

func newController(t *testing.T, g *graph.Graph, cfg Config) *Controller {
	t.Helper()
	c, err := New(g, 100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewInitializesCapacities(t *testing.T) {
	g, _ := lineNet(t)
	c := newController(t, g, Config{})
	for _, e := range g.Edges() {
		if e.Capacity != 100 {
			t.Fatalf("edge %d capacity %v", e.ID, e.Capacity)
		}
		cap, err := c.Configured(e.ID)
		if err != nil || cap != 100 {
			t.Fatalf("configured = %v, %v", cap, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 100, Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g, _ := lineNet(t)
	if _, err := New(g, 73, Config{}); err == nil {
		t.Fatal("off-ladder initial capacity accepted")
	}
}

func TestConfiguredUnknownEdge(t *testing.T) {
	g, _ := lineNet(t)
	c := newController(t, g, Config{})
	if _, err := c.Configured(99); err == nil {
		t.Fatal("unknown edge accepted")
	}
}

func TestObserveSNRTriggersDowngradeOrder(t *testing.T) {
	g, _ := lineNet(t)
	c := newController(t, g, Config{})
	// 4.5 dB is below the 100G threshold but supports 50G.
	o, err := c.ObserveSNR(0, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Kind != OrderForcedDowngrade || o.From != 100 || o.To != 50 {
		t.Fatalf("order = %+v", o)
	}
	// Healthy SNR: no order.
	o, err = c.ObserveSNR(0, 15)
	if err != nil || o != nil {
		t.Fatalf("order = %+v, err = %v", o, err)
	}
	if _, err := c.ObserveSNR(99, 10); err == nil {
		t.Fatal("unknown edge accepted")
	}
}

func TestObserveSNRLossOfLight(t *testing.T) {
	g, _ := lineNet(t)
	c := newController(t, g, Config{})
	o, err := c.ObserveSNR(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.To != 0 {
		t.Fatalf("loss of light order = %+v", o)
	}
}

func TestStepForcedDowngradeAndRelight(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{})
	demands := []te.Demand{{Src: n[0], Dst: n[2], Volume: 80}}

	// SNR collapse on edge 0.
	if _, err := c.ObserveSNR(0, 4.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ObserveSNR(1, 15); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Step(demands)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range plan.Orders {
		if o.Edge == 0 && o.Kind == OrderForcedDowngrade && o.To == 50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no forced downgrade in %+v", plan.Orders)
	}
	// The link still carries 50 Gbps (the availability win).
	if plan.Decision.Value < 49 {
		t.Fatalf("shipped %v through degraded link, want ≈ 50", plan.Decision.Value)
	}
	cap0, _ := c.Configured(0)
	if cap0 != 50 {
		t.Fatalf("configured = %v", cap0)
	}

	// Recovery: dark/degraded link relights at full feasible rate.
	if _, err := c.ObserveSNR(0, 16.5); err != nil {
		t.Fatal(err)
	}
	plan, err = c.Step(demands)
	if err != nil {
		t.Fatal(err)
	}
	cap0, _ = c.Configured(0)
	if cap0 < 100 {
		t.Fatalf("after recovery configured = %v", cap0)
	}
	_ = plan
}

func TestStepUpgradeNeedsHysteresis(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 3})
	demands := []te.Demand{{Src: n[0], Dst: n[2], Volume: 180}}

	// One good observation is not enough.
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := c.Step(demands)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range plan.Orders {
		if o.Kind == OrderUpgrade {
			t.Fatalf("upgrade after one observation: %+v", o)
		}
	}
	if plan.Decision.Value > 100+1e-6 {
		t.Fatalf("shipped %v without upgrades", plan.Decision.Value)
	}

	// Two more good observations qualify the headroom.
	for i := 0; i < 2; i++ {
		for _, e := range g.Edges() {
			if _, err := c.ObserveSNR(e.ID, 17); err != nil {
				t.Fatal(err)
			}
		}
	}
	plan, err = c.Step(demands)
	if err != nil {
		t.Fatal(err)
	}
	upgrades := 0
	for _, o := range plan.Orders {
		if o.Kind == OrderUpgrade {
			upgrades++
		}
	}
	if upgrades != 2 {
		t.Fatalf("upgrades = %d, want both line edges", upgrades)
	}
	if math.Abs(plan.Decision.Value-180) > 1e-6 {
		t.Fatalf("shipped %v after upgrades", plan.Decision.Value)
	}
	// 17 dB − 0.5 margin clears the 15.5 dB 200G rung.
	cap0, _ := c.Configured(0)
	if cap0 != 200 {
		t.Fatalf("configured after upgrade = %v", cap0)
	}
}

func TestStepNoUpgradeWithoutDemand(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 1})
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := c.Step([]te.Demand{{Src: n[0], Dst: n[2], Volume: 40}})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range plan.Orders {
		if o.Kind == OrderUpgrade {
			t.Fatalf("unnecessary upgrade: %+v", o)
		}
	}
}

func TestStepHysteresisResetsOnDip(t *testing.T) {
	g, _ := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 3})
	// Two good, one bad (7 dB is below the 125G rung's 8.5+0.5 dB),
	// two good: hold count must not reach 3.
	seq := []float64{17, 17, 7, 17, 17}
	for _, snr := range seq {
		if _, err := c.ObserveSNR(0, snr); err != nil {
			t.Fatal(err)
		}
	}
	if c.links[0].holdCount != 2 {
		t.Fatalf("hold count = %d, want 2", c.links[0].holdCount)
	}
}

func TestPinFlowBlocksChanges(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 1})
	// Pin a 60 Gbps flow across both edges.
	p := graph.Path{Edges: []graph.EdgeID{0, 1}, Nodes: []graph.NodeID{n[0], n[1], n[2]}}
	if err := c.PinFlow(p, 60); err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := c.Step([]te.Demand{{Src: n[0], Dst: n[2], Volume: 180}})
	if err != nil {
		t.Fatal(err)
	}
	// Pinned links: no orders at all, and TE sees only 40 Gbps.
	if len(plan.Orders) != 0 {
		t.Fatalf("orders on pinned links: %+v", plan.Orders)
	}
	if plan.Decision.Value > 40+1e-6 {
		t.Fatalf("TE shipped %v over hidden capacity", plan.Decision.Value)
	}
	// Unpin: next step can upgrade (hysteresis persisted an extra
	// observation round).
	c.UnpinAll()
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	plan, err = c.Step([]te.Demand{{Src: n[0], Dst: n[2], Volume: 180}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Decision.Value-180) > 1e-6 {
		t.Fatalf("after unpin shipped %v", plan.Decision.Value)
	}
}

func TestPinFlowValidation(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{})
	bad := graph.Path{Edges: []graph.EdgeID{1, 0}, Nodes: []graph.NodeID{n[0], n[1], n[2]}}
	if err := c.PinFlow(bad, 10); err == nil {
		t.Fatal("invalid path accepted")
	}
	p := graph.Path{Edges: []graph.EdgeID{0, 1}, Nodes: []graph.NodeID{n[0], n[1], n[2]}}
	if err := c.PinFlow(p, 0); err == nil {
		t.Fatal("zero volume accepted")
	}
	if err := c.PinFlow(p, 150); err == nil {
		t.Fatal("over-capacity pin accepted")
	}
	if err := c.PinFlow(p, 80); err != nil {
		t.Fatal(err)
	}
	// Second pin exceeding the remainder.
	if err := c.PinFlow(p, 30); err == nil {
		t.Fatal("pin beyond remaining capacity accepted")
	}
}

func TestDisruptionEstimateUsesTrafficAndDowntime(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{UpgradeHoldObservations: 1, ChangeDowntime: 10 * time.Second})
	demands := []te.Demand{{Src: n[0], Dst: n[2], Volume: 80}}
	// Round 1: establish traffic (80 Gbps on both edges).
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Step(demands); err != nil {
		t.Fatal(err)
	}
	// Round 2: demand grows; upgrades disrupt the 80 Gbps now riding
	// the links.
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := c.Step([]te.Demand{{Src: n[0], Dst: n[2], Volume: 180}})
	if err != nil {
		t.Fatal(err)
	}
	// Two upgraded edges × 80 Gbps × 10 s = 1600.
	if math.Abs(plan.EstimatedDisruption-1600) > 1e-6 {
		t.Fatalf("disruption = %v, want 1600", plan.EstimatedDisruption)
	}
}

func TestConsistentStepNoChanges(t *testing.T) {
	g, n := lineNet(t)
	c := newController(t, g, Config{})
	cp, err := c.ConsistentStep([]te.Demand{{Src: n[0], Dst: n[2], Volume: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.UpdatedEdges) != 0 {
		t.Fatalf("unexpected EU: %v", cp.UpdatedEdges)
	}
	if cp.Intermediate != cp.Final.Allocation {
		t.Fatal("no-change plan should reuse the final allocation")
	}
	if cp.IntermediateLoss != 0 {
		t.Fatalf("loss = %v", cp.IntermediateLoss)
	}
}

func TestConsistentStepReroutesAroundEU(t *testing.T) {
	// Diamond: two disjoint s->d paths. Upgrading the top path should
	// leave an intermediate state that still ships over the bottom.
	g := graph.New()
	s, a, b, d := g.AddNode("s"), g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddEdge(graph.Edge{From: s, To: a, Weight: 1}) // 0 top
	g.AddEdge(graph.Edge{From: a, To: d, Weight: 1}) // 1 top
	g.AddEdge(graph.Edge{From: s, To: b, Weight: 2}) // 2 bottom
	g.AddEdge(graph.Edge{From: b, To: d, Weight: 2}) // 3 bottom
	c := newController(t, g, Config{UpgradeHoldObservations: 1})
	for _, e := range g.Edges() {
		if _, err := c.ObserveSNR(e.ID, 17); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := c.ConsistentStep([]te.Demand{{Src: s, Dst: d, Volume: 250}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.UpdatedEdges) == 0 {
		t.Fatal("no upgrades planned at 250 Gbps demand")
	}
	// Intermediate state: EU removed, but the other path still carries
	// traffic.
	if cp.Intermediate.Throughput < 99 {
		t.Fatalf("intermediate throughput %v, want >= 100 via surviving path", cp.Intermediate.Throughput)
	}
	if cp.Final.Decision.Value < cp.Intermediate.Throughput-1e-6 {
		t.Fatal("final state ships less than intermediate")
	}
	if cp.IntermediateLoss < 0 {
		t.Fatal("negative loss")
	}
	// No intermediate flow touches an EU edge.
	updated := map[graph.EdgeID]bool{}
	for _, id := range cp.UpdatedEdges {
		updated[id] = true
	}
	for id, f := range cp.Intermediate.EdgeFlow {
		if updated[graph.EdgeID(id)] && f > 1e-9 {
			t.Fatalf("intermediate flow %v on updating edge %d", f, id)
		}
	}
}

func TestOrderKindString(t *testing.T) {
	if OrderForcedDowngrade.String() != "forced-downgrade" || OrderUpgrade.String() != "upgrade" {
		t.Fatal("order kind strings")
	}
	if OrderKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestStepIsDeterministic(t *testing.T) {
	run := func() []Order {
		g, n := lineNet(t)
		c := newController(t, g, Config{UpgradeHoldObservations: 1})
		for _, e := range g.Edges() {
			if _, err := c.ObserveSNR(e.ID, 17); err != nil {
				t.Fatal(err)
			}
		}
		plan, err := c.Step([]te.Demand{{Src: n[0], Dst: n[2], Volume: 150}})
		if err != nil {
			t.Fatal(err)
		}
		return plan.Orders
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic order count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Integration: a multi-round life cycle on a ring with SNR churn.
func TestControllerLifecycleOnRing(t *testing.T) {
	g := graph.New()
	const n = 6
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.Edge{From: graph.NodeID(i), To: graph.NodeID((i + 1) % n), Weight: 1})
		g.AddEdge(graph.Edge{From: graph.NodeID((i + 1) % n), To: graph.NodeID(i), Weight: 1})
	}
	c := newController(t, g, Config{UpgradeHoldObservations: 2})
	demands := []te.Demand{
		{Src: 0, Dst: 3, Volume: 150},
		{Src: 1, Dst: 4, Volume: 60},
	}
	snrs := []float64{17, 17, 17, 5, 17, 17, 17, 17}
	for round := 0; round < len(snrs); round++ {
		for _, e := range g.Edges() {
			snr := 17.0
			if e.ID == 0 {
				snr = snrs[round] // edge 0 dips mid-run
			}
			if _, err := c.ObserveSNR(e.ID, snr); err != nil {
				t.Fatal(err)
			}
		}
		plan, err := c.Step(demands)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Invariant: configured capacities are always ladder rungs or 0.
		for _, e := range g.Edges() {
			cap, _ := c.Configured(e.ID)
			if cap != 0 {
				if _, ok := (modulation.Default()).ModeFor(cap); !ok {
					t.Fatalf("round %d: configured %v not on ladder", round, cap)
				}
			}
		}
		// Invariant: shipped never exceeds demand.
		if plan.Decision.Value > 210+1e-6 {
			t.Fatalf("round %d: overshipped %v", round, plan.Decision.Value)
		}
	}
}
