package controller

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/te"
)

// orderEvents extracts the controller.order trace events in emission
// order.
func orderEvents(o *obs.Obs) []obs.Event {
	var out []obs.Event
	for _, ev := range o.Trace.Events() {
		if ev.Name == "controller.order" {
			out = append(out, ev)
		}
	}
	return out
}

// attr fetches one attribute value from an event (nil when absent).
func attr(ev obs.Event, key string) any {
	for _, a := range ev.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

func TestStepTraceOrdersMatchPlan(t *testing.T) {
	g, n := lineNet(t)
	o := obs.New("test")
	c := newController(t, g, Config{Obs: o, UpgradeHoldObservations: 1})
	demands := []te.Demand{{Src: n[0], Dst: n[2], Volume: 180}}

	// Degrade edge 0, keep edge 1 upgradeable: the plan mixes a forced
	// downgrade with a (possible) TE upgrade, and every order must have
	// a matching trace event in the same sequence.
	if _, err := c.ObserveSNR(0, 4.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ObserveSNR(1, 22); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Step(demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Orders) == 0 {
		t.Fatal("expected at least one order")
	}
	evs := orderEvents(o)
	if len(evs) != len(plan.Orders) {
		t.Fatalf("got %d controller.order events for %d orders", len(evs), len(plan.Orders))
	}
	for i, ord := range plan.Orders {
		ev := evs[i]
		if got := attr(ev, "edge"); got != int(ord.Edge) {
			t.Fatalf("event %d edge = %v, want %d", i, got, int(ord.Edge))
		}
		if got := attr(ev, "kind"); got != ord.Kind.String() {
			t.Fatalf("event %d kind = %v, want %s", i, got, ord.Kind)
		}
		if got := attr(ev, "from_gbps"); got != float64(ord.From) {
			t.Fatalf("event %d from = %v, want %v", i, got, float64(ord.From))
		}
		if got := attr(ev, "to_gbps"); got != float64(ord.To) {
			t.Fatalf("event %d to = %v, want %v", i, got, float64(ord.To))
		}
	}
	// The per-kind counter totals agree with the plan, too.
	var forced, upgrades int
	for _, ord := range plan.Orders {
		switch ord.Kind {
		case OrderForcedDowngrade:
			forced++
		default:
			upgrades++
		}
	}
	if forced > 0 {
		got := o.Counter("controller_orders_total", "", obs.L("kind", "forced-downgrade")).Value()
		if got != float64(forced) {
			t.Fatalf("forced-downgrade counter = %v, want %d", got, forced)
		}
	}
	if upgrades > 0 {
		got := o.Counter("controller_orders_total", "", obs.L("kind", "upgrade")).Value()
		if got != float64(upgrades) {
			t.Fatalf("upgrade counter = %v, want %d", got, upgrades)
		}
	}
}

func TestHysteresisQualifiedEventFiresOnceAtThreshold(t *testing.T) {
	g, _ := lineNet(t)
	o := obs.New("test")
	c := newController(t, g, Config{Obs: o, UpgradeHoldObservations: 3})
	for i := 0; i < 5; i++ {
		if _, err := c.ObserveSNR(0, 22); err != nil {
			t.Fatal(err)
		}
	}
	var qualified int
	for _, ev := range o.Trace.Events() {
		if ev.Name == "controller.hysteresis_qualified" {
			qualified++
		}
	}
	if qualified != 1 {
		t.Fatalf("hysteresis_qualified events = %d, want exactly 1", qualified)
	}
	// A dip after qualification records the reset transition: 8 dB no
	// longer supports the 125G rung (8.5 + 0.5 margin) but stays above
	// the configured 100G downgrade threshold (6.5 + 0.5).
	if _, err := c.ObserveSNR(0, 8); err != nil {
		t.Fatal(err)
	}
	var resets int
	for _, ev := range o.Trace.Events() {
		if ev.Name == "controller.hysteresis_reset" {
			resets++
		}
	}
	if resets != 1 {
		t.Fatalf("hysteresis_reset events = %d, want 1", resets)
	}
}

func TestConsistentStepEmitsPhaseEvents(t *testing.T) {
	g, n := lineNet(t)
	o := obs.New("test")
	c := newController(t, g, Config{Obs: o})
	demands := []te.Demand{{Src: n[0], Dst: n[2], Volume: 80}}
	if _, err := c.ObserveSNR(0, 4.5); err != nil {
		t.Fatal(err)
	}
	cp, err := c.ConsistentStep(demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.UpdatedEdges) == 0 {
		t.Fatal("expected a re-modulated link")
	}
	want := []string{
		"controller.consistent.reroute",
		"controller.consistent.reconfigure",
		"controller.consistent.converge",
	}
	seen := make(map[string]int)
	for _, ev := range o.Trace.Events() {
		seen[ev.Name]++
	}
	for _, name := range want {
		if seen[name] != 1 {
			t.Fatalf("%s events = %d, want 1", name, seen[name])
		}
	}
	if o.Counter("controller_consistent_updates_total", "").Value() != 1 {
		t.Fatalf("consistent updates counter = %v", o.Counter("controller_consistent_updates_total", "").Value())
	}
}

func TestNilObsIsFree(t *testing.T) {
	// The zero Config (nil Obs) must run every path without panicking —
	// the disabled layer is pure nil checks.
	g, n := lineNet(t)
	c := newController(t, g, Config{})
	if _, err := c.ObserveSNR(0, 4.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConsistentStep([]te.Demand{{Src: n[0], Dst: n[2], Volume: 80}}); err != nil {
		t.Fatal(err)
	}
}
