package controller

import (
	"sort"

	"repro/internal/graph"
)

// Operational safeguards beyond the plain §4 loop: a per-round change
// budget (each modulation change costs ~68 s of downtime on today's
// hardware, so operators cap churn) and BGP-style flap damping for
// links whose SNR oscillates around a threshold.

// DampingConfig tunes capacity-flap damping. A link accumulates
// penalty on every capacity change; while its penalty exceeds
// SuppressThreshold the controller refuses *upgrades* on it (forced
// downgrades always execute — availability first). Penalty decays
// multiplicatively every Step.
type DampingConfig struct {
	// PenaltyPerChange is added on each executed change (default 1000).
	PenaltyPerChange float64
	// SuppressThreshold suppresses upgrades while exceeded (default
	// 2500 — i.e. roughly three changes in quick succession).
	SuppressThreshold float64
	// ReuseThreshold re-enables upgrades once the decayed penalty
	// falls below it (default 1000).
	ReuseThreshold float64
	// DecayFactor multiplies the penalty each Step (default 0.7).
	DecayFactor float64
}

// withDefaults fills zero values.
func (d DampingConfig) withDefaults() DampingConfig {
	if d.PenaltyPerChange == 0 {
		d.PenaltyPerChange = 1000
	}
	if d.SuppressThreshold == 0 {
		d.SuppressThreshold = 2500
	}
	if d.ReuseThreshold == 0 {
		d.ReuseThreshold = 1000
	}
	if d.DecayFactor == 0 {
		d.DecayFactor = 0.7
	}
	return d
}

// dampState is per-link damping bookkeeping.
type dampState struct {
	penalty    float64
	suppressed bool
}

// EnableDamping turns on flap damping with the given configuration.
// Must be called before the first Step.
func (c *Controller) EnableDamping(d DampingConfig) {
	d = d.withDefaults()
	c.damping = &d
	c.damp = make(map[graph.EdgeID]*dampState, len(c.links))
	for id := range c.links {
		c.damp[id] = &dampState{}
	}
}

// SetMaxChangesPerRound caps the number of TE-decided upgrades executed
// per Step (0 = unlimited). Forced downgrades are never capped. When
// the TE wants more upgrades than the budget, the ones carrying the
// most new traffic win.
func (c *Controller) SetMaxChangesPerRound(n int) { c.maxChanges = n }

// Suppressed reports whether upgrades on the edge are currently damped.
func (c *Controller) Suppressed(id graph.EdgeID) bool {
	if c.damp == nil {
		return false
	}
	st, ok := c.damp[id]
	return ok && st.suppressed
}

// decayDamping advances the damping clocks; called once per Step.
func (c *Controller) decayDamping() {
	if c.damping == nil {
		return
	}
	for _, st := range c.damp {
		st.penalty *= c.damping.DecayFactor
		if st.suppressed && st.penalty < c.damping.ReuseThreshold {
			st.suppressed = false
		}
	}
}

// chargeDamping records an executed change on an edge.
func (c *Controller) chargeDamping(id graph.EdgeID) {
	if c.damping == nil {
		return
	}
	st := c.damp[id]
	st.penalty += c.damping.PenaltyPerChange
	if st.penalty >= c.damping.SuppressThreshold {
		st.suppressed = true
	}
}

// upgradeAllowed applies damping to upgrade decisions.
func (c *Controller) upgradeAllowed(id graph.EdgeID) bool {
	if c.damp == nil {
		return true
	}
	return !c.damp[id].suppressed
}

// applyChangeBudget trims a set of TE-decided upgrade orders to the
// per-round budget, preferring the ones whose fake-edge flow (new
// traffic enabled) is largest. Returns the kept orders.
func (c *Controller) applyChangeBudget(orders []Order, flowOnFake map[graph.EdgeID]float64) []Order {
	if c.maxChanges <= 0 || len(orders) <= c.maxChanges {
		return orders
	}
	sorted := append([]Order(nil), orders...)
	sort.Slice(sorted, func(i, j int) bool {
		fi, fj := flowOnFake[sorted[i].Edge], flowOnFake[sorted[j].Edge]
		if fi != fj { //nolint:nofloateq // comparator tie-break: tolerance would break strict weak ordering
			return fi > fj
		}
		return sorted[i].Edge < sorted[j].Edge
	})
	return sorted[:c.maxChanges]
}
