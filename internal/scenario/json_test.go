package scenario

import (
	"strings"
	"testing"

	"repro/internal/controller"
)

const validJSON = `{
  "nodes": ["SEA", "DEN", "NYC"],
  "links": [
    {"from": "SEA", "to": "DEN", "weight": 1, "bidir": true},
    {"from": "DEN", "to": "NYC", "weight": 2}
  ],
  "rounds": 5,
  "baseline_snr_db": 16,
  "demands": [{"from": "SEA", "to": "NYC", "gbps": 80, "priority": 1}],
  "events": [{"round": 2, "from": "SEA", "to": "DEN", "snr_db": 4.2}]
}`

func TestLoadJSONValid(t *testing.T) {
	g, s, err := LoadJSON(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 3 { // bidir SEA-DEN (2) + one-way DEN-NYC
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if s.Rounds != 5 || s.BaselinedB != 16 {
		t.Fatalf("script: %+v", s)
	}
	if len(s.Demands) != 1 || s.Demands[0].Volume != 80 || s.Demands[0].Priority != 1 {
		t.Fatalf("demands: %+v", s.Demands)
	}
	if len(s.Events) != 1 || s.Events[0].Round != 2 || s.Events[0].SNRdB != 4.2 {
		t.Fatalf("events: %+v", s.Events)
	}
	// The event must reference the SEA->DEN directed edge.
	e := g.Edge(s.Events[0].Link)
	if g.NodeName(e.From) != "SEA" || g.NodeName(e.To) != "DEN" {
		t.Fatalf("event edge %s->%s", g.NodeName(e.From), g.NodeName(e.To))
	}
}

func TestLoadJSONRunsEndToEnd(t *testing.T) {
	g, s, err := LoadJSON(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	// Demand SEA->NYC traverses the degraded SEA-DEN link; both runs
	// complete and dynamic wins.
	dyn, bin, err := CompareDynamicBinary(g, 100, controller.Config{}, s)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.MeanSatisfied < bin.MeanSatisfied {
		t.Fatalf("dynamic %v < binary %v", dyn.MeanSatisfied, bin.MeanSatisfied)
	}
}

func TestLoadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":         `{nope}`,
		"unknown field":   `{"nodes": ["a"], "bogus": 1}`,
		"no nodes":        `{"rounds": 3}`,
		"dup node":        `{"nodes": ["a", "a"], "rounds": 1}`,
		"unknown link":    `{"nodes": ["a"], "links": [{"from": "a", "to": "zz"}], "rounds": 1}`,
		"dup link":        `{"nodes": ["a","b"], "links": [{"from":"a","to":"b"},{"from":"a","to":"b"}], "rounds": 1}`,
		"unknown demand":  `{"nodes": ["a","b"], "links": [{"from":"a","to":"b"}], "rounds": 1, "demands": [{"from":"zz","to":"b","gbps":1}]}`,
		"event no link":   `{"nodes": ["a","b"], "links": [{"from":"a","to":"b"}], "rounds": 2, "events": [{"round":1,"from":"b","to":"a","snr_db":5}]}`,
		"event bad round": `{"nodes": ["a","b"], "links": [{"from":"a","to":"b"}], "rounds": 2, "events": [{"round":9,"from":"a","to":"b","snr_db":5}]}`,
		"zero rounds":     `{"nodes": ["a","b"], "links": [{"from":"a","to":"b"}], "rounds": 0}`,
		"self demand":     `{"nodes": ["a","b"], "links": [{"from":"a","to":"b"}], "rounds": 1, "demands": [{"from":"a","to":"a","gbps":1}]}`,
	}
	for name, in := range cases {
		if _, _, err := LoadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadJSONDefaultsWeight(t *testing.T) {
	g, _, err := LoadJSON(strings.NewReader(
		`{"nodes": ["a","b"], "links": [{"from":"a","to":"b"}], "rounds": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Edge(0).Weight != 1 {
		t.Fatalf("default weight = %v", g.Edge(0).Weight)
	}
}
